#!/usr/bin/env python3
"""Unit tests for tools/bench_check.py (run by CI before any gating).

The one behavior these tests exist to pin down: a metric present in the
committed baseline but missing from the fresh JSON must hard-fail even
when it is not named via --metric. The old gate only presence-checked
gated keys, so a benchmark could silently stop emitting a column and
nothing noticed until the next regeneration buried it.
"""

import importlib.util
import json
import os
import sys
import tempfile
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))
_SPEC = importlib.util.spec_from_file_location(
    "bench_check", os.path.join(_HERE, "bench_check.py"))
bench_check = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_check)


def doc(records, benchmark="parallel_scaling"):
    return {"benchmark": benchmark, "records": records}


class BenchCheckTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def write(self, name, payload):
        path = os.path.join(self._dir.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(payload, f)
        return path

    def run_main(self, baseline, fresh=None, metrics=(), extra=()):
        argv = ["--baseline", baseline]
        if fresh is not None:
            argv += ["--fresh", fresh]
        for metric in metrics:
            argv += ["--metric", metric]
        argv += list(extra)
        return bench_check.main(argv)

    def test_identical_runs_pass(self):
        records = [{"name": "t8", "speedup": 4.0, "qps": 100.0}]
        base = self.write("base.json", doc(records))
        fresh = self.write("fresh.json", doc(records))
        self.assertEqual(self.run_main(base, fresh, ["speedup"]), 0)

    def test_ungated_metric_missing_from_fresh_fails(self):
        # The silent-pass bug: "qps" is not gated, but the baseline
        # promises it — a fresh run that stops emitting it must fail.
        base = self.write(
            "base.json",
            doc([{"name": "t8", "speedup": 4.0, "qps": 100.0}]))
        fresh = self.write(
            "fresh.json", doc([{"name": "t8", "speedup": 4.0}]))
        self.assertEqual(self.run_main(base, fresh, ["speedup"]), 1)

    def test_gated_metric_missing_from_fresh_fails(self):
        base = self.write(
            "base.json", doc([{"name": "t8", "speedup": 4.0}]))
        fresh = self.write(
            "fresh.json", doc([{"name": "t8", "qps": 50.0}]))
        self.assertEqual(self.run_main(base, fresh, ["speedup"]), 1)

    def test_record_missing_from_fresh_fails(self):
        base = self.write(
            "base.json", doc([{"name": "t8", "speedup": 4.0}]))
        fresh = self.write(
            "fresh.json", doc([{"name": "t4", "speedup": 4.0}]))
        self.assertEqual(self.run_main(base, fresh, ["speedup"]), 1)

    def test_new_fresh_records_and_metrics_pass(self):
        base = self.write(
            "base.json", doc([{"name": "t8", "speedup": 4.0}]))
        fresh = self.write(
            "fresh.json",
            doc([{"name": "t8", "speedup": 4.1, "extra": 9.0},
                 {"name": "t16", "speedup": 6.0}]))
        self.assertEqual(self.run_main(base, fresh, ["speedup"]), 0)

    def test_regression_beyond_tolerance_fails(self):
        base = self.write(
            "base.json", doc([{"name": "t8", "speedup": 4.0}]))
        fresh = self.write(
            "fresh.json", doc([{"name": "t8", "speedup": 2.0}]))
        self.assertEqual(
            self.run_main(base, fresh, ["speedup"],
                          extra=["--max-regression", "0.25"]), 1)

    def test_regression_within_tolerance_passes(self):
        base = self.write(
            "base.json", doc([{"name": "t8", "speedup": 4.0}]))
        fresh = self.write(
            "fresh.json", doc([{"name": "t8", "speedup": 3.5}]))
        self.assertEqual(
            self.run_main(base, fresh, ["speedup"],
                          extra=["--max-regression", "0.25"]), 0)

    def test_noise_floor_skips_gating_but_metric_must_exist(self):
        base = self.write(
            "base.json",
            doc([{"name": "t8", "speedup": 4.0, "tiny": 0.001}]))
        # Within the noise floor the value may move arbitrarily...
        moved = self.write(
            "moved.json",
            doc([{"name": "t8", "speedup": 4.0, "tiny": 0.0001}]))
        self.assertEqual(
            self.run_main(base, moved, ["speedup", "tiny"]), 1,
            "tiny never compared anywhere -> coverage failure")
        both = self.write(
            "both.json",
            doc([{"name": "t8", "speedup": 4.0, "tiny": 0.001},
                 {"name": "t9", "speedup": 4.0, "tiny": 4.0}]))
        base2 = self.write(
            "base2.json",
            doc([{"name": "t8", "speedup": 4.0, "tiny": 0.001},
                 {"name": "t9", "speedup": 4.0, "tiny": 4.0}]))
        self.assertEqual(self.run_main(base2, both, ["speedup", "tiny"]), 0)
        # ...but it must still be present.
        dropped = self.write(
            "dropped.json", doc([{"name": "t8", "speedup": 4.0}]))
        self.assertEqual(self.run_main(base, dropped, ["speedup"]), 1)

    def test_gated_metric_never_compared_fails(self):
        base = self.write(
            "base.json", doc([{"name": "t8", "speedup": 4.0}]))
        fresh = self.write(
            "fresh.json", doc([{"name": "t8", "speedup": 4.0}]))
        self.assertEqual(
            self.run_main(base, fresh, ["speedup", "renamed_key"]), 1)

    def test_benchmark_name_mismatch_fails(self):
        base = self.write(
            "base.json",
            doc([{"name": "t8", "speedup": 4.0}], benchmark="a"))
        fresh = self.write(
            "fresh.json",
            doc([{"name": "t8", "speedup": 4.0}], benchmark="b"))
        self.assertEqual(self.run_main(base, fresh, ["speedup"]), 1)

    def test_non_numeric_values_are_not_presence_checked(self):
        base = self.write(
            "base.json",
            doc([{"name": "t8", "speedup": 4.0, "note": "hi",
                  "flag": True}]))
        fresh = self.write(
            "fresh.json", doc([{"name": "t8", "speedup": 4.0}]))
        self.assertEqual(self.run_main(base, fresh, ["speedup"]), 0)

    def test_list_mode_needs_no_fresh_or_metric(self):
        base = self.write(
            "base.json",
            doc([{"name": "t8", "speedup": 4.0, "qps": 100.0}]))
        self.assertEqual(self.run_main(base, extra=["--list"]), 0)


if __name__ == "__main__":
    sys.exit(unittest.main())
