#!/usr/bin/env bash
# Doc-consistency gate: every source file under src/subseq/** must be
# mentioned (by stem) in docs/ARCHITECTURE.md, so the architecture doc
# cannot silently fall behind the tree. A stem match is enough — the doc
# may say `metric/sharded_index.*` or name the .h and .cc individually.
#
# CI calls this script; run it locally before sending a PR that adds a
# file. Exits non-zero listing every undocumented stem.

set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
doc="$root/docs/ARCHITECTURE.md"
if [ ! -f "$doc" ]; then
  echo "check_docs: $doc not found" >&2
  exit 2
fi

missing=0
# find (not a hand-kept directory list) so new subdirectories are gated
# the day they appear.
while IFS= read -r f; do
  stem="$(basename "$f" | sed 's/\.[^.]*$//')"
  if ! grep -q "$stem" "$doc"; then
    echo "docs/ARCHITECTURE.md does not mention $stem (from ${f#"$root"/})"
    missing=1
  fi
done < <(find "$root/src/subseq" -type f \( -name '*.h' -o -name '*.cc' \) | sort)

if [ "$missing" -ne 0 ]; then
  echo "check_docs: FAIL — document the files above in docs/ARCHITECTURE.md"
  exit 1
fi
echo "check_docs: OK — every src/subseq/** stem is documented"
exit 0
