#!/usr/bin/env python3
"""Bench-regression gate for the BENCH_*.json outputs.

Compares a freshly produced benchmark JSON against the committed baseline
and fails (exit 1) when a gated metric regressed by more than the allowed
fraction. Gated metrics are *higher-is-better* and should be chosen to be
machine-portable: the speedup ratios (server qps over library qps,
sharded build over 1-shard build, N threads over 1 thread) compare two
measurements taken on the same machine in the same run, so a committed
baseline from one box gates a fresh run on another without chasing
absolute wall-clock numbers.

Coverage rules (all hard failures — a silently dropped row or key is how
regressions hide):
  * a record present in the baseline but missing from the fresh run fails;
  * ANY numeric metric present in a baseline record but missing from the
    corresponding fresh record fails, whether or not it is gated — the
    fresh run must produce at least everything the baseline promises;
  * a gated metric that matched zero records fails (renamed key or wrong
    --metric);
  * new records / new metrics in the fresh run pass (benchmarks may grow).

Gating rules (gated metrics only):
  * baseline values below --min-baseline are skipped (ratios of noise);
  * otherwise fresh >= baseline * (1 - --max-regression) must hold.

Every run prints the full baseline-vs-fresh table, gated or not, so a CI
log always shows what moved.

Usage:
  tools/bench_check.py --baseline old.json --fresh new.json \
      --metric speedup [--metric other ...] \
      [--max-regression 0.25] [--min-baseline 0.05]
  tools/bench_check.py --baseline old.json --list
"""

import argparse
import json
import sys


def load_records(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    records = {}
    for record in doc.get("records", []):
        records[record["name"]] = record
    return doc.get("benchmark", "?"), records


def numeric_metrics(record):
    """The gateable keys of one record: numeric values, 'name' excluded."""
    return sorted(
        key for key, value in record.items()
        if key != "name" and isinstance(value, (int, float))
        and not isinstance(value, bool))


def list_baseline(name, records):
    print(f"bench_check: {name} ({len(records)} record(s))")
    for record_name, record in sorted(records.items()):
        print(f"  {record_name}: {', '.join(numeric_metrics(record))}")
    return 0


def run_check(args):
    name, baseline = load_records(args.baseline)
    if args.list:
        return list_baseline(name, baseline)

    fresh_name, fresh = load_records(args.fresh)
    if name != fresh_name:
        print(f"FAIL: comparing different benchmarks: "
              f"baseline={name!r} fresh={fresh_name!r}")
        return 1

    gated = set(args.metrics)
    failures = 0
    checked_per_metric = {metric: 0 for metric in args.metrics}
    floor = 1.0 - args.max_regression
    print(f"bench_check: {name} "
          f"(max regression {args.max_regression:.0%}, "
          f"gated metrics: {', '.join(args.metrics)})")
    for record_name, record in sorted(baseline.items()):
        if record_name not in fresh:
            print(f"  FAIL {record_name}: missing from fresh run")
            failures += 1
            continue
        for metric in numeric_metrics(record):
            base_value = float(record[metric])
            if metric not in fresh[record_name]:
                # Hard failure even for ungated metrics: the committed
                # baseline is the contract for what a fresh run emits.
                print(f"  FAIL {record_name}.{metric}: "
                      f"missing from fresh run")
                failures += 1
                continue
            fresh_value = float(fresh[record_name][metric])
            ratio = (fresh_value / base_value) if base_value != 0 else None
            shown = f"{ratio:.0%}" if ratio is not None else "n/a"
            if metric not in gated:
                print(f"  info {record_name}.{metric}: "
                      f"baseline {base_value:.4g} -> fresh "
                      f"{fresh_value:.4g} ({shown})")
                continue
            if base_value < args.min_baseline:
                print(f"  skip {record_name}.{metric}: baseline "
                      f"{base_value:.4g} below noise floor")
                continue
            checked_per_metric[metric] += 1
            ok = ratio is not None and ratio >= floor
            if not ok:
                failures += 1
            print(f"  {'ok  ' if ok else 'FAIL'} {record_name}.{metric}: "
                  f"baseline {base_value:.4g} -> fresh {fresh_value:.4g} "
                  f"({shown})")

    # Per-metric coverage: a gated metric that matched zero records is a
    # silently-lost regression surface (renamed key, regenerated
    # baseline), not a pass.
    uncompared = [m for m, n in checked_per_metric.items() if n == 0]
    if uncompared:
        print(f"FAIL: gated metric(s) never compared: "
              f"{', '.join(uncompared)} (renamed key or wrong --metric?)")
        return 1
    if failures:
        print(f"bench_check: {failures} regression(s)")
        return 1
    print(f"bench_check: {sum(checked_per_metric.values())} "
          f"comparison(s) clean")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Fail on benchmark regressions vs a committed baseline.")
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_*.json")
    parser.add_argument("--fresh",
                        help="freshly produced BENCH_*.json")
    parser.add_argument("--metric", action="append", dest="metrics",
                        default=[],
                        help="higher-is-better metric key to gate "
                             "(repeatable)")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional drop (default 0.25)")
    parser.add_argument("--min-baseline", type=float, default=0.05,
                        help="skip records whose baseline value is below "
                             "this (default 0.05)")
    parser.add_argument("--list", action="store_true",
                        help="print the baseline's records and gateable "
                             "metric keys, then exit")
    args = parser.parse_args(argv)
    if not args.list and not args.fresh:
        parser.error("--fresh is required unless --list is given")
    if not args.list and not args.metrics:
        parser.error("at least one --metric is required unless --list "
                     "is given")
    return run_check(args)


if __name__ == "__main__":
    sys.exit(main())
