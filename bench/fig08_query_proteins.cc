// Figure 8: range-query cost on PROTEINS / Levenshtein, as the percentage
// of distance computations relative to the naive linear scan, across
// query range sizes.
//
// Paper's observations to reproduce:
//  * the reference net (RN) beats the cover tree (CT) across ranges;
//  * MV-5 (same space as RN) is much worse;
//  * MV-50 (10x the space) wins only at very small ranges; around range
//    ~2 (10% of the max distance 20) it crosses over and falls behind.

#include <cstdio>

#include "bench_common.h"
#include "subseq/distance/levenshtein.h"

namespace subseq::bench {
namespace {

void Run() {
  Banner("Figure 8",
         "query cost (% of naive distance computations), PROTEINS");
  const int32_t windows = Scaled(4000, 100000);
  const int32_t num_queries = Scaled(40, 100);

  const auto db = MakeProteinDb(windows, 51);
  auto catalog = WindowCatalog::PartitionDatabase(db, kWindowLength);
  const LevenshteinDistance<char> lev;
  const WindowOracle<char> oracle(db, catalog.value(), lev);
  const auto queries =
      MakeProteinQueries(db, catalog.value(), num_queries, 52);

  const std::vector<std::string> kinds = {"rn", "ct", "mv-5", "mv-50"};
  std::vector<std::unique_ptr<RangeIndex>> indexes;
  for (const auto& kind : kinds) {
    std::printf("building %s...\n", kind.c_str());
    indexes.push_back(BuildIndex(kind, oracle));
  }

  std::printf("\n%8s", "range");
  for (const auto& kind : kinds) std::printf(" %9s", kind.c_str());
  std::printf("\n");
  for (const double eps : {0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0}) {
    std::printf("%8.1f", eps);
    for (size_t i = 0; i < kinds.size(); ++i) {
      const double frac =
          AvgComputationFraction(*indexes[i], oracle, queries, eps);
      std::printf(" %8.1f%%", 100.0 * frac);
    }
    std::printf("\n");
  }
  std::printf("\nmax Levenshtein distance on length-20 windows = 20; the "
              "paper's 10%% crossover\nis range 2.\nExpected shape: rn <= "
              "ct everywhere; mv-5 worst; mv-50 best only below the\n"
              "crossover, then degrading toward the scan.\n");
}

}  // namespace
}  // namespace subseq::bench

int main() {
  subseq::bench::Run();
  return 0;
}
