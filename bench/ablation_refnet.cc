// Ablation (beyond the paper's figures): the reference net's two design
// knobs on PROTEINS / Levenshtein —
//  * eps' (base radius): how level granularity affects build cost, space
//    and query pruning;
//  * num_max (parent cap), including num_max = 1, which degenerates the
//    multi-parent net into a tree and isolates the benefit of Figure 2's
//    multi-parenting.

#include <cstdio>

#include "bench_common.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/metric/reference_net.h"

namespace subseq::bench {
namespace {

void Run() {
  Banner("Ablation", "reference-net design knobs (eps', num_max), PROTEINS");
  const int32_t windows = Scaled(2000, 20000);
  const int32_t num_queries = Scaled(30, 100);

  const auto db = MakeProteinDb(windows, 95);
  auto catalog = WindowCatalog::PartitionDatabase(db, kWindowLength);
  const LevenshteinDistance<char> lev;
  const WindowOracle<char> oracle(db, catalog.value(), lev);
  const auto queries =
      MakeProteinQueries(db, catalog.value(), num_queries, 96);

  std::printf("%8s %8s | %12s %10s %10s | %9s %9s %9s\n", "eps'",
              "num_max", "build-comp", "entries", "MB", "q@1", "q@2",
              "q@4");
  // Note: powers of two are equivalent for eps' (they only shift level
  // indices); the interesting knob is the fractional part relative to the
  // distance quantization.
  for (const double base_radius : {0.6, 0.8, 1.0, 1.3, 1.7}) {
    for (const int32_t max_parents : {0, 1, 5}) {
      ReferenceNetOptions options;
      options.base_radius = base_radius;
      options.max_parents = max_parents;
      ReferenceNet net(oracle, options);
      for (ObjectId id = 0; id < oracle.size(); ++id) {
        const Status s = net.Insert(id);
        SUBSEQ_CHECK(s.ok());
      }
      const SpaceStats space = net.ComputeSpaceStats();
      std::printf("%8.2f %8d | %12lld %10lld %10.3f |", base_radius,
                  max_parents,
                  static_cast<long long>(
                      net.build_stats().distance_computations),
                  static_cast<long long>(space.num_list_entries),
                  static_cast<double>(space.approx_bytes) / 1e6);
      for (const double eps : {1.0, 2.0, 4.0}) {
        const double frac =
            AvgComputationFraction(net, oracle, queries, eps);
        std::printf(" %8.1f%%", 100.0 * frac);
      }
      std::printf("\n");
    }
  }
  std::printf("\nReading guide: num_max = 0 is unlimited, 1 degenerates to "
              "a tree (cover-tree-like),\n5 is the paper's RN-5. q@e = "
              "average %% of naive distance computations at range e.\n");
}

}  // namespace
}  // namespace subseq::bench

int main() {
  subseq::bench::Run();
  return 0;
}
