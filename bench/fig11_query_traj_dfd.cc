// Figure 11: range-query cost on TRAJ / DFD — the same setup as Figure 10
// with the discrete Frechet distance, expected to show the same shape.

#include <cstdio>

#include "bench_common.h"
#include "subseq/core/histogram.h"
#include "subseq/distance/frechet.h"

namespace subseq::bench {
namespace {

void Run() {
  Banner("Figure 11", "query cost (% of naive) + distance CDF, TRAJ / DFD");
  const int32_t windows = Scaled(4000, 100000);
  const int32_t num_queries = Scaled(40, 100);

  const auto db = MakeTrajDb(windows, 81);
  auto catalog = WindowCatalog::PartitionDatabase(db, kWindowLength);
  const FrechetDistance2D dfd;
  const WindowOracle<Point2d> oracle(db, catalog.value(), dfd);
  const auto queries = MakeTrajQueries(db, catalog.value(), num_queries, 82);

  Rng rng(83);
  Histogram hist(0.0, 120.0, 48);
  for (int i = 0; i < Scaled(20000, 100000); ++i) {
    const ObjectId a = static_cast<ObjectId>(
        rng.NextBounded(static_cast<uint64_t>(oracle.size())));
    ObjectId b = static_cast<ObjectId>(
        rng.NextBounded(static_cast<uint64_t>(oracle.size())));
    if (a == b) b = (b + 1) % oracle.size();
    hist.Add(oracle.Distance(a, b));
  }

  const std::vector<std::string> kinds = {"rn", "ct", "mv-20"};
  std::vector<std::unique_ptr<RangeIndex>> indexes;
  for (const auto& kind : kinds) {
    std::printf("building %s...\n", kind.c_str());
    indexes.push_back(BuildIndex(kind, oracle));
  }

  std::printf("\n%8s %10s", "range", "pair-CDF");
  for (const auto& kind : kinds) std::printf(" %9s", kind.c_str());
  std::printf("\n");
  for (const double eps : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    std::printf("%8.1f %9.1f%%", eps, 100.0 * hist.CdfAt(eps));
    for (size_t i = 0; i < kinds.size(); ++i) {
      const double frac =
          AvgComputationFraction(*indexes[i], oracle, queries, eps);
      std::printf(" %8.1f%%", 100.0 * frac);
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: same as Figure 10 — rn ~ ct, both beating "
              "mv-20 at small ranges.\n");
}

}  // namespace
}  // namespace subseq::bench

int main() {
  subseq::bench::Run();
  return 0;
}
