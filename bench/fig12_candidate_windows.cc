// Figure 12: candidate-window statistics on PROTEINS-10K.
//
// For random queries sized like the smallest proteins, sweep epsilon and
// report (a) the percentage of unique database windows that match at
// least one query segment and (b) the (much smaller) percentage of
// windows that sit in runs of >= 2 consecutive matched windows — the
// candidates the Type II search verifies first.
//
// Paper's observations to reproduce:
//  * matched-window percentage follows the distance distribution, hitting
//    100% at epsilon = 20 (the max distance);
//  * the consecutive-window percentage is far smaller, which is why the
//    Type II refinement starts from chains and stays cheap.

#include <cstdio>
#include <set>

#include "bench_common.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/data/motif.h"
#include "subseq/frame/matcher.h"

namespace subseq::bench {
namespace {

void Run() {
  Banner("Figure 12", "matched & consecutive windows vs epsilon, PROTEINS");
  const int32_t windows = Scaled(2000, 10000);
  const int32_t num_queries = Scaled(6, 20);
  const int32_t query_length = 100;  // "similar to the smallest proteins"

  const auto db = MakeProteinDb(windows, 91);
  const LevenshteinDistance<char> lev;
  MatcherOptions options;
  options.lambda = 2 * kWindowLength;
  options.lambda0 = 2;
  auto matcher =
      std::move(SubsequenceMatcher<char>::Build(db, lev, options))
          .ValueOrDie();
  const int32_t total_windows = matcher->catalog().num_windows();

  // Random queries sized like the smallest proteins, each carrying a
  // mutated copy of a 3-window database region (queries unrelated to the
  // database match nothing until epsilon reaches the random-pair band,
  // which would make the curve a step function instead of tracking the
  // distance distribution).
  MotifPlanter planter(93);
  MotifOptions motif_options;
  motif_options.substitution_rate = 0.08;
  ProteinGenOptions query_options;
  query_options.seed = 92;
  query_options.family_fraction = 0.0;
  ProteinGenerator query_gen(query_options);
  Rng rng(94);
  std::vector<Sequence<char>> queries;
  for (int32_t i = 0; i < num_queries; ++i) {
    Sequence<char> q = query_gen.GenerateWithLength(query_length);
    const ObjectId w = static_cast<ObjectId>(rng.NextBounded(
        static_cast<uint64_t>(total_windows)));
    const WindowRef& ref = matcher->catalog().at(w);
    const int32_t region_len =
        std::min(3 * kWindowLength,
                 db.at(ref.seq).size() - ref.span.begin);
    const auto region = db.at(ref.seq).Subsequence(
        Interval{ref.span.begin, ref.span.begin + region_len});
    const auto payload = planter.Mutate(region, motif_options);
    const int32_t pos = planter.DrawPosition(
        q.size(), static_cast<int32_t>(payload.size()));
    queries.push_back(planter.Embed<char>(q, payload, pos));
  }

  std::printf("%8s %16s %22s %12s\n", "epsilon", "unique windows",
              ">=2 consecutive chains", "avg chains");
  for (const double eps :
       {2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0}) {
    double unique_frac = 0.0;
    double consecutive_frac = 0.0;
    double avg_chains = 0.0;
    for (const auto& q : queries) {
      const auto hits = matcher->FilterSegments(q.view(), eps, nullptr);
      std::set<ObjectId> matched;
      for (const auto& h : hits) matched.insert(h.window);
      const auto chains = BuildChains(hits, matcher->catalog());
      int64_t consecutive = 0;
      for (const auto& c : chains) {
        if (c.length >= 2) consecutive += c.length;
      }
      unique_frac += static_cast<double>(matched.size()) / total_windows;
      consecutive_frac += static_cast<double>(consecutive) / total_windows;
      avg_chains += static_cast<double>(chains.size());
    }
    unique_frac /= queries.size();
    consecutive_frac /= queries.size();
    avg_chains /= queries.size();
    std::printf("%8.0f %15.2f%% %21.3f%% %12.1f\n", eps,
                100.0 * unique_frac, 100.0 * consecutive_frac, avg_chains);
  }
  std::printf("\nExpected shape: unique-window %% tracks the Levenshtein "
              "CDF and reaches 100%% at\nepsilon 20; consecutive-window %% "
              "stays far below it until epsilon is large.\n");
}

}  // namespace
}  // namespace subseq::bench

int main() {
  subseq::bench::Run();
  return 0;
}
