// Shared infrastructure for the per-figure benchmark drivers.
//
// Every driver is deterministic (fixed seeds) and prints a paper-style
// table. Sizes default to laptop/CI scale; set SUBSEQ_BENCH_SCALE=full in
// the environment to run the paper's dataset sizes (expect minutes to
// tens of minutes per figure on one core).

#ifndef SUBSEQ_BENCH_BENCH_COMMON_H_
#define SUBSEQ_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "subseq/core/rng.h"
#include "subseq/exec/exec_context.h"
#include "subseq/exec/stats_sink.h"
#include "subseq/core/sequence.h"
#include "subseq/core/types.h"
#include "subseq/data/protein_gen.h"
#include "subseq/data/song_gen.h"
#include "subseq/data/trajectory_gen.h"
#include "subseq/distance/distance.h"
#include "subseq/frame/window_oracle.h"
#include "subseq/frame/windowing.h"
#include "subseq/metric/range_index.h"

namespace subseq::bench {

/// The paper's window length for all three datasets.
inline constexpr int32_t kWindowLength = 20;

/// True when SUBSEQ_BENCH_SCALE=full.
bool FullScale();

/// Picks the CI-scale or paper-scale variant.
template <typename T>
T Scaled(T ci_value, T full_value) {
  return FullScale() ? full_value : ci_value;
}

/// Prints a separator + figure banner.
void Banner(const std::string& figure, const std::string& description);

/// Builds a protein database holding >= num_windows windows of length 20,
/// with UniProt-like family redundancy (see data/protein_gen.h).
SequenceDatabase<char> MakeProteinDb(int32_t num_windows, uint64_t seed);

/// Builds a pitch-sequence (SONGS) database holding >= num_windows windows.
SequenceDatabase<double> MakeSongDb(int32_t num_windows, uint64_t seed);

/// Builds a trajectory (TRAJ) database holding >= num_windows windows.
SequenceDatabase<Point2d> MakeTrajDb(int32_t num_windows, uint64_t seed);

/// Query workload: `count` window-length query segments. Half are mutated
/// copies of database windows (the retrieval scenario the framework
/// exists for); half are fresh draws from the generator distribution.
std::vector<std::vector<char>> MakeProteinQueries(
    const SequenceDatabase<char>& db, const WindowCatalog& catalog,
    int32_t count, uint64_t seed);
std::vector<std::vector<double>> MakeSongQueries(
    const SequenceDatabase<double>& db, const WindowCatalog& catalog,
    int32_t count, uint64_t seed);
std::vector<std::vector<Point2d>> MakeTrajQueries(
    const SequenceDatabase<Point2d>& db, const WindowCatalog& catalog,
    int32_t count, uint64_t seed);

/// Builds the named index ("rn", "rn-5", "ct", "mv-5", "mv-20", "mv-50",
/// "scan") over the oracle.
std::unique_ptr<RangeIndex> BuildIndex(const std::string& kind,
                                       const DistanceOracle& oracle);

/// Average fraction (in [0, 1]) of query-to-window distance computations
/// relative to a full scan, over the given queries at one epsilon. The
/// workload is issued as one BatchRangeQuery over `exec`; counts (and so
/// the reported fraction) are identical at any thread setting.
template <typename T>
double AvgComputationFraction(const RangeIndex& index,
                              const WindowOracle<T>& oracle,
                              const std::vector<std::vector<T>>& queries,
                              double epsilon,
                              const ExecContext& exec = {}) {
  std::vector<QueryDistanceFn> fns;
  fns.reserve(queries.size());
  for (const auto& q : queries) {
    fns.push_back(oracle.SegmentQuery(std::span<const T>(q)));
  }
  StatsSink sink;
  index.BatchRangeQuery(fns, epsilon, exec, &sink);
  return static_cast<double>(sink.distance_computations()) /
         (static_cast<double>(queries.size()) *
          static_cast<double>(oracle.size()));
}

/// One machine-readable benchmark record: a row name plus named numeric
/// metrics.
struct BenchRecord {
  std::string name;
  std::vector<std::pair<std::string, double>> metrics;
};

/// Writes `{"benchmark": ..., "scale": ..., "records": [...]}` to `path`
/// (the machine-readable counterpart of the printed tables). Returns
/// false if the file cannot be written.
bool WriteBenchJson(const std::string& path, const std::string& benchmark,
                    const std::vector<BenchRecord>& records);

}  // namespace subseq::bench

#endif  // SUBSEQ_BENCH_BENCH_COMMON_H_
