// Figure 10: range-query cost on TRAJ / ERP, with the pairwise-distance
// distribution overlaid (the paper plots both on one figure).
//
// Paper's observations to reproduce:
//  * the index cost curves follow the distance distribution's CDF;
//  * RN and CT perform similarly here (similar space, tree-like
//    structure on high-variance data) and both beat MV-20 despite its
//    ~10x space.

#include <cstdio>

#include "bench_common.h"
#include "subseq/core/histogram.h"
#include "subseq/distance/erp.h"

namespace subseq::bench {
namespace {

void Run() {
  Banner("Figure 10", "query cost (% of naive) + distance CDF, TRAJ / ERP");
  const int32_t windows = Scaled(4000, 100000);
  const int32_t num_queries = Scaled(40, 100);

  const auto db = MakeTrajDb(windows, 71);
  auto catalog = WindowCatalog::PartitionDatabase(db, kWindowLength);
  const ErpDistance2D erp;
  const WindowOracle<Point2d> oracle(db, catalog.value(), erp);
  const auto queries = MakeTrajQueries(db, catalog.value(), num_queries, 72);

  // Pairwise distance distribution (for the CDF column).
  Rng rng(73);
  Histogram hist(0.0, 2400.0, 48);
  for (int i = 0; i < Scaled(20000, 100000); ++i) {
    const ObjectId a = static_cast<ObjectId>(
        rng.NextBounded(static_cast<uint64_t>(oracle.size())));
    ObjectId b = static_cast<ObjectId>(
        rng.NextBounded(static_cast<uint64_t>(oracle.size())));
    if (a == b) b = (b + 1) % oracle.size();
    hist.Add(oracle.Distance(a, b));
  }

  const std::vector<std::string> kinds = {"rn", "ct", "mv-20"};
  std::vector<std::unique_ptr<RangeIndex>> indexes;
  for (const auto& kind : kinds) {
    std::printf("building %s...\n", kind.c_str());
    indexes.push_back(BuildIndex(kind, oracle));
  }

  std::printf("\n%8s %10s", "range", "pair-CDF");
  for (const auto& kind : kinds) std::printf(" %9s", kind.c_str());
  std::printf("\n");
  for (const double eps :
       {5.0, 10.0, 25.0, 50.0, 100.0, 200.0, 400.0, 800.0}) {
    std::printf("%8.0f %9.1f%%", eps, 100.0 * hist.CdfAt(eps));
    for (size_t i = 0; i < kinds.size(); ++i) {
      const double frac =
          AvgComputationFraction(*indexes[i], oracle, queries, eps);
      std::printf(" %8.1f%%", 100.0 * frac);
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: rn ~ ct, both well below mv-20 at small "
              "ranges; curves track\nthe pairwise-distance CDF.\n");
}

}  // namespace
}  // namespace subseq::bench

int main() {
  subseq::bench::Run();
  return 0;
}
