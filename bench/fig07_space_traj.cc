// Figure 7: reference-net space overhead on TRAJ under DFD and ERP.
//
// Paper's observation to reproduce: the trajectory distance distributions
// have high variance, so the net stays almost tree-like — small average
// parent counts, and total size less than twice the cover tree's.

#include <cstdio>

#include "bench_common.h"
#include "subseq/distance/erp.h"
#include "subseq/distance/frechet.h"

namespace subseq::bench {
namespace {

void Run() {
  Banner("Figure 7", "space overhead, TRAJ: DFD and ERP vs cover tree");
  const std::vector<int32_t> sizes =
      FullScale() ? std::vector<int32_t>{10000, 25000, 50000, 100000}
                  : std::vector<int32_t>{1000, 2000, 4000, 8000};

  const FrechetDistance2D dfd;
  const ErpDistance2D erp;
  std::printf("%10s | %10s %10s %10s | %10s %10s %10s\n", "windows",
              "dfd-par", "dfd-MB", "dfd-ct-MB", "erp-par", "erp-MB",
              "erp-ct-MB");
  for (const int32_t n : sizes) {
    const auto db = MakeTrajDb(n, 41);
    auto catalog = WindowCatalog::PartitionDatabase(db, kWindowLength);
    SpaceStats dfd_rn;
    SpaceStats dfd_ct;
    SpaceStats erp_rn;
    SpaceStats erp_ct;
    int32_t windows = 0;
    {
      const WindowOracle<Point2d> oracle(db, catalog.value(), dfd);
      windows = oracle.size();
      dfd_rn = BuildIndex("rn", oracle)->ComputeSpaceStats();
      dfd_ct = BuildIndex("ct", oracle)->ComputeSpaceStats();
    }
    {
      const WindowOracle<Point2d> oracle(db, catalog.value(), erp);
      erp_rn = BuildIndex("rn", oracle)->ComputeSpaceStats();
      erp_ct = BuildIndex("ct", oracle)->ComputeSpaceStats();
    }
    std::printf("%10d | %10.2f %10.3f %10.3f | %10.2f %10.3f %10.3f\n",
                windows, dfd_rn.avg_parents,
                static_cast<double>(dfd_rn.approx_bytes) / 1e6,
                static_cast<double>(dfd_ct.approx_bytes) / 1e6,
                erp_rn.avg_parents,
                static_cast<double>(erp_rn.approx_bytes) / 1e6,
                static_cast<double>(erp_ct.approx_bytes) / 1e6);
  }
  std::printf("\nExpected shape: small avg parents for both distances; "
              "reference net less than\n~2x the cover tree size.\n");
}

}  // namespace
}  // namespace subseq::bench

int main() {
  subseq::bench::Run();
  return 0;
}
