// Microbenchmarks of index operations (google-benchmark) on a scalar
// metric space: reference-net / cover-tree construction and range query.

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "subseq/core/rng.h"
#include "subseq/metric/cover_tree.h"
#include "subseq/metric/linear_scan.h"
#include "subseq/metric/mv_index.h"
#include "subseq/metric/oracle.h"
#include "subseq/metric/reference_net.h"

namespace subseq {
namespace {

class PointOracle final : public DistanceOracle {
 public:
  explicit PointOracle(std::vector<double> pts) : pts_(std::move(pts)) {}
  int32_t size() const override {
    return static_cast<int32_t>(pts_.size());
  }
  double Distance(ObjectId a, ObjectId b) const override {
    return std::fabs(pts_[static_cast<size_t>(a)] -
                     pts_[static_cast<size_t>(b)]);
  }
  QueryDistanceFn QueryFrom(double q) const {
    return [this, q](ObjectId id) {
      return std::fabs(q - pts_[static_cast<size_t>(id)]);
    };
  }

 private:
  std::vector<double> pts_;
};

std::vector<double> MakePoints(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> pts;
  pts.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) pts.push_back(rng.NextDouble(0.0, 1000.0));
  return pts;
}

void BM_ReferenceNetBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const PointOracle oracle(MakePoints(n, 7));
  for (auto _ : state) {
    ReferenceNet net = ReferenceNet::BuildAll(oracle);
    benchmark::DoNotOptimize(net.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_CoverTreeBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const PointOracle oracle(MakePoints(n, 7));
  for (auto _ : state) {
    CoverTree tree = CoverTree::BuildAll(oracle);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_ReferenceNetRangeQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double eps = static_cast<double>(state.range(1));
  const PointOracle oracle(MakePoints(n, 9));
  const ReferenceNet net = ReferenceNet::BuildAll(oracle);
  Rng rng(10);
  for (auto _ : state) {
    const double q = rng.NextDouble(0.0, 1000.0);
    benchmark::DoNotOptimize(net.RangeQuery(oracle.QueryFrom(q), eps,
                                            nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_LinearScanRangeQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double eps = static_cast<double>(state.range(1));
  const PointOracle oracle(MakePoints(n, 9));
  const LinearScan scan(oracle.size());
  Rng rng(10);
  for (auto _ : state) {
    const double q = rng.NextDouble(0.0, 1000.0);
    benchmark::DoNotOptimize(scan.RangeQuery(oracle.QueryFrom(q), eps,
                                             nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_MvIndexRangeQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double eps = static_cast<double>(state.range(1));
  const PointOracle oracle(MakePoints(n, 9));
  const MvIndex index(oracle);
  Rng rng(10);
  for (auto _ : state) {
    const double q = rng.NextDouble(0.0, 1000.0);
    benchmark::DoNotOptimize(index.RangeQuery(oracle.QueryFrom(q), eps,
                                              nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_ReferenceNetBuild)->Arg(1000)->Arg(5000);
BENCHMARK(BM_CoverTreeBuild)->Arg(1000)->Arg(5000);
BENCHMARK(BM_ReferenceNetRangeQuery)
    ->Args({10000, 1})
    ->Args({10000, 10})
    ->Args({10000, 100});
BENCHMARK(BM_LinearScanRangeQuery)->Args({10000, 1})->Args({10000, 100});
BENCHMARK(BM_MvIndexRangeQuery)
    ->Args({10000, 1})
    ->Args({10000, 10})
    ->Args({10000, 100});

}  // namespace
}  // namespace subseq
