// Microbenchmarks of index operations (google-benchmark) on a scalar
// metric space: reference-net / cover-tree construction and range query.

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "subseq/core/rng.h"
#include "subseq/exec/exec_context.h"
#include "subseq/metric/cover_tree.h"
#include "subseq/metric/linear_scan.h"
#include "subseq/metric/mv_index.h"
#include "subseq/metric/oracle.h"
#include "subseq/metric/reference_net.h"
#include "subseq/metric/vp_tree.h"

namespace subseq {
namespace {

class PointOracle final : public DistanceOracle {
 public:
  explicit PointOracle(std::vector<double> pts) : pts_(std::move(pts)) {}
  int32_t size() const override {
    return static_cast<int32_t>(pts_.size());
  }
  double Distance(ObjectId a, ObjectId b) const override {
    return std::fabs(pts_[static_cast<size_t>(a)] -
                     pts_[static_cast<size_t>(b)]);
  }
  QueryDistanceFn QueryFrom(double q) const {
    return [this, q](ObjectId id) {
      return std::fabs(q - pts_[static_cast<size_t>(id)]);
    };
  }

 private:
  std::vector<double> pts_;
};

std::vector<double> MakePoints(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> pts;
  pts.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) pts.push_back(rng.NextDouble(0.0, 1000.0));
  return pts;
}

void BM_ReferenceNetBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const PointOracle oracle(MakePoints(n, 7));
  for (auto _ : state) {
    ReferenceNet net = ReferenceNet::BuildAll(oracle);
    benchmark::DoNotOptimize(net.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_CoverTreeBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const PointOracle oracle(MakePoints(n, 7));
  for (auto _ : state) {
    CoverTree tree = CoverTree::BuildAll(oracle);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_ReferenceNetRangeQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double eps = static_cast<double>(state.range(1));
  const PointOracle oracle(MakePoints(n, 9));
  const ReferenceNet net = ReferenceNet::BuildAll(oracle);
  Rng rng(10);
  for (auto _ : state) {
    const double q = rng.NextDouble(0.0, 1000.0);
    benchmark::DoNotOptimize(net.RangeQuery(oracle.QueryFrom(q), eps,
                                            nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_LinearScanRangeQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double eps = static_cast<double>(state.range(1));
  const PointOracle oracle(MakePoints(n, 9));
  const LinearScan scan(oracle.size());
  Rng rng(10);
  for (auto _ : state) {
    const double q = rng.NextDouble(0.0, 1000.0);
    benchmark::DoNotOptimize(scan.RangeQuery(oracle.QueryFrom(q), eps,
                                             nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_MvIndexRangeQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double eps = static_cast<double>(state.range(1));
  const PointOracle oracle(MakePoints(n, 9));
  const MvIndex index(oracle);
  Rng rng(10);
  for (auto _ : state) {
    const double q = rng.NextDouble(0.0, 1000.0);
    benchmark::DoNotOptimize(index.RangeQuery(oracle.QueryFrom(q), eps,
                                              nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}

// Thread scaling of the exec layer (the second benchmark argument is
// ExecContext::num_threads). Results are identical at every setting;
// only wall-clock should move.
void BM_MvIndexBuildThreads(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const PointOracle oracle(MakePoints(n, 7));
  MvIndexOptions options;
  options.num_references = 20;
  options.sample_size = 400;
  options.exec = ExecContext{threads};
  for (auto _ : state) {
    const MvIndex index(oracle, options);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_VpTreeBuildThreads(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const PointOracle oracle(MakePoints(n, 7));
  VpTreeOptions options;
  options.exec = ExecContext{threads};
  for (auto _ : state) {
    const VpTree tree(oracle, options);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_BatchRangeQueryThreads(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const PointOracle oracle(MakePoints(n, 9));
  const LinearScan scan(oracle.size());
  Rng rng(10);
  std::vector<QueryDistanceFn> queries;
  for (int i = 0; i < 64; ++i) {
    queries.push_back(oracle.QueryFrom(rng.NextDouble(0.0, 1000.0)));
  }
  const ExecContext exec{threads};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scan.BatchRangeQuery(queries, 10.0, exec, nullptr));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
}

BENCHMARK(BM_ReferenceNetBuild)->Arg(1000)->Arg(5000);
BENCHMARK(BM_CoverTreeBuild)->Arg(1000)->Arg(5000);
BENCHMARK(BM_ReferenceNetRangeQuery)
    ->Args({10000, 1})
    ->Args({10000, 10})
    ->Args({10000, 100});
BENCHMARK(BM_LinearScanRangeQuery)->Args({10000, 1})->Args({10000, 100});
BENCHMARK(BM_MvIndexRangeQuery)
    ->Args({10000, 1})
    ->Args({10000, 10})
    ->Args({10000, 100});
BENCHMARK(BM_MvIndexBuildThreads)
    ->Args({5000, 1})
    ->Args({5000, 2})
    ->Args({5000, 4})
    ->Args({5000, 8});
BENCHMARK(BM_VpTreeBuildThreads)
    ->Args({20000, 1})
    ->Args({20000, 4});
BENCHMARK(BM_BatchRangeQueryThreads)
    ->Args({20000, 1})
    ->Args({20000, 2})
    ->Args({20000, 4})
    ->Args({20000, 8});

}  // namespace
}  // namespace subseq
