#include "bench_common.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "subseq/core/check.h"
#include "subseq/data/motif.h"
#include "subseq/metric/cover_tree.h"
#include "subseq/metric/linear_scan.h"
#include "subseq/metric/mv_index.h"
#include "subseq/metric/reference_net.h"
#include "subseq/metric/vp_tree.h"

namespace subseq::bench {

bool FullScale() {
  const char* v = std::getenv("SUBSEQ_BENCH_SCALE");
  return v != nullptr && std::strcmp(v, "full") == 0;
}

void Banner(const std::string& figure, const std::string& description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("scale: %s (set SUBSEQ_BENCH_SCALE=full for paper sizes)\n",
              FullScale() ? "full" : "ci");
  std::printf("================================================================\n");
}

SequenceDatabase<char> MakeProteinDb(int32_t num_windows, uint64_t seed) {
  ProteinGenOptions options;
  options.mean_length = 400;
  options.seed = seed;
  options.family_fraction = 0.9;
  ProteinGenerator gen(options);
  return gen.GenerateDatabaseWithWindows(num_windows, kWindowLength);
}

SequenceDatabase<double> MakeSongDb(int32_t num_windows, uint64_t seed) {
  SongGenOptions options;
  options.mean_length = 300;
  options.seed = seed;
  SongGenerator gen(options);
  return gen.GenerateDatabaseWithWindows(num_windows, kWindowLength);
}

SequenceDatabase<Point2d> MakeTrajDb(int32_t num_windows, uint64_t seed) {
  TrajectoryGenOptions options;
  options.mean_length = 250;
  options.seed = seed;
  TrajectoryGenerator gen(options);
  return gen.GenerateDatabaseWithWindows(num_windows, kWindowLength);
}

namespace {

// Half mutated database windows, half fresh generator output.
template <typename T, typename MakeFresh, typename MutateWindow>
std::vector<std::vector<T>> MakeQueries(const SequenceDatabase<T>& db,
                                        const WindowCatalog& catalog,
                                        int32_t count, uint64_t seed,
                                        MakeFresh&& make_fresh,
                                        MutateWindow&& mutate) {
  SUBSEQ_CHECK(catalog.num_windows() > 0);
  Rng rng(seed);
  std::vector<std::vector<T>> queries;
  queries.reserve(static_cast<size_t>(count));
  for (int32_t i = 0; i < count; ++i) {
    if (i % 2 == 0) {
      const ObjectId w = static_cast<ObjectId>(
          rng.NextBounded(static_cast<uint64_t>(catalog.num_windows())));
      const WindowRef& ref = catalog.at(w);
      const auto view = db.at(ref.seq).Subsequence(ref.span);
      queries.push_back(mutate(view, &rng));
    } else {
      queries.push_back(make_fresh(&rng));
    }
  }
  return queries;
}

}  // namespace

std::vector<std::vector<char>> MakeProteinQueries(
    const SequenceDatabase<char>& db, const WindowCatalog& catalog,
    int32_t count, uint64_t seed) {
  return MakeQueries<char>(
      db, catalog, count, seed,
      [](Rng* rng) {
        ProteinGenOptions options;
        options.seed = rng->NextU64();
        options.family_fraction = 0.0;
        ProteinGenerator gen(options);
        return gen.GenerateWithLength(kWindowLength).elements();
      },
      [](std::span<const char> w, Rng* rng) {
        MotifPlanter planter(rng->NextU64());
        MotifOptions options;
        options.substitution_rate = 0.10;
        return planter.Mutate(w, options);
      });
}

std::vector<std::vector<double>> MakeSongQueries(
    const SequenceDatabase<double>& db, const WindowCatalog& catalog,
    int32_t count, uint64_t seed) {
  return MakeQueries<double>(
      db, catalog, count, seed,
      [](Rng* rng) {
        SongGenOptions options;
        options.seed = rng->NextU64();
        SongGenerator gen(options);
        return gen.GenerateWithLength(kWindowLength).elements();
      },
      [](std::span<const double> w, Rng* rng) {
        std::vector<double> out(w.begin(), w.end());
        for (double& v : out) {
          if (rng->NextBool(0.2)) {
            v = std::clamp(v + static_cast<double>(rng->NextInt(-2, 2)),
                           0.0, 11.0);
          }
        }
        return out;
      });
}

std::vector<std::vector<Point2d>> MakeTrajQueries(
    const SequenceDatabase<Point2d>& db, const WindowCatalog& catalog,
    int32_t count, uint64_t seed) {
  return MakeQueries<Point2d>(
      db, catalog, count, seed,
      [](Rng* rng) {
        TrajectoryGenOptions options;
        options.seed = rng->NextU64();
        TrajectoryGenerator gen(options);
        return gen.GenerateWithLength(kWindowLength).elements();
      },
      [](std::span<const Point2d> w, Rng* rng) {
        std::vector<Point2d> out(w.begin(), w.end());
        for (Point2d& p : out) {
          p.x += 0.3 * rng->NextGaussian();
          p.y += 0.3 * rng->NextGaussian();
        }
        return out;
      });
}

namespace {

// JSON string escaping (quotes, backslashes, control characters).
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// JSON has no inf/nan literals; emit null for non-finite metrics.
void PrintJsonNumber(std::FILE* f, double value) {
  if (std::isfinite(value)) {
    std::fprintf(f, "%.17g", value);
  } else {
    std::fprintf(f, "null");
  }
}

}  // namespace

bool WriteBenchJson(const std::string& path, const std::string& benchmark,
                    const std::vector<BenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"benchmark\": \"%s\",\n  \"scale\": \"%s\",\n",
               EscapeJson(benchmark).c_str(), FullScale() ? "full" : "ci");
  std::fprintf(f, "  \"records\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f, "    {\"name\": \"%s\"", EscapeJson(r.name).c_str());
    for (const auto& [key, value] : r.metrics) {
      std::fprintf(f, ", \"%s\": ", EscapeJson(key).c_str());
      PrintJsonNumber(f, value);
    }
    std::fprintf(f, "}%s\n", i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  const bool ok = std::ferror(f) == 0;
  return std::fclose(f) == 0 && ok;
}

std::unique_ptr<RangeIndex> BuildIndex(const std::string& kind,
                                       const DistanceOracle& oracle) {
  if (kind == "rn" || kind == "rn-5") {
    ReferenceNetOptions options;
    if (kind == "rn-5") options.max_parents = 5;
    auto net = std::make_unique<ReferenceNet>(oracle, options);
    for (ObjectId id = 0; id < oracle.size(); ++id) {
      SUBSEQ_CHECK(net->Insert(id).ok());
    }
    return net;
  }
  if (kind == "ct") {
    auto tree = std::make_unique<CoverTree>(oracle);
    for (ObjectId id = 0; id < oracle.size(); ++id) {
      SUBSEQ_CHECK(tree->Insert(id).ok());
    }
    return tree;
  }
  if (kind == "mv-5" || kind == "mv-20" || kind == "mv-50") {
    MvIndexOptions options;
    options.num_references = std::atoi(kind.c_str() + 3);
    return std::make_unique<MvIndex>(oracle, options);
  }
  if (kind == "vp") {
    return std::make_unique<VpTree>(oracle);
  }
  if (kind == "scan") {
    return std::make_unique<LinearScan>(oracle.size());
  }
  SUBSEQ_CHECK(false);
  return nullptr;
}

}  // namespace subseq::bench
