// Figure 5: reference-net space overhead on PROTEINS / Levenshtein.
//
// Paper's observations to reproduce:
//  * the number of index nodes grows linearly with the number of windows;
//  * the average reference-list size (= average parents per node) stays
//    small (below ~4);
//  * total index size stays in the low megabytes at 100K windows.

#include <cstdio>

#include "bench_common.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/metric/cover_tree.h"
#include "subseq/metric/reference_net.h"

namespace subseq::bench {
namespace {

void Run() {
  Banner("Figure 5", "reference-net space overhead, PROTEINS/Levenshtein");
  const std::vector<int32_t> sizes =
      FullScale()
          ? std::vector<int32_t>{10000, 25000, 50000, 75000, 100000}
          : std::vector<int32_t>{1000, 2000, 4000, 8000};

  const LevenshteinDistance<char> lev;
  std::printf("%10s %12s %12s %14s %12s %12s\n", "windows", "rn nodes",
              "rn entries", "avg parents", "rn MB", "ct MB");
  for (const int32_t n : sizes) {
    const auto db = MakeProteinDb(n, 21);
    auto catalog = WindowCatalog::PartitionDatabase(db, kWindowLength);
    const WindowOracle<char> oracle(db, catalog.value(), lev);
    const auto rn = BuildIndex("rn", oracle);
    const auto ct = BuildIndex("ct", oracle);
    const SpaceStats s = rn->ComputeSpaceStats();
    const SpaceStats c = ct->ComputeSpaceStats();
    std::printf("%10d %12lld %12lld %14.2f %12.3f %12.3f\n", oracle.size(),
                static_cast<long long>(s.num_nodes),
                static_cast<long long>(s.num_list_entries), s.avg_parents,
                static_cast<double>(s.approx_bytes) / 1e6,
                static_cast<double>(c.approx_bytes) / 1e6);
  }
  std::printf("\nExpected shape: nodes and entries linear in windows; "
              "avg parents small (< ~4);\nreference net a small constant "
              "factor larger than the cover tree.\n");
}

}  // namespace
}  // namespace subseq::bench

int main() {
  subseq::bench::Run();
  return 0;
}
