// Figure 4: pairwise distance distributions of window pairs for each
// (dataset, distance) combination the paper evaluates.
//
// Paper's observations to reproduce:
//  * PROTEINS / Levenshtein: bounded by 20, mass in the upper-middle band;
//  * SONGS / DFD: extremely skewed — most distances between 2 and 5;
//  * SONGS / ERP: much more spread out than DFD on the same data;
//  * TRAJ / DFD and TRAJ / ERP: wide, high-variance distributions.

#include <cstdio>

#include "bench_common.h"
#include "subseq/core/histogram.h"
#include "subseq/distance/erp.h"
#include "subseq/distance/frechet.h"
#include "subseq/distance/levenshtein.h"

namespace subseq::bench {
namespace {

template <typename T>
Histogram SamplePairs(const WindowOracle<T>& oracle, double hist_max,
                      int buckets, int64_t num_pairs, uint64_t seed) {
  Rng rng(seed);
  Histogram hist(0.0, hist_max, buckets);
  const int32_t n = oracle.size();
  for (int64_t i = 0; i < num_pairs; ++i) {
    const ObjectId a =
        static_cast<ObjectId>(rng.NextBounded(static_cast<uint64_t>(n)));
    ObjectId b =
        static_cast<ObjectId>(rng.NextBounded(static_cast<uint64_t>(n)));
    if (a == b) b = (b + 1) % n;
    hist.Add(oracle.Distance(a, b));
  }
  return hist;
}

template <typename T>
void Report(const char* title, const SequenceDatabase<T>& db,
            const SequenceDistance<T>& dist, double hist_max, int buckets,
            int64_t pairs, uint64_t seed) {
  auto catalog = WindowCatalog::PartitionDatabase(db, kWindowLength);
  const WindowOracle<T> oracle(db, catalog.value(), dist);
  const Histogram hist =
      SamplePairs(oracle, hist_max, buckets, pairs, seed);
  std::printf("\n--- %s (windows=%d, pairs=%lld) ---\n", title,
              oracle.size(), static_cast<long long>(pairs));
  std::printf("mean=%.3f  var=%.3f  min=%.3f  max=%.3f\n", hist.Mean(),
              hist.Variance(), hist.Min(), hist.Max());
  std::printf("%s", hist.ToString().c_str());
}

void Run() {
  Banner("Figure 4", "pairwise distance distributions per dataset/distance");
  const int32_t protein_windows = Scaled(4000, 100000);
  const int32_t song_windows = Scaled(3000, 20000);
  const int32_t traj_windows = Scaled(4000, 100000);
  const int64_t pairs = Scaled<int64_t>(30000, 200000);

  const auto proteins = MakeProteinDb(protein_windows, 11);
  const LevenshteinDistance<char> lev;
  Report("PROTEINS / Levenshtein", proteins, lev, 20.0, 20, pairs, 101);

  const auto songs = MakeSongDb(song_windows, 12);
  const FrechetDistance1D dfd;
  const ErpDistance1D erp1;
  Report("SONGS / DFD", songs, dfd, 11.0, 22, pairs, 102);
  Report("SONGS / ERP", songs, erp1, 120.0, 24, pairs, 103);

  const auto traj = MakeTrajDb(traj_windows, 13);
  const FrechetDistance2D dfd2;
  const ErpDistance2D erp2;
  Report("TRAJ / DFD", traj, dfd2, 120.0, 24, pairs, 104);
  Report("TRAJ / ERP", traj, erp2, 2400.0, 24, pairs, 105);
}

}  // namespace
}  // namespace subseq::bench

int main() {
  subseq::bench::Run();
  return 0;
}
