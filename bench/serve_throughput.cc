// Serving throughput: cross-query coalescing versus independent library
// calls, at 1 / 8 / 64 concurrent clients (PROTEINS / Levenshtein,
// reference-net index).
//
// Baseline: C client threads, each answering its share of the workload
// with direct SubsequenceMatcher calls — the "parallel library used
// concurrently" deployment the serving layer replaces. Server: the same
// C closed-loop clients submitting to one MatchServer, whose admission
// loop coalesces concurrently-pending segment filters into shared
// BatchRangeQuery calls. Both paths answer the identical workload;
// results are cross-checked element-wise (the serving determinism
// contract) and queries/sec recorded to BENCH_serve_throughput.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "subseq/core/check.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/serve/match_server.h"

namespace subseq::bench {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double>(elapsed).count();
}

/// Nearest-rank percentile over an ALREADY SORTED vector of per-request
/// latencies in seconds, reported in milliseconds.
double PercentileMs(const std::vector<double>& sorted_seconds, double q) {
  if (sorted_seconds.empty()) return 0.0;
  const size_t idx =
      static_cast<size_t>(q * static_cast<double>(sorted_seconds.size() - 1));
  return sorted_seconds[idx] * 1000.0;
}

/// The serving workload: a pool of `pool_size` distinct queries cut from
/// database sequences (overlapping offsets, so even distinct queries
/// share segment content), drawn `count` times in a deterministic
/// pseudo-random order. Repeats model the hot-query regime a server
/// under heavy traffic actually sees — many concurrent users asking
/// about the same popular content — which is exactly what cross-query
/// segment sharing exploits. All requests use one epsilon (the
/// filter-compatibility the coalescer groups by).
std::vector<std::vector<char>> MakeServeQueries(
    const SequenceDatabase<char>& db, int32_t count, int32_t pool_size,
    int32_t length) {
  std::vector<std::vector<char>> pool;
  pool.reserve(static_cast<size_t>(pool_size));
  for (int32_t i = 0; pool.size() < static_cast<size_t>(pool_size); ++i) {
    const Sequence<char>& seq = db.at(i % db.size());
    if (seq.size() < length) continue;
    const int32_t offset = (i * 13) % (seq.size() - length + 1);
    const auto view = seq.Subsequence(Interval{offset, offset + length});
    pool.emplace_back(view.begin(), view.end());
  }
  Rng rng(99);
  std::vector<std::vector<char>> queries;
  queries.reserve(static_cast<size_t>(count));
  for (int32_t i = 0; i < count; ++i) {
    const auto pick = static_cast<size_t>(
        rng.NextDouble(0.0, static_cast<double>(pool.size())));
    queries.push_back(pool[std::min(pick, pool.size() - 1)]);
  }
  return queries;
}

int Run() {
  Banner("serve_throughput",
         "MatchServer cross-query coalescing vs independent matcher runs "
         "(PROTEINS / Levenshtein / reference net)");

  const int32_t num_windows = Scaled(200, 4000);
  const int32_t num_queries = Scaled(256, 1024);
  const int32_t pool_size = Scaled(48, 192);
  const double epsilon = 1.0;
  MatcherOptions matcher_options;
  matcher_options.lambda = 2 * kWindowLength;  // l matches the db windows
  matcher_options.lambda0 = 2;
  matcher_options.index_kind = IndexKind::kReferenceNet;

  const SequenceDatabase<char> db = MakeProteinDb(num_windows, 77);
  const LevenshteinDistance<char> dist;
  const std::vector<std::vector<char>> queries = MakeServeQueries(
      db, num_queries, pool_size, matcher_options.lambda + 4);

  auto matcher =
      std::move(SubsequenceMatcher<char>::Build(db, dist, matcher_options))
          .ValueOrDie();
  std::printf("windows=%d queries=%d (pool of %d distinct) epsilon=%.1f "
              "lambda=%d\n\n",
              matcher->catalog().num_windows(), num_queries, pool_size,
              epsilon, matcher_options.lambda);
  std::printf("%8s %14s %14s %10s %18s %16s\n", "clients", "library_qps",
              "server_qps", "speedup", "coalesced_queries",
              "shared_work_pct");

  // Ground truth (and warm-up): every query answered once, serially.
  std::vector<std::optional<SubsequenceMatch>> expected(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    expected[i] = matcher
                      ->LongestMatch(std::span<const char>(queries[i]),
                                     epsilon)
                      .ValueOrDie();
  }

  std::vector<BenchRecord> records;
  bool win_at_max_concurrency = false;
  for (const int32_t clients : {1, 8, 64}) {
    // ---- baseline: C threads calling the library independently.
    std::vector<std::optional<SubsequenceMatch>> library_results(
        queries.size());
    auto t0 = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> workers;
      for (int32_t c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
          for (size_t i = static_cast<size_t>(c); i < queries.size();
               i += static_cast<size_t>(clients)) {
            library_results[i] =
                matcher
                    ->LongestMatch(std::span<const char>(queries[i]),
                                   epsilon)
                    .ValueOrDie();
          }
        });
      }
      for (std::thread& w : workers) w.join();
    }
    const double library_s = SecondsSince(t0);

    // ---- server: the same closed-loop clients, one shared engine. The
    // cross-round cache is OFF here so these rows stay a pure in-round
    // coalescing measurement and their committed baselines remain live
    // gates; the serve_cache phase below measures the cache itself.
    MatchServerOptions server_options;
    server_options.matcher = matcher_options;
    server_options.cache_capacity_bytes = 0;
    auto server =
        std::move(MatchServer<char>::Start(db, dist, server_options))
            .ValueOrDie();
    std::vector<std::optional<SubsequenceMatch>> served_results(
        queries.size());
    // Per-request submit-to-result latency, indexed by request (each
    // slot written by exactly one client thread).
    std::vector<double> latencies(queries.size(), 0.0);
    t0 = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> workers;
      for (int32_t c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
          for (size_t i = static_cast<size_t>(c); i < queries.size();
               i += static_cast<size_t>(clients)) {
            MatchRequest<char> request;
            request.type = MatchQueryType::kLongestMatch;
            request.query = queries[i];
            request.epsilon = epsilon;
            const auto sent = std::chrono::steady_clock::now();
            MatchResult result = server->Submit(std::move(request)).Get();
            latencies[i] = SecondsSince(sent);
            SUBSEQ_CHECK(result.status.ok());
            served_results[i] = result.best;
          }
        });
      }
      for (std::thread& w : workers) w.join();
    }
    const double server_s = SecondsSince(t0);
    std::sort(latencies.begin(), latencies.end());
    const double p50_ms = PercentileMs(latencies, 0.50);
    const double p99_ms = PercentileMs(latencies, 0.99);
    const ServeStats stats = server->stats();
    server->Shutdown();

    // Determinism cross-check: both paths equal the serial ground truth.
    for (size_t i = 0; i < queries.size(); ++i) {
      SUBSEQ_CHECK(library_results[i].has_value() == expected[i].has_value());
      SUBSEQ_CHECK(served_results[i].has_value() == expected[i].has_value());
      if (expected[i].has_value()) {
        SUBSEQ_CHECK(*library_results[i] == *expected[i]);
        SUBSEQ_CHECK(*served_results[i] == *expected[i]);
      }
    }

    const double library_qps = static_cast<double>(queries.size()) / library_s;
    const double server_qps = static_cast<double>(queries.size()) / server_s;
    const double speedup = server_qps / library_qps;
    if (clients == 64) win_at_max_concurrency = server_qps > library_qps;
    // Fraction of stand-alone filter work eliminated by cross-query
    // segment sharing within admission batches.
    const double shared_work_pct =
        stats.billed_filter_computations > 0
            ? 100.0 * (1.0 - static_cast<double>(stats.filter_computations) /
                                 static_cast<double>(
                                     stats.billed_filter_computations))
            : 0.0;
    std::printf("%8d %14.1f %14.1f %9.2fx %18lld %15.1f%%  p50=%.1fms "
                "p99=%.1fms\n",
                clients, library_qps, server_qps, speedup,
                static_cast<long long>(stats.coalesced_queries),
                shared_work_pct, p50_ms, p99_ms);
    records.push_back(BenchRecord{
        "clients=" + std::to_string(clients),
        {{"clients", static_cast<double>(clients)},
         {"library_qps", library_qps},
         {"server_qps", server_qps},
         {"speedup", speedup},
         {"server_p50_ms", p50_ms},
         {"server_p99_ms", p99_ms},
         {"admission_batches", static_cast<double>(stats.admission_batches)},
         {"filter_calls", static_cast<double>(stats.filter_calls)},
         {"coalesced_queries", static_cast<double>(stats.coalesced_queries)},
         {"filter_computations",
          static_cast<double>(stats.filter_computations)},
         {"billed_filter_computations",
          static_cast<double>(stats.billed_filter_computations)},
         {"segments_shared", static_cast<double>(stats.segments_shared)},
         {"shared_work_pct", shared_work_pct}}});
  }

  // ---- serve_cache phase: the cross-round segment-result cache on the
  // same repeated-query workload. One server (cache on by default), two
  // passes over the workload with 8 closed-loop clients: the cold pass
  // populates the cache, the warm pass answers every unique segment from
  // it — no index traversal, no per-hit distance fill. The gated metrics
  // are deterministic distance-computation ratios, not wall-clock, so
  // the committed baseline transfers across machines: warm_hit_rate is
  // the warm pass's cache hit fraction (every segment was seen in the
  // cold pass => ~1.0) and warm_work_saved_pct the fraction of billed
  // filter work the warm pass did not execute.
  {
    std::printf("\nserve_cache: cold vs warm rounds, 8 clients, "
                "cache on (default capacity)\n");
    MatchServerOptions server_options;
    server_options.matcher = matcher_options;
    auto server =
        std::move(MatchServer<char>::Start(db, dist, server_options))
            .ValueOrDie();
    const int32_t clients = 8;
    std::vector<std::optional<SubsequenceMatch>> round_results(
        queries.size());
    const auto run_round = [&] {
      std::vector<std::thread> workers;
      for (int32_t c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
          for (size_t i = static_cast<size_t>(c); i < queries.size();
               i += static_cast<size_t>(clients)) {
            MatchRequest<char> request;
            request.type = MatchQueryType::kLongestMatch;
            request.query = queries[i];
            request.epsilon = epsilon;
            MatchResult result = server->Submit(std::move(request)).Get();
            SUBSEQ_CHECK(result.status.ok());
            round_results[i] = result.best;
          }
        });
      }
      for (std::thread& w : workers) w.join();
      // Determinism cross-check: warm answers equal the serial ground
      // truth element-wise, like every other serving path.
      for (size_t i = 0; i < queries.size(); ++i) {
        SUBSEQ_CHECK(round_results[i].has_value() == expected[i].has_value());
        if (expected[i].has_value()) {
          SUBSEQ_CHECK(*round_results[i] == *expected[i]);
        }
      }
    };

    auto t0 = std::chrono::steady_clock::now();
    run_round();
    const double cold_s = SecondsSince(t0);
    const ServeStats cold = server->stats();
    t0 = std::chrono::steady_clock::now();
    run_round();
    const double warm_s = SecondsSince(t0);
    const ServeStats total = server->stats();
    server->Shutdown();

    const double warm_executed = static_cast<double>(
        total.filter_computations - cold.filter_computations);
    const double warm_billed = static_cast<double>(
        total.billed_filter_computations - cold.billed_filter_computations);
    const double warm_hits =
        static_cast<double>(total.cache_hits - cold.cache_hits);
    const double warm_misses =
        static_cast<double>(total.cache_misses - cold.cache_misses);
    const double warm_hit_rate =
        warm_hits + warm_misses > 0.0 ? warm_hits / (warm_hits + warm_misses)
                                      : 0.0;
    const double warm_work_saved_pct =
        warm_billed > 0.0 ? 100.0 * (1.0 - warm_executed / warm_billed) : 0.0;
    std::printf("  cold: %.0f filter computations executed (%.2fs)\n",
                static_cast<double>(cold.filter_computations), cold_s);
    std::printf("  warm: %.0f executed, %.0f billed, hit rate %.3f, "
                "%.1f%% of billed work saved (%.2fs)\n",
                warm_executed, warm_billed, warm_hit_rate,
                warm_work_saved_pct, warm_s);
    records.push_back(BenchRecord{
        "serve_cache",
        {{"clients", static_cast<double>(clients)},
         {"cold_filter_computations",
          static_cast<double>(cold.filter_computations)},
         {"warm_filter_computations", warm_executed},
         {"warm_billed_filter_computations", warm_billed},
         {"warm_hit_rate", warm_hit_rate},
         {"warm_work_saved_pct", warm_work_saved_pct},
         {"cache_evictions", static_cast<double>(total.cache_evictions)},
         {"cache_shared_computations",
          static_cast<double>(total.cache_shared_computations)}}});
  }

  // ---- live_ingest phase: serving while the database grows. Two
  // measurements over one workload:
  //
  //  (a) Cache across an epoch swap, with background merging disabled so
  //      the epoch sequence is deterministic: a cold round populates the
  //      cache at the bulk epoch, one synchronous AppendSequence swaps to
  //      the next epoch, and the first post-swap round must re-miss on
  //      every unique segment exactly like the cold round did
  //      (swap_miss_parity = 1.0 — a cross-epoch hit would be silently
  //      wrong and would shave post-swap misses) while the second
  //      post-swap round hits on every lookup (rewarm_hit_rate = 1.0).
  //      The appended windows are served from the per-kind delta
  //      (delta_window_share > 0).
  //  (b) Throughput while ingesting, with an aggressive merge threshold:
  //      8 closed-loop clients answer the workload while the bench
  //      thread appends sequences and retires one, then the phase waits
  //      for the background merges to compact the delta away
  //      (merge_drained = 1.0) and cross-checks a post-ingest round
  //      element-wise against a cold matcher built over the final
  //      contents — the live-ingest determinism contract.
  //
  // The gated metrics (swap_miss_parity, rewarm_hit_rate,
  // delta_window_share, merge_drained, ingested_window_ratio) are all
  // deterministic counts/ratios, so the committed baseline transfers
  // across machines; live_qps and the latency percentiles are
  // informational wall-clock.
  {
    std::printf("\nlive_ingest: qps while appending, cache across the "
                "epoch swap, delta vs merged serving\n");
    // Sequences to ingest. Sized in windows (~25 windows per generated
    // protein), so ask for enough to cover the append count below.
    const SequenceDatabase<char> donor = MakeProteinDb(Scaled(200, 400), 1234);

    // (a) Epoch swap under a merge-free server.
    double swap_miss_parity = 0.0;
    double rewarm_hit_rate = 0.0;
    double delta_window_share = 0.0;
    {
      MatchServerOptions server_options;
      server_options.matcher = matcher_options;
      server_options.matcher.delta_merge_threshold = 1 << 30;  // never merge
      auto server =
          std::move(MatchServer<char>::Start(db, dist, server_options))
              .ValueOrDie();
      const SequenceDatabase<char> db1 = db.Append(donor.at(0));
      auto post_matcher = std::move(SubsequenceMatcher<char>::Build(
                              db1, dist, matcher_options))
                              .ValueOrDie();
      std::vector<std::optional<SubsequenceMatch>> post_expected(
          queries.size());
      for (size_t i = 0; i < queries.size(); ++i) {
        post_expected[i] =
            post_matcher
                ->LongestMatch(std::span<const char>(queries[i]), epsilon)
                .ValueOrDie();
      }
      const int32_t clients = 8;
      const auto run_round =
          [&](const std::vector<std::optional<SubsequenceMatch>>& want) {
            std::vector<std::optional<SubsequenceMatch>> results(
                queries.size());
            std::vector<std::thread> workers;
            for (int32_t c = 0; c < clients; ++c) {
              workers.emplace_back([&, c] {
                for (size_t i = static_cast<size_t>(c); i < queries.size();
                     i += static_cast<size_t>(clients)) {
                  MatchRequest<char> request;
                  request.type = MatchQueryType::kLongestMatch;
                  request.query = queries[i];
                  request.epsilon = epsilon;
                  MatchResult result =
                      server->Submit(std::move(request)).Get();
                  SUBSEQ_CHECK(result.status.ok());
                  results[i] = result.best;
                }
              });
            }
            for (std::thread& w : workers) w.join();
            for (size_t i = 0; i < queries.size(); ++i) {
              SUBSEQ_CHECK(results[i].has_value() == want[i].has_value());
              if (want[i].has_value()) SUBSEQ_CHECK(*results[i] == *want[i]);
            }
          };

      run_round(expected);  // cold: populates the cache at the bulk epoch
      const ServeStats pre = server->stats();
      SUBSEQ_CHECK(server->AppendSequence(donor.at(0)).ok());
      run_round(post_expected);  // first post-swap round: all misses
      const ServeStats swap = server->stats();
      run_round(post_expected);  // second post-swap round: re-hits
      const ServeStats rewarm = server->stats();
      server->Shutdown();

      // The cold round misses once per unique segment (then re-hits its
      // own insertions); the post-swap round must repeat that pattern
      // exactly at the new epoch. Both counts are batching-invariant, so
      // parity is a deterministic 1.0; a cross-epoch hit would shave
      // post-swap misses and drop it.
      const double cold_misses = static_cast<double>(pre.cache_misses);
      const double swap_misses =
          static_cast<double>(swap.cache_misses - pre.cache_misses);
      swap_miss_parity = cold_misses > 0.0 ? swap_misses / cold_misses : 0.0;
      const double re_hits =
          static_cast<double>(rewarm.cache_hits - swap.cache_hits);
      const double re_misses =
          static_cast<double>(rewarm.cache_misses - swap.cache_misses);
      rewarm_hit_rate = re_hits + re_misses > 0.0
                            ? re_hits / (re_hits + re_misses)
                            : 0.0;
      delta_window_share =
          static_cast<double>(rewarm.delta_windows) /
          static_cast<double>(rewarm.base_windows + rewarm.delta_windows);
      std::printf("  swap: miss parity %.3f across the epoch swap, rewarm "
                  "hit rate %.3f, delta window share %.4f\n",
                  swap_miss_parity, rewarm_hit_rate, delta_window_share);
    }

    // (b) Closed-loop clients racing AppendSequence / RetireSequence,
    // then merge drain + post-ingest determinism cross-check.
    MatchServerOptions server_options;
    server_options.matcher = matcher_options;
    server_options.matcher.delta_merge_threshold = 1;  // merge eagerly
    auto server =
        std::move(MatchServer<char>::Start(db, dist, server_options))
            .ValueOrDie();
    const ServeStats before = server->stats();
    const int32_t clients = 8;
    const int32_t num_appends = Scaled(3, 6);
    SUBSEQ_CHECK(donor.size() >= num_appends);
    std::vector<double> latencies(queries.size(), 0.0);
    std::vector<std::thread> workers;
    auto t0 = std::chrono::steady_clock::now();
    for (int32_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        for (size_t i = static_cast<size_t>(c); i < queries.size();
             i += static_cast<size_t>(clients)) {
          MatchRequest<char> request;
          request.type = MatchQueryType::kLongestMatch;
          request.query = queries[i];
          request.epsilon = epsilon;
          const auto sent = std::chrono::steady_clock::now();
          MatchResult result = server->Submit(std::move(request)).Get();
          latencies[i] = SecondsSince(sent);
          // Mid-ingest answers are epoch-dependent (the epoch-equality
          // tests pin them down); here only delivery is asserted.
          SUBSEQ_CHECK(result.status.ok());
        }
      });
    }
    SequenceDatabase<char> final_db = db;
    for (int32_t a = 0; a < num_appends; ++a) {
      SUBSEQ_CHECK(server->AppendSequence(donor.at(a)).ok());
      final_db = final_db.Append(donor.at(a));
    }
    const SeqId retired_id = db.size();  // the first appended sequence
    SUBSEQ_CHECK(server->RetireSequence(retired_id).ok());
    final_db = final_db.Retire(retired_id);
    for (std::thread& w : workers) w.join();
    const double live_s = SecondsSince(t0);
    std::sort(latencies.begin(), latencies.end());

    // Wait for the background merges to compact the delta away.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    ServeStats after = server->stats();
    while (after.delta_windows > 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      after = server->stats();
    }
    const double merge_drained = after.delta_windows == 0 ? 1.0 : 0.0;

    // Post-ingest determinism cross-check: the served answers over the
    // merged epoch equal a cold matcher built over the final contents.
    auto final_matcher = std::move(SubsequenceMatcher<char>::Build(
                             final_db, dist, matcher_options))
                             .ValueOrDie();
    for (size_t i = 0; i < queries.size(); i += 4) {  // every 4th: bounded
      MatchRequest<char> request;
      request.type = MatchQueryType::kLongestMatch;
      request.query = queries[i];
      request.epsilon = epsilon;
      MatchResult result = server->Submit(std::move(request)).Get();
      SUBSEQ_CHECK(result.status.ok());
      const auto want =
          final_matcher
              ->LongestMatch(std::span<const char>(queries[i]), epsilon)
              .ValueOrDie();
      SUBSEQ_CHECK(result.best.has_value() == want.has_value());
      if (want.has_value()) SUBSEQ_CHECK(*result.best == *want);
    }
    server->Shutdown();

    const double live_qps = static_cast<double>(queries.size()) / live_s;
    const double live_p50_ms = PercentileMs(latencies, 0.50);
    const double live_p99_ms = PercentileMs(latencies, 0.99);
    const double ingested_window_ratio =
        static_cast<double>(after.base_windows - before.base_windows) /
        static_cast<double>(before.base_windows);
    std::printf("  ingest: %.1f qps while appending (p50=%.1fms "
                "p99=%.1fms), %lld appends, %lld merges, epoch %llu, "
                "delta drained=%s, +%.2f%% windows\n",
                live_qps, live_p50_ms, live_p99_ms,
                static_cast<long long>(after.appends),
                static_cast<long long>(after.merges),
                static_cast<unsigned long long>(after.epoch),
                merge_drained == 1.0 ? "yes" : "NO",
                100.0 * ingested_window_ratio);
    records.push_back(BenchRecord{
        "live_ingest",
        {{"clients", static_cast<double>(clients)},
         {"live_qps", live_qps},
         {"live_p50_ms", live_p50_ms},
         {"live_p99_ms", live_p99_ms},
         {"appends", static_cast<double>(after.appends)},
         {"retires", static_cast<double>(after.retires)},
         {"merges", static_cast<double>(after.merges)},
         {"swap_miss_parity", swap_miss_parity},
         {"rewarm_hit_rate", rewarm_hit_rate},
         {"delta_window_share", delta_window_share},
         {"merge_drained", merge_drained},
         {"ingested_window_ratio", ingested_window_ratio}}});
  }

  const std::string path = "BENCH_serve_throughput.json";
  if (!WriteBenchJson(path, "serve_throughput", records)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", path.c_str());
  if (!win_at_max_concurrency) {
    std::printf("WARNING: coalescing did not beat independent runs at 64 "
                "clients on this machine\n");
  }
  return 0;
}

}  // namespace
}  // namespace subseq::bench

int main() { return subseq::bench::Run(); }
