// Serving throughput: cross-query coalescing versus independent library
// calls, at 1 / 8 / 64 concurrent clients (PROTEINS / Levenshtein,
// reference-net index).
//
// Baseline: C client threads, each answering its share of the workload
// with direct SubsequenceMatcher calls — the "parallel library used
// concurrently" deployment the serving layer replaces. Server: the same
// C closed-loop clients submitting to one MatchServer, whose admission
// loop coalesces concurrently-pending segment filters into shared
// BatchRangeQuery calls. Both paths answer the identical workload;
// results are cross-checked element-wise (the serving determinism
// contract) and queries/sec recorded to BENCH_serve_throughput.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "subseq/core/check.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/serve/match_server.h"

namespace subseq::bench {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double>(elapsed).count();
}

/// The serving workload: a pool of `pool_size` distinct queries cut from
/// database sequences (overlapping offsets, so even distinct queries
/// share segment content), drawn `count` times in a deterministic
/// pseudo-random order. Repeats model the hot-query regime a server
/// under heavy traffic actually sees — many concurrent users asking
/// about the same popular content — which is exactly what cross-query
/// segment sharing exploits. All requests use one epsilon (the
/// filter-compatibility the coalescer groups by).
std::vector<std::vector<char>> MakeServeQueries(
    const SequenceDatabase<char>& db, int32_t count, int32_t pool_size,
    int32_t length) {
  std::vector<std::vector<char>> pool;
  pool.reserve(static_cast<size_t>(pool_size));
  for (int32_t i = 0; pool.size() < static_cast<size_t>(pool_size); ++i) {
    const Sequence<char>& seq = db.at(i % db.size());
    if (seq.size() < length) continue;
    const int32_t offset = (i * 13) % (seq.size() - length + 1);
    const auto view = seq.Subsequence(Interval{offset, offset + length});
    pool.emplace_back(view.begin(), view.end());
  }
  Rng rng(99);
  std::vector<std::vector<char>> queries;
  queries.reserve(static_cast<size_t>(count));
  for (int32_t i = 0; i < count; ++i) {
    const auto pick = static_cast<size_t>(
        rng.NextDouble(0.0, static_cast<double>(pool.size())));
    queries.push_back(pool[std::min(pick, pool.size() - 1)]);
  }
  return queries;
}

int Run() {
  Banner("serve_throughput",
         "MatchServer cross-query coalescing vs independent matcher runs "
         "(PROTEINS / Levenshtein / reference net)");

  const int32_t num_windows = Scaled(200, 4000);
  const int32_t num_queries = Scaled(256, 1024);
  const int32_t pool_size = Scaled(48, 192);
  const double epsilon = 1.0;
  MatcherOptions matcher_options;
  matcher_options.lambda = 2 * kWindowLength;  // l matches the db windows
  matcher_options.lambda0 = 2;
  matcher_options.index_kind = IndexKind::kReferenceNet;

  const SequenceDatabase<char> db = MakeProteinDb(num_windows, 77);
  const LevenshteinDistance<char> dist;
  const std::vector<std::vector<char>> queries = MakeServeQueries(
      db, num_queries, pool_size, matcher_options.lambda + 4);

  auto matcher =
      std::move(SubsequenceMatcher<char>::Build(db, dist, matcher_options))
          .ValueOrDie();
  std::printf("windows=%d queries=%d (pool of %d distinct) epsilon=%.1f "
              "lambda=%d\n\n",
              matcher->catalog().num_windows(), num_queries, pool_size,
              epsilon, matcher_options.lambda);
  std::printf("%8s %14s %14s %10s %18s %16s\n", "clients", "library_qps",
              "server_qps", "speedup", "coalesced_queries",
              "shared_work_pct");

  // Ground truth (and warm-up): every query answered once, serially.
  std::vector<std::optional<SubsequenceMatch>> expected(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    expected[i] = matcher
                      ->LongestMatch(std::span<const char>(queries[i]),
                                     epsilon)
                      .ValueOrDie();
  }

  std::vector<BenchRecord> records;
  bool win_at_max_concurrency = false;
  for (const int32_t clients : {1, 8, 64}) {
    // ---- baseline: C threads calling the library independently.
    std::vector<std::optional<SubsequenceMatch>> library_results(
        queries.size());
    auto t0 = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> workers;
      for (int32_t c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
          for (size_t i = static_cast<size_t>(c); i < queries.size();
               i += static_cast<size_t>(clients)) {
            library_results[i] =
                matcher
                    ->LongestMatch(std::span<const char>(queries[i]),
                                   epsilon)
                    .ValueOrDie();
          }
        });
      }
      for (std::thread& w : workers) w.join();
    }
    const double library_s = SecondsSince(t0);

    // ---- server: the same closed-loop clients, one shared engine. The
    // cross-round cache is OFF here so these rows stay a pure in-round
    // coalescing measurement and their committed baselines remain live
    // gates; the serve_cache phase below measures the cache itself.
    MatchServerOptions server_options;
    server_options.matcher = matcher_options;
    server_options.cache_capacity_bytes = 0;
    auto server =
        std::move(MatchServer<char>::Start(db, dist, server_options))
            .ValueOrDie();
    std::vector<std::optional<SubsequenceMatch>> served_results(
        queries.size());
    t0 = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> workers;
      for (int32_t c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
          for (size_t i = static_cast<size_t>(c); i < queries.size();
               i += static_cast<size_t>(clients)) {
            MatchRequest<char> request;
            request.type = MatchQueryType::kLongestMatch;
            request.query = queries[i];
            request.epsilon = epsilon;
            MatchResult result = server->Submit(std::move(request)).Get();
            SUBSEQ_CHECK(result.status.ok());
            served_results[i] = result.best;
          }
        });
      }
      for (std::thread& w : workers) w.join();
    }
    const double server_s = SecondsSince(t0);
    const ServeStats stats = server->stats();
    server->Shutdown();

    // Determinism cross-check: both paths equal the serial ground truth.
    for (size_t i = 0; i < queries.size(); ++i) {
      SUBSEQ_CHECK(library_results[i].has_value() == expected[i].has_value());
      SUBSEQ_CHECK(served_results[i].has_value() == expected[i].has_value());
      if (expected[i].has_value()) {
        SUBSEQ_CHECK(*library_results[i] == *expected[i]);
        SUBSEQ_CHECK(*served_results[i] == *expected[i]);
      }
    }

    const double library_qps = static_cast<double>(queries.size()) / library_s;
    const double server_qps = static_cast<double>(queries.size()) / server_s;
    const double speedup = server_qps / library_qps;
    if (clients == 64) win_at_max_concurrency = server_qps > library_qps;
    // Fraction of stand-alone filter work eliminated by cross-query
    // segment sharing within admission batches.
    const double shared_work_pct =
        stats.billed_filter_computations > 0
            ? 100.0 * (1.0 - static_cast<double>(stats.filter_computations) /
                                 static_cast<double>(
                                     stats.billed_filter_computations))
            : 0.0;
    std::printf("%8d %14.1f %14.1f %9.2fx %18lld %15.1f%%\n", clients,
                library_qps, server_qps, speedup,
                static_cast<long long>(stats.coalesced_queries),
                shared_work_pct);
    records.push_back(BenchRecord{
        "clients=" + std::to_string(clients),
        {{"clients", static_cast<double>(clients)},
         {"library_qps", library_qps},
         {"server_qps", server_qps},
         {"speedup", speedup},
         {"admission_batches", static_cast<double>(stats.admission_batches)},
         {"filter_calls", static_cast<double>(stats.filter_calls)},
         {"coalesced_queries", static_cast<double>(stats.coalesced_queries)},
         {"filter_computations",
          static_cast<double>(stats.filter_computations)},
         {"billed_filter_computations",
          static_cast<double>(stats.billed_filter_computations)},
         {"segments_shared", static_cast<double>(stats.segments_shared)},
         {"shared_work_pct", shared_work_pct}}});
  }

  // ---- serve_cache phase: the cross-round segment-result cache on the
  // same repeated-query workload. One server (cache on by default), two
  // passes over the workload with 8 closed-loop clients: the cold pass
  // populates the cache, the warm pass answers every unique segment from
  // it — no index traversal, no per-hit distance fill. The gated metrics
  // are deterministic distance-computation ratios, not wall-clock, so
  // the committed baseline transfers across machines: warm_hit_rate is
  // the warm pass's cache hit fraction (every segment was seen in the
  // cold pass => ~1.0) and warm_work_saved_pct the fraction of billed
  // filter work the warm pass did not execute.
  {
    std::printf("\nserve_cache: cold vs warm rounds, 8 clients, "
                "cache on (default capacity)\n");
    MatchServerOptions server_options;
    server_options.matcher = matcher_options;
    auto server =
        std::move(MatchServer<char>::Start(db, dist, server_options))
            .ValueOrDie();
    const int32_t clients = 8;
    std::vector<std::optional<SubsequenceMatch>> round_results(
        queries.size());
    const auto run_round = [&] {
      std::vector<std::thread> workers;
      for (int32_t c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
          for (size_t i = static_cast<size_t>(c); i < queries.size();
               i += static_cast<size_t>(clients)) {
            MatchRequest<char> request;
            request.type = MatchQueryType::kLongestMatch;
            request.query = queries[i];
            request.epsilon = epsilon;
            MatchResult result = server->Submit(std::move(request)).Get();
            SUBSEQ_CHECK(result.status.ok());
            round_results[i] = result.best;
          }
        });
      }
      for (std::thread& w : workers) w.join();
      // Determinism cross-check: warm answers equal the serial ground
      // truth element-wise, like every other serving path.
      for (size_t i = 0; i < queries.size(); ++i) {
        SUBSEQ_CHECK(round_results[i].has_value() == expected[i].has_value());
        if (expected[i].has_value()) {
          SUBSEQ_CHECK(*round_results[i] == *expected[i]);
        }
      }
    };

    auto t0 = std::chrono::steady_clock::now();
    run_round();
    const double cold_s = SecondsSince(t0);
    const ServeStats cold = server->stats();
    t0 = std::chrono::steady_clock::now();
    run_round();
    const double warm_s = SecondsSince(t0);
    const ServeStats total = server->stats();
    server->Shutdown();

    const double warm_executed = static_cast<double>(
        total.filter_computations - cold.filter_computations);
    const double warm_billed = static_cast<double>(
        total.billed_filter_computations - cold.billed_filter_computations);
    const double warm_hits =
        static_cast<double>(total.cache_hits - cold.cache_hits);
    const double warm_misses =
        static_cast<double>(total.cache_misses - cold.cache_misses);
    const double warm_hit_rate =
        warm_hits + warm_misses > 0.0 ? warm_hits / (warm_hits + warm_misses)
                                      : 0.0;
    const double warm_work_saved_pct =
        warm_billed > 0.0 ? 100.0 * (1.0 - warm_executed / warm_billed) : 0.0;
    std::printf("  cold: %.0f filter computations executed (%.2fs)\n",
                static_cast<double>(cold.filter_computations), cold_s);
    std::printf("  warm: %.0f executed, %.0f billed, hit rate %.3f, "
                "%.1f%% of billed work saved (%.2fs)\n",
                warm_executed, warm_billed, warm_hit_rate,
                warm_work_saved_pct, warm_s);
    records.push_back(BenchRecord{
        "serve_cache",
        {{"clients", static_cast<double>(clients)},
         {"cold_filter_computations",
          static_cast<double>(cold.filter_computations)},
         {"warm_filter_computations", warm_executed},
         {"warm_billed_filter_computations", warm_billed},
         {"warm_hit_rate", warm_hit_rate},
         {"warm_work_saved_pct", warm_work_saved_pct},
         {"cache_evictions", static_cast<double>(total.cache_evictions)},
         {"cache_shared_computations",
          static_cast<double>(total.cache_shared_computations)}}});
  }

  const std::string path = "BENCH_serve_throughput.json";
  if (!WriteBenchJson(path, "serve_throughput", records)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", path.c_str());
  if (!win_at_max_concurrency) {
    std::printf("WARNING: coalescing did not beat independent runs at 64 "
                "clients on this machine\n");
  }
  return 0;
}

}  // namespace
}  // namespace subseq::bench

int main() { return subseq::bench::Run(); }
