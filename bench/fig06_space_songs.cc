// Figure 6: reference-net space overhead on SONGS under DFD vs ERP, and
// the effect of the num_max parent cap (the paper's "DFD-5").
//
// Paper's observations to reproduce:
//  * DFD's skewed distance distribution inflates the number of reference
//    lists / parents as windows accumulate;
//  * ERP's spread-out distribution keeps the average parent count small;
//  * capping parents at 5 (DFD-5) restores ERP-like index size.

#include <cstdio>

#include "bench_common.h"
#include "subseq/distance/erp.h"
#include "subseq/distance/frechet.h"

namespace subseq::bench {
namespace {

struct Row {
  int32_t windows;
  SpaceStats dfd;
  SpaceStats dfd5;
  SpaceStats erp;
};

void Run() {
  Banner("Figure 6", "space overhead, SONGS: DFD vs DFD-5 vs ERP");
  const std::vector<int32_t> sizes =
      FullScale() ? std::vector<int32_t>{1000, 5000, 10000, 20000}
                  : std::vector<int32_t>{500, 1000, 2000, 4000};

  const FrechetDistance1D dfd;
  const ErpDistance1D erp;
  std::vector<Row> rows;
  for (const int32_t n : sizes) {
    const auto db = MakeSongDb(n, 31);
    auto catalog = WindowCatalog::PartitionDatabase(db, kWindowLength);
    Row row;
    {
      const WindowOracle<double> oracle(db, catalog.value(), dfd);
      row.windows = oracle.size();
      row.dfd = BuildIndex("rn", oracle)->ComputeSpaceStats();
      row.dfd5 = BuildIndex("rn-5", oracle)->ComputeSpaceStats();
    }
    {
      const WindowOracle<double> oracle(db, catalog.value(), erp);
      row.erp = BuildIndex("rn", oracle)->ComputeSpaceStats();
    }
    rows.push_back(row);
  }

  std::printf("%10s | %10s %10s %8s | %10s %10s %8s | %10s %10s %8s\n",
              "windows", "dfd-lists", "dfd-par", "dfd-MB", "dfd5-lists",
              "dfd5-par", "dfd5-MB", "erp-lists", "erp-par", "erp-MB");
  for (const Row& r : rows) {
    std::printf(
        "%10d | %10lld %10.2f %8.3f | %10lld %10.2f %8.3f | %10lld %10.2f "
        "%8.3f\n",
        r.windows, static_cast<long long>(r.dfd.num_list_entries),
        r.dfd.avg_parents, static_cast<double>(r.dfd.approx_bytes) / 1e6,
        static_cast<long long>(r.dfd5.num_list_entries), r.dfd5.avg_parents,
        static_cast<double>(r.dfd5.approx_bytes) / 1e6,
        static_cast<long long>(r.erp.num_list_entries), r.erp.avg_parents,
        static_cast<double>(r.erp.approx_bytes) / 1e6);
  }
  std::printf("\nExpected shape: dfd-par grows with windows (skewed "
              "distances); dfd5-par <= 5;\nerp-par stays small; dfd5-MB "
              "comparable to erp-MB.\n");
}

}  // namespace
}  // namespace subseq::bench

int main() {
  subseq::bench::Run();
  return 0;
}
