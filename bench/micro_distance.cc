// Microbenchmarks of the distance kernels (google-benchmark): exact and
// early-abandoning variants at window-ish lengths.

#include <benchmark/benchmark.h>

#include <span>
#include <vector>

#include "subseq/core/rng.h"
#include "subseq/distance/dtw.h"
#include "subseq/distance/erp.h"
#include "subseq/distance/euclidean.h"
#include "subseq/distance/frechet.h"
#include "subseq/distance/hamming.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/distance/simd/cpu_features.h"

namespace subseq {
namespace {

std::vector<double> MakeSeries(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v;
  v.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) v.push_back(rng.NextDouble(0.0, 10.0));
  return v;
}

std::vector<char> MakeString(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<char> v;
  v.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    v.push_back("ACDEFGHIKLMNPQRSTVWY"[rng.NextBounded(20)]);
  }
  return v;
}

template <typename Dist>
void ScalarKernel(benchmark::State& state, const Dist& dist) {
  const int n = static_cast<int>(state.range(0));
  const auto a = MakeSeries(n, 1);
  const auto b = MakeSeries(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.Compute(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Erp(benchmark::State& state) {
  ErpDistance1D d;
  ScalarKernel(state, d);
}
void BM_Dtw(benchmark::State& state) {
  DtwDistance1D d;
  ScalarKernel(state, d);
}
void BM_Frechet(benchmark::State& state) {
  FrechetDistance1D d;
  ScalarKernel(state, d);
}
void BM_Euclidean(benchmark::State& state) {
  EuclideanDistance1D d;
  ScalarKernel(state, d);
}

void BM_Levenshtein(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto a = MakeString(n, 3);
  const auto b = MakeString(n, 4);
  LevenshteinDistance<char> d;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.Compute(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_LevenshteinBounded(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double bound = static_cast<double>(state.range(1));
  const auto a = MakeString(n, 3);
  const auto b = MakeString(n, 4);
  LevenshteinDistance<char> d;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.ComputeBounded(a, b, bound));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ErpBounded(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double bound = static_cast<double>(state.range(1));
  const auto a = MakeSeries(n, 5);
  const auto b = MakeSeries(n, 6);
  ErpDistance1D d;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.ComputeBounded(a, b, bound));
  }
  state.SetItemsProcessed(state.iterations());
}

// Batched ComputeMany vs a per-pair Compute loop over 16 equal-length
// candidates — the SegmentHitDistances fill shape. Values are
// bit-identical by contract; only the throughput differs.
template <typename Dist>
void BatchedKernel(benchmark::State& state, const Dist& dist, bool batched) {
  const int n = static_cast<int>(state.range(0));
  const auto a = MakeSeries(n, 11);
  std::vector<std::vector<double>> storage;
  for (int c = 0; c < 16; ++c) {
    storage.push_back(MakeSeries(n, 20 + static_cast<uint64_t>(c)));
  }
  const std::vector<std::span<const double>> views(storage.begin(),
                                                   storage.end());
  std::vector<double> out(views.size());
  for (auto _ : state) {
    if (batched) {
      dist.ComputeMany(a, views, out.data());
    } else {
      for (size_t c = 0; c < views.size(); ++c) {
        out[c] = dist.Compute(a, views[c]);
      }
    }
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(views.size()));
}

void BM_DtwBatched(benchmark::State& state) {
  DtwDistance1D d;
  BatchedKernel(state, d, /*batched=*/true);
}
void BM_DtwScalarLoop(benchmark::State& state) {
  DtwDistance1D d;
  BatchedKernel(state, d, /*batched=*/false);
}
void BM_EuclideanBatched(benchmark::State& state) {
  EuclideanDistance1D d;
  BatchedKernel(state, d, /*batched=*/true);
}
void BM_EuclideanScalarLoop(benchmark::State& state) {
  EuclideanDistance1D d;
  BatchedKernel(state, d, /*batched=*/false);
}

// The same single-pair kernel at a forced dispatch level: the
// portable/native delta of the DP inner loops.
template <typename Dist>
void LevelKernel(benchmark::State& state, const Dist& dist,
                 simd::SimdLevel level) {
  if (!simd::SetSimdLevelForTesting(level)) {
    state.SkipWithError("dispatch level unavailable on this machine");
    return;
  }
  ScalarKernel(state, dist);
  simd::ClearSimdLevelForTesting();
}

void BM_DtwPortable(benchmark::State& state) {
  DtwDistance1D d;
  LevelKernel(state, d, simd::SimdLevel::kPortable);
}
void BM_DtwAvx2(benchmark::State& state) {
  DtwDistance1D d;
  LevelKernel(state, d, simd::SimdLevel::kAvx2);
}
void BM_ErpPortable(benchmark::State& state) {
  ErpDistance1D d;
  LevelKernel(state, d, simd::SimdLevel::kPortable);
}
void BM_ErpAvx2(benchmark::State& state) {
  ErpDistance1D d;
  LevelKernel(state, d, simd::SimdLevel::kAvx2);
}

// The anti-diagonal (wavefront) single-pair DP at a forced dispatch
// level, forced on at every length so short args measure it too; the
// row-DP counterpart is the plain BM_Dtw/BM_Erp row at the same length.
template <typename Dist>
void AntidiagKernel(benchmark::State& state, const Dist& dist,
                    simd::SimdLevel level) {
  if (!simd::SetSimdLevelForTesting(level)) {
    state.SkipWithError("dispatch level unavailable on this machine");
    return;
  }
  simd::SetAntidiagThresholdForTesting(1);
  ScalarKernel(state, dist);
  simd::ClearAntidiagThresholdForTesting();
  simd::ClearSimdLevelForTesting();
}

void BM_DtwAntidiagPortable(benchmark::State& state) {
  DtwDistance1D d;
  AntidiagKernel(state, d, simd::SimdLevel::kPortable);
}
void BM_DtwAntidiagAvx2(benchmark::State& state) {
  DtwDistance1D d;
  AntidiagKernel(state, d, simd::SimdLevel::kAvx2);
}
void BM_ErpAntidiagPortable(benchmark::State& state) {
  ErpDistance1D d;
  AntidiagKernel(state, d, simd::SimdLevel::kPortable);
}
void BM_ErpAntidiagAvx2(benchmark::State& state) {
  ErpDistance1D d;
  AntidiagKernel(state, d, simd::SimdLevel::kAvx2);
}

BENCHMARK(BM_Erp)->Arg(20)->Arg(50)->Arg(100);
BENCHMARK(BM_Dtw)->Arg(20)->Arg(50)->Arg(100);
BENCHMARK(BM_Frechet)->Arg(20)->Arg(50)->Arg(100);
BENCHMARK(BM_Euclidean)->Arg(20)->Arg(100)->Arg(1000);
BENCHMARK(BM_Levenshtein)->Arg(20)->Arg(50)->Arg(100);
BENCHMARK(BM_LevenshteinBounded)
    ->Args({20, 2})
    ->Args({20, 8})
    ->Args({100, 5});
BENCHMARK(BM_ErpBounded)->Args({20, 4})->Args({20, 40})->Args({100, 10});
BENCHMARK(BM_DtwBatched)->Arg(20)->Arg(50)->Arg(100);
BENCHMARK(BM_DtwScalarLoop)->Arg(20)->Arg(50)->Arg(100);
BENCHMARK(BM_EuclideanBatched)->Arg(20)->Arg(100)->Arg(1000);
BENCHMARK(BM_EuclideanScalarLoop)->Arg(20)->Arg(100)->Arg(1000);
BENCHMARK(BM_DtwPortable)->Arg(20)->Arg(100);
BENCHMARK(BM_DtwAvx2)->Arg(20)->Arg(100);
BENCHMARK(BM_ErpPortable)->Arg(20)->Arg(100);
BENCHMARK(BM_ErpAvx2)->Arg(20)->Arg(100);
BENCHMARK(BM_DtwAntidiagPortable)->Arg(100)->Arg(1000);
BENCHMARK(BM_DtwAntidiagAvx2)->Arg(100)->Arg(1000);
BENCHMARK(BM_ErpAntidiagPortable)->Arg(100)->Arg(1000);
BENCHMARK(BM_ErpAntidiagAvx2)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace subseq
