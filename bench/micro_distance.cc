// Microbenchmarks of the distance kernels (google-benchmark): exact and
// early-abandoning variants at window-ish lengths.

#include <benchmark/benchmark.h>

#include <vector>

#include "subseq/core/rng.h"
#include "subseq/distance/dtw.h"
#include "subseq/distance/erp.h"
#include "subseq/distance/euclidean.h"
#include "subseq/distance/frechet.h"
#include "subseq/distance/hamming.h"
#include "subseq/distance/levenshtein.h"

namespace subseq {
namespace {

std::vector<double> MakeSeries(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v;
  v.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) v.push_back(rng.NextDouble(0.0, 10.0));
  return v;
}

std::vector<char> MakeString(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<char> v;
  v.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    v.push_back("ACDEFGHIKLMNPQRSTVWY"[rng.NextBounded(20)]);
  }
  return v;
}

template <typename Dist>
void ScalarKernel(benchmark::State& state, const Dist& dist) {
  const int n = static_cast<int>(state.range(0));
  const auto a = MakeSeries(n, 1);
  const auto b = MakeSeries(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.Compute(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Erp(benchmark::State& state) {
  ErpDistance1D d;
  ScalarKernel(state, d);
}
void BM_Dtw(benchmark::State& state) {
  DtwDistance1D d;
  ScalarKernel(state, d);
}
void BM_Frechet(benchmark::State& state) {
  FrechetDistance1D d;
  ScalarKernel(state, d);
}
void BM_Euclidean(benchmark::State& state) {
  EuclideanDistance1D d;
  ScalarKernel(state, d);
}

void BM_Levenshtein(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto a = MakeString(n, 3);
  const auto b = MakeString(n, 4);
  LevenshteinDistance<char> d;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.Compute(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_LevenshteinBounded(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double bound = static_cast<double>(state.range(1));
  const auto a = MakeString(n, 3);
  const auto b = MakeString(n, 4);
  LevenshteinDistance<char> d;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.ComputeBounded(a, b, bound));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ErpBounded(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double bound = static_cast<double>(state.range(1));
  const auto a = MakeSeries(n, 5);
  const auto b = MakeSeries(n, 6);
  ErpDistance1D d;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.ComputeBounded(a, b, bound));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_Erp)->Arg(20)->Arg(50)->Arg(100);
BENCHMARK(BM_Dtw)->Arg(20)->Arg(50)->Arg(100);
BENCHMARK(BM_Frechet)->Arg(20)->Arg(50)->Arg(100);
BENCHMARK(BM_Euclidean)->Arg(20)->Arg(100)->Arg(1000);
BENCHMARK(BM_Levenshtein)->Arg(20)->Arg(50)->Arg(100);
BENCHMARK(BM_LevenshteinBounded)
    ->Args({20, 2})
    ->Args({20, 8})
    ->Args({100, 5});
BENCHMARK(BM_ErpBounded)->Args({20, 4})->Args({20, 40})->Args({100, 10});

}  // namespace
}  // namespace subseq
