// Snapshot I/O: what the versioned snapshot subsystem buys at serving
// start (PROTEINS / Levenshtein, reference-net index).
//
// Three rows:
//   build        — fresh Build wall-clock vs SaveIndex + LoadIndex in
//                  both modes; mmap_speedup = build / mmap-load, a
//                  same-run ratio that transfers across machines.
//   oocore       — BuildToSnapshot residency: catalog windows over the
//                  ResidencyGauge peak. Deterministic counts (fixed by
//                  the shard split, not machine speed), gated tightly —
//                  a drop means the streamed build stopped streaming.
//   serve_start  — MatchServer::Start rebuild vs snapshot boot.
// Every loaded index is cross-checked element-wise against the fresh
// build before a row is recorded (the persistence determinism
// contract).

#include <chrono>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench_common.h"
#include "subseq/core/check.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/exec/peak_gauge.h"
#include "subseq/frame/matcher.h"
#include "subseq/serve/match_server.h"

namespace subseq::bench {
namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

int Run() {
  Banner("snapshot_io",
         "versioned snapshot save/load vs fresh builds "
         "(PROTEINS / Levenshtein / reference net)");

  const int32_t num_windows = Scaled(200, 4000);
  MatcherOptions options;
  options.lambda = 2 * kWindowLength;
  options.lambda0 = 2;
  options.index_kind = IndexKind::kReferenceNet;

  const SequenceDatabase<char> db = MakeProteinDb(num_windows, 77);
  const LevenshteinDistance<char> dist;
  const std::string path = "BENCH_snapshot_io.snap";
  std::vector<BenchRecord> records;

  // ---- build / save / load.
  auto t0 = std::chrono::steady_clock::now();
  auto fresh = std::move(SubsequenceMatcher<char>::Build(db, dist, options))
                   .ValueOrDie();
  const double build_ms = MsSince(t0);

  t0 = std::chrono::steady_clock::now();
  SUBSEQ_CHECK(fresh->SaveIndex(path).ok());
  const double save_ms = MsSince(t0);

  // A few queries cut from database sequences for the cross-checks.
  std::vector<std::vector<char>> queries;
  for (int32_t q = 0; q < 4; ++q) {
    const auto& seq = db.at(q);
    const int32_t len = std::min(seq.size(), options.lambda + 4);
    const auto view = seq.view().first(static_cast<size_t>(len));
    queries.emplace_back(view.begin(), view.end());
  }
  const double epsilon = 1.0;
  std::vector<std::vector<SubsequenceMatch>> expected;
  for (const auto& q : queries) {
    expected.push_back(
        std::move(fresh->RangeSearch(std::span<const char>(q), epsilon))
            .ValueOrDie());
  }
  const auto cross_check = [&](const SubsequenceMatcher<char>& loaded) {
    for (size_t i = 0; i < queries.size(); ++i) {
      auto got = loaded.RangeSearch(std::span<const char>(queries[i]),
                                    epsilon);
      SUBSEQ_CHECK(got.ok());
      SUBSEQ_CHECK(got.value() == expected[i]);
    }
  };

  double eager_load_ms = 0.0;
  double mmap_load_ms = 0.0;
  for (const SnapshotLoadMode mode :
       {SnapshotLoadMode::kEager, SnapshotLoadMode::kMmap}) {
    MatcherOptions load_options = options;
    load_options.snapshot_load_mode = mode;
    t0 = std::chrono::steady_clock::now();
    auto loaded = std::move(SubsequenceMatcher<char>::LoadIndex(
                                db, dist, load_options, path))
                      .ValueOrDie();
    const double ms = MsSince(t0);
    (mode == SnapshotLoadMode::kEager ? eager_load_ms : mmap_load_ms) = ms;
    cross_check(*loaded);
  }
  const double mmap_speedup = build_ms / mmap_load_ms;
  std::printf("build %.2fms  save %.2fms  load(eager) %.2fms  "
              "load(mmap) %.2fms  mmap_speedup %.1fx\n",
              build_ms, save_ms, eager_load_ms, mmap_load_ms, mmap_speedup);
  records.push_back(BenchRecord{
      "build",
      {{"build_ms", build_ms},
       {"save_ms", save_ms},
       {"eager_load_ms", eager_load_ms},
       {"mmap_load_ms", mmap_load_ms},
       {"mmap_speedup", mmap_speedup}}});

  // ---- out-of-core residency.
  {
    MatcherOptions oocore_options = options;
    oocore_options.exec.num_shards = 8;
    ResidencyGauge gauge;
    t0 = std::chrono::steady_clock::now();
    SUBSEQ_CHECK(SubsequenceMatcher<char>::BuildToSnapshot(
                     db, dist, oocore_options, path, SnapshotBuildOptions{},
                     &gauge)
                     .ok());
    const double oocore_ms = MsSince(t0);
    const auto n = static_cast<double>(fresh->catalog().num_windows());
    const double residency_ratio = n / static_cast<double>(gauge.peak());
    std::printf("oocore: %.0f windows, gauge peak %lld, residency_ratio "
                "%.2f (%.2fms, 8 shards)\n",
                n, static_cast<long long>(gauge.peak()), residency_ratio,
                oocore_ms);
    records.push_back(BenchRecord{
        "oocore",
        {{"catalog_windows", n},
         {"gauge_peak", static_cast<double>(gauge.peak())},
         {"residency_ratio", residency_ratio},
         {"oocore_build_ms", oocore_ms}}});
  }

  // ---- serving start: rebuild vs snapshot boot.
  {
    MatchServerOptions server_options;
    server_options.matcher = options;
    t0 = std::chrono::steady_clock::now();
    auto rebuilt = std::move(MatchServer<char>::Start(db, dist,
                                                      server_options))
                       .ValueOrDie();
    const double rebuild_start_ms = MsSince(t0);
    SUBSEQ_CHECK(rebuilt->SaveSnapshot(path).ok());
    rebuilt->Shutdown();

    server_options.snapshot_path = path;
    server_options.matcher.snapshot_load_mode = SnapshotLoadMode::kMmap;
    t0 = std::chrono::steady_clock::now();
    auto booted = std::move(MatchServer<char>::Start(db, dist,
                                                     server_options))
                      .ValueOrDie();
    const double snapshot_start_ms = MsSince(t0);
    for (size_t i = 0; i < queries.size(); ++i) {
      MatchRequest<char> request;
      request.query = queries[i];
      request.epsilon = epsilon;
      MatchResult result = booted->Submit(std::move(request)).Get();
      SUBSEQ_CHECK(result.status.ok());
      SUBSEQ_CHECK(result.matches == expected[i]);
    }
    booted->Shutdown();
    const double start_speedup = rebuild_start_ms / snapshot_start_ms;
    std::printf("serve_start: rebuild %.2fms vs snapshot boot %.2fms "
                "(%.1fx)\n",
                rebuild_start_ms, snapshot_start_ms, start_speedup);
    records.push_back(BenchRecord{
        "serve_start",
        {{"rebuild_start_ms", rebuild_start_ms},
         {"snapshot_start_ms", snapshot_start_ms},
         {"start_speedup", start_speedup}}});
  }
  std::remove(path.c_str());

  const std::string json = "BENCH_snapshot_io.json";
  if (!WriteBenchJson(json, "snapshot_io", records)) {
    std::fprintf(stderr, "failed to write %s\n", json.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json.c_str());
  return 0;
}

}  // namespace
}  // namespace subseq::bench

int main() { return subseq::bench::Run(); }
