// Figure 9: range-query cost on SONGS / DFD.
//
// Paper's observations to reproduce:
//  * RN-5 (num_max = 5) performs about as well as the unconstrained RN;
//  * both beat the cover tree and the MV index of comparable space.

#include <cstdio>

#include "bench_common.h"
#include "subseq/distance/frechet.h"

namespace subseq::bench {
namespace {

void Run() {
  Banner("Figure 9", "query cost (% of naive), SONGS / DFD");
  const int32_t windows = Scaled(3000, 20000);
  const int32_t num_queries = Scaled(40, 100);

  const auto db = MakeSongDb(windows, 61);
  auto catalog = WindowCatalog::PartitionDatabase(db, kWindowLength);
  const FrechetDistance1D dfd;
  const WindowOracle<double> oracle(db, catalog.value(), dfd);
  const auto queries = MakeSongQueries(db, catalog.value(), num_queries, 62);

  const std::vector<std::string> kinds = {"rn", "rn-5", "ct", "mv-5"};
  std::vector<std::unique_ptr<RangeIndex>> indexes;
  for (const auto& kind : kinds) {
    std::printf("building %s...\n", kind.c_str());
    indexes.push_back(BuildIndex(kind, oracle));
  }

  std::printf("\n%8s", "range");
  for (const auto& kind : kinds) std::printf(" %9s", kind.c_str());
  std::printf("\n");
  for (const double eps : {0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0}) {
    std::printf("%8.2f", eps);
    for (size_t i = 0; i < kinds.size(); ++i) {
      const double frac =
          AvgComputationFraction(*indexes[i], oracle, queries, eps);
      std::printf(" %8.1f%%", 100.0 * frac);
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: rn-5 tracks rn closely; both below ct and "
              "mv-5 at small-to-mid\nranges; all approach 100%% as the "
              "range covers the skewed DFD mass (2-5).\n");
}

}  // namespace
}  // namespace subseq::bench

int main() {
  subseq::bench::Run();
  return 0;
}
