// Thread-scaling of the execution layer: index construction and batched
// range queries on PROTEINS / Levenshtein at 1/2/4/8 threads, plus a
// shard sweep of the ShardedIndex (1/2/4/8 contiguous shards of the same
// catalog behind per-shard reference nets).
//
// Prints a table and writes BENCH_parallel_scaling.json (machine-readable,
// consumed by CI trend tooling and gated by tools/bench_check.py). Also
// cross-checks that every thread count returns element-wise identical
// query results, and that every shard count returns the same hit sets as
// the monolithic scan — the determinism contracts of the exec and
// sharding layers.

#include <chrono>
#include <cstdio>
#include <vector>

#include <algorithm>
#include <memory>
#include <optional>

#include "bench_common.h"
#include "subseq/core/check.h"
#include "subseq/core/rng.h"
#include "subseq/distance/dtw.h"
#include "subseq/distance/erp.h"
#include "subseq/distance/euclidean.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/distance/simd/cpu_features.h"
#include "subseq/frame/lb_prefilter.h"
#include "subseq/exec/exec_context.h"
#include "subseq/exec/stats_sink.h"
#include "subseq/frame/matcher.h"
#include "subseq/frame/window_oracle.h"
#include "subseq/frame/windowing.h"
#include "subseq/metric/linear_scan.h"
#include "subseq/metric/mv_index.h"
#include "subseq/metric/reference_net.h"
#include "subseq/metric/routed_index.h"
#include "subseq/metric/sharded_index.h"
#include "subseq/metric/vp_tree.h"

namespace subseq::bench {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

int Run() {
  Banner("parallel_scaling",
         "exec-layer thread scaling: build + batched queries (PROTEINS / "
         "Levenshtein)");

  const int32_t num_windows = Scaled(400, 5000);
  const int32_t num_queries = Scaled(60, 200);
  const double epsilon = 2.0;

  const SequenceDatabase<char> db = MakeProteinDb(num_windows, 2024);
  auto catalog =
      WindowCatalog::PartitionDatabase(db, kWindowLength).ValueOrDie();
  const LevenshteinDistance<char> dist;
  const WindowOracle<char> oracle(db, catalog, dist);
  const auto queries = MakeProteinQueries(db, catalog, num_queries, 7);
  std::vector<QueryDistanceFn> fns;
  fns.reserve(queries.size());
  for (const auto& q : queries) {
    fns.push_back(oracle.SegmentQuery(std::span<const char>(q)));
  }

  std::printf("windows=%d queries=%d epsilon=%.1f\n\n", oracle.size(),
              num_queries, epsilon);
  std::printf("%8s %12s %12s %12s %14s %14s\n", "threads", "mv_build_ms",
              "vp_build_ms", "rn_build_ms", "rn_query_ms", "scan_query_ms");

  std::vector<BenchRecord> records;
  std::vector<std::vector<ObjectId>> reference_results;
  double base_build = 0.0;
  double base_query = 0.0;
  for (const int32_t threads : {1, 2, 4, 8}) {
    ExecContext exec{threads};

    auto t0 = std::chrono::steady_clock::now();
    MvIndexOptions mv_options;
    mv_options.num_references = 20;
    mv_options.exec = exec;
    const MvIndex mv(oracle, mv_options);
    const double mv_build_ms = MillisSince(t0);

    t0 = std::chrono::steady_clock::now();
    VpTreeOptions vp_options;
    vp_options.exec = exec;
    const VpTree vp(oracle, vp_options);
    const double vp_build_ms = MillisSince(t0);

    t0 = std::chrono::steady_clock::now();
    ReferenceNetOptions rn_options;
    rn_options.exec = exec;
    const ReferenceNet rn = ReferenceNet::BuildAll(oracle, rn_options);
    const double rn_build_ms = MillisSince(t0);

    t0 = std::chrono::steady_clock::now();
    StatsSink sink;
    const auto rn_results = rn.BatchRangeQuery(fns, epsilon, exec, &sink);
    const double rn_query_ms = MillisSince(t0);

    const LinearScan scan(oracle.size());
    t0 = std::chrono::steady_clock::now();
    const auto scan_results = scan.BatchRangeQuery(fns, epsilon, exec,
                                                   nullptr);
    const double scan_query_ms = MillisSince(t0);

    // Determinism: every thread count must reproduce the 1-thread
    // results element-wise.
    if (reference_results.empty()) {
      reference_results = rn_results;
    } else {
      SUBSEQ_CHECK(rn_results == reference_results);
    }

    std::printf("%8d %12.1f %12.1f %12.1f %14.1f %14.1f\n", threads,
                mv_build_ms, vp_build_ms, rn_build_ms, rn_query_ms,
                scan_query_ms);

    const double build_ms = mv_build_ms + vp_build_ms + rn_build_ms;
    const double query_ms = rn_query_ms + scan_query_ms;
    if (threads == 1) {
      base_build = build_ms;
      base_query = query_ms;
    }
    records.push_back(BenchRecord{
        "threads=" + std::to_string(threads),
        {{"threads", static_cast<double>(threads)},
         {"mv_build_ms", mv_build_ms},
         {"vp_build_ms", vp_build_ms},
         {"rn_build_ms", rn_build_ms},
         {"rn_query_ms", rn_query_ms},
         {"scan_query_ms", scan_query_ms},
         {"build_speedup", build_ms > 0.0 ? base_build / build_ms : 0.0},
         {"query_speedup", query_ms > 0.0 ? base_query / query_ms : 0.0},
         {"filter_computations",
          static_cast<double>(sink.distance_computations())}}});
  }

  // ------------------------------------------------------------ shard sweep
  // K contiguous shards, one reference net per shard, built and queried
  // through the ShardedIndex at the hardware thread budget. Build cost is
  // super-linear in the shard size, so sharding wins build time twice:
  // less total work AND parallel shard construction.
  std::printf("\n%8s %12s %14s %13s %12s %14s\n", "shards", "build_ms",
              "build_comps", "build_spdup", "query_ms", "query_comps");

  const ExecContext shard_exec{};  // hardware threads
  const auto factory = [](const DistanceOracle& shard_oracle,
                          int32_t) -> Result<std::unique_ptr<RangeIndex>> {
    auto net = std::make_unique<ReferenceNet>(shard_oracle);
    for (ObjectId id = 0; id < shard_oracle.size(); ++id) {
      SUBSEQ_RETURN_NOT_OK(net->Insert(id));
    }
    return std::unique_ptr<RangeIndex>(std::move(net));
  };
  std::vector<std::vector<ObjectId>> scan_truth;
  {
    const LinearScan scan(oracle.size());
    scan_truth = scan.BatchRangeQuery(fns, epsilon, shard_exec, nullptr);
    for (auto& ids : scan_truth) std::sort(ids.begin(), ids.end());
  }
  double shard_base_build = 0.0;
  for (const int32_t shards : {1, 2, 4, 8}) {
    ShardedIndexOptions options;
    options.num_shards = shards;
    options.exec = shard_exec;

    auto t0 = std::chrono::steady_clock::now();
    auto built = ShardedIndex::Build(oracle, factory, options);
    SUBSEQ_CHECK(built.ok());
    const auto sharded = std::move(built).ValueOrDie();
    const double build_ms = MillisSince(t0);

    t0 = std::chrono::steady_clock::now();
    StatsSink sink;
    const auto results =
        sharded->BatchRangeQuery(fns, epsilon, shard_exec, &sink);
    const double query_ms = MillisSince(t0);

    // Exactness at every shard count: the merged hit sets must equal the
    // monolithic scan's (order within a query may differ across shard
    // counts; sets may not).
    SUBSEQ_CHECK(results.size() == scan_truth.size());
    for (size_t q = 0; q < results.size(); ++q) {
      std::vector<ObjectId> sorted = results[q];
      std::sort(sorted.begin(), sorted.end());
      SUBSEQ_CHECK(sorted == scan_truth[q]);
    }

    if (shards == 1) shard_base_build = build_ms;
    const double build_speedup =
        build_ms > 0.0 ? shard_base_build / build_ms : 0.0;
    const double build_comps = static_cast<double>(
        sharded->build_stats().distance_computations);
    std::printf("%8d %12.1f %14.0f %13.2f %12.1f %14lld\n", shards,
                build_ms, build_comps, build_speedup, query_ms,
                static_cast<long long>(sink.distance_computations()));

    records.push_back(BenchRecord{
        "shards=" + std::to_string(shards),
        {{"shards", static_cast<double>(shards)},
         {"shard_build_ms", build_ms},
         {"shard_build_computations", build_comps},
         {"shard_build_speedup", build_speedup},
         {"shard_query_ms", query_ms},
         {"shard_query_computations",
          static_cast<double>(sink.distance_computations())}}});
  }

  // ----------------------------------------------------------- routing
  // Pivot-routed cells vs the monolithic linear scan on SONGS /
  // Euclidean — random-walk windows cluster by level, so k-center
  // routing has real structure to exploit. Linear-scan cells make the
  // accounting exact: the monolithic scan bills Q*n, the routed index
  // bills Q*cells pivot distances plus every probed cell's members, so
  // routed_computations_saved is precisely the skipped members minus the
  // routing overhead. Both gated rows are deterministic count ratios
  // (tight tolerance in CI — the routing decisions are fixed by the data
  // and the padded cutoff, not by machine speed). Hit sets are CHECKed
  // equal to the monolithic scan's at every cell count.
  std::printf("\n%8s %12s %14s %15s %14s\n", "cells", "query_ms",
              "query_comps", "skip_rate", "comps_saved");
  {
    const SequenceDatabase<double> route_db = MakeSongDb(num_windows, 55);
    auto route_catalog =
        WindowCatalog::PartitionDatabase(route_db, kWindowLength)
            .ValueOrDie();
    const EuclideanDistance1D euclid;
    const WindowOracle<double> route_oracle(route_db, route_catalog,
                                            euclid);
    const auto route_queries =
        MakeSongQueries(route_db, route_catalog, num_queries, 13);
    const double route_epsilon = 4.0;
    std::vector<QueryDistanceFn> route_fns;
    route_fns.reserve(route_queries.size());
    for (const auto& q : route_queries) {
      route_fns.push_back(
          route_oracle.SegmentQuery(std::span<const double>(q)));
    }

    const auto scan_factory =
        [](const DistanceOracle& cell_oracle,
           int32_t) -> Result<std::unique_ptr<RangeIndex>> {
      return std::unique_ptr<RangeIndex>(
          std::make_unique<LinearScan>(cell_oracle.size()));
    };

    const LinearScan mono(route_oracle.size());
    StatsSink mono_sink;
    auto route_truth = mono.BatchRangeQuery(route_fns, route_epsilon,
                                            shard_exec, &mono_sink);
    for (auto& ids : route_truth) std::sort(ids.begin(), ids.end());
    const int64_t mono_computations = mono_sink.distance_computations();
    SUBSEQ_CHECK(mono_computations > 0);

    for (const int32_t cells : {4, 8}) {
      RoutedIndexOptions options;
      options.num_cells = cells;
      options.exec = shard_exec;
      auto built = RoutedIndex::Build(route_oracle, scan_factory, options);
      SUBSEQ_CHECK(built.ok());
      const auto routed = std::move(built).ValueOrDie();

      auto t0 = std::chrono::steady_clock::now();
      StatsSink sink;
      const auto results =
          routed->BatchRangeQuery(route_fns, route_epsilon, shard_exec,
                                  &sink);
      const double query_ms = MillisSince(t0);

      // Exactness at every cell count: routing must never lose a hit.
      SUBSEQ_CHECK(results.size() == route_truth.size());
      for (size_t q = 0; q < results.size(); ++q) {
        std::vector<ObjectId> sorted = results[q];
        std::sort(sorted.begin(), sorted.end());
        SUBSEQ_CHECK(sorted == route_truth[q]);
      }

      const double probed = static_cast<double>(sink.cells_probed());
      const double skipped = static_cast<double>(sink.cells_skipped());
      SUBSEQ_CHECK(probed + skipped > 0.0);
      const double skip_rate = skipped / (probed + skipped);
      const double saved =
          1.0 - static_cast<double>(sink.distance_computations()) /
                    static_cast<double>(mono_computations);
      SUBSEQ_CHECK(skip_rate > 0.0);
      SUBSEQ_CHECK(saved > 0.0);
      std::printf("%8d %12.1f %14lld %15.3f %14.3f\n",
                  routed->num_cells(), query_ms,
                  static_cast<long long>(sink.distance_computations()),
                  skip_rate, saved);

      records.push_back(BenchRecord{
          "routing_cells=" + std::to_string(cells),
          {{"routing_cells", static_cast<double>(cells)},
           {"routed_query_ms", query_ms},
           {"routed_query_computations",
            static_cast<double>(sink.distance_computations())},
           {"route_skip_rate", skip_rate},
           {"routed_computations_saved", saved}}});
    }
  }

  // ------------------------------------------------------ verify scaling
  // Step-5 thread scaling: the same PROTEINS database behind a full
  // matcher pipeline, hits precomputed, wall-clock of the Type I
  // verification phase (RangeSearchFromHits) at 1/2/4/8 verify threads.
  // Matches must be element-wise identical at every setting — the step-5
  // determinism contract — and the speedup ratio is what
  // tools/bench_check.py gates (wall-clock, so the gate runs with a wide
  // tolerance: on boxes with fewer cores than the thread budget the
  // ratio sits near 1.0).
  std::printf("\n%8s %12s %14s %15s\n", "vthreads", "verify_ms",
              "verify_spdup", "verifications");

  const int32_t num_vqueries = Scaled(4, 24);
  const int32_t vquery_len = 60;
  std::vector<std::vector<char>> vqueries;
  for (int32_t i = 0; i < num_vqueries; ++i) {
    const Sequence<char>& seq = db.at(i % db.size());
    SUBSEQ_CHECK(seq.size() >= vquery_len);
    const auto view = seq.Subsequence(Interval{0, vquery_len});
    vqueries.emplace_back(view.begin(), view.end());
  }
  const double verify_epsilon = 1.0;

  double base_verify = 0.0;
  std::vector<std::vector<SubsequenceMatch>> verify_truth;
  for (const int32_t threads : {1, 2, 4, 8}) {
    MatcherOptions moptions;
    moptions.lambda = 2 * kWindowLength;
    moptions.lambda0 = 2;
    moptions.index_kind = IndexKind::kReferenceNet;
    moptions.exec.num_threads = 1;  // isolate step 5: filter stays serial
    moptions.exec.num_verify_threads = threads;
    auto matcher =
        std::move(SubsequenceMatcher<char>::Build(db, dist, moptions))
            .ValueOrDie();

    // Hits precomputed so the timed section is verification alone.
    std::vector<std::vector<SegmentHit>> hits;
    hits.reserve(vqueries.size());
    for (const auto& q : vqueries) {
      hits.push_back(matcher->FilterSegments(std::span<const char>(q),
                                             verify_epsilon));
    }

    int64_t verifications = 0;
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::vector<SubsequenceMatch>> matches;
    matches.reserve(vqueries.size());
    for (size_t q = 0; q < vqueries.size(); ++q) {
      MatchQueryStats stats;
      auto result = matcher->RangeSearchFromHits(
          std::span<const char>(vqueries[q]), hits[q], verify_epsilon,
          &stats);
      SUBSEQ_CHECK(result.ok());
      matches.push_back(std::move(result).ValueOrDie());
      verifications += stats.verifications;
    }
    const double verify_ms = MillisSince(t0);

    // Determinism: every verify-thread budget must reproduce the
    // 1-thread matches element-wise.
    if (verify_truth.empty()) {
      verify_truth = matches;
    } else {
      SUBSEQ_CHECK(matches == verify_truth);
    }

    if (threads == 1) base_verify = verify_ms;
    const double verify_speedup =
        verify_ms > 0.0 ? base_verify / verify_ms : 0.0;
    std::printf("%8d %12.1f %14.2f %15lld\n", threads, verify_ms,
                verify_speedup, static_cast<long long>(verifications));
    records.push_back(BenchRecord{
        "verify_threads=" + std::to_string(threads),
        {{"verify_threads", static_cast<double>(threads)},
         {"verify_ms", verify_ms},
         {"verify_speedup", verify_speedup},
         {"verifications", static_cast<double>(verifications)}}});
  }

  // ---------------------------------------------------- Type III pipeline
  // NearestMatch end-to-end: the serial epsilon schedule (num_threads=1,
  // probes strictly in sequence) vs the pipelined one (next probe's
  // filter speculates on the pool while the current round verifies).
  // Step-5 verification is pinned to one thread in BOTH runs so the
  // ratio isolates the probe schedule + parallel filter, not the verify
  // sweep above. Results must be identical; only the wall-clock may
  // move.
  {
    const double eps_max = 4.0;
    const double eps_inc = 0.5;
    auto run_nearest = [&](int32_t num_threads, double* ms) {
      MatcherOptions moptions;
      moptions.lambda = 2 * kWindowLength;
      moptions.lambda0 = 2;
      moptions.index_kind = IndexKind::kReferenceNet;
      moptions.exec.num_threads = num_threads;
      moptions.exec.num_verify_threads = 1;
      auto matcher =
          std::move(SubsequenceMatcher<char>::Build(db, dist, moptions))
              .ValueOrDie();
      std::vector<std::optional<SubsequenceMatch>> found;
      auto t0 = std::chrono::steady_clock::now();
      for (const auto& q : vqueries) {
        auto r = matcher->NearestMatch(std::span<const char>(q), eps_max,
                                       eps_inc);
        SUBSEQ_CHECK(r.ok());
        found.push_back(std::move(r).ValueOrDie());
      }
      *ms = MillisSince(t0);
      return found;
    };
    double serial_ms = 0.0;
    double pipelined_ms = 0.0;
    const auto serial = run_nearest(1, &serial_ms);
    const auto pipelined = run_nearest(8, &pipelined_ms);
    SUBSEQ_CHECK(serial.size() == pipelined.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      SUBSEQ_CHECK(serial[i].has_value() == pipelined[i].has_value());
      if (serial[i].has_value()) SUBSEQ_CHECK(*serial[i] == *pipelined[i]);
    }
    const double nearest_speedup =
        pipelined_ms > 0.0 ? serial_ms / pipelined_ms : 0.0;
    std::printf("\n%-18s %12.1f %12.1f %14.2f\n", "nearest_pipeline",
                serial_ms, pipelined_ms, nearest_speedup);
    records.push_back(BenchRecord{
        "nearest_pipeline",
        {{"nearest_serial_ms", serial_ms},
         {"nearest_pipelined_ms", pipelined_ms},
         {"nearest_speedup", nearest_speedup}}});
  }

  // ------------------------------------------------ step-4 LB prefilter
  // SONGS / unconstrained DTW behind a LinearScan — the paper's
  // non-metric configuration — scanned plain vs with the LB_Keogh
  // prunable payload. Results and billed computations are CHECKed
  // identical; the gated rows are the prune rate and the exact DTW
  // evaluations the prefilter saved (deterministic counts, tight
  // tolerance in CI) plus the wall-clock ratio (wide tolerance).
  {
    const SequenceDatabase<double> song_db = MakeSongDb(num_windows, 77);
    auto song_catalog =
        WindowCatalog::PartitionDatabase(song_db, kWindowLength)
            .ValueOrDie();
    const DtwDistance1D dtw;
    const WindowOracle<double> song_oracle(song_db, song_catalog, dtw);
    const auto song_queries =
        MakeSongQueries(song_db, song_catalog, num_queries, 9);
    const double song_epsilon = 3.0;
    const ExecContext song_exec{};  // hardware threads

    std::vector<QueryDistanceFn> plain_fns;
    std::vector<QueryDistanceFn> prunable_fns;
    for (const auto& q : song_queries) {
      SUBSEQ_CHECK(static_cast<int32_t>(q.size()) == kWindowLength);
      const std::span<const double> seg(q);
      plain_fns.push_back(song_oracle.SegmentQuery(seg));
      auto lb = MakeSegmentLowerBound(song_db, song_catalog, dtw, seg);
      SUBSEQ_CHECK(lb != nullptr);
      PrunableQueryFn prunable;
      prunable.fn = song_oracle.SegmentQuery(seg);
      prunable.lower_bound = std::move(lb);
      prunable_fns.push_back(QueryDistanceFn(std::move(prunable)));
    }

    const LinearScan song_scan(song_oracle.size());
    StatsSink plain_sink;
    auto t0 = std::chrono::steady_clock::now();
    const auto plain_results = song_scan.BatchRangeQuery(
        plain_fns, song_epsilon, song_exec, &plain_sink);
    const double plain_ms = MillisSince(t0);

    StatsSink pruned_sink;
    t0 = std::chrono::steady_clock::now();
    const auto pruned_results = song_scan.BatchRangeQuery(
        prunable_fns, song_epsilon, song_exec, &pruned_sink);
    const double pruned_ms = MillisSince(t0);

    // The prefilter determinism contract: identical hits, identical
    // billing; only lower_bound_pruned (and the wall-clock) moves.
    SUBSEQ_CHECK(pruned_results == plain_results);
    SUBSEQ_CHECK(pruned_sink.distance_computations() ==
                 plain_sink.distance_computations());
    SUBSEQ_CHECK(plain_sink.lower_bound_pruned() == 0);
    const double saved =
        static_cast<double>(pruned_sink.lower_bound_pruned());
    const double scanned = static_cast<double>(
        plain_sink.distance_computations());
    const double prune_rate = scanned > 0.0 ? saved / scanned : 0.0;
    SUBSEQ_CHECK(saved > 0.0);
    const double lb_speedup = pruned_ms > 0.0 ? plain_ms / pruned_ms : 0.0;
    std::printf("\n%-18s %12.1f %12.1f %13.3f %14.0f\n", "lb_prefilter",
                plain_ms, pruned_ms, prune_rate, saved);
    records.push_back(BenchRecord{
        "lb_prefilter",
        {{"lb_plain_ms", plain_ms},
         {"lb_pruned_ms", pruned_ms},
         {"lb_prune_rate", prune_rate},
         {"filter_computations_saved", saved},
         {"lb_prefilter_speedup", lb_speedup}}});

    // -------------------------------------------- batched distance fill
    // The SegmentHitDistances shape: one segment against many gathered
    // windows, per-hit Compute loop vs one ComputeMany batch through the
    // vertical 4-lane DTW kernel (DTW is the distance this linear-scan
    // configuration actually fills hits with). Outputs are CHECKed
    // bit-identical (the ComputeMany contract); the gated row is the
    // speedup ratio.
    std::vector<std::span<const double>> window_views;
    window_views.reserve(static_cast<size_t>(song_catalog.num_windows()));
    for (ObjectId w = 0; w < song_catalog.num_windows(); ++w) {
      window_views.push_back(song_oracle.WindowView(w));
    }
    const std::span<const double> seg0(song_queries.front());
    const int reps = Scaled(8, 25);
    std::vector<double> loop_out(window_views.size());
    t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      for (size_t w = 0; w < window_views.size(); ++w) {
        loop_out[w] = dtw.Compute(seg0, window_views[w]);
      }
    }
    const double loop_ms = MillisSince(t0);
    std::vector<double> batch_out(window_views.size());
    t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      dtw.ComputeMany(seg0, window_views, batch_out.data());
    }
    const double batch_ms = MillisSince(t0);
    SUBSEQ_CHECK(batch_out == loop_out);
    const double batch_speedup = batch_ms > 0.0 ? loop_ms / batch_ms : 0.0;
    std::printf("%-18s %12.1f %12.1f %14.2f\n", "simd_batch", loop_ms,
                batch_ms, batch_speedup);
    records.push_back(BenchRecord{
        "simd_batch",
        {{"simd_loop_ms", loop_ms},
         {"simd_batch_ms", batch_ms},
         {"simd_batch_speedup", batch_speedup}}});

    // --------------------------------------------- staged LB cascade
    // The same SONGS scan with the full cascade: a feature table turns
    // the DTW prefilter into Kim -> Keogh and enables the ERP sum
    // bound. Hits and billing are CHECKed against the plain scans; the
    // gated rows are the per-stage prune rates — deterministic count
    // ratios (decisions fixed by the data and the padded cutoff).
    const auto song_features = BuildLbFeatureTable(song_db, song_catalog);
    const auto make_prunable =
        [&](const SequenceDistance<double>& cascade_dist,
            const WindowOracle<double>& cascade_oracle) {
          std::vector<QueryDistanceFn> out;
          for (const auto& q : song_queries) {
            const std::span<const double> seg(q);
            auto lb = MakeSegmentLowerBound(song_db, song_catalog,
                                            cascade_dist, seg,
                                            song_features);
            SUBSEQ_CHECK(lb != nullptr);
            PrunableQueryFn prunable;
            prunable.fn = cascade_oracle.SegmentQuery(seg);
            prunable.lower_bound = std::move(lb);
            out.push_back(QueryDistanceFn(std::move(prunable)));
          }
          return out;
        };

    StatsSink cascade_sink;
    t0 = std::chrono::steady_clock::now();
    const auto cascade_results = song_scan.BatchRangeQuery(
        make_prunable(dtw, song_oracle), song_epsilon, song_exec,
        &cascade_sink);
    const double cascade_ms = MillisSince(t0);
    SUBSEQ_CHECK(cascade_results == plain_results);
    SUBSEQ_CHECK(cascade_sink.distance_computations() ==
                 plain_sink.distance_computations());
    SUBSEQ_CHECK(cascade_sink.lb_kim_pruned() > 0);
    const double lb_kim_prune_rate =
        static_cast<double>(cascade_sink.lb_kim_pruned()) / scanned;

    const ErpDistance1D erp;
    const WindowOracle<double> erp_oracle(song_db, song_catalog, erp);
    std::vector<QueryDistanceFn> erp_plain_fns;
    for (const auto& q : song_queries) {
      erp_plain_fns.push_back(
          erp_oracle.SegmentQuery(std::span<const double>(q)));
    }
    StatsSink erp_plain_sink;
    t0 = std::chrono::steady_clock::now();
    const auto erp_plain_results = song_scan.BatchRangeQuery(
        erp_plain_fns, song_epsilon, song_exec, &erp_plain_sink);
    const double erp_plain_ms = MillisSince(t0);
    StatsSink erp_cascade_sink;
    t0 = std::chrono::steady_clock::now();
    const auto erp_cascade_results = song_scan.BatchRangeQuery(
        make_prunable(erp, erp_oracle), song_epsilon, song_exec,
        &erp_cascade_sink);
    const double erp_cascade_ms = MillisSince(t0);
    SUBSEQ_CHECK(erp_cascade_results == erp_plain_results);
    SUBSEQ_CHECK(erp_cascade_sink.distance_computations() ==
                 erp_plain_sink.distance_computations());
    SUBSEQ_CHECK(erp_cascade_sink.lb_erp_pruned() ==
                 erp_cascade_sink.lower_bound_pruned());
    SUBSEQ_CHECK(erp_cascade_sink.lb_erp_pruned() > 0);
    const double erp_prune_rate =
        static_cast<double>(erp_cascade_sink.lb_erp_pruned()) /
        static_cast<double>(erp_plain_sink.distance_computations());

    std::printf("%-18s %12.1f %12.1f %13.3f %14.3f\n", "lb_cascade",
                cascade_ms, erp_cascade_ms, lb_kim_prune_rate,
                erp_prune_rate);
    records.push_back(BenchRecord{
        "lb_cascade",
        {{"cascade_dtw_ms", cascade_ms},
         {"erp_plain_ms", erp_plain_ms},
         {"erp_cascade_ms", erp_cascade_ms},
         {"lb_kim_prune_rate", lb_kim_prune_rate},
         {"erp_prune_rate", erp_prune_rate}}});

    // ------------------------------------------- anti-diagonal DP
    // One long single pair per distance — the plain-Compute path the
    // wavefront kernels accelerate (no batch of 4 to fill). Values are
    // CHECKed identical with the wavefront forced vs disabled; the
    // gated row is the wall-clock ratio (same machine, same run).
    {
      Rng rng(4242);
      const int32_t long_n = Scaled(1200, 3000);
      std::vector<double> a, b;
      for (int32_t i = 0; i < long_n; ++i) {
        a.push_back(rng.NextDouble(0.0, 10.0));
        b.push_back(rng.NextDouble(0.0, 10.0));
      }
      const int ad_reps = Scaled(3, 8);
      simd::SetAntidiagThresholdForTesting(-1);
      t0 = std::chrono::steady_clock::now();
      double rows_dtw = 0.0, rows_erp = 0.0;
      for (int r = 0; r < ad_reps; ++r) {
        rows_dtw = dtw.Compute(a, b);
        rows_erp = erp.Compute(a, b);
      }
      const double rows_ms = MillisSince(t0);
      simd::SetAntidiagThresholdForTesting(1);
      t0 = std::chrono::steady_clock::now();
      double waves_dtw = 0.0, waves_erp = 0.0;
      for (int r = 0; r < ad_reps; ++r) {
        waves_dtw = dtw.Compute(a, b);
        waves_erp = erp.Compute(a, b);
      }
      const double waves_ms = MillisSince(t0);
      simd::ClearAntidiagThresholdForTesting();
      SUBSEQ_CHECK(waves_dtw == rows_dtw);
      SUBSEQ_CHECK(waves_erp == rows_erp);
      const double antidiag_speedup =
          waves_ms > 0.0 ? rows_ms / waves_ms : 0.0;
      std::printf("%-18s %12.1f %12.1f %14.2f\n", "antidiag", rows_ms,
                  waves_ms, antidiag_speedup);
      records.push_back(BenchRecord{
          "antidiag",
          {{"antidiag_rows_ms", rows_ms},
           {"antidiag_waves_ms", waves_ms},
           {"antidiag_speedup", antidiag_speedup}}});
    }
  }

  const std::string path = "BENCH_parallel_scaling.json";
  if (!WriteBenchJson(path, "parallel_scaling", records)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace subseq::bench

int main() { return subseq::bench::Run(); }
