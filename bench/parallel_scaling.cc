// Thread-scaling of the execution layer: index construction and batched
// range queries on PROTEINS / Levenshtein at 1/2/4/8 threads, plus a
// shard sweep of the ShardedIndex (1/2/4/8 contiguous shards of the same
// catalog behind per-shard reference nets).
//
// Prints a table and writes BENCH_parallel_scaling.json (machine-readable,
// consumed by CI trend tooling and gated by tools/bench_check.py). Also
// cross-checks that every thread count returns element-wise identical
// query results, and that every shard count returns the same hit sets as
// the monolithic scan — the determinism contracts of the exec and
// sharding layers.

#include <chrono>
#include <cstdio>
#include <vector>

#include <algorithm>
#include <memory>

#include "bench_common.h"
#include "subseq/core/check.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/exec/exec_context.h"
#include "subseq/exec/stats_sink.h"
#include "subseq/frame/window_oracle.h"
#include "subseq/frame/windowing.h"
#include "subseq/metric/linear_scan.h"
#include "subseq/metric/mv_index.h"
#include "subseq/metric/reference_net.h"
#include "subseq/metric/sharded_index.h"
#include "subseq/metric/vp_tree.h"

namespace subseq::bench {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

int Run() {
  Banner("parallel_scaling",
         "exec-layer thread scaling: build + batched queries (PROTEINS / "
         "Levenshtein)");

  const int32_t num_windows = Scaled(400, 5000);
  const int32_t num_queries = Scaled(60, 200);
  const double epsilon = 2.0;

  const SequenceDatabase<char> db = MakeProteinDb(num_windows, 2024);
  auto catalog =
      WindowCatalog::PartitionDatabase(db, kWindowLength).ValueOrDie();
  const LevenshteinDistance<char> dist;
  const WindowOracle<char> oracle(db, catalog, dist);
  const auto queries = MakeProteinQueries(db, catalog, num_queries, 7);
  std::vector<QueryDistanceFn> fns;
  fns.reserve(queries.size());
  for (const auto& q : queries) {
    fns.push_back(oracle.SegmentQuery(std::span<const char>(q)));
  }

  std::printf("windows=%d queries=%d epsilon=%.1f\n\n", oracle.size(),
              num_queries, epsilon);
  std::printf("%8s %12s %12s %12s %14s %14s\n", "threads", "mv_build_ms",
              "vp_build_ms", "rn_build_ms", "rn_query_ms", "scan_query_ms");

  std::vector<BenchRecord> records;
  std::vector<std::vector<ObjectId>> reference_results;
  double base_build = 0.0;
  double base_query = 0.0;
  for (const int32_t threads : {1, 2, 4, 8}) {
    ExecContext exec{threads};

    auto t0 = std::chrono::steady_clock::now();
    MvIndexOptions mv_options;
    mv_options.num_references = 20;
    mv_options.exec = exec;
    const MvIndex mv(oracle, mv_options);
    const double mv_build_ms = MillisSince(t0);

    t0 = std::chrono::steady_clock::now();
    VpTreeOptions vp_options;
    vp_options.exec = exec;
    const VpTree vp(oracle, vp_options);
    const double vp_build_ms = MillisSince(t0);

    t0 = std::chrono::steady_clock::now();
    ReferenceNetOptions rn_options;
    rn_options.exec = exec;
    const ReferenceNet rn = ReferenceNet::BuildAll(oracle, rn_options);
    const double rn_build_ms = MillisSince(t0);

    t0 = std::chrono::steady_clock::now();
    StatsSink sink;
    const auto rn_results = rn.BatchRangeQuery(fns, epsilon, exec, &sink);
    const double rn_query_ms = MillisSince(t0);

    const LinearScan scan(oracle.size());
    t0 = std::chrono::steady_clock::now();
    const auto scan_results = scan.BatchRangeQuery(fns, epsilon, exec,
                                                   nullptr);
    const double scan_query_ms = MillisSince(t0);

    // Determinism: every thread count must reproduce the 1-thread
    // results element-wise.
    if (reference_results.empty()) {
      reference_results = rn_results;
    } else {
      SUBSEQ_CHECK(rn_results == reference_results);
    }

    std::printf("%8d %12.1f %12.1f %12.1f %14.1f %14.1f\n", threads,
                mv_build_ms, vp_build_ms, rn_build_ms, rn_query_ms,
                scan_query_ms);

    const double build_ms = mv_build_ms + vp_build_ms + rn_build_ms;
    const double query_ms = rn_query_ms + scan_query_ms;
    if (threads == 1) {
      base_build = build_ms;
      base_query = query_ms;
    }
    records.push_back(BenchRecord{
        "threads=" + std::to_string(threads),
        {{"threads", static_cast<double>(threads)},
         {"mv_build_ms", mv_build_ms},
         {"vp_build_ms", vp_build_ms},
         {"rn_build_ms", rn_build_ms},
         {"rn_query_ms", rn_query_ms},
         {"scan_query_ms", scan_query_ms},
         {"build_speedup", build_ms > 0.0 ? base_build / build_ms : 0.0},
         {"query_speedup", query_ms > 0.0 ? base_query / query_ms : 0.0},
         {"filter_computations",
          static_cast<double>(sink.distance_computations())}}});
  }

  // ------------------------------------------------------------ shard sweep
  // K contiguous shards, one reference net per shard, built and queried
  // through the ShardedIndex at the hardware thread budget. Build cost is
  // super-linear in the shard size, so sharding wins build time twice:
  // less total work AND parallel shard construction.
  std::printf("\n%8s %12s %14s %13s %12s %14s\n", "shards", "build_ms",
              "build_comps", "build_spdup", "query_ms", "query_comps");

  const ExecContext shard_exec{};  // hardware threads
  const auto factory = [](const DistanceOracle& shard_oracle,
                          int32_t) -> Result<std::unique_ptr<RangeIndex>> {
    auto net = std::make_unique<ReferenceNet>(shard_oracle);
    for (ObjectId id = 0; id < shard_oracle.size(); ++id) {
      SUBSEQ_RETURN_NOT_OK(net->Insert(id));
    }
    return std::unique_ptr<RangeIndex>(std::move(net));
  };
  std::vector<std::vector<ObjectId>> scan_truth;
  {
    const LinearScan scan(oracle.size());
    scan_truth = scan.BatchRangeQuery(fns, epsilon, shard_exec, nullptr);
    for (auto& ids : scan_truth) std::sort(ids.begin(), ids.end());
  }
  double shard_base_build = 0.0;
  for (const int32_t shards : {1, 2, 4, 8}) {
    ShardedIndexOptions options;
    options.num_shards = shards;
    options.exec = shard_exec;

    auto t0 = std::chrono::steady_clock::now();
    auto built = ShardedIndex::Build(oracle, factory, options);
    SUBSEQ_CHECK(built.ok());
    const auto sharded = std::move(built).ValueOrDie();
    const double build_ms = MillisSince(t0);

    t0 = std::chrono::steady_clock::now();
    StatsSink sink;
    const auto results =
        sharded->BatchRangeQuery(fns, epsilon, shard_exec, &sink);
    const double query_ms = MillisSince(t0);

    // Exactness at every shard count: the merged hit sets must equal the
    // monolithic scan's (order within a query may differ across shard
    // counts; sets may not).
    SUBSEQ_CHECK(results.size() == scan_truth.size());
    for (size_t q = 0; q < results.size(); ++q) {
      std::vector<ObjectId> sorted = results[q];
      std::sort(sorted.begin(), sorted.end());
      SUBSEQ_CHECK(sorted == scan_truth[q]);
    }

    if (shards == 1) shard_base_build = build_ms;
    const double build_speedup =
        build_ms > 0.0 ? shard_base_build / build_ms : 0.0;
    const double build_comps = static_cast<double>(
        sharded->build_stats().distance_computations);
    std::printf("%8d %12.1f %14.0f %13.2f %12.1f %14lld\n", shards,
                build_ms, build_comps, build_speedup, query_ms,
                static_cast<long long>(sink.distance_computations()));

    records.push_back(BenchRecord{
        "shards=" + std::to_string(shards),
        {{"shards", static_cast<double>(shards)},
         {"shard_build_ms", build_ms},
         {"shard_build_computations", build_comps},
         {"shard_build_speedup", build_speedup},
         {"shard_query_ms", query_ms},
         {"shard_query_computations",
          static_cast<double>(sink.distance_computations())}}});
  }

  const std::string path = "BENCH_parallel_scaling.json";
  if (!WriteBenchJson(path, "parallel_scaling", records)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace subseq::bench

int main() { return subseq::bench::Run(); }
