// Thread-scaling of the execution layer: index construction and batched
// range queries on PROTEINS / Levenshtein at 1/2/4/8 threads.
//
// Prints a table and writes BENCH_parallel_scaling.json (machine-readable,
// consumed by CI trend tooling). Also cross-checks that every thread
// count returns element-wise identical query results — the determinism
// contract of the exec layer.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "subseq/core/check.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/exec/exec_context.h"
#include "subseq/exec/stats_sink.h"
#include "subseq/frame/window_oracle.h"
#include "subseq/frame/windowing.h"
#include "subseq/metric/linear_scan.h"
#include "subseq/metric/mv_index.h"
#include "subseq/metric/reference_net.h"
#include "subseq/metric/vp_tree.h"

namespace subseq::bench {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

int Run() {
  Banner("parallel_scaling",
         "exec-layer thread scaling: build + batched queries (PROTEINS / "
         "Levenshtein)");

  const int32_t num_windows = Scaled(400, 5000);
  const int32_t num_queries = Scaled(60, 200);
  const double epsilon = 2.0;

  const SequenceDatabase<char> db = MakeProteinDb(num_windows, 2024);
  auto catalog =
      WindowCatalog::PartitionDatabase(db, kWindowLength).ValueOrDie();
  const LevenshteinDistance<char> dist;
  const WindowOracle<char> oracle(db, catalog, dist);
  const auto queries = MakeProteinQueries(db, catalog, num_queries, 7);
  std::vector<QueryDistanceFn> fns;
  fns.reserve(queries.size());
  for (const auto& q : queries) {
    fns.push_back(oracle.SegmentQuery(std::span<const char>(q)));
  }

  std::printf("windows=%d queries=%d epsilon=%.1f\n\n", oracle.size(),
              num_queries, epsilon);
  std::printf("%8s %12s %12s %12s %14s %14s\n", "threads", "mv_build_ms",
              "vp_build_ms", "rn_build_ms", "rn_query_ms", "scan_query_ms");

  std::vector<BenchRecord> records;
  std::vector<std::vector<ObjectId>> reference_results;
  double base_build = 0.0;
  double base_query = 0.0;
  for (const int32_t threads : {1, 2, 4, 8}) {
    ExecContext exec{threads};

    auto t0 = std::chrono::steady_clock::now();
    MvIndexOptions mv_options;
    mv_options.num_references = 20;
    mv_options.exec = exec;
    const MvIndex mv(oracle, mv_options);
    const double mv_build_ms = MillisSince(t0);

    t0 = std::chrono::steady_clock::now();
    VpTreeOptions vp_options;
    vp_options.exec = exec;
    const VpTree vp(oracle, vp_options);
    const double vp_build_ms = MillisSince(t0);

    t0 = std::chrono::steady_clock::now();
    ReferenceNetOptions rn_options;
    rn_options.exec = exec;
    const ReferenceNet rn = ReferenceNet::BuildAll(oracle, rn_options);
    const double rn_build_ms = MillisSince(t0);

    t0 = std::chrono::steady_clock::now();
    StatsSink sink;
    const auto rn_results = rn.BatchRangeQuery(fns, epsilon, exec, &sink);
    const double rn_query_ms = MillisSince(t0);

    const LinearScan scan(oracle.size());
    t0 = std::chrono::steady_clock::now();
    const auto scan_results = scan.BatchRangeQuery(fns, epsilon, exec,
                                                   nullptr);
    const double scan_query_ms = MillisSince(t0);

    // Determinism: every thread count must reproduce the 1-thread
    // results element-wise.
    if (reference_results.empty()) {
      reference_results = rn_results;
    } else {
      SUBSEQ_CHECK(rn_results == reference_results);
    }

    std::printf("%8d %12.1f %12.1f %12.1f %14.1f %14.1f\n", threads,
                mv_build_ms, vp_build_ms, rn_build_ms, rn_query_ms,
                scan_query_ms);

    const double build_ms = mv_build_ms + vp_build_ms + rn_build_ms;
    const double query_ms = rn_query_ms + scan_query_ms;
    if (threads == 1) {
      base_build = build_ms;
      base_query = query_ms;
    }
    records.push_back(BenchRecord{
        "threads=" + std::to_string(threads),
        {{"threads", static_cast<double>(threads)},
         {"mv_build_ms", mv_build_ms},
         {"vp_build_ms", vp_build_ms},
         {"rn_build_ms", rn_build_ms},
         {"rn_query_ms", rn_query_ms},
         {"scan_query_ms", scan_query_ms},
         {"build_speedup", build_ms > 0.0 ? base_build / build_ms : 0.0},
         {"query_speedup", query_ms > 0.0 ? base_query / query_ms : 0.0},
         {"filter_computations",
          static_cast<double>(sink.distance_computations())}}});
  }

  const std::string path = "BENCH_parallel_scaling.json";
  if (!WriteBenchJson(path, "parallel_scaling", records)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace subseq::bench

int main() { return subseq::bench::Run(); }
