// Candidate generation — step 5's combinatorial core (Section 7).
//
// The filter (steps 3-4) yields SegmentHits: (query segment, database
// window) pairs at distance <= epsilon. This module turns hits into
// verification candidates:
//  * per-hit expansion ranges (the paper: for a hit (SSQ_{a,b}, SSX_c)
//    consider SQ starting in [a - l - lambda0, a] and ending in
//    [b, b + l + lambda0], SX starting in [c - l, c] and ending in
//    [c + l, c + 2l], where l = lambda/2);
//  * chains of consecutive matched windows (Figure 12's "consecutive
//    windows"): if windows i and i+1 of the same sequence both have hits,
//    a similar pair of length about (k+2) * l may span them, and the
//    Type II search starts from the longest chains.

#ifndef SUBSEQ_FRAME_CANDIDATES_H_
#define SUBSEQ_FRAME_CANDIDATES_H_

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "subseq/core/sequence.h"
#include "subseq/core/types.h"
#include "subseq/frame/windowing.h"

namespace subseq {

/// One filter result: a query segment within epsilon of a database window.
struct SegmentHit {
  Interval query_segment;
  ObjectId window = kInvalidId;
  double distance = 0.0;
};

/// The bounded region of (SQ, SX) pairs that may extend a hit or a chain
/// into a full match. All intervals are clamped to the owning sequences.
struct CandidateRegion {
  SeqId seq = kInvalidId;
  /// SQ candidates: begin in [q_begin_min, q_begin_max],
  /// end in [q_end_min, q_end_max].
  int32_t q_begin_min = 0;
  int32_t q_begin_max = 0;
  int32_t q_end_min = 0;
  int32_t q_end_max = 0;
  /// SX candidates, same encoding.
  int32_t x_begin_min = 0;
  int32_t x_begin_max = 0;
  int32_t x_end_min = 0;
  int32_t x_end_max = 0;
};

/// A maximal run of consecutive matched windows in one sequence.
struct WindowChain {
  SeqId seq = kInvalidId;
  /// Window indices [first, first + length) within the sequence.
  int32_t first_window_index = 0;
  int32_t length = 0;
  /// Union of the query segments that hit any window of the chain.
  Interval query_span;
};

/// The inclusive SX-end range [first, second] a step-5 enumerator scans
/// for one (SX begin, SQ length) inside a region — empty when
/// first > second. The single source of truth for this bound: the
/// verifiers (region and chain search), the budget's
/// RegionVerificationCount, and the speculative chain scan all share it,
/// so the budget charge can never drift from the work the verifiers
/// actually enumerate.
inline std::pair<int32_t, int32_t> SxEndRange(const CandidateRegion& region,
                                              int32_t xb, int32_t qlen,
                                              int32_t lambda,
                                              int32_t lambda0) {
  return {std::max({region.x_end_min, xb + lambda, xb + qlen - lambda0}),
          std::min(region.x_end_max, xb + qlen + lambda0)};
}

/// Groups hits into maximal chains of consecutive windows per sequence.
/// Chains are returned longest-first (the Type II verification order).
/// Deterministic: the chain order depends only on the set of hit windows,
/// not on the order of `hits`.
std::vector<WindowChain> BuildChains(std::span<const SegmentHit> hits,
                                     const WindowCatalog& catalog);

/// The paper's per-hit expansion region (Section 7, step 5).
/// `query_length` / sequence length clamp the ranges.
CandidateRegion ExpandHit(const SegmentHit& hit, const WindowCatalog& catalog,
                          int32_t lambda, int32_t lambda0,
                          int32_t query_length, int32_t sequence_length);

/// The exact number of (SQ, SX) pairs the step-5 verifier enumerates for
/// `region` — its verification cost — computed by arithmetic alone, no
/// distance work. Mirrors the verification loops exactly (qb, then
/// qe >= max(q_end_min, qb + lambda), then xb, then xe in
/// [max(x_end_min, xb + lambda, xb + qlen - lambda0),
///  min(x_end_max, xb + qlen + lambda0)]), so charging a region's count
/// against a budget before verifying it reproduces the serial
/// per-pair accounting exactly (tests/frame/candidates_test.cc
/// cross-checks against brute-force enumeration).
int64_t RegionVerificationCount(const CandidateRegion& region, int32_t lambda,
                                int32_t lambda0);

/// Expansion region for a whole chain: SX may start up to l before the
/// chain and end up to l after it; SQ ranges come from the chain's query
/// span expanded by l + lambda0 on both sides.
CandidateRegion ExpandChain(const WindowChain& chain,
                            const WindowCatalog& catalog, int32_t lambda,
                            int32_t lambda0, int32_t query_length,
                            int32_t sequence_length);

}  // namespace subseq

#endif  // SUBSEQ_FRAME_CANDIDATES_H_
