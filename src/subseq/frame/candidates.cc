#include "subseq/frame/candidates.h"

#include <algorithm>
#include <unordered_map>

#include "subseq/core/check.h"

namespace subseq {

std::vector<WindowChain> BuildChains(std::span<const SegmentHit> hits,
                                     const WindowCatalog& catalog) {
  // Collect, per window, the union of query segments that hit it.
  struct WindowInfo {
    int32_t q_min = 0;
    int32_t q_max = 0;
  };
  std::unordered_map<ObjectId, WindowInfo> by_window;
  for (const SegmentHit& hit : hits) {
    auto [it, inserted] = by_window.try_emplace(
        hit.window,
        WindowInfo{hit.query_segment.begin, hit.query_segment.end});
    if (!inserted) {
      it->second.q_min = std::min(it->second.q_min, hit.query_segment.begin);
      it->second.q_max = std::max(it->second.q_max, hit.query_segment.end);
    }
  }

  // Sort matched windows by (sequence, index) and sweep for runs.
  std::vector<ObjectId> windows;
  windows.reserve(by_window.size());
  for (const auto& [w, info] : by_window) {
    (void)info;
    windows.push_back(w);
  }
  std::sort(windows.begin(), windows.end());  // ids are (seq, index)-ordered

  std::vector<WindowChain> chains;
  size_t i = 0;
  while (i < windows.size()) {
    const WindowRef& start = catalog.at(windows[i]);
    WindowChain chain;
    chain.seq = start.seq;
    chain.first_window_index = start.index;
    chain.length = 1;
    const WindowInfo& first_info = by_window[windows[i]];
    chain.query_span = Interval{first_info.q_min, first_info.q_max};
    size_t j = i + 1;
    while (j < windows.size() &&
           catalog.AreConsecutive(windows[j - 1], windows[j])) {
      const WindowInfo& info = by_window[windows[j]];
      chain.query_span.begin = std::min(chain.query_span.begin, info.q_min);
      chain.query_span.end = std::max(chain.query_span.end, info.q_max);
      ++chain.length;
      ++j;
    }
    chains.push_back(chain);
    i = j;
  }

  std::sort(chains.begin(), chains.end(),
            [](const WindowChain& a, const WindowChain& b) {
              return a.length > b.length;
            });
  return chains;
}

namespace {

int32_t Clamp(int32_t v, int32_t lo, int32_t hi) {
  return std::max(lo, std::min(hi, v));
}

}  // namespace

int64_t RegionVerificationCount(const CandidateRegion& region, int32_t lambda,
                                int32_t lambda0) {
  // (xb, xe) pair count for one SQ length; depends on the region and
  // qlen only, so it is memoized across the (qb, qe) sweep below.
  const auto x_pairs_at = [&region, lambda, lambda0](int32_t qlen) {
    int64_t count = 0;
    for (int32_t xb = region.x_begin_min; xb <= region.x_begin_max; ++xb) {
      const auto [xe_lo, xe_hi] = SxEndRange(region, xb, qlen, lambda, lambda0);
      if (xe_hi >= xe_lo) count += xe_hi - xe_lo + 1;
    }
    return count;
  };

  const int32_t qlen_max = region.q_end_max - region.q_begin_min;
  if (qlen_max < lambda) return 0;
  std::vector<int64_t> memo(static_cast<size_t>(qlen_max - lambda + 1), -1);
  int64_t total = 0;
  for (int32_t qb = region.q_begin_min; qb <= region.q_begin_max; ++qb) {
    const int32_t qe_lo = std::max(region.q_end_min, qb + lambda);
    for (int32_t qe = qe_lo; qe <= region.q_end_max; ++qe) {
      int64_t& pairs = memo[static_cast<size_t>(qe - qb - lambda)];
      if (pairs < 0) pairs = x_pairs_at(qe - qb);
      total += pairs;
    }
  }
  return total;
}

CandidateRegion ExpandHit(const SegmentHit& hit, const WindowCatalog& catalog,
                          int32_t lambda, int32_t lambda0,
                          int32_t query_length, int32_t sequence_length) {
  const int32_t l = catalog.window_length();
  SUBSEQ_CHECK(l * 2 <= lambda || lambda == l * 2);
  const WindowRef& ref = catalog.at(hit.window);
  const int32_t a = hit.query_segment.begin;
  const int32_t b = hit.query_segment.end;  // exclusive
  const int32_t c = ref.span.begin;

  CandidateRegion region;
  region.seq = ref.seq;
  region.q_begin_min = Clamp(a - l - lambda0, 0, query_length);
  region.q_begin_max = Clamp(a, 0, query_length);
  region.q_end_min = Clamp(b, 0, query_length);
  region.q_end_max = Clamp(b + l + lambda0, 0, query_length);
  region.x_begin_min = Clamp(c - l, 0, sequence_length);
  region.x_begin_max = Clamp(c, 0, sequence_length);
  region.x_end_min = Clamp(c + l, 0, sequence_length);
  region.x_end_max = Clamp(c + 2 * l, 0, sequence_length);
  return region;
}

CandidateRegion ExpandChain(const WindowChain& chain,
                            const WindowCatalog& catalog, int32_t lambda,
                            int32_t lambda0, int32_t query_length,
                            int32_t sequence_length) {
  (void)lambda;
  const int32_t l = catalog.window_length();
  const int32_t chain_begin = chain.first_window_index * l;
  const int32_t chain_end = chain_begin + chain.length * l;

  // A similar pair may cover only part of the chain (the chain can be
  // longer than the optimal SX), so begin/end ranges span the whole chain:
  // SX must fully contain at least one chain window, hence it begins in
  // (chain_begin - l, chain_end - l] and ends in [chain_begin + l,
  // chain_end + l); SQ must contain a matched segment, all of which lie
  // inside the chain's query span, expanded by l + lambda0 per Section 7.
  CandidateRegion region;
  region.seq = chain.seq;
  region.q_begin_min = Clamp(chain.query_span.begin - l - lambda0, 0,
                             query_length);
  region.q_begin_max = Clamp(chain.query_span.end, 0, query_length);
  region.q_end_min = Clamp(chain.query_span.begin, 0, query_length);
  region.q_end_max = Clamp(chain.query_span.end + l + lambda0, 0,
                           query_length);
  region.x_begin_min = Clamp(chain_begin - l, 0, sequence_length);
  region.x_begin_max = Clamp(chain_end - l, 0, sequence_length);
  region.x_end_min = Clamp(chain_begin + l, 0, sequence_length);
  region.x_end_max = Clamp(chain_end + l, 0, sequence_length);
  return region;
}

}  // namespace subseq
