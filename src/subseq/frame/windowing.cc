#include "subseq/frame/windowing.h"

#include "subseq/core/check.h"

namespace subseq {

Result<WindowCatalog> WindowCatalog::Partition(
    const std::vector<int32_t>& sequence_lengths, int32_t window_length) {
  if (window_length < 1) {
    return Status::InvalidArgument("window_length must be >= 1");
  }
  WindowCatalog catalog;
  catalog.window_length_ = window_length;
  catalog.first_window_.reserve(sequence_lengths.size() + 1);
  for (size_t s = 0; s < sequence_lengths.size(); ++s) {
    const int32_t len = sequence_lengths[s];
    if (len < 0) {
      return Status::InvalidArgument("sequence length must be >= 0");
    }
    catalog.first_window_.push_back(
        static_cast<int32_t>(catalog.windows_.size()));
    const int32_t count = len / window_length;
    for (int32_t w = 0; w < count; ++w) {
      WindowRef ref;
      ref.seq = static_cast<SeqId>(s);
      ref.index = w;
      ref.span = Interval{w * window_length, (w + 1) * window_length};
      catalog.windows_.push_back(ref);
    }
  }
  catalog.first_window_.push_back(
      static_cast<int32_t>(catalog.windows_.size()));
  return catalog;
}

Status WindowCatalog::Append(int32_t sequence_length) {
  SUBSEQ_CHECK(window_length_ >= 1);  // only a partitioned catalog grows
  if (sequence_length < 0) {
    return Status::InvalidArgument("sequence length must be >= 0");
  }
  // first_window_ carries a trailing sentinel: the new sequence starts
  // exactly where the sentinel pointed, and a fresh sentinel follows the
  // appended windows.
  const SeqId seq = static_cast<SeqId>(num_sequences());
  const int32_t count = sequence_length / window_length_;
  for (int32_t w = 0; w < count; ++w) {
    WindowRef ref;
    ref.seq = seq;
    ref.index = w;
    ref.span = Interval{w * window_length_, (w + 1) * window_length_};
    windows_.push_back(ref);
  }
  first_window_.push_back(static_cast<int32_t>(windows_.size()));
  return Status::OK();
}

const WindowRef& WindowCatalog::at(ObjectId window) const {
  SUBSEQ_CHECK(window >= 0 && window < num_windows());
  return windows_[static_cast<size_t>(window)];
}

int32_t WindowCatalog::WindowsInSequence(SeqId seq) const {
  SUBSEQ_CHECK(seq >= 0 && seq < num_sequences());
  return first_window_[static_cast<size_t>(seq) + 1] -
         first_window_[static_cast<size_t>(seq)];
}

ObjectId WindowCatalog::WindowId(SeqId seq, int32_t index) const {
  SUBSEQ_CHECK(seq >= 0 && seq < num_sequences());
  SUBSEQ_CHECK(index >= 0 && index < WindowsInSequence(seq));
  return first_window_[static_cast<size_t>(seq)] + index;
}

bool WindowCatalog::AreConsecutive(ObjectId a, ObjectId b) const {
  const WindowRef& wa = at(a);
  const WindowRef& wb = at(b);
  return wa.seq == wb.seq && wb.index == wa.index + 1;
}

std::vector<Interval> ExtractQuerySegments(int32_t query_length,
                                           int32_t min_len, int32_t max_len) {
  SUBSEQ_CHECK(min_len >= 1);
  SUBSEQ_CHECK(max_len >= min_len);
  std::vector<Interval> segments;
  for (int32_t len = min_len; len <= max_len; ++len) {
    for (int32_t begin = 0; begin + len <= query_length; ++begin) {
      segments.push_back(Interval{begin, begin + len});
    }
  }
  return segments;
}

}  // namespace subseq
