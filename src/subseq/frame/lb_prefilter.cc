#include "subseq/frame/lb_prefilter.h"

#include <algorithm>
#include <utility>

#include "subseq/core/check.h"
#include "subseq/distance/dtw.h"
#include "subseq/distance/erp.h"
#include "subseq/distance/simd/kernels.h"

namespace subseq {

namespace {

// One window's features, accumulated element-sequentially in ascending
// order — the exact order LbKimBound / LbErpSumBound use on the query
// side, so feature arithmetic rounds identically on both sides.
void AccumulateWindowFeatures(std::span<const double> view, size_t i,
                              LbFeatureTable* out) {
  if (view.empty()) {
    out->first[i] = out->last[i] = out->min[i] = out->max[i] = 0.0;
    out->sum[i] = 0.0;
    return;
  }
  out->first[i] = view.front();
  out->last[i] = view.back();
  double mn = view[0];
  double mx = view[0];
  for (size_t j = 1; j < view.size(); ++j) {
    mn = std::min(mn, view[j]);
    mx = std::max(mx, view[j]);
  }
  out->min[i] = mn;
  out->max[i] = mx;
  double sum = 0.0;
  for (const double v : view) sum += v;
  out->sum[i] = sum;
}

void ResizeFeatures(size_t n, LbFeatureTable* out) {
  out->first.resize(n);
  out->last.resize(n);
  out->min.resize(n);
  out->max.resize(n);
  out->sum.resize(n);
}

}  // namespace

std::shared_ptr<const LbFeatureTable> BuildLbFeatureTable(
    const SequenceDatabase<double>& db, const WindowCatalog& catalog) {
  auto table = std::make_shared<LbFeatureTable>();
  const int32_t n = catalog.num_windows();
  ResizeFeatures(static_cast<size_t>(n), table.get());
  for (int32_t w = 0; w < n; ++w) {
    const WindowRef& ref = catalog.at(w);
    AccumulateWindowFeatures(db.at(ref.seq).Subsequence(ref.span),
                             static_cast<size_t>(w), table.get());
  }
  return table;
}

std::shared_ptr<const WindowLbPayloads> MakeWindowLbPayloads(
    const SequenceDatabase<double>& db, const WindowCatalog& catalog,
    std::span<const ObjectId> members) {
  auto payload = std::make_shared<WindowLbPayloads>();
  const size_t l = static_cast<size_t>(catalog.window_length());
  payload->count = static_cast<int32_t>(members.size());
  payload->window_length = catalog.window_length();
  payload->elems.resize(members.size() * l);
  ResizeFeatures(members.size(), &payload->features);
  for (size_t i = 0; i < members.size(); ++i) {
    const WindowRef& ref = catalog.at(members[i]);
    const std::span<const double> view = db.at(ref.seq).Subsequence(ref.span);
    SUBSEQ_CHECK(view.size() == l);
    std::copy(view.begin(), view.end(),
              payload->elems.begin() + static_cast<ptrdiff_t>(i * l));
    AccumulateWindowFeatures(view, i, &payload->features);
  }
  return payload;
}

std::shared_ptr<const LbCascade> LbCascade::MakeDtw(
    const SequenceDatabase<double>& db, const WindowCatalog& catalog,
    std::span<const double> segment,
    std::shared_ptr<const LbFeatureTable> features) {
  SUBSEQ_CHECK(static_cast<int32_t>(segment.size()) ==
               catalog.window_length());
  auto side = std::make_shared<QuerySide>();
  side->envelope = std::make_unique<LbKeoghEnvelope>(segment, /*band=*/-1);
  if (features != nullptr) {
    side->use_kim = true;
    side->kim = std::make_unique<LbKimBound>(segment);
  }
  auto cascade = std::shared_ptr<LbCascade>(new LbCascade());
  cascade->query_ = std::move(side);
  cascade->db_ = &db;
  cascade->catalog_ = &catalog;
  cascade->features_ = std::move(features);
  cascade->window_length_ = catalog.window_length();
  return cascade;
}

std::shared_ptr<const LbCascade> LbCascade::MakeErp(
    const SequenceDatabase<double>& db, const WindowCatalog& catalog,
    std::span<const double> segment,
    std::shared_ptr<const LbFeatureTable> features) {
  SUBSEQ_CHECK(static_cast<int32_t>(segment.size()) ==
               catalog.window_length());
  SUBSEQ_CHECK(features != nullptr);
  auto side = std::make_shared<QuerySide>();
  side->use_erp = true;
  side->erp = std::make_unique<LbErpSumBound>(segment);
  auto cascade = std::shared_ptr<LbCascade>(new LbCascade());
  cascade->query_ = std::move(side);
  cascade->db_ = &db;
  cascade->catalog_ = &catalog;
  cascade->features_ = std::move(features);
  cascade->window_length_ = catalog.window_length();
  return cascade;
}

const double* LbCascade::WindowBase(ObjectId id) const {
  if (payload_ != nullptr) {
    return payload_->elems.data() +
           static_cast<size_t>(id) * static_cast<size_t>(window_length_);
  }
  const WindowRef& ref = catalog_->at(id);
  return db_->at(ref.seq).Subsequence(ref.span).data();
}

const LbFeatureTable* LbCascade::Features() const {
  return payload_ != nullptr ? &payload_->features : features_.get();
}

void LbCascade::LowerBoundBlock(ObjectId begin, int32_t count,
                                double cutoff, double* out) const {
  LbBlockCounts ignored;
  LowerBoundBlockStaged(begin, count, cutoff, out, &ignored);
}

void LbCascade::LowerBoundBlockStaged(ObjectId begin, int32_t count,
                                      double cutoff, double* out,
                                      LbBlockCounts* counts) const {
  if (query_->use_erp) {
    query_->erp->LowerBoundMany(Features()->sum.data() + begin,
                                static_cast<size_t>(count), out);
    for (int32_t i = 0; i < count; ++i) {
      if (out[i] > cutoff) ++counts->erp_pruned;
    }
    return;
  }
  DtwBlockStaged(begin, count, cutoff, out, counts);
}

void LbCascade::DtwBlockStaged(ObjectId begin, int32_t count, double cutoff,
                               double* out, LbBlockCounts* counts) const {
  const LbKeoghEnvelope& env = *query_->envelope;
  const size_t stride = static_cast<size_t>(window_length_);

  if (!query_->use_kim) {
    // Envelope-only cascade (no feature table): the block decomposes
    // into memory-adjacent strided runs — one per sequence crossed in
    // the global catalog, exactly one against a payload.
    if (payload_ != nullptr) {
      env.LowerBoundMany(
          payload_->elems.data() + static_cast<size_t>(begin) * stride,
          stride, count, cutoff, out);
    } else {
      int32_t done = 0;
      while (done < count) {
        const WindowRef& ref = catalog_->at(begin + done);
        const int32_t run = std::min(
            count - done, catalog_->WindowsInSequence(ref.seq) - ref.index);
        const double* base = db_->at(ref.seq).Subsequence(ref.span).data();
        env.LowerBoundMany(base, stride, run, cutoff, out + done);
        done += run;
      }
    }
    for (int32_t i = 0; i < count; ++i) {
      if (out[i] > cutoff) ++counts->envelope_pruned;
    }
    return;
  }

  // Stage 1 — LB_Kim over the dense feature arrays: O(1) per candidate,
  // exact values (no abandon), so the survivor set is independent of
  // block grouping and dispatch level.
  const LbFeatureTable* f = Features();
  query_->kim->LowerBoundMany(f->first.data() + begin,
                              f->last.data() + begin, f->min.data() + begin,
                              f->max.data() + begin,
                              static_cast<size_t>(count), out);

  // Stage 2 — LB_Keogh over Kim survivors: gather survivor window
  // pointers four at a time through lb_keogh_block4 (its lanes are
  // independent, so scattered pointers bound identically to the strided
  // path), with LowerBoundAbandoning as the tail — the two produce
  // bitwise-identical values by the LowerBoundMany contract.
  const simd::Kernels& kernels = simd::GetKernels();
  const double* upper = env.upper().data();
  const double* lower = env.lower().data();
  const double* ptrs[4];
  int32_t idxs[4];
  int32_t pending = 0;
  const auto flush = [&] {
    if (pending == 4) {
      double out4[4];
      kernels.lb_keogh_block4(upper, lower, stride, ptrs[0], ptrs[1],
                              ptrs[2], ptrs[3], cutoff, out4);
      for (int32_t g = 0; g < 4; ++g) out[idxs[g]] = out4[g];
    } else {
      for (int32_t g = 0; g < pending; ++g) {
        out[idxs[g]] = env.LowerBoundAbandoning(
            std::span<const double>(ptrs[g], stride), cutoff);
      }
    }
    for (int32_t g = 0; g < pending; ++g) {
      if (out[idxs[g]] > cutoff) ++counts->envelope_pruned;
    }
    pending = 0;
  };
  for (int32_t i = 0; i < count; ++i) {
    if (out[i] > cutoff) {
      ++counts->kim_pruned;
      continue;
    }
    ptrs[pending] = WindowBase(begin + i);
    idxs[pending] = i;
    if (++pending == 4) flush();
  }
  flush();
}

std::shared_ptr<const QueryLowerBound> LbCascade::BindTo(
    std::shared_ptr<const LowerBoundPayloads> payloads) const {
  auto windows =
      std::dynamic_pointer_cast<const WindowLbPayloads>(payloads);
  if (windows == nullptr || windows->window_length != window_length_) {
    return nullptr;
  }
  auto clone = std::shared_ptr<LbCascade>(new LbCascade());
  clone->query_ = query_;
  clone->payload_ = std::move(windows);
  clone->window_length_ = window_length_;
  return clone;
}

int64_t LbCascade::AdjacentRuns(ObjectId begin, int32_t count) const {
  if (count <= 0) return 0;
  if (payload_ != nullptr) return 1;
  int64_t runs = 0;
  int32_t done = 0;
  while (done < count) {
    const WindowRef& ref = catalog_->at(begin + done);
    const int32_t run = std::min(
        count - done, catalog_->WindowsInSequence(ref.seq) - ref.index);
    ++runs;
    done += run;
  }
  return runs;
}

template <>
std::shared_ptr<const QueryLowerBound> MakeSegmentLowerBound<double>(
    const SequenceDatabase<double>& db, const WindowCatalog& catalog,
    const SequenceDistance<double>& dist, std::span<const double> segment,
    std::shared_ptr<const LbFeatureTable> features) {
  if (static_cast<int32_t>(segment.size()) != catalog.window_length()) {
    return nullptr;
  }
  if (const auto* dtw = dynamic_cast<const DtwDistance1D*>(&dist)) {
    if (dtw->band() >= 0) return nullptr;
    return LbCascade::MakeDtw(db, catalog, segment, std::move(features));
  }
  // ErpDistance1D's gap element is the constant 0.0 (ScalarGround), the
  // premise of the sum bound's admissibility proof.
  if (dynamic_cast<const ErpDistance1D*>(&dist) != nullptr &&
      features != nullptr) {
    return LbCascade::MakeErp(db, catalog, segment, std::move(features));
  }
  return nullptr;
}

}  // namespace subseq
