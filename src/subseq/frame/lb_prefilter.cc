#include "subseq/frame/lb_prefilter.h"

#include <algorithm>

#include "subseq/core/check.h"
#include "subseq/distance/dtw.h"

namespace subseq {

WindowLbKeogh::WindowLbKeogh(const SequenceDatabase<double>& db,
                             const WindowCatalog& catalog,
                             std::span<const double> segment)
    : db_(db), catalog_(catalog), envelope_(segment, /*band=*/-1) {
  SUBSEQ_CHECK(static_cast<int32_t>(segment.size()) ==
               catalog.window_length());
}

void WindowLbKeogh::LowerBoundBlock(ObjectId begin, int32_t count,
                                    double cutoff, double* out) const {
  const size_t stride = static_cast<size_t>(catalog_.window_length());
  int32_t done = 0;
  while (done < count) {
    const WindowRef& ref = catalog_.at(begin + done);
    // Maximal run of ids staying inside ref's sequence: their windows
    // are contiguous in memory with the window length as stride.
    const int32_t run = std::min(
        count - done, catalog_.WindowsInSequence(ref.seq) - ref.index);
    const double* base = db_.at(ref.seq).Subsequence(ref.span).data();
    envelope_.LowerBoundMany(base, stride, run, cutoff, out + done);
    done += run;
  }
}

template <>
std::shared_ptr<const QueryLowerBound> MakeSegmentLowerBound<double>(
    const SequenceDatabase<double>& db, const WindowCatalog& catalog,
    const SequenceDistance<double>& dist, std::span<const double> segment) {
  const auto* dtw = dynamic_cast<const DtwDistance1D*>(&dist);
  if (dtw == nullptr || dtw->band() >= 0) return nullptr;
  if (static_cast<int32_t>(segment.size()) != catalog.window_length()) {
    return nullptr;
  }
  return std::make_shared<WindowLbKeogh>(db, catalog, segment);
}

}  // namespace subseq
