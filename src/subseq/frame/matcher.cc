#include "subseq/frame/matcher.h"

#include <algorithm>
#include <array>
#include <set>
#include <string>

#include "subseq/core/check.h"
#include "subseq/exec/parallel_for.h"
#include "subseq/exec/stats_sink.h"
#include "subseq/metric/linear_scan.h"
#include "subseq/metric/sharded_index.h"

namespace subseq {

namespace {

// Dedup key for Type I results.
using MatchKey = std::array<int32_t, 5>;

MatchKey KeyOf(const SubsequenceMatch& m) {
  return MatchKey{m.seq, m.query.begin, m.query.end, m.db.begin, m.db.end};
}

// One backend of options.index_kind over the given oracle — the whole
// window catalog (monolithic) or one shard's view of it (the ShardedIndex
// factory path: every shard gets an independent index of the same kind
// with the same tunables).
Result<std::unique_ptr<RangeIndex>> BuildKindIndex(
    const DistanceOracle& oracle, const MatcherOptions& options) {
  switch (options.index_kind) {
    case IndexKind::kReferenceNet: {
      auto net = std::make_unique<ReferenceNet>(oracle, options.reference_net);
      for (ObjectId id = 0; id < oracle.size(); ++id) {
        SUBSEQ_RETURN_NOT_OK(net->Insert(id));
      }
      return std::unique_ptr<RangeIndex>(std::move(net));
    }
    case IndexKind::kCoverTree: {
      auto tree = std::make_unique<CoverTree>(oracle, options.cover_tree);
      for (ObjectId id = 0; id < oracle.size(); ++id) {
        SUBSEQ_RETURN_NOT_OK(tree->Insert(id));
      }
      return std::unique_ptr<RangeIndex>(std::move(tree));
    }
    case IndexKind::kMvIndex:
      return std::unique_ptr<RangeIndex>(
          std::make_unique<MvIndex>(oracle, options.mv_index));
    case IndexKind::kVpTree:
      return std::unique_ptr<RangeIndex>(
          std::make_unique<VpTree>(oracle, options.vp_tree));
    case IndexKind::kLinearScan:
      return std::unique_ptr<RangeIndex>(
          std::make_unique<LinearScan>(oracle.size()));
  }
  return Status::InvalidArgument("unknown IndexKind");
}

}  // namespace

template <typename T>
Result<std::unique_ptr<SubsequenceMatcher<T>>> SubsequenceMatcher<T>::Build(
    const SequenceDatabase<T>& db, const SequenceDistance<T>& dist,
    MatcherOptions options) {
  if (options.lambda < 2 || options.lambda % 2 != 0) {
    return Status::InvalidArgument("lambda must be even and >= 2");
  }
  const int32_t l = options.lambda / 2;
  if (options.lambda0 < 0 || options.lambda0 >= l) {
    return Status::InvalidArgument("lambda0 must satisfy 0 <= lambda0 < lambda/2");
  }
  if (!dist.is_consistent()) {
    return Status::InvalidArgument(
        "the window filter requires a consistent distance (Definition 1); " +
        std::string(dist.name()) + " does not advertise consistency");
  }
  if (options.index_kind != IndexKind::kLinearScan && !dist.is_metric()) {
    return Status::InvalidArgument(
        "metric indexes require a metric distance; use "
        "IndexKind::kLinearScan with " + std::string(dist.name()));
  }
  if (options.max_verifications <= 0) {
    return Status::InvalidArgument("max_verifications must be positive");
  }

  // One knob governs all parallel sections: the matcher's ExecContext is
  // pushed down into every index build — unless the caller explicitly
  // set that index's own exec (num_threads != 0), which wins.
  if (options.reference_net.exec.num_threads == 0) {
    options.reference_net.exec = options.exec;
  }
  if (options.mv_index.exec.num_threads == 0) {
    options.mv_index.exec = options.exec;
  }
  if (options.vp_tree.exec.num_threads == 0) {
    options.vp_tree.exec = options.exec;
  }

  auto matcher = std::unique_ptr<SubsequenceMatcher<T>>(
      new SubsequenceMatcher<T>(db, dist, options));
  auto catalog = WindowCatalog::PartitionDatabase(db, l);
  SUBSEQ_RETURN_NOT_OK(catalog.status());
  matcher->catalog_ =
      std::make_unique<WindowCatalog>(std::move(catalog).value());
  matcher->oracle_ =
      std::make_unique<WindowOracle<T>>(db, *matcher->catalog_, dist);

  // Step 2: one monolithic index, or — when the caller asked for
  // sharding — K contiguous per-shard indexes of the same kind behind a
  // ShardedIndex. The filter (step 4) and everything above it are
  // agnostic: both shapes implement RangeIndex with identical hit sets.
  const int32_t num_shards =
      options.exec.ResolvedShards(matcher->oracle_->size());
  if (num_shards > 1) {
    ShardedIndexOptions sharding;
    sharding.num_shards = num_shards;
    sharding.exec = options.exec;
    auto sharded = ShardedIndex::Build(
        *matcher->oracle_,
        [&options](const DistanceOracle& shard_oracle, int32_t) {
          return BuildKindIndex(shard_oracle, options);
        },
        sharding);
    SUBSEQ_RETURN_NOT_OK(sharded.status());
    matcher->index_ = std::move(sharded).ValueOrDie();
  } else {
    auto index = BuildKindIndex(*matcher->oracle_, options);
    SUBSEQ_RETURN_NOT_OK(index.status());
    matcher->index_ = std::move(index).ValueOrDie();
  }
  return matcher;
}

template <typename T>
SegmentQueryBatch SubsequenceMatcher<T>::MakeSegmentQueries(
    std::span<const T> query, MatchQueryStats* stats) const {
  const int32_t l = catalog_->window_length();
  SegmentQueryBatch batch;
  batch.segments = ExtractQuerySegments(static_cast<int32_t>(query.size()),
                                        l - options_.lambda0,
                                        l + options_.lambda0);
  batch.queries.reserve(batch.segments.size());
  for (const Interval& seg : batch.segments) {
    batch.queries.push_back(oracle_->SegmentQuery(
        query.subspan(static_cast<size_t>(seg.begin),
                      static_cast<size_t>(seg.length()))));
  }
  if (stats != nullptr) {
    stats->segments += static_cast<int64_t>(batch.segments.size());
  }
  return batch;
}

template <typename T>
std::vector<SegmentHit> SubsequenceMatcher<T>::MergeSegmentHits(
    std::span<const T> query, std::span<const Interval> segments,
    std::span<const std::span<const ObjectId>> batched,
    const ExecContext& exec, MatchQueryStats* stats) const {
  SUBSEQ_CHECK(batched.size() == segments.size());
  // Canonical merge: hits land in (segment order, ascending window id
  // within a segment). RangeQuery leaves per-query result order
  // unspecified — it varies with the backend's traversal and, for a
  // ShardedIndex, with the shard count — so step 5's input is normalized
  // here: any two exact indexes (monolithic or sharded, any backend)
  // that agree on the hit *set* feed the verifier the identical hit
  // sequence, making matches and downstream stats backend-independent.
  size_t total_hits = 0;
  for (const auto& ids : batched) total_hits += ids.size();
  std::vector<SegmentHit> hits;
  hits.reserve(total_hits);
  for (size_t i = 0; i < batched.size(); ++i) {
    const size_t segment_begin = hits.size();
    for (const ObjectId id : batched[i]) {
      hits.push_back(SegmentHit{segments[i], id, 0.0});
    }
    std::sort(hits.begin() + static_cast<int64_t>(segment_begin), hits.end(),
              [](const SegmentHit& a, const SegmentHit& b) {
                return a.window < b.window;
              });
  }
  // Second parallel pass: the exact segment-to-window distances step 5
  // orders its verification by. Slot-addressed writes keep it
  // deterministic.
  ParallelFor(exec, static_cast<int64_t>(hits.size()),
              [&](int64_t lo, int64_t hi, int32_t) {
                for (int64_t i = lo; i < hi; ++i) {
                  SegmentHit& hit = hits[static_cast<size_t>(i)];
                  const auto view = query.subspan(
                      static_cast<size_t>(hit.query_segment.begin),
                      static_cast<size_t>(hit.query_segment.length()));
                  hit.distance =
                      dist_.Compute(view, oracle_->WindowView(hit.window));
                }
              },
              /*grain=*/8);
  if (stats != nullptr) stats->hits += static_cast<int64_t>(hits.size());
  return hits;
}

template <typename T>
std::vector<SegmentHit> SubsequenceMatcher<T>::FilterSegments(
    std::span<const T> query, double epsilon, MatchQueryStats* stats) const {
  const SegmentQueryBatch batch = MakeSegmentQueries(query, stats);

  // Step 4 as ONE batch: a query function per segment, all issued to the
  // index together. The index fans the batch out over options_.exec and
  // accounts exactly through the sink.
  StatsSink sink;
  const std::vector<std::vector<ObjectId>> batched =
      index_->BatchRangeQuery(batch.queries, epsilon, options_.exec, &sink);
  if (stats != nullptr) {
    stats->filter_computations += sink.distance_computations();
  }
  const std::vector<std::span<const ObjectId>> views(batched.begin(),
                                                     batched.end());
  return MergeSegmentHits(query, batch.segments, views, options_.exec,
                          stats);
}

template <typename T>
template <typename OnMatch>
bool SubsequenceMatcher<T>::VerifyRegion(std::span<const T> query,
                                         const CandidateRegion& region,
                                         double epsilon, int64_t* budget,
                                         MatchQueryStats* stats,
                                         OnMatch&& on_match) const {
  const int32_t lambda = options_.lambda;
  const int32_t lambda0 = options_.lambda0;
  const Sequence<T>& seq = db_.at(region.seq);

  for (int32_t qb = region.q_begin_min; qb <= region.q_begin_max; ++qb) {
    const int32_t qe_lo = std::max(region.q_end_min, qb + lambda);
    for (int32_t qe = qe_lo; qe <= region.q_end_max; ++qe) {
      const int32_t qlen = qe - qb;
      const auto sq = query.subspan(static_cast<size_t>(qb),
                                    static_cast<size_t>(qlen));
      for (int32_t xb = region.x_begin_min; xb <= region.x_begin_max; ++xb) {
        const int32_t xe_lo =
            std::max({region.x_end_min, xb + lambda, xb + qlen - lambda0});
        const int32_t xe_hi = std::min(region.x_end_max, xb + qlen + lambda0);
        for (int32_t xe = xe_lo; xe <= xe_hi; ++xe) {
          if (--(*budget) < 0) return false;
          const auto sx = seq.Subsequence(Interval{xb, xe});
          if (stats != nullptr) ++stats->verifications;
          const double d = dist_.ComputeBounded(sq, sx, epsilon);
          if (d <= epsilon) {
            on_match(SubsequenceMatch{region.seq, Interval{qb, qe},
                                      Interval{xb, xe}, d});
          }
        }
      }
    }
  }
  return true;
}

template <typename T>
Result<std::vector<SubsequenceMatch>> SubsequenceMatcher<T>::RangeSearch(
    std::span<const T> query, double epsilon, MatchQueryStats* stats) const {
  const std::vector<SegmentHit> hits = FilterSegments(query, epsilon, stats);
  return RangeSearchFromHits(query, hits, epsilon, stats);
}

template <typename T>
Result<std::vector<SubsequenceMatch>> SubsequenceMatcher<T>::RangeSearchFromHits(
    std::span<const T> query, std::span<const SegmentHit> hits,
    double epsilon, MatchQueryStats* stats) const {
  std::vector<SubsequenceMatch> matches;
  std::set<MatchKey> seen;
  int64_t budget = options_.max_verifications;
  for (const SegmentHit& hit : hits) {
    const WindowRef& ref = catalog_->at(hit.window);
    const CandidateRegion region = ExpandHit(
        hit, *catalog_, options_.lambda, options_.lambda0,
        static_cast<int32_t>(query.size()), db_.at(ref.seq).size());
    const bool ok = VerifyRegion(
        query, region, epsilon, &budget, stats,
        [&](const SubsequenceMatch& m) {
          if (seen.insert(KeyOf(m)).second) matches.push_back(m);
        });
    if (!ok) {
      return Status::OutOfRange(
          "RangeSearch exceeded max_verifications; Type I enumerates all "
          "similar pairs — lower epsilon, raise max_verifications, or use "
          "LongestMatch/NearestMatch");
    }
  }
  return matches;
}

template <typename T>
Result<std::optional<SubsequenceMatch>> SubsequenceMatcher<T>::LongestMatch(
    std::span<const T> query, double epsilon, MatchQueryStats* stats) const {
  const std::vector<SegmentHit> hits = FilterSegments(query, epsilon, stats);
  return LongestMatchFromHits(query, hits, epsilon, stats);
}

template <typename T>
Result<std::optional<SubsequenceMatch>>
SubsequenceMatcher<T>::LongestMatchFromHits(std::span<const T> query,
                                            std::span<const SegmentHit> hits,
                                            double epsilon,
                                            MatchQueryStats* stats) const {
  const std::vector<WindowChain> chains = BuildChains(hits, *catalog_);
  if (stats != nullptr) stats->chains += static_cast<int64_t>(chains.size());

  const int32_t l = catalog_->window_length();
  const int32_t lambda = options_.lambda;
  const int32_t lambda0 = options_.lambda0;
  std::optional<SubsequenceMatch> best;
  int64_t budget = options_.max_verifications;

  for (const WindowChain& chain : chains) {
    // A chain of k windows cannot support |SX| >= (k + 2) * l (the match
    // would contain another window, which would be part of the chain), so
    // |SQ| < (k + 2) * l + lambda0. Chains are sorted longest-first.
    const int32_t chain_qlen_bound = (chain.length + 2) * l + lambda0;
    if (best.has_value() && best->query.length() >= chain_qlen_bound) break;

    const CandidateRegion region = ExpandChain(
        chain, *catalog_, lambda, lambda0,
        static_cast<int32_t>(query.size()), db_.at(chain.seq).size());
    const Sequence<T>& seq = db_.at(chain.seq);

    const int32_t qlen_max = region.q_end_max - region.q_begin_min;
    bool found_in_chain = false;
    for (int32_t qlen = qlen_max; qlen >= lambda && !found_in_chain;
         --qlen) {
      if (best.has_value() && qlen <= best->query.length()) break;
      for (int32_t qb = region.q_begin_min;
           qb <= region.q_begin_max && !found_in_chain; ++qb) {
        const int32_t qe = qb + qlen;
        if (qe < region.q_end_min || qe > region.q_end_max) continue;
        const auto sq = query.subspan(static_cast<size_t>(qb),
                                      static_cast<size_t>(qlen));
        for (int32_t xb = region.x_begin_min;
             xb <= region.x_begin_max && !found_in_chain; ++xb) {
          const int32_t xe_lo =
              std::max({region.x_end_min, xb + lambda, xb + qlen - lambda0});
          const int32_t xe_hi =
              std::min(region.x_end_max, xb + qlen + lambda0);
          for (int32_t xe = xe_lo; xe <= xe_hi; ++xe) {
            if (--budget < 0) {
              return Status::OutOfRange(
                  "LongestMatch exceeded max_verifications");
            }
            if (stats != nullptr) ++stats->verifications;
            const auto sx = seq.Subsequence(Interval{xb, xe});
            const double d = dist_.ComputeBounded(sq, sx, epsilon);
            if (d <= epsilon) {
              best = SubsequenceMatch{chain.seq, Interval{qb, qe},
                                      Interval{xb, xe}, d};
              found_in_chain = true;  // qlen descends: first hit is max here
              break;
            }
          }
        }
      }
    }
  }
  return best;
}

template <typename T>
Result<std::optional<SubsequenceMatch>> SubsequenceMatcher<T>::NearestMatch(
    std::span<const T> query, double epsilon_max, double epsilon_increment,
    MatchQueryStats* stats) const {
  if (epsilon_increment <= 0.0 || epsilon_max < 0.0) {
    return Status::InvalidArgument(
        "NearestMatch requires epsilon_max >= 0 and epsilon_increment > 0");
  }
  // A similar pair at distance d produces a segment hit at epsilon = d
  // (Lemma 2), so no hits at epsilon_max means no pair at all.
  if (FilterSegments(query, epsilon_max, stats).empty()) {
    return std::optional<SubsequenceMatch>();
  }

  // Binary-search the smallest epsilon that yields any segment hit.
  double lo = 0.0;
  double hi = epsilon_max;
  for (int iter = 0; iter < 48 && hi - lo > epsilon_increment / 2.0;
       ++iter) {
    const double mid = lo + (hi - lo) / 2.0;
    if (FilterSegments(query, mid, stats).empty()) {
      lo = mid;
    } else {
      hi = mid;
    }
  }

  // Grow epsilon until the Type II chain search verifies a pair. The
  // first success makes the current epsilon optimal up to the increment
  // (step 3 of the paper's Type III): a smaller epsilon was already
  // checked and produced nothing.
  for (double eps = hi; eps <= epsilon_max + epsilon_increment / 2.0;
       eps += epsilon_increment) {
    const double clamped = std::min(eps, epsilon_max);
    auto found = LongestMatch(query, clamped, stats);
    SUBSEQ_RETURN_NOT_OK(found.status());
    if (found.value().has_value()) return found;
    if (clamped >= epsilon_max) break;
  }
  return std::optional<SubsequenceMatch>();
}

template class SubsequenceMatcher<char>;
template class SubsequenceMatcher<double>;
template class SubsequenceMatcher<Point2d>;

}  // namespace subseq
