#include "subseq/frame/matcher.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <type_traits>
#include <unordered_map>

#include "subseq/core/check.h"
#include "subseq/exec/parallel_for.h"
#include "subseq/exec/stats_sink.h"
#include "subseq/exec/thread_pool.h"
#include "subseq/exec/verify_budget.h"
#include "subseq/frame/lb_prefilter.h"
#include "subseq/metric/linear_scan.h"
#include "subseq/metric/routed_index.h"
#include "subseq/metric/sharded_index.h"

namespace subseq {

namespace {

// Dedup key for Type I results.
using MatchKey = std::array<int32_t, 5>;

MatchKey KeyOf(const SubsequenceMatch& m) {
  return MatchKey{m.seq, m.query.begin, m.query.end, m.db.begin, m.db.end};
}

// One verification tuple of the Type II chain search, and the memo the
// speculative parallel phase fills for the serial replay.
struct PairKey {
  int32_t qb = 0;
  int32_t qe = 0;
  int32_t xb = 0;
  int32_t xe = 0;
  friend bool operator==(const PairKey& a, const PairKey& b) {
    return a.qb == b.qb && a.qe == b.qe && a.xb == b.xb && a.xe == b.xe;
  }
};

struct PairKeyHash {
  size_t operator()(const PairKey& k) const {
    uint64_t h = (static_cast<uint64_t>(static_cast<uint32_t>(k.qb)) << 32) |
                 static_cast<uint32_t>(k.qe);
    h ^= ((static_cast<uint64_t>(static_cast<uint32_t>(k.xb)) << 32) |
          static_cast<uint32_t>(k.xe)) +
         0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return std::hash<uint64_t>{}(h);
  }
};

// distance(SQ, SX) per tuple one speculative chain scan computed.
using ChainMemo = std::unordered_map<PairKey, double, PairKeyHash>;

// Hits per ComputeMany call in the per-hit distance fill. Big enough to
// feed the vertical 4-lane kernels several packs, small enough that the
// gathered view array stays in cache and flat parallelism is preserved.
constexpr size_t kHitFillBatch = 16;

// The batched per-hit distance fill shared by MergeSegmentHits and
// SegmentHitDistances: groups each segment's hits into blocks of at most
// kHitFillBatch, gathers the block's window views, and runs ONE
// SequenceDistance::ComputeMany per block — the batched entry point is
// bit-identical to a per-hit Compute loop by contract, so callers see
// the exact values the old flat loop produced. Blocks are parallelized
// flat at grain 1 (per-segment hit lists are often tiny) and every write
// is slot-addressed through `write(segment, hit_index, distance)`, so
// the fill is deterministic at any exec setting.
template <typename T, typename Write>
void FillHitDistancesBlocked(const SequenceDistance<T>& dist,
                             const WindowOracle<T>& oracle,
                             std::span<const std::span<const T>> segments,
                             std::span<const std::span<const ObjectId>> windows,
                             const ExecContext& exec, const Write& write) {
  struct Block {
    size_t s;      // segment index
    size_t begin;  // first hit of the block within windows[s]
    size_t count;  // <= kHitFillBatch
  };
  std::vector<Block> blocks;
  for (size_t s = 0; s < windows.size(); ++s) {
    for (size_t b = 0; b < windows[s].size(); b += kHitFillBatch) {
      blocks.push_back(
          Block{s, b, std::min(kHitFillBatch, windows[s].size() - b)});
    }
  }
  ParallelFor(exec, static_cast<int64_t>(blocks.size()),
              [&](int64_t lo, int64_t hi, int32_t) {
                std::vector<std::span<const T>> views;
                views.reserve(kHitFillBatch);
                double out[kHitFillBatch];
                for (int64_t bi = lo; bi < hi; ++bi) {
                  const Block& blk = blocks[static_cast<size_t>(bi)];
                  views.clear();
                  for (size_t i = 0; i < blk.count; ++i) {
                    views.push_back(
                        oracle.WindowView(windows[blk.s][blk.begin + i]));
                  }
                  dist.ComputeMany(segments[blk.s], views, out);
                  for (size_t i = 0; i < blk.count; ++i) {
                    write(blk.s, blk.begin + i, out[i]);
                  }
                }
              },
              /*grain=*/1);
}

// Marks every window whose sequence is retired. No-op (empty mask) when
// nothing is retired, so the common path stays branch-free.
template <typename T>
void ComputeTombstoneMask(const SequenceDatabase<T>& db,
                          const WindowCatalog& catalog,
                          std::vector<uint8_t>* mask, int64_t* count) {
  if (db.num_retired() == 0) return;
  mask->assign(static_cast<size_t>(catalog.num_windows()), 0);
  for (ObjectId w = 0; w < catalog.num_windows(); ++w) {
    if (db.is_retired(catalog.at(w).seq)) {
      (*mask)[static_cast<size_t>(w)] = 1;
      ++(*count);
    }
  }
}

// One backend of options.index_kind over the given oracle — the whole
// window catalog (monolithic) or one shard's view of it (the ShardedIndex
// factory path: every shard gets an independent index of the same kind
// with the same tunables).
Result<std::unique_ptr<RangeIndex>> BuildKindIndex(
    const DistanceOracle& oracle, const MatcherOptions& options) {
  switch (options.index_kind) {
    case IndexKind::kReferenceNet: {
      auto net = std::make_unique<ReferenceNet>(oracle, options.reference_net);
      for (ObjectId id = 0; id < oracle.size(); ++id) {
        SUBSEQ_RETURN_NOT_OK(net->Insert(id));
      }
      return std::unique_ptr<RangeIndex>(std::move(net));
    }
    case IndexKind::kCoverTree: {
      auto tree = std::make_unique<CoverTree>(oracle, options.cover_tree);
      for (ObjectId id = 0; id < oracle.size(); ++id) {
        SUBSEQ_RETURN_NOT_OK(tree->Insert(id));
      }
      return std::unique_ptr<RangeIndex>(std::move(tree));
    }
    case IndexKind::kMvIndex:
      return std::unique_ptr<RangeIndex>(
          std::make_unique<MvIndex>(oracle, options.mv_index));
    case IndexKind::kVpTree:
      return std::unique_ptr<RangeIndex>(
          std::make_unique<VpTree>(oracle, options.vp_tree));
    case IndexKind::kLinearScan:
      return std::unique_ptr<RangeIndex>(
          std::make_unique<LinearScan>(oracle.size()));
  }
  return Status::InvalidArgument("unknown IndexKind");
}

// Speculative half of the parallel Type II chain search: scans chains
// concurrently (chunked work-stealing — chain costs are skewed), sharing
// an atomic best-length bound so a chain that cannot produce a match at
// least as long as one already found anywhere is pruned across workers.
// Every distance computed lands in that chain's memo; the serial replay
// below consumes the memo so its walk pays hash lookups instead of
// dynamic-programming alignments. The bound prunes only *strictly
// shorter* scans — the serial tie-break (earliest chain wins at equal
// length) needs equal-length candidates from earlier chains intact.
// Speculation charges its own budget so pruning-starved edge cases (the
// replay raises budget-exceeded anyway) cannot spend unbounded work.
template <typename T>
void SpeculateChains(const SequenceDatabase<T>& db,
                     const SequenceDistance<T>& dist,
                     const WindowCatalog& catalog,
                     const MatcherOptions& options, std::span<const T> query,
                     std::span<const WindowChain> chains, double epsilon,
                     const ExecContext& verify_exec,
                     std::vector<ChainMemo>* memos) {
  const int32_t l = catalog.window_length();
  const int32_t lambda = options.lambda;
  const int32_t lambda0 = options.lambda0;
  std::atomic<int32_t> best_len{0};
  VerifyBudget speculation_budget(options.max_verifications);

  ParallelForDynamic(
      verify_exec, static_cast<int64_t>(chains.size()),
      [&](int64_t lo, int64_t hi, int32_t) {
        for (int64_t i = lo; i < hi; ++i) {
          if (speculation_budget.exceeded()) return;
          const WindowChain& chain = chains[static_cast<size_t>(i)];
          const int32_t chain_qlen_bound = (chain.length + 2) * l + lambda0;
          if (best_len.load(std::memory_order_relaxed) >= chain_qlen_bound) {
            continue;  // cannot reach the bound, let alone beat it
          }
          const CandidateRegion region = ExpandChain(
              chain, catalog, lambda, lambda0,
              static_cast<int32_t>(query.size()), db.at(chain.seq).size());
          const Sequence<T>& seq = db.at(chain.seq);
          ChainMemo& memo = (*memos)[static_cast<size_t>(i)];

          const int32_t qlen_max = region.q_end_max - region.q_begin_min;
          bool found_in_chain = false;
          for (int32_t qlen = qlen_max; qlen >= lambda && !found_in_chain;
               --qlen) {
            if (qlen < best_len.load(std::memory_order_relaxed)) break;
            for (int32_t qb = region.q_begin_min;
                 qb <= region.q_begin_max && !found_in_chain; ++qb) {
              const int32_t qe = qb + qlen;
              if (qe < region.q_end_min || qe > region.q_end_max) continue;
              const auto sq = query.subspan(static_cast<size_t>(qb),
                                            static_cast<size_t>(qlen));
              for (int32_t xb = region.x_begin_min;
                   xb <= region.x_begin_max && !found_in_chain; ++xb) {
                const auto [xe_lo, xe_hi] =
                    SxEndRange(region, xb, qlen, lambda, lambda0);
                for (int32_t xe = xe_lo; xe <= xe_hi; ++xe) {
                  if (!speculation_budget.Charge(1)) return;
                  const auto sx = seq.Subsequence(Interval{xb, xe});
                  const double d = dist.ComputeBounded(sq, sx, epsilon);
                  memo.emplace(PairKey{qb, qe, xb, xe}, d);
                  if (d <= epsilon) {
                    found_in_chain = true;
                    int32_t cur = best_len.load(std::memory_order_relaxed);
                    while (qlen > cur &&
                           !best_len.compare_exchange_weak(
                               cur, qlen, std::memory_order_relaxed)) {
                    }
                    break;
                  }
                }
              }
            }
          }
        }
      },
      /*grain=*/1);
}

// The longest-first chain search — the sequential reference algorithm.
// With empty `memos` this IS the serial Type II step 5; with memos from
// SpeculateChains it replays the identical control flow (same walk, same
// budget decrements, same stats, same tie-breaks), reusing memoized
// distances and computing only the tuples speculation never reached.
template <typename T>
Result<std::optional<SubsequenceMatch>> ChainSearchReplay(
    const SequenceDatabase<T>& db, const SequenceDistance<T>& dist,
    const WindowCatalog& catalog, const MatcherOptions& options,
    std::span<const T> query, std::span<const WindowChain> chains,
    double epsilon, std::span<const ChainMemo> memos,
    MatchQueryStats* stats) {
  const int32_t l = catalog.window_length();
  const int32_t lambda = options.lambda;
  const int32_t lambda0 = options.lambda0;
  std::optional<SubsequenceMatch> best;
  int64_t budget = options.max_verifications;

  for (size_t c = 0; c < chains.size(); ++c) {
    const WindowChain& chain = chains[c];
    // A chain of k windows cannot support |SX| >= (k + 2) * l (the match
    // would contain another window, which would be part of the chain), so
    // |SQ| < (k + 2) * l + lambda0. Chains are sorted longest-first.
    const int32_t chain_qlen_bound = (chain.length + 2) * l + lambda0;
    if (best.has_value() && best->query.length() >= chain_qlen_bound) break;

    const CandidateRegion region = ExpandChain(
        chain, catalog, lambda, lambda0, static_cast<int32_t>(query.size()),
        db.at(chain.seq).size());
    const Sequence<T>& seq = db.at(chain.seq);
    const ChainMemo* memo = c < memos.size() ? &memos[c] : nullptr;

    const int32_t qlen_max = region.q_end_max - region.q_begin_min;
    bool found_in_chain = false;
    for (int32_t qlen = qlen_max; qlen >= lambda && !found_in_chain;
         --qlen) {
      if (best.has_value() && qlen <= best->query.length()) break;
      for (int32_t qb = region.q_begin_min;
           qb <= region.q_begin_max && !found_in_chain; ++qb) {
        const int32_t qe = qb + qlen;
        if (qe < region.q_end_min || qe > region.q_end_max) continue;
        const auto sq = query.subspan(static_cast<size_t>(qb),
                                      static_cast<size_t>(qlen));
        for (int32_t xb = region.x_begin_min;
             xb <= region.x_begin_max && !found_in_chain; ++xb) {
          const auto [xe_lo, xe_hi] =
              SxEndRange(region, xb, qlen, lambda, lambda0);
          for (int32_t xe = xe_lo; xe <= xe_hi; ++xe) {
            if (--budget < 0) {
              return Status::OutOfRange(
                  "LongestMatch exceeded max_verifications");
            }
            if (stats != nullptr) ++stats->verifications;
            double d;
            ChainMemo::const_iterator it;
            if (memo != nullptr &&
                (it = memo->find(PairKey{qb, qe, xb, xe})) != memo->end()) {
              d = it->second;
            } else {
              const auto sx = seq.Subsequence(Interval{xb, xe});
              d = dist.ComputeBounded(sq, sx, epsilon);
            }
            if (d <= epsilon) {
              best = SubsequenceMatch{chain.seq, Interval{qb, qe},
                                      Interval{xb, xe}, d};
              found_in_chain = true;  // qlen descends: first hit is max here
              break;
            }
          }
        }
      }
    }
  }
  return best;
}

}  // namespace

Status MatcherOptions::Validate() const {
  if (lambda < 2 || lambda % 2 != 0) {
    return Status::InvalidArgument("lambda must be even and >= 2");
  }
  if (lambda0 < 0 || lambda0 >= lambda / 2) {
    return Status::InvalidArgument(
        "lambda0 must satisfy 0 <= lambda0 < lambda/2");
  }
  // Budget-exhaustion semantics are explicit at the boundary: step 5
  // charges every candidate pair against the budget *before* verifying
  // it, so max_verifications = 0 would fail every query whose filter
  // yields any candidate, and a negative cap is invalid rather than
  // "unlimited".
  if (max_verifications == 0) {
    return Status::InvalidArgument(
        "max_verifications = 0 rejects every query with step-5 candidates "
        "(each pair charges the budget before verification); use a "
        "positive cap");
  }
  if (max_verifications < 0) {
    return Status::InvalidArgument(
        "max_verifications must be positive; a negative budget is invalid "
        "rather than unlimited — use a large positive cap");
  }
  if (exec.num_threads < 0 || exec.num_verify_threads < 0 ||
      exec.num_shards < 0 || exec.routing_cells < 0) {
    return Status::InvalidArgument(
        "ExecContext knobs (num_threads, num_verify_threads, num_shards, "
        "routing_cells) must be >= 0; 0 resolves to the default");
  }
  if (exec.num_shards > 1 && exec.routing_cells > 1) {
    return Status::InvalidArgument(
        "num_shards and routing_cells are mutually exclusive partitioning "
        "strategies (contiguous id split vs pivot-routed cells); set one "
        "of them and leave the other at 0");
  }
  if (delta_merge_threshold < 1) {
    return Status::InvalidArgument(
        "delta_merge_threshold must be >= 1 (it is the delta window count "
        "at which the serving layer compacts delta into base; 1 compacts "
        "after every append)");
  }
  return Status::OK();
}

template <typename T>
Result<std::unique_ptr<SubsequenceMatcher<T>>> SubsequenceMatcher<T>::MakeShell(
    const SequenceDatabase<T>& db, const SequenceDistance<T>& dist,
    MatcherOptions options) {
  SUBSEQ_RETURN_NOT_OK(options.Validate());
  const int32_t l = options.lambda / 2;
  if (!dist.is_consistent()) {
    return Status::InvalidArgument(
        "the window filter requires a consistent distance (Definition 1); " +
        std::string(dist.name()) + " does not advertise consistency");
  }
  if (options.index_kind != IndexKind::kLinearScan && !dist.is_metric()) {
    return Status::InvalidArgument(
        "metric indexes require a metric distance; use "
        "IndexKind::kLinearScan with " + std::string(dist.name()));
  }
  // Routing prunes whole cells with the triangle inequality, so it is
  // unsound for any non-metric distance — even over a linear-scan cell
  // backend, which would otherwise accept one (consistency alone keeps
  // the window filter exact, but not the cell-skip rule).
  if (options.exec.routing_cells > 1 && !dist.is_metric()) {
    return Status::InvalidArgument(
        "routing_cells requires a metric distance (cell skipping is the "
        "triangle inequality); " + std::string(dist.name()) +
        " does not advertise metricity — disable routing for it");
  }

  // One knob governs all parallel sections: the matcher's ExecContext is
  // pushed down into every index build — unless the caller explicitly
  // set that index's own exec (num_threads != 0), which wins.
  if (options.reference_net.exec.num_threads == 0) {
    options.reference_net.exec = options.exec;
  }
  if (options.mv_index.exec.num_threads == 0) {
    options.mv_index.exec = options.exec;
  }
  if (options.vp_tree.exec.num_threads == 0) {
    options.vp_tree.exec = options.exec;
  }

  auto matcher = std::unique_ptr<SubsequenceMatcher<T>>(new SubsequenceMatcher<T>(
      std::make_shared<const SequenceDatabase<T>>(db), dist, options));
  auto catalog = WindowCatalog::PartitionDatabase(*matcher->db_, l);
  SUBSEQ_RETURN_NOT_OK(catalog.status());
  matcher->catalog_ =
      std::make_shared<const WindowCatalog>(std::move(catalog).value());
  matcher->oracle_ = std::make_shared<const WindowOracle<T>>(
      *matcher->db_, *matcher->catalog_, dist);
  if constexpr (std::is_same_v<T, double>) {
    if (matcher->options_.lb_prefilter) {
      matcher->lb_features_ =
          BuildLbFeatureTable(*matcher->db_, *matcher->catalog_);
    }
  }
  // Tombstone mask: a window is dead iff its sequence is retired.
  // Retired windows stay in the catalog AND the index (ids are never
  // renumbered); BatchFilterWindows subtracts them from every hit list.
  ComputeTombstoneMask(*matcher->db_, *matcher->catalog_,
                       &matcher->window_tombstones_,
                       &matcher->num_tombstoned_windows_);
  return matcher;
}

template <typename T>
void SubsequenceMatcher<T>::AdoptBase(
    std::unique_ptr<RangeIndex> index, std::unique_ptr<PrefixOracle> prefix,
    std::shared_ptr<const SnapshotFile> snapshot, int32_t base_windows) {
  SUBSEQ_CHECK(index != nullptr);
  SUBSEQ_CHECK(base_windows >= 0 &&
               base_windows <= catalog_->num_windows());
  auto base = std::make_shared<EpochBase<T>>();
  base->db = db_;
  base->catalog = catalog_;
  base->oracle = oracle_;
  base->prefix = std::move(prefix);
  base->index = std::move(index);
  base->snapshot = std::move(snapshot);
  base->num_windows = base_windows;
  base_ = std::move(base);
  const int32_t delta = catalog_->num_windows() - base_windows;
  if (delta > 0) {
    delta_index_ = std::make_unique<LinearScan>(delta);
  }
}

template <typename T>
Result<std::unique_ptr<SubsequenceMatcher<T>>> SubsequenceMatcher<T>::Build(
    const SequenceDatabase<T>& db, const SequenceDistance<T>& dist,
    MatcherOptions options) {
  auto shell = MakeShell(db, dist, std::move(options));
  SUBSEQ_RETURN_NOT_OK(shell.status());
  auto matcher = std::move(shell).ValueOrDie();
  // MakeShell resolved the exec pushdown; the index build below must see
  // the resolved options, not the caller's.
  const MatcherOptions& resolved = matcher->options_;

  // Step 2: one monolithic index; K contiguous per-shard indexes behind
  // a ShardedIndex; or — when the caller asked for routing — K
  // pivot-routed cells of the same kind behind a RoutedIndex. The filter
  // (step 4) and everything above it are agnostic: all three shapes
  // implement RangeIndex with identical hit sets.
  const int32_t num_shards =
      resolved.exec.ResolvedShards(matcher->oracle_->size());
  const int32_t num_cells =
      resolved.exec.ResolvedCells(matcher->oracle_->size());
  if (num_cells > 1) {
    RoutedIndexOptions routing;
    routing.num_cells = num_cells;
    routing.exec = resolved.exec;
    auto routed = RoutedIndex::Build(
        *matcher->oracle_,
        [&resolved](const DistanceOracle& cell_oracle, int32_t) {
          return BuildKindIndex(cell_oracle, resolved);
        },
        routing);
    SUBSEQ_RETURN_NOT_OK(routed.status());
    matcher->AdoptBase(std::move(routed).ValueOrDie(), nullptr, nullptr,
                       matcher->catalog_->num_windows());
  } else if (num_shards > 1) {
    ShardedIndexOptions sharding;
    sharding.num_shards = num_shards;
    sharding.exec = resolved.exec;
    auto sharded = ShardedIndex::Build(
        *matcher->oracle_,
        [&resolved](const DistanceOracle& shard_oracle, int32_t) {
          return BuildKindIndex(shard_oracle, resolved);
        },
        sharding);
    SUBSEQ_RETURN_NOT_OK(sharded.status());
    matcher->AdoptBase(std::move(sharded).ValueOrDie(), nullptr, nullptr,
                       matcher->catalog_->num_windows());
  } else {
    auto index = BuildKindIndex(*matcher->oracle_, resolved);
    SUBSEQ_RETURN_NOT_OK(index.status());
    matcher->AdoptBase(std::move(index).ValueOrDie(), nullptr, nullptr,
                       matcher->catalog_->num_windows());
  }
  return matcher;
}

template <typename T>
Result<std::unique_ptr<SubsequenceMatcher<T>>>
SubsequenceMatcher<T>::DeriveEpoch(SequenceDatabase<T> db) const {
  SUBSEQ_CHECK(base_ != nullptr);
  auto matcher = std::unique_ptr<SubsequenceMatcher<T>>(new SubsequenceMatcher<T>(
      std::make_shared<const SequenceDatabase<T>>(std::move(db)), dist_,
      options_));
  // Extend the current catalog in place rather than re-partitioning:
  // WindowCatalog::Append is documented equivalent, and keeps the
  // derivation O(new windows) for the catalog itself.
  WindowCatalog catalog = *catalog_;
  for (SeqId s = catalog.num_sequences(); s < matcher->db_->size(); ++s) {
    SUBSEQ_RETURN_NOT_OK(catalog.Append(matcher->db_->at(s).size()));
  }
  matcher->catalog_ = std::make_shared<const WindowCatalog>(std::move(catalog));
  matcher->oracle_ = std::make_shared<const WindowOracle<T>>(
      *matcher->db_, *matcher->catalog_, dist_);
  if constexpr (std::is_same_v<T, double>) {
    if (options_.lb_prefilter) {
      matcher->lb_features_ =
          BuildLbFeatureTable(*matcher->db_, *matcher->catalog_);
    }
  }
  matcher->base_ = base_;
  const int32_t delta =
      matcher->catalog_->num_windows() - base_->num_windows;
  if (delta > 0) {
    matcher->delta_index_ = std::make_unique<LinearScan>(delta);
  }
  ComputeTombstoneMask(*matcher->db_, *matcher->catalog_,
                       &matcher->window_tombstones_,
                       &matcher->num_tombstoned_windows_);
  return matcher;
}

template <typename T>
Result<std::unique_ptr<SubsequenceMatcher<T>>>
SubsequenceMatcher<T>::WithAppended(Sequence<T> seq) const {
  return DeriveEpoch(db_->Append(std::move(seq)));
}

template <typename T>
Result<std::unique_ptr<SubsequenceMatcher<T>>>
SubsequenceMatcher<T>::WithRetired(SeqId seq) const {
  if (seq < 0 || seq >= db_->size()) {
    return Status::OutOfRange(
        "WithRetired: sequence id " + std::to_string(seq) +
        " out of range [0, " + std::to_string(db_->size()) + ")");
  }
  if (db_->is_retired(seq)) {
    return Status::AlreadyExists("WithRetired: sequence id " +
                                 std::to_string(seq) +
                                 " is already retired");
  }
  return DeriveEpoch(db_->Retire(seq));
}

template <typename T>
Result<std::unique_ptr<SubsequenceMatcher<T>>> SubsequenceMatcher<T>::Compact()
    const {
  return Build(*db_, dist_, options_);
}

template <typename T>
SegmentQueryBatch SubsequenceMatcher<T>::MakeSegmentQueries(
    std::span<const T> query, MatchQueryStats* stats) const {
  const int32_t l = catalog_->window_length();
  SegmentQueryBatch batch;
  batch.segments = ExtractQuerySegments(static_cast<int32_t>(query.size()),
                                        l - options_.lambda0,
                                        l + options_.lambda0);
  batch.queries.reserve(batch.segments.size());
  for (const Interval& seg : batch.segments) {
    const std::span<const T> view = query.subspan(
        static_cast<size_t>(seg.begin), static_cast<size_t>(seg.length()));
    QueryDistanceFn fn = oracle_->SegmentQuery(view);
    if (options_.lb_prefilter) {
      // Attach the segment's admissible lower bound (if one exists for
      // this distance) as a prunable payload: backends that understand
      // it (LinearScan) skip exact evaluations the bound rules out,
      // everything else just calls the function. Results and billed
      // stats are identical either way (see MatcherOptions::lb_prefilter).
      std::shared_ptr<const QueryLowerBound> lb =
          MakeSegmentLowerBound(*db_, *catalog_, dist_, view, lb_features_);
      if (lb != nullptr) {
        PrunableQueryFn prunable;
        prunable.fn = std::move(fn);
        prunable.lower_bound = std::move(lb);
        batch.queries.push_back(QueryDistanceFn(std::move(prunable)));
        continue;
      }
    }
    batch.queries.push_back(std::move(fn));
  }
  if (stats != nullptr) {
    stats->segments += static_cast<int64_t>(batch.segments.size());
  }
  return batch;
}

template <typename T>
std::vector<SegmentHit> SubsequenceMatcher<T>::MergeSegmentHits(
    std::span<const T> query, std::span<const Interval> segments,
    std::span<const std::span<const ObjectId>> batched,
    const ExecContext& exec, MatchQueryStats* stats) const {
  return MergeSegmentHits(query, segments, batched,
                          std::span<const std::span<const double>>(), exec,
                          stats);
}

template <typename T>
std::vector<SegmentHit> SubsequenceMatcher<T>::MergeSegmentHits(
    std::span<const T> query, std::span<const Interval> segments,
    std::span<const std::span<const ObjectId>> batched,
    std::span<const std::span<const double>> batched_distances,
    const ExecContext& exec, MatchQueryStats* stats) const {
  SUBSEQ_CHECK(batched.size() == segments.size());
  // Empty batched_distances = compute the fill here; otherwise slot
  // [i][j] carries batched[i][j]'s exact distance and the fill is
  // skipped (the serving layer computes it once per unique segment).
  const bool precomputed = !batched_distances.empty();
  if (precomputed) SUBSEQ_CHECK(batched_distances.size() == batched.size());
  // Canonical merge: hits land in (segment order, ascending window id
  // within a segment). RangeQuery leaves per-query result order
  // unspecified — it varies with the backend's traversal and, for a
  // ShardedIndex, with the shard count — so step 5's input is normalized
  // here: any two exact indexes (monolithic or sharded, any backend)
  // that agree on the hit *set* feed the verifier the identical hit
  // sequence, making matches and downstream stats backend-independent.
  size_t total_hits = 0;
  for (const auto& ids : batched) total_hits += ids.size();
  std::vector<SegmentHit> hits;
  hits.reserve(total_hits);
  std::vector<size_t> bounds(batched.size() + 1, 0);
  for (size_t i = 0; i < batched.size(); ++i) {
    const size_t segment_begin = hits.size();
    if (precomputed) {
      SUBSEQ_CHECK(batched_distances[i].size() == batched[i].size());
    }
    for (size_t j = 0; j < batched[i].size(); ++j) {
      hits.push_back(SegmentHit{segments[i], batched[i][j],
                                precomputed ? batched_distances[i][j] : 0.0});
    }
    // The sort moves each hit's distance with it, so precomputed values
    // may arrive in any order as long as they align with their ids.
    std::sort(hits.begin() + static_cast<int64_t>(segment_begin), hits.end(),
              [](const SegmentHit& a, const SegmentHit& b) {
                return a.window < b.window;
              });
    bounds[i + 1] = hits.size();
  }
  if (!precomputed) {
    // Second parallel pass: the exact segment-to-window distances step 5
    // orders its verification by. The canonically-sorted window ids are
    // copied into one contiguous array per segment so the blocked
    // ComputeMany helper can batch them; writes land by flat slot, so
    // the pass stays deterministic and bit-identical to a per-hit
    // Compute loop (the ComputeMany contract).
    std::vector<ObjectId> ids(hits.size());
    for (size_t f = 0; f < hits.size(); ++f) ids[f] = hits[f].window;
    std::vector<std::span<const T>> segment_views(segments.size());
    std::vector<std::span<const ObjectId>> id_views(segments.size());
    for (size_t s = 0; s < segments.size(); ++s) {
      segment_views[s] =
          query.subspan(static_cast<size_t>(segments[s].begin),
                        static_cast<size_t>(segments[s].length()));
      id_views[s] = std::span<const ObjectId>(ids.data() + bounds[s],
                                              bounds[s + 1] - bounds[s]);
    }
    FillHitDistancesBlocked<T>(dist_, *oracle_, segment_views, id_views, exec,
                               [&](size_t s, size_t i, double d) {
                                 hits[bounds[s] + i].distance = d;
                               });
  }
  if (stats != nullptr) stats->hits += static_cast<int64_t>(hits.size());
  return hits;
}

template <typename T>
std::vector<std::vector<double>> SubsequenceMatcher<T>::SegmentHitDistances(
    std::span<const std::span<const T>> segments,
    std::span<const std::span<const ObjectId>> windows,
    const ExecContext& exec) const {
  SUBSEQ_CHECK(segments.size() == windows.size());
  // The blocked ComputeMany helper flattens every (segment, hit-block)
  // pair into one parallel section — same flat coverage as before, with
  // the distance work batched through the vertical SIMD kernels and
  // values bit-identical to a per-hit Compute loop.
  std::vector<std::vector<double>> distances(segments.size());
  for (size_t s = 0; s < segments.size(); ++s) {
    distances[s].resize(windows[s].size());
  }
  FillHitDistancesBlocked<T>(dist_, *oracle_, segments, windows, exec,
                             [&](size_t s, size_t i, double d) {
                               distances[s][i] = d;
                             });
  return distances;
}

template <typename T>
QueryDistanceFn SubsequenceMatcher<T>::DeltaQuery(const QueryDistanceFn& query,
                                                  int32_t offset) {
  // Preserve prunability across the delta remap exactly as the sharded
  // index does for shards: the delta scan sees delta-local ids, so the
  // lower-bound offset advances by the delta's base while the exact
  // function keeps translating ids.
  if (const PrunableQueryFn* prunable = GetPrunable(query)) {
    PrunableQueryFn local;
    local.fn = [&query, offset](ObjectId id) { return query(id + offset); };
    local.lower_bound = prunable->lower_bound;
    local.lb_offset = prunable->lb_offset + offset;
    return QueryDistanceFn(std::move(local));
  }
  return [&query, offset](ObjectId local) { return query(local + offset); };
}

template <typename T>
std::vector<std::vector<ObjectId>> SubsequenceMatcher<T>::BatchFilterWindows(
    std::span<const QueryDistanceFn> queries, double epsilon,
    const ExecContext& exec, StatsSink* sink, QueryStats* per_query) const {
  // Base epoch first: the expensive index answers windows [0, base).
  std::vector<std::vector<ObjectId>> results =
      base_->index->BatchRangeQuery(queries, epsilon, exec, sink, per_query);

  // Delta scan: windows appended since the base epoch live in a small
  // LinearScan with local ids; hits translate back by the base offset
  // and append after the base hits (callers canonicalize order per
  // segment). Every delta window is billed — the scan is responsible
  // for all its candidates — and counted in delta_windows_probed.
  if (delta_index_ != nullptr) {
    const int32_t offset = base_->num_windows;
    const int64_t delta = delta_index_->size();
    std::vector<QueryDistanceFn> local;
    local.reserve(queries.size());
    for (const QueryDistanceFn& query : queries) {
      local.push_back(DeltaQuery(query, offset));
    }
    std::vector<QueryStats> delta_split(
        per_query != nullptr ? queries.size() : 0);
    const std::vector<std::vector<ObjectId>> delta_results =
        delta_index_->BatchRangeQuery(
            local, epsilon, exec, sink,
            per_query != nullptr ? delta_split.data() : nullptr);
    if (sink != nullptr) {
      sink->AddDeltaWindowsProbed(static_cast<int64_t>(queries.size()) *
                                  delta);
    }
    for (size_t q = 0; q < queries.size(); ++q) {
      std::vector<ObjectId>& merged = results[q];
      merged.reserve(merged.size() + delta_results[q].size());
      for (const ObjectId id : delta_results[q]) merged.push_back(id + offset);
      if (per_query != nullptr) {
        per_query[q].distance_computations +=
            delta_split[q].distance_computations;
        per_query[q].result_count += delta_split[q].result_count;
        per_query[q].lower_bound_pruned += delta_split[q].lower_bound_pruned;
        per_query[q].lb_kim_pruned += delta_split[q].lb_kim_pruned;
        per_query[q].lb_erp_pruned += delta_split[q].lb_erp_pruned;
        per_query[q].delta_windows_probed += delta;
      }
    }
  }

  // Tombstone mask: drop hits whose window belongs to a retired
  // sequence so no masked window ever reaches step 5. Masking is
  // observable (tombstones_masked) but unbilled, like routed cell
  // skips; result_count tracks the returned (masked) size so the
  // per-query slot contract stays exact.
  if (num_tombstoned_windows_ > 0) {
    int64_t masked_total = 0;
    for (size_t q = 0; q < results.size(); ++q) {
      std::vector<ObjectId>& hits = results[q];
      const size_t before = hits.size();
      hits.erase(std::remove_if(hits.begin(), hits.end(),
                                [this](ObjectId w) {
                                  return window_tombstones_
                                             [static_cast<size_t>(w)] != 0;
                                }),
                 hits.end());
      const int64_t masked = static_cast<int64_t>(before - hits.size());
      masked_total += masked;
      if (per_query != nullptr && masked > 0) {
        per_query[q].result_count -= masked;
        per_query[q].tombstones_masked += masked;
      }
    }
    if (sink != nullptr && masked_total > 0) {
      sink->AddResults(-masked_total);
      sink->AddTombstonesMasked(masked_total);
    }
  }
  return results;
}

template <typename T>
std::vector<SegmentHit> SubsequenceMatcher<T>::FilterSegments(
    std::span<const T> query, double epsilon, MatchQueryStats* stats) const {
  const SegmentQueryBatch batch = MakeSegmentQueries(query, stats);

  // Step 4 as ONE batch: a query function per segment, all issued to the
  // base index + delta together. The filter fans the batch out over
  // options_.exec and accounts exactly through the sink.
  StatsSink sink;
  const std::vector<std::vector<ObjectId>> batched =
      BatchFilterWindows(batch.queries, epsilon, options_.exec, &sink);
  if (stats != nullptr) {
    stats->filter_computations += sink.distance_computations();
  }
  const std::vector<std::span<const ObjectId>> views(batched.begin(),
                                                     batched.end());
  return MergeSegmentHits(query, batch.segments, views, options_.exec,
                          stats);
}

template <typename T>
template <typename OnMatch>
bool SubsequenceMatcher<T>::VerifyRegion(std::span<const T> query,
                                         const CandidateRegion& region,
                                         double epsilon, int64_t* budget,
                                         MatchQueryStats* stats,
                                         OnMatch&& on_match) const {
  const int32_t lambda = options_.lambda;
  const int32_t lambda0 = options_.lambda0;
  const Sequence<T>& seq = db_->at(region.seq);

  for (int32_t qb = region.q_begin_min; qb <= region.q_begin_max; ++qb) {
    const int32_t qe_lo = std::max(region.q_end_min, qb + lambda);
    for (int32_t qe = qe_lo; qe <= region.q_end_max; ++qe) {
      const int32_t qlen = qe - qb;
      const auto sq = query.subspan(static_cast<size_t>(qb),
                                    static_cast<size_t>(qlen));
      for (int32_t xb = region.x_begin_min; xb <= region.x_begin_max; ++xb) {
        const auto [xe_lo, xe_hi] =
            SxEndRange(region, xb, qlen, lambda, lambda0);
        for (int32_t xe = xe_lo; xe <= xe_hi; ++xe) {
          if (--(*budget) < 0) return false;
          const auto sx = seq.Subsequence(Interval{xb, xe});
          if (stats != nullptr) ++stats->verifications;
          const double d = dist_.ComputeBounded(sq, sx, epsilon);
          if (d <= epsilon) {
            on_match(SubsequenceMatch{region.seq, Interval{qb, qe},
                                      Interval{xb, xe}, d});
          }
        }
      }
    }
  }
  return true;
}

template <typename T>
Result<std::vector<SubsequenceMatch>> SubsequenceMatcher<T>::RangeSearch(
    std::span<const T> query, double epsilon, MatchQueryStats* stats) const {
  const std::vector<SegmentHit> hits = FilterSegments(query, epsilon, stats);
  return RangeSearchFromHits(query, hits, epsilon, stats);
}

template <typename T>
Result<std::vector<SubsequenceMatch>> SubsequenceMatcher<T>::RangeSearchFromHits(
    std::span<const T> query, std::span<const SegmentHit> hits,
    double epsilon, MatchQueryStats* stats) const {
  // Expansion first: region i extends hits[i], inheriting the canonical
  // hit order — the order the serial walk verifies in and the parallel
  // merge below restores.
  std::vector<CandidateRegion> regions;
  regions.reserve(hits.size());
  for (const SegmentHit& hit : hits) {
    const WindowRef& ref = catalog_->at(hit.window);
    regions.push_back(ExpandHit(hit, *catalog_, options_.lambda,
                                options_.lambda0,
                                static_cast<int32_t>(query.size()),
                                db_->at(ref.seq).size()));
  }

  // Exact budget accounting before any verification: every region fully
  // charges its enumeration count (RegionVerificationCount mirrors the
  // verify loops pair for pair), so exhaustion here <=> the serial walk
  // would run out of budget mid-stream. The serial path performs exactly
  // max_verifications distance computations before raising; reproducing
  // that count without burning the work keeps the observables — status
  // and stats — identical while the error path costs nothing.
  VerifyBudget budget(options_.max_verifications);
  int64_t total_cost = 0;
  for (const CandidateRegion& region : regions) {
    const int64_t cost =
        RegionVerificationCount(region, options_.lambda, options_.lambda0);
    total_cost += cost;
    if (!budget.Charge(cost)) {
      if (stats != nullptr) {
        stats->verifications += options_.max_verifications;
      }
      return Status::OutOfRange(
          "RangeSearch exceeded max_verifications; Type I enumerates all "
          "similar pairs — lower epsilon, raise max_verifications, or use "
          "LongestMatch/NearestMatch");
    }
  }

  std::vector<SubsequenceMatch> matches;
  std::set<MatchKey> seen;
  // The budget is fully charged: no verify path below can exhaust it.
  int64_t charged = std::numeric_limits<int64_t>::max();

  const int32_t verify_threads = options_.exec.ResolvedVerifyThreads();
  if (verify_threads <= 1 || regions.size() <= 1) {
    // The sequential reference path.
    for (const CandidateRegion& region : regions) {
      VerifyRegion(query, region, epsilon, &charged, stats,
                   [&](const SubsequenceMatch& m) {
                     if (seen.insert(KeyOf(m)).second) matches.push_back(m);
                   });
    }
    return matches;
  }

  // Parallel path: regions verify concurrently under chunked
  // work-stealing (per-region costs are skewed); matches land in
  // per-region slots and per-chunk stats roll up through the atomic
  // StatsSink. The merge below walks regions in order and, within a
  // region, keeps the verifier's ascending (SQ, SX) emission order — the
  // exact serial match order — so dedup keeps first occurrences
  // identically and the result is element-wise equal at any thread
  // count.
  ExecContext verify_exec = options_.exec;
  verify_exec.num_threads = verify_threads;
  std::vector<std::vector<SubsequenceMatch>> region_matches(regions.size());
  StatsSink verify_sink;
  ParallelForDynamic(
      verify_exec, static_cast<int64_t>(regions.size()),
      [&](int64_t lo, int64_t hi, int32_t) {
        MatchQueryStats local;
        int64_t local_charged = std::numeric_limits<int64_t>::max();
        for (int64_t i = lo; i < hi; ++i) {
          VerifyRegion(query, regions[static_cast<size_t>(i)], epsilon,
                       &local_charged, &local,
                       [&](const SubsequenceMatch& m) {
                         region_matches[static_cast<size_t>(i)].push_back(m);
                       });
        }
        verify_sink.AddDistanceComputations(local.verifications);
      },
      /*grain=*/1);
  // Self-check of the exact accounting: the work done equals the cost
  // charged up front.
  SUBSEQ_CHECK(verify_sink.distance_computations() == total_cost);
  if (stats != nullptr) stats->verifications += total_cost;

  for (const std::vector<SubsequenceMatch>& in_region : region_matches) {
    for (const SubsequenceMatch& m : in_region) {
      if (seen.insert(KeyOf(m)).second) matches.push_back(m);
    }
  }
  return matches;
}

template <typename T>
Result<std::optional<SubsequenceMatch>> SubsequenceMatcher<T>::LongestMatch(
    std::span<const T> query, double epsilon, MatchQueryStats* stats) const {
  const std::vector<SegmentHit> hits = FilterSegments(query, epsilon, stats);
  return LongestMatchFromHits(query, hits, epsilon, stats);
}

template <typename T>
Result<std::optional<SubsequenceMatch>>
SubsequenceMatcher<T>::LongestMatchFromHits(std::span<const T> query,
                                            std::span<const SegmentHit> hits,
                                            double epsilon,
                                            MatchQueryStats* stats) const {
  const std::vector<WindowChain> chains = BuildChains(hits, *catalog_);
  if (stats != nullptr) stats->chains += static_cast<int64_t>(chains.size());

  // The longest-first search carries a best-so-far bound across chains,
  // so its exact control flow is a sequential fold. Parallelism comes
  // from *speculation*: workers scan chains concurrently under a shared
  // atomic best-length bound and memoize every distance; the serial
  // replay then walks the reference algorithm over the memo, so the
  // match, the stats, and budget-exceeded behavior are bit-identical to
  // the sequential path while the alignments were computed in parallel.
  std::vector<ChainMemo> memos;
  const int32_t verify_threads = options_.exec.ResolvedVerifyThreads();
  if (verify_threads > 1 && chains.size() > 1) {
    ExecContext verify_exec = options_.exec;
    verify_exec.num_threads = verify_threads;
    memos.resize(chains.size());
    SpeculateChains(*db_, dist_, *catalog_, options_, query,
                    std::span<const WindowChain>(chains), epsilon,
                    verify_exec, &memos);
  }
  return ChainSearchReplay(*db_, dist_, *catalog_, options_, query,
                           std::span<const WindowChain>(chains), epsilon,
                           std::span<const ChainMemo>(memos), stats);
}

namespace {

// Adds a filter call's accounting (steps 3-4 fields only) into `out`.
inline void AddFilterStats(MatchQueryStats* out, const MatchQueryStats& in) {
  if (out == nullptr) return;
  out->segments += in.segments;
  out->filter_computations += in.filter_computations;
  out->hits += in.hits;
}

// One speculative FilterSegments round, issued to the shared pool so it
// overlaps the current round's verification. The owner and the pool task
// race on `claimed`: whichever side claims first runs the filter, so the
// owner never blocks on a task that is still queued (it runs the filter
// inline instead) — only on one that is actively executing, which always
// finishes. Take() merges the probe's accounting into the query stats;
// Discard() drops it, because the serial schedule never ran that probe.
template <typename T>
class NextProbe {
 public:
  NextProbe() = default;
  NextProbe(const NextProbe&) = delete;
  NextProbe& operator=(const NextProbe&) = delete;
  ~NextProbe() { Discard(); }

  void Launch(const SubsequenceMatcher<T>& matcher, std::span<const T> query,
              double epsilon) {
    matcher_ = &matcher;
    query_ = query;
    epsilon_ = epsilon;
    state_ = std::make_shared<State>();
    // The task captures the matcher and query by reference-like views;
    // both outlive it because Take/Discard never return while the task
    // is running.
    ThreadPool::Shared().Submit(
        [state = state_, &matcher, query, epsilon] {
          if (state->claimed.exchange(true, std::memory_order_acq_rel)) {
            return;  // the owner took (or discarded) the probe first
          }
          MatchQueryStats probe_stats;
          std::vector<SegmentHit> hits =
              matcher.FilterSegments(query, epsilon, &probe_stats);
          std::lock_guard<std::mutex> lock(state->mu);
          state->hits = std::move(hits);
          state->stats = probe_stats;
          state->done = true;
          state->cv.notify_all();
        });
  }

  bool launched() const { return state_ != nullptr; }

  /// The speculative hits, with the probe's accounting merged into
  /// `stats` — exactly what a non-speculative FilterSegments at the same
  /// epsilon would have produced and charged.
  std::vector<SegmentHit> Take(MatchQueryStats* stats) {
    SUBSEQ_CHECK(state_ != nullptr);
    std::vector<SegmentHit> hits;
    if (state_->claimed.exchange(true, std::memory_order_acq_rel)) {
      std::unique_lock<std::mutex> lock(state_->mu);
      state_->cv.wait(lock, [this] { return state_->done; });
      AddFilterStats(stats, state_->stats);
      hits = std::move(state_->hits);
    } else {
      // The pool never got to it; the filter runs here, on schedule.
      hits = matcher_->FilterSegments(query_, epsilon_, stats);
    }
    state_.reset();
    return hits;
  }

  /// Drops the probe: unstarted tasks are cancelled via the claim;
  /// a running task is waited out (it holds views into the query) and
  /// its result and accounting are discarded.
  void Discard() {
    if (state_ == nullptr) return;
    if (state_->claimed.exchange(true, std::memory_order_acq_rel)) {
      std::unique_lock<std::mutex> lock(state_->mu);
      state_->cv.wait(lock, [this] { return state_->done; });
    }
    state_.reset();
  }

 private:
  struct State {
    std::atomic<bool> claimed{false};
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::vector<SegmentHit> hits;
    MatchQueryStats stats;
  };

  const SubsequenceMatcher<T>* matcher_ = nullptr;
  std::span<const T> query_;
  double epsilon_ = 0.0;
  std::shared_ptr<State> state_;
};

}  // namespace

template <typename T>
Result<std::optional<SubsequenceMatch>> SubsequenceMatcher<T>::NearestMatch(
    std::span<const T> query, double epsilon_max, double epsilon_increment,
    MatchQueryStats* stats) const {
  if (epsilon_increment <= 0.0 || epsilon_max < 0.0) {
    return Status::InvalidArgument(
        "NearestMatch requires epsilon_max >= 0 and epsilon_increment > 0");
  }
  // A similar pair at distance d produces a segment hit at epsilon = d
  // (Lemma 2), so no hits at epsilon_max means no pair at all. The hit
  // set is kept: it IS the first binary-search probe (the probe at
  // hi = epsilon_max), and the growth loop below reuses the cached hit
  // set of whatever epsilon it verifies at instead of re-running the
  // filter.
  std::vector<SegmentHit> hits = FilterSegments(query, epsilon_max, stats);
  if (hits.empty()) {
    return std::optional<SubsequenceMatch>();
  }
  double hits_epsilon = epsilon_max;

  // Binary-search the smallest epsilon that yields any segment hit.
  // `hits` tracks the latest non-empty probe — the probe at `hi`.
  double lo = 0.0;
  double hi = epsilon_max;
  for (int iter = 0; iter < 48 && hi - lo > epsilon_increment / 2.0;
       ++iter) {
    const double mid = lo + (hi - lo) / 2.0;
    std::vector<SegmentHit> mid_hits = FilterSegments(query, mid, stats);
    if (mid_hits.empty()) {
      lo = mid;
    } else {
      hi = mid;
      hits = std::move(mid_hits);
      hits_epsilon = mid;
    }
  }

  // Grow epsilon until the Type II chain search verifies a pair. The
  // first success makes the current epsilon optimal up to the increment
  // (step 3 of the paper's Type III): a smaller epsilon was already
  // checked and produced nothing. Rounds are pipelined: while this
  // round's chain search verifies, the next round's filter runs
  // speculatively on the pool; its accounting is charged only if the
  // schedule reaches that round, so results and stats match the
  // unpipelined schedule exactly. Speculation only pays when a second
  // hardware thread can truly overlap it — on a single-core box a
  // discarded probe is pure added latency — so it is gated on the pool
  // actually having more than one worker.
  // The loop exits via the break below, after a round at clamped ==
  // epsilon_max has run: terminating on the unclamped eps overshooting
  // would skip the final epsilon_max round whenever (epsilon_max - hi)
  // is not close to a multiple of the increment, silently missing pairs
  // with distance in the last partial increment.
  const bool pipeline = options_.exec.ResolvedThreads() > 1 &&
                        ThreadPool::Shared().num_threads() > 1;
  for (double eps = hi;; eps += epsilon_increment) {
    const double clamped = std::min(eps, epsilon_max);
    if (clamped != hits_epsilon) {
      hits = FilterSegments(query, clamped, stats);
      hits_epsilon = clamped;
    }
    const bool last_round = clamped >= epsilon_max;
    NextProbe<T> probe;
    if (pipeline && !last_round) {
      probe.Launch(*this, query,
                   std::min(eps + epsilon_increment, epsilon_max));
    }
    auto found = LongestMatchFromHits(query, hits, clamped, stats);
    SUBSEQ_RETURN_NOT_OK(found.status());
    if (found.value().has_value()) return found;
    if (last_round) break;
    if (probe.launched()) {
      hits = probe.Take(stats);
      hits_epsilon = std::min(eps + epsilon_increment, epsilon_max);
    }
  }
  return std::optional<SubsequenceMatch>();
}

template class SubsequenceMatcher<char>;
template class SubsequenceMatcher<double>;
template class SubsequenceMatcher<Point2d>;

}  // namespace subseq
