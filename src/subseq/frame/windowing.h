// Windowing — step 1 and step 3 of the paper's five-step pipeline
// (Section 7): partition every database sequence into fixed windows of
// length l = lambda/2 (Lemma 2 requires l <= lambda/2 for the filter to be
// lossless), and extract from the query all segments with lengths from
// l - lambda0 to l + lambda0.
//
// The catalog is element-type agnostic: it maps dense window ObjectIds to
// (sequence, interval) pairs and answers adjacency questions (needed for
// the Type II "consecutive windows" concatenation).

#ifndef SUBSEQ_FRAME_WINDOWING_H_
#define SUBSEQ_FRAME_WINDOWING_H_

#include <vector>

#include "subseq/core/sequence.h"
#include "subseq/core/status.h"
#include "subseq/core/types.h"

namespace subseq {

/// Where a database window lives.
struct WindowRef {
  SeqId seq = kInvalidId;
  /// 0-based index of this window within its sequence.
  int32_t index = 0;
  /// Element interval [begin, end) within the sequence; length == l.
  Interval span;
};

/// The fixed-length window partition of a sequence database.
///
/// Windows are aligned at offsets 0, l, 2l, ... within each sequence; a
/// trailing remainder shorter than l is not indexed (any subsequence of
/// length >= lambda = 2l still fully contains an aligned window, so the
/// filter loses nothing — see Lemma 2).
class WindowCatalog {
 public:
  /// Partitions sequences with the given lengths into windows of length
  /// `window_length`. Fails if window_length < 1.
  static Result<WindowCatalog> Partition(
      const std::vector<int32_t>& sequence_lengths, int32_t window_length);

  /// Convenience: partition an in-memory database.
  template <typename T>
  static Result<WindowCatalog> PartitionDatabase(
      const SequenceDatabase<T>& db, int32_t window_length) {
    std::vector<int32_t> lengths;
    lengths.reserve(static_cast<size_t>(db.size()));
    for (const auto& seq : db) lengths.push_back(seq.size());
    return Partition(lengths, window_length);
  }

  /// Appends one sequence of length `sequence_length` to the partition:
  /// its windows receive the next dense ObjectIds, and no existing
  /// window id, ref, or adjacency changes. Appending to a catalog and
  /// re-partitioning the extended length list produce identical
  /// catalogs — the epoch layer relies on that equivalence. Fails if
  /// sequence_length < 0.
  Status Append(int32_t sequence_length);

  int32_t window_length() const { return window_length_; }
  int32_t num_windows() const {
    return static_cast<int32_t>(windows_.size());
  }
  int32_t num_sequences() const {
    // first_window_ carries a trailing sentinel entry.
    return first_window_.empty()
               ? 0
               : static_cast<int32_t>(first_window_.size()) - 1;
  }

  /// The (sequence, interval) of a window id.
  const WindowRef& at(ObjectId window) const;

  /// Number of windows of one sequence.
  int32_t WindowsInSequence(SeqId seq) const;

  /// The window id of window `index` of sequence `seq`.
  ObjectId WindowId(SeqId seq, int32_t index) const;

  /// True if b is the window immediately following a in the same sequence.
  bool AreConsecutive(ObjectId a, ObjectId b) const;

 private:
  int32_t window_length_ = 0;
  std::vector<WindowRef> windows_;
  // first_window_[seq] = id of the first window of seq (or the id the
  // next sequence would get, if seq has none); sentinel entry at the end.
  std::vector<int32_t> first_window_;
};

/// Step 3: all segments of lengths [min_len, max_len] at every offset of a
/// query of length query_length — at most (2*lambda0 + 1) * |Q| segments.
std::vector<Interval> ExtractQuerySegments(int32_t query_length,
                                           int32_t min_len, int32_t max_len);

}  // namespace subseq

#endif  // SUBSEQ_FRAME_WINDOWING_H_
