// Snapshot persistence of SubsequenceMatcher (SaveIndex / LoadIndex /
// BuildToSnapshot) — the frame half of the snapshot subsystem.
//
// The frame layer owns the file layout; backends own only their own
// sections. A matcher snapshot is
//
//   catalog.meta          window length + sequence count
//   catalog.seq_lengths   int32 per sequence (database identity check)
//   idx.<kind>.top        IndexKind + shard/routing-cell counts of one
//                         index block
//   idx.<kind>.*          the index sections: monolithic backend
//                         sections, the sharded layout followed by
//                         per-shard backend sections (idx.<kind>.s<s>.*),
//                         or the routed layout followed by per-cell
//                         backend sections (idx.<kind>.c<c>.*)
//
// Kind tokens (rn / ct / mv / vp / ls) keep blocks of different kinds
// disjoint, so one file can host several matchers over one catalog (the
// serving layer saves all its kinds into one snapshot). Section append
// order is FIXED — Build + SaveIndex and the out-of-core BuildToSnapshot
// emit the same sections in the same order with the same bytes, which
// is what makes "out-of-core output == in-core output" testable as file
// equality.

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "subseq/exec/peak_gauge.h"
#include "subseq/frame/matcher.h"
#include "subseq/metric/linear_scan.h"
#include "subseq/metric/routed_index.h"
#include "subseq/metric/sharded_index.h"
#include "subseq/snapshot/reader.h"
#include "subseq/snapshot/writer.h"

namespace subseq {

namespace {

// Stable short token of an IndexKind, used in section names. Tokens are
// part of the on-disk format: never re-use or re-order.
const char* IndexKindToken(IndexKind kind) {
  switch (kind) {
    case IndexKind::kReferenceNet: return "rn";
    case IndexKind::kCoverTree: return "ct";
    case IndexKind::kMvIndex: return "mv";
    case IndexKind::kVpTree: return "vp";
    case IndexKind::kLinearScan: return "ls";
  }
  return "??";
}

std::string IndexPrefix(IndexKind kind) {
  return std::string("idx.") + IndexKindToken(kind) + ".";
}

// "catalog.meta": the windowing parameters the index was built under.
struct CatalogMetaRec {
  int32_t window_length = 0;
  int32_t num_sequences = 0;
};
static_assert(sizeof(CatalogMetaRec) == 8);

// "epoch.meta": identity of a non-initial epoch. Present only when the
// matcher's epoch state is nontrivial (epoch_id != 0, retired
// sequences, or a base index narrower than the catalog) — snapshots of
// never-ingested matchers keep the pre-epoch byte layout, and legacy
// files load as epoch 0.
struct EpochMetaRec {
  uint64_t epoch_id = 0;
  int32_t base_windows = 0;
  // Retired SEQUENCES (the "epoch.tombstones" SeqId list's length); the
  // per-window mask is derived from the database at load time.
  int32_t num_tombstones = 0;
};
static_assert(sizeof(EpochMetaRec) == 16);

// "epoch.delta.meta": width of the delta scan, present iff the saved
// base index covers fewer windows than the catalog. The delta index is
// a LinearScan — pure derived state — so only its width is persisted;
// loading rebuilds it from the database.
struct EpochDeltaMetaRec {
  int32_t delta_windows = 0;
  int32_t reserved = 0;
};
static_assert(sizeof(EpochDeltaMetaRec) == 8);

// "idx.<kind>.top": what one index block holds.
struct IndexBlockMetaRec {
  int32_t kind = 0;           // static_cast<int32_t>(IndexKind)
  int32_t num_shards = 0;     // 1 = not contiguously sharded
  int32_t routing_cells = 0;  // requested routing cells; 1 = not routed
  int32_t reserved = 0;
};
static_assert(sizeof(IndexBlockMetaRec) == 16);

// Reads an index block's top record, accepting both the current 16-byte
// layout and the pre-routing 8-byte {kind, num_shards} layout (older
// files load as unrouted; saving them back upgrades the record).
Status ReadIndexBlockMeta(const SnapshotFile& file, const std::string& name,
                          IndexBlockMetaRec* out) {
  auto view = PodSectionView<int32_t>(file, name);
  SUBSEQ_RETURN_NOT_OK(view.status());
  const std::span<const int32_t> v = view.value();
  if (v.size() != 2 && v.size() != 4) {
    return Status::InvalidArgument(
        "snapshot section '" + name + "' holds " +
        std::to_string(v.size() * sizeof(int32_t)) +
        " bytes; expected an 8- or 16-byte index block record");
  }
  out->kind = v[0];
  out->num_shards = v[1];
  out->routing_cells = v.size() == 4 ? v[2] : 1;
  out->reserved = v.size() == 4 ? v[3] : 0;
  return Status::OK();
}

// Serializes one (monolithic or per-shard) inner index of the given
// kind under `prefix`. The kind comes from the options the index was
// built with; a cast failure means the snapshot code and the build code
// disagree about what Build produced — an internal bug, not bad input.
Status SaveInnerSections(const RangeIndex& inner, IndexKind kind,
                         SnapshotWriter& writer, const std::string& prefix) {
  switch (kind) {
    case IndexKind::kReferenceNet: {
      const auto* net = dynamic_cast<const ReferenceNet*>(&inner);
      if (net == nullptr) break;
      return net->SaveSections(writer, prefix);
    }
    case IndexKind::kCoverTree: {
      const auto* tree = dynamic_cast<const CoverTree*>(&inner);
      if (tree == nullptr) break;
      return tree->SaveSections(writer, prefix);
    }
    case IndexKind::kMvIndex: {
      const auto* mv = dynamic_cast<const MvIndex*>(&inner);
      if (mv == nullptr) break;
      return mv->SaveSections(writer, prefix);
    }
    case IndexKind::kVpTree: {
      const auto* vp = dynamic_cast<const VpTree*>(&inner);
      if (vp == nullptr) break;
      return vp->SaveSections(writer, prefix);
    }
    case IndexKind::kLinearScan: {
      const auto* scan = dynamic_cast<const LinearScan*>(&inner);
      if (scan == nullptr) break;
      return scan->SaveSections(writer, prefix);
    }
  }
  return Status::Internal("index under '" + prefix +
                          "' is not the configured index_kind");
}

// Loads one inner index of the configured kind from sections under
// `prefix`. The MV-index aliases its pivot table out of the file, so it
// takes the shared_ptr; the others only copy.
Result<std::unique_ptr<RangeIndex>> LoadInnerSections(
    const std::shared_ptr<const SnapshotFile>& file,
    const std::string& prefix, const DistanceOracle& oracle,
    const MatcherOptions& options) {
  switch (options.index_kind) {
    case IndexKind::kReferenceNet: {
      auto net = ReferenceNet::LoadSections(*file, prefix, oracle,
                                            options.reference_net);
      SUBSEQ_RETURN_NOT_OK(net.status());
      return std::unique_ptr<RangeIndex>(std::move(net).ValueOrDie());
    }
    case IndexKind::kCoverTree: {
      auto tree =
          CoverTree::LoadSections(*file, prefix, oracle, options.cover_tree);
      SUBSEQ_RETURN_NOT_OK(tree.status());
      return std::unique_ptr<RangeIndex>(std::move(tree).ValueOrDie());
    }
    case IndexKind::kMvIndex: {
      auto mv =
          MvIndex::LoadSections(file, prefix, oracle, options.mv_index);
      SUBSEQ_RETURN_NOT_OK(mv.status());
      return std::unique_ptr<RangeIndex>(std::move(mv).ValueOrDie());
    }
    case IndexKind::kVpTree: {
      auto vp = VpTree::LoadSections(*file, prefix, oracle, options.vp_tree);
      SUBSEQ_RETURN_NOT_OK(vp.status());
      return std::unique_ptr<RangeIndex>(std::move(vp).ValueOrDie());
    }
    case IndexKind::kLinearScan: {
      auto scan = LinearScan::LoadSections(*file, prefix, oracle);
      SUBSEQ_RETURN_NOT_OK(scan.status());
      return std::unique_ptr<RangeIndex>(std::move(scan).ValueOrDie());
    }
  }
  return Status::InvalidArgument("unknown IndexKind");
}

// First parent id of shard s under the even contiguous split of n
// objects into k shards (first n % k shards one object larger) — the
// split ShardedIndex::Build uses and LoadSections re-verifies.
int32_t SplitBegin(int32_t n, int32_t k, int32_t s) {
  const int32_t base = n / k;
  const int32_t extra = n % k;
  return s * base + std::min(s, extra);
}

// The out-of-core cousin of matcher.cc's BuildKindIndex: builds one
// shard's inner index, charging `gauge` as windows become resident.
// Insertion-built backends (reference net, cover tree) stage ascending
// ids in `batch_windows`-sized batches — the id order, and so the built
// structure, is identical at every batch size. Table-built backends
// materialize the whole shard in their constructor, so the shard is
// charged up front.
Result<std::unique_ptr<RangeIndex>> BuildShardBatched(
    const DistanceOracle& oracle, const MatcherOptions& options,
    int32_t batch_windows, ResidencyGauge* gauge) {
  const int32_t n = oracle.size();
  const int32_t batch = batch_windows > 0 ? std::min(batch_windows, n) : n;
  const bool incremental = options.index_kind == IndexKind::kReferenceNet ||
                           options.index_kind == IndexKind::kCoverTree;
  if (!incremental) {
    if (gauge != nullptr) gauge->Acquire(n);
    switch (options.index_kind) {
      case IndexKind::kMvIndex:
        return std::unique_ptr<RangeIndex>(
            std::make_unique<MvIndex>(oracle, options.mv_index));
      case IndexKind::kVpTree:
        return std::unique_ptr<RangeIndex>(
            std::make_unique<VpTree>(oracle, options.vp_tree));
      case IndexKind::kLinearScan:
        return std::unique_ptr<RangeIndex>(
            std::make_unique<LinearScan>(n));
      default:
        return Status::Internal("unexpected table-built IndexKind");
    }
  }

  std::unique_ptr<ReferenceNet> net;
  std::unique_ptr<CoverTree> tree;
  if (options.index_kind == IndexKind::kReferenceNet) {
    net = std::make_unique<ReferenceNet>(oracle, options.reference_net);
  } else {
    tree = std::make_unique<CoverTree>(oracle, options.cover_tree);
  }
  for (int32_t id = 0; id < n;) {
    const int32_t take = std::min(batch, n - id);
    if (gauge != nullptr) gauge->Acquire(take);
    for (int32_t i = 0; i < take; ++i) {
      SUBSEQ_RETURN_NOT_OK(net != nullptr ? net->Insert(id + i)
                                          : tree->Insert(id + i));
    }
    id += take;
  }
  if (net != nullptr) return std::unique_ptr<RangeIndex>(std::move(net));
  return std::unique_ptr<RangeIndex>(std::move(tree));
}

}  // namespace

template <typename T>
Status SubsequenceMatcher<T>::SaveCatalogSections(
    SnapshotWriter& writer) const {
  CatalogMetaRec meta;
  meta.window_length = catalog_->window_length();
  meta.num_sequences = static_cast<int32_t>(db_->size());
  SUBSEQ_RETURN_NOT_OK(writer.AppendPodStruct("catalog.meta", meta));
  std::vector<int32_t> lengths;
  lengths.reserve(static_cast<size_t>(db_->size()));
  for (const auto& seq : *db_) lengths.push_back(seq.size());
  SUBSEQ_RETURN_NOT_OK(writer.AppendPodSection<int32_t>(
      "catalog.seq_lengths", std::span<const int32_t>(lengths)));

  // Epoch sections, only when nontrivial (see EpochMetaRec). A matcher
  // mid-ingest saves its BASE index plus these small sections; loading
  // re-derives the delta scan and the tombstone mask, so save -> load ->
  // save round-trips byte-stably at any epoch.
  const int32_t base_windows =
      base_ != nullptr ? base_->num_windows : catalog_->num_windows();
  if (db_->epoch_id() == 0 && db_->num_retired() == 0 &&
      base_windows == catalog_->num_windows()) {
    return Status::OK();
  }
  EpochMetaRec epoch;
  epoch.epoch_id = db_->epoch_id();
  epoch.base_windows = base_windows;
  epoch.num_tombstones = db_->num_retired();
  SUBSEQ_RETURN_NOT_OK(writer.AppendPodStruct("epoch.meta", epoch));
  if (epoch.num_tombstones > 0) {
    std::vector<SeqId> retired;
    retired.reserve(static_cast<size_t>(epoch.num_tombstones));
    for (SeqId s = 0; s < db_->size(); ++s) {
      if (db_->is_retired(s)) retired.push_back(s);
    }
    SUBSEQ_RETURN_NOT_OK(writer.AppendPodSection<SeqId>(
        "epoch.tombstones", std::span<const SeqId>(retired)));
  }
  if (base_windows < catalog_->num_windows()) {
    EpochDeltaMetaRec delta;
    delta.delta_windows = catalog_->num_windows() - base_windows;
    SUBSEQ_RETURN_NOT_OK(writer.AppendPodStruct("epoch.delta.meta", delta));
  }
  return Status::OK();
}

template <typename T>
Status SubsequenceMatcher<T>::SaveIndexSections(SnapshotWriter& writer) const {
  // Only the BASE index is serialized; the delta scan and tombstone mask
  // are derived state re-created at load time from the epoch sections.
  const IndexKind kind = options_.index_kind;
  const std::string prefix = IndexPrefix(kind);
  const RangeIndex* index = base_->index.get();
  const auto* sharded = dynamic_cast<const ShardedIndex*>(index);
  const auto* routed = dynamic_cast<const RoutedIndex*>(index);

  IndexBlockMetaRec top;
  top.kind = static_cast<int32_t>(kind);
  top.num_shards = sharded != nullptr ? sharded->num_shards() : 1;
  top.routing_cells = routed != nullptr ? routed->requested_cells() : 1;
  SUBSEQ_RETURN_NOT_OK(writer.AppendPodStruct(prefix + "top", top));

  const ShardIndexSaver inner_saver =
      [kind](const RangeIndex& inner, SnapshotWriter& w,
             const std::string& inner_prefix) {
        return SaveInnerSections(inner, kind, w, inner_prefix);
      };
  if (sharded != nullptr) {
    return sharded->SaveSections(writer, prefix, inner_saver);
  }
  if (routed != nullptr) {
    return routed->SaveSections(writer, prefix, inner_saver);
  }
  return SaveInnerSections(*index, kind, writer, prefix);
}

template <typename T>
Status SubsequenceMatcher<T>::SaveIndex(const std::string& path) const {
  auto writer = SnapshotWriter::Create(path);
  SUBSEQ_RETURN_NOT_OK(writer.status());
  SnapshotWriter& w = *writer.value();
  SUBSEQ_RETURN_NOT_OK(SaveCatalogSections(w));
  SUBSEQ_RETURN_NOT_OK(SaveIndexSections(w));
  return w.Finish();
}

template <typename T>
Result<std::unique_ptr<SubsequenceMatcher<T>>>
SubsequenceMatcher<T>::LoadIndexFrom(const SequenceDatabase<T>& db,
                                     const SequenceDistance<T>& dist,
                                     MatcherOptions options,
                                     std::shared_ptr<const SnapshotFile> file) {
  if (file == nullptr) {
    return Status::InvalidArgument("LoadIndexFrom requires an open snapshot");
  }
  auto shell = MakeShell(db, dist, std::move(options));
  SUBSEQ_RETURN_NOT_OK(shell.status());
  auto matcher = std::move(shell).ValueOrDie();
  const MatcherOptions& resolved = matcher->options_;

  // The snapshot is an index over a specific database partition; verify
  // the caller supplied that database before trusting any stored id.
  CatalogMetaRec meta;
  SUBSEQ_RETURN_NOT_OK(ReadPodStruct(*file, "catalog.meta", &meta));
  if (meta.window_length != matcher->catalog_->window_length()) {
    return Status::InvalidArgument(
        "snapshot '" + file->path() + "' was built with window length " +
        std::to_string(meta.window_length) + " (lambda = " +
        std::to_string(2 * meta.window_length) + "), but options request " +
        std::to_string(matcher->catalog_->window_length()) +
        " — a loaded index must equal the fresh build it replaces");
  }
  if (meta.num_sequences != db.size()) {
    return Status::InvalidArgument(
        "snapshot '" + file->path() + "' indexes " +
        std::to_string(meta.num_sequences) + " sequences but the database "
        "has " + std::to_string(db.size()) +
        " — snapshots must be loaded against the database they were built "
        "from");
  }
  auto lengths = PodSectionView<int32_t>(*file, "catalog.seq_lengths");
  SUBSEQ_RETURN_NOT_OK(lengths.status());
  if (lengths.value().size() != static_cast<size_t>(meta.num_sequences)) {
    return Status::InvalidArgument(
        "snapshot '" + file->path() + "' section 'catalog.seq_lengths' "
        "holds " + std::to_string(lengths.value().size()) +
        " lengths, expected " + std::to_string(meta.num_sequences));
  }
  for (int32_t s = 0; s < meta.num_sequences; ++s) {
    if (lengths.value()[static_cast<size_t>(s)] != db.at(s).size()) {
      return Status::InvalidArgument(
          "snapshot '" + file->path() + "' sequence " + std::to_string(s) +
          " had length " +
          std::to_string(lengths.value()[static_cast<size_t>(s)]) +
          " at save time but the database supplies " +
          std::to_string(db.at(s).size()) +
          " — snapshots must be loaded against the database they were "
          "built from");
    }
  }

  // Epoch identity: a snapshot captures one exact epoch, so the caller
  // must supply the database at that epoch — same epoch id, same retired
  // set. Files without epoch sections are epoch 0 (pre-ingest format).
  EpochMetaRec epoch;
  if (file->has_section("epoch.meta")) {
    SUBSEQ_RETURN_NOT_OK(ReadPodStruct(*file, "epoch.meta", &epoch));
  } else {
    epoch.base_windows = matcher->catalog_->num_windows();
  }
  if (epoch.epoch_id != db.epoch_id()) {
    return Status::InvalidArgument(
        "snapshot '" + file->path() + "' captures epoch " +
        std::to_string(epoch.epoch_id) + " but the database is at epoch " +
        std::to_string(db.epoch_id()) +
        " — snapshots must be loaded against the epoch they were saved at");
  }
  if (epoch.num_tombstones != db.num_retired()) {
    return Status::InvalidArgument(
        "snapshot '" + file->path() + "' records " +
        std::to_string(epoch.num_tombstones) +
        " retired sequences but the database has " +
        std::to_string(db.num_retired()) +
        " — snapshots must be loaded against the epoch they were saved at");
  }
  if (epoch.num_tombstones > 0) {
    auto tombs = PodSectionView<SeqId>(*file, "epoch.tombstones");
    SUBSEQ_RETURN_NOT_OK(tombs.status());
    if (tombs.value().size() != static_cast<size_t>(epoch.num_tombstones)) {
      return Status::InvalidArgument(
          "snapshot '" + file->path() + "' section 'epoch.tombstones' "
          "holds " + std::to_string(tombs.value().size()) +
          " entries, expected " + std::to_string(epoch.num_tombstones));
    }
    for (const SeqId s : tombs.value()) {
      if (s < 0 || s >= db.size() || !db.is_retired(s)) {
        return Status::InvalidArgument(
            "snapshot '" + file->path() + "' tombstones sequence " +
            std::to_string(s) +
            ", which the database does not retire — snapshots must be "
            "loaded against the epoch they were saved at");
      }
    }
  }
  const int32_t num_windows = matcher->catalog_->num_windows();
  if (epoch.base_windows < 0 || epoch.base_windows > num_windows) {
    return Status::InvalidArgument(
        "snapshot '" + file->path() + "' records a base of " +
        std::to_string(epoch.base_windows) + " windows but the catalog "
        "holds " + std::to_string(num_windows) + " — the file is corrupted");
  }
  if (epoch.base_windows < num_windows) {
    EpochDeltaMetaRec delta;
    SUBSEQ_RETURN_NOT_OK(ReadPodStruct(*file, "epoch.delta.meta", &delta));
    if (delta.delta_windows != num_windows - epoch.base_windows) {
      return Status::InvalidArgument(
          "snapshot '" + file->path() + "' records " +
          std::to_string(delta.delta_windows) + " delta windows but the "
          "catalog implies " +
          std::to_string(num_windows - epoch.base_windows) +
          " — the file is corrupted");
    }
  }

  const std::string prefix = IndexPrefix(resolved.index_kind);
  const std::string top_name = prefix + "top";
  if (!file->has_section(top_name)) {
    return Status::NotFound(
        "snapshot '" + file->path() + "' has no index block for kind '" +
        IndexKindToken(resolved.index_kind) + "' (no section '" + top_name +
        "'); it was saved under a different index_kind");
  }
  IndexBlockMetaRec top;
  SUBSEQ_RETURN_NOT_OK(ReadIndexBlockMeta(*file, top_name, &top));
  if (top.kind != static_cast<int32_t>(resolved.index_kind)) {
    return Status::InvalidArgument(
        "snapshot '" + file->path() + "' section '" + top_name +
        "' records kind " + std::to_string(top.kind) +
        ", which contradicts its own name — the file is corrupted");
  }
  if (top.num_shards < 1) {
    return Status::InvalidArgument(
        "snapshot '" + file->path() + "' section '" + top_name +
        "' records " + std::to_string(top.num_shards) +
        " shards; at least 1 is required");
  }
  if (top.routing_cells < 1) {
    return Status::InvalidArgument(
        "snapshot '" + file->path() + "' section '" + top_name +
        "' records " + std::to_string(top.routing_cells) +
        " routing cells; at least 1 is required");
  }
  if (top.num_shards > 1 && top.routing_cells > 1) {
    return Status::InvalidArgument(
        "snapshot '" + file->path() + "' section '" + top_name +
        "' records an index both sharded and routed — the strategies are "
        "mutually exclusive, so the file is corrupted");
  }
  // Shard / cell counts resolve against the BASE width: the saved index
  // was built when the catalog held base_windows windows, so that is the
  // object count its layout was resolved over.
  const int32_t expected_shards =
      resolved.exec.ResolvedShards(epoch.base_windows);
  if (top.num_shards != expected_shards) {
    return Status::InvalidArgument(
        "snapshot '" + file->path() + "' holds a " +
        std::to_string(top.num_shards) + "-shard index but the options "
        "resolve to " + std::to_string(expected_shards) +
        " shards; set exec.num_shards = " + std::to_string(top.num_shards) +
        " — a loaded index must equal the fresh build it replaces");
  }
  const int32_t expected_cells =
      resolved.exec.ResolvedCells(epoch.base_windows);
  if (top.routing_cells != expected_cells) {
    return Status::InvalidArgument(
        "snapshot '" + file->path() + "' holds a " +
        std::to_string(top.routing_cells) + "-cell routed index but the "
        "options resolve to " + std::to_string(expected_cells) +
        " cells; set exec.routing_cells = " +
        std::to_string(top.routing_cells) +
        " — a loaded index must equal the fresh build it replaces");
  }

  // A mid-ingest snapshot's base index covers only the first
  // base_windows windows of the current catalog; wire it over a clipped
  // prefix view so stored ids resolve identically to the epoch it was
  // saved at. AdoptBase then rebuilds the delta scan over the remainder.
  std::unique_ptr<PrefixOracle> prefix_oracle;
  const DistanceOracle* load_oracle = matcher->oracle_.get();
  if (epoch.base_windows < num_windows) {
    prefix_oracle =
        std::make_unique<PrefixOracle>(*matcher->oracle_, epoch.base_windows);
    load_oracle = prefix_oracle.get();
  }

  const ShardIndexLoader inner_loader =
      [&file, &resolved](const SnapshotFile&, const std::string& sp,
                         const DistanceOracle& inner_oracle, int32_t) {
        return LoadInnerSections(file, sp, inner_oracle, resolved);
      };
  std::unique_ptr<RangeIndex> index;
  if (top.num_shards > 1) {
    auto sharded = ShardedIndex::LoadSections(
        *file, prefix, *load_oracle, expected_shards, inner_loader);
    SUBSEQ_RETURN_NOT_OK(sharded.status());
    index = std::move(sharded).ValueOrDie();
  } else if (top.routing_cells > 1) {
    auto routed = RoutedIndex::LoadSections(
        *file, prefix, *load_oracle, expected_cells, inner_loader);
    SUBSEQ_RETURN_NOT_OK(routed.status());
    index = std::move(routed).ValueOrDie();
  } else {
    auto inner = LoadInnerSections(file, prefix, *load_oracle, resolved);
    SUBSEQ_RETURN_NOT_OK(inner.status());
    index = std::move(inner).ValueOrDie();
  }
  matcher->AdoptBase(std::move(index), std::move(prefix_oracle),
                     std::move(file), epoch.base_windows);
  return matcher;
}

template <typename T>
Result<std::unique_ptr<SubsequenceMatcher<T>>>
SubsequenceMatcher<T>::LoadIndex(const SequenceDatabase<T>& db,
                                 const SequenceDistance<T>& dist,
                                 MatcherOptions options,
                                 const std::string& path) {
  auto file = SnapshotFile::Open(path, options.snapshot_load_mode);
  SUBSEQ_RETURN_NOT_OK(file.status());
  return LoadIndexFrom(db, dist, std::move(options),
                       std::move(file).ValueOrDie());
}

template <typename T>
Status SubsequenceMatcher<T>::BuildToSnapshot(
    const SequenceDatabase<T>& db, const SequenceDistance<T>& dist,
    MatcherOptions options, const std::string& path,
    const SnapshotBuildOptions& build, ResidencyGauge* gauge) {
  auto shell = MakeShell(db, dist, std::move(options));
  SUBSEQ_RETURN_NOT_OK(shell.status());
  auto matcher = std::move(shell).ValueOrDie();
  const MatcherOptions& resolved = matcher->options_;
  if (build.batch_windows < 0) {
    return Status::InvalidArgument(
        "SnapshotBuildOptions.batch_windows must be >= 0 (0 = one batch "
        "per shard)");
  }

  auto writer = SnapshotWriter::Create(path);
  SUBSEQ_RETURN_NOT_OK(writer.status());
  SnapshotWriter& w = *writer.value();
  SUBSEQ_RETURN_NOT_OK(matcher->SaveCatalogSections(w));

  const IndexKind kind = resolved.index_kind;
  const std::string prefix = IndexPrefix(kind);
  const int32_t n = matcher->oracle_->size();
  const int32_t k = resolved.exec.ResolvedShards(n);
  const int32_t cells = resolved.exec.ResolvedCells(n);

  IndexBlockMetaRec top;
  top.kind = static_cast<int32_t>(kind);
  top.num_shards = k;
  top.routing_cells = cells;
  SUBSEQ_RETURN_NOT_OK(w.AppendPodStruct(prefix + "top", top));

  if (cells > 1) {
    // Routed: the pivot-selection pass reads the whole catalog (charged
    // to the gauge up front — routing cannot stream that decision), but
    // the inner indexes build and serialize ONE CELL AT A TIME, so peak
    // residency past selection is a single cell. The layout and the
    // per-cell builds are exactly what RoutedIndex::Build computes, so
    // the file is byte-identical to Build(...) + SaveIndex(path).
    if (gauge != nullptr) gauge->Acquire(n);
    const RoutedLayout layout =
        RoutedIndex::ComputeLayout(*matcher->oracle_, cells, resolved.exec);
    if (gauge != nullptr) gauge->Release(n);
    SUBSEQ_RETURN_NOT_OK(RoutedIndex::SaveLayoutSections(layout, w, prefix));
    const int32_t actual = static_cast<int32_t>(layout.pivots.size());
    for (int32_t c = 0; c < actual; ++c) {
      const int32_t begin = layout.begins[static_cast<size_t>(c)];
      const int32_t size = layout.begins[static_cast<size_t>(c) + 1] - begin;
      const CellOracle cell_oracle(*matcher->oracle_,
                                   layout.members.data() + begin, size);
      auto inner = BuildShardBatched(cell_oracle, resolved,
                                     build.batch_windows, gauge);
      SUBSEQ_RETURN_NOT_OK(inner.status());
      SUBSEQ_RETURN_NOT_OK(SaveInnerSections(
          *inner.value(), kind, w, RoutedIndex::CellPrefix(prefix, c)));
      std::move(inner).ValueOrDie().reset();
      if (gauge != nullptr) gauge->Release(size);
    }
  } else if (k > 1) {
    SUBSEQ_RETURN_NOT_OK(ShardedIndex::WriteShardLayout(w, prefix, n, k));
    for (int32_t s = 0; s < k; ++s) {
      const int32_t begin = SplitBegin(n, k, s);
      const int32_t size = SplitBegin(n, k, s + 1) - begin;
      // One shard alive at a time: build, serialize, free — the whole
      // point of the streamed path. The ShardOracle view reproduces
      // exactly what ShardedIndex::Build hands its factory, so the
      // shard's sections are byte-identical to the in-core save.
      const ShardOracle shard_oracle(*matcher->oracle_, begin, size);
      auto inner = BuildShardBatched(shard_oracle, resolved,
                                     build.batch_windows, gauge);
      SUBSEQ_RETURN_NOT_OK(inner.status());
      SUBSEQ_RETURN_NOT_OK(SaveInnerSections(
          *inner.value(), kind, w, ShardedIndex::ShardPrefix(prefix, s)));
      std::move(inner).ValueOrDie().reset();
      if (gauge != nullptr) gauge->Release(size);
    }
  } else {
    auto inner = BuildShardBatched(*matcher->oracle_, resolved,
                                   build.batch_windows, gauge);
    SUBSEQ_RETURN_NOT_OK(inner.status());
    SUBSEQ_RETURN_NOT_OK(SaveInnerSections(*inner.value(), kind, w, prefix));
    std::move(inner).ValueOrDie().reset();
    if (gauge != nullptr) gauge->Release(n);
  }
  return w.Finish();
}

// The snapshot members live in this translation unit, so the class-level
// explicit instantiations in matcher.cc cannot see them; they are
// instantiated here instead.
#define SUBSEQ_INSTANTIATE_MATCHER_SNAPSHOT(T)                               \
  template Status SubsequenceMatcher<T>::SaveIndex(const std::string&)       \
      const;                                                                 \
  template Status SubsequenceMatcher<T>::SaveCatalogSections(                \
      SnapshotWriter&) const;                                                \
  template Status SubsequenceMatcher<T>::SaveIndexSections(SnapshotWriter&)  \
      const;                                                                 \
  template Result<std::unique_ptr<SubsequenceMatcher<T>>>                    \
  SubsequenceMatcher<T>::LoadIndex(const SequenceDatabase<T>&,               \
                                   const SequenceDistance<T>&,               \
                                   MatcherOptions, const std::string&);      \
  template Result<std::unique_ptr<SubsequenceMatcher<T>>>                    \
  SubsequenceMatcher<T>::LoadIndexFrom(const SequenceDatabase<T>&,           \
                                       const SequenceDistance<T>&,           \
                                       MatcherOptions,                       \
                                       std::shared_ptr<const SnapshotFile>); \
  template Status SubsequenceMatcher<T>::BuildToSnapshot(                    \
      const SequenceDatabase<T>&, const SequenceDistance<T>&,                \
      MatcherOptions, const std::string&, const SnapshotBuildOptions&,       \
      ResidencyGauge*);

SUBSEQ_INSTANTIATE_MATCHER_SNAPSHOT(char)
SUBSEQ_INSTANTIATE_MATCHER_SNAPSHOT(double)
SUBSEQ_INSTANTIATE_MATCHER_SNAPSHOT(Point2d)

#undef SUBSEQ_INSTANTIATE_MATCHER_SNAPSHOT

}  // namespace subseq
