#include "subseq/frame/window_oracle.h"

#include <type_traits>

#include "subseq/frame/lb_prefilter.h"

namespace subseq {

template <typename T>
std::shared_ptr<const LowerBoundPayloads>
WindowOracle<T>::MaterializeLbPayloads(
    std::span<const ObjectId> members) const {
  if constexpr (std::is_same_v<T, double>) {
    return MakeWindowLbPayloads(db_, catalog_, members);
  } else {
    (void)members;
    return nullptr;
  }
}

template class WindowOracle<char>;
template class WindowOracle<double>;
template class WindowOracle<Point2d>;

}  // namespace subseq
