#include "subseq/frame/window_oracle.h"

namespace subseq {

template class WindowOracle<char>;
template class WindowOracle<double>;
template class WindowOracle<Point2d>;

}  // namespace subseq
