// WindowOracle<T> — step 2's glue: presents the database windows plus a
// SequenceDistance as a DistanceOracle, so any metric index (reference
// net, cover tree, MV pivots) can index them unchanged.

#ifndef SUBSEQ_FRAME_WINDOW_ORACLE_H_
#define SUBSEQ_FRAME_WINDOW_ORACLE_H_

#include <span>

#include "subseq/core/sequence.h"
#include "subseq/core/types.h"
#include "subseq/distance/distance.h"
#include "subseq/frame/windowing.h"
#include "subseq/metric/oracle.h"

namespace subseq {

/// Adapts (database, catalog, distance) to the metric layer. The three
/// referenced objects must outlive the oracle. Also a
/// LowerBoundPayloadSource: the routed index asks it to materialize a
/// cell's member windows cell-contiguously so the scan prefilter's
/// cascade keeps pruning inside probed cells (scalar series only —
/// other element types have no cascade and yield nullptr).
template <typename T>
class WindowOracle final : public DistanceOracle,
                           public LowerBoundPayloadSource {
 public:
  WindowOracle(const SequenceDatabase<T>& db, const WindowCatalog& catalog,
               const SequenceDistance<T>& dist)
      : db_(db), catalog_(catalog), dist_(dist) {}

  int32_t size() const override { return catalog_.num_windows(); }

  double Distance(ObjectId a, ObjectId b) const override {
    return dist_.Compute(WindowView(a), WindowView(b));
  }

  double DistanceBounded(ObjectId a, ObjectId b,
                         double upper_bound) const override {
    return dist_.ComputeBounded(WindowView(a), WindowView(b), upper_bound);
  }

  /// The elements of a window.
  std::span<const T> WindowView(ObjectId window) const {
    const WindowRef& ref = catalog_.at(window);
    return db_.at(ref.seq).Subsequence(ref.span);
  }

  /// A query-side distance function measuring a query segment against
  /// database windows. The segment view must stay valid while the
  /// function is in use.
  QueryDistanceFn SegmentQuery(std::span<const T> segment) const {
    return [this, segment](ObjectId window) {
      return dist_.Compute(segment, WindowView(window));
    };
  }

  /// Cell-contiguous windows + cascade features of `members` (see
  /// frame/lb_prefilter.h); nullptr for non-scalar element types.
  std::shared_ptr<const LowerBoundPayloads> MaterializeLbPayloads(
      std::span<const ObjectId> members) const override;

  const SequenceDistance<T>& distance() const { return dist_; }
  const WindowCatalog& catalog() const { return catalog_; }
  const SequenceDatabase<T>& database() const { return db_; }

 private:
  const SequenceDatabase<T>& db_;
  const WindowCatalog& catalog_;
  const SequenceDistance<T>& dist_;
};

extern template class WindowOracle<char>;
extern template class WindowOracle<double>;
extern template class WindowOracle<Point2d>;

}  // namespace subseq

#endif  // SUBSEQ_FRAME_WINDOW_ORACLE_H_
