// The step-4 lower-bound prefilter: an admissible per-window bound that
// lets the linear scan skip most exact DTW evaluations.
//
// Soundness chain (no false dismissals anywhere):
//   LB_Keogh(c) <= DTW_band(q, c) for any band r and equal-length c
//   (Keogh, VLDB 2002); with r = |q| - 1 the bound covers the
//   unconstrained DTW the matcher's filter runs. The scan prunes only
//   when LB > LowerBoundPruneCutoff(epsilon) > epsilon, so floating-
//   point rounding at the boundary cannot drop a true match either.
//
// Billing: pruned windows stay counted in distance_computations (the
// scan bills every candidate it is responsible for), so the matcher's
// filter_computations and every determinism invariant — sharded ==
// unsharded, cache-on == cache-off, prefilter-on == prefilter-off —
// hold bit-exactly; QueryStats::lower_bound_pruned reports the work
// actually saved.

#ifndef SUBSEQ_FRAME_LB_PREFILTER_H_
#define SUBSEQ_FRAME_LB_PREFILTER_H_

#include <memory>
#include <span>

#include "subseq/core/sequence.h"
#include "subseq/distance/distance.h"
#include "subseq/distance/lb_keogh.h"
#include "subseq/frame/windowing.h"
#include "subseq/metric/oracle.h"

namespace subseq {

/// QueryLowerBound over a window catalog: LB_Keogh of one query segment
/// against the catalog's fixed-length windows. Consecutive window ids of
/// one sequence are memory-adjacent with stride window_length (windows
/// align at offsets 0, l, 2l, ...), so a block of ids decomposes into a
/// few contiguous strided runs and each run feeds the batched envelope
/// kernel directly — no per-window gather.
class WindowLbKeogh final : public QueryLowerBound {
 public:
  /// `segment` must have exactly catalog.window_length() elements; the
  /// envelope is built at full width, valid for unconstrained DTW. The
  /// database and catalog must outlive this object.
  WindowLbKeogh(const SequenceDatabase<double>& db,
                const WindowCatalog& catalog,
                std::span<const double> segment);

  void LowerBoundBlock(ObjectId begin, int32_t count, double cutoff,
                       double* out) const override;

 private:
  const SequenceDatabase<double>& db_;
  const WindowCatalog& catalog_;
  LbKeoghEnvelope envelope_;
};

/// Builds an admissible per-window lower bound for `segment` under
/// `dist`, or nullptr when no sound bound applies. The generic overload
/// declines: prefilters exist per (element type, distance) pair and
/// must each prove admissibility.
template <typename T>
std::shared_ptr<const QueryLowerBound> MakeSegmentLowerBound(
    const SequenceDatabase<T>& db, const WindowCatalog& catalog,
    const SequenceDistance<T>& dist, std::span<const T> segment) {
  (void)db;
  (void)catalog;
  (void)dist;
  (void)segment;
  return nullptr;
}

/// Scalar series: LB_Keogh applies when the distance is unconstrained
/// DTW and the segment has window length (LB_Keogh requires equal
/// lengths, and only the l-length segment family matches the windows).
template <>
std::shared_ptr<const QueryLowerBound> MakeSegmentLowerBound<double>(
    const SequenceDatabase<double>& db, const WindowCatalog& catalog,
    const SequenceDistance<double>& dist, std::span<const double> segment);

}  // namespace subseq

#endif  // SUBSEQ_FRAME_LB_PREFILTER_H_
