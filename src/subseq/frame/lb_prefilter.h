// The step-4 lower-bound pruning cascade: ordered admissible per-window
// bounds that let the linear scan skip most exact DTW/ERP evaluations.
//
// Stage order (by per-candidate cost, cheapest first — NOT by
// tightness; see distance/lb_kim.h for the counterexample showing
// LB_Kim can exceed LB_Keogh):
//   DTW:  LB_Kim (O(1) over precomputed window features, when a feature
//         table is supplied) -> LB_Keogh envelope over Kim survivors;
//   ERP:  |sum(Q) - sum(C)| over precomputed window sums (the only
//         stage — LB_Kim and LB_Keogh bound DTW, not ERP).
//
// Soundness chain (no false dismissals anywhere): every stage is an
// admissible lower bound of the exact distance — LB_Keogh(c) <=
// DTW_band(q, c) for any band r and equal-length c (Keogh, VLDB 2002;
// r = |q| - 1 covers the matcher's unconstrained DTW), LB_Kim's terms
// each bound DTW (distance/lb_kim.h), and the ERP sum bound telescopes
// the triangle inequality (distance/lb_erp.h). The scan prunes only
// when a bound > LowerBoundPruneCutoff(epsilon) > epsilon, so
// floating-point rounding at the boundary cannot drop a true match
// either.
//
// Billing: pruned windows stay counted in distance_computations
// whichever stage cut them (the scan bills every candidate it is
// responsible for), so the matcher's filter_computations and every
// determinism invariant — sharded == unsharded, cache-on == cache-off,
// cascade-on == cascade-off — hold bit-exactly;
// QueryStats::lower_bound_pruned reports the work actually saved and
// lb_kim_pruned / lb_erp_pruned attribute it per stage.

#ifndef SUBSEQ_FRAME_LB_PREFILTER_H_
#define SUBSEQ_FRAME_LB_PREFILTER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "subseq/core/sequence.h"
#include "subseq/distance/distance.h"
#include "subseq/distance/lb_erp.h"
#include "subseq/distance/lb_keogh.h"
#include "subseq/distance/lb_kim.h"
#include "subseq/frame/windowing.h"
#include "subseq/metric/oracle.h"

namespace subseq {

/// Per-window candidate features feeding the cascade's O(1) stages,
/// id-indexed SoA over a whole catalog (or, inside a WindowLbPayloads,
/// over one cell's members). Each array is accumulated element-
/// sequentially per window, the same order LbKimBound / LbErpSumBound
/// use on the query side, so feature arithmetic rounds identically.
struct LbFeatureTable {
  std::vector<double> first;
  std::vector<double> last;
  std::vector<double> min;
  std::vector<double> max;
  std::vector<double> sum;
};

/// Builds the feature table of every window in the catalog. One O(total
/// elements) sequential pass; the result is query-independent and meant
/// to be built once per (db, catalog) and shared across queries.
std::shared_ptr<const LbFeatureTable> BuildLbFeatureTable(
    const SequenceDatabase<double>& db, const WindowCatalog& catalog);

/// Cell-contiguous materialization of a member subset's windows: local
/// id i holds members[i]'s window elements at elems[i * window_length]
/// and its features at index i of every feature array. A cascade bound
/// to this payload sees ONE dense strided run per block — the
/// memory-adjacent-run decomposition that scattered routed-cell ids
/// would otherwise break into per-window fragments.
class WindowLbPayloads final : public LowerBoundPayloads {
 public:
  int32_t count = 0;
  int32_t window_length = 0;
  std::vector<double> elems;  // count * window_length, cell-contiguous
  LbFeatureTable features;    // per local id
};

/// Materializes the payload of `members` (global window ids, ascending).
std::shared_ptr<const WindowLbPayloads> MakeWindowLbPayloads(
    const SequenceDatabase<double>& db, const WindowCatalog& catalog,
    std::span<const ObjectId> members);

/// QueryLowerBound over a window catalog: the staged cascade of one
/// query segment against the catalog's fixed-length windows.
///
/// Candidate access: consecutive window ids of one sequence are
/// memory-adjacent with stride window_length (windows align at offsets
/// 0, l, 2l, ...), so a block of ids decomposes into a few contiguous
/// strided runs and each run feeds the batched envelope kernel directly
/// — no per-window gather. Kim survivors are gathered in groups of four
/// through the same lb_keogh_block4 kernel, with
/// LbKeoghEnvelope::LowerBoundAbandoning as the survivor tail — both
/// bitwise-consistent with the strided path, so pruning decisions are
/// independent of block grouping AND of whether the Kim stage ran.
class LbCascade final : public QueryLowerBound {
 public:
  /// DTW cascade: Kim (when `features` != nullptr) -> Keogh. `segment`
  /// must have exactly catalog.window_length() elements; the envelope
  /// is built at full width, valid for unconstrained DTW. The database,
  /// catalog and feature table must outlive this object.
  static std::shared_ptr<const LbCascade> MakeDtw(
      const SequenceDatabase<double>& db, const WindowCatalog& catalog,
      std::span<const double> segment,
      std::shared_ptr<const LbFeatureTable> features);

  /// ERP cascade: the sum bound only. Requires a feature table (the
  /// bound reads precomputed window sums; recomputing them per query
  /// would cost as much as the distance's own early abandon).
  static std::shared_ptr<const LbCascade> MakeErp(
      const SequenceDatabase<double>& db, const WindowCatalog& catalog,
      std::span<const double> segment,
      std::shared_ptr<const LbFeatureTable> features);

  void LowerBoundBlock(ObjectId begin, int32_t count, double cutoff,
                       double* out) const override;

  void LowerBoundBlockStaged(ObjectId begin, int32_t count, double cutoff,
                             double* out,
                             LbBlockCounts* counts) const override;

  /// Rebinds to a routed cell's WindowLbPayloads (window_length must
  /// match; nullptr otherwise). The bound cascade runs the SAME stages
  /// over the payload's local ids and produces the same bound values
  /// the parent produces for the corresponding global ids.
  std::shared_ptr<const QueryLowerBound> BindTo(
      std::shared_ptr<const LowerBoundPayloads> payloads) const override;

  /// Number of memory-adjacent strided runs the block [begin,
  /// begin + count) decomposes into — 1 when bound to a payload
  /// (cell-contiguous by construction), the catalog run count
  /// otherwise. Observability for the routed-permutation regression
  /// test; does not affect bounds.
  int64_t AdjacentRuns(ObjectId begin, int32_t count) const;

 private:
  /// Query-side precomputation, shared between a cascade and its
  /// payload-bound clones (BindTo), so clones stay cheap and bitwise
  /// consistent with the parent.
  struct QuerySide {
    bool use_kim = false;
    bool use_erp = false;
    std::unique_ptr<LbKeoghEnvelope> envelope;  // DTW stages only
    std::unique_ptr<LbKimBound> kim;
    std::unique_ptr<LbErpSumBound> erp;
  };

  LbCascade() = default;

  /// Base pointer of candidate window `id` (payload-local or global).
  const double* WindowBase(ObjectId id) const;
  /// Feature table in effect (payload's when bound, global otherwise).
  const LbFeatureTable* Features() const;

  void DtwBlockStaged(ObjectId begin, int32_t count, double cutoff,
                      double* out, LbBlockCounts* counts) const;

  std::shared_ptr<const QuerySide> query_;
  // Global candidate source (unbound cascades)...
  const SequenceDatabase<double>* db_ = nullptr;
  const WindowCatalog* catalog_ = nullptr;
  std::shared_ptr<const LbFeatureTable> features_;
  // ...or one cell's materialized windows (payload-bound clones).
  std::shared_ptr<const WindowLbPayloads> payload_;
  int32_t window_length_ = 0;
};

/// Builds an admissible per-window lower bound for `segment` under
/// `dist`, or nullptr when no sound bound applies. The generic overload
/// declines: prefilters exist per (element type, distance) pair and
/// must each prove admissibility. `features` (optional) enables the
/// O(1) stages; without it DTW falls back to the envelope-only cascade
/// and ERP gets no bound at all.
template <typename T>
std::shared_ptr<const QueryLowerBound> MakeSegmentLowerBound(
    const SequenceDatabase<T>& db, const WindowCatalog& catalog,
    const SequenceDistance<T>& dist, std::span<const T> segment,
    std::shared_ptr<const LbFeatureTable> features = nullptr) {
  (void)db;
  (void)catalog;
  (void)dist;
  (void)segment;
  (void)features;
  return nullptr;
}

/// Scalar series: the DTW cascade applies when the distance is
/// unconstrained DTW and the segment has window length (LB_Keogh
/// requires equal lengths, and only the l-length segment family matches
/// the windows); the ERP cascade applies for 1-D ERP (gap element 0,
/// making the sum bound admissible) when a feature table is supplied.
template <>
std::shared_ptr<const QueryLowerBound> MakeSegmentLowerBound<double>(
    const SequenceDatabase<double>& db, const WindowCatalog& catalog,
    const SequenceDistance<double>& dist, std::span<const double> segment,
    std::shared_ptr<const LbFeatureTable> features);

}  // namespace subseq

#endif  // SUBSEQ_FRAME_LB_PREFILTER_H_
