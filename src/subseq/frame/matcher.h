// SubsequenceMatcher<T> — the paper's five-step framework (Section 7):
//
//   1. partition each database sequence into windows of length l = lambda/2
//   2. index all windows in a metric range index (reference net by default)
//   3. extract query segments of lengths l - lambda0 .. l + lambda0
//   4. range-query the index for each segment -> SegmentHits
//   5. expand hits/chains into candidate (SQ, SX) pairs and verify
//
// Steps 1-2 are offline (Build); 3-5 run per query. Three query types are
// supported (Section 3.2):
//   Type I   RangeSearch   — all similar pairs
//   Type II  LongestMatch  — maximize |SQ| subject to similarity
//   Type III NearestMatch  — minimize distance subject to the length floor
//
// Requirements on the distance: consistency always (otherwise the filter
// may dismiss true matches — Build refuses); metricity whenever a metric
// index is selected. DTW (consistent, non-metric) is usable with
// IndexKind::kLinearScan.

#ifndef SUBSEQ_FRAME_MATCHER_H_
#define SUBSEQ_FRAME_MATCHER_H_

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "subseq/core/sequence.h"
#include "subseq/core/status.h"
#include "subseq/distance/distance.h"
#include "subseq/exec/exec_context.h"
#include "subseq/frame/candidates.h"
#include "subseq/frame/epoch_base.h"
#include "subseq/frame/window_oracle.h"
#include "subseq/frame/windowing.h"
#include "subseq/metric/cover_tree.h"
#include "subseq/metric/linear_scan.h"
#include "subseq/metric/mv_index.h"
#include "subseq/metric/range_index.h"
#include "subseq/metric/reference_net.h"
#include "subseq/metric/vp_tree.h"
#include "subseq/snapshot/format.h"

namespace subseq {

class ResidencyGauge;
class SnapshotFile;
class SnapshotWriter;
struct LbFeatureTable;

/// Which index backs the window filter.
enum class IndexKind {
  kReferenceNet,
  kCoverTree,
  kMvIndex,
  kVpTree,
  kLinearScan,
};

/// Framework parameters.
struct MatcherOptions {
  /// lambda — minimum length of a reported subsequence (Section 3.1).
  /// Must be even and >= 2; windows have length lambda / 2.
  int32_t lambda = 40;
  /// lambda0 — maximum length difference between SQ and SX; also the
  /// query-segment length slack. Must satisfy 0 <= lambda0 < lambda / 2.
  int32_t lambda0 = 2;
  /// Index used for step 4.
  IndexKind index_kind = IndexKind::kReferenceNet;
  ReferenceNetOptions reference_net;
  CoverTreeOptions cover_tree;
  MvIndexOptions mv_index;
  VpTreeOptions vp_tree;
  /// Step-4 lower-bound pruning cascade (frame/lb_prefilter.h): when
  /// admissible per-window lower bounds exist for a segment's distance
  /// — unconstrained 1-D DTW runs LB_Kim over precomputed window
  /// features, then the LB_Keogh envelope over the survivors; 1-D ERP
  /// runs the |sum(Q) - sum(C)| bound over precomputed window sums; all
  /// batched through the SIMD kernels — the linear scan skips exact
  /// evaluations a stage already rules out. Matches, per-query stats,
  /// and billed filter_computations are identical on or off — pruned
  /// candidates stay billed whichever stage cut them, and the padded
  /// cutoff (metric/oracle.h:LowerBoundPruneCutoff) forbids false
  /// dismissals — so the knob trades wall-clock time only;
  /// MatchQueryStats is unaffected, and the work actually saved is
  /// visible in QueryStats::lower_bound_pruned (attributed per stage by
  /// lb_kim_pruned / lb_erp_pruned) / the StatsSink. Under routing the
  /// cascade is rebound to each probed cell's materialized member
  /// windows, so it keeps pruning inside cells.
  bool lb_prefilter = true;
  /// Safety cap on step-5 distance verifications per query; exceeded =>
  /// Status::OutOfRange (Type I can be combinatorial by design). Must be
  /// >= 1: 0 would reject every query whose filter produces any
  /// candidate, and negative values are invalid rather than "unlimited"
  /// — Validate() (and so Build) refuses both explicitly. The cap is
  /// exact at any exec setting: concurrent verification charges the
  /// budget in full region units before working (exec/verify_budget.h),
  /// so budget-exceeded is raised iff the serial walk would raise it,
  /// with identical stats.
  int64_t max_verifications = 5'000'000;
  /// Thread budget for index construction (step 2) and the batched
  /// segment filter (step 4). num_threads = 0 (the default) uses the
  /// hardware concurrency; 1 is fully sequential. Results and stats are
  /// identical at any setting — the knob trades wall-clock time only.
  /// Pushed down into reference_net / mv_index / vp_tree at Build unless
  /// that index's own exec was set explicitly (num_threads != 0).
  ///
  /// exec.num_verify_threads budgets step-5 verification separately
  /// (region costs are highly skewed, so verification uses chunked
  /// work-stealing scheduling rather than the filter's even split);
  /// 0 = inherit num_threads, 1 = the sequential reference path.
  ///
  /// exec.num_shards > 1 partitions the window catalog into that many
  /// contiguous shards and builds one index of index_kind per shard
  /// behind a ShardedIndex (metric/sharded_index.h): builds parallelize
  /// across shards (and do less total work for super-linear builds), and
  /// step 4 fans each segment across shards with a shard-order merge.
  /// Matches and all pipeline stats except filter_computations are
  /// identical to the unsharded index at any shard count (pruning scope
  /// differs across K small indexes vs one large one; LinearScan is
  /// identical on that count too). 0 or 1 = one monolithic index.
  ///
  /// exec.routing_cells > 1 instead clusters the catalog into that many
  /// pivot-routed cells behind a RoutedIndex (metric/routed_index.h):
  /// deterministic k-center pivots, per-cell covering radii, and step 4
  /// probes only the cells whose radius can contain an epsilon match —
  /// the triangle inequality as *cross-cell* pruning. Builds parallelize
  /// across cells like sharding, but filter_computations deliberately
  /// SHRINK (skipped cells are neither evaluated nor billed; the
  /// decisions are observable as cells_probed/cells_skipped). Matches
  /// and verification stats stay element-wise identical to the
  /// monolithic index at any cell count. Requires a metric distance and
  /// is mutually exclusive with num_shards > 1. 0 or 1 = off.
  ExecContext exec;

  /// Live-ingest compaction point: when a matcher's delta (windows
  /// appended since the base epoch, served by a per-epoch LinearScan on
  /// top of the base index) reaches this many windows, the serving
  /// layer (serve/MatchServer) compacts delta into base off-thread by
  /// rebuilding the index cold over the current epoch's contents — the
  /// merge output is byte-identical to a cold Build of that epoch
  /// (ascending-id insertion invariance). Matches and verification
  /// stats are identical at any threshold; only where filter work is
  /// billed (delta scan vs merged index) moves. Must be >= 1.
  int32_t delta_merge_threshold = 256;

  /// How LoadIndex / LoadIndexFrom materialize snapshot bytes: kEager
  /// copies the file into private memory; kMmap maps it read-only so
  /// large arrays (the MV-index pivot table) stay demand-paged on disk.
  /// Matches, stats, and every observable are identical in both modes —
  /// the knob trades startup time and resident memory only.
  SnapshotLoadMode snapshot_load_mode = SnapshotLoadMode::kEager;

  /// Validates the framework parameters (lambda, lambda0,
  /// max_verifications, exec knobs) with explicit messages for the edge
  /// cases; Build calls this before touching the database. The distance
  /// property checks (consistency, metricity) live in Build, which has
  /// the distance at hand.
  Status Validate() const;
};

/// Tunables of SubsequenceMatcher::BuildToSnapshot — the out-of-core,
/// shard-by-shard builder.
struct SnapshotBuildOptions {
  /// Catalog windows fed to an insertion-built backend (reference net,
  /// cover tree) per batch before the residency gauge is charged again.
  /// 0 = one batch per shard. Any batch size produces byte-identical
  /// snapshots: insertions happen in ascending id order regardless of
  /// how they are batched. Table-built backends (MV-index, VP-tree,
  /// linear scan) always materialize a whole shard at once.
  int32_t batch_windows = 0;
};

/// A verified pair of similar subsequences.
struct SubsequenceMatch {
  SeqId seq = kInvalidId;  // database sequence
  Interval query;          // SQ within the query
  Interval db;             // SX within the database sequence
  double distance = 0.0;

  friend bool operator==(const SubsequenceMatch& a,
                         const SubsequenceMatch& b) {
    return a.seq == b.seq && a.query == b.query && a.db == b.db;
  }
};

/// Accounting for one query through the pipeline.
struct MatchQueryStats {
  int64_t segments = 0;                // query segments extracted (step 3)
  int64_t filter_computations = 0;     // index distance computations (step 4)
  int64_t hits = 0;                    // segment hits (step 4 output)
  int64_t chains = 0;                  // consecutive-window chains
  int64_t verifications = 0;           // step-5 distance computations
};

/// Step 3 packaged for the index: the extracted query segments and,
/// aligned one-to-one with them, the per-segment query distance
/// functions ready to hand to RangeIndex::BatchRangeQuery. The functions
/// capture views into the query the batch was made from, so the query
/// storage must outlive the batch. Produced by
/// SubsequenceMatcher::MakeSegmentQueries; the serving layer concatenates
/// batches from many concurrent queries into one shared index call.
struct SegmentQueryBatch {
  /// Segment intervals within the query, in extraction order.
  std::vector<Interval> segments;
  /// queries[i] measures query[segments[i]] against database windows.
  std::vector<QueryDistanceFn> queries;
};

/// The framework. Holds a shared copy of the (epoch-versioned) database
/// — cheap: sequence storage is shared between epochs — and a reference
/// to the distance, which must outlive the matcher. Move-only.
///
/// Epoch versioning: a matcher built by Build covers exactly its
/// database's epoch with an empty delta. WithAppended / WithRetired
/// derive a NEW matcher one epoch later that shares this matcher's
/// immutable base index (frame/epoch_base.h) and serves the difference
/// through a small LinearScan delta (appended windows) plus a tombstone
/// mask (retired windows, never renumbered). Every query entry point
/// answers element-wise identically — matches AND verification stats —
/// to a cold Build over the same epoch's database; of the filter
/// accounting, only where distance computations are billed (delta scan
/// vs merged index; masked tombstones are observable via
/// QueryStats::delta_windows_probed / tombstones_masked) can move, the
/// same sanctioned freedom sharding and routing already have.
template <typename T>
class SubsequenceMatcher {
 public:
  /// Builds windows + index (steps 1-2). Validates options and the
  /// distance's properties.
  static Result<std::unique_ptr<SubsequenceMatcher<T>>> Build(
      const SequenceDatabase<T>& db, const SequenceDistance<T>& dist,
      MatcherOptions options = {});

  SubsequenceMatcher(const SubsequenceMatcher&) = delete;
  SubsequenceMatcher& operator=(const SubsequenceMatcher&) = delete;

  /// A new matcher one epoch later with `seq` appended: shares this
  /// matcher's base index, extends the catalog (the new sequence's
  /// windows get the next dense ids), and grows the LinearScan delta.
  /// This matcher is unchanged and stays fully usable.
  Result<std::unique_ptr<SubsequenceMatcher<T>>> WithAppended(
      Sequence<T> seq) const;

  /// A new matcher one epoch later with sequence `seq` retired: shares
  /// the base index and masks the sequence's windows via the tombstone
  /// set — no window is renumbered, so ObjectIds stay stable. Fails if
  /// `seq` is out of range or already retired.
  Result<std::unique_ptr<SubsequenceMatcher<T>>> WithRetired(SeqId seq) const;

  /// A cold rebuild over this matcher's current epoch: the delta is
  /// merged into a fresh base (empty delta; tombstoned windows remain
  /// in the index, masked at query time). The result is byte-identical
  /// — SaveIndex for SaveIndex — to Build over database() and answers
  /// every query element-wise identically to this matcher (matches AND
  /// verification stats; see the class comment for the filter-billing
  /// caveat). The serving layer runs this off-thread when the delta
  /// passes MatcherOptions::delta_merge_threshold.
  Result<std::unique_ptr<SubsequenceMatcher<T>>> Compact() const;

  /// Steps 3-4: all (query segment, window) pairs within epsilon.
  /// Equivalent to MakeSegmentQueries + one BatchFilterWindows over
  /// options().exec + MergeSegmentHits; callers that coalesce the filter
  /// across queries (serve/MatchServer) use those entry points directly.
  std::vector<SegmentHit> FilterSegments(std::span<const T> query,
                                         double epsilon,
                                         MatchQueryStats* stats = nullptr) const;

  /// The single step-4 filter entry point: answers a batch of window
  /// queries against base index + delta scan, then subtracts tombstoned
  /// windows — result[i] holds every LIVE window within epsilon of
  /// queries[i], with delta hits appended after the base index's hits
  /// (callers restore the canonical order per segment, exactly as they
  /// already do for backend-order hits). Billing: the base index bills
  /// as always; every delta window scanned is billed into the sink /
  /// per_query splits (and counted in delta_windows_probed); masked
  /// tombstones are observable-but-unbilled (tombstones_masked), like
  /// routed cell skips. per_query[i].result_count reflects the masked
  /// (returned) hit count, keeping the slot contract exact. With an
  /// empty delta and no tombstones this is exactly
  /// index().BatchRangeQuery. Thread-safe.
  std::vector<std::vector<ObjectId>> BatchFilterWindows(
      std::span<const QueryDistanceFn> queries, double epsilon,
      const ExecContext& exec, StatsSink* sink = nullptr,
      QueryStats* per_query = nullptr) const;

  /// Step 3 alone: extracts the query's segments and builds one index
  /// query function per segment (the range-query constructions step 4
  /// issues). Pure and thread-safe; `query`'s storage must outlive the
  /// returned batch. `stats` (optional) receives the segment count.
  SegmentQueryBatch MakeSegmentQueries(std::span<const T> query,
                                       MatchQueryStats* stats = nullptr) const;

  /// The deterministic hit merge behind step 4's output: demuxes batched
  /// index results (batched[i] answering segments[i] — views into the
  /// result of RangeIndex::BatchRangeQuery over a MakeSegmentQueries
  /// batch, or any per-segment gather from a larger cross-query call;
  /// views let the serving coalescer fan one shared result out to many
  /// queries without copying) into SegmentHits in the canonical order
  /// (segment order, ascending window id within a segment), then fills
  /// each hit's exact segment-to-window distance, which step 5 orders
  /// verification by. The canonical order makes step 5's input — and so
  /// matches and verification stats — depend only on the hit *set*, not
  /// on the index backend's traversal order or shard count. Results are
  /// element-wise identical at any `exec` setting. `stats` (optional)
  /// receives the hit count. Thread-safe.
  std::vector<SegmentHit> MergeSegmentHits(
      std::span<const T> query, std::span<const Interval> segments,
      std::span<const std::span<const ObjectId>> batched,
      const ExecContext& exec, MatchQueryStats* stats = nullptr) const;

  /// MergeSegmentHits with *precomputed* per-hit distances:
  /// batched_distances[i][j] must be the exact segment-to-window distance
  /// of batched[i][j] (as SegmentHitDistances computes it), and the merge
  /// consumes them instead of re-running the distance fill — so N owners
  /// of one shared segment (the serving coalescer's fan-out, warm cache
  /// entries) pay the pass once per unique segment instead of once per
  /// owner. Output is element-wise identical to the computing overload:
  /// the canonical order is restored by the same per-segment sort, and
  /// the distance fill is deterministic, so precomputed values match
  /// recomputed ones bitwise. Thread-safe.
  std::vector<SegmentHit> MergeSegmentHits(
      std::span<const T> query, std::span<const Interval> segments,
      std::span<const std::span<const ObjectId>> batched,
      std::span<const std::span<const double>> batched_distances,
      const ExecContext& exec, MatchQueryStats* stats = nullptr) const;

  /// The exact per-hit distance pass, factored out of MergeSegmentHits:
  /// result[s][i] = d(segments[s], window windows[s][i]), computed as ONE
  /// flat parallel section over all (segment, hit) pairs — per-segment
  /// hit lists are often tiny, so parallelizing per segment would
  /// serialize the fill. This is the fill step 5 orders verification by;
  /// callers that share segments across owners (serve/coalescer.cc) run
  /// it once per unique segment and hand the results to the precomputed
  /// MergeSegmentHits overload / the cross-round cache. Pure,
  /// deterministic (slot-addressed writes), and thread-safe.
  std::vector<std::vector<double>> SegmentHitDistances(
      std::span<const std::span<const T>> segments,
      std::span<const std::span<const ObjectId>> windows,
      const ExecContext& exec) const;

  /// Type I: every pair (SQ, SX) with |SQ| >= lambda, |SX| >= lambda,
  /// ||SQ| - |SX|| <= lambda0 and d(SQ, SX) <= epsilon.
  Result<std::vector<SubsequenceMatch>> RangeSearch(
      std::span<const T> query, double epsilon,
      MatchQueryStats* stats = nullptr) const;

  /// Step 5 of Type I from precomputed hits: expansion + verification of
  /// `hits` (as produced by FilterSegments / MergeSegmentHits at this
  /// epsilon). Each hit's `distance` is taken as given — the exact
  /// per-hit distances may come from any source (a fresh MergeSegmentHits
  /// fill, the precomputed-distances overload, or the serving layer's
  /// cross-round cache); no distance is ever re-derived here.
  /// RangeSearch == FilterSegments + RangeSearchFromHits; the
  /// serving layer calls this with hits demuxed from a coalesced filter.
  /// `stats` accumulates verification counts only (the filter already
  /// accounted for its own work). Thread-safe.
  ///
  /// Candidate regions are verified concurrently over
  /// options().exec.ResolvedVerifyThreads() with chunked work-stealing
  /// scheduling (region costs are skewed) and a deterministic merge in
  /// region order, then ascending (SQ, SX) within a region — the exact
  /// serial order. The verification budget charges whole regions before
  /// they verify, so matches, stats, and budget-exceeded errors are
  /// element-wise identical at any verify-thread count; on exhaustion no
  /// distance work runs at all (the serial path burns the whole budget
  /// first — same observables, less work).
  Result<std::vector<SubsequenceMatch>> RangeSearchFromHits(
      std::span<const T> query, std::span<const SegmentHit> hits,
      double epsilon, MatchQueryStats* stats = nullptr) const;

  /// Type II: a match maximizing |SQ| subject to the Type I constraints,
  /// or nullopt if no similar pair exists at this epsilon.
  Result<std::optional<SubsequenceMatch>> LongestMatch(
      std::span<const T> query, double epsilon,
      MatchQueryStats* stats = nullptr) const;

  /// Step 5 of Type II from precomputed hits: chain building + the
  /// longest-first chain search. LongestMatch == FilterSegments +
  /// LongestMatchFromHits; same contract as RangeSearchFromHits.
  ///
  /// With more than one verify thread, chains are searched speculatively
  /// in parallel first — workers share an atomic best-length bound that
  /// prunes strictly-shorter chain scans across workers and memoize
  /// every distance they compute — and the longest-first serial walk
  /// then *replays* over the memo: its control flow (and so the reported
  /// match, stats, and budget-exceeded behavior) is exactly the
  /// sequential algorithm's, while the expensive distance computations
  /// were already done concurrently. Tuples the speculation did not
  /// reach are computed on demand during the replay.
  Result<std::optional<SubsequenceMatch>> LongestMatchFromHits(
      std::span<const T> query, std::span<const SegmentHit> hits,
      double epsilon, MatchQueryStats* stats = nullptr) const;

  /// Type III (Section 7): binary-searches the smallest epsilon that
  /// produces any segment hit, then runs the Type II chain search at that
  /// epsilon, growing it by epsilon_increment until a verified pair
  /// appears. The returned match's distance is within epsilon_increment
  /// of the true minimum (the paper's algorithm: "if we find some
  /// results, the current epsilon is optimal"). Returns nullopt if no
  /// pair exists with distance <= epsilon_max.
  ///
  /// The epsilon schedule is pipelined: the existence pre-check's hit
  /// set at epsilon_max doubles as the first binary-search probe and is
  /// carried forward (each growth round verifies the cached hit set of
  /// its epsilon instead of re-running the filter), and while a round
  /// verifies, the next round's FilterSegments runs speculatively on the
  /// pool. A speculative filter is charged to `stats` only when the
  /// schedule actually consumes it, so results and stats are identical
  /// at any thread setting; discarded probes cost wall-clock-overlapped
  /// work only.
  Result<std::optional<SubsequenceMatch>> NearestMatch(
      std::span<const T> query, double epsilon_max, double epsilon_increment,
      MatchQueryStats* stats = nullptr) const;

  /// Serializes the window catalog and the built index (steps 1-2) as a
  /// versioned snapshot at `path` (snapshot/format.h). The encoding is
  /// canonical: saving a loaded matcher reproduces the file byte for
  /// byte. The database itself is NOT stored — a snapshot is the index
  /// over a database the loader must supply unchanged (the catalog
  /// sections record the sequence lengths so a mismatched database is
  /// rejected at load).
  Status SaveIndex(const std::string& path) const;

  /// SaveIndex's catalog block alone ("catalog.meta", ".seq_lengths").
  /// Multi-matcher containers (serve/MatchServer) write it once per file
  /// and then one index block per matcher via SaveIndexSections.
  Status SaveCatalogSections(SnapshotWriter& writer) const;

  /// SaveIndex's index block alone ("idx.<kind>.*" sections for this
  /// matcher's index_kind). Kind tokens are disjoint, so matchers of
  /// different kinds over the same catalog coexist in one file.
  Status SaveIndexSections(SnapshotWriter& writer) const;

  /// Rebuilds a matcher from a snapshot instead of re-running step 2.
  /// `options` must describe the index the snapshot holds: same lambda
  /// (the catalog's window length is checked), same index_kind (the
  /// snapshot must contain that kind's block), same backend tunables and
  /// resolved shard count (each backend verifies its stored build
  /// options) — a loaded matcher must equal the fresh build it replaces,
  /// and answers element-wise identically (matches AND stats, including
  /// restored build counters). The file is opened per
  /// options.snapshot_load_mode and fully checksum-validated first.
  static Result<std::unique_ptr<SubsequenceMatcher<T>>> LoadIndex(
      const SequenceDatabase<T>& db, const SequenceDistance<T>& dist,
      MatcherOptions options, const std::string& path);

  /// LoadIndex over an already-open snapshot — containers hosting
  /// several matchers open the file once and share it; the matcher keeps
  /// the shared_ptr alive for as long as any backend aliases its bytes.
  static Result<std::unique_ptr<SubsequenceMatcher<T>>> LoadIndexFrom(
      const SequenceDatabase<T>& db, const SequenceDistance<T>& dist,
      MatcherOptions options, std::shared_ptr<const SnapshotFile> file);

  /// Out-of-core Build + SaveIndex: streams the window catalog shard by
  /// shard, building and serializing ONE shard's index at a time and
  /// freeing it before the next, so peak residency is O(shard) — not
  /// O(catalog) — while the resulting file is byte-identical to
  /// Build(...) followed by SaveIndex(path) at any batch size. `gauge`
  /// (optional) is charged with the windows alive in the partial build
  /// at every step; tests assert its peak stays O(batch + shard).
  static Status BuildToSnapshot(const SequenceDatabase<T>& db,
                                const SequenceDistance<T>& dist,
                                MatcherOptions options,
                                const std::string& path,
                                const SnapshotBuildOptions& build = {},
                                ResidencyGauge* gauge = nullptr);

  const WindowCatalog& catalog() const { return *catalog_; }
  /// The BASE index (windows [0, base_windows())). Step 4 goes through
  /// BatchFilterWindows, which adds the delta scan and tombstone mask
  /// on top; direct index() queries see the base alone.
  const RangeIndex& index() const { return *base_->index; }
  const MatcherOptions& options() const { return options_; }
  int32_t window_length() const { return catalog_->window_length(); }
  /// The current epoch's database (retired sequences included, marked).
  const SequenceDatabase<T>& database() const { return *db_; }
  const SequenceDistance<T>& distance() const { return dist_; }
  /// The database's monotone epoch id this matcher serves.
  uint64_t epoch() const { return db_->epoch_id(); }
  /// Windows covered by the base index / appended since the base epoch.
  int32_t base_windows() const { return base_->num_windows; }
  int32_t delta_windows() const {
    return catalog_->num_windows() - base_->num_windows;
  }
  /// Catalog windows masked because their sequence is retired.
  int64_t num_tombstoned_windows() const { return num_tombstoned_windows_; }

 private:
  SubsequenceMatcher(std::shared_ptr<const SequenceDatabase<T>> db,
                     const SequenceDistance<T>& dist, MatcherOptions options)
      : db_(std::move(db)), dist_(dist), options_(options) {}

  /// The shared front half of Build / LoadIndexFrom / BuildToSnapshot:
  /// validates options and the distance's properties, applies the exec
  /// pushdown, and materializes the catalog + window oracle (steps 1 and
  /// 3's machinery) plus the tombstone mask — everything except the
  /// base index and the delta.
  static Result<std::unique_ptr<SubsequenceMatcher<T>>> MakeShell(
      const SequenceDatabase<T>& db, const SequenceDistance<T>& dist,
      MatcherOptions options);

  /// Wraps a freshly built/loaded index (covering the first
  /// `base_windows` catalog windows) into this matcher's shared
  /// EpochBase and builds the LinearScan delta over the rest. MakeShell
  /// must have run; `snapshot` is non-null for loaded indexes.
  void AdoptBase(std::unique_ptr<RangeIndex> index,
                 std::unique_ptr<PrefixOracle> prefix,
                 std::shared_ptr<const SnapshotFile> snapshot,
                 int32_t base_windows);

  /// The shared tail of WithAppended / WithRetired: a matcher over
  /// `db` (one epoch past this matcher's) sharing this matcher's base.
  Result<std::unique_ptr<SubsequenceMatcher<T>>> DeriveEpoch(
      SequenceDatabase<T> db) const;

  /// The query seen by the delta index: global query composed with the
  /// delta's local-id offset, lower-bound payload preserved (mirrors
  /// ShardedIndex::ShardQuery).
  static QueryDistanceFn DeltaQuery(const QueryDistanceFn& query,
                                    int32_t offset);

  /// Verifies all pairs in a region; invokes `on_match` for each pair
  /// within epsilon. Returns false if the verification cap was exhausted.
  template <typename OnMatch>
  bool VerifyRegion(std::span<const T> query, const CandidateRegion& region,
                    double epsilon, int64_t* budget,
                    MatchQueryStats* stats, OnMatch&& on_match) const;

  /// The current epoch's database. Heap-held so the window oracle (and
  /// the shared EpochBase, for a fresh build) can reference it beyond
  /// any single matcher's lifetime.
  std::shared_ptr<const SequenceDatabase<T>> db_;
  const SequenceDistance<T>& dist_;
  MatcherOptions options_;
  /// Current epoch's catalog/oracle (all windows, delta included). For
  /// a fresh build these are shared into base_; a derived matcher owns
  /// fresh ones while base_ keeps the base epoch's.
  std::shared_ptr<const WindowCatalog> catalog_;
  std::shared_ptr<const WindowOracle<T>> oracle_;
  /// Per-window cascade features (first/last/min/max/sum), built once at
  /// MakeShell when the prefilter is on and the element type has a
  /// cascade (scalar series); nullptr otherwise. Shared into every
  /// segment's LbCascade. Covers ALL current windows (delta included).
  std::shared_ptr<const LbFeatureTable> lb_features_;
  /// The immutable base: index over windows [0, base_->num_windows),
  /// shared across every matcher derived from the same build/load.
  std::shared_ptr<const EpochBase<T>> base_;
  /// LinearScan over the delta windows [base, num_windows) with local
  /// ids 0..delta-1; nullptr when the delta is empty.
  std::unique_ptr<LinearScan> delta_index_;
  /// window_tombstones_[w] != 0 iff window w's sequence is retired.
  /// Empty when nothing is retired.
  std::vector<uint8_t> window_tombstones_;
  int64_t num_tombstoned_windows_ = 0;
};

extern template class SubsequenceMatcher<char>;
extern template class SubsequenceMatcher<double>;
extern template class SubsequenceMatcher<Point2d>;

}  // namespace subseq

#endif  // SUBSEQ_FRAME_MATCHER_H_
