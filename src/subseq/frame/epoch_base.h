// EpochBase<T> — the immutable base half of an epoch-versioned matcher.
//
// Live ingest splits a matcher's index state HTAP-style: an expensive
// immutable BASE index over the windows that existed at the base epoch,
// plus a small per-matcher LinearScan DELTA over windows appended since
// (frame/matcher.h). Deriving a new epoch (Append/Retire) shares the
// base by shared_ptr — only the cheap delta and the tombstone mask are
// rebuilt — so the base index, the oracle it references, and the
// database storage backing both must live in one shared, heap-stable
// object that outlives every matcher of any descendant epoch. That
// object is EpochBase.

#ifndef SUBSEQ_FRAME_EPOCH_BASE_H_
#define SUBSEQ_FRAME_EPOCH_BASE_H_

#include <memory>
#include <span>

#include "subseq/core/sequence.h"
#include "subseq/frame/window_oracle.h"
#include "subseq/frame/windowing.h"
#include "subseq/metric/oracle.h"
#include "subseq/metric/range_index.h"

namespace subseq {

class SnapshotFile;

/// A prefix view of a DistanceOracle: the first `size` objects with
/// unchanged ids. Used when a mid-ingest snapshot is loaded: the stored
/// base index covers only the first base_windows windows of the (larger)
/// current catalog, so it is wired to this clipped view instead of the
/// full oracle. Ids are NOT remapped (a prefix is the identity map),
/// and lower-bound payload requests forward to the parent when it is a
/// LowerBoundPayloadSource — routed cells keep their cascade pruning
/// through the clip.
class PrefixOracle final : public DistanceOracle,
                           public LowerBoundPayloadSource {
 public:
  PrefixOracle(const DistanceOracle& parent, int32_t size)
      : parent_(parent),
        payloads_(dynamic_cast<const LowerBoundPayloadSource*>(&parent)),
        size_(size) {}

  int32_t size() const override { return size_; }

  double Distance(ObjectId a, ObjectId b) const override {
    return parent_.Distance(a, b);
  }

  double DistanceBounded(ObjectId a, ObjectId b,
                         double upper_bound) const override {
    return parent_.DistanceBounded(a, b, upper_bound);
  }

  std::shared_ptr<const LowerBoundPayloads> MaterializeLbPayloads(
      std::span<const ObjectId> members) const override {
    return payloads_ != nullptr ? payloads_->MaterializeLbPayloads(members)
                                : nullptr;
  }

 private:
  const DistanceOracle& parent_;
  const LowerBoundPayloadSource* payloads_;
  int32_t size_;
};

/// The shared immutable core of one base epoch: the database snapshot,
/// catalog, and window oracle the base index was built over, and the
/// index itself. Heap-allocated behind shared_ptr<const EpochBase> and
/// never mutated after construction, so matchers of descendant epochs
/// (and in-flight queries holding them) share it safely across threads.
template <typename T>
struct EpochBase {
  /// The database as of the base epoch (kept alive for the oracle; the
  /// element storage is shared with every descendant epoch's database).
  std::shared_ptr<const SequenceDatabase<T>> db;
  /// Catalog / oracle the index references. The catalog may cover MORE
  /// windows than the index (a mid-ingest load reuses the current
  /// epoch's catalog); the index itself never probes past num_windows.
  std::shared_ptr<const WindowCatalog> catalog;
  std::shared_ptr<const WindowOracle<T>> oracle;
  /// Non-null only when the index was loaded over a clipped view
  /// (snapshot base_windows < current windows); the index references
  /// *prefix, which references *oracle.
  std::unique_ptr<PrefixOracle> prefix;
  /// The base index, over the first num_windows windows.
  std::unique_ptr<RangeIndex> index;
  /// Non-null iff the index was loaded from a snapshot whose bytes a
  /// backend may still alias (mmap mode); keeps the mapping alive.
  std::shared_ptr<const SnapshotFile> snapshot;
  /// Windows the base index covers: ids [0, num_windows).
  int32_t num_windows = 0;
};

}  // namespace subseq

#endif  // SUBSEQ_FRAME_EPOCH_BASE_H_
