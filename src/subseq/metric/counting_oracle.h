// CountingOracle: decorates a DistanceOracle / QueryDistanceFn with a
// distance-computation counter. Indexes count their own query-side calls;
// this decorator is used to account for *build-side* computations and in
// tests to assert pruning behaviour.

#ifndef SUBSEQ_METRIC_COUNTING_ORACLE_H_
#define SUBSEQ_METRIC_COUNTING_ORACLE_H_

#include <atomic>
#include <cstdint>

#include "subseq/exec/stats_sink.h"
#include "subseq/metric/oracle.h"

namespace subseq {

/// Wraps an oracle and counts every Distance() call. Safe to share across
/// the threads of a parallel build: the counter is atomic (relaxed
/// ordering — counts are exact, no synchronization is implied; read the
/// total after the build has joined).
class CountingOracle final : public DistanceOracle {
 public:
  explicit CountingOracle(const DistanceOracle& base) : base_(base) {}

  int32_t size() const override { return base_.size(); }

  double Distance(ObjectId a, ObjectId b) const override {
    count_.fetch_add(1, std::memory_order_relaxed);
    return base_.Distance(a, b);
  }

  double DistanceBounded(ObjectId a, ObjectId b,
                         double upper_bound) const override {
    count_.fetch_add(1, std::memory_order_relaxed);
    return base_.DistanceBounded(a, b, upper_bound);
  }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  void Reset() { count_.store(0, std::memory_order_relaxed); }

 private:
  const DistanceOracle& base_;
  mutable std::atomic<int64_t> count_{0};
};

/// Wraps a query function and counts every call through a caller-owned
/// counter (the function object is copyable; the counter is shared).
/// Single-threaded use only — for concurrent callers use the StatsSink
/// overload below.
QueryDistanceFn CountingQueryFn(QueryDistanceFn fn, int64_t* counter);

/// As above, but counts through a thread-safe sink; the returned function
/// may be invoked from any number of threads concurrently.
QueryDistanceFn CountingQueryFn(QueryDistanceFn fn, StatsSink* sink);

}  // namespace subseq

#endif  // SUBSEQ_METRIC_COUNTING_ORACLE_H_
