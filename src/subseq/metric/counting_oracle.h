// CountingOracle: decorates a DistanceOracle / QueryDistanceFn with a
// distance-computation counter. Indexes count their own query-side calls;
// this decorator is used to account for *build-side* computations and in
// tests to assert pruning behaviour.

#ifndef SUBSEQ_METRIC_COUNTING_ORACLE_H_
#define SUBSEQ_METRIC_COUNTING_ORACLE_H_

#include <cstdint>

#include "subseq/metric/oracle.h"

namespace subseq {

/// Wraps an oracle and counts every Distance() call.
class CountingOracle final : public DistanceOracle {
 public:
  explicit CountingOracle(const DistanceOracle& base) : base_(base) {}

  int32_t size() const override { return base_.size(); }

  double Distance(ObjectId a, ObjectId b) const override {
    ++count_;
    return base_.Distance(a, b);
  }

  double DistanceBounded(ObjectId a, ObjectId b,
                         double upper_bound) const override {
    ++count_;
    return base_.DistanceBounded(a, b, upper_bound);
  }

  int64_t count() const { return count_; }
  void Reset() { count_ = 0; }

 private:
  const DistanceOracle& base_;
  mutable int64_t count_ = 0;
};

/// Wraps a query function and counts every call through a caller-owned
/// counter (the function object is copyable; the counter is shared).
QueryDistanceFn CountingQueryFn(QueryDistanceFn fn, int64_t* counter);

}  // namespace subseq

#endif  // SUBSEQ_METRIC_COUNTING_ORACLE_H_
