// ReferenceNet — the paper's novel metric index (Section 6, Appendix A).
//
// A hierarchical structure with levels i carrying radius eps_i = eps' * 2^i.
// Each reference R(i, j) keeps lists L(i, j) of references from the level
// below within eps_i; unlike a cover tree a node may appear in the lists of
// *multiple* parents (Figure 2 of the paper shows why this helps range
// queries), and the per-node number of parents can be capped (num_max,
// "DFD-5" / "RN-5" in the paper's experiments) to keep space linear under
// skewed distance distributions.
//
// Implementation notes:
//  * A node is stored once, at its highest (top) level, and is implicitly
//    present at every level below ("we just keep each reference only in
//    the highest level"). Its child lists are keyed by *list level* k:
//    the list at level k holds nodes with top level k-1 within Radius(k).
//  * Levels may be negative (points closer than eps' descend below level
//    0); exact duplicates (distance 0) attach to the representative node
//    instead of descending forever.
//  * The subtree of a node with top level t is contained in a ball of
//    radius sum_{k<=t} Radius(k) < Radius(t+1) around it; this is the
//    paper's Lemma 4 bound (with eps'=1: 2^{i+1}) and drives both the
//    include-all and prune-all decisions of the range query.

#ifndef SUBSEQ_METRIC_REFERENCE_NET_H_
#define SUBSEQ_METRIC_REFERENCE_NET_H_

#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "subseq/core/status.h"
#include "subseq/metric/range_index.h"

namespace subseq {

class SnapshotFile;
class SnapshotWriter;

/// Tunables of the reference net.
struct ReferenceNetOptions {
  /// eps' — the radius of level 0. The paper's experiments use 1.0.
  double base_radius = 1.0;
  /// num_max — the maximum number of parent lists a node may appear in;
  /// 0 means unlimited (the paper's unconstrained variant).
  int32_t max_parents = 0;
  /// Thread budget for construction: each insert batches its per-level
  /// candidate-distance computations (the O(n * refs) hot path) over
  /// these threads. The net built is identical at any setting.
  ExecContext exec;
};

/// The reference net index. The oracle must outlive the index.
class ReferenceNet final : public RangeIndex {
 public:
  explicit ReferenceNet(const DistanceOracle& oracle,
                        ReferenceNetOptions options = {});

  /// Builds a net over all oracle objects (ids 0..size-1).
  static ReferenceNet BuildAll(const DistanceOracle& oracle,
                               ReferenceNetOptions options = {});

  /// Inserts one object (Appendix A.1). Idempotence: inserting an already
  /// present object returns AlreadyExists.
  Status Insert(ObjectId id);

  /// Removes one object (Appendix A.2). Children left without a parent are
  /// cascaded out and re-inserted; deleting the root representative
  /// rebuilds the net from the remaining objects.
  Status Delete(ObjectId id);

  /// True if the object is currently indexed.
  bool Contains(ObjectId id) const;

  std::string_view name() const override { return "reference-net"; }
  int32_t size() const override { return num_objects_; }

  std::vector<ObjectId> RangeQuery(const QueryDistanceFn& query,
                                   double epsilon,
                                   QueryStats* stats) const override;

  /// Exact k-nearest-neighbor search via best-first traversal ordered by
  /// per-edge triangle lower bounds.
  std::vector<Neighbor> NearestNeighbors(const QueryDistanceFn& query,
                                         int32_t k,
                                         QueryStats* stats) const override;

  SpaceStats ComputeSpaceStats() const override;
  BuildStats build_stats() const override { return build_stats_; }

  const ReferenceNetOptions& options() const { return options_; }

  /// Verifies the structural invariants (inclusive & exclusive properties,
  /// list-level consistency, reachability, subtree radius bound, parent
  /// cap). Returns a description of the first violation, or nullopt.
  /// O(n^2) distance computations — test/diagnostic use only.
  std::optional<std::string> CheckInvariants() const;

  /// Level of the root node (diagnostics).
  int32_t root_level() const;

  /// A structure-only snapshot of one node, used by save/load
  /// (metric/serialization.h). Children are referenced by *object id*,
  /// making the snapshot independent of internal node indices.
  struct ExportedNode {
    ObjectId object = kInvalidId;
    int32_t top_level = 0;
    std::vector<ObjectId> duplicates;
    // (list level, child object, stored parent-child distance).
    std::vector<std::tuple<int32_t, ObjectId, double>> edges;
  };

  /// Snapshots every live node; the root is first. Deterministic.
  std::vector<ExportedNode> Export() const;

  /// Rebuilds a net from a snapshot over the given oracle. Validates
  /// level structure, parent links and a deterministic seeded sample of
  /// edge distances (every edge for small nets); fails with
  /// InvalidArgument on any inconsistency.
  static Result<ReferenceNet> Import(const DistanceOracle& oracle,
                                     ReferenceNetOptions options,
                                     const std::vector<ExportedNode>& nodes);

  /// Appends this net's binary snapshot sections ("<prefix>meta",
  /// "nodes", "dups", "edges") to `writer` — the flat-POD counterpart
  /// of the text dump in metric/serialization.h. Canonical: re-saving a
  /// loaded net reproduces the bytes exactly.
  Status SaveSections(SnapshotWriter& writer, const std::string& prefix) const;

  /// Reconstructs a net from binary snapshot sections via Import() (all
  /// of Import's structural validation and its seeded distance
  /// spot-check apply). The stored base_radius/max_parents must match
  /// `options`.
  static Result<std::unique_ptr<ReferenceNet>> LoadSections(
      const SnapshotFile& file, const std::string& prefix,
      const DistanceOracle& oracle, const ReferenceNetOptions& options);

 private:
  /// A parent->child link, annotated with the exact parent-child distance
  /// so range queries can apply per-edge triangle bounds (this is what
  /// lets every parent of a multi-parented node independently include or
  /// prune it — the paper's Figure 2 argument).
  struct Edge {
    int32_t child = -1;
    double distance = 0.0;
  };

  struct Node {
    ObjectId object = kInvalidId;
    int32_t top_level = 0;
    bool alive = false;
    // Node indices of parents (nodes whose list contains this node).
    std::vector<int32_t> parents;
    // (list level k, members) pairs; members have top level k-1 and are
    // within Radius(k) of this node. Kept sorted by level descending.
    std::vector<std::pair<int32_t, std::vector<Edge>>> lists;
    // Objects at distance 0 from `object`.
    std::vector<ObjectId> duplicates;
  };

  double Radius(int32_t level) const;
  int32_t NewNode(ObjectId id, int32_t top_level);
  std::vector<Edge>* FindList(Node& node, int32_t level);
  const std::vector<Edge>* FindList(const Node& node, int32_t level) const;
  void AddToList(int32_t parent, int32_t list_level, int32_t child,
                 double distance);

  /// Adds the objects (representative + duplicates) of every node in the
  /// subtree rooted at `node_index` to `out`, marking `emitted`.
  void CollectSubtree(int32_t node_index, std::vector<ObjectId>* out,
                      std::vector<uint8_t>* emitted) const;

  /// Removes node `ni` structurally; appends its objects to `objects` and
  /// newly orphaned children to `orphans`.
  void RemoveNodeStructurally(int32_t ni, std::vector<ObjectId>* objects,
                              std::vector<int32_t>* orphans);

  const DistanceOracle& oracle_;
  ReferenceNetOptions options_;
  std::vector<Node> nodes_;
  std::vector<int32_t> free_nodes_;
  std::unordered_map<ObjectId, int32_t> object_node_;
  int32_t root_ = -1;
  int32_t num_objects_ = 0;
  BuildStats build_stats_;
};

}  // namespace subseq

#endif  // SUBSEQ_METRIC_REFERENCE_NET_H_
