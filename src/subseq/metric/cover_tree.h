// CoverTree — the tree baseline the paper compares against ("CT" in
// Figs. 8-11; Beygelzimer, Kakade & Langford, ICML 2006).
//
// Structurally the cover tree is the single-parent cousin of the reference
// net: base-2 levels, covering invariant d(parent, child) <= 2^i, and
// separation 2^i between same-level nodes. Because each node keeps exactly
// one parent, the structure is smaller (the paper: reference-net space is
// ~3-4x a cover tree for PROTEINS) but range queries prune less — a point
// within range of two references is only discoverable through one of them
// (Figure 2 of the paper).
//
// This implementation is deliberately independent of ReferenceNet (no
// shared machinery) so the two can cross-validate each other in tests.

#ifndef SUBSEQ_METRIC_COVER_TREE_H_
#define SUBSEQ_METRIC_COVER_TREE_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "subseq/core/status.h"
#include "subseq/metric/range_index.h"

namespace subseq {

class SnapshotFile;
class SnapshotWriter;

/// Cover-tree tunables.
struct CoverTreeOptions {
  /// Radius of level 0 (2^0 scale). Matches ReferenceNetOptions for
  /// like-for-like comparisons.
  double base_radius = 1.0;
};

/// A (simplified, insertion-built) cover tree with exact range queries.
class CoverTree final : public RangeIndex {
 public:
  explicit CoverTree(const DistanceOracle& oracle,
                     CoverTreeOptions options = {});

  /// Builds a tree over all oracle objects (ids 0..size-1).
  static CoverTree BuildAll(const DistanceOracle& oracle,
                            CoverTreeOptions options = {});

  /// Inserts one object.
  Status Insert(ObjectId id);

  /// True if the object is currently indexed.
  bool Contains(ObjectId id) const;

  std::string_view name() const override { return "cover-tree"; }
  int32_t size() const override { return num_objects_; }

  std::vector<ObjectId> RangeQuery(const QueryDistanceFn& query,
                                   double epsilon,
                                   QueryStats* stats) const override;

  /// Exact k-nearest-neighbor search via best-first traversal.
  std::vector<Neighbor> NearestNeighbors(const QueryDistanceFn& query,
                                         int32_t k,
                                         QueryStats* stats) const override;

  SpaceStats ComputeSpaceStats() const override;
  BuildStats build_stats() const override { return build_stats_; }

  /// Verifies covering, separation, single-parent reachability and the
  /// subtree radius bound. Test/diagnostic use (O(n^2) distances).
  std::optional<std::string> CheckInvariants() const;

  /// Appends this tree's snapshot sections ("<prefix>meta", "nodes",
  /// "lists", "edges", "dups") to `writer`. Canonical encoding.
  Status SaveSections(SnapshotWriter& writer, const std::string& prefix) const;

  /// Reconstructs a tree from snapshot sections. Validates covering
  /// levels, parent back-links, single-parent reachability, and a
  /// deterministic seeded sample of edge distances against the oracle;
  /// the stored base_radius must match `options`.
  static Result<std::unique_ptr<CoverTree>> LoadSections(
      const SnapshotFile& file, const std::string& prefix,
      const DistanceOracle& oracle, const CoverTreeOptions& options);

 private:
  /// A parent->child link with the exact parent-child distance (used for
  /// per-edge triangle bounds during range queries, mirroring the
  /// reference net so the two baselines are compared like-for-like).
  struct Edge {
    int32_t child = -1;
    double distance = 0.0;
  };

  struct Node {
    ObjectId object = kInvalidId;
    int32_t top_level = 0;
    int32_t parent = -1;
    // (list level k, members with top level k-1 within Radius(k)).
    std::vector<std::pair<int32_t, std::vector<Edge>>> lists;
    std::vector<ObjectId> duplicates;
  };

  double Radius(int32_t level) const;
  /// Tuned batch hook: the RangeQuery body over a caller-owned
  /// visited-marks buffer (resized and zeroed here), letting the default
  /// BatchRangeQuery reuse one allocation across a chunk's queries.
  std::vector<ObjectId> RangeQueryWithScratch(
      const QueryDistanceFn& query, double epsilon, QueryStats* stats,
      std::vector<uint8_t>* emitted) const override;
  std::vector<Edge>* FindList(Node& node, int32_t level);
  const std::vector<Edge>* FindList(const Node& node, int32_t level) const;
  void CollectSubtree(int32_t node_index, std::vector<ObjectId>* out,
                      std::vector<uint8_t>* emitted) const;

  const DistanceOracle& oracle_;
  CoverTreeOptions options_;
  std::vector<Node> nodes_;
  std::unordered_map<ObjectId, int32_t> object_node_;
  int32_t root_ = -1;
  int32_t num_objects_ = 0;
  BuildStats build_stats_;
};

}  // namespace subseq

#endif  // SUBSEQ_METRIC_COVER_TREE_H_
