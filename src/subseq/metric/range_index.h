// RangeIndex: the common interface of all metric indexes, plus the
// statistics structs behind the paper's evaluation metrics.
//
// The paper's headline query metric (Figs. 8-11) is the *percentage of
// distance computations* an index performs relative to the naive linear
// scan; QueryStats::distance_computations feeds that. The space metric
// (Figs. 5-7) is node/list counts and byte estimates via SpaceStats.

#ifndef SUBSEQ_METRIC_RANGE_INDEX_H_
#define SUBSEQ_METRIC_RANGE_INDEX_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "subseq/exec/exec_context.h"
#include "subseq/exec/stats_sink.h"
#include "subseq/metric/oracle.h"

namespace subseq {

/// Per-query accounting.
struct QueryStats {
  /// Query-to-object distance evaluations performed. BILLED work, not
  /// executed calls: a linear scan reports every candidate it is
  /// responsible for even when a lower-bound prefilter skipped the
  /// exact evaluation (mirroring the serving cache's
  /// shared_computations convention). This keeps every
  /// distance-computation invariant — sharded == unsharded,
  /// cache-on == cache-off, prefilter-on == prefilter-off — exact.
  int64_t distance_computations = 0;
  /// Objects returned.
  int64_t result_count = 0;
  /// Candidates whose exact distance was skipped by a lower-bound
  /// prefilter (see QueryLowerBound). Observability only — the saved
  /// work; these candidates remain counted in distance_computations.
  /// Equals the sum of the per-stage counters below for the shipped
  /// cascade (single-stage providers report everything here).
  int64_t lower_bound_pruned = 0;
  /// Of lower_bound_pruned, candidates cut by the O(1) LB_Kim stage
  /// before the LB_Keogh envelope ran (DTW cascade only; 0 elsewhere).
  int64_t lb_kim_pruned = 0;
  /// Of lower_bound_pruned, candidates cut by the |sum(Q) - sum(C)|
  /// ERP sum bound (ERP cascade only; 0 elsewhere).
  int64_t lb_erp_pruned = 0;
  /// Routed-index cells this query was fanned into (RoutedIndex only;
  /// 0 elsewhere). The routing distance of every cell — probed or not —
  /// is billed in distance_computations.
  int64_t cells_probed = 0;
  /// Routed-index cells the triangle inequality proved empty of hits,
  /// whose members were therefore neither evaluated NOR billed. This is
  /// the one sanctioned departure from the billing invariants above:
  /// routing exists to shrink distance_computations, and
  /// cells_probed/cells_skipped make the decision deterministic and
  /// observable (the CI routing gates ride on these counts).
  int64_t cells_skipped = 0;
  /// Delta-index windows (appended since the base epoch) this query was
  /// scanned against by the frame layer's base+delta merge (0 when the
  /// matcher's delta is empty). Every probed delta window is billed in
  /// distance_computations — delta scan costs land in
  /// filter_computations like any other filter work.
  int64_t delta_windows_probed = 0;
  /// Hits dropped because their window belongs to a retired (tombstoned)
  /// sequence. Like cells_skipped, masking is a sanctioned departure
  /// from strict billing equality versus an index that never held the
  /// window: the mask itself is not billed, and this counter makes the
  /// masking decisions observable and deterministic.
  int64_t tombstones_masked = 0;
};

/// Index construction accounting.
struct BuildStats {
  /// Object-to-object distance evaluations performed during build.
  int64_t distance_computations = 0;
};

/// Structural size of an index (Figures 5-7).
struct SpaceStats {
  /// Objects represented (== oracle size once fully built).
  int64_t num_objects = 0;
  /// Internal nodes (reference-net/cover-tree nodes; MV: references).
  int64_t num_nodes = 0;
  /// Total parent->child list entries (reference lists; MV: table cells).
  int64_t num_list_entries = 0;
  /// Average number of parents per node (1.0 for a tree).
  double avg_parents = 0.0;
  /// Number of levels (hierarchical indexes only).
  int32_t num_levels = 0;
  /// Estimated resident bytes of the index structure.
  int64_t approx_bytes = 0;
};

/// One k-nearest-neighbor result.
struct Neighbor {
  ObjectId id = kInvalidId;
  double distance = 0.0;

  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.id == b.id && a.distance == b.distance;
  }
};

/// A metric range index over the objects of a DistanceOracle.
class RangeIndex {
 public:
  virtual ~RangeIndex() = default;

  /// Short stable identifier ("reference-net", "cover-tree", ...).
  virtual std::string_view name() const = 0;

  /// Number of indexed objects.
  virtual int32_t size() const = 0;

  /// Returns every ObjectId whose distance to the query is <= epsilon.
  /// Exact (no false positives or negatives) for metric distances.
  /// Order of results is unspecified. `stats` (optional) receives the
  /// distance-computation count for this query.
  virtual std::vector<ObjectId> RangeQuery(const QueryDistanceFn& query,
                                           double epsilon,
                                           QueryStats* stats = nullptr) const = 0;

  /// Executes a batch of range queries, result[i] answering queries[i].
  ///
  /// Ordering guarantees (the serving layer's demux relies on these):
  ///  * results are *batch-order addressed*: result[i] answers queries[i],
  ///    regardless of thread budget, chunking, or which other queries
  ///    share the batch;
  ///  * result[i] is element-wise identical — same ids, same order — to
  ///    RangeQuery(queries[i], epsilon) issued alone, at any
  ///    exec.num_threads setting (batch composition never changes a
  ///    query's answer, only wall-clock time);
  ///  * per_query[i] (when requested) equals the QueryStats that the
  ///    stand-alone RangeQuery(queries[i], ...) would report — queries in
  ///    a batch do not share or amortize distance computations. This slot
  ///    addressing is checked, not just documented: the default
  ///    implementation CHECKs that per_query[i].result_count equals
  ///    results[i]'s size, and ShardedIndex re-CHECKs the invariant when
  ///    rolling inner splits up — so downstream consumers (MatchServer
  ///    billing, the per-shard roll-up) can rely on the split being
  ///    exact. Overrides must preserve the same invariant.
  ///
  /// The default implementation fans the batch out over exec's thread
  /// budget in contiguous index-ordered chunks. `sink` (optional)
  /// receives the batch's exact total distance-computation and result
  /// counts; `per_query` (optional) must point to `queries.size()`
  /// writable QueryStats and receives the same accounting split per
  /// query, so multi-tenant callers (MatchServer) can bill each query
  /// exactly even though the batch executed as one shared call. Backends
  /// override this for tuned execution (e.g. intra-query sharding,
  /// scratch reuse) but must preserve all three guarantees above. Query
  /// functions must be safe to invoke from multiple threads (distances
  /// are thread-compatible by contract; see SequenceDistance).
  virtual std::vector<std::vector<ObjectId>> BatchRangeQuery(
      std::span<const QueryDistanceFn> queries, double epsilon,
      const ExecContext& exec = {}, StatsSink* sink = nullptr,
      QueryStats* per_query = nullptr) const;

  /// Returns the k objects closest to the query, sorted by ascending
  /// distance. Exact for metric distances: the returned distance multiset
  /// is optimal; among objects tied exactly at the k-th distance the
  /// choice is index-dependent. Returns fewer than k neighbors only when
  /// the index holds fewer objects.
  virtual std::vector<Neighbor> NearestNeighbors(
      const QueryDistanceFn& query, int32_t k,
      QueryStats* stats = nullptr) const = 0;

  /// Structural size of the index.
  virtual SpaceStats ComputeSpaceStats() const = 0;

  /// Distance computations spent building the index.
  virtual BuildStats build_stats() const = 0;

 protected:
  /// Hook for the default BatchRangeQuery: answers one query given a
  /// buffer that lives for a whole chunk of the batch. Backends with
  /// per-query scratch (e.g. visited marks sized to the node count)
  /// override this to reuse the allocation across a chunk's queries; the
  /// default ignores the buffer and forwards to RangeQuery.
  virtual std::vector<ObjectId> RangeQueryWithScratch(
      const QueryDistanceFn& query, double epsilon, QueryStats* stats,
      std::vector<uint8_t>* scratch) const {
    (void)scratch;
    return RangeQuery(query, epsilon, stats);
  }
};

}  // namespace subseq

#endif  // SUBSEQ_METRIC_RANGE_INDEX_H_
