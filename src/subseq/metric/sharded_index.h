// ShardedIndex — horizontal partitioning of the window catalog across K
// independent per-shard indexes.
//
// A monolithic index caps the catalog at one node's memory and serializes
// most of its build (metric inserts are inherently sequential for the
// reference net and cover tree). Sharding splits the ObjectId range
// [0, n) into K contiguous shards, builds one inner index of any backend
// per shard — in parallel on the shared ThreadPool — and answers queries
// by fanning a sub-query to every shard and merging hits in shard order.
// Because shards cover disjoint contiguous id ranges and every inner
// index is exact, the merged hit *set* equals the monolithic index's for
// any query; stats roll up exactly (per-shard counts sum to the totals,
// per-query splits sum slot-wise). This is the stepping stone to
// per-shard eviction and multi-node placement: a shard is a closed,
// independently rebuildable unit.

#ifndef SUBSEQ_METRIC_SHARDED_INDEX_H_
#define SUBSEQ_METRIC_SHARDED_INDEX_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "subseq/core/status.h"
#include "subseq/metric/range_index.h"

namespace subseq {

class SnapshotFile;
class SnapshotWriter;

/// A contiguous ObjectId sub-range of a parent oracle presented as a
/// self-contained oracle with local ids 0..size-1. Local id i is parent
/// id offset + i. The parent must outlive the shard view.
class ShardOracle final : public DistanceOracle {
 public:
  ShardOracle(const DistanceOracle& parent, int32_t offset, int32_t size)
      : parent_(parent), offset_(offset), size_(size) {}

  int32_t size() const override { return size_; }

  double Distance(ObjectId a, ObjectId b) const override {
    return parent_.Distance(a + offset_, b + offset_);
  }

  double DistanceBounded(ObjectId a, ObjectId b,
                         double upper_bound) const override {
    return parent_.DistanceBounded(a + offset_, b + offset_, upper_bound);
  }

  /// First parent id of the range.
  int32_t offset() const { return offset_; }

 private:
  const DistanceOracle& parent_;
  int32_t offset_;
  int32_t size_;
};

/// Builds the inner index of one shard over its oracle view. Invoked once
/// per shard, possibly concurrently from pool workers; the oracle
/// reference stays valid for the life of the ShardedIndex. `shard` is the
/// shard number (diagnostics / per-shard seeding).
using ShardIndexFactory = std::function<Result<std::unique_ptr<RangeIndex>>(
    const DistanceOracle& shard_oracle, int32_t shard)>;

/// Serializes one shard's inner index as sections under `prefix`. The
/// composition layer (frame) supplies this so ShardedIndex stays
/// backend-agnostic.
using ShardIndexSaver = std::function<Status(
    const RangeIndex& inner, SnapshotWriter& writer,
    const std::string& prefix)>;

/// Loads one shard's inner index from sections under `prefix`.
using ShardIndexLoader = std::function<Result<std::unique_ptr<RangeIndex>>(
    const SnapshotFile& file, const std::string& prefix,
    const DistanceOracle& shard_oracle, int32_t shard)>;

/// Sharding tunables.
struct ShardedIndexOptions {
  /// Requested shard count; resolved via ExecContext::ResolvedShards
  /// (clamped to [1, object count]).
  int32_t num_shards = 2;
  /// Thread budget for the cross-shard build and query fan-out. Inner
  /// indexes invoked from pool workers run their own parallel sections
  /// inline, so the fan-out never oversubscribes the pool.
  ExecContext exec;
};

/// K contiguous per-shard indexes behind the RangeIndex interface.
///
/// Contracts on top of RangeIndex's:
///  * shard s covers parent ids [shard_begin(s), shard_begin(s+1)), the
///    even contiguous split of [0, n) (first n % K shards one larger);
///  * RangeQuery / BatchRangeQuery results are the shard-order
///    concatenation of inner results with ids translated back to parent
///    ids — deterministic for a fixed shard count at any thread budget;
///  * per-query stats are the exact slot-wise sum of the per-shard
///    splits, and the sink totals equal the sum over shards (checked:
///    a shard misreporting its result_count aborts).
class ShardedIndex final : public RangeIndex {
 public:
  /// Partitions `oracle` into resolved-K contiguous shards and builds one
  /// inner index per shard via `factory`, in parallel over
  /// `options.exec`. Fails with the first failing shard's status.
  static Result<std::unique_ptr<ShardedIndex>> Build(
      const DistanceOracle& oracle, const ShardIndexFactory& factory,
      ShardedIndexOptions options = {});

  std::string_view name() const override { return name_; }
  int32_t size() const override;

  std::vector<ObjectId> RangeQuery(const QueryDistanceFn& query,
                                   double epsilon,
                                   QueryStats* stats) const override;

  /// Fans the whole batch to every shard (each shard answers all queries
  /// over its id range as one inner BatchRangeQuery, shards in parallel
  /// over `exec`), then merges per query in shard order and rolls the
  /// per-shard stats splits up into exact per-query and batch totals.
  std::vector<std::vector<ObjectId>> BatchRangeQuery(
      std::span<const QueryDistanceFn> queries, double epsilon,
      const ExecContext& exec, StatsSink* sink,
      QueryStats* per_query = nullptr) const override;

  /// Exact global k-NN: each shard contributes its k best, merged by
  /// ascending distance (stable — ties keep shard order, then the inner
  /// index's order) and truncated to k.
  std::vector<Neighbor> NearestNeighbors(const QueryDistanceFn& query,
                                         int32_t k,
                                         QueryStats* stats) const override;

  /// Aggregate over shards: counts and bytes sum, num_levels is the
  /// max, avg_parents is the node-weighted mean.
  SpaceStats ComputeSpaceStats() const override;

  /// Sum of the shards' build computations.
  BuildStats build_stats() const override;

  /// Appends the sharded layout ("<prefix>meta", "begins") followed by
  /// every shard's inner sections (under ShardPrefix(prefix, s)) via
  /// `saver`.
  Status SaveSections(SnapshotWriter& writer, const std::string& prefix,
                      const ShardIndexSaver& saver) const;

  /// Reconstructs a sharded index from snapshot sections. The stored
  /// shard count must equal `expected_shards` (what the caller's options
  /// resolve to) and the stored shard boundaries must equal the even
  /// contiguous split — a loaded index must be the index a fresh build
  /// would produce, including its per-shard stats roll-up.
  static Result<std::unique_ptr<ShardedIndex>> LoadSections(
      const SnapshotFile& file, const std::string& prefix,
      const DistanceOracle& oracle, int32_t expected_shards,
      const ShardIndexLoader& loader);

  /// Writes just the layout sections SaveSections starts with, for a
  /// k-shard index over n objects. The out-of-core builder uses this to
  /// emit a byte-identical sharded block while holding only one shard
  /// in memory at a time.
  static Status WriteShardLayout(SnapshotWriter& writer,
                                 const std::string& prefix, int32_t n,
                                 int32_t k);

  /// Section prefix of shard s: "<prefix>s<s>.".
  static std::string ShardPrefix(const std::string& prefix, int32_t s);

  int32_t num_shards() const {
    return static_cast<int32_t>(shards_.size());
  }
  const RangeIndex& shard(int32_t s) const {
    return *shards_[static_cast<size_t>(s)].index;
  }
  /// First parent id of shard s (shard_begin(num_shards()) == size()).
  int32_t shard_begin(int32_t s) const;

 private:
  struct Shard {
    std::unique_ptr<ShardOracle> oracle;
    std::unique_ptr<RangeIndex> index;
  };

  ShardedIndex() = default;

  /// The query seen by shard s: parent-id query composed with the shard's
  /// local-to-parent translation.
  QueryDistanceFn ShardQuery(const QueryDistanceFn& query, int32_t s) const;

  std::vector<Shard> shards_;
  std::string name_;
};

}  // namespace subseq

#endif  // SUBSEQ_METRIC_SHARDED_INDEX_H_
