// KnnCollector: bounded max-heap of the k best neighbors seen so far.
// Shared by every index's NearestNeighbors implementation.

#ifndef SUBSEQ_METRIC_KNN_H_
#define SUBSEQ_METRIC_KNN_H_

#include <vector>

#include "subseq/metric/range_index.h"

namespace subseq {

/// Collects candidate (id, distance) pairs and keeps the k closest.
/// Ties at the k-th distance are broken toward smaller ids, making the
/// result deterministic regardless of offer order.
class KnnCollector {
 public:
  explicit KnnCollector(int32_t k);

  /// Offers a candidate; keeps it if it beats the current k-th best.
  void Offer(ObjectId id, double distance);

  /// True once k candidates are held.
  bool Full() const { return static_cast<int32_t>(heap_.size()) >= k_; }

  /// The pruning threshold: the k-th best distance, or +infinity while
  /// fewer than k candidates are held. Subtrees whose distance lower
  /// bound is >= this value cannot improve the result (given the
  /// smaller-id tie-break, equal-distance candidates from a pruned
  /// subtree are not needed for correctness of the distances, and the
  /// deterministic tie-break is only guaranteed among offered
  /// candidates).
  double Threshold() const;

  /// Extracts the result, sorted by (distance, id) ascending.
  std::vector<Neighbor> Take();

 private:
  int32_t k_;
  // Max-heap ordered by (distance, id): the worst kept neighbor on top.
  std::vector<Neighbor> heap_;
};

}  // namespace subseq

#endif  // SUBSEQ_METRIC_KNN_H_
