// Text persistence for the reference net: builds are the expensive part
// of the pipeline (millions of distance computations at paper scale), so
// the structure can be saved after construction and reloaded instantly
// against the same oracle.
//
// This is the human-readable single-backend format. The binary,
// checksummed, mmap-able format covering every backend (and whole
// matchers / servers) is the snapshot subsystem — src/subseq/snapshot/
// plus the SaveSections/LoadSections surface on each index and
// SubsequenceMatcher::SaveIndex/LoadIndex/BuildToSnapshot. Prefer
// snapshots for production persistence; this text dump stays for
// debugging and as a second, independent encoding in tests.
//
// Format: a line-oriented text header ("subseq-refnet v1") followed by
// one line per node (object id, top level, duplicates, child edges with
// their stored distances). The oracle itself is NOT serialized — the
// caller must reload the net against an oracle presenting the same
// objects under the same ids and distance; LoadReferenceNet spot-checks a
// sample of stored edge distances against the oracle and fails loudly on
// mismatch.

#ifndef SUBSEQ_METRIC_SERIALIZATION_H_
#define SUBSEQ_METRIC_SERIALIZATION_H_

#include <string>

#include "subseq/core/status.h"
#include "subseq/metric/reference_net.h"

namespace subseq {

/// Writes the net's structure to `path`.
Status SaveReferenceNet(const ReferenceNet& net, const std::string& path);

/// Reads a net written by SaveReferenceNet and re-hangs it on `oracle`.
/// Verifies the format, internal consistency (levels, parent links) and a
/// sample of edge distances against the oracle.
Result<ReferenceNet> LoadReferenceNet(const DistanceOracle& oracle,
                                      const std::string& path);

}  // namespace subseq

#endif  // SUBSEQ_METRIC_SERIALIZATION_H_
