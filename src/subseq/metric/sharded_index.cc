#include "subseq/metric/sharded_index.h"

#include <algorithm>
#include <utility>

#include "subseq/core/check.h"
#include "subseq/exec/parallel_for.h"
#include "subseq/snapshot/reader.h"
#include "subseq/snapshot/writer.h"

namespace subseq {

namespace {

/// Even contiguous split of [0, n) into k parts: part s starts here.
int32_t SplitBegin(int32_t n, int32_t k, int32_t s) {
  const int32_t base = n / k;
  const int32_t extra = n % k;
  return s * base + std::min(s, extra);
}

}  // namespace

Result<std::unique_ptr<ShardedIndex>> ShardedIndex::Build(
    const DistanceOracle& oracle, const ShardIndexFactory& factory,
    ShardedIndexOptions options) {
  ShardedIndexOptions resolved = options;
  resolved.exec.num_shards = options.num_shards;
  const int32_t n = oracle.size();
  const int32_t k = resolved.exec.ResolvedShards(n);

  auto sharded = std::unique_ptr<ShardedIndex>(new ShardedIndex());
  sharded->shards_.resize(static_cast<size_t>(k));
  for (int32_t s = 0; s < k; ++s) {
    const int32_t begin = SplitBegin(n, k, s);
    const int32_t end = SplitBegin(n, k, s + 1);
    sharded->shards_[static_cast<size_t>(s)].oracle =
        std::make_unique<ShardOracle>(oracle, begin, end - begin);
  }

  // Build the inner indexes in parallel: each shard is an independent
  // closed problem, so cross-shard order cannot matter. Statuses land in
  // per-shard slots; the first failure (in shard order, for determinism)
  // wins.
  std::vector<Status> statuses(static_cast<size_t>(k), Status::OK());
  ParallelFor(resolved.exec, k, [&](int64_t lo, int64_t hi, int32_t) {
    for (int64_t s = lo; s < hi; ++s) {
      Shard& shard = sharded->shards_[static_cast<size_t>(s)];
      auto built = factory(*shard.oracle, static_cast<int32_t>(s));
      if (built.ok()) {
        shard.index = std::move(built).value();
        SUBSEQ_CHECK(shard.index != nullptr);
      } else {
        statuses[static_cast<size_t>(s)] = built.status();
      }
    }
  });
  for (const Status& status : statuses) {
    SUBSEQ_RETURN_NOT_OK(status);
  }

  sharded->name_ = "sharded[" + std::to_string(k) + "]:" +
                   std::string(sharded->shards_.front().index->name());
  return sharded;
}

int32_t ShardedIndex::size() const {
  int32_t total = 0;
  for (const Shard& shard : shards_) total += shard.index->size();
  return total;
}

int32_t ShardedIndex::shard_begin(int32_t s) const {
  SUBSEQ_CHECK(s >= 0 && s <= num_shards());
  if (s == num_shards()) {
    const Shard& last = shards_.back();
    return last.oracle->offset() + last.oracle->size();
  }
  return shards_[static_cast<size_t>(s)].oracle->offset();
}

QueryDistanceFn ShardedIndex::ShardQuery(const QueryDistanceFn& query,
                                         int32_t s) const {
  const int32_t offset = shards_[static_cast<size_t>(s)].oracle->offset();
  // Preserve prunability across the shard remap: the inner scan sees
  // shard-local ids, so the lower-bound offset advances by the shard's
  // base while the exact function keeps translating ids. Decisions are
  // block-grouping independent (QueryLowerBound contract), so pruning
  // is identical sharded and unsharded.
  if (const PrunableQueryFn* prunable = GetPrunable(query)) {
    PrunableQueryFn local;
    local.fn = [&query, offset](ObjectId id) { return query(id + offset); };
    local.lower_bound = prunable->lower_bound;
    local.lb_offset = prunable->lb_offset + offset;
    return QueryDistanceFn(std::move(local));
  }
  return [&query, offset](ObjectId local) { return query(local + offset); };
}

std::vector<ObjectId> ShardedIndex::RangeQuery(const QueryDistanceFn& query,
                                               double epsilon,
                                               QueryStats* stats) const {
  std::vector<ObjectId> merged;
  int64_t computations = 0;
  int64_t pruned = 0;
  int64_t kim_pruned = 0;
  int64_t erp_pruned = 0;
  int64_t probed = 0;
  int64_t skipped = 0;
  for (int32_t s = 0; s < num_shards(); ++s) {
    const int32_t offset = shards_[static_cast<size_t>(s)].oracle->offset();
    QueryStats shard_stats;
    const std::vector<ObjectId> local =
        shards_[static_cast<size_t>(s)].index->RangeQuery(
            ShardQuery(query, s), epsilon, &shard_stats);
    SUBSEQ_CHECK(shard_stats.result_count ==
                 static_cast<int64_t>(local.size()));
    computations += shard_stats.distance_computations;
    pruned += shard_stats.lower_bound_pruned;
    kim_pruned += shard_stats.lb_kim_pruned;
    erp_pruned += shard_stats.lb_erp_pruned;
    probed += shard_stats.cells_probed;
    skipped += shard_stats.cells_skipped;
    merged.reserve(merged.size() + local.size());
    for (const ObjectId id : local) merged.push_back(id + offset);
  }
  if (stats != nullptr) {
    stats->distance_computations = computations;
    stats->result_count = static_cast<int64_t>(merged.size());
    stats->lower_bound_pruned = pruned;
    stats->lb_kim_pruned = kim_pruned;
    stats->lb_erp_pruned = erp_pruned;
    stats->cells_probed = probed;
    stats->cells_skipped = skipped;
  }
  return merged;
}

std::vector<std::vector<ObjectId>> ShardedIndex::BatchRangeQuery(
    std::span<const QueryDistanceFn> queries, double epsilon,
    const ExecContext& exec, StatsSink* sink, QueryStats* per_query) const {
  const size_t num_queries = queries.size();
  const int32_t k = num_shards();

  // Phase 1 — fan out: every shard answers the whole batch over its id
  // range as one inner BatchRangeQuery. Shards run in parallel; inner
  // parallel sections called from pool workers run inline, so the two
  // levels never oversubscribe. The shared sink receives exact totals
  // (per-shard counts published atomically); per-query splits are
  // collected per shard and rolled up in phase 2.
  std::vector<std::vector<std::vector<ObjectId>>> shard_results(
      static_cast<size_t>(k));
  std::vector<std::vector<QueryStats>> shard_splits(
      per_query != nullptr ? static_cast<size_t>(k) : 0);
  ParallelFor(exec, k, [&](int64_t lo, int64_t hi, int32_t) {
    for (int64_t s = lo; s < hi; ++s) {
      std::vector<QueryDistanceFn> local;
      local.reserve(num_queries);
      for (const QueryDistanceFn& query : queries) {
        local.push_back(ShardQuery(query, static_cast<int32_t>(s)));
      }
      QueryStats* split = nullptr;
      if (per_query != nullptr) {
        shard_splits[static_cast<size_t>(s)].resize(num_queries);
        split = shard_splits[static_cast<size_t>(s)].data();
      }
      shard_results[static_cast<size_t>(s)] =
          shards_[static_cast<size_t>(s)].index->BatchRangeQuery(
              local, epsilon, exec, sink, split);
    }
  });

  // Phase 2 — shard-order merge + exact per-query roll-up. Both are
  // slot-addressed, so the merge is deterministic for a fixed shard
  // count regardless of the thread budget above.
  std::vector<std::vector<ObjectId>> results(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    std::vector<ObjectId>& merged = results[q];
    QueryStats rolled;
    for (int32_t s = 0; s < k; ++s) {
      const int32_t offset = shards_[static_cast<size_t>(s)].oracle->offset();
      const std::vector<ObjectId>& local =
          shard_results[static_cast<size_t>(s)][q];
      merged.reserve(merged.size() + local.size());
      for (const ObjectId id : local) merged.push_back(id + offset);
      if (per_query != nullptr) {
        rolled.distance_computations +=
            shard_splits[static_cast<size_t>(s)][q].distance_computations;
        rolled.result_count +=
            shard_splits[static_cast<size_t>(s)][q].result_count;
        rolled.lower_bound_pruned +=
            shard_splits[static_cast<size_t>(s)][q].lower_bound_pruned;
        rolled.lb_kim_pruned +=
            shard_splits[static_cast<size_t>(s)][q].lb_kim_pruned;
        rolled.lb_erp_pruned +=
            shard_splits[static_cast<size_t>(s)][q].lb_erp_pruned;
        rolled.cells_probed +=
            shard_splits[static_cast<size_t>(s)][q].cells_probed;
        rolled.cells_skipped +=
            shard_splits[static_cast<size_t>(s)][q].cells_skipped;
        rolled.delta_windows_probed +=
            shard_splits[static_cast<size_t>(s)][q].delta_windows_probed;
        rolled.tombstones_masked +=
            shard_splits[static_cast<size_t>(s)][q].tombstones_masked;
      }
    }
    if (per_query != nullptr) {
      // The roll-up is only exact if every shard billed this slot for
      // exactly the results it returned in this slot (the ordering
      // contract of RangeIndex::BatchRangeQuery's per-query split).
      SUBSEQ_CHECK(rolled.result_count ==
                   static_cast<int64_t>(merged.size()));
      per_query[q] = rolled;
    }
  }
  return results;
}

std::vector<Neighbor> ShardedIndex::NearestNeighbors(
    const QueryDistanceFn& query, int32_t k, QueryStats* stats) const {
  std::vector<Neighbor> merged;
  int64_t computations = 0;
  for (int32_t s = 0; s < num_shards(); ++s) {
    const int32_t offset = shards_[static_cast<size_t>(s)].oracle->offset();
    QueryStats shard_stats;
    std::vector<Neighbor> local =
        shards_[static_cast<size_t>(s)].index->NearestNeighbors(
            ShardQuery(query, s), k, &shard_stats);
    computations += shard_stats.distance_computations;
    for (Neighbor& n : local) {
      n.id += offset;
      merged.push_back(n);
    }
  }
  // Each shard returned its k closest, so the global k closest are all
  // present. Stable sort keeps (shard order, inner order) among exact
  // distance ties — the same index-dependent freedom RangeIndex allows.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Neighbor& a, const Neighbor& b) {
                     return a.distance < b.distance;
                   });
  if (k >= 0 && merged.size() > static_cast<size_t>(k)) {
    merged.resize(static_cast<size_t>(k));
  }
  if (stats != nullptr) {
    stats->distance_computations = computations;
    stats->result_count = static_cast<int64_t>(merged.size());
  }
  return merged;
}

SpaceStats ShardedIndex::ComputeSpaceStats() const {
  SpaceStats total;
  double weighted_parents = 0.0;
  for (const Shard& shard : shards_) {
    const SpaceStats s = shard.index->ComputeSpaceStats();
    total.num_objects += s.num_objects;
    total.num_nodes += s.num_nodes;
    total.num_list_entries += s.num_list_entries;
    total.num_levels = std::max(total.num_levels, s.num_levels);
    total.approx_bytes += s.approx_bytes;
    weighted_parents += s.avg_parents * static_cast<double>(s.num_nodes);
  }
  if (total.num_nodes > 0) {
    total.avg_parents = weighted_parents / static_cast<double>(total.num_nodes);
  }
  total.approx_bytes +=
      static_cast<int64_t>(shards_.size() * (sizeof(Shard) +
                                             sizeof(ShardOracle)));
  return total;
}

BuildStats ShardedIndex::build_stats() const {
  BuildStats total;
  for (const Shard& shard : shards_) {
    total.distance_computations +=
        shard.index->build_stats().distance_computations;
  }
  return total;
}

namespace {

struct ShardedMetaRec {
  int32_t num_shards;
  int32_t total_objects;
};
static_assert(sizeof(ShardedMetaRec) == 8);

}  // namespace

std::string ShardedIndex::ShardPrefix(const std::string& prefix, int32_t s) {
  return prefix + "s" + std::to_string(s) + ".";
}

Status ShardedIndex::WriteShardLayout(SnapshotWriter& writer,
                                      const std::string& prefix, int32_t n,
                                      int32_t k) {
  ShardedMetaRec meta{};
  meta.num_shards = k;
  meta.total_objects = n;
  SUBSEQ_RETURN_NOT_OK(writer.AppendPodStruct(prefix + "meta", meta));
  std::vector<int32_t> begins(static_cast<size_t>(k) + 1);
  for (int32_t s = 0; s <= k; ++s) {
    begins[static_cast<size_t>(s)] = SplitBegin(n, k, s);
  }
  return writer.AppendPodSection<int32_t>(prefix + "begins", begins);
}

Status ShardedIndex::SaveSections(SnapshotWriter& writer,
                                  const std::string& prefix,
                                  const ShardIndexSaver& saver) const {
  const int32_t k = num_shards();
  SUBSEQ_RETURN_NOT_OK(WriteShardLayout(writer, prefix, size(), k));
  for (int32_t s = 0; s < k; ++s) {
    SUBSEQ_RETURN_NOT_OK(saver(*shards_[static_cast<size_t>(s)].index, writer,
                               ShardPrefix(prefix, s)));
  }
  return Status::OK();
}

Result<std::unique_ptr<ShardedIndex>> ShardedIndex::LoadSections(
    const SnapshotFile& file, const std::string& prefix,
    const DistanceOracle& oracle, int32_t expected_shards,
    const ShardIndexLoader& loader) {
  ShardedMetaRec meta{};
  SUBSEQ_RETURN_NOT_OK(ReadPodStruct(file, prefix + "meta", &meta));
  const auto bad = [&](const std::string& why) {
    return Status::InvalidArgument("sharded snapshot sections '" + prefix +
                                   "*': " + why);
  };
  if (meta.total_objects != oracle.size()) {
    return bad("covers " + std::to_string(meta.total_objects) +
               " objects but the oracle holds " +
               std::to_string(oracle.size()));
  }
  const int32_t k = meta.num_shards;
  if (k != expected_shards) {
    return bad("saved with " + std::to_string(k) +
               " shards but the current options resolve to " +
               std::to_string(expected_shards) +
               "; set exec.num_shards to match the snapshot (a loaded "
               "index must equal the fresh build it replaces)");
  }
  if (k < 1 || k > std::max(1, meta.total_objects)) {
    return bad("shard count " + std::to_string(k) + " out of range");
  }
  std::vector<int32_t> begins;
  SUBSEQ_RETURN_NOT_OK(
      ReadPodSection<int32_t>(file, prefix + "begins", &begins));
  if (static_cast<int32_t>(begins.size()) != k + 1) {
    return bad("begins section holds " + std::to_string(begins.size()) +
               " entries, expected " + std::to_string(k + 1));
  }
  for (int32_t s = 0; s <= k; ++s) {
    if (begins[static_cast<size_t>(s)] != SplitBegin(meta.total_objects, k,
                                                     s)) {
      return bad("shard " + std::to_string(s) + " begins at " +
                 std::to_string(begins[static_cast<size_t>(s)]) +
                 ", not the even contiguous split");
    }
  }

  auto sharded = std::unique_ptr<ShardedIndex>(new ShardedIndex());
  sharded->shards_.resize(static_cast<size_t>(k));
  for (int32_t s = 0; s < k; ++s) {
    const int32_t begin = begins[static_cast<size_t>(s)];
    const int32_t end = begins[static_cast<size_t>(s) + 1];
    Shard& shard = sharded->shards_[static_cast<size_t>(s)];
    shard.oracle = std::make_unique<ShardOracle>(oracle, begin, end - begin);
    auto inner = loader(file, ShardPrefix(prefix, s), *shard.oracle, s);
    if (!inner.ok()) return inner.status();
    shard.index = std::move(inner).value();
    SUBSEQ_CHECK(shard.index != nullptr);
    if (shard.index->size() != end - begin) {
      return bad("shard " + std::to_string(s) + " loaded " +
                 std::to_string(shard.index->size()) + " objects, expected " +
                 std::to_string(end - begin));
    }
  }
  sharded->name_ = "sharded[" + std::to_string(k) + "]:" +
                   std::string(sharded->shards_.front().index->name());
  return sharded;
}

}  // namespace subseq
