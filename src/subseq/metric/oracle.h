// DistanceOracle: how metric indexes see the data.
//
// The indexes in this library (reference net, cover tree, MV pivots) are
// fully generic: they never touch sequences. They index opaque dense
// ObjectIds and obtain distances from a DistanceOracle (database-to-
// database) at build time and from a QueryDistanceFn (query-to-database)
// at query time. Any metric domain can be indexed this way; the
// subsequence framework adapts fixed-length windows + a SequenceDistance
// through frame/window_oracle.h.

#ifndef SUBSEQ_METRIC_ORACLE_H_
#define SUBSEQ_METRIC_ORACLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "subseq/core/types.h"

namespace subseq {

/// Distance access to a fixed collection of n objects with ids 0..n-1.
/// Implementations must be symmetric with d(x, x) = 0 and satisfy the
/// triangle inequality (the indexes' pruning is unsound otherwise).
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// Number of indexed objects.
  virtual int32_t size() const = 0;

  /// Distance between database objects a and b.
  virtual double Distance(ObjectId a, ObjectId b) const = 0;

  /// Early-abandoning variant: must return the exact distance when it is
  /// <= upper_bound and may return any value > upper_bound otherwise.
  /// Index construction uses this to skip most of the DP work on far
  /// pairs. The default forwards to Distance().
  virtual double DistanceBounded(ObjectId a, ObjectId b,
                                 double upper_bound) const {
    (void)upper_bound;
    return Distance(a, b);
  }
};

/// Distance from an (external) query object to a database object.
using QueryDistanceFn = std::function<double(ObjectId)>;

/// Per-query lower-bound provider for scan prefiltering (LB_Keogh is
/// the shipped instance; see frame/lb_prefilter.h). LowerBoundBlock
/// fills out[i] with an admissible lower bound on query(begin + i) for
/// i in [0, count): a candidate whose bound exceeds the scan's cutoff
/// can be skipped without ever evaluating the exact distance, with no
/// false dismissals. Bounds follow the early-abandon contract — exact
/// when <= cutoff, any value > cutoff otherwise — and the
/// (bound > cutoff) DECISION must be independent of how candidates are
/// grouped into blocks, so sharded == unsharded pruning holds.
class QueryLowerBound {
 public:
  virtual ~QueryLowerBound() = default;

  virtual void LowerBoundBlock(ObjectId begin, int32_t count, double cutoff,
                               double* out) const = 0;
};

/// A QueryDistanceFn payload carrying an optional lower-bound provider
/// next to the exact distance function. It is stored INSIDE the
/// std::function, so every pass-through call site — the serving
/// coalescer, batching, counting wrappers — forwards it untouched;
/// prune-capable backends (LinearScan) recover it via GetPrunable.
/// Wrapping the function in a fresh lambda (as counting decorators do)
/// deliberately sheds prunability: such queries scan unpruned, which
/// keeps their executed-call counts exact.
struct PrunableQueryFn {
  std::function<double(ObjectId)> fn;
  std::shared_ptr<const QueryLowerBound> lower_bound;
  /// Added to scanned ids before LowerBoundBlock: an inner shard scans
  /// shard-local ids while the provider speaks global ids.
  ObjectId lb_offset = 0;

  double operator()(ObjectId id) const { return fn(id); }
};

/// The PrunableQueryFn payload of a query function, or nullptr when the
/// query carries no lower-bound provider.
inline const PrunableQueryFn* GetPrunable(const QueryDistanceFn& query) {
  return query.target<PrunableQueryFn>();
}

/// The prune cutoff for a range scan at `epsilon`: a lower bound must
/// exceed this — not merely epsilon — before its candidate is skipped.
/// The relative + absolute margin absorbs floating-point summation
/// noise between an admissible real-arithmetic bound and the computed
/// distance, so rounding at the boundary can never cause a false
/// dismissal.
inline double LowerBoundPruneCutoff(double epsilon) {
  return epsilon * (1.0 + 1e-9) + 1e-12;
}

/// An oracle over an explicit vector of points with a callable distance —
/// handy for tests and small in-memory datasets.
template <typename Point, typename Fn>
class VectorOracle final : public DistanceOracle {
 public:
  VectorOracle(std::vector<Point> points, Fn fn)
      : points_(std::move(points)), fn_(std::move(fn)) {}

  int32_t size() const override {
    return static_cast<int32_t>(points_.size());
  }

  double Distance(ObjectId a, ObjectId b) const override {
    return fn_(points_[static_cast<size_t>(a)],
               points_[static_cast<size_t>(b)]);
  }

  const Point& point(ObjectId id) const {
    return points_[static_cast<size_t>(id)];
  }

  /// A query function measuring from `q` using this oracle's distance.
  QueryDistanceFn QueryFrom(Point q) const {
    return [this, q = std::move(q)](ObjectId id) {
      return fn_(q, points_[static_cast<size_t>(id)]);
    };
  }

 private:
  std::vector<Point> points_;
  Fn fn_;
};

}  // namespace subseq

#endif  // SUBSEQ_METRIC_ORACLE_H_
