// DistanceOracle: how metric indexes see the data.
//
// The indexes in this library (reference net, cover tree, MV pivots) are
// fully generic: they never touch sequences. They index opaque dense
// ObjectIds and obtain distances from a DistanceOracle (database-to-
// database) at build time and from a QueryDistanceFn (query-to-database)
// at query time. Any metric domain can be indexed this way; the
// subsequence framework adapts fixed-length windows + a SequenceDistance
// through frame/window_oracle.h.

#ifndef SUBSEQ_METRIC_ORACLE_H_
#define SUBSEQ_METRIC_ORACLE_H_

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "subseq/core/types.h"

namespace subseq {

/// Distance access to a fixed collection of n objects with ids 0..n-1.
/// Implementations must be symmetric with d(x, x) = 0 and satisfy the
/// triangle inequality (the indexes' pruning is unsound otherwise).
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// Number of indexed objects.
  virtual int32_t size() const = 0;

  /// Distance between database objects a and b.
  virtual double Distance(ObjectId a, ObjectId b) const = 0;

  /// Early-abandoning variant: must return the exact distance when it is
  /// <= upper_bound and may return any value > upper_bound otherwise.
  /// Index construction uses this to skip most of the DP work on far
  /// pairs. The default forwards to Distance().
  virtual double DistanceBounded(ObjectId a, ObjectId b,
                                 double upper_bound) const {
    (void)upper_bound;
    return Distance(a, b);
  }
};

/// Distance from an (external) query object to a database object.
using QueryDistanceFn = std::function<double(ObjectId)>;

/// Per-stage prune attribution for one LowerBoundBlock call. The
/// counters are observability only — pruned candidates stay fully
/// billed in distance_computations regardless of which stage cut them.
struct LbBlockCounts {
  int64_t kim_pruned = 0;       // cut by the O(1) LB_Kim stage
  int64_t envelope_pruned = 0;  // cut by the LB_Keogh envelope stage
  int64_t erp_pruned = 0;       // cut by the |sum(Q)-sum(C)| ERP stage
};

/// Opaque candidate-side precomputation a QueryLowerBound can be bound
/// to: a routed cell materializes its members' windows (and their
/// cascade features) cell-contiguously so bounds evaluate over dense
/// cell-local ids instead of scattered global ones. Concrete providers
/// downcast to the payload type they materialized.
class LowerBoundPayloads {
 public:
  virtual ~LowerBoundPayloads() = default;
};

/// Implemented by oracles whose lower-bound providers can be rebound to
/// a member subset (see frame/window_oracle.h). `members[i]` is the
/// global id that becomes local id i in the returned payload.
class LowerBoundPayloadSource {
 public:
  virtual ~LowerBoundPayloadSource() = default;

  virtual std::shared_ptr<const LowerBoundPayloads> MaterializeLbPayloads(
      std::span<const ObjectId> members) const = 0;
};

/// Per-query lower-bound provider for scan prefiltering (the LB_Kim →
/// LB_Keogh / LB_ERP cascade is the shipped instance; see
/// frame/lb_prefilter.h). LowerBoundBlock fills out[i] with an
/// admissible lower bound on query(begin + i) for i in [0, count): a
/// candidate whose bound exceeds the scan's cutoff can be skipped
/// without ever evaluating the exact distance, with no false
/// dismissals. Bounds follow the early-abandon contract — exact
/// when <= cutoff, any value > cutoff otherwise — and the
/// (bound > cutoff) DECISION must be independent of how candidates are
/// grouped into blocks, so sharded == unsharded pruning holds.
class QueryLowerBound {
 public:
  virtual ~QueryLowerBound() = default;

  virtual void LowerBoundBlock(ObjectId begin, int32_t count, double cutoff,
                               double* out) const = 0;

  /// LowerBoundBlock plus per-stage prune attribution. The default
  /// forwards to LowerBoundBlock and attributes every pruned candidate
  /// to the envelope stage, so single-stage providers (tests, custom
  /// bounds) need not override. Implementations must keep the bounds
  /// in `out` — and therefore the prune decisions — identical to
  /// LowerBoundBlock's; `counts` is additive observability only.
  virtual void LowerBoundBlockStaged(ObjectId begin, int32_t count,
                                     double cutoff, double* out,
                                     LbBlockCounts* counts) const {
    LowerBoundBlock(begin, count, cutoff, out);
    for (int32_t i = 0; i < count; ++i) {
      if (out[i] > cutoff) ++counts->envelope_pruned;
    }
  }

  /// Rebinds this provider to a materialized candidate payload (a
  /// routed cell's contiguous member windows), returning a provider
  /// that speaks payload-local ids 0..count-1 and produces the SAME
  /// bound values the original produces for the corresponding global
  /// ids. The default — correct for providers without payload support —
  /// returns nullptr, and callers must then fall back to scanning
  /// unpruned (or to the global provider, where ids allow).
  virtual std::shared_ptr<const QueryLowerBound> BindTo(
      std::shared_ptr<const LowerBoundPayloads> payloads) const {
    (void)payloads;
    return nullptr;
  }
};

/// A QueryDistanceFn payload carrying an optional lower-bound provider
/// next to the exact distance function. It is stored INSIDE the
/// std::function, so every pass-through call site — the serving
/// coalescer, batching, counting wrappers — forwards it untouched;
/// prune-capable backends (LinearScan) recover it via GetPrunable.
/// Wrapping the function in a fresh lambda (as counting decorators do)
/// deliberately sheds prunability: such queries scan unpruned, which
/// keeps their executed-call counts exact.
struct PrunableQueryFn {
  std::function<double(ObjectId)> fn;
  std::shared_ptr<const QueryLowerBound> lower_bound;
  /// Added to scanned ids before LowerBoundBlock: an inner shard scans
  /// shard-local ids while the provider speaks global ids.
  ObjectId lb_offset = 0;

  double operator()(ObjectId id) const { return fn(id); }
};

/// The PrunableQueryFn payload of a query function, or nullptr when the
/// query carries no lower-bound provider.
inline const PrunableQueryFn* GetPrunable(const QueryDistanceFn& query) {
  return query.target<PrunableQueryFn>();
}

/// The prune cutoff for a range scan at `epsilon`: a lower bound must
/// exceed this — not merely epsilon — before its candidate is skipped.
/// The relative + absolute margin absorbs floating-point summation
/// noise between an admissible real-arithmetic bound and the computed
/// distance, so rounding at the boundary can never cause a false
/// dismissal.
inline double LowerBoundPruneCutoff(double epsilon) {
  return epsilon * (1.0 + 1e-9) + 1e-12;
}

/// An oracle over an explicit vector of points with a callable distance —
/// handy for tests and small in-memory datasets.
template <typename Point, typename Fn>
class VectorOracle final : public DistanceOracle {
 public:
  VectorOracle(std::vector<Point> points, Fn fn)
      : points_(std::move(points)), fn_(std::move(fn)) {}

  int32_t size() const override {
    return static_cast<int32_t>(points_.size());
  }

  double Distance(ObjectId a, ObjectId b) const override {
    return fn_(points_[static_cast<size_t>(a)],
               points_[static_cast<size_t>(b)]);
  }

  const Point& point(ObjectId id) const {
    return points_[static_cast<size_t>(id)];
  }

  /// A query function measuring from `q` using this oracle's distance.
  QueryDistanceFn QueryFrom(Point q) const {
    return [this, q = std::move(q)](ObjectId id) {
      return fn_(q, points_[static_cast<size_t>(id)]);
    };
  }

 private:
  std::vector<Point> points_;
  Fn fn_;
};

}  // namespace subseq

#endif  // SUBSEQ_METRIC_ORACLE_H_
