#include "subseq/metric/cover_tree.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <queue>

#include "subseq/distance/distance.h"

#include "subseq/core/check.h"
#include "subseq/core/rng.h"
#include "subseq/metric/knn.h"
#include "subseq/snapshot/reader.h"
#include "subseq/snapshot/writer.h"

namespace subseq {

CoverTree::CoverTree(const DistanceOracle& oracle, CoverTreeOptions options)
    : oracle_(oracle), options_(options) {
  SUBSEQ_CHECK(options_.base_radius > 0.0);
}

CoverTree CoverTree::BuildAll(const DistanceOracle& oracle,
                              CoverTreeOptions options) {
  CoverTree tree(oracle, options);
  for (ObjectId id = 0; id < oracle.size(); ++id) {
    const Status s = tree.Insert(id);
    SUBSEQ_CHECK(s.ok());
  }
  return tree;
}

double CoverTree::Radius(int32_t level) const {
  return std::ldexp(options_.base_radius, level);
}

std::vector<CoverTree::Edge>* CoverTree::FindList(Node& node,
                                                  int32_t level) {
  for (auto& [lvl, members] : node.lists) {
    if (lvl == level) return &members;
  }
  return nullptr;
}

const std::vector<CoverTree::Edge>* CoverTree::FindList(const Node& node,
                                                        int32_t level) const {
  for (const auto& [lvl, members] : node.lists) {
    if (lvl == level) return &members;
  }
  return nullptr;
}

Status CoverTree::Insert(ObjectId id) {
  if (Contains(id)) {
    return Status::AlreadyExists("object already in cover tree");
  }
  ++num_objects_;
  if (root_ < 0) {
    nodes_.push_back(Node{id, 0, -1, {}, {}});
    root_ = 0;
    object_node_[id] = 0;
    return Status::OK();
  }

  // Bounded computations are cacheable: descent bounds only shrink (see
  // the matching comment in reference_net.cc).
  std::unordered_map<int32_t, double> cache;
  auto dist = [&](int32_t ni, double bound) {
    auto it = cache.find(ni);
    if (it != cache.end()) return it->second;
    const double d = oracle_.DistanceBounded(
        id, nodes_[static_cast<size_t>(ni)].object, bound);
    ++build_stats_.distance_computations;
    cache.emplace(ni, d);
    return d;
  };

  Node& root = nodes_[static_cast<size_t>(root_)];
  const double d_root = dist(root_, kInfiniteDistance);
  if (d_root == 0.0) {
    root.duplicates.push_back(id);
    object_node_[id] = root_;
    return Status::OK();
  }
  while (d_root > Radius(root.top_level)) ++root.top_level;

  // Same wide-set descent as the reference net; the only difference is
  // that placement picks a single (closest) parent.
  int32_t level = root.top_level;
  std::vector<int32_t> wide = {root_};
  for (;;) {
    std::vector<int32_t> candidates = wide;
    for (const int32_t ni : wide) {
      const std::vector<Edge>* list =
          FindList(nodes_[static_cast<size_t>(ni)], level);
      if (list != nullptr) {
        for (const Edge& edge : *list) candidates.push_back(edge.child);
      }
    }

    std::vector<int32_t> wide_next;
    bool has_narrow = false;
    for (const int32_t ni : candidates) {
      const double d = dist(ni, Radius(level));
      if (d == 0.0) {
        nodes_[static_cast<size_t>(ni)].duplicates.push_back(id);
        object_node_[id] = ni;
        return Status::OK();
      }
      if (d <= Radius(level)) {
        wide_next.push_back(ni);
        if (d <= Radius(level - 1)) has_narrow = true;
      }
    }
    std::sort(wide_next.begin(), wide_next.end());
    wide_next.erase(std::unique(wide_next.begin(), wide_next.end()),
                    wide_next.end());

    if (!has_narrow) {
      int32_t best_parent = -1;
      double best_d = kInfiniteDistance;
      for (const int32_t ni : wide) {
        const double d = dist(ni, Radius(level));
        if (d <= Radius(level) && d < best_d) {
          best_d = d;
          best_parent = ni;
        }
      }
      SUBSEQ_CHECK(best_parent >= 0);
      const int32_t node_index = static_cast<int32_t>(nodes_.size());
      nodes_.push_back(Node{id, level - 1, best_parent, {}, {}});
      object_node_[id] = node_index;
      Node& p = nodes_[static_cast<size_t>(best_parent)];
      std::vector<Edge>* list = FindList(p, level);
      if (list == nullptr) {
        p.lists.emplace_back(level, std::vector<Edge>{});
        std::sort(p.lists.begin(), p.lists.end(),
                  [](const auto& a, const auto& b) {
                    return a.first > b.first;
                  });
        list = FindList(p, level);
      }
      list->push_back(Edge{node_index, best_d});
      return Status::OK();
    }
    wide = std::move(wide_next);
    --level;
  }
}

bool CoverTree::Contains(ObjectId id) const {
  return object_node_.find(id) != object_node_.end();
}

std::vector<ObjectId> CoverTree::RangeQuery(const QueryDistanceFn& query,
                                            double epsilon,
                                            QueryStats* stats) const {
  std::vector<uint8_t> emitted;
  return RangeQueryWithScratch(query, epsilon, stats, &emitted);
}

std::vector<ObjectId> CoverTree::RangeQueryWithScratch(
    const QueryDistanceFn& query, double epsilon, QueryStats* stats,
    std::vector<uint8_t>* emitted_scratch) const {
  std::vector<ObjectId> results;
  int64_t computations = 0;
  if (root_ >= 0) {
    std::vector<uint8_t>& emitted = *emitted_scratch;
    emitted.assign(nodes_.size(), 0);
    std::deque<int32_t> queue = {root_};
    while (!queue.empty()) {
      const int32_t ni = queue.front();
      queue.pop_front();
      if (emitted[static_cast<size_t>(ni)]) continue;
      const Node& n = nodes_[static_cast<size_t>(ni)];
      ++computations;
      const double d = query(n.object);
      const double subtree_bound = Radius(n.top_level + 1);
      if (d + subtree_bound <= epsilon) {
        CollectSubtree(ni, &results, &emitted);
        continue;
      }
      if (d - subtree_bound > epsilon) continue;
      if (d <= epsilon) {
        results.push_back(n.object);
        results.insert(results.end(), n.duplicates.begin(),
                       n.duplicates.end());
      }
      for (const auto& [list_level, members] : n.lists) {
        // Per-edge triangle bounds, identical to the reference net's
        // strengthened Algorithm 3 — but a tree gives each child only one
        // parent, i.e., a single chance to be decided cheaply.
        if (d - Radius(list_level + 1) > epsilon) continue;
        const double child_subtree_bound = Radius(list_level);
        for (const Edge& edge : members) {
          const int32_t child = edge.child;
          if (emitted[static_cast<size_t>(child)]) continue;
          const double lower = std::fabs(d - edge.distance);
          const double upper = d + edge.distance;
          if (lower - child_subtree_bound > epsilon) {
            emitted[static_cast<size_t>(child)] = 1;
            continue;
          }
          if (upper + child_subtree_bound <= epsilon) {
            CollectSubtree(child, &results, &emitted);
            continue;
          }
          const Node& c = nodes_[static_cast<size_t>(child)];
          if (c.lists.empty()) {
            if (upper <= epsilon) {
              results.push_back(c.object);
              results.insert(results.end(), c.duplicates.begin(),
                             c.duplicates.end());
              emitted[static_cast<size_t>(child)] = 1;
              continue;
            }
            if (lower > epsilon) {
              emitted[static_cast<size_t>(child)] = 1;
              continue;
            }
          }
          queue.push_back(child);
        }
      }
    }
  }
  if (stats != nullptr) {
    stats->distance_computations = computations;
    stats->result_count = static_cast<int64_t>(results.size());
  }
  return results;
}

std::vector<Neighbor> CoverTree::NearestNeighbors(
    const QueryDistanceFn& query, int32_t k, QueryStats* stats) const {
  KnnCollector collector(k);
  int64_t computations = 0;
  if (root_ >= 0 && k > 0) {
    using Entry = std::pair<double, int32_t>;  // (lower bound, node)
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        frontier;
    frontier.emplace(0.0, root_);
    while (!frontier.empty()) {
      const auto [bound, ni] = frontier.top();
      frontier.pop();
      if (collector.Full() && bound >= collector.Threshold()) break;
      const Node& n = nodes_[static_cast<size_t>(ni)];
      ++computations;
      const double d = query(n.object);
      collector.Offer(n.object, d);
      for (const ObjectId dup : n.duplicates) collector.Offer(dup, d);
      for (const auto& [list_level, members] : n.lists) {
        const double child_subtree_bound = Radius(list_level);
        for (const Edge& edge : members) {
          const double child_bound = std::max(
              0.0, std::fabs(d - edge.distance) - child_subtree_bound);
          if (collector.Full() && child_bound >= collector.Threshold()) {
            continue;  // a tree: this subtree is unreachable elsewhere
          }
          frontier.emplace(child_bound, edge.child);
        }
      }
    }
  }
  std::vector<Neighbor> out = collector.Take();
  if (stats != nullptr) {
    stats->distance_computations = computations;
    stats->result_count = static_cast<int64_t>(out.size());
  }
  return out;
}

void CoverTree::CollectSubtree(int32_t node_index, std::vector<ObjectId>* out,
                               std::vector<uint8_t>* emitted) const {
  std::deque<int32_t> queue = {node_index};
  while (!queue.empty()) {
    const int32_t ni = queue.front();
    queue.pop_front();
    if ((*emitted)[static_cast<size_t>(ni)]) continue;
    (*emitted)[static_cast<size_t>(ni)] = 1;
    const Node& n = nodes_[static_cast<size_t>(ni)];
    out->push_back(n.object);
    out->insert(out->end(), n.duplicates.begin(), n.duplicates.end());
    for (const auto& [lvl, members] : n.lists) {
      (void)lvl;
      for (const Edge& edge : members) queue.push_back(edge.child);
    }
  }
}

SpaceStats CoverTree::ComputeSpaceStats() const {
  SpaceStats s;
  int64_t entries = 0;
  int64_t duplicates = 0;
  int32_t min_level = 0;
  int32_t max_level = 0;
  bool first = true;
  for (const Node& n : nodes_) {
    duplicates += static_cast<int64_t>(n.duplicates.size());
    for (const auto& [lvl, members] : n.lists) {
      (void)lvl;
      entries += static_cast<int64_t>(members.size());
    }
    if (first) {
      min_level = max_level = n.top_level;
      first = false;
    } else {
      min_level = std::min(min_level, n.top_level);
      max_level = std::max(max_level, n.top_level);
    }
  }
  s.num_objects = num_objects_;
  s.num_nodes = static_cast<int64_t>(nodes_.size());
  s.num_list_entries = entries;
  s.avg_parents = nodes_.size() > 1 ? 1.0 : 0.0;  // it is a tree
  s.num_levels = nodes_.empty() ? 0 : max_level - min_level + 1;
  // Same byte model as the reference net (edges store a distance).
  s.approx_bytes = 32 * s.num_nodes + 16 * entries + 4 * duplicates;
  return s;
}

std::optional<std::string> CoverTree::CheckInvariants() const {
  char buf[256];
  if (root_ < 0) {
    if (num_objects_ != 0) return "empty tree but num_objects != 0";
    return std::nullopt;
  }
  for (int32_t ni = 0; ni < static_cast<int32_t>(nodes_.size()); ++ni) {
    const Node& n = nodes_[static_cast<size_t>(ni)];
    if (ni != root_ && n.parent < 0) {
      std::snprintf(buf, sizeof(buf), "non-root node %d has no parent", ni);
      return std::string(buf);
    }
    for (const auto& [lvl, members] : n.lists) {
      if (lvl > n.top_level) {
        std::snprintf(buf, sizeof(buf), "list above node %d's top level",
                      ni);
        return std::string(buf);
      }
      for (const Edge& edge : members) {
        const Node& c = nodes_[static_cast<size_t>(edge.child)];
        if (c.top_level != lvl - 1) {
          std::snprintf(buf, sizeof(buf), "child %d at wrong level",
                        edge.child);
          return std::string(buf);
        }
        const double d = oracle_.Distance(n.object, c.object);
        if (d > Radius(lvl)) {
          std::snprintf(buf, sizeof(buf),
                        "covering violated: d(%d, %d)=%g > %g", n.object,
                        c.object, d, Radius(lvl));
          return std::string(buf);
        }
        if (d != edge.distance) {
          std::snprintf(buf, sizeof(buf), "stale edge distance at node %d",
                        n.object);
          return std::string(buf);
        }
      }
    }
  }
  for (size_t a = 0; a < nodes_.size(); ++a) {
    for (size_t b = a + 1; b < nodes_.size(); ++b) {
      const Node& u = nodes_[a];
      const Node& v = nodes_[b];
      if (u.top_level != v.top_level) continue;
      const double d = oracle_.Distance(u.object, v.object);
      if (d <= Radius(u.top_level)) {
        std::snprintf(buf, sizeof(buf),
                      "separation violated at level %d: d(%d, %d)=%g",
                      u.top_level, u.object, v.object, d);
        return std::string(buf);
      }
    }
  }
  std::vector<ObjectId> reached;
  std::vector<uint8_t> emitted(nodes_.size(), 0);
  CollectSubtree(root_, &reached, &emitted);
  if (static_cast<int32_t>(reached.size()) != num_objects_) {
    std::snprintf(buf, sizeof(buf), "reachability violated: %zu vs %d",
                  reached.size(), num_objects_);
    return std::string(buf);
  }
  return std::nullopt;
}

namespace {

struct CoverTreeMetaRec {
  int32_t num_objects;
  int32_t num_nodes;
  int32_t root;
  int32_t pad0;
  int64_t dup_total;
  int64_t list_total;
  int64_t edge_total;
  double base_radius;
  int64_t build_distance_computations;
};
static_assert(sizeof(CoverTreeMetaRec) == 56);

struct CoverNodeRec {
  int32_t object;
  int32_t top_level;
  int32_t parent;
  int32_t dup_count;
  int32_t list_count;
  int32_t pad0;
};
static_assert(sizeof(CoverNodeRec) == 24);

struct CoverListRec {
  int32_t level;
  int32_t edge_count;
};
static_assert(sizeof(CoverListRec) == 8);

struct CoverEdgeRec {
  int32_t child;  // node index
  int32_t pad0;
  double distance;
};
static_assert(sizeof(CoverEdgeRec) == 16);

}  // namespace

Status CoverTree::SaveSections(SnapshotWriter& writer,
                               const std::string& prefix) const {
  CoverTreeMetaRec meta{};
  meta.num_objects = num_objects_;
  meta.num_nodes = static_cast<int32_t>(nodes_.size());
  meta.root = root_;
  meta.base_radius = options_.base_radius;
  meta.build_distance_computations = build_stats_.distance_computations;

  std::vector<CoverNodeRec> node_recs(nodes_.size());
  std::vector<CoverListRec> list_recs;
  std::vector<CoverEdgeRec> edge_recs;
  std::vector<ObjectId> dups;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    CoverNodeRec& rec = node_recs[i];
    rec.object = n.object;
    rec.top_level = n.top_level;
    rec.parent = n.parent;
    rec.dup_count = static_cast<int32_t>(n.duplicates.size());
    rec.list_count = static_cast<int32_t>(n.lists.size());
    dups.insert(dups.end(), n.duplicates.begin(), n.duplicates.end());
    for (const auto& [lvl, members] : n.lists) {
      CoverListRec list{};
      list.level = lvl;
      list.edge_count = static_cast<int32_t>(members.size());
      list_recs.push_back(list);
      for (const Edge& edge : members) {
        CoverEdgeRec e{};
        e.child = edge.child;
        e.distance = edge.distance;
        edge_recs.push_back(e);
      }
    }
  }
  meta.dup_total = static_cast<int64_t>(dups.size());
  meta.list_total = static_cast<int64_t>(list_recs.size());
  meta.edge_total = static_cast<int64_t>(edge_recs.size());

  SUBSEQ_RETURN_NOT_OK(writer.AppendPodStruct(prefix + "meta", meta));
  SUBSEQ_RETURN_NOT_OK(writer.AppendPodSection<CoverNodeRec>(
      prefix + "nodes", node_recs));
  SUBSEQ_RETURN_NOT_OK(writer.AppendPodSection<CoverListRec>(
      prefix + "lists", list_recs));
  SUBSEQ_RETURN_NOT_OK(writer.AppendPodSection<CoverEdgeRec>(
      prefix + "edges", edge_recs));
  return writer.AppendPodSection<ObjectId>(prefix + "dups", dups);
}

Result<std::unique_ptr<CoverTree>> CoverTree::LoadSections(
    const SnapshotFile& file, const std::string& prefix,
    const DistanceOracle& oracle, const CoverTreeOptions& options) {
  CoverTreeMetaRec meta{};
  SUBSEQ_RETURN_NOT_OK(ReadPodStruct(file, prefix + "meta", &meta));
  const auto bad = [&](const std::string& why) {
    return Status::InvalidArgument("cover-tree snapshot sections '" + prefix +
                                   "*': " + why);
  };
  if (meta.num_objects != oracle.size()) {
    return bad("indexes " + std::to_string(meta.num_objects) +
               " objects but the oracle holds " +
               std::to_string(oracle.size()));
  }
  if (meta.base_radius != options.base_radius) {
    return bad("saved with base_radius=" + std::to_string(meta.base_radius) +
               " but the load requested " +
               std::to_string(options.base_radius) +
               "; a loaded index must equal the fresh build it replaces");
  }

  auto nodes = PodSectionView<CoverNodeRec>(file, prefix + "nodes");
  if (!nodes.ok()) return nodes.status();
  auto lists = PodSectionView<CoverListRec>(file, prefix + "lists");
  if (!lists.ok()) return lists.status();
  auto edges = PodSectionView<CoverEdgeRec>(file, prefix + "edges");
  if (!edges.ok()) return edges.status();
  auto dups = PodSectionView<ObjectId>(file, prefix + "dups");
  if (!dups.ok()) return dups.status();
  const int32_t count = static_cast<int32_t>(nodes.value().size());
  if (meta.num_nodes != count ||
      meta.list_total != static_cast<int64_t>(lists.value().size()) ||
      meta.edge_total != static_cast<int64_t>(edges.value().size()) ||
      meta.dup_total != static_cast<int64_t>(dups.value().size())) {
    return bad("meta counts disagree with the section sizes");
  }
  if ((count == 0) != (meta.root == -1) ||
      (count > 0 && (meta.root < 0 || meta.root >= count)) ||
      (count == 0) != (meta.num_objects == 0)) {
    return bad("root index " + std::to_string(meta.root) +
               " is out of range for " + std::to_string(count) + " nodes");
  }

  auto tree = std::unique_ptr<CoverTree>(new CoverTree(oracle, options));
  tree->num_objects_ = meta.num_objects;
  tree->root_ = meta.root;
  tree->build_stats_.distance_computations = meta.build_distance_computations;
  tree->nodes_.resize(static_cast<size_t>(count));

  std::vector<uint8_t> object_seen(static_cast<size_t>(meta.num_objects), 0);
  int64_t placed = 0;
  const auto place = [&](ObjectId id) -> Status {
    if (id < 0 || id >= meta.num_objects) {
      return bad("object id " + std::to_string(id) + " out of range");
    }
    if (object_seen[static_cast<size_t>(id)]) {
      return bad("object id " + std::to_string(id) + " appears twice");
    }
    object_seen[static_cast<size_t>(id)] = 1;
    ++placed;
    return Status::OK();
  };

  size_t list_cursor = 0;
  size_t edge_cursor = 0;
  size_t dup_cursor = 0;
  std::vector<uint8_t> child_claimed(static_cast<size_t>(count), 0);
  for (int32_t i = 0; i < count; ++i) {
    const CoverNodeRec& rec = nodes.value()[static_cast<size_t>(i)];
    Node& n = tree->nodes_[static_cast<size_t>(i)];
    SUBSEQ_RETURN_NOT_OK(place(rec.object));
    if ((i == meta.root) != (rec.parent == -1) ||
        (rec.parent != -1 && (rec.parent < 0 || rec.parent >= count))) {
      return bad("node " + std::to_string(i) + " has parent index " +
                 std::to_string(rec.parent));
    }
    if (rec.dup_count < 0 ||
        static_cast<size_t>(rec.dup_count) > dups.value().size() - dup_cursor) {
      return bad("node " + std::to_string(i) +
                 " duplicate list overruns the section");
    }
    if (rec.list_count < 0 ||
        static_cast<size_t>(rec.list_count) >
            lists.value().size() - list_cursor) {
      return bad("node " + std::to_string(i) + " lists overrun the section");
    }
    n.object = rec.object;
    n.top_level = rec.top_level;
    n.parent = rec.parent;
    tree->object_node_[rec.object] = i;
    for (int32_t d = 0; d < rec.dup_count; ++d) {
      const ObjectId dup = dups.value()[dup_cursor++];
      SUBSEQ_RETURN_NOT_OK(place(dup));
      n.duplicates.push_back(dup);
      tree->object_node_[dup] = i;
    }
    int32_t prev_level = 0;
    for (int32_t l = 0; l < rec.list_count; ++l) {
      const CoverListRec& list = lists.value()[list_cursor++];
      if (l > 0 && list.level >= prev_level) {
        return bad("node " + std::to_string(i) +
                   " lists are not sorted by descending level");
      }
      prev_level = list.level;
      if (list.level > rec.top_level) {
        return bad("node " + std::to_string(i) + " has a list above its "
                   "top level");
      }
      if (list.edge_count < 0 ||
          static_cast<size_t>(list.edge_count) >
              edges.value().size() - edge_cursor) {
        return bad("node " + std::to_string(i) +
                   " edges overrun the section");
      }
      std::vector<Edge> members;
      members.reserve(static_cast<size_t>(list.edge_count));
      for (int32_t g = 0; g < list.edge_count; ++g) {
        const CoverEdgeRec& e = edges.value()[edge_cursor++];
        if (e.child < 0 || e.child >= count) {
          return bad("edge child index " + std::to_string(e.child) +
                     " out of range");
        }
        if (child_claimed[static_cast<size_t>(e.child)] ||
            e.child == meta.root) {
          return bad("node " + std::to_string(e.child) +
                     " is claimed by two parents");
        }
        child_claimed[static_cast<size_t>(e.child)] = 1;
        const CoverNodeRec& child = nodes.value()[static_cast<size_t>(e.child)];
        if (child.top_level != list.level - 1) {
          return bad("edge to node " + std::to_string(e.child) +
                     " violates the level structure");
        }
        if (child.parent != i) {
          return bad("edge to node " + std::to_string(e.child) +
                     " disagrees with its parent back-link");
        }
        if (!std::isfinite(e.distance) || e.distance < 0.0 ||
            e.distance > tree->Radius(list.level)) {
          return bad("edge to node " + std::to_string(e.child) +
                     " exceeds its covering radius");
        }
        members.push_back(Edge{e.child, e.distance});
      }
      n.lists.emplace_back(list.level, std::move(members));
    }
  }
  if (list_cursor != lists.value().size() ||
      edge_cursor != edges.value().size() ||
      dup_cursor != dups.value().size()) {
    return bad("sections hold entries no node references");
  }
  if (placed != meta.num_objects) {
    return bad("nodes place " + std::to_string(placed) + " of " +
               std::to_string(meta.num_objects) + " objects");
  }
  for (int32_t i = 0; i < count; ++i) {
    if (i != meta.root && !child_claimed[static_cast<size_t>(i)]) {
      return bad("node " + std::to_string(i) + " is unreachable");
    }
  }

  // Deterministic seeded spot-check of stored edge distances against
  // the oracle (every edge for small trees) — catches checksum-intact
  // snapshots loaded against the wrong dataset or distance.
  const int64_t total_edges = meta.edge_total;
  if (total_edges > 0) {
    constexpr int64_t kSpotChecks = 256;
    std::vector<uint8_t> check_edge;
    if (total_edges <= kSpotChecks) {
      check_edge.assign(static_cast<size_t>(total_edges), 1);
    } else {
      check_edge.assign(static_cast<size_t>(total_edges), 0);
      Rng rng(0x2B6A49D1F08C7E35ULL ^ static_cast<uint64_t>(total_edges));
      int64_t chosen = 0;
      while (chosen < kSpotChecks) {
        const size_t pick = static_cast<size_t>(
            rng.NextBounded(static_cast<uint64_t>(total_edges)));
        if (!check_edge[pick]) {
          check_edge[pick] = 1;
          ++chosen;
        }
      }
    }
    int64_t cursor = 0;
    for (const Node& n : tree->nodes_) {
      for (const auto& [lvl, members] : n.lists) {
        (void)lvl;
        for (const Edge& edge : members) {
          if (check_edge[static_cast<size_t>(cursor++)] &&
              oracle.Distance(
                  n.object,
                  tree->nodes_[static_cast<size_t>(edge.child)].object) !=
                  edge.distance) {
            return bad("stored edge distances disagree with the oracle — "
                       "was the tree saved for a different dataset or "
                       "distance?");
          }
        }
      }
    }
  }
  return tree;
}

}  // namespace subseq
