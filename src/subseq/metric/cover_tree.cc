#include "subseq/metric/cover_tree.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <queue>

#include "subseq/distance/distance.h"

#include "subseq/core/check.h"
#include "subseq/metric/knn.h"

namespace subseq {

CoverTree::CoverTree(const DistanceOracle& oracle, CoverTreeOptions options)
    : oracle_(oracle), options_(options) {
  SUBSEQ_CHECK(options_.base_radius > 0.0);
}

CoverTree CoverTree::BuildAll(const DistanceOracle& oracle,
                              CoverTreeOptions options) {
  CoverTree tree(oracle, options);
  for (ObjectId id = 0; id < oracle.size(); ++id) {
    const Status s = tree.Insert(id);
    SUBSEQ_CHECK(s.ok());
  }
  return tree;
}

double CoverTree::Radius(int32_t level) const {
  return std::ldexp(options_.base_radius, level);
}

std::vector<CoverTree::Edge>* CoverTree::FindList(Node& node,
                                                  int32_t level) {
  for (auto& [lvl, members] : node.lists) {
    if (lvl == level) return &members;
  }
  return nullptr;
}

const std::vector<CoverTree::Edge>* CoverTree::FindList(const Node& node,
                                                        int32_t level) const {
  for (const auto& [lvl, members] : node.lists) {
    if (lvl == level) return &members;
  }
  return nullptr;
}

Status CoverTree::Insert(ObjectId id) {
  if (Contains(id)) {
    return Status::AlreadyExists("object already in cover tree");
  }
  ++num_objects_;
  if (root_ < 0) {
    nodes_.push_back(Node{id, 0, -1, {}, {}});
    root_ = 0;
    object_node_[id] = 0;
    return Status::OK();
  }

  // Bounded computations are cacheable: descent bounds only shrink (see
  // the matching comment in reference_net.cc).
  std::unordered_map<int32_t, double> cache;
  auto dist = [&](int32_t ni, double bound) {
    auto it = cache.find(ni);
    if (it != cache.end()) return it->second;
    const double d = oracle_.DistanceBounded(
        id, nodes_[static_cast<size_t>(ni)].object, bound);
    ++build_stats_.distance_computations;
    cache.emplace(ni, d);
    return d;
  };

  Node& root = nodes_[static_cast<size_t>(root_)];
  const double d_root = dist(root_, kInfiniteDistance);
  if (d_root == 0.0) {
    root.duplicates.push_back(id);
    object_node_[id] = root_;
    return Status::OK();
  }
  while (d_root > Radius(root.top_level)) ++root.top_level;

  // Same wide-set descent as the reference net; the only difference is
  // that placement picks a single (closest) parent.
  int32_t level = root.top_level;
  std::vector<int32_t> wide = {root_};
  for (;;) {
    std::vector<int32_t> candidates = wide;
    for (const int32_t ni : wide) {
      const std::vector<Edge>* list =
          FindList(nodes_[static_cast<size_t>(ni)], level);
      if (list != nullptr) {
        for (const Edge& edge : *list) candidates.push_back(edge.child);
      }
    }

    std::vector<int32_t> wide_next;
    bool has_narrow = false;
    for (const int32_t ni : candidates) {
      const double d = dist(ni, Radius(level));
      if (d == 0.0) {
        nodes_[static_cast<size_t>(ni)].duplicates.push_back(id);
        object_node_[id] = ni;
        return Status::OK();
      }
      if (d <= Radius(level)) {
        wide_next.push_back(ni);
        if (d <= Radius(level - 1)) has_narrow = true;
      }
    }
    std::sort(wide_next.begin(), wide_next.end());
    wide_next.erase(std::unique(wide_next.begin(), wide_next.end()),
                    wide_next.end());

    if (!has_narrow) {
      int32_t best_parent = -1;
      double best_d = kInfiniteDistance;
      for (const int32_t ni : wide) {
        const double d = dist(ni, Radius(level));
        if (d <= Radius(level) && d < best_d) {
          best_d = d;
          best_parent = ni;
        }
      }
      SUBSEQ_CHECK(best_parent >= 0);
      const int32_t node_index = static_cast<int32_t>(nodes_.size());
      nodes_.push_back(Node{id, level - 1, best_parent, {}, {}});
      object_node_[id] = node_index;
      Node& p = nodes_[static_cast<size_t>(best_parent)];
      std::vector<Edge>* list = FindList(p, level);
      if (list == nullptr) {
        p.lists.emplace_back(level, std::vector<Edge>{});
        std::sort(p.lists.begin(), p.lists.end(),
                  [](const auto& a, const auto& b) {
                    return a.first > b.first;
                  });
        list = FindList(p, level);
      }
      list->push_back(Edge{node_index, best_d});
      return Status::OK();
    }
    wide = std::move(wide_next);
    --level;
  }
}

bool CoverTree::Contains(ObjectId id) const {
  return object_node_.find(id) != object_node_.end();
}

std::vector<ObjectId> CoverTree::RangeQuery(const QueryDistanceFn& query,
                                            double epsilon,
                                            QueryStats* stats) const {
  std::vector<uint8_t> emitted;
  return RangeQueryWithScratch(query, epsilon, stats, &emitted);
}

std::vector<ObjectId> CoverTree::RangeQueryWithScratch(
    const QueryDistanceFn& query, double epsilon, QueryStats* stats,
    std::vector<uint8_t>* emitted_scratch) const {
  std::vector<ObjectId> results;
  int64_t computations = 0;
  if (root_ >= 0) {
    std::vector<uint8_t>& emitted = *emitted_scratch;
    emitted.assign(nodes_.size(), 0);
    std::deque<int32_t> queue = {root_};
    while (!queue.empty()) {
      const int32_t ni = queue.front();
      queue.pop_front();
      if (emitted[static_cast<size_t>(ni)]) continue;
      const Node& n = nodes_[static_cast<size_t>(ni)];
      ++computations;
      const double d = query(n.object);
      const double subtree_bound = Radius(n.top_level + 1);
      if (d + subtree_bound <= epsilon) {
        CollectSubtree(ni, &results, &emitted);
        continue;
      }
      if (d - subtree_bound > epsilon) continue;
      if (d <= epsilon) {
        results.push_back(n.object);
        results.insert(results.end(), n.duplicates.begin(),
                       n.duplicates.end());
      }
      for (const auto& [list_level, members] : n.lists) {
        // Per-edge triangle bounds, identical to the reference net's
        // strengthened Algorithm 3 — but a tree gives each child only one
        // parent, i.e., a single chance to be decided cheaply.
        if (d - Radius(list_level + 1) > epsilon) continue;
        const double child_subtree_bound = Radius(list_level);
        for (const Edge& edge : members) {
          const int32_t child = edge.child;
          if (emitted[static_cast<size_t>(child)]) continue;
          const double lower = std::fabs(d - edge.distance);
          const double upper = d + edge.distance;
          if (lower - child_subtree_bound > epsilon) {
            emitted[static_cast<size_t>(child)] = 1;
            continue;
          }
          if (upper + child_subtree_bound <= epsilon) {
            CollectSubtree(child, &results, &emitted);
            continue;
          }
          const Node& c = nodes_[static_cast<size_t>(child)];
          if (c.lists.empty()) {
            if (upper <= epsilon) {
              results.push_back(c.object);
              results.insert(results.end(), c.duplicates.begin(),
                             c.duplicates.end());
              emitted[static_cast<size_t>(child)] = 1;
              continue;
            }
            if (lower > epsilon) {
              emitted[static_cast<size_t>(child)] = 1;
              continue;
            }
          }
          queue.push_back(child);
        }
      }
    }
  }
  if (stats != nullptr) {
    stats->distance_computations = computations;
    stats->result_count = static_cast<int64_t>(results.size());
  }
  return results;
}

std::vector<Neighbor> CoverTree::NearestNeighbors(
    const QueryDistanceFn& query, int32_t k, QueryStats* stats) const {
  KnnCollector collector(k);
  int64_t computations = 0;
  if (root_ >= 0 && k > 0) {
    using Entry = std::pair<double, int32_t>;  // (lower bound, node)
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        frontier;
    frontier.emplace(0.0, root_);
    while (!frontier.empty()) {
      const auto [bound, ni] = frontier.top();
      frontier.pop();
      if (collector.Full() && bound >= collector.Threshold()) break;
      const Node& n = nodes_[static_cast<size_t>(ni)];
      ++computations;
      const double d = query(n.object);
      collector.Offer(n.object, d);
      for (const ObjectId dup : n.duplicates) collector.Offer(dup, d);
      for (const auto& [list_level, members] : n.lists) {
        const double child_subtree_bound = Radius(list_level);
        for (const Edge& edge : members) {
          const double child_bound = std::max(
              0.0, std::fabs(d - edge.distance) - child_subtree_bound);
          if (collector.Full() && child_bound >= collector.Threshold()) {
            continue;  // a tree: this subtree is unreachable elsewhere
          }
          frontier.emplace(child_bound, edge.child);
        }
      }
    }
  }
  std::vector<Neighbor> out = collector.Take();
  if (stats != nullptr) {
    stats->distance_computations = computations;
    stats->result_count = static_cast<int64_t>(out.size());
  }
  return out;
}

void CoverTree::CollectSubtree(int32_t node_index, std::vector<ObjectId>* out,
                               std::vector<uint8_t>* emitted) const {
  std::deque<int32_t> queue = {node_index};
  while (!queue.empty()) {
    const int32_t ni = queue.front();
    queue.pop_front();
    if ((*emitted)[static_cast<size_t>(ni)]) continue;
    (*emitted)[static_cast<size_t>(ni)] = 1;
    const Node& n = nodes_[static_cast<size_t>(ni)];
    out->push_back(n.object);
    out->insert(out->end(), n.duplicates.begin(), n.duplicates.end());
    for (const auto& [lvl, members] : n.lists) {
      (void)lvl;
      for (const Edge& edge : members) queue.push_back(edge.child);
    }
  }
}

SpaceStats CoverTree::ComputeSpaceStats() const {
  SpaceStats s;
  int64_t entries = 0;
  int64_t duplicates = 0;
  int32_t min_level = 0;
  int32_t max_level = 0;
  bool first = true;
  for (const Node& n : nodes_) {
    duplicates += static_cast<int64_t>(n.duplicates.size());
    for (const auto& [lvl, members] : n.lists) {
      (void)lvl;
      entries += static_cast<int64_t>(members.size());
    }
    if (first) {
      min_level = max_level = n.top_level;
      first = false;
    } else {
      min_level = std::min(min_level, n.top_level);
      max_level = std::max(max_level, n.top_level);
    }
  }
  s.num_objects = num_objects_;
  s.num_nodes = static_cast<int64_t>(nodes_.size());
  s.num_list_entries = entries;
  s.avg_parents = nodes_.size() > 1 ? 1.0 : 0.0;  // it is a tree
  s.num_levels = nodes_.empty() ? 0 : max_level - min_level + 1;
  // Same byte model as the reference net (edges store a distance).
  s.approx_bytes = 32 * s.num_nodes + 16 * entries + 4 * duplicates;
  return s;
}

std::optional<std::string> CoverTree::CheckInvariants() const {
  char buf[256];
  if (root_ < 0) {
    if (num_objects_ != 0) return "empty tree but num_objects != 0";
    return std::nullopt;
  }
  for (int32_t ni = 0; ni < static_cast<int32_t>(nodes_.size()); ++ni) {
    const Node& n = nodes_[static_cast<size_t>(ni)];
    if (ni != root_ && n.parent < 0) {
      std::snprintf(buf, sizeof(buf), "non-root node %d has no parent", ni);
      return std::string(buf);
    }
    for (const auto& [lvl, members] : n.lists) {
      if (lvl > n.top_level) {
        std::snprintf(buf, sizeof(buf), "list above node %d's top level",
                      ni);
        return std::string(buf);
      }
      for (const Edge& edge : members) {
        const Node& c = nodes_[static_cast<size_t>(edge.child)];
        if (c.top_level != lvl - 1) {
          std::snprintf(buf, sizeof(buf), "child %d at wrong level",
                        edge.child);
          return std::string(buf);
        }
        const double d = oracle_.Distance(n.object, c.object);
        if (d > Radius(lvl)) {
          std::snprintf(buf, sizeof(buf),
                        "covering violated: d(%d, %d)=%g > %g", n.object,
                        c.object, d, Radius(lvl));
          return std::string(buf);
        }
        if (d != edge.distance) {
          std::snprintf(buf, sizeof(buf), "stale edge distance at node %d",
                        n.object);
          return std::string(buf);
        }
      }
    }
  }
  for (size_t a = 0; a < nodes_.size(); ++a) {
    for (size_t b = a + 1; b < nodes_.size(); ++b) {
      const Node& u = nodes_[a];
      const Node& v = nodes_[b];
      if (u.top_level != v.top_level) continue;
      const double d = oracle_.Distance(u.object, v.object);
      if (d <= Radius(u.top_level)) {
        std::snprintf(buf, sizeof(buf),
                      "separation violated at level %d: d(%d, %d)=%g",
                      u.top_level, u.object, v.object, d);
        return std::string(buf);
      }
    }
  }
  std::vector<ObjectId> reached;
  std::vector<uint8_t> emitted(nodes_.size(), 0);
  CollectSubtree(root_, &reached, &emitted);
  if (static_cast<int32_t>(reached.size()) != num_objects_) {
    std::snprintf(buf, sizeof(buf), "reachability violated: %zu vs %d",
                  reached.size(), num_objects_);
    return std::string(buf);
  }
  return std::nullopt;
}

}  // namespace subseq
