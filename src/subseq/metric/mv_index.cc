#include "subseq/metric/mv_index.h"

#include <algorithm>
#include <cmath>

#include "subseq/distance/distance.h"

#include "subseq/core/check.h"
#include "subseq/core/rng.h"
#include "subseq/exec/parallel_for.h"
#include "subseq/exec/stats_sink.h"
#include "subseq/metric/knn.h"
#include "subseq/snapshot/reader.h"
#include "subseq/snapshot/writer.h"

namespace subseq {

MvIndex::MvIndex(const DistanceOracle& oracle, MvIndexOptions options)
    : oracle_(oracle), options_(options), num_objects_(oracle.size()) {
  SUBSEQ_CHECK(options_.num_references > 0);
  const int32_t n = num_objects_;
  const int32_t k = std::min(options_.num_references, n);
  if (n == 0) return;

  // Candidate pool and evaluation sample (without replacement when small).
  Rng rng(options_.seed);
  const int32_t pool = std::min(options_.sample_size, n);
  std::vector<ObjectId> ids(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) ids[static_cast<size_t>(i)] = i;
  // Partial Fisher-Yates: the first `pool` entries are a uniform sample.
  for (int32_t i = 0; i < pool; ++i) {
    const int32_t j =
        i + static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(n - i)));
    std::swap(ids[static_cast<size_t>(i)], ids[static_cast<size_t>(j)]);
  }

  // Maximum-variance selection: score each candidate by the variance of
  // its distances to the sample, take the top k. Candidates are scored in
  // parallel chunks; each candidate's accumulation stays sequential over
  // the sample, so every variance — and the selection — is identical at
  // any thread count.
  std::vector<std::pair<double, ObjectId>> scored(static_cast<size_t>(pool));
  StatsSink build_sink;
  ParallelFor(options_.exec, pool,
              [&](int64_t lo, int64_t hi, int32_t) {
                for (int64_t c = lo; c < hi; ++c) {
                  const ObjectId cand = ids[static_cast<size_t>(c)];
                  double sum = 0.0;
                  double sum_sq = 0.0;
                  for (int32_t s = 0; s < pool; ++s) {
                    const double d =
                        oracle_.Distance(cand, ids[static_cast<size_t>(s)]);
                    sum += d;
                    sum_sq += d * d;
                  }
                  const double mean = sum / pool;
                  const double var = sum_sq / pool - mean * mean;
                  scored[static_cast<size_t>(c)] = {var, cand};
                }
                build_sink.AddDistanceComputations((hi - lo) * pool);
              });
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  references_.reserve(static_cast<size_t>(k));
  for (int32_t j = 0; j < k; ++j) {
    references_.push_back(scored[static_cast<size_t>(j)].second);
  }

  // Precompute the n x k pivot table, one chunk of rows per thread.
  table_storage_.resize(static_cast<size_t>(n) * static_cast<size_t>(k));
  ParallelFor(
      options_.exec, n,
      [&](int64_t lo, int64_t hi, int32_t) {
        for (int64_t x = lo; x < hi; ++x) {
          for (int32_t j = 0; j < k; ++j) {
            table_storage_[static_cast<size_t>(x) * static_cast<size_t>(k) +
                           static_cast<size_t>(j)] =
                oracle_.Distance(static_cast<ObjectId>(x),
                                 references_[static_cast<size_t>(j)]);
          }
        }
        build_sink.AddDistanceComputations((hi - lo) * k);
      },
      /*grain=*/16);
  table_ = table_storage_;
  build_stats_.distance_computations = build_sink.distance_computations();
}

namespace {

struct MvIndexMetaRec {
  int32_t num_objects;
  int32_t num_references_stored;
  int32_t opt_num_references;
  int32_t opt_sample_size;
  uint64_t seed;
  int64_t build_distance_computations;
};
static_assert(sizeof(MvIndexMetaRec) == 32);

}  // namespace

Status MvIndex::SaveSections(SnapshotWriter& writer,
                             const std::string& prefix) const {
  MvIndexMetaRec meta{};
  meta.num_objects = num_objects_;
  meta.num_references_stored = static_cast<int32_t>(references_.size());
  meta.opt_num_references = options_.num_references;
  meta.opt_sample_size = options_.sample_size;
  meta.seed = options_.seed;
  meta.build_distance_computations = build_stats_.distance_computations;
  SUBSEQ_RETURN_NOT_OK(writer.AppendPodStruct(prefix + "meta", meta));
  SUBSEQ_RETURN_NOT_OK(writer.AppendPodSection<ObjectId>(
      prefix + "refs", references_));
  return writer.AppendPodSection<double>(prefix + "table", table_);
}

Result<std::unique_ptr<MvIndex>> MvIndex::LoadSections(
    std::shared_ptr<const SnapshotFile> file, const std::string& prefix,
    const DistanceOracle& oracle, const MvIndexOptions& options) {
  MvIndexMetaRec meta{};
  SUBSEQ_RETURN_NOT_OK(ReadPodStruct(*file, prefix + "meta", &meta));
  const auto bad = [&](const std::string& why) {
    return Status::InvalidArgument("mv-index snapshot sections '" + prefix +
                                   "*': " + why);
  };
  if (meta.num_objects != oracle.size()) {
    return bad("indexes " + std::to_string(meta.num_objects) +
               " objects but the oracle holds " +
               std::to_string(oracle.size()));
  }
  if (meta.opt_num_references != options.num_references ||
      meta.opt_sample_size != options.sample_size ||
      meta.seed != options.seed) {
    return bad("saved with num_references=" +
               std::to_string(meta.opt_num_references) + " sample_size=" +
               std::to_string(meta.opt_sample_size) + " seed=" +
               std::to_string(meta.seed) + " but the load requested " +
               std::to_string(options.num_references) + "/" +
               std::to_string(options.sample_size) + "/" +
               std::to_string(options.seed) +
               "; a loaded index must equal the fresh build it replaces");
  }
  const int32_t n = meta.num_objects;
  const int32_t k = meta.num_references_stored;
  const int32_t expected_k = n == 0 ? 0 : std::min(options.num_references, n);
  if (k != expected_k) {
    return bad("stores " + std::to_string(k) + " references, expected " +
               std::to_string(expected_k));
  }

  auto index = std::unique_ptr<MvIndex>(
      new MvIndex(oracle, options, LoadTag{}));
  index->num_objects_ = n;
  index->build_stats_.distance_computations = meta.build_distance_computations;
  SUBSEQ_RETURN_NOT_OK(
      ReadPodSection<ObjectId>(*file, prefix + "refs", &index->references_));
  if (static_cast<int32_t>(index->references_.size()) != k) {
    return bad("refs section holds " +
               std::to_string(index->references_.size()) +
               " entries but meta records " + std::to_string(k));
  }
  for (const ObjectId r : index->references_) {
    if (r < 0 || r >= n) {
      return bad("reference id " + std::to_string(r) + " out of range");
    }
  }
  auto table = PodSectionView<double>(*file, prefix + "table");
  if (!table.ok()) return table.status();
  if (table.value().size() !=
      static_cast<size_t>(n) * static_cast<size_t>(k)) {
    return bad("table holds " + std::to_string(table.value().size()) +
               " cells, expected " + std::to_string(n) + " x " +
               std::to_string(k));
  }
  index->table_ = table.value();
  index->backing_ = std::move(file);

  // Seeded spot-check: recompute a deterministic sample of table cells
  // against the oracle. Catches a checksum-intact snapshot loaded
  // against the wrong dataset or distance.
  if (n > 0 && k > 0) {
    Rng rng(0x11C9DC58E6F4A7B3ULL ^
            (static_cast<uint64_t>(n) << 8) ^ static_cast<uint64_t>(k));
    const size_t cells = static_cast<size_t>(n) * static_cast<size_t>(k);
    const size_t checks = std::min<size_t>(cells, 64);
    for (size_t c = 0; c < checks; ++c) {
      const size_t cell = static_cast<size_t>(rng.NextBounded(cells));
      const ObjectId x = static_cast<ObjectId>(cell / static_cast<size_t>(k));
      const ObjectId r =
          index->references_[cell % static_cast<size_t>(k)];
      if (oracle.Distance(x, r) != index->table_[cell]) {
        return bad("stored pivot distances disagree with the oracle — was "
                   "the index saved for a different dataset or distance?");
      }
    }
  }
  return index;
}

std::vector<ObjectId> MvIndex::RangeQuery(const QueryDistanceFn& query,
                                          double epsilon,
                                          QueryStats* stats) const {
  std::vector<ObjectId> results;
  int64_t computations = 0;
  const int32_t n = num_objects_;
  const int32_t k = static_cast<int32_t>(references_.size());
  if (n > 0) {
    // Distances from the query to each reference.
    std::vector<double> dq(static_cast<size_t>(k));
    for (int32_t j = 0; j < k; ++j) {
      ++computations;
      dq[static_cast<size_t>(j)] = query(references_[static_cast<size_t>(j)]);
    }
    for (ObjectId x = 0; x < n; ++x) {
      double lower = 0.0;
      double upper = kInfiniteDistance;
      const double* row =
          &table_[static_cast<size_t>(x) * static_cast<size_t>(k)];
      for (int32_t j = 0; j < k; ++j) {
        const double dr = dq[static_cast<size_t>(j)];
        lower = std::max(lower, std::fabs(dr - row[j]));
        upper = std::min(upper, dr + row[j]);
      }
      if (lower > epsilon) continue;  // pruned, no computation
      if (upper <= epsilon) {
        results.push_back(x);  // accepted, no computation
        continue;
      }
      ++computations;
      if (query(x) <= epsilon) results.push_back(x);
    }
  }
  if (stats != nullptr) {
    stats->distance_computations = computations;
    stats->result_count = static_cast<int64_t>(results.size());
  }
  return results;
}

std::vector<Neighbor> MvIndex::NearestNeighbors(const QueryDistanceFn& query,
                                                int32_t k,
                                                QueryStats* stats) const {
  KnnCollector collector(k);
  int64_t computations = 0;
  const int32_t n = num_objects_;
  const int32_t refs = static_cast<int32_t>(references_.size());
  if (n > 0 && k > 0) {
    std::vector<double> dq(static_cast<size_t>(refs));
    for (int32_t j = 0; j < refs; ++j) {
      ++computations;
      dq[static_cast<size_t>(j)] = query(references_[static_cast<size_t>(j)]);
    }
    // Per-object lower bounds from the pivot table, scanned best-first:
    // once the bound reaches the current k-th distance, the rest of the
    // database cannot improve the result.
    std::vector<std::pair<double, ObjectId>> order;
    order.reserve(static_cast<size_t>(n));
    for (ObjectId x = 0; x < n; ++x) {
      double lower = 0.0;
      const double* row =
          &table_[static_cast<size_t>(x) * static_cast<size_t>(refs)];
      for (int32_t j = 0; j < refs; ++j) {
        lower = std::max(lower, std::fabs(dq[static_cast<size_t>(j)] - row[j]));
      }
      order.emplace_back(lower, x);
    }
    std::sort(order.begin(), order.end());
    for (const auto& [lower, x] : order) {
      if (collector.Full() && lower >= collector.Threshold()) break;
      ++computations;
      collector.Offer(x, query(x));
    }
  }
  std::vector<Neighbor> out = collector.Take();
  if (stats != nullptr) {
    stats->distance_computations = computations;
    stats->result_count = static_cast<int64_t>(out.size());
  }
  return out;
}

SpaceStats MvIndex::ComputeSpaceStats() const {
  SpaceStats s;
  s.num_objects = num_objects_;
  s.num_nodes = static_cast<int64_t>(references_.size());
  s.num_list_entries = static_cast<int64_t>(table_.size());
  s.avg_parents = static_cast<double>(references_.size());
  s.num_levels = 1;
  s.approx_bytes = static_cast<int64_t>(table_.size()) * 8 +
                   static_cast<int64_t>(references_.size()) * 4;
  return s;
}

}  // namespace subseq
