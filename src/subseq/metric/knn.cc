#include "subseq/metric/knn.h"

#include <algorithm>

#include "subseq/core/check.h"
#include "subseq/distance/distance.h"

namespace subseq {

namespace {

// Max-heap order: the *worst* (largest distance, then largest id) on top.
bool HeapLess(const Neighbor& a, const Neighbor& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.id < b.id;
}

}  // namespace

KnnCollector::KnnCollector(int32_t k) : k_(k) { SUBSEQ_CHECK(k >= 0); }

void KnnCollector::Offer(ObjectId id, double distance) {
  if (k_ == 0) return;
  const Neighbor candidate{id, distance};
  if (!Full()) {
    heap_.push_back(candidate);
    std::push_heap(heap_.begin(), heap_.end(), HeapLess);
    return;
  }
  if (!HeapLess(candidate, heap_.front())) return;
  std::pop_heap(heap_.begin(), heap_.end(), HeapLess);
  heap_.back() = candidate;
  std::push_heap(heap_.begin(), heap_.end(), HeapLess);
}

double KnnCollector::Threshold() const {
  if (!Full()) return kInfiniteDistance;
  return heap_.front().distance;
}

std::vector<Neighbor> KnnCollector::Take() {
  std::vector<Neighbor> out = std::move(heap_);
  heap_.clear();
  std::sort(out.begin(), out.end(), HeapLess);
  return out;
}

}  // namespace subseq
