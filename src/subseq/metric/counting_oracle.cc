#include "subseq/metric/counting_oracle.h"

#include <utility>

namespace subseq {

QueryDistanceFn CountingQueryFn(QueryDistanceFn fn, int64_t* counter) {
  return [fn = std::move(fn), counter](ObjectId id) {
    ++*counter;
    return fn(id);
  };
}

}  // namespace subseq
