#include "subseq/metric/counting_oracle.h"

#include <utility>

namespace subseq {

QueryDistanceFn CountingQueryFn(QueryDistanceFn fn, int64_t* counter) {
  return [fn = std::move(fn), counter](ObjectId id) {
    ++*counter;
    return fn(id);
  };
}

QueryDistanceFn CountingQueryFn(QueryDistanceFn fn, StatsSink* sink) {
  return [fn = std::move(fn), sink](ObjectId id) {
    sink->AddDistanceComputations(1);
    return fn(id);
  };
}

}  // namespace subseq
