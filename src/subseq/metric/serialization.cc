#include "subseq/metric/serialization.h"

#include <fstream>
#include <sstream>

namespace subseq {

namespace {

constexpr char kMagic[] = "subseq-refnet v1";

}  // namespace

Status SaveReferenceNet(const ReferenceNet& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open file: " + path);
  out.precision(17);
  out << kMagic << '\n';
  out << net.options().base_radius << ' ' << net.options().max_parents
      << '\n';
  const auto nodes = net.Export();
  out << nodes.size() << '\n';
  for (const auto& node : nodes) {
    out << node.object << ' ' << node.top_level << ' '
        << node.duplicates.size() << ' ' << node.edges.size();
    for (const ObjectId dup : node.duplicates) out << ' ' << dup;
    for (const auto& [lvl, child, distance] : node.edges) {
      out << ' ' << lvl << ' ' << child << ' ' << distance;
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<ReferenceNet> LoadReferenceNet(const DistanceOracle& oracle,
                                      const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open file: " + path);
  std::string magic;
  std::getline(in, magic);
  if (magic != kMagic) {
    return Status::InvalidArgument("not a subseq reference-net file: " +
                                   path);
  }
  ReferenceNetOptions options;
  size_t node_count = 0;
  if (!(in >> options.base_radius >> options.max_parents >> node_count)) {
    return Status::IoError("truncated reference-net header in " + path);
  }
  if (options.base_radius <= 0.0 || options.max_parents < 0) {
    return Status::InvalidArgument("invalid reference-net options in " +
                                   path);
  }

  std::vector<ReferenceNet::ExportedNode> nodes;
  nodes.reserve(node_count);
  for (size_t i = 0; i < node_count; ++i) {
    ReferenceNet::ExportedNode node;
    size_t num_duplicates = 0;
    size_t num_edges = 0;
    if (!(in >> node.object >> node.top_level >> num_duplicates >>
          num_edges)) {
      return Status::IoError("truncated node record in " + path);
    }
    node.duplicates.resize(num_duplicates);
    for (size_t d = 0; d < num_duplicates; ++d) {
      if (!(in >> node.duplicates[d])) {
        return Status::IoError("truncated duplicate list in " + path);
      }
    }
    node.edges.reserve(num_edges);
    for (size_t e = 0; e < num_edges; ++e) {
      int32_t lvl = 0;
      ObjectId child = kInvalidId;
      double distance = 0.0;
      if (!(in >> lvl >> child >> distance)) {
        return Status::IoError("truncated edge list in " + path);
      }
      node.edges.emplace_back(lvl, child, distance);
    }
    nodes.push_back(std::move(node));
  }
  return ReferenceNet::Import(oracle, options, nodes);
}

}  // namespace subseq
