#include "subseq/metric/vp_tree.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "subseq/core/check.h"
#include "subseq/core/rng.h"
#include "subseq/exec/parallel_for.h"
#include "subseq/metric/knn.h"

namespace subseq {

VpTree::VpTree(const DistanceOracle& oracle, VpTreeOptions options)
    : oracle_(oracle), options_(options), num_objects_(oracle.size()) {
  SUBSEQ_CHECK(options_.leaf_size >= 1);
  if (num_objects_ == 0) return;
  std::vector<ObjectId> ids(static_cast<size_t>(num_objects_));
  for (int32_t i = 0; i < num_objects_; ++i) {
    ids[static_cast<size_t>(i)] = i;
  }
  root_ = BuildSubtree(&ids, 0, num_objects_, options_.seed);
}

int32_t VpTree::BuildSubtree(std::vector<ObjectId>* ids, int32_t begin,
                             int32_t end, uint64_t seed) {
  const int32_t count = end - begin;
  const int32_t node_index = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  if (count <= options_.leaf_size) {
    nodes_[static_cast<size_t>(node_index)].bucket.assign(
        ids->begin() + begin, ids->begin() + end);
    return node_index;
  }

  // Pick a random vantage point and move it to the front.
  Rng rng(seed);
  const int32_t pick =
      begin + static_cast<int32_t>(rng.NextBounded(
                  static_cast<uint64_t>(count)));
  std::swap((*ids)[static_cast<size_t>(begin)],
            (*ids)[static_cast<size_t>(pick)]);
  const ObjectId vantage = (*ids)[static_cast<size_t>(begin)];

  // Distances of the remaining subset to the vantage point, chunked over
  // the build threads. Each distance lands in its index-addressed slot,
  // so the (distance, id) array — and with it the whole tree — is
  // identical at any thread count.
  std::vector<std::pair<double, ObjectId>> by_distance(
      static_cast<size_t>(count - 1));
  ParallelFor(
      options_.exec, count - 1,
      [&](int64_t lo, int64_t hi, int32_t) {
        for (int64_t i = lo; i < hi; ++i) {
          const ObjectId id =
              (*ids)[static_cast<size_t>(begin) + 1 + static_cast<size_t>(i)];
          by_distance[static_cast<size_t>(i)] = {oracle_.Distance(vantage, id),
                                                 id};
        }
      },
      /*grain=*/16);
  build_stats_.distance_computations += count - 1;
  std::sort(by_distance.begin(), by_distance.end());
  const size_t mid = by_distance.size() / 2;
  const double mu = by_distance.empty() ? 0.0 : by_distance[mid].first;
  const double radius =
      by_distance.empty() ? 0.0 : by_distance.back().first;
  for (size_t i = 0; i < by_distance.size(); ++i) {
    (*ids)[static_cast<size_t>(begin) + 1 + i] = by_distance[i].second;
  }
  // Inside: distances <= mu -> indices [begin+1, split); outside: rest.
  int32_t split = begin + 1;
  for (const auto& [d, id] : by_distance) {
    (void)id;
    if (d <= mu) ++split;
  }

  Node& n = nodes_[static_cast<size_t>(node_index)];
  n.vantage = vantage;
  n.mu = mu;
  n.radius = radius;
  // nodes_ may reallocate during recursion; write child indices through
  // the vector afterwards.
  const int32_t inside = (split > begin + 1)
                             ? BuildSubtree(ids, begin + 1, split,
                                            rng.NextU64())
                             : -1;
  const int32_t outside =
      (split < end) ? BuildSubtree(ids, split, end, rng.NextU64()) : -1;
  nodes_[static_cast<size_t>(node_index)].inside = inside;
  nodes_[static_cast<size_t>(node_index)].outside = outside;
  return node_index;
}

std::vector<ObjectId> VpTree::RangeQuery(const QueryDistanceFn& query,
                                         double epsilon,
                                         QueryStats* stats) const {
  std::vector<ObjectId> results;
  int64_t computations = 0;
  if (root_ >= 0) {
    std::vector<int32_t> stack = {root_};
    while (!stack.empty()) {
      const Node& n = nodes_[static_cast<size_t>(stack.back())];
      stack.pop_back();
      if (n.vantage == kInvalidId) {
        for (const ObjectId id : n.bucket) {
          ++computations;
          if (query(id) <= epsilon) results.push_back(id);
        }
        continue;
      }
      ++computations;
      const double d = query(n.vantage);
      if (d <= epsilon) results.push_back(n.vantage);
      // Inside subset lies in the ball B(vantage, mu); outside in the
      // shell (mu, radius]. Standard vp-tree pruning:
      if (n.inside >= 0 && d - n.mu <= epsilon) stack.push_back(n.inside);
      if (n.outside >= 0 && n.mu - d <= epsilon &&
          d - n.radius <= epsilon) {
        stack.push_back(n.outside);
      }
    }
  }
  if (stats != nullptr) {
    stats->distance_computations = computations;
    stats->result_count = static_cast<int64_t>(results.size());
  }
  return results;
}

std::vector<Neighbor> VpTree::NearestNeighbors(const QueryDistanceFn& query,
                                               int32_t k,
                                               QueryStats* stats) const {
  KnnCollector collector(k);
  int64_t computations = 0;
  if (root_ >= 0 && k > 0) {
    using Entry = std::pair<double, int32_t>;  // (lower bound, node)
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        frontier;
    frontier.emplace(0.0, root_);
    while (!frontier.empty()) {
      const auto [bound, ni] = frontier.top();
      frontier.pop();
      if (collector.Full() && bound >= collector.Threshold()) break;
      const Node& n = nodes_[static_cast<size_t>(ni)];
      if (n.vantage == kInvalidId) {
        for (const ObjectId id : n.bucket) {
          ++computations;
          collector.Offer(id, query(id));
        }
        continue;
      }
      ++computations;
      const double d = query(n.vantage);
      collector.Offer(n.vantage, d);
      if (n.inside >= 0) {
        frontier.emplace(std::max(0.0, d - n.mu), n.inside);
      }
      if (n.outside >= 0) {
        frontier.emplace(std::max(0.0, std::max(n.mu - d, d - n.radius)),
                         n.outside);
      }
    }
  }
  std::vector<Neighbor> out = collector.Take();
  if (stats != nullptr) {
    stats->distance_computations = computations;
    stats->result_count = static_cast<int64_t>(out.size());
  }
  return out;
}

SpaceStats VpTree::ComputeSpaceStats() const {
  SpaceStats s;
  s.num_objects = num_objects_;
  s.num_nodes = static_cast<int64_t>(nodes_.size());
  int64_t bucket_entries = 0;
  for (const Node& n : nodes_) {
    bucket_entries += static_cast<int64_t>(n.bucket.size());
  }
  s.num_list_entries = bucket_entries;
  s.avg_parents = 1.0;
  s.num_levels = 0;  // binary depth is not level-structured
  // Byte model: vantage id + two doubles + two child indices (~32B) per
  // node, 4B per bucket entry.
  s.approx_bytes = 32 * s.num_nodes + 4 * bucket_entries;
  return s;
}

}  // namespace subseq
