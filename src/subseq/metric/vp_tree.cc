#include "subseq/metric/vp_tree.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>

#include "subseq/core/check.h"
#include "subseq/core/rng.h"
#include "subseq/exec/parallel_for.h"
#include "subseq/metric/knn.h"
#include "subseq/snapshot/reader.h"
#include "subseq/snapshot/writer.h"

namespace subseq {
namespace {

// Snapshot records (fixed layout, no hidden padding — asserted below).
struct VpTreeMetaRec {
  int32_t num_objects;
  int32_t root;
  int64_t node_count;
  int64_t bucket_total;
  int32_t leaf_size;
  int32_t pad0;
  uint64_t seed;
  int64_t build_distance_computations;
};
static_assert(sizeof(VpTreeMetaRec) == 48);

struct VpTreeNodeRec {
  int32_t vantage;  // kInvalidId for leaves
  int32_t inside;
  int32_t outside;
  int32_t bucket_count;
  double mu;
  double radius;
};
static_assert(sizeof(VpTreeNodeRec) == 32);

}  // namespace

VpTree::VpTree(const DistanceOracle& oracle, VpTreeOptions options)
    : oracle_(oracle), options_(options), num_objects_(oracle.size()) {
  SUBSEQ_CHECK(options_.leaf_size >= 1);
  if (num_objects_ == 0) return;
  std::vector<ObjectId> ids(static_cast<size_t>(num_objects_));
  for (int32_t i = 0; i < num_objects_; ++i) {
    ids[static_cast<size_t>(i)] = i;
  }
  root_ = BuildSubtree(&ids, 0, num_objects_, options_.seed);
}

int32_t VpTree::BuildSubtree(std::vector<ObjectId>* ids, int32_t begin,
                             int32_t end, uint64_t seed) {
  const int32_t count = end - begin;
  const int32_t node_index = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  if (count <= options_.leaf_size) {
    nodes_[static_cast<size_t>(node_index)].bucket.assign(
        ids->begin() + begin, ids->begin() + end);
    return node_index;
  }

  // Pick a random vantage point and move it to the front.
  Rng rng(seed);
  const int32_t pick =
      begin + static_cast<int32_t>(rng.NextBounded(
                  static_cast<uint64_t>(count)));
  std::swap((*ids)[static_cast<size_t>(begin)],
            (*ids)[static_cast<size_t>(pick)]);
  const ObjectId vantage = (*ids)[static_cast<size_t>(begin)];

  // Distances of the remaining subset to the vantage point, chunked over
  // the build threads. Each distance lands in its index-addressed slot,
  // so the (distance, id) array — and with it the whole tree — is
  // identical at any thread count.
  std::vector<std::pair<double, ObjectId>> by_distance(
      static_cast<size_t>(count - 1));
  ParallelFor(
      options_.exec, count - 1,
      [&](int64_t lo, int64_t hi, int32_t) {
        for (int64_t i = lo; i < hi; ++i) {
          const ObjectId id =
              (*ids)[static_cast<size_t>(begin) + 1 + static_cast<size_t>(i)];
          by_distance[static_cast<size_t>(i)] = {oracle_.Distance(vantage, id),
                                                 id};
        }
      },
      /*grain=*/16);
  build_stats_.distance_computations += count - 1;
  std::sort(by_distance.begin(), by_distance.end());
  const size_t mid = by_distance.size() / 2;
  const double mu = by_distance.empty() ? 0.0 : by_distance[mid].first;
  const double radius =
      by_distance.empty() ? 0.0 : by_distance.back().first;
  for (size_t i = 0; i < by_distance.size(); ++i) {
    (*ids)[static_cast<size_t>(begin) + 1 + i] = by_distance[i].second;
  }
  // Inside: distances <= mu -> indices [begin+1, split); outside: rest.
  int32_t split = begin + 1;
  for (const auto& [d, id] : by_distance) {
    (void)id;
    if (d <= mu) ++split;
  }

  Node& n = nodes_[static_cast<size_t>(node_index)];
  n.vantage = vantage;
  n.mu = mu;
  n.radius = radius;
  // nodes_ may reallocate during recursion; write child indices through
  // the vector afterwards.
  const int32_t inside = (split > begin + 1)
                             ? BuildSubtree(ids, begin + 1, split,
                                            rng.NextU64())
                             : -1;
  const int32_t outside =
      (split < end) ? BuildSubtree(ids, split, end, rng.NextU64()) : -1;
  nodes_[static_cast<size_t>(node_index)].inside = inside;
  nodes_[static_cast<size_t>(node_index)].outside = outside;
  return node_index;
}

std::vector<ObjectId> VpTree::RangeQuery(const QueryDistanceFn& query,
                                         double epsilon,
                                         QueryStats* stats) const {
  std::vector<ObjectId> results;
  int64_t computations = 0;
  if (root_ >= 0) {
    std::vector<int32_t> stack = {root_};
    while (!stack.empty()) {
      const Node& n = nodes_[static_cast<size_t>(stack.back())];
      stack.pop_back();
      if (n.vantage == kInvalidId) {
        for (const ObjectId id : n.bucket) {
          ++computations;
          if (query(id) <= epsilon) results.push_back(id);
        }
        continue;
      }
      ++computations;
      const double d = query(n.vantage);
      if (d <= epsilon) results.push_back(n.vantage);
      // Inside subset lies in the ball B(vantage, mu); outside in the
      // shell (mu, radius]. Standard vp-tree pruning:
      if (n.inside >= 0 && d - n.mu <= epsilon) stack.push_back(n.inside);
      if (n.outside >= 0 && n.mu - d <= epsilon &&
          d - n.radius <= epsilon) {
        stack.push_back(n.outside);
      }
    }
  }
  if (stats != nullptr) {
    stats->distance_computations = computations;
    stats->result_count = static_cast<int64_t>(results.size());
  }
  return results;
}

std::vector<Neighbor> VpTree::NearestNeighbors(const QueryDistanceFn& query,
                                               int32_t k,
                                               QueryStats* stats) const {
  KnnCollector collector(k);
  int64_t computations = 0;
  if (root_ >= 0 && k > 0) {
    using Entry = std::pair<double, int32_t>;  // (lower bound, node)
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        frontier;
    frontier.emplace(0.0, root_);
    while (!frontier.empty()) {
      const auto [bound, ni] = frontier.top();
      frontier.pop();
      if (collector.Full() && bound >= collector.Threshold()) break;
      const Node& n = nodes_[static_cast<size_t>(ni)];
      if (n.vantage == kInvalidId) {
        for (const ObjectId id : n.bucket) {
          ++computations;
          collector.Offer(id, query(id));
        }
        continue;
      }
      ++computations;
      const double d = query(n.vantage);
      collector.Offer(n.vantage, d);
      if (n.inside >= 0) {
        frontier.emplace(std::max(0.0, d - n.mu), n.inside);
      }
      if (n.outside >= 0) {
        frontier.emplace(std::max(0.0, std::max(n.mu - d, d - n.radius)),
                         n.outside);
      }
    }
  }
  std::vector<Neighbor> out = collector.Take();
  if (stats != nullptr) {
    stats->distance_computations = computations;
    stats->result_count = static_cast<int64_t>(out.size());
  }
  return out;
}

SpaceStats VpTree::ComputeSpaceStats() const {
  SpaceStats s;
  s.num_objects = num_objects_;
  s.num_nodes = static_cast<int64_t>(nodes_.size());
  int64_t bucket_entries = 0;
  for (const Node& n : nodes_) {
    bucket_entries += static_cast<int64_t>(n.bucket.size());
  }
  s.num_list_entries = bucket_entries;
  s.avg_parents = 1.0;
  s.num_levels = 0;  // binary depth is not level-structured
  // Byte model: vantage id + two doubles + two child indices (~32B) per
  // node, 4B per bucket entry.
  s.approx_bytes = 32 * s.num_nodes + 4 * bucket_entries;
  return s;
}

Status VpTree::SaveSections(SnapshotWriter& writer,
                            const std::string& prefix) const {
  VpTreeMetaRec meta{};
  meta.num_objects = num_objects_;
  meta.root = root_;
  meta.node_count = static_cast<int64_t>(nodes_.size());
  meta.leaf_size = options_.leaf_size;
  meta.seed = options_.seed;
  meta.build_distance_computations = build_stats_.distance_computations;

  std::vector<VpTreeNodeRec> recs(nodes_.size());
  std::vector<ObjectId> buckets;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    VpTreeNodeRec& rec = recs[i];
    rec.vantage = n.vantage;
    rec.inside = n.inside;
    rec.outside = n.outside;
    rec.bucket_count = static_cast<int32_t>(n.bucket.size());
    rec.mu = n.mu;
    rec.radius = n.radius;
    buckets.insert(buckets.end(), n.bucket.begin(), n.bucket.end());
  }
  meta.bucket_total = static_cast<int64_t>(buckets.size());

  SUBSEQ_RETURN_NOT_OK(writer.AppendPodStruct(prefix + "meta", meta));
  SUBSEQ_RETURN_NOT_OK(writer.AppendPodSection<VpTreeNodeRec>(
      prefix + "nodes", recs));
  return writer.AppendPodSection<ObjectId>(prefix + "buckets", buckets);
}

Result<std::unique_ptr<VpTree>> VpTree::LoadSections(
    const SnapshotFile& file, const std::string& prefix,
    const DistanceOracle& oracle, const VpTreeOptions& options) {
  VpTreeMetaRec meta{};
  SUBSEQ_RETURN_NOT_OK(ReadPodStruct(file, prefix + "meta", &meta));
  const auto bad = [&](const std::string& why) {
    return Status::InvalidArgument("vp-tree snapshot sections '" + prefix +
                                   "*': " + why);
  };
  if (meta.num_objects != oracle.size()) {
    return bad("indexes " + std::to_string(meta.num_objects) +
               " objects but the oracle holds " +
               std::to_string(oracle.size()));
  }
  if (meta.leaf_size != options.leaf_size || meta.seed != options.seed) {
    return bad("saved with leaf_size=" + std::to_string(meta.leaf_size) +
               " seed=" + std::to_string(meta.seed) +
               " but the load requested leaf_size=" +
               std::to_string(options.leaf_size) +
               " seed=" + std::to_string(options.seed) +
               "; a loaded index must equal the fresh build it replaces");
  }

  auto nodes = PodSectionView<VpTreeNodeRec>(file, prefix + "nodes");
  if (!nodes.ok()) return nodes.status();
  auto buckets = PodSectionView<ObjectId>(file, prefix + "buckets");
  if (!buckets.ok()) return buckets.status();
  const std::span<const VpTreeNodeRec> recs = nodes.value();
  const std::span<const ObjectId> bucket_ids = buckets.value();

  const int64_t count = static_cast<int64_t>(recs.size());
  if (meta.node_count != count) {
    return bad("meta records " + std::to_string(meta.node_count) +
               " nodes but the section holds " + std::to_string(count));
  }
  if (meta.bucket_total != static_cast<int64_t>(bucket_ids.size())) {
    return bad("meta records " + std::to_string(meta.bucket_total) +
               " bucket entries but the section holds " +
               std::to_string(bucket_ids.size()));
  }
  if ((count == 0) != (meta.root == -1) ||
      (count > 0 && (meta.root < 0 || meta.root >= count))) {
    return bad("root index " + std::to_string(meta.root) +
               " is out of range for " + std::to_string(count) + " nodes");
  }
  if ((count == 0) != (meta.num_objects == 0)) {
    return bad("node count and object count disagree about emptiness");
  }

  auto tree = std::unique_ptr<VpTree>(
      new VpTree(oracle, options, LoadTag{}));
  tree->num_objects_ = meta.num_objects;
  tree->root_ = meta.root;
  tree->build_stats_.distance_computations = meta.build_distance_computations;
  tree->nodes_.resize(recs.size());

  // Structural validation while reconstructing: every object appears
  // exactly once (as a vantage or in a bucket), child indices are in
  // range and claimed by exactly one parent, mu/radius are finite with
  // mu <= radius, buckets partition the bucket section exactly.
  std::vector<uint8_t> object_seen(static_cast<size_t>(meta.num_objects), 0);
  std::vector<uint8_t> child_claimed(recs.size(), 0);
  int64_t placed = 0;
  size_t bucket_cursor = 0;
  const auto place = [&](ObjectId id) -> Status {
    if (id < 0 || id >= meta.num_objects) {
      return bad("object id " + std::to_string(id) + " out of range");
    }
    if (object_seen[static_cast<size_t>(id)]) {
      return bad("object id " + std::to_string(id) + " appears twice");
    }
    object_seen[static_cast<size_t>(id)] = 1;
    ++placed;
    return Status::OK();
  };
  for (int64_t i = 0; i < count; ++i) {
    const VpTreeNodeRec& rec = recs[static_cast<size_t>(i)];
    Node& n = tree->nodes_[static_cast<size_t>(i)];
    if (rec.bucket_count < 0 ||
        static_cast<size_t>(rec.bucket_count) >
            bucket_ids.size() - bucket_cursor) {
      return bad("node " + std::to_string(i) + " bucket overruns the section");
    }
    if (!std::isfinite(rec.mu) || !std::isfinite(rec.radius) ||
        rec.mu > rec.radius) {
      return bad("node " + std::to_string(i) + " has invalid mu/radius");
    }
    const bool leaf = rec.vantage == kInvalidId;
    if (leaf) {
      if (rec.inside != -1 || rec.outside != -1) {
        return bad("leaf node " + std::to_string(i) + " has children");
      }
      if (rec.bucket_count < 1) {
        return bad("leaf node " + std::to_string(i) + " has an empty bucket");
      }
    } else {
      if (rec.bucket_count != 0) {
        return bad("internal node " + std::to_string(i) + " has a bucket");
      }
      if (rec.inside < 0) {
        return bad("internal node " + std::to_string(i) +
                   " is missing its inside child");
      }
      SUBSEQ_RETURN_NOT_OK(place(rec.vantage));
      for (const int32_t child : {rec.inside, rec.outside}) {
        if (child == -1) continue;
        if (child <= i || child >= count) {
          // Children follow their parent in the pre-order layout the
          // builder emits; anything else is not a canonical encoding.
          return bad("node " + std::to_string(i) + " child index " +
                     std::to_string(child) + " breaks pre-order layout");
        }
        if (child_claimed[static_cast<size_t>(child)]) {
          return bad("node " + std::to_string(child) +
                     " is claimed by two parents");
        }
        child_claimed[static_cast<size_t>(child)] = 1;
      }
    }
    n.vantage = rec.vantage;
    n.mu = rec.mu;
    n.radius = rec.radius;
    n.inside = rec.inside;
    n.outside = rec.outside;
    for (int32_t b = 0; b < rec.bucket_count; ++b) {
      const ObjectId id = bucket_ids[bucket_cursor++];
      SUBSEQ_RETURN_NOT_OK(place(id));
      n.bucket.push_back(id);
    }
  }
  if (bucket_cursor != bucket_ids.size()) {
    return bad("bucket section holds entries no node references");
  }
  if (placed != meta.num_objects) {
    return bad("nodes place " + std::to_string(placed) + " of " +
               std::to_string(meta.num_objects) + " objects");
  }
  for (int64_t i = 0; i < count; ++i) {
    if (i != meta.root && !child_claimed[static_cast<size_t>(i)]) {
      return bad("node " + std::to_string(i) + " is unreachable");
    }
  }

  // Seeded spot-check against the oracle: for a deterministic sample of
  // internal nodes, the first object of the inside child must lie within
  // mu of the vantage and the first object of the outside child within
  // (mu, radius]. Catches snapshots whose checksums are intact but that
  // were saved for a different dataset or distance.
  const auto first_object = [&](int32_t node_index) {
    const Node& n = tree->nodes_[static_cast<size_t>(node_index)];
    return n.vantage != kInvalidId ? n.vantage : n.bucket.front();
  };
  std::vector<int32_t> internal;
  for (int64_t i = 0; i < count; ++i) {
    if (recs[static_cast<size_t>(i)].vantage != kInvalidId) {
      internal.push_back(static_cast<int32_t>(i));
    }
  }
  Rng rng(0x5095C4E76D2B913FULL ^ static_cast<uint64_t>(count));
  const size_t checks = std::min<size_t>(internal.size(), 64);
  for (size_t c = 0; c < checks; ++c) {
    const int32_t ni = internal[static_cast<size_t>(
        rng.NextBounded(static_cast<uint64_t>(internal.size())))];
    const Node& n = tree->nodes_[static_cast<size_t>(ni)];
    if (n.inside >= 0) {
      const double d = oracle.Distance(n.vantage, first_object(n.inside));
      if (!(d <= n.mu)) {
        return bad("stored mu disagrees with the oracle — was the tree "
                   "saved for a different dataset or distance?");
      }
    }
    if (n.outside >= 0) {
      const double d = oracle.Distance(n.vantage, first_object(n.outside));
      if (!(d > n.mu && d <= n.radius)) {
        return bad("stored radius disagrees with the oracle — was the tree "
                   "saved for a different dataset or distance?");
      }
    }
  }
  return tree;
}

}  // namespace subseq
