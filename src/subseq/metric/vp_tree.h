// VpTree — the vantage-point tree (Yianilos, SODA 1993), another classic
// metric-space baseline from the paper's related work (Section 2).
//
// A binary tree: each internal node holds a vantage point and the median
// distance mu of its subset to that point; the inside child holds objects
// with d(vp, x) <= mu, the outside child the rest. Range and kNN queries
// prune with the triangle inequality against (mu, the subset radius).

#ifndef SUBSEQ_METRIC_VP_TREE_H_
#define SUBSEQ_METRIC_VP_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "subseq/core/status.h"
#include "subseq/metric/range_index.h"

namespace subseq {

class SnapshotFile;
class SnapshotWriter;

/// Vp-tree tunables.
struct VpTreeOptions {
  /// Subsets of at most this size become leaf buckets.
  int32_t leaf_size = 8;
  /// Seed for vantage-point sampling.
  uint64_t seed = 17;
  /// Thread budget for construction: each node's subset-to-vantage
  /// distance pass is chunked over these threads. The tree built is
  /// identical at any setting.
  ExecContext exec;
};

/// A static vantage-point tree built over all oracle objects at
/// construction. The oracle must outlive the index.
class VpTree final : public RangeIndex {
 public:
  explicit VpTree(const DistanceOracle& oracle, VpTreeOptions options = {});

  std::string_view name() const override { return "vp-tree"; }
  int32_t size() const override { return num_objects_; }

  std::vector<ObjectId> RangeQuery(const QueryDistanceFn& query,
                                   double epsilon,
                                   QueryStats* stats) const override;

  std::vector<Neighbor> NearestNeighbors(const QueryDistanceFn& query,
                                         int32_t k,
                                         QueryStats* stats) const override;

  SpaceStats ComputeSpaceStats() const override;
  BuildStats build_stats() const override { return build_stats_; }

  /// Appends this tree's snapshot sections ("<prefix>meta", "nodes",
  /// "buckets") to `writer`. Canonical: identical trees produce
  /// identical bytes.
  Status SaveSections(SnapshotWriter& writer, const std::string& prefix) const;

  /// Reconstructs a tree from snapshot sections. Validates the stored
  /// structure (index ranges, every object placed exactly once, finite
  /// mu <= radius) plus a seeded oracle spot-check, and requires the
  /// stored leaf_size/seed to match `options` so a loaded tree is the
  /// tree a fresh build with these options would produce. The oracle
  /// and the file must outlive the tree.
  static Result<std::unique_ptr<VpTree>> LoadSections(
      const SnapshotFile& file, const std::string& prefix,
      const DistanceOracle& oracle, const VpTreeOptions& options);

 private:
  struct LoadTag {};
  VpTree(const DistanceOracle& oracle, VpTreeOptions options, LoadTag)
      : oracle_(oracle), options_(std::move(options)) {}

  struct Node {
    ObjectId vantage = kInvalidId;
    double mu = 0.0;      // median distance of the subset to the vantage
    double radius = 0.0;  // max distance of the subset to the vantage
    int32_t inside = -1;  // subset with d <= mu (node index or -1)
    int32_t outside = -1; // subset with d > mu
    // Leaf payload (empty for internal nodes).
    std::vector<ObjectId> bucket;
  };

  int32_t BuildSubtree(std::vector<ObjectId>* ids, int32_t begin,
                       int32_t end, uint64_t seed);

  const DistanceOracle& oracle_;
  VpTreeOptions options_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  int32_t num_objects_ = 0;
  BuildStats build_stats_;
};

}  // namespace subseq

#endif  // SUBSEQ_METRIC_VP_TREE_H_
