#include "subseq/metric/range_index.h"

#include "subseq/core/check.h"
#include "subseq/exec/parallel_for.h"

namespace subseq {

std::vector<std::vector<ObjectId>> RangeIndex::BatchRangeQuery(
    std::span<const QueryDistanceFn> queries, double epsilon,
    const ExecContext& exec, StatsSink* sink, QueryStats* per_query) const {
  std::vector<std::vector<ObjectId>> results(queries.size());
  ParallelFor(exec, static_cast<int64_t>(queries.size()),
              [&](int64_t begin, int64_t end, int32_t) {
                std::vector<uint8_t> scratch;  // chunk-lifetime, reused
                int64_t computations = 0;
                int64_t result_count = 0;
                int64_t pruned = 0;
                int64_t kim_pruned = 0;
                int64_t erp_pruned = 0;
                int64_t probed = 0;
                int64_t skipped = 0;
                for (int64_t i = begin; i < end; ++i) {
                  QueryStats qs;
                  results[static_cast<size_t>(i)] = RangeQueryWithScratch(
                      queries[static_cast<size_t>(i)], epsilon, &qs,
                      &scratch);
                  // Chunks cover disjoint index ranges: slot-addressed
                  // per-query stats need no synchronization. The split is
                  // only usable by multi-tenant billing and shard roll-up
                  // if slot i's stats describe slot i's results — a
                  // backend whose RangeQuery misreports result_count
                  // would silently corrupt both, so enforce it here.
                  SUBSEQ_CHECK(qs.result_count ==
                               static_cast<int64_t>(
                                   results[static_cast<size_t>(i)].size()));
                  if (per_query != nullptr) per_query[i] = qs;
                  computations += qs.distance_computations;
                  result_count += qs.result_count;
                  pruned += qs.lower_bound_pruned;
                  kim_pruned += qs.lb_kim_pruned;
                  erp_pruned += qs.lb_erp_pruned;
                  probed += qs.cells_probed;
                  skipped += qs.cells_skipped;
                }
                if (sink != nullptr) {
                  sink->AddDistanceComputations(computations);
                  sink->AddResults(result_count);
                  sink->AddLowerBoundPruned(pruned);
                  sink->AddLbKimPruned(kim_pruned);
                  sink->AddLbErpPruned(erp_pruned);
                  sink->AddCellsProbed(probed);
                  sink->AddCellsSkipped(skipped);
                }
              });
  return results;
}

}  // namespace subseq
