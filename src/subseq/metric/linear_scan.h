// LinearScan: the naive baseline — computes the query distance to every
// object. Serves as the denominator of the paper's "% of distance
// computations" metric and as ground truth in index-equivalence tests.

#ifndef SUBSEQ_METRIC_LINEAR_SCAN_H_
#define SUBSEQ_METRIC_LINEAR_SCAN_H_

#include <memory>
#include <string>

#include "subseq/core/status.h"
#include "subseq/metric/range_index.h"

namespace subseq {

class SnapshotFile;
class SnapshotWriter;

/// Exhaustive range search over n objects: always n distance computations.
class LinearScan final : public RangeIndex {
 public:
  explicit LinearScan(int32_t num_objects) : num_objects_(num_objects) {}

  std::string_view name() const override { return "linear-scan"; }
  int32_t size() const override { return num_objects_; }

  std::vector<ObjectId> RangeQuery(const QueryDistanceFn& query,
                                   double epsilon,
                                   QueryStats* stats) const override;

  /// Tuned batch execution. Wide batches parallelize across queries; a
  /// batch narrower than the thread budget shards each scan across
  /// object ranges instead (per-chunk results concatenate in chunk order,
  /// which equals the sequential ascending-id order).
  std::vector<std::vector<ObjectId>> BatchRangeQuery(
      std::span<const QueryDistanceFn> queries, double epsilon,
      const ExecContext& exec, StatsSink* sink,
      QueryStats* per_query = nullptr) const override;

  std::vector<Neighbor> NearestNeighbors(const QueryDistanceFn& query,
                                         int32_t k,
                                         QueryStats* stats) const override;

  SpaceStats ComputeSpaceStats() const override;
  BuildStats build_stats() const override { return BuildStats{}; }

  /// Appends this scan's one snapshot section ("<prefix>meta"). A
  /// linear scan has no structure, but persisting it keeps the snapshot
  /// self-describing and the five-kind round-trip uniform.
  Status SaveSections(SnapshotWriter& writer, const std::string& prefix) const;

  /// Reconstructs a scan from snapshot sections; the stored object
  /// count must match the oracle.
  static Result<std::unique_ptr<LinearScan>> LoadSections(
      const SnapshotFile& file, const std::string& prefix,
      const DistanceOracle& oracle);

 private:
  int32_t num_objects_;
};

}  // namespace subseq

#endif  // SUBSEQ_METRIC_LINEAR_SCAN_H_
