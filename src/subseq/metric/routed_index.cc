#include "subseq/metric/routed_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "subseq/core/check.h"
#include "subseq/exec/parallel_for.h"
#include "subseq/snapshot/reader.h"
#include "subseq/snapshot/writer.h"

namespace subseq {

namespace {

/// Farthest-point k-center + nearest-pivot assignment + oversized-cell
/// splitting. Fully deterministic: every tie breaks toward the lowest
/// object id / lowest cell, and all parallel passes write slot-addressed
/// state only. `nearest` holds the exact distance of every object to its
/// owning pivot throughout (DistanceBounded may lie only about objects
/// that keep their previous, closer owner).
RoutedLayout SelectCells(const DistanceOracle& oracle, int32_t k,
                         const ExecContext& exec) {
  const int32_t n = oracle.size();
  RoutedLayout layout;
  std::vector<double> nearest(static_cast<size_t>(n));
  std::vector<int32_t> owner(static_cast<size_t>(n), 0);

  // One assignment pass against pivot p for ids [0, n): billed n
  // computations (early-abandoned calls are still evaluations).
  const auto assign_pass = [&](ObjectId p, int32_t cell, int64_t lo,
                               int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const double d = oracle.DistanceBounded(
          static_cast<ObjectId>(i), p, nearest[static_cast<size_t>(i)]);
      // Strict <: ties keep the earliest pivot, so insertion order of
      // pivots fixes the assignment.
      if (d < nearest[static_cast<size_t>(i)]) {
        nearest[static_cast<size_t>(i)] = d;
        owner[static_cast<size_t>(i)] = cell;
      }
    }
  };

  // Pivot 0 is object 0; seed with exact distances to it.
  layout.pivots.push_back(0);
  ParallelFor(exec, n, [&](int64_t lo, int64_t hi, int32_t) {
    for (int64_t i = lo; i < hi; ++i) {
      nearest[static_cast<size_t>(i)] = oracle.Distance(
          static_cast<ObjectId>(i), 0);
    }
  });
  layout.computations += n;

  // The farthest object from all chosen pivots becomes the next pivot
  // (classic 2-approximation k-center). The argmax is serial over the
  // slot-filled array, so thread budget cannot change the choice.
  const auto farthest = [&](int32_t begin, int32_t end) {
    int32_t best = begin;
    for (int32_t i = begin + 1; i < end; ++i) {
      if (nearest[static_cast<size_t>(i)] >
          nearest[static_cast<size_t>(best)]) {
        best = i;
      }
    }
    return best;
  };

  while (static_cast<int32_t>(layout.pivots.size()) < k) {
    const int32_t next = farthest(0, n);
    // Every object already coincides with some pivot: more pivots would
    // only mint empty or duplicate cells. Stop early; the meta records
    // requested vs actual.
    if (nearest[static_cast<size_t>(next)] == 0.0) break;
    const int32_t cell = static_cast<int32_t>(layout.pivots.size());
    layout.pivots.push_back(next);
    ParallelFor(exec, n, [&](int64_t lo, int64_t hi, int32_t) {
      assign_pass(next, cell, lo, hi);
    });
    layout.computations += n;
  }

  // Skew rebalancing: split any cell holding more than twice the mean
  // membership by promoting its farthest member to a fresh pivot and
  // reassigning that cell's members only (other cells are untouched, so
  // the pass is local and cheap). Splitting is capped at doubling the
  // resolved cell count — enough to break up pathological skew without
  // letting adversarial data degenerate toward one cell per object.
  const int32_t max_cells = std::min(n, 2 * k);
  while (static_cast<int32_t>(layout.pivots.size()) < max_cells) {
    const int32_t num_cells = static_cast<int32_t>(layout.pivots.size());
    std::vector<int32_t> sizes(static_cast<size_t>(num_cells), 0);
    for (int32_t i = 0; i < n; ++i) ++sizes[static_cast<size_t>(owner[i])];
    const double avg = static_cast<double>(n) / num_cells;
    int32_t victim = -1;
    for (int32_t c = 0; c < num_cells; ++c) {
      if (static_cast<double>(sizes[static_cast<size_t>(c)]) > 2.0 * avg &&
          (victim < 0 || sizes[static_cast<size_t>(c)] >
                             sizes[static_cast<size_t>(victim)])) {
        victim = c;
      }
    }
    if (victim < 0) break;
    // Farthest member of the victim cell (ties: lowest id). Zero spread
    // means the cell is one point repeated — unsplittable.
    int32_t promote = -1;
    for (int32_t i = 0; i < n; ++i) {
      if (owner[static_cast<size_t>(i)] != victim) continue;
      if (promote < 0 || nearest[static_cast<size_t>(i)] >
                             nearest[static_cast<size_t>(promote)]) {
        promote = i;
      }
    }
    if (promote < 0 || nearest[static_cast<size_t>(promote)] == 0.0) break;
    const int32_t cell = num_cells;
    layout.pivots.push_back(promote);
    for (int32_t i = 0; i < n; ++i) {
      if (owner[static_cast<size_t>(i)] != victim) continue;
      const double d = oracle.DistanceBounded(
          static_cast<ObjectId>(i), promote, nearest[static_cast<size_t>(i)]);
      if (d < nearest[static_cast<size_t>(i)]) {
        nearest[static_cast<size_t>(i)] = d;
        owner[static_cast<size_t>(i)] = cell;
      }
      ++layout.computations;
    }
  }

  // Materialize the ascending member map, the begins table, and the
  // covering radii (max exact member-to-pivot distance; >= 0 always,
  // every pivot owns itself at distance 0).
  const int32_t num_cells = static_cast<int32_t>(layout.pivots.size());
  layout.begins.assign(static_cast<size_t>(num_cells) + 1, 0);
  for (int32_t i = 0; i < n; ++i) {
    ++layout.begins[static_cast<size_t>(owner[i]) + 1];
  }
  for (int32_t c = 0; c < num_cells; ++c) {
    layout.begins[static_cast<size_t>(c) + 1] +=
        layout.begins[static_cast<size_t>(c)];
  }
  layout.members.resize(static_cast<size_t>(n));
  layout.radii.assign(static_cast<size_t>(num_cells), 0.0);
  std::vector<int32_t> cursor(layout.begins.begin(), layout.begins.end() - 1);
  for (int32_t i = 0; i < n; ++i) {
    const int32_t c = owner[static_cast<size_t>(i)];
    layout.members[static_cast<size_t>(cursor[static_cast<size_t>(c)]++)] = i;
    layout.radii[static_cast<size_t>(c)] = std::max(
        layout.radii[static_cast<size_t>(c)], nearest[static_cast<size_t>(i)]);
  }
  return layout;
}

struct RoutedMetaRec {
  int32_t requested_cells;
  int32_t actual_cells;
  int32_t total_objects;
  int32_t reserved;
  int64_t build_computations;
};
static_assert(sizeof(RoutedMetaRec) == 24);

}  // namespace

Result<std::unique_ptr<RoutedIndex>> RoutedIndex::Build(
    const DistanceOracle& oracle, const ShardIndexFactory& factory,
    RoutedIndexOptions options) {
  ExecContext exec = options.exec;
  exec.routing_cells = options.num_cells;
  const int32_t n = oracle.size();
  const int32_t k = exec.ResolvedCells(n);

  auto routed = std::unique_ptr<RoutedIndex>(new RoutedIndex());
  routed->requested_cells_ = k;
  RoutedLayout layout = ComputeLayout(oracle, k, exec);
  routed->pivots_ = std::move(layout.pivots);
  routed->radii_ = std::move(layout.radii);
  routed->members_ = std::move(layout.members);
  routed->begins_ = std::move(layout.begins);
  routed->routing_build_computations_ = layout.computations;
  routed->WireCells(oracle);

  // Build the inner indexes in parallel: each cell is an independent
  // closed problem over its member view. Statuses land in per-cell
  // slots; the first failure (in cell order, for determinism) wins.
  const int32_t cells = routed->num_cells();
  std::vector<Status> statuses(static_cast<size_t>(cells), Status::OK());
  ParallelFor(exec, cells, [&](int64_t lo, int64_t hi, int32_t) {
    for (int64_t c = lo; c < hi; ++c) {
      Cell& cell = routed->cells_[static_cast<size_t>(c)];
      auto built = factory(*cell.oracle, static_cast<int32_t>(c));
      if (built.ok()) {
        cell.index = std::move(built).value();
        SUBSEQ_CHECK(cell.index != nullptr);
      } else {
        statuses[static_cast<size_t>(c)] = built.status();
      }
    }
  });
  for (const Status& status : statuses) {
    SUBSEQ_RETURN_NOT_OK(status);
  }

  routed->name_ = "routed[" + std::to_string(cells) + "]:" +
                  std::string(routed->cells_.front().index->name());
  return routed;
}

RoutedLayout RoutedIndex::ComputeLayout(const DistanceOracle& oracle,
                                        int32_t num_cells,
                                        const ExecContext& exec) {
  RoutedLayout layout = SelectCells(oracle, num_cells, exec);
  layout.requested_cells = num_cells;
  return layout;
}

void RoutedIndex::WireCells(const DistanceOracle& oracle) {
  const int32_t cells = static_cast<int32_t>(pivots_.size());
  cells_.resize(static_cast<size_t>(cells));
  cell_payloads_.assign(static_cast<size_t>(cells), nullptr);
  // Per-cell lower-bound payloads are derived data (a permutation of
  // windows the oracle already holds): built here both on fresh builds
  // and on snapshot loads, never serialized.
  const auto* payload_source =
      dynamic_cast<const LowerBoundPayloadSource*>(&oracle);
  for (int32_t c = 0; c < cells; ++c) {
    const int32_t begin = begins_[static_cast<size_t>(c)];
    const int32_t end = begins_[static_cast<size_t>(c) + 1];
    cells_[static_cast<size_t>(c)].oracle = std::make_unique<CellOracle>(
        oracle, members_.data() + begin, end - begin);
    if (payload_source != nullptr) {
      cell_payloads_[static_cast<size_t>(c)] =
          payload_source->MaterializeLbPayloads(std::span<const ObjectId>(
              members_.data() + begin, static_cast<size_t>(end - begin)));
    }
  }
}

int32_t RoutedIndex::size() const {
  int32_t total = 0;
  for (const Cell& cell : cells_) total += cell.index->size();
  return total;
}

std::span<const ObjectId> RoutedIndex::cell_members(int32_t c) const {
  SUBSEQ_CHECK(c >= 0 && c < num_cells());
  const int32_t begin = begins_[static_cast<size_t>(c)];
  const int32_t end = begins_[static_cast<size_t>(c) + 1];
  return std::span<const ObjectId>(members_.data() + begin,
                                   static_cast<size_t>(end - begin));
}

QueryDistanceFn RoutedIndex::CellQuery(const QueryDistanceFn& query,
                                       int32_t c) const {
  const ObjectId* members = members_.data() + begins_[static_cast<size_t>(c)];
  // Cells are scattered id subsets, so the query's lower-bound provider
  // (which speaks contiguous global id blocks) cannot ride through
  // as-is. When the cell holds a materialized payload — its members'
  // windows permuted cell-contiguously at build time — the provider is
  // rebound to it and the inner scan prunes over dense cell-local ids
  // 0..size-1. Without a payload (or a provider that cannot bind) the
  // plain wrapper sheds prunability, which only affects
  // lower_bound_pruned observability — never the hit set.
  if (const PrunableQueryFn* prunable = GetPrunable(query);
      prunable != nullptr && prunable->lower_bound != nullptr &&
      cell_payloads_[static_cast<size_t>(c)] != nullptr) {
    if (std::shared_ptr<const QueryLowerBound> bound =
            prunable->lower_bound->BindTo(
                cell_payloads_[static_cast<size_t>(c)])) {
      PrunableQueryFn local;
      local.fn = [&query, members](ObjectId id) {
        return query(members[id]);
      };
      local.lower_bound = std::move(bound);
      local.lb_offset = 0;
      return QueryDistanceFn(std::move(local));
    }
  }
  return [&query, members](ObjectId local) { return query(members[local]); };
}

bool RoutedIndex::Probes(double pivot_distance, int32_t c,
                         double epsilon) const {
  // Skip only when the triangle inequality proves the cell empty of
  // hits with the same float-safety margin the scan prefilter uses:
  // d(q, m) >= d(q, pivot) - r_c > cutoff(epsilon) >= epsilon for every
  // member m — the padding absorbs rounding at the boundary, so a skip
  // can never be a false dismissal.
  return pivot_distance <=
         radii_[static_cast<size_t>(c)] + LowerBoundPruneCutoff(epsilon);
}

std::vector<ObjectId> RoutedIndex::RangeQuery(const QueryDistanceFn& query,
                                              double epsilon,
                                              QueryStats* stats) const {
  const int32_t cells = num_cells();
  std::vector<ObjectId> merged;
  // Routing distances are executed work, billed like any other query
  // evaluation: one per cell, probed or not.
  int64_t computations = cells;
  int64_t pruned = 0;
  int64_t kim_pruned = 0;
  int64_t erp_pruned = 0;
  int64_t probed = 0;
  for (int32_t c = 0; c < cells; ++c) {
    const double d = query(pivots_[static_cast<size_t>(c)]);
    if (!Probes(d, c, epsilon)) continue;
    ++probed;
    const ObjectId* members =
        members_.data() + begins_[static_cast<size_t>(c)];
    QueryStats cell_stats;
    const std::vector<ObjectId> local =
        cells_[static_cast<size_t>(c)].index->RangeQuery(
            CellQuery(query, c), epsilon, &cell_stats);
    SUBSEQ_CHECK(cell_stats.result_count ==
                 static_cast<int64_t>(local.size()));
    computations += cell_stats.distance_computations;
    pruned += cell_stats.lower_bound_pruned;
    kim_pruned += cell_stats.lb_kim_pruned;
    erp_pruned += cell_stats.lb_erp_pruned;
    merged.reserve(merged.size() + local.size());
    for (const ObjectId id : local) merged.push_back(members[id]);
  }
  if (stats != nullptr) {
    stats->distance_computations = computations;
    stats->result_count = static_cast<int64_t>(merged.size());
    stats->lower_bound_pruned = pruned;
    stats->lb_kim_pruned = kim_pruned;
    stats->lb_erp_pruned = erp_pruned;
    stats->cells_probed = probed;
    stats->cells_skipped = cells - probed;
  }
  return merged;
}

std::vector<std::vector<ObjectId>> RoutedIndex::BatchRangeQuery(
    std::span<const QueryDistanceFn> queries, double epsilon,
    const ExecContext& exec, StatsSink* sink, QueryStats* per_query) const {
  const size_t num_queries = queries.size();
  const int32_t cells = num_cells();
  std::vector<std::vector<ObjectId>> results(num_queries);
  if (num_queries == 0) return results;

  // Phase 0 — route: the full query-by-pivot distance matrix, computed
  // in parallel over queries into slot-addressed storage. Routing
  // decisions derive from these values only, so they are identical at
  // any thread budget (and identical to the stand-alone RangeQuery's).
  std::vector<double> pivot_dist(num_queries * static_cast<size_t>(cells));
  ParallelFor(exec, static_cast<int64_t>(num_queries),
              [&](int64_t lo, int64_t hi, int32_t) {
                for (int64_t q = lo; q < hi; ++q) {
                  double* row = pivot_dist.data() +
                                static_cast<size_t>(q) *
                                    static_cast<size_t>(cells);
                  for (int32_t c = 0; c < cells; ++c) {
                    row[c] = queries[static_cast<size_t>(q)](
                        pivots_[static_cast<size_t>(c)]);
                  }
                }
              });

  // Per-cell probing sub-batches, query order preserved (ascending q).
  std::vector<std::vector<int32_t>> probing(static_cast<size_t>(cells));
  int64_t total_probed = 0;
  for (size_t q = 0; q < num_queries; ++q) {
    const double* row = pivot_dist.data() + q * static_cast<size_t>(cells);
    for (int32_t c = 0; c < cells; ++c) {
      if (Probes(row[c], c, epsilon)) {
        probing[static_cast<size_t>(c)].push_back(static_cast<int32_t>(q));
      }
    }
  }
  for (const std::vector<int32_t>& p : probing) {
    total_probed += static_cast<int64_t>(p.size());
  }

  // Phase 1 — fan out: each cell answers its probing sub-batch as one
  // inner BatchRangeQuery, cells in parallel (inner parallel sections
  // called from pool workers run inline, so the two levels never
  // oversubscribe). Inner calls bill their executed work straight into
  // the shared sink; the per-cell splits are kept for the roll-up.
  std::vector<std::vector<std::vector<ObjectId>>> cell_results(
      static_cast<size_t>(cells));
  std::vector<std::vector<QueryStats>> cell_splits(static_cast<size_t>(cells));
  ParallelFor(exec, cells, [&](int64_t lo, int64_t hi, int32_t) {
    for (int64_t c = lo; c < hi; ++c) {
      const std::vector<int32_t>& subset = probing[static_cast<size_t>(c)];
      if (subset.empty()) continue;
      std::vector<QueryDistanceFn> local;
      local.reserve(subset.size());
      for (const int32_t q : subset) {
        local.push_back(CellQuery(queries[static_cast<size_t>(q)],
                                  static_cast<int32_t>(c)));
      }
      cell_splits[static_cast<size_t>(c)].resize(subset.size());
      cell_results[static_cast<size_t>(c)] =
          cells_[static_cast<size_t>(c)].index->BatchRangeQuery(
              local, epsilon, exec, sink,
              cell_splits[static_cast<size_t>(c)].data());
    }
  });

  // Phase 2 — cell-order merge + exact per-query roll-up, both
  // slot-addressed. Every query is billed its full routing row (the
  // stand-alone RangeQuery accounting) plus its probed cells' splits.
  std::vector<QueryStats> rolled(per_query != nullptr ? num_queries : 0);
  for (int32_t c = 0; c < cells; ++c) {
    const ObjectId* members =
        members_.data() + begins_[static_cast<size_t>(c)];
    const std::vector<int32_t>& subset = probing[static_cast<size_t>(c)];
    for (size_t j = 0; j < subset.size(); ++j) {
      const size_t q = static_cast<size_t>(subset[j]);
      const std::vector<ObjectId>& local =
          cell_results[static_cast<size_t>(c)][j];
      std::vector<ObjectId>& merged = results[q];
      merged.reserve(merged.size() + local.size());
      for (const ObjectId id : local) merged.push_back(members[id]);
      if (per_query != nullptr) {
        const QueryStats& split = cell_splits[static_cast<size_t>(c)][j];
        rolled[q].distance_computations += split.distance_computations;
        rolled[q].result_count += split.result_count;
        rolled[q].lower_bound_pruned += split.lower_bound_pruned;
        rolled[q].lb_kim_pruned += split.lb_kim_pruned;
        rolled[q].lb_erp_pruned += split.lb_erp_pruned;
        rolled[q].delta_windows_probed += split.delta_windows_probed;
        rolled[q].tombstones_masked += split.tombstones_masked;
        ++rolled[q].cells_probed;
      }
    }
  }
  if (per_query != nullptr) {
    for (size_t q = 0; q < num_queries; ++q) {
      rolled[q].distance_computations += cells;
      rolled[q].cells_skipped = cells - rolled[q].cells_probed;
      // The roll-up is only exact if every cell billed this slot for
      // exactly the results it returned in this slot (the ordering
      // contract of RangeIndex::BatchRangeQuery's per-query split).
      SUBSEQ_CHECK(rolled[q].result_count ==
                   static_cast<int64_t>(results[q].size()));
      per_query[q] = rolled[q];
    }
  }
  if (sink != nullptr) {
    // Inner calls already added their executed work; add the routing
    // layer's own accounting (pivot distances + cell decisions).
    sink->AddDistanceComputations(static_cast<int64_t>(num_queries) * cells);
    sink->AddCellsProbed(total_probed);
    sink->AddCellsSkipped(static_cast<int64_t>(num_queries) * cells -
                          total_probed);
  }
  return results;
}

std::vector<Neighbor> RoutedIndex::NearestNeighbors(
    const QueryDistanceFn& query, int32_t k, QueryStats* stats) const {
  const int32_t cells = num_cells();
  // Route: one pivot distance per cell, then visit cells by ascending
  // optimistic bound max(0, d(q, pivot) - r_c) (ties by cell index) so
  // near cells tighten the k-th best distance before far cells are
  // considered.
  std::vector<std::pair<double, int32_t>> order(static_cast<size_t>(cells));
  std::vector<double> pivot_dist(static_cast<size_t>(cells));
  for (int32_t c = 0; c < cells; ++c) {
    pivot_dist[static_cast<size_t>(c)] =
        query(pivots_[static_cast<size_t>(c)]);
    order[static_cast<size_t>(c)] = {
        std::max(0.0, pivot_dist[static_cast<size_t>(c)] -
                          radii_[static_cast<size_t>(c)]),
        c};
  }
  std::sort(order.begin(), order.end());

  std::vector<Neighbor> best;
  int64_t computations = cells;
  int64_t probed = 0;
  for (const auto& [bound, c] : order) {
    // Sound skip: every member of the cell is at least `bound` away; if
    // we already hold k neighbors all strictly closer (with the same
    // rounding margin range routing uses), the cell cannot contribute.
    if (best.size() >= static_cast<size_t>(std::max(k, 0)) && k > 0 &&
        bound > LowerBoundPruneCutoff(best.back().distance)) {
      continue;
    }
    ++probed;
    const ObjectId* members =
        members_.data() + begins_[static_cast<size_t>(c)];
    QueryStats cell_stats;
    std::vector<Neighbor> local =
        cells_[static_cast<size_t>(c)].index->NearestNeighbors(
            CellQuery(query, c), k, &cell_stats);
    computations += cell_stats.distance_computations;
    for (Neighbor& nb : local) {
      nb.id = members[nb.id];
      best.push_back(nb);
    }
    // Keep only the running k best; stable sort keeps (visit order,
    // inner order) among exact ties — the index-dependent freedom the
    // RangeIndex contract allows.
    std::stable_sort(best.begin(), best.end(),
                     [](const Neighbor& a, const Neighbor& b) {
                       return a.distance < b.distance;
                     });
    if (k >= 0 && best.size() > static_cast<size_t>(k)) {
      best.resize(static_cast<size_t>(k));
    }
  }
  if (stats != nullptr) {
    stats->distance_computations = computations;
    stats->result_count = static_cast<int64_t>(best.size());
    stats->cells_probed = probed;
    stats->cells_skipped = cells - probed;
  }
  return best;
}

SpaceStats RoutedIndex::ComputeSpaceStats() const {
  SpaceStats total;
  double weighted_parents = 0.0;
  for (const Cell& cell : cells_) {
    const SpaceStats s = cell.index->ComputeSpaceStats();
    total.num_objects += s.num_objects;
    total.num_nodes += s.num_nodes;
    total.num_list_entries += s.num_list_entries;
    total.num_levels = std::max(total.num_levels, s.num_levels);
    total.approx_bytes += s.approx_bytes;
    weighted_parents += s.avg_parents * static_cast<double>(s.num_nodes);
  }
  if (total.num_nodes > 0) {
    total.avg_parents =
        weighted_parents / static_cast<double>(total.num_nodes);
  }
  total.approx_bytes += static_cast<int64_t>(
      cells_.size() * (sizeof(Cell) + sizeof(CellOracle)) +
      pivots_.size() * sizeof(ObjectId) + radii_.size() * sizeof(double) +
      members_.size() * sizeof(ObjectId) + begins_.size() * sizeof(int32_t));
  return total;
}

BuildStats RoutedIndex::build_stats() const {
  BuildStats total;
  total.distance_computations = routing_build_computations_;
  for (const Cell& cell : cells_) {
    total.distance_computations +=
        cell.index->build_stats().distance_computations;
  }
  return total;
}

std::string RoutedIndex::CellPrefix(const std::string& prefix, int32_t c) {
  return prefix + "c" + std::to_string(c) + ".";
}

Status RoutedIndex::SaveSections(SnapshotWriter& writer,
                                 const std::string& prefix,
                                 const ShardIndexSaver& saver) const {
  RoutedMetaRec meta{};
  meta.requested_cells = requested_cells_;
  meta.actual_cells = num_cells();
  meta.total_objects = size();
  meta.build_computations = routing_build_computations_;
  SUBSEQ_RETURN_NOT_OK(writer.AppendPodStruct(prefix + "meta", meta));
  SUBSEQ_RETURN_NOT_OK(writer.AppendPodSection<ObjectId>(
      prefix + "pivots", pivots_));
  SUBSEQ_RETURN_NOT_OK(writer.AppendPodSection<double>(
      prefix + "radii", radii_));
  SUBSEQ_RETURN_NOT_OK(writer.AppendPodSection<int32_t>(
      prefix + "cell_begins", begins_));
  SUBSEQ_RETURN_NOT_OK(writer.AppendPodSection<ObjectId>(
      prefix + "members", members_));
  for (int32_t c = 0; c < num_cells(); ++c) {
    SUBSEQ_RETURN_NOT_OK(saver(*cells_[static_cast<size_t>(c)].index, writer,
                               CellPrefix(prefix, c)));
  }
  return Status::OK();
}

Status RoutedIndex::SaveLayoutSections(const RoutedLayout& layout,
                                       SnapshotWriter& writer,
                                       const std::string& prefix) {
  // Must stay byte-identical to the head of SaveSections: an index built
  // from `layout` records total_objects = sum of cell sizes, which is
  // exactly the member-map length (the map is a permutation of [0, n)).
  RoutedMetaRec meta{};
  meta.requested_cells = layout.requested_cells;
  meta.actual_cells = static_cast<int32_t>(layout.pivots.size());
  meta.total_objects = static_cast<int32_t>(layout.members.size());
  meta.build_computations = layout.computations;
  SUBSEQ_RETURN_NOT_OK(writer.AppendPodStruct(prefix + "meta", meta));
  SUBSEQ_RETURN_NOT_OK(writer.AppendPodSection<ObjectId>(
      prefix + "pivots", layout.pivots));
  SUBSEQ_RETURN_NOT_OK(writer.AppendPodSection<double>(
      prefix + "radii", layout.radii));
  SUBSEQ_RETURN_NOT_OK(writer.AppendPodSection<int32_t>(
      prefix + "cell_begins", layout.begins));
  return writer.AppendPodSection<ObjectId>(prefix + "members",
                                           layout.members);
}

Result<std::unique_ptr<RoutedIndex>> RoutedIndex::LoadSections(
    const SnapshotFile& file, const std::string& prefix,
    const DistanceOracle& oracle, int32_t expected_cells,
    const ShardIndexLoader& loader) {
  RoutedMetaRec meta{};
  SUBSEQ_RETURN_NOT_OK(ReadPodStruct(file, prefix + "meta", &meta));
  const auto bad = [&](const std::string& why) {
    return Status::InvalidArgument("routed snapshot sections '" + prefix +
                                   "*': " + why);
  };
  if (meta.total_objects != oracle.size()) {
    return bad("covers " + std::to_string(meta.total_objects) +
               " objects but the oracle holds " +
               std::to_string(oracle.size()));
  }
  if (meta.requested_cells != expected_cells) {
    return bad("saved with " + std::to_string(meta.requested_cells) +
               " requested cells but the current options resolve to " +
               std::to_string(expected_cells) +
               "; set exec.routing_cells to match the snapshot (a loaded "
               "index must equal the fresh build it replaces)");
  }
  const int32_t cells = meta.actual_cells;
  if (cells < 1 || cells > std::max(1, meta.total_objects)) {
    return bad("cell count " + std::to_string(cells) + " out of range");
  }

  auto routed = std::unique_ptr<RoutedIndex>(new RoutedIndex());
  routed->requested_cells_ = meta.requested_cells;
  routed->routing_build_computations_ = meta.build_computations;
  SUBSEQ_RETURN_NOT_OK(ReadPodSection<ObjectId>(file, prefix + "pivots",
                                                &routed->pivots_));
  SUBSEQ_RETURN_NOT_OK(ReadPodSection<double>(file, prefix + "radii",
                                              &routed->radii_));
  SUBSEQ_RETURN_NOT_OK(ReadPodSection<int32_t>(file, prefix + "cell_begins",
                                               &routed->begins_));
  SUBSEQ_RETURN_NOT_OK(ReadPodSection<ObjectId>(file, prefix + "members",
                                                &routed->members_));
  if (static_cast<int32_t>(routed->pivots_.size()) != cells ||
      static_cast<int32_t>(routed->radii_.size()) != cells ||
      static_cast<int32_t>(routed->begins_.size()) != cells + 1) {
    return bad("routing table sizes disagree with the cell count " +
               std::to_string(cells));
  }
  if (static_cast<int32_t>(routed->members_.size()) != meta.total_objects) {
    return bad("member map holds " + std::to_string(routed->members_.size()) +
               " entries, expected " + std::to_string(meta.total_objects));
  }
  if (routed->begins_.front() != 0 ||
      routed->begins_.back() != meta.total_objects) {
    return bad("cell begins do not span [0, n)");
  }
  std::vector<bool> seen(static_cast<size_t>(meta.total_objects), false);
  for (int32_t c = 0; c < cells; ++c) {
    const int32_t begin = routed->begins_[static_cast<size_t>(c)];
    const int32_t end = routed->begins_[static_cast<size_t>(c) + 1];
    if (begin >= end) {
      return bad("cell " + std::to_string(c) + " is empty");
    }
    bool holds_pivot = false;
    ObjectId prev = kInvalidId;
    for (int32_t i = begin; i < end; ++i) {
      const ObjectId id = routed->members_[static_cast<size_t>(i)];
      if (id < 0 || id >= meta.total_objects ||
          seen[static_cast<size_t>(id)]) {
        return bad("member map is not a permutation of [0, n)");
      }
      if (id <= prev) {
        return bad("cell " + std::to_string(c) +
                   " members are not ascending");
      }
      seen[static_cast<size_t>(id)] = true;
      prev = id;
      holds_pivot |= (id == routed->pivots_[static_cast<size_t>(c)]);
    }
    if (!holds_pivot) {
      return bad("cell " + std::to_string(c) + " does not contain its pivot");
    }
    if (!(routed->radii_[static_cast<size_t>(c)] >= 0.0)) {
      return bad("cell " + std::to_string(c) + " has a negative radius");
    }
  }

  routed->WireCells(oracle);
  for (int32_t c = 0; c < cells; ++c) {
    Cell& cell = routed->cells_[static_cast<size_t>(c)];
    auto inner = loader(file, CellPrefix(prefix, c), *cell.oracle, c);
    if (!inner.ok()) return inner.status();
    cell.index = std::move(inner).value();
    SUBSEQ_CHECK(cell.index != nullptr);
    if (cell.index->size() != cell.oracle->size()) {
      return bad("cell " + std::to_string(c) + " loaded " +
                 std::to_string(cell.index->size()) + " objects, expected " +
                 std::to_string(cell.oracle->size()));
    }
  }
  routed->name_ = "routed[" + std::to_string(cells) + "]:" +
                  std::string(routed->cells_.front().index->name());
  return routed;
}

}  // namespace subseq
