// RoutedIndex — a two-level metric index: K coarse pivot cells, each
// backed by an inner index of any backend, with epsilon-adaptive cell
// skipping at query time.
//
// ShardedIndex partitions the catalog by contiguous id, so every query
// must probe every shard: sharding buys parallel builds at the price of
// ~K-fold query fan-out. RoutedIndex partitions by *distance* instead
// (IVF-style): a deterministic k-center (farthest-point) pass selects K
// pivot windows, every window joins its nearest pivot's cell, and each
// cell records its covering radius r_c = max d(member, pivot). A range
// query then measures the query against the K pivots and, by the
// triangle inequality, probes only cells with
//
//   d(q, pivot_c) <= r_c + epsilon
//
// — every member m of a skipped cell satisfies
// d(q, m) >= d(q, pivot_c) - d(m, pivot_c) >= d(q, pivot_c) - r_c >
// epsilon, so no true hit is ever lost. This turns the triangle
// inequality into *cross-cell* pruning on top of whatever pruning the
// inner backends do, and is what flips the sharding trade-off: parallel
// per-cell builds AND fewer query computations.
//
// Soundness requires a metric distance (the skip rule is the triangle
// inequality); the frame layer refuses routing for non-metric
// distances. Pivot selection, assignment, and the skew-rebalancing
// split pass are all deterministic (ties break toward the lowest id /
// lowest cell), so the same catalog always yields the same cells.

#ifndef SUBSEQ_METRIC_ROUTED_INDEX_H_
#define SUBSEQ_METRIC_ROUTED_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "subseq/core/status.h"
#include "subseq/metric/range_index.h"
#include "subseq/metric/sharded_index.h"

namespace subseq {

class SnapshotFile;
class SnapshotWriter;

/// An arbitrary subset of a parent oracle's objects presented as a
/// self-contained oracle with local ids 0..size-1. Local id i is parent
/// id members[i]; members are ascending. The parent and the member
/// array must outlive the view. (ShardOracle is the contiguous special
/// case; cells are scattered, so they need the explicit map.)
class CellOracle final : public DistanceOracle {
 public:
  CellOracle(const DistanceOracle& parent, const ObjectId* members,
             int32_t size)
      : parent_(parent), members_(members), size_(size) {}

  int32_t size() const override { return size_; }

  double Distance(ObjectId a, ObjectId b) const override {
    return parent_.Distance(members_[a], members_[b]);
  }

  double DistanceBounded(ObjectId a, ObjectId b,
                         double upper_bound) const override {
    return parent_.DistanceBounded(members_[a], members_[b], upper_bound);
  }

  /// Parent id of local id `local`.
  ObjectId parent_id(ObjectId local) const { return members_[local]; }

 private:
  const DistanceOracle& parent_;
  const ObjectId* members_;
  int32_t size_;
};

/// The deterministic cell layout produced by pivot selection, nearest-
/// pivot assignment, and skew rebalancing — the routing half of a
/// RoutedIndex before any inner index exists. Exposed so the out-of-core
/// snapshot builder can compute the layout once, serialize it, and then
/// build + serialize one cell at a time (matcher_snapshot.cc); Build
/// consumes the same layout in-core, so both paths share one routing
/// decision.
struct RoutedLayout {
  std::vector<ObjectId> pivots;    // one per cell
  std::vector<double> radii;       // covering radius per cell
  std::vector<ObjectId> members;   // concatenated, ascending within a cell
  std::vector<int32_t> begins;     // cell c owns members[begins[c],
                                   // begins[c + 1])
  int32_t requested_cells = 0;     // the resolved count the layout was
                                   // asked for (may differ from
                                   // pivots.size() after rebalancing)
  int64_t computations = 0;        // selection + assignment distances
};

/// Routing tunables.
struct RoutedIndexOptions {
  /// Requested coarse cell count; resolved via ExecContext::ResolvedCells
  /// (clamped to [1, object count]). The built index may hold more cells
  /// (skew rebalancing splits oversized ones) or fewer (duplicate-heavy
  /// catalogs stop early when every remaining object already sits at
  /// distance 0 from a pivot).
  int32_t num_cells = 4;
  /// Thread budget for pivot selection, the cross-cell build, and the
  /// query fan-out. Inner indexes invoked from pool workers run their
  /// own parallel sections inline, so the fan-out never oversubscribes.
  ExecContext exec;
};

/// K pivot-routed per-cell indexes behind the RangeIndex interface.
///
/// Contracts on top of RangeIndex's:
///  * the hit SET of RangeQuery / BatchRangeQuery equals the monolithic
///    index's for any query (cell skipping never loses a true hit);
///    result order is cell-order concatenation — canonicalized by the
///    frame layer's MergeSegmentHits like every other backend's;
///  * routing distances (one per cell per query) are billed into
///    distance_computations; members of skipped cells are NOT billed —
///    routing is the one layer whose filter_computations deliberately
///    shrink versus the monolithic index (that saving is the point, and
///    it is what the CI routing gates measure). cells_probed /
///    cells_skipped make the routing decisions observable and
///    deterministic;
///  * per-query stats are exact stand-alone splits (the BatchRangeQuery
///    slot contract), so serving-cache billing invariants hold
///    unchanged;
///  * cell queries REBIND any PrunableQueryFn payload to the cell's
///    materialized member windows when the oracle implements
///    LowerBoundPayloadSource (frame/window_oracle.h does): each cell
///    stores its members' windows — and their cascade features —
///    cell-contiguously at build/load time, so the provider sees one
///    dense id range per cell instead of scattered global ids, and the
///    scan prefilter keeps pruning inside probed cells
///    (lower_bound_pruned is live under routing). Oracles without
///    payload support keep the old behavior: the payload is shed and
///    cell members scan unpruned — never affecting the hit set either
///    way.
class RoutedIndex final : public RangeIndex {
 public:
  /// Selects resolved-K pivots by deterministic farthest-point k-center
  /// over `oracle`, assigns every object to its nearest pivot (ties to
  /// the earliest pivot), records covering radii, splits cells larger
  /// than twice the mean size (new pivot = the member farthest from the
  /// old one), and builds one inner index per cell via `factory`, in
  /// parallel over `options.exec`. Fails with the first failing cell's
  /// status.
  static Result<std::unique_ptr<RoutedIndex>> Build(
      const DistanceOracle& oracle, const ShardIndexFactory& factory,
      RoutedIndexOptions options = {});

  /// The routing decision alone: pivots, assignment, radii, rebalancing —
  /// exactly what Build computes before building inner indexes, for the
  /// given resolved cell count. Deterministic for a fixed oracle and
  /// num_cells at any thread budget.
  static RoutedLayout ComputeLayout(const DistanceOracle& oracle,
                                    int32_t num_cells,
                                    const ExecContext& exec);

  /// Appends the routing-layout sections ("<prefix>meta", "pivots",
  /// "radii", "cell_begins", "members") byte-identically to the head of
  /// SaveSections of an index built from `layout` — the out-of-core
  /// builder writes these, then streams each cell's inner sections
  /// under CellPrefix(prefix, c).
  static Status SaveLayoutSections(const RoutedLayout& layout,
                                   SnapshotWriter& writer,
                                   const std::string& prefix);

  std::string_view name() const override { return name_; }
  int32_t size() const override;

  /// Routes to cells with d(q, pivot) <= r_c + cutoff(epsilon) and
  /// merges their inner results in cell order with ids translated back
  /// to parent ids. `stats` receives routing + inner computations,
  /// cells_probed and cells_skipped.
  std::vector<ObjectId> RangeQuery(const QueryDistanceFn& query,
                                   double epsilon,
                                   QueryStats* stats) const override;

  /// Routes every query (routing distances computed in parallel over the
  /// batch), then fans each cell's probing sub-batch to its inner index
  /// (cells in parallel over `exec`) and merges per query in cell order.
  /// Per-query splits are the exact stand-alone accounting, routing
  /// distances included; the sink receives the batch totals plus the
  /// probed/skipped cell counts.
  std::vector<std::vector<ObjectId>> BatchRangeQuery(
      std::span<const QueryDistanceFn> queries, double epsilon,
      const ExecContext& exec, StatsSink* sink,
      QueryStats* per_query = nullptr) const override;

  /// Exact global k-NN with lower-bound-ordered probing: cells are
  /// visited by ascending max(0, d(q, pivot) - r_c) (ties by cell), and
  /// a cell whose bound exceeds the running k-th best distance is
  /// skipped — sound by the same triangle-inequality argument as range
  /// routing, and deterministic for a fixed cell layout.
  std::vector<Neighbor> NearestNeighbors(const QueryDistanceFn& query,
                                         int32_t k,
                                         QueryStats* stats) const override;

  /// Aggregate over cells plus the routing tables (pivots, radii,
  /// member map).
  SpaceStats ComputeSpaceStats() const override;

  /// Pivot-selection + assignment + rebalancing distances plus the sum
  /// of the cells' inner build computations.
  BuildStats build_stats() const override;

  /// Appends the routing layout ("<prefix>meta", "pivots", "radii",
  /// "cell_begins", "members") followed by every cell's inner sections
  /// (under CellPrefix(prefix, c)) via `saver`. The encoding is
  /// canonical: a loaded index saves back byte-identically.
  Status SaveSections(SnapshotWriter& writer, const std::string& prefix,
                      const ShardIndexSaver& saver) const;

  /// Reconstructs a routed index from snapshot sections. The stored
  /// *requested* cell count must equal `expected_cells` (what the
  /// caller's options resolve to — the built cell count may differ via
  /// rebalancing, and is taken from the file); the member map must be a
  /// permutation of [0, n) with each pivot inside its own cell.
  static Result<std::unique_ptr<RoutedIndex>> LoadSections(
      const SnapshotFile& file, const std::string& prefix,
      const DistanceOracle& oracle, int32_t expected_cells,
      const ShardIndexLoader& loader);

  /// Section prefix of cell c: "<prefix>c<c>.".
  static std::string CellPrefix(const std::string& prefix, int32_t c);

  int32_t num_cells() const { return static_cast<int32_t>(cells_.size()); }
  /// The resolved cell count Build was asked for (what the snapshot
  /// records and LoadSections re-checks); num_cells() may differ after
  /// rebalancing splits or duplicate-driven early stops.
  int32_t requested_cells() const { return requested_cells_; }
  const RangeIndex& cell(int32_t c) const {
    return *cells_[static_cast<size_t>(c)].index;
  }
  ObjectId pivot(int32_t c) const {
    return pivots_[static_cast<size_t>(c)];
  }
  double radius(int32_t c) const { return radii_[static_cast<size_t>(c)]; }
  /// Ascending parent ids of cell c's members.
  std::span<const ObjectId> cell_members(int32_t c) const;

 private:
  struct Cell {
    std::unique_ptr<CellOracle> oracle;
    std::unique_ptr<RangeIndex> index;
  };

  RoutedIndex() = default;

  /// Shared tail of Build / LoadSections: materializes cell oracles over
  /// the member map, materializes per-cell lower-bound payloads when the
  /// oracle is a LowerBoundPayloadSource (payloads are derived data —
  /// snapshots never store them; a loaded index rebuilds them here), and
  /// names the index.
  void WireCells(const DistanceOracle& oracle);

  /// The query seen by cell c: parent-id query composed with the cell's
  /// local-to-parent member map. Rebinds prunable payloads to the cell's
  /// materialized windows, or sheds them when the oracle/provider has no
  /// payload support (see class comment).
  QueryDistanceFn CellQuery(const QueryDistanceFn& query, int32_t c) const;

  /// True when the cell must be probed for a range query at epsilon.
  bool Probes(double pivot_distance, int32_t c, double epsilon) const;

  std::vector<Cell> cells_;
  /// Cell-contiguous member windows + cascade features (nullptr per cell
  /// when the oracle is not a LowerBoundPayloadSource).
  std::vector<std::shared_ptr<const LowerBoundPayloads>> cell_payloads_;
  std::vector<ObjectId> pivots_;   // one per cell
  std::vector<double> radii_;      // covering radius per cell
  std::vector<ObjectId> members_;  // concatenated, ascending within a cell
  std::vector<int32_t> begins_;    // cell c owns members_[begins_[c],
                                   // begins_[c + 1])
  int32_t requested_cells_ = 0;
  int64_t routing_build_computations_ = 0;
  std::string name_;
};

}  // namespace subseq

#endif  // SUBSEQ_METRIC_ROUTED_INDEX_H_
