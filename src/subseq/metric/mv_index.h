// MvIndex — reference-based indexing with Maximum-Variance reference
// selection (Venkateswaran et al., VLDB 2006), the "MV-k" baseline of the
// paper's Figs. 8-11.
//
// Build: pick k references maximizing the variance of their distances to a
// data sample, then precompute the full n x k object-to-reference distance
// table. Query: compute the k query-to-reference distances, derive per-
// object lower/upper bounds from the triangle inequality
//   |d(q, r) - d(x, r)| <= d(q, x) <= d(q, r) + d(x, r)
// and only evaluate the true distance for objects whose bounds straddle
// epsilon. Space is Theta(n * k) — the "large space requirement in
// practice" the paper holds against this family.

#ifndef SUBSEQ_METRIC_MV_INDEX_H_
#define SUBSEQ_METRIC_MV_INDEX_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "subseq/core/status.h"
#include "subseq/metric/range_index.h"

namespace subseq {

class SnapshotFile;
class SnapshotWriter;

/// MV index tunables.
struct MvIndexOptions {
  /// k — number of references (paper: MV-5, MV-20, MV-50).
  int32_t num_references = 5;
  /// Candidate/sample pool size for the variance estimate.
  int32_t sample_size = 200;
  /// Seed for candidate sampling.
  uint64_t seed = 42;
  /// Thread budget for construction: the variance-scoring pass and the
  /// n x k pivot-table fill are chunked over these threads. The index
  /// built is identical at any setting.
  ExecContext exec;
};

/// Pivot-table range index with maximum-variance reference selection.
class MvIndex final : public RangeIndex {
 public:
  /// Builds the index over all oracle objects. The oracle must outlive
  /// the index.
  MvIndex(const DistanceOracle& oracle, MvIndexOptions options = {});

  std::string_view name() const override { return "mv-index"; }
  int32_t size() const override { return num_objects_; }

  std::vector<ObjectId> RangeQuery(const QueryDistanceFn& query,
                                   double epsilon,
                                   QueryStats* stats) const override;

  std::vector<Neighbor> NearestNeighbors(const QueryDistanceFn& query,
                                         int32_t k,
                                         QueryStats* stats) const override;

  SpaceStats ComputeSpaceStats() const override;
  BuildStats build_stats() const override { return build_stats_; }

  /// The selected reference objects, most-variant first.
  const std::vector<ObjectId>& references() const { return references_; }

  /// Appends this index's snapshot sections ("<prefix>meta", "refs",
  /// "table") to `writer`.
  Status SaveSections(SnapshotWriter& writer, const std::string& prefix) const;

  /// Reconstructs an index from snapshot sections. The n x k pivot
  /// table is *aliased* out of `file` (zero copy — in mmap mode the
  /// table stays demand-paged on disk), so the index keeps a shared_ptr
  /// to the file. Validates sizes, reference ids, and a seeded oracle
  /// spot-check of table cells; the stored build options must match
  /// `options`.
  static Result<std::unique_ptr<MvIndex>> LoadSections(
      std::shared_ptr<const SnapshotFile> file, const std::string& prefix,
      const DistanceOracle& oracle, const MvIndexOptions& options);

 private:
  struct LoadTag {};
  MvIndex(const DistanceOracle& oracle, MvIndexOptions options, LoadTag)
      : oracle_(oracle), options_(std::move(options)) {}

  const DistanceOracle& oracle_;
  MvIndexOptions options_;
  int32_t num_objects_ = 0;
  std::vector<ObjectId> references_;
  // Row-major n x k: table_[x * k + j] = d(object x, reference j).
  // Backed by table_storage_ when built fresh, or aliased directly out
  // of a snapshot file (kept alive by backing_) when loaded.
  std::span<const double> table_;
  std::vector<double> table_storage_;
  std::shared_ptr<const SnapshotFile> backing_;
  BuildStats build_stats_;
};

}  // namespace subseq

#endif  // SUBSEQ_METRIC_MV_INDEX_H_
