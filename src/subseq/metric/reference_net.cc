#include "subseq/metric/reference_net.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <queue>

#include "subseq/distance/distance.h"

#include "subseq/core/check.h"
#include "subseq/core/rng.h"
#include "subseq/exec/parallel_for.h"
#include "subseq/metric/knn.h"
#include "subseq/snapshot/reader.h"
#include "subseq/snapshot/writer.h"

namespace subseq {

ReferenceNet::ReferenceNet(const DistanceOracle& oracle,
                           ReferenceNetOptions options)
    : oracle_(oracle), options_(options) {
  SUBSEQ_CHECK(options_.base_radius > 0.0);
  SUBSEQ_CHECK(options_.max_parents >= 0);
}

ReferenceNet ReferenceNet::BuildAll(const DistanceOracle& oracle,
                                    ReferenceNetOptions options) {
  ReferenceNet net(oracle, options);
  for (ObjectId id = 0; id < oracle.size(); ++id) {
    const Status s = net.Insert(id);
    SUBSEQ_CHECK(s.ok());
  }
  return net;
}

double ReferenceNet::Radius(int32_t level) const {
  return std::ldexp(options_.base_radius, level);
}

int32_t ReferenceNet::NewNode(ObjectId id, int32_t top_level) {
  int32_t ni;
  if (!free_nodes_.empty()) {
    ni = free_nodes_.back();
    free_nodes_.pop_back();
    nodes_[static_cast<size_t>(ni)] = Node{};
  } else {
    ni = static_cast<int32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  Node& n = nodes_[static_cast<size_t>(ni)];
  n.object = id;
  n.top_level = top_level;
  n.alive = true;
  object_node_[id] = ni;
  return ni;
}

std::vector<ReferenceNet::Edge>* ReferenceNet::FindList(Node& node,
                                                         int32_t level) {
  for (auto& [lvl, members] : node.lists) {
    if (lvl == level) return &members;
  }
  return nullptr;
}

const std::vector<ReferenceNet::Edge>* ReferenceNet::FindList(
    const Node& node, int32_t level) const {
  for (const auto& [lvl, members] : node.lists) {
    if (lvl == level) return &members;
  }
  return nullptr;
}

void ReferenceNet::AddToList(int32_t parent, int32_t list_level,
                             int32_t child, double distance) {
  Node& p = nodes_[static_cast<size_t>(parent)];
  std::vector<Edge>* list = FindList(p, list_level);
  if (list == nullptr) {
    p.lists.emplace_back(list_level, std::vector<Edge>{});
    // Keep lists sorted by level descending (top-down traversal order).
    std::sort(p.lists.begin(), p.lists.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    list = FindList(p, list_level);
  }
  list->push_back(Edge{child, distance});
  nodes_[static_cast<size_t>(child)].parents.push_back(parent);
}

Status ReferenceNet::Insert(ObjectId id) {
  if (Contains(id)) {
    return Status::AlreadyExists("object already in reference net");
  }
  ++num_objects_;
  if (root_ < 0) {
    root_ = NewNode(id, 0);
    return Status::OK();
  }

  // Distance cache: one oracle call per touched node per insert. Bounded
  // (early-abandoned) computations are safe to cache because the bounds
  // used during the descent only shrink: a cached value that is exact up
  // to some bound stays exact for every later, smaller bound, and a
  // cached "> bound" marker stays a valid rejection.
  std::unordered_map<int32_t, double> cache;
  auto dist = [&](int32_t ni, double bound) {
    auto it = cache.find(ni);
    if (it != cache.end()) return it->second;
    const double d = oracle_.DistanceBounded(
        id, nodes_[static_cast<size_t>(ni)].object, bound);
    ++build_stats_.distance_computations;
    cache.emplace(ni, d);
    return d;
  };

  // Batched variant of `dist`: computes every uncached node of `nis` at a
  // common bound in one ParallelFor pass, then seeds the cache so the
  // sequential decision scan below is pure lookups. Each distance lands
  // in an index-addressed slot and the cache is filled on the calling
  // thread, so the descent — and the finished net — is identical at any
  // thread count. Tradeoff vs the old lazy scan: a duplicate insert
  // (d == 0 found mid-level) now pays for the level's remaining
  // candidates too; build_stats_ still counts exactly the oracle calls
  // made, and stays deterministic in num_threads.
  std::vector<int32_t> missing;
  std::vector<double> missing_d;
  auto batch_dist = [&](const std::vector<int32_t>& nis, double bound) {
    missing.clear();
    for (const int32_t ni : nis) {
      if (cache.find(ni) == cache.end()) missing.push_back(ni);
    }
    std::sort(missing.begin(), missing.end());
    missing.erase(std::unique(missing.begin(), missing.end()),
                  missing.end());
    if (missing.empty()) return;
    missing_d.resize(missing.size());
    ParallelFor(
        options_.exec, static_cast<int64_t>(missing.size()),
        [&](int64_t lo, int64_t hi, int32_t) {
          for (int64_t i = lo; i < hi; ++i) {
            const size_t ni =
                static_cast<size_t>(missing[static_cast<size_t>(i)]);
            missing_d[static_cast<size_t>(i)] =
                oracle_.DistanceBounded(id, nodes_[ni].object, bound);
          }
        },
        /*grain=*/8);
    build_stats_.distance_computations +=
        static_cast<int64_t>(missing.size());
    for (size_t i = 0; i < missing.size(); ++i) {
      cache.emplace(missing[i], missing_d[i]);
    }
  };

  Node& root = nodes_[static_cast<size_t>(root_)];
  const double d_root = dist(root_, kInfiniteDistance);
  if (d_root == 0.0) {
    root.duplicates.push_back(id);
    object_node_[id] = root_;
    return Status::OK();
  }
  // Raise the root until it covers the new object.
  while (d_root > Radius(root.top_level)) ++root.top_level;

  // Descend. `wide` holds every node conceptually present at `level`
  // within Radius(level + 1) of the new object; this is complete (any
  // qualifying node has all its parents within Radius(level + 2), so the
  // parent set at the level above already contained them).
  int32_t level = root.top_level;
  std::vector<int32_t> wide = {root_};
  for (;;) {
    // Candidates conceptually at level-1: `wide` itself (implicit
    // self-descendants) plus the members of every list at `level`.
    std::vector<int32_t> candidates = wide;
    for (const int32_t ni : wide) {
      const std::vector<Edge>* list =
          FindList(nodes_[static_cast<size_t>(ni)], level);
      if (list != nullptr) {
        for (const Edge& edge : *list) candidates.push_back(edge.child);
      }
    }

    // Fan the level's candidate distances out before the sequential scan
    // decides duplicates / coverage — this is the build's hot path.
    batch_dist(candidates, Radius(level));

    std::vector<int32_t> wide_next;
    bool has_narrow = false;
    for (const int32_t ni : candidates) {
      const double d = dist(ni, Radius(level));
      if (d == 0.0) {
        nodes_[static_cast<size_t>(ni)].duplicates.push_back(id);
        object_node_[id] = ni;
        return Status::OK();
      }
      if (d <= Radius(level)) {
        wide_next.push_back(ni);
        if (d <= Radius(level - 1)) has_narrow = true;
      }
    }
    // wide_next may contain duplicates (a node reachable through several
    // parents); dedupe to keep the working set small.
    std::sort(wide_next.begin(), wide_next.end());
    wide_next.erase(std::unique(wide_next.begin(), wide_next.end()),
                    wide_next.end());

    if (!has_narrow) {
      // Place the new object at level-1, childed to every node of `wide`
      // (conceptual level `level`, so their lists at `level` are valid)
      // within Radius(level) — capped at max_parents closest.
      std::vector<std::pair<double, int32_t>> parent_candidates;
      for (const int32_t ni : wide) {
        const double d = dist(ni, Radius(level));
        if (d <= Radius(level)) parent_candidates.emplace_back(d, ni);
      }
      SUBSEQ_CHECK(!parent_candidates.empty());
      std::sort(parent_candidates.begin(), parent_candidates.end());
      size_t limit = parent_candidates.size();
      if (options_.max_parents > 0) {
        limit = std::min(limit, static_cast<size_t>(options_.max_parents));
      }
      const int32_t node = NewNode(id, level - 1);
      for (size_t i = 0; i < limit; ++i) {
        AddToList(parent_candidates[i].second, level, node,
                  parent_candidates[i].first);
      }
      return Status::OK();
    }
    wide = std::move(wide_next);
    --level;
  }
}

bool ReferenceNet::Contains(ObjectId id) const {
  return object_node_.find(id) != object_node_.end();
}

std::vector<ObjectId> ReferenceNet::RangeQuery(const QueryDistanceFn& query,
                                               double epsilon,
                                               QueryStats* stats) const {
  std::vector<ObjectId> results;
  int64_t computations = 0;
  if (root_ >= 0) {
    std::vector<uint8_t> enqueued(nodes_.size(), 0);
    std::vector<uint8_t> emitted(nodes_.size(), 0);
    std::deque<int32_t> queue;
    queue.push_back(root_);
    enqueued[static_cast<size_t>(root_)] = 1;

    while (!queue.empty()) {
      const int32_t ni = queue.front();
      queue.pop_front();
      if (emitted[static_cast<size_t>(ni)]) continue;
      const Node& n = nodes_[static_cast<size_t>(ni)];
      ++computations;
      const double d = query(n.object);
      const double subtree_bound = Radius(n.top_level + 1);

      if (d + subtree_bound <= epsilon) {
        // Lemma 4 (inclusion direction): the whole subtree qualifies.
        CollectSubtree(ni, &results, &emitted);
        continue;
      }
      if (d - subtree_bound > epsilon) {
        // Lemma 4 (exclusion direction): nothing in the subtree qualifies.
        continue;
      }
      if (d <= epsilon) {
        results.push_back(n.object);
        results.insert(results.end(), n.duplicates.begin(),
                       n.duplicates.end());
        emitted[static_cast<size_t>(ni)] = 1;
      }
      for (const auto& [list_level, members] : n.lists) {
        // Per-edge triangle bounds (Algorithm 3 strengthened with the
        // stored parent-child distance e): |d - e| <= d(q, child) <=
        // d + e, and the child's subtree lies within Radius(list_level)
        // of the child. Every parent that reaches a multi-parented child
        // gets an independent chance to decide it without computing its
        // distance — the paper's Figure 2 argument.
        if (d - Radius(list_level + 1) > epsilon) continue;
        const double child_subtree_bound = Radius(list_level);
        for (const Edge& edge : members) {
          const int32_t child = edge.child;
          if (emitted[static_cast<size_t>(child)]) continue;
          const double lower = std::fabs(d - edge.distance);
          const double upper = d + edge.distance;
          if (lower - child_subtree_bound > epsilon) {
            // Nothing in the child's subtree can qualify; this is a true
            // geometric fact, so it is safe to close the child globally.
            emitted[static_cast<size_t>(child)] = 1;
            continue;
          }
          if (upper + child_subtree_bound <= epsilon) {
            CollectSubtree(child, &results, &emitted);
            continue;
          }
          const Node& c = nodes_[static_cast<size_t>(child)];
          if (c.lists.empty()) {
            // Childless: the subtree is the node itself (plus exact
            // duplicates, which share its distance).
            if (upper <= epsilon) {
              results.push_back(c.object);
              results.insert(results.end(), c.duplicates.begin(),
                             c.duplicates.end());
              emitted[static_cast<size_t>(child)] = 1;
              continue;
            }
            if (lower > epsilon) {
              emitted[static_cast<size_t>(child)] = 1;
              continue;
            }
          }
          if (enqueued[static_cast<size_t>(child)]) continue;
          queue.push_back(child);
          enqueued[static_cast<size_t>(child)] = 1;
        }
      }
    }
  }
  if (stats != nullptr) {
    stats->distance_computations = computations;
    stats->result_count = static_cast<int64_t>(results.size());
  }
  return results;
}

std::vector<Neighbor> ReferenceNet::NearestNeighbors(
    const QueryDistanceFn& query, int32_t k, QueryStats* stats) const {
  KnnCollector collector(k);
  int64_t computations = 0;
  if (root_ >= 0 && k > 0) {
    // Best-first frontier over nodes, ordered by a lower bound on the
    // distance of anything in the node's subtree. A node's bound comes
    // from its parent's computed distance and the stored edge distance:
    // |d(q, parent) - e| - Radius(list_level) <= d(q, anything below).
    using Entry = std::pair<double, int32_t>;  // (lower bound, node)
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        frontier;
    std::vector<uint8_t> enqueued(nodes_.size(), 0);
    frontier.emplace(0.0, root_);
    enqueued[static_cast<size_t>(root_)] = 1;
    while (!frontier.empty()) {
      const auto [bound, ni] = frontier.top();
      frontier.pop();
      // Everything left in the frontier has a lower bound at least this
      // large, so once it cannot beat the k-th neighbor we are done.
      if (collector.Full() && bound >= collector.Threshold()) break;
      const Node& n = nodes_[static_cast<size_t>(ni)];
      ++computations;
      const double d = query(n.object);
      collector.Offer(n.object, d);
      for (const ObjectId dup : n.duplicates) collector.Offer(dup, d);
      for (const auto& [list_level, members] : n.lists) {
        const double child_subtree_bound = Radius(list_level);
        for (const Edge& edge : members) {
          if (enqueued[static_cast<size_t>(edge.child)]) continue;
          const double child_bound = std::max(
              0.0, std::fabs(d - edge.distance) - child_subtree_bound);
          if (collector.Full() && child_bound >= collector.Threshold()) {
            // Leave it unexplored for now; it may still be reached (and
            // re-bounded) through another parent.
            continue;
          }
          frontier.emplace(child_bound, edge.child);
          enqueued[static_cast<size_t>(edge.child)] = 1;
        }
      }
    }
  }
  std::vector<Neighbor> out = collector.Take();
  if (stats != nullptr) {
    stats->distance_computations = computations;
    stats->result_count = static_cast<int64_t>(out.size());
  }
  return out;
}

void ReferenceNet::CollectSubtree(int32_t node_index,
                                  std::vector<ObjectId>* out,
                                  std::vector<uint8_t>* emitted) const {
  std::deque<int32_t> queue = {node_index};
  while (!queue.empty()) {
    const int32_t ni = queue.front();
    queue.pop_front();
    if ((*emitted)[static_cast<size_t>(ni)]) continue;
    (*emitted)[static_cast<size_t>(ni)] = 1;
    const Node& n = nodes_[static_cast<size_t>(ni)];
    out->push_back(n.object);
    out->insert(out->end(), n.duplicates.begin(), n.duplicates.end());
    for (const auto& [lvl, members] : n.lists) {
      (void)lvl;
      for (const Edge& edge : members) queue.push_back(edge.child);
    }
  }
}

void ReferenceNet::RemoveNodeStructurally(int32_t ni,
                                          std::vector<ObjectId>* objects,
                                          std::vector<int32_t>* orphans) {
  Node& n = nodes_[static_cast<size_t>(ni)];
  SUBSEQ_CHECK(n.alive);
  objects->push_back(n.object);
  objects->insert(objects->end(), n.duplicates.begin(), n.duplicates.end());
  object_node_.erase(n.object);
  for (const ObjectId dup : n.duplicates) object_node_.erase(dup);

  // Detach from parents' lists.
  for (const int32_t p : n.parents) {
    Node& parent = nodes_[static_cast<size_t>(p)];
    if (!parent.alive) continue;
    for (auto& [lvl, members] : parent.lists) {
      (void)lvl;
      members.erase(std::remove_if(members.begin(), members.end(),
                                   [ni](const Edge& e) {
                                     return e.child == ni;
                                   }),
                    members.end());
    }
  }
  // Children lose this parent; sole-parented children become orphans.
  for (auto& [lvl, members] : n.lists) {
    (void)lvl;
    for (const Edge& edge : members) {
      Node& c = nodes_[static_cast<size_t>(edge.child)];
      if (!c.alive) continue;
      c.parents.erase(std::remove(c.parents.begin(), c.parents.end(), ni),
                      c.parents.end());
      if (c.parents.empty()) orphans->push_back(edge.child);
    }
  }
  n.alive = false;
  n.lists.clear();
  n.parents.clear();
  n.duplicates.clear();
  free_nodes_.push_back(ni);
}

Status ReferenceNet::Delete(ObjectId id) {
  const auto it = object_node_.find(id);
  if (it == object_node_.end()) {
    return Status::NotFound("object not in reference net");
  }
  const int32_t ni = it->second;
  Node& n = nodes_[static_cast<size_t>(ni)];

  if (n.object != id) {
    // A duplicate: drop it from the representative's list.
    n.duplicates.erase(std::remove(n.duplicates.begin(), n.duplicates.end(),
                                   id),
                       n.duplicates.end());
    object_node_.erase(id);
    --num_objects_;
    return Status::OK();
  }
  if (!n.duplicates.empty()) {
    // Promote a duplicate; all invariants hold since d(old, new) = 0.
    n.object = n.duplicates.back();
    n.duplicates.pop_back();
    object_node_.erase(id);
    --num_objects_;
    return Status::OK();
  }

  if (ni == root_) {
    // Rebuild from scratch without the deleted object. Root deletion is
    // rare; correctness over speed.
    std::vector<ObjectId> objects;
    std::vector<uint8_t> emitted(nodes_.size(), 0);
    CollectSubtree(root_, &objects, &emitted);
    nodes_.clear();
    free_nodes_.clear();
    object_node_.clear();
    root_ = -1;
    num_objects_ = 0;
    for (const ObjectId obj : objects) {
      if (obj == id) continue;
      const Status s = Insert(obj);
      SUBSEQ_CHECK(s.ok());
    }
    return Status::OK();
  }

  // Structural removal with orphan cascade (Appendix A.2): children whose
  // only parent was the removed node are taken out and re-inserted.
  std::vector<ObjectId> to_reinsert;
  std::vector<int32_t> orphans;
  RemoveNodeStructurally(ni, &to_reinsert, &orphans);
  while (!orphans.empty()) {
    const int32_t o = orphans.back();
    orphans.pop_back();
    if (!nodes_[static_cast<size_t>(o)].alive) continue;
    RemoveNodeStructurally(o, &to_reinsert, &orphans);
  }
  num_objects_ -= static_cast<int32_t>(to_reinsert.size());
  for (const ObjectId obj : to_reinsert) {
    if (obj == id) continue;
    const Status s = Insert(obj);
    SUBSEQ_CHECK(s.ok());
  }
  return Status::OK();
}

SpaceStats ReferenceNet::ComputeSpaceStats() const {
  SpaceStats s;
  int64_t nodes = 0;
  int64_t entries = 0;
  int64_t duplicates = 0;
  int32_t min_level = 0;
  int32_t max_level = 0;
  bool first = true;
  for (const Node& n : nodes_) {
    if (!n.alive) continue;
    ++nodes;
    duplicates += static_cast<int64_t>(n.duplicates.size());
    for (const auto& [lvl, members] : n.lists) {
      (void)lvl;
      entries += static_cast<int64_t>(members.size());
    }
    if (first) {
      min_level = max_level = n.top_level;
      first = false;
    } else {
      min_level = std::min(min_level, n.top_level);
      max_level = std::max(max_level, n.top_level);
    }
  }
  s.num_objects = num_objects_;
  s.num_nodes = nodes;
  s.num_list_entries = entries;
  // Every list entry is one parent link; the root has none.
  s.avg_parents =
      nodes > 1 ? static_cast<double>(entries) / static_cast<double>(nodes - 1)
                : 0.0;
  s.num_levels = nodes > 0 ? max_level - min_level + 1 : 0;
  // Byte model: per node, object id + level + vector headers (~32B); per
  // list entry, child index + stored edge distance + parent back-link
  // (16B); per duplicate 4B.
  s.approx_bytes = 32 * nodes + 16 * entries + 4 * duplicates;
  return s;
}

int32_t ReferenceNet::root_level() const {
  SUBSEQ_CHECK(root_ >= 0);
  return nodes_[static_cast<size_t>(root_)].top_level;
}

std::optional<std::string> ReferenceNet::CheckInvariants() const {
  char buf[256];
  if (root_ < 0) {
    if (num_objects_ != 0) return "empty net but num_objects != 0";
    return std::nullopt;
  }

  std::vector<int32_t> alive;
  for (int32_t ni = 0; ni < static_cast<int32_t>(nodes_.size()); ++ni) {
    if (nodes_[static_cast<size_t>(ni)].alive) alive.push_back(ni);
  }

  // Inclusive property + list-level consistency + parent cap.
  for (const int32_t ni : alive) {
    const Node& n = nodes_[static_cast<size_t>(ni)];
    if (ni != root_ && n.parents.empty()) {
      std::snprintf(buf, sizeof(buf), "node %d (object %d) has no parent",
                    ni, n.object);
      return std::string(buf);
    }
    if (options_.max_parents > 0 &&
        static_cast<int32_t>(n.parents.size()) > options_.max_parents) {
      std::snprintf(buf, sizeof(buf), "node %d exceeds max_parents", ni);
      return std::string(buf);
    }
    for (const auto& [lvl, members] : n.lists) {
      if (lvl > n.top_level) {
        std::snprintf(buf, sizeof(buf),
                      "node %d has list at level %d above its top %d", ni,
                      lvl, n.top_level);
        return std::string(buf);
      }
      for (const Edge& edge : members) {
        const int32_t child = edge.child;
        const Node& c = nodes_[static_cast<size_t>(child)];
        if (!c.alive) {
          std::snprintf(buf, sizeof(buf), "node %d lists dead child %d", ni,
                        child);
          return std::string(buf);
        }
        if (c.top_level != lvl - 1) {
          std::snprintf(buf, sizeof(buf),
                        "list level %d of node %d holds child %d with top %d",
                        lvl, ni, child, c.top_level);
          return std::string(buf);
        }
        const double d = oracle_.Distance(n.object, c.object);
        if (d > Radius(lvl)) {
          std::snprintf(buf, sizeof(buf),
                        "inclusive violated: d(node %d, child %d)=%g > %g",
                        ni, child, d, Radius(lvl));
          return std::string(buf);
        }
        if (d != edge.distance) {
          std::snprintf(buf, sizeof(buf),
                        "stale edge distance: node %d -> child %d stores %g,"
                        " oracle says %g",
                        ni, child, edge.distance, d);
          return std::string(buf);
        }
      }
    }
  }

  // Exclusive property among nodes sharing a top level.
  for (size_t a = 0; a < alive.size(); ++a) {
    for (size_t b = a + 1; b < alive.size(); ++b) {
      const Node& u = nodes_[static_cast<size_t>(alive[a])];
      const Node& v = nodes_[static_cast<size_t>(alive[b])];
      if (u.top_level != v.top_level) continue;
      const double d = oracle_.Distance(u.object, v.object);
      if (d <= Radius(u.top_level)) {
        std::snprintf(buf, sizeof(buf),
                      "exclusive violated at level %d: d(obj %d, obj %d)=%g "
                      "<= %g",
                      u.top_level, u.object, v.object, d,
                      Radius(u.top_level));
        return std::string(buf);
      }
    }
  }

  // Reachability + subtree radius bound (Lemma 4).
  std::vector<ObjectId> reached;
  std::vector<uint8_t> emitted(nodes_.size(), 0);
  CollectSubtree(root_, &reached, &emitted);
  if (static_cast<int32_t>(reached.size()) != num_objects_) {
    std::snprintf(buf, sizeof(buf),
                  "reachability violated: %zu objects reached, %d indexed",
                  reached.size(), num_objects_);
    return std::string(buf);
  }
  for (const int32_t ni : alive) {
    const Node& n = nodes_[static_cast<size_t>(ni)];
    std::vector<ObjectId> subtree;
    std::vector<uint8_t> seen(nodes_.size(), 0);
    CollectSubtree(ni, &subtree, &seen);
    const double bound = Radius(n.top_level + 1);
    for (const ObjectId obj : subtree) {
      const double d = oracle_.Distance(n.object, obj);
      if (d > bound) {
        std::snprintf(buf, sizeof(buf),
                      "subtree bound violated: d(node obj %d, desc obj %d)="
                      "%g > %g",
                      n.object, obj, d, bound);
        return std::string(buf);
      }
    }
  }
  return std::nullopt;
}


std::vector<ReferenceNet::ExportedNode> ReferenceNet::Export() const {
  std::vector<ExportedNode> out;
  if (root_ < 0) return out;
  // Root first, then the remaining live nodes in index order.
  std::vector<int32_t> order = {root_};
  for (int32_t ni = 0; ni < static_cast<int32_t>(nodes_.size()); ++ni) {
    if (ni != root_ && nodes_[static_cast<size_t>(ni)].alive) {
      order.push_back(ni);
    }
  }
  out.reserve(order.size());
  for (const int32_t ni : order) {
    const Node& n = nodes_[static_cast<size_t>(ni)];
    ExportedNode e;
    e.object = n.object;
    e.top_level = n.top_level;
    e.duplicates = n.duplicates;
    for (const auto& [lvl, members] : n.lists) {
      for (const Edge& edge : members) {
        e.edges.emplace_back(
            lvl, nodes_[static_cast<size_t>(edge.child)].object,
            edge.distance);
      }
    }
    out.push_back(std::move(e));
  }
  return out;
}

Result<ReferenceNet> ReferenceNet::Import(
    const DistanceOracle& oracle, ReferenceNetOptions options,
    const std::vector<ExportedNode>& nodes) {
  ReferenceNet net(oracle, options);
  if (nodes.empty()) return net;

  // Pass 1: materialize nodes and the object -> node-index map.
  for (const ExportedNode& e : nodes) {
    if (e.object < 0 || e.object >= oracle.size()) {
      return Status::InvalidArgument("snapshot object id out of range");
    }
    if (net.object_node_.count(e.object) > 0) {
      return Status::InvalidArgument("duplicate node object in snapshot");
    }
    const int32_t ni = net.NewNode(e.object, e.top_level);
    for (const ObjectId dup : e.duplicates) {
      if (dup < 0 || dup >= oracle.size() ||
          net.object_node_.count(dup) > 0) {
        return Status::InvalidArgument("bad duplicate object in snapshot");
      }
      net.nodes_[static_cast<size_t>(ni)].duplicates.push_back(dup);
      net.object_node_[dup] = ni;
      ++net.num_objects_;
    }
    ++net.num_objects_;
  }
  net.root_ = 0;

  // Pass 2: rebuild child lists and parent links, validating levels and
  // spot-checking stored distances against the oracle. The spot-check
  // sample is a *deterministic seeded* subset of all edges (every edge
  // when the net is small): checking only the first edges would let a
  // bad late edge through, and an unseeded sample would make detection
  // a coin flip between runs — the regression test plants one bad edge
  // and must always catch it.
  int64_t total_edges = 0;
  for (const ExportedNode& e : nodes) {
    total_edges += static_cast<int64_t>(e.edges.size());
  }
  constexpr int64_t kSpotChecks = 256;
  std::vector<uint8_t> check_edge;
  if (total_edges <= kSpotChecks) {
    check_edge.assign(static_cast<size_t>(total_edges), 1);
  } else {
    check_edge.assign(static_cast<size_t>(total_edges), 0);
    Rng rng(0x7E0FB2A5C18D6E4BULL ^ static_cast<uint64_t>(total_edges));
    int64_t chosen = 0;
    while (chosen < kSpotChecks) {
      const size_t pick = static_cast<size_t>(
          rng.NextBounded(static_cast<uint64_t>(total_edges)));
      if (!check_edge[pick]) {
        check_edge[pick] = 1;
        ++chosen;
      }
    }
  }
  int64_t edge_cursor = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const int32_t parent_index = static_cast<int32_t>(i);
    const Node& parent = net.nodes_[static_cast<size_t>(parent_index)];
    for (const auto& [lvl, child_object, distance] : nodes[i].edges) {
      const auto it = net.object_node_.find(child_object);
      if (it == net.object_node_.end()) {
        return Status::InvalidArgument("snapshot edge to unknown object");
      }
      const int32_t child_index = it->second;
      const Node& child = net.nodes_[static_cast<size_t>(child_index)];
      if (child.object != child_object) {
        return Status::InvalidArgument(
            "snapshot edge points at a duplicate, not a node");
      }
      if (lvl > parent.top_level || child.top_level != lvl - 1) {
        return Status::InvalidArgument("snapshot level structure invalid");
      }
      if (distance > net.Radius(lvl)) {
        return Status::InvalidArgument(
            "snapshot edge distance exceeds its list radius");
      }
      if (check_edge[static_cast<size_t>(edge_cursor++)] &&
          oracle.Distance(parent.object, child_object) != distance) {
        return Status::InvalidArgument(
            "snapshot distances disagree with the oracle; was the net "
            "saved for a different dataset or distance?");
      }
      net.AddToList(parent_index, lvl, child_index, distance);
    }
  }
  for (size_t ni = 1; ni < net.nodes_.size(); ++ni) {
    if (net.nodes_[ni].parents.empty()) {
      return Status::InvalidArgument("snapshot node has no parent");
    }
  }
  return net;
}

namespace {

struct RefNetMetaRec {
  int32_t num_objects;
  int32_t num_nodes;
  int64_t dup_total;
  int64_t edge_total;
  double base_radius;
  int32_t max_parents;
  int32_t pad0;
  int64_t build_distance_computations;
};
static_assert(sizeof(RefNetMetaRec) == 48);

struct RefNetNodeRec {
  int32_t object;
  int32_t top_level;
  int32_t dup_count;
  int32_t edge_count;
};
static_assert(sizeof(RefNetNodeRec) == 16);

struct RefNetEdgeRec {
  int32_t level;
  int32_t child_object;
  double distance;
};
static_assert(sizeof(RefNetEdgeRec) == 16);

}  // namespace

Status ReferenceNet::SaveSections(SnapshotWriter& writer,
                                  const std::string& prefix) const {
  const std::vector<ExportedNode> exported = Export();
  RefNetMetaRec meta{};
  meta.num_objects = num_objects_;
  meta.num_nodes = static_cast<int32_t>(exported.size());
  meta.base_radius = options_.base_radius;
  meta.max_parents = options_.max_parents;
  meta.build_distance_computations = build_stats_.distance_computations;

  std::vector<RefNetNodeRec> nodes(exported.size());
  std::vector<ObjectId> dups;
  std::vector<RefNetEdgeRec> edges;
  for (size_t i = 0; i < exported.size(); ++i) {
    const ExportedNode& e = exported[i];
    nodes[i].object = e.object;
    nodes[i].top_level = e.top_level;
    nodes[i].dup_count = static_cast<int32_t>(e.duplicates.size());
    nodes[i].edge_count = static_cast<int32_t>(e.edges.size());
    dups.insert(dups.end(), e.duplicates.begin(), e.duplicates.end());
    for (const auto& [lvl, child, distance] : e.edges) {
      RefNetEdgeRec rec{};
      rec.level = lvl;
      rec.child_object = child;
      rec.distance = distance;
      edges.push_back(rec);
    }
  }
  meta.dup_total = static_cast<int64_t>(dups.size());
  meta.edge_total = static_cast<int64_t>(edges.size());

  SUBSEQ_RETURN_NOT_OK(writer.AppendPodStruct(prefix + "meta", meta));
  SUBSEQ_RETURN_NOT_OK(writer.AppendPodSection<RefNetNodeRec>(
      prefix + "nodes", nodes));
  SUBSEQ_RETURN_NOT_OK(writer.AppendPodSection<ObjectId>(prefix + "dups",
                                                         dups));
  return writer.AppendPodSection<RefNetEdgeRec>(prefix + "edges", edges);
}

Result<std::unique_ptr<ReferenceNet>> ReferenceNet::LoadSections(
    const SnapshotFile& file, const std::string& prefix,
    const DistanceOracle& oracle, const ReferenceNetOptions& options) {
  RefNetMetaRec meta{};
  SUBSEQ_RETURN_NOT_OK(ReadPodStruct(file, prefix + "meta", &meta));
  const auto bad = [&](const std::string& why) {
    return Status::InvalidArgument("reference-net snapshot sections '" +
                                   prefix + "*': " + why);
  };
  if (meta.num_objects != oracle.size()) {
    return bad("indexes " + std::to_string(meta.num_objects) +
               " objects but the oracle holds " +
               std::to_string(oracle.size()));
  }
  if (meta.base_radius != options.base_radius ||
      meta.max_parents != options.max_parents) {
    return bad("saved with base_radius=" + std::to_string(meta.base_radius) +
               " max_parents=" + std::to_string(meta.max_parents) +
               " but the load requested base_radius=" +
               std::to_string(options.base_radius) + " max_parents=" +
               std::to_string(options.max_parents) +
               "; a loaded index must equal the fresh build it replaces");
  }

  auto nodes = PodSectionView<RefNetNodeRec>(file, prefix + "nodes");
  if (!nodes.ok()) return nodes.status();
  auto dups = PodSectionView<ObjectId>(file, prefix + "dups");
  if (!dups.ok()) return dups.status();
  auto edges = PodSectionView<RefNetEdgeRec>(file, prefix + "edges");
  if (!edges.ok()) return edges.status();
  if (meta.num_nodes != static_cast<int64_t>(nodes.value().size()) ||
      meta.dup_total != static_cast<int64_t>(dups.value().size()) ||
      meta.edge_total != static_cast<int64_t>(edges.value().size())) {
    return bad("meta counts disagree with the section sizes");
  }

  // Re-inflate the ExportedNode form and run Import's full validation
  // (levels, parents, reachability, seeded distance spot-check).
  std::vector<ExportedNode> exported(nodes.value().size());
  size_t dup_cursor = 0;
  size_t edge_cursor = 0;
  for (size_t i = 0; i < exported.size(); ++i) {
    const RefNetNodeRec& rec = nodes.value()[i];
    ExportedNode& e = exported[i];
    e.object = rec.object;
    e.top_level = rec.top_level;
    if (rec.dup_count < 0 ||
        static_cast<size_t>(rec.dup_count) > dups.value().size() - dup_cursor) {
      return bad("node " + std::to_string(i) +
                 " duplicate list overruns the section");
    }
    if (rec.edge_count < 0 ||
        static_cast<size_t>(rec.edge_count) >
            edges.value().size() - edge_cursor) {
      return bad("node " + std::to_string(i) +
                 " edge list overruns the section");
    }
    for (int32_t d = 0; d < rec.dup_count; ++d) {
      e.duplicates.push_back(dups.value()[dup_cursor++]);
    }
    for (int32_t g = 0; g < rec.edge_count; ++g) {
      const RefNetEdgeRec& edge = edges.value()[edge_cursor++];
      e.edges.emplace_back(edge.level, edge.child_object, edge.distance);
    }
  }
  if (dup_cursor != dups.value().size() ||
      edge_cursor != edges.value().size()) {
    return bad("sections hold entries no node references");
  }

  auto imported = Import(oracle, options, exported);
  if (!imported.ok()) {
    return bad(imported.status().message());
  }
  auto net = std::make_unique<ReferenceNet>(std::move(imported).value());
  if (net->size() != meta.num_objects) {
    return bad("imported net indexes " + std::to_string(net->size()) +
               " objects but meta records " +
               std::to_string(meta.num_objects));
  }
  net->build_stats_.distance_computations = meta.build_distance_computations;
  return net;
}

}  // namespace subseq
