#include "subseq/metric/linear_scan.h"

#include "subseq/exec/parallel_for.h"
#include "subseq/metric/knn.h"

namespace subseq {

std::vector<ObjectId> LinearScan::RangeQuery(const QueryDistanceFn& query,
                                             double epsilon,
                                             QueryStats* stats) const {
  std::vector<ObjectId> results;
  int64_t computations = 0;
  for (ObjectId id = 0; id < num_objects_; ++id) {
    ++computations;
    if (query(id) <= epsilon) results.push_back(id);
  }
  if (stats != nullptr) {
    stats->distance_computations = computations;
    stats->result_count = static_cast<int64_t>(results.size());
  }
  return results;
}

std::vector<std::vector<ObjectId>> LinearScan::BatchRangeQuery(
    std::span<const QueryDistanceFn> queries, double epsilon,
    const ExecContext& exec, StatsSink* sink, QueryStats* per_query) const {
  const int64_t num_queries = static_cast<int64_t>(queries.size());
  if (num_queries >= exec.ResolvedThreads()) {
    return RangeIndex::BatchRangeQuery(queries, epsilon, exec, sink,
                                       per_query);
  }
  // Fewer queries than threads: shard each scan across object ranges.
  std::vector<std::vector<ObjectId>> results(queries.size());
  std::vector<std::vector<ObjectId>> parts(
      static_cast<size_t>(exec.ResolvedThreads()));
  for (int64_t q = 0; q < num_queries; ++q) {
    const QueryDistanceFn& query = queries[static_cast<size_t>(q)];
    const int32_t chunks = ParallelFor(
        exec, num_objects_,
        [&](int64_t begin, int64_t end, int32_t chunk) {
          std::vector<ObjectId>& out = parts[static_cast<size_t>(chunk)];
          out.clear();
          for (int64_t id = begin; id < end; ++id) {
            if (query(static_cast<ObjectId>(id)) <= epsilon) {
              out.push_back(static_cast<ObjectId>(id));
            }
          }
        },
        /*grain=*/64);
    std::vector<ObjectId>& merged = results[static_cast<size_t>(q)];
    for (int32_t c = 0; c < chunks; ++c) {
      const std::vector<ObjectId>& part = parts[static_cast<size_t>(c)];
      merged.insert(merged.end(), part.begin(), part.end());
    }
    if (per_query != nullptr) {
      per_query[q].distance_computations = num_objects_;
      per_query[q].result_count = static_cast<int64_t>(merged.size());
    }
    if (sink != nullptr) {
      sink->AddDistanceComputations(num_objects_);
      sink->AddResults(static_cast<int64_t>(merged.size()));
    }
  }
  return results;
}

std::vector<Neighbor> LinearScan::NearestNeighbors(
    const QueryDistanceFn& query, int32_t k, QueryStats* stats) const {
  KnnCollector collector(k);
  for (ObjectId id = 0; id < num_objects_; ++id) {
    collector.Offer(id, query(id));
  }
  if (stats != nullptr) {
    stats->distance_computations = num_objects_;
  }
  std::vector<Neighbor> out = collector.Take();
  if (stats != nullptr) {
    stats->result_count = static_cast<int64_t>(out.size());
  }
  return out;
}

SpaceStats LinearScan::ComputeSpaceStats() const {
  SpaceStats s;
  s.num_objects = num_objects_;
  s.approx_bytes = 0;  // no structure beyond the data itself
  return s;
}

}  // namespace subseq
