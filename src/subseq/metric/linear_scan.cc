#include "subseq/metric/linear_scan.h"

#include <algorithm>

#include "subseq/exec/parallel_for.h"
#include "subseq/metric/knn.h"
#include "subseq/snapshot/reader.h"
#include "subseq/snapshot/writer.h"

namespace subseq {

namespace {

// Candidates per LowerBoundBlock call. Amortizes the virtual dispatch
// and lets the provider batch its own kernel; the pruning decisions are
// block-size independent by the QueryLowerBound contract, so this is a
// pure tuning constant.
constexpr int32_t kLbBlock = 256;

// The prunable payload of a query, or nullptr when the scan should run
// unpruned (no payload, or a payload without a provider).
const PrunableQueryFn* PrunableOf(const QueryDistanceFn& query) {
  const PrunableQueryFn* p = GetPrunable(query);
  return (p != nullptr && p->lower_bound != nullptr) ? p : nullptr;
}

// Scans ids [begin, end): appends ids within epsilon to `out` in
// ascending order and returns how many candidates the prefilter
// skipped (0 for unpruned scans). `stage_counts` (accumulated, never
// reset here) attributes the skips to cascade stages. Results are
// identical with and without a prefilter — the lower bound is
// admissible and the cutoff is padded above epsilon
// (LowerBoundPruneCutoff), so no candidate within epsilon can ever be
// skipped.
int64_t ScanRange(const QueryDistanceFn& query,
                  const PrunableQueryFn* prunable, int64_t begin,
                  int64_t end, double epsilon, std::vector<ObjectId>* out,
                  LbBlockCounts* stage_counts) {
  if (prunable == nullptr) {
    for (int64_t id = begin; id < end; ++id) {
      if (query(static_cast<ObjectId>(id)) <= epsilon) {
        out->push_back(static_cast<ObjectId>(id));
      }
    }
    return 0;
  }
  const double cutoff = LowerBoundPruneCutoff(epsilon);
  double lb[kLbBlock];
  int64_t pruned = 0;
  for (int64_t block = begin; block < end; block += kLbBlock) {
    const int32_t count =
        static_cast<int32_t>(std::min<int64_t>(kLbBlock, end - block));
    prunable->lower_bound->LowerBoundBlockStaged(
        static_cast<ObjectId>(block) + prunable->lb_offset, count, cutoff,
        lb, stage_counts);
    for (int32_t i = 0; i < count; ++i) {
      if (lb[i] > cutoff) {
        ++pruned;
        continue;
      }
      const ObjectId id = static_cast<ObjectId>(block + i);
      if (query(id) <= epsilon) out->push_back(id);
    }
  }
  return pruned;
}

}  // namespace

std::vector<ObjectId> LinearScan::RangeQuery(const QueryDistanceFn& query,
                                             double epsilon,
                                             QueryStats* stats) const {
  std::vector<ObjectId> results;
  LbBlockCounts stages;
  const int64_t pruned = ScanRange(query, PrunableOf(query), 0, num_objects_,
                                   epsilon, &results, &stages);
  if (stats != nullptr) {
    // Billing invariant: the scan is responsible for every candidate,
    // so it bills all of them whether or not the prefilter skipped the
    // exact evaluation (see QueryStats::distance_computations).
    stats->distance_computations = num_objects_;
    stats->result_count = static_cast<int64_t>(results.size());
    stats->lower_bound_pruned = pruned;
    stats->lb_kim_pruned = stages.kim_pruned;
    stats->lb_erp_pruned = stages.erp_pruned;
  }
  return results;
}

std::vector<std::vector<ObjectId>> LinearScan::BatchRangeQuery(
    std::span<const QueryDistanceFn> queries, double epsilon,
    const ExecContext& exec, StatsSink* sink, QueryStats* per_query) const {
  const int64_t num_queries = static_cast<int64_t>(queries.size());
  if (num_queries >= exec.ResolvedThreads()) {
    return RangeIndex::BatchRangeQuery(queries, epsilon, exec, sink,
                                       per_query);
  }
  // Fewer queries than threads: shard each scan across object ranges.
  std::vector<std::vector<ObjectId>> results(queries.size());
  std::vector<std::vector<ObjectId>> parts(
      static_cast<size_t>(exec.ResolvedThreads()));
  std::vector<int64_t> parts_pruned(parts.size(), 0);
  std::vector<LbBlockCounts> parts_stages(parts.size());
  for (int64_t q = 0; q < num_queries; ++q) {
    const QueryDistanceFn& query = queries[static_cast<size_t>(q)];
    const PrunableQueryFn* prunable = PrunableOf(query);
    std::fill(parts_pruned.begin(), parts_pruned.end(), 0);
    std::fill(parts_stages.begin(), parts_stages.end(), LbBlockCounts{});
    const int32_t chunks = ParallelFor(
        exec, num_objects_,
        [&](int64_t begin, int64_t end, int32_t chunk) {
          std::vector<ObjectId>& out = parts[static_cast<size_t>(chunk)];
          out.clear();
          parts_pruned[static_cast<size_t>(chunk)] =
              ScanRange(query, prunable, begin, end, epsilon, &out,
                        &parts_stages[static_cast<size_t>(chunk)]);
        },
        /*grain=*/64);
    std::vector<ObjectId>& merged = results[static_cast<size_t>(q)];
    int64_t pruned = 0;
    LbBlockCounts stages;
    for (int32_t c = 0; c < chunks; ++c) {
      const std::vector<ObjectId>& part = parts[static_cast<size_t>(c)];
      merged.insert(merged.end(), part.begin(), part.end());
      pruned += parts_pruned[static_cast<size_t>(c)];
      stages.kim_pruned += parts_stages[static_cast<size_t>(c)].kim_pruned;
      stages.envelope_pruned +=
          parts_stages[static_cast<size_t>(c)].envelope_pruned;
      stages.erp_pruned += parts_stages[static_cast<size_t>(c)].erp_pruned;
    }
    if (per_query != nullptr) {
      per_query[q].distance_computations = num_objects_;
      per_query[q].result_count = static_cast<int64_t>(merged.size());
      per_query[q].lower_bound_pruned = pruned;
      per_query[q].lb_kim_pruned = stages.kim_pruned;
      per_query[q].lb_erp_pruned = stages.erp_pruned;
    }
    if (sink != nullptr) {
      sink->AddDistanceComputations(num_objects_);
      sink->AddResults(static_cast<int64_t>(merged.size()));
      sink->AddLowerBoundPruned(pruned);
      sink->AddLbKimPruned(stages.kim_pruned);
      sink->AddLbErpPruned(stages.erp_pruned);
    }
  }
  return results;
}

std::vector<Neighbor> LinearScan::NearestNeighbors(
    const QueryDistanceFn& query, int32_t k, QueryStats* stats) const {
  KnnCollector collector(k);
  for (ObjectId id = 0; id < num_objects_; ++id) {
    collector.Offer(id, query(id));
  }
  if (stats != nullptr) {
    stats->distance_computations = num_objects_;
  }
  std::vector<Neighbor> out = collector.Take();
  if (stats != nullptr) {
    stats->result_count = static_cast<int64_t>(out.size());
  }
  return out;
}

SpaceStats LinearScan::ComputeSpaceStats() const {
  SpaceStats s;
  s.num_objects = num_objects_;
  s.approx_bytes = 0;  // no structure beyond the data itself
  return s;
}

namespace {

struct LinearScanMetaRec {
  int32_t num_objects;
  int32_t pad0;
};
static_assert(sizeof(LinearScanMetaRec) == 8);

}  // namespace

Status LinearScan::SaveSections(SnapshotWriter& writer,
                                const std::string& prefix) const {
  LinearScanMetaRec meta{};
  meta.num_objects = num_objects_;
  return writer.AppendPodStruct(prefix + "meta", meta);
}

Result<std::unique_ptr<LinearScan>> LinearScan::LoadSections(
    const SnapshotFile& file, const std::string& prefix,
    const DistanceOracle& oracle) {
  LinearScanMetaRec meta{};
  SUBSEQ_RETURN_NOT_OK(ReadPodStruct(file, prefix + "meta", &meta));
  if (meta.num_objects != oracle.size()) {
    return Status::InvalidArgument(
        "linear-scan snapshot sections '" + prefix + "*': indexes " +
        std::to_string(meta.num_objects) + " objects but the oracle holds " +
        std::to_string(oracle.size()));
  }
  return std::make_unique<LinearScan>(meta.num_objects);
}

}  // namespace subseq
