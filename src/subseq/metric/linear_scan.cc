#include "subseq/metric/linear_scan.h"

#include "subseq/metric/knn.h"

namespace subseq {

std::vector<ObjectId> LinearScan::RangeQuery(const QueryDistanceFn& query,
                                             double epsilon,
                                             QueryStats* stats) const {
  std::vector<ObjectId> results;
  int64_t computations = 0;
  for (ObjectId id = 0; id < num_objects_; ++id) {
    ++computations;
    if (query(id) <= epsilon) results.push_back(id);
  }
  if (stats != nullptr) {
    stats->distance_computations = computations;
    stats->result_count = static_cast<int64_t>(results.size());
  }
  return results;
}

std::vector<Neighbor> LinearScan::NearestNeighbors(
    const QueryDistanceFn& query, int32_t k, QueryStats* stats) const {
  KnnCollector collector(k);
  for (ObjectId id = 0; id < num_objects_; ++id) {
    collector.Offer(id, query(id));
  }
  if (stats != nullptr) {
    stats->distance_computations = num_objects_;
  }
  std::vector<Neighbor> out = collector.Take();
  if (stats != nullptr) {
    stats->result_count = static_cast<int64_t>(out.size());
  }
  return out;
}

SpaceStats LinearScan::ComputeSpaceStats() const {
  SpaceStats s;
  s.num_objects = num_objects_;
  s.approx_bytes = 0;  // no structure beyond the data itself
  return s;
}

}  // namespace subseq
