// Deterministic pseudo-random number generation.
//
// All generators, experiments and tests in this repository are seeded, so
// every benchmark table is exactly reproducible run-to-run. The engine is
// xoshiro256++ seeded via SplitMix64, implemented here to avoid depending
// on the (implementation-defined) distributions of <random>.

#ifndef SUBSEQ_CORE_RNG_H_
#define SUBSEQ_CORE_RNG_H_

#include <cstdint>

namespace subseq {

/// A small, fast, deterministic PRNG (xoshiro256++).
class Rng {
 public:
  /// Seeds the state from a single 64-bit seed via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal variate (Box-Muller).
  double NextGaussian();

  /// Bernoulli draw with success probability p.
  bool NextBool(double p);

  /// Splits off an independent generator (for per-worker determinism).
  Rng Split();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace subseq

#endif  // SUBSEQ_CORE_RNG_H_
