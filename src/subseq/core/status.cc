#include "subseq/core/status.h"

namespace subseq {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace subseq
