#include "subseq/core/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "subseq/core/check.h"

namespace subseq {

Histogram::Histogram(double lo, double hi, int num_buckets)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / num_buckets),
      counts_(static_cast<size_t>(num_buckets), 0),
      min_seen_(std::numeric_limits<double>::infinity()),
      max_seen_(-std::numeric_limits<double>::infinity()) {
  SUBSEQ_CHECK(hi > lo);
  SUBSEQ_CHECK(num_buckets > 0);
}

void Histogram::Add(double value) {
  int idx = static_cast<int>(std::floor((value - lo_) / width_));
  idx = std::clamp(idx, 0, num_buckets() - 1);
  ++counts_[static_cast<size_t>(idx)];
  ++total_;
  sum_ += value;
  sum_sq_ += value * value;
  min_seen_ = std::min(min_seen_, value);
  max_seen_ = std::max(max_seen_, value);
}

int64_t Histogram::bucket_count(int i) const {
  SUBSEQ_CHECK(i >= 0 && i < num_buckets());
  return counts_[static_cast<size_t>(i)];
}

double Histogram::bucket_lo(int i) const { return lo_ + width_ * i; }
double Histogram::bucket_hi(int i) const { return lo_ + width_ * (i + 1); }
double Histogram::bucket_mid(int i) const {
  return lo_ + width_ * (i + 0.5);
}

double Histogram::Fraction(int i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(bucket_count(i)) / static_cast<double>(total_);
}

double Histogram::CdfAt(double x) const {
  if (total_ == 0) return 0.0;
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  double cum = 0.0;
  for (int i = 0; i < num_buckets(); ++i) {
    if (x >= bucket_hi(i)) {
      cum += static_cast<double>(counts_[static_cast<size_t>(i)]);
    } else {
      const double frac_in_bucket = (x - bucket_lo(i)) / width_;
      cum += frac_in_bucket * static_cast<double>(counts_[static_cast<size_t>(i)]);
      break;
    }
  }
  return cum / static_cast<double>(total_);
}

double Histogram::Mean() const {
  if (total_ == 0) return 0.0;
  return sum_ / static_cast<double>(total_);
}

double Histogram::Variance() const {
  if (total_ == 0) return 0.0;
  const double mean = Mean();
  return sum_sq_ / static_cast<double>(total_) - mean * mean;
}

std::string Histogram::ToString() const {
  std::string out;
  int64_t max_count = 1;
  for (int i = 0; i < num_buckets(); ++i) {
    max_count = std::max(max_count, bucket_count(i));
  }
  char line[160];
  for (int i = 0; i < num_buckets(); ++i) {
    const int bar_len =
        static_cast<int>(40.0 * static_cast<double>(bucket_count(i)) /
                         static_cast<double>(max_count));
    std::snprintf(line, sizeof(line), "%10.3f %10lld  %6.2f%%  ",
                  bucket_mid(i),
                  static_cast<long long>(bucket_count(i)),
                  100.0 * Fraction(i));
    out += line;
    out.append(static_cast<size_t>(bar_len), '#');
    out += '\n';
  }
  return out;
}

}  // namespace subseq
