// Sequence<T> and SequenceDatabase<T>: the data model for both strings
// (T = char) and time series (T = double or Point2d).
//
// Terminology follows the paper (Section 3): a sequence X has elements
// x_1..x_|X| from an alphabet Sigma; a subsequence SX_{a,b} is the
// *contiguous* run (x_a, ..., x_b). Intervals in this library are half-open
// 0-based [begin, end).

#ifndef SUBSEQ_CORE_SEQUENCE_H_
#define SUBSEQ_CORE_SEQUENCE_H_

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "subseq/core/check.h"
#include "subseq/core/types.h"

namespace subseq {

/// A contiguous index interval [begin, end) within a sequence.
struct Interval {
  int32_t begin = 0;
  int32_t end = 0;

  int32_t length() const { return end - begin; }
  bool empty() const { return end <= begin; }

  /// True if this interval fully contains `other`.
  bool Contains(const Interval& other) const {
    return begin <= other.begin && other.end <= end;
  }

  /// True if the two intervals share at least one index.
  bool Overlaps(const Interval& other) const {
    return begin < other.end && other.begin < end;
  }

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.begin == b.begin && a.end == b.end;
  }
};

/// An immutable sequence of elements with an optional label.
///
/// Sequence is a thin value type over std::vector<T>; copying copies the
/// elements. Use std::span views (via `view()` / `Subsequence()`) to avoid
/// copies in hot paths.
template <typename T>
class Sequence {
 public:
  Sequence() = default;
  explicit Sequence(std::vector<T> elements, std::string label = "")
      : elements_(std::move(elements)), label_(std::move(label)) {}

  int32_t size() const { return static_cast<int32_t>(elements_.size()); }
  bool empty() const { return elements_.empty(); }
  const T& operator[](int32_t i) const {
    SUBSEQ_DCHECK(i >= 0 && i < size());
    return elements_[static_cast<size_t>(i)];
  }

  const std::vector<T>& elements() const { return elements_; }
  const std::string& label() const { return label_; }

  /// A view over the whole sequence.
  std::span<const T> view() const { return std::span<const T>(elements_); }

  /// A view over the contiguous subsequence [iv.begin, iv.end).
  std::span<const T> Subsequence(const Interval& iv) const {
    SUBSEQ_CHECK(iv.begin >= 0 && iv.end <= size() && iv.begin <= iv.end);
    return view().subspan(static_cast<size_t>(iv.begin),
                          static_cast<size_t>(iv.length()));
  }

  friend bool operator==(const Sequence& a, const Sequence& b) {
    return a.elements_ == b.elements_;
  }

 private:
  std::vector<T> elements_;
  std::string label_;
};

/// Builds a char sequence from a string literal / std::string.
inline Sequence<char> MakeStringSequence(std::string_view s,
                                         std::string label = "") {
  return Sequence<char>(std::vector<char>(s.begin(), s.end()),
                        std::move(label));
}

/// An in-memory collection of sequences addressed by dense SeqId.
template <typename T>
class SequenceDatabase {
 public:
  SequenceDatabase() = default;

  /// Appends a sequence; returns its id.
  SeqId Add(Sequence<T> seq) {
    sequences_.push_back(std::move(seq));
    return static_cast<SeqId>(sequences_.size() - 1);
  }

  int32_t size() const { return static_cast<int32_t>(sequences_.size()); }
  bool empty() const { return sequences_.empty(); }

  const Sequence<T>& at(SeqId id) const {
    SUBSEQ_CHECK(id >= 0 && id < size());
    return sequences_[static_cast<size_t>(id)];
  }

  /// Total number of elements across all sequences.
  int64_t TotalLength() const {
    int64_t total = 0;
    for (const auto& s : sequences_) total += s.size();
    return total;
  }

  auto begin() const { return sequences_.begin(); }
  auto end() const { return sequences_.end(); }

 private:
  std::vector<Sequence<T>> sequences_;
};

}  // namespace subseq

#endif  // SUBSEQ_CORE_SEQUENCE_H_
