// Sequence<T> and SequenceDatabase<T>: the data model for both strings
// (T = char) and time series (T = double or Point2d).
//
// Terminology follows the paper (Section 3): a sequence X has elements
// x_1..x_|X| from an alphabet Sigma; a subsequence SX_{a,b} is the
// *contiguous* run (x_a, ..., x_b). Intervals in this library are half-open
// 0-based [begin, end).

#ifndef SUBSEQ_CORE_SEQUENCE_H_
#define SUBSEQ_CORE_SEQUENCE_H_

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "subseq/core/check.h"
#include "subseq/core/types.h"

namespace subseq {

/// A contiguous index interval [begin, end) within a sequence.
struct Interval {
  int32_t begin = 0;
  int32_t end = 0;

  int32_t length() const { return end - begin; }
  bool empty() const { return end <= begin; }

  /// True if this interval fully contains `other`.
  bool Contains(const Interval& other) const {
    return begin <= other.begin && other.end <= end;
  }

  /// True if the two intervals share at least one index.
  bool Overlaps(const Interval& other) const {
    return begin < other.end && other.begin < end;
  }

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.begin == b.begin && a.end == b.end;
  }
};

/// An immutable sequence of elements with an optional label.
///
/// Sequence is a thin value type over std::vector<T>; copying copies the
/// elements. Use std::span views (via `view()` / `Subsequence()`) to avoid
/// copies in hot paths.
template <typename T>
class Sequence {
 public:
  Sequence() = default;
  explicit Sequence(std::vector<T> elements, std::string label = "")
      : elements_(std::move(elements)), label_(std::move(label)) {}

  int32_t size() const { return static_cast<int32_t>(elements_.size()); }
  bool empty() const { return elements_.empty(); }
  const T& operator[](int32_t i) const {
    SUBSEQ_DCHECK(i >= 0 && i < size());
    return elements_[static_cast<size_t>(i)];
  }

  const std::vector<T>& elements() const { return elements_; }
  const std::string& label() const { return label_; }

  /// A view over the whole sequence.
  std::span<const T> view() const { return std::span<const T>(elements_); }

  /// A view over the contiguous subsequence [iv.begin, iv.end).
  std::span<const T> Subsequence(const Interval& iv) const {
    SUBSEQ_CHECK(iv.begin >= 0 && iv.end <= size() && iv.begin <= iv.end);
    return view().subspan(static_cast<size_t>(iv.begin),
                          static_cast<size_t>(iv.length()));
  }

  friend bool operator==(const Sequence& a, const Sequence& b) {
    return a.elements_ == b.elements_;
  }

 private:
  std::vector<T> elements_;
  std::string label_;
};

/// Builds a char sequence from a string literal / std::string.
inline Sequence<char> MakeStringSequence(std::string_view s,
                                         std::string label = "") {
  return Sequence<char>(std::vector<char>(s.begin(), s.end()),
                        std::move(label));
}

/// An in-memory collection of sequences addressed by dense SeqId.
///
/// The database is epoch-versioned: `Append` and `Retire` return a NEW
/// database value one epoch later, never mutating this one. Element
/// storage is shared between epochs (sequences are held by shared_ptr),
/// so deriving an epoch is O(size) pointer copies, not a deep copy.
/// Retiring never renumbers: the retired sequence keeps its SeqId and
/// its elements (so window ObjectIds derived from it stay stable) and
/// is merely marked, to be masked downstream by the frame layer.
template <typename T>
class SequenceDatabase {
 public:
  SequenceDatabase() = default;

  /// Appends a sequence in place; returns its id. The epoch does not
  /// advance — Add is the bulk-loading path for epoch 0 (or for staging
  /// a database before its first Build).
  SeqId Add(Sequence<T> seq) {
    sequences_.push_back(
        std::make_shared<const Sequence<T>>(std::move(seq)));
    retired_.push_back(0);
    return static_cast<SeqId>(sequences_.size() - 1);
  }

  /// A new database one epoch later with `seq` appended at the end
  /// (its id is the old size()). This database is unchanged.
  SequenceDatabase Append(Sequence<T> seq) const {
    SequenceDatabase next = *this;
    next.sequences_.push_back(
        std::make_shared<const Sequence<T>>(std::move(seq)));
    next.retired_.push_back(0);
    next.epoch_id_ = epoch_id_ + 1;
    return next;
  }

  /// A new database one epoch later with sequence `id` marked retired.
  /// The sequence keeps its id and its elements (ids are never
  /// renumbered); queries against indexes built over the new epoch mask
  /// its windows. Retiring an already-retired id is a checked error.
  SequenceDatabase Retire(SeqId id) const {
    SUBSEQ_CHECK(id >= 0 && id < size());
    SUBSEQ_CHECK(retired_[static_cast<size_t>(id)] == 0);
    SequenceDatabase next = *this;
    next.retired_[static_cast<size_t>(id)] = 1;
    next.epoch_id_ = epoch_id_ + 1;
    return next;
  }

  /// A new database with identical contents one epoch later. Used when
  /// downstream derived state (a compacted index, epoch-keyed caches)
  /// must roll over even though no sequence changed.
  SequenceDatabase NextEpoch() const {
    SequenceDatabase next = *this;
    next.epoch_id_ = epoch_id_ + 1;
    return next;
  }

  int32_t size() const { return static_cast<int32_t>(sequences_.size()); }
  bool empty() const { return sequences_.empty(); }

  const Sequence<T>& at(SeqId id) const {
    SUBSEQ_CHECK(id >= 0 && id < size());
    return *sequences_[static_cast<size_t>(id)];
  }

  /// True if `id` has been retired in some ancestor epoch.
  bool is_retired(SeqId id) const {
    SUBSEQ_CHECK(id >= 0 && id < size());
    return retired_[static_cast<size_t>(id)] != 0;
  }

  /// Number of retired sequences.
  int32_t num_retired() const {
    int32_t n = 0;
    for (uint8_t r : retired_) n += r != 0 ? 1 : 0;
    return n;
  }

  /// Monotone epoch counter: 0 for a freshly loaded database, +1 per
  /// Append / Retire / NextEpoch.
  uint64_t epoch_id() const { return epoch_id_; }

  /// Total number of elements across all sequences (retired included —
  /// their storage is still live).
  int64_t TotalLength() const {
    int64_t total = 0;
    for (const auto& s : sequences_) total += s->size();
    return total;
  }

  /// Const iterator dereferencing to the sequence itself, so range-for
  /// over a database sees `const Sequence<T>&` regardless of the shared
  /// storage representation.
  class const_iterator {
   public:
    using inner = typename std::vector<
        std::shared_ptr<const Sequence<T>>>::const_iterator;
    using iterator_category = std::forward_iterator_tag;
    using value_type = Sequence<T>;
    using difference_type = std::ptrdiff_t;
    using pointer = const Sequence<T>*;
    using reference = const Sequence<T>&;

    explicit const_iterator(inner it) : it_(it) {}
    reference operator*() const { return **it_; }
    pointer operator->() const { return it_->get(); }
    const_iterator& operator++() {
      ++it_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator old = *this;
      ++it_;
      return old;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.it_ == b.it_;
    }

   private:
    inner it_;
  };

  const_iterator begin() const { return const_iterator(sequences_.begin()); }
  const_iterator end() const { return const_iterator(sequences_.end()); }

 private:
  std::vector<std::shared_ptr<const Sequence<T>>> sequences_;
  std::vector<uint8_t> retired_;  // parallel to sequences_
  uint64_t epoch_id_ = 0;
};

}  // namespace subseq

#endif  // SUBSEQ_CORE_SEQUENCE_H_
