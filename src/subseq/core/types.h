// Element and identifier types shared across the library.

#ifndef SUBSEQ_CORE_TYPES_H_
#define SUBSEQ_CORE_TYPES_H_

#include <cmath>
#include <cstdint>

namespace subseq {

/// Identifier of an object inside a metric index (dense, 0-based).
using ObjectId = int32_t;

/// Identifier of a sequence inside a SequenceDatabase (dense, 0-based).
using SeqId = int32_t;

/// Invalid sentinel for ObjectId / SeqId.
inline constexpr int32_t kInvalidId = -1;

/// A point in the plane; the element type for trajectory sequences
/// (the TRAJ dataset in the paper: tracks from a parking-lot camera).
struct Point2d {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point2d& a, const Point2d& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Euclidean distance between two points.
inline double PointDistance(const Point2d& a, const Point2d& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace subseq

#endif  // SUBSEQ_CORE_TYPES_H_
