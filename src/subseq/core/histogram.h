// Fixed-bucket histogram used for the distance-distribution experiments
// (Figure 4 and the distribution overlays in Figures 10 and 12).

#ifndef SUBSEQ_CORE_HISTOGRAM_H_
#define SUBSEQ_CORE_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace subseq {

/// Equal-width histogram over [lo, hi] with a fixed bucket count.
///
/// Values outside the range are clamped into the first/last bucket so that
/// total mass is preserved (distance distributions have hard bounds anyway).
class Histogram {
 public:
  Histogram(double lo, double hi, int num_buckets);

  void Add(double value);

  int num_buckets() const { return static_cast<int>(counts_.size()); }
  int64_t total() const { return total_; }
  int64_t bucket_count(int i) const;

  /// Lower edge of bucket i.
  double bucket_lo(int i) const;
  /// Upper edge of bucket i.
  double bucket_hi(int i) const;
  /// Midpoint of bucket i (the x-coordinate used when plotting).
  double bucket_mid(int i) const;

  /// Fraction of mass in bucket i (0 if the histogram is empty).
  double Fraction(int i) const;

  /// Fraction of values <= x (empirical CDF, linear within buckets).
  double CdfAt(double x) const;

  double Mean() const;
  double Variance() const;
  double Min() const { return min_seen_; }
  double Max() const { return max_seen_; }

  /// Renders a fixed-width text table: bucket-mid, count, fraction, bar.
  std::string ToString() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
};

}  // namespace subseq

#endif  // SUBSEQ_CORE_HISTOGRAM_H_
