// Status and Result<T>: exception-free error propagation.
//
// Follows the Apache Arrow / RocksDB idiom: library functions that can fail
// return a Status (or a Result<T> carrying either a value or a Status), and
// callers are expected to inspect it. Pure computational kernels that cannot
// fail on valid input return plain values and guard their contracts with
// SUBSEQ_CHECK.

#ifndef SUBSEQ_CORE_STATUS_H_
#define SUBSEQ_CORE_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "subseq/core/check.h"

namespace subseq {

/// Machine-readable error category.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kIoError,
  kInternal,
  kUnavailable,
};

/// Returns a short human-readable name for a status code ("InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// The result of an operation that can fail but returns no value.
///
/// A Status is cheap to copy in the OK case (no allocation) and carries a
/// code plus message otherwise. Typical use:
///
///   Status s = index.Build(params);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. Never holds an OK status
/// without a value.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status.
  Result(Status status) : value_(std::move(status)) {  // NOLINT
    SUBSEQ_CHECK(!std::get<Status>(value_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  /// The error status; OK if the result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(value_);
  }

  /// The held value. The result must be ok().
  const T& value() const& {
    SUBSEQ_CHECK(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    SUBSEQ_CHECK(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    SUBSEQ_CHECK(ok());
    return std::get<T>(std::move(value_));
  }

  /// Moves the value out. The result must be ok().
  T ValueOrDie() && { return std::move(*this).value(); }

 private:
  std::variant<T, Status> value_;
};

}  // namespace subseq

/// Propagates a non-OK status to the caller.
#define SUBSEQ_RETURN_NOT_OK(expr)              \
  do {                                          \
    ::subseq::Status _subseq_status = (expr);   \
    if (!_subseq_status.ok()) {                 \
      return _subseq_status;                    \
    }                                           \
  } while (0)

#endif  // SUBSEQ_CORE_STATUS_H_
