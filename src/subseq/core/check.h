// Lightweight runtime-check macros used throughout the library.
//
// The library does not throw exceptions across API boundaries (fallible
// operations return Status/Result). CHECK macros guard *programming errors*
// (contract violations) and abort with a message, in the spirit of
// RocksDB's assert() usage and Abseil's CHECK.

#ifndef SUBSEQ_CORE_CHECK_H_
#define SUBSEQ_CORE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace subseq::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "subseq: CHECK failed at %s:%d: %s\n", file, line,
               expr);
  std::abort();
}

}  // namespace subseq::internal

// Always-on invariant check. Use for cheap contract checks on public APIs.
#define SUBSEQ_CHECK(expr)                                        \
  do {                                                            \
    if (!(expr)) {                                                \
      ::subseq::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                             \
  } while (0)

// Debug-only check for hot paths; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define SUBSEQ_DCHECK(expr) \
  do {                      \
  } while (0)
#else
#define SUBSEQ_DCHECK(expr) SUBSEQ_CHECK(expr)
#endif

#endif  // SUBSEQ_CORE_CHECK_H_
