#include "subseq/core/rng.h"

#include <cmath>

#include "subseq/core/check.h"

namespace subseq {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  SUBSEQ_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  SUBSEQ_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi_u2 = 2.0 * M_PI * u2;
  cached_gaussian_ = mag * std::sin(two_pi_u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(two_pi_u2);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Rng Rng::Split() { return Rng(NextU64()); }

}  // namespace subseq
