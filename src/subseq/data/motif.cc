#include "subseq/data/motif.h"

#include "subseq/core/check.h"

namespace subseq {

MotifPlanter::MotifPlanter(uint64_t seed) : rng_(seed) {}

std::vector<char> MotifPlanter::Mutate(std::span<const char> motif,
                                       const MotifOptions& options) {
  SUBSEQ_CHECK(!options.alphabet.empty());
  std::vector<char> out(motif.begin(), motif.end());
  for (char& c : out) {
    if (rng_.NextBool(options.substitution_rate)) {
      c = options.alphabet[static_cast<size_t>(
          rng_.NextBounded(options.alphabet.size()))];
    }
  }
  return out;
}

std::vector<double> MotifPlanter::Mutate(std::span<const double> motif,
                                         const MotifOptions& options) {
  std::vector<double> out(motif.begin(), motif.end());
  for (double& v : out) v += options.noise_sigma * rng_.NextGaussian();
  return out;
}

std::vector<Point2d> MotifPlanter::Mutate(std::span<const Point2d> motif,
                                          const MotifOptions& options) {
  std::vector<Point2d> out(motif.begin(), motif.end());
  for (Point2d& p : out) {
    p.x += options.noise_sigma * rng_.NextGaussian();
    p.y += options.noise_sigma * rng_.NextGaussian();
  }
  return out;
}

int32_t MotifPlanter::DrawPosition(int32_t host_length,
                                   int32_t payload_length) {
  SUBSEQ_CHECK(payload_length <= host_length);
  return static_cast<int32_t>(
      rng_.NextInt(0, host_length - payload_length));
}

}  // namespace subseq
