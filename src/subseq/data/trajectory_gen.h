// TrajectoryGenerator — synthetic stand-in for the paper's TRAJ dataset
// (object trajectories tracked in a parking-lot video, Wang et al. 2011).
//
// Paths are smooth-heading random walks inside a bounded rectangular
// region: position integrates a velocity whose heading drifts slowly,
// with reflection at the region borders. This yields the wide-spread,
// high-variance continuous distance distributions (both ERP and DFD) that
// drive the paper's Fig. 7 space results and the Fig. 10/11 query plots.

#ifndef SUBSEQ_DATA_TRAJECTORY_GEN_H_
#define SUBSEQ_DATA_TRAJECTORY_GEN_H_

#include "subseq/core/rng.h"
#include "subseq/core/sequence.h"
#include "subseq/core/types.h"

namespace subseq {

/// Generator parameters.
struct TrajectoryGenOptions {
  /// Mean trajectory length in samples (uniform in [mean/2, 3*mean/2]).
  int32_t mean_length = 200;
  /// Region is [0, width] x [0, height].
  double width = 100.0;
  double height = 60.0;
  /// Distance travelled per sample.
  double speed = 1.5;
  /// Standard deviation of per-step heading drift (radians).
  double heading_sigma = 0.25;
  uint64_t seed = 3;
};

/// Generates smooth 2D trajectories in a bounded region.
class TrajectoryGenerator {
 public:
  explicit TrajectoryGenerator(TrajectoryGenOptions options = {});

  Sequence<Point2d> Generate();
  Sequence<Point2d> GenerateWithLength(int32_t length);
  SequenceDatabase<Point2d> GenerateDatabase(int32_t num_sequences);
  SequenceDatabase<Point2d> GenerateDatabaseWithWindows(
      int32_t num_windows, int32_t window_length);

 private:
  TrajectoryGenOptions options_;
  Rng rng_;
};

}  // namespace subseq

#endif  // SUBSEQ_DATA_TRAJECTORY_GEN_H_
