#include "subseq/data/trajectory_gen.h"

#include <cmath>

#include "subseq/core/check.h"

namespace subseq {

TrajectoryGenerator::TrajectoryGenerator(TrajectoryGenOptions options)
    : options_(options), rng_(options.seed) {
  SUBSEQ_CHECK(options_.mean_length >= 2);
  SUBSEQ_CHECK(options_.width > 0.0 && options_.height > 0.0);
  SUBSEQ_CHECK(options_.speed > 0.0);
}

Sequence<Point2d> TrajectoryGenerator::GenerateWithLength(int32_t length) {
  SUBSEQ_CHECK(length >= 0);
  std::vector<Point2d> points;
  points.reserve(static_cast<size_t>(length));
  double x = rng_.NextDouble(0.0, options_.width);
  double y = rng_.NextDouble(0.0, options_.height);
  double heading = rng_.NextDouble(0.0, 2.0 * M_PI);
  for (int32_t i = 0; i < length; ++i) {
    points.push_back(Point2d{x, y});
    heading += options_.heading_sigma * rng_.NextGaussian();
    x += options_.speed * std::cos(heading);
    y += options_.speed * std::sin(heading);
    // Reflect at the borders (vehicles stay in the lot).
    if (x < 0.0) {
      x = -x;
      heading = M_PI - heading;
    } else if (x > options_.width) {
      x = 2.0 * options_.width - x;
      heading = M_PI - heading;
    }
    if (y < 0.0) {
      y = -y;
      heading = -heading;
    } else if (y > options_.height) {
      y = 2.0 * options_.height - y;
      heading = -heading;
    }
  }
  return Sequence<Point2d>(std::move(points));
}

Sequence<Point2d> TrajectoryGenerator::Generate() {
  const int32_t lo = options_.mean_length / 2;
  const int32_t hi = options_.mean_length + options_.mean_length / 2;
  return GenerateWithLength(static_cast<int32_t>(rng_.NextInt(lo, hi)));
}

SequenceDatabase<Point2d> TrajectoryGenerator::GenerateDatabase(
    int32_t num_sequences) {
  SequenceDatabase<Point2d> db;
  for (int32_t i = 0; i < num_sequences; ++i) db.Add(Generate());
  return db;
}

SequenceDatabase<Point2d> TrajectoryGenerator::GenerateDatabaseWithWindows(
    int32_t num_windows, int32_t window_length) {
  SUBSEQ_CHECK(window_length >= 1);
  SequenceDatabase<Point2d> db;
  int64_t windows = 0;
  while (windows < num_windows) {
    Sequence<Point2d> seq = Generate();
    windows += seq.size() / window_length;
    db.Add(std::move(seq));
  }
  return db;
}

}  // namespace subseq
