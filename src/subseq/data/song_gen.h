// SongGenerator — synthetic stand-in for the paper's SONGS dataset
// (pitch sequences from the Million Song Dataset, Bertin-Mahieux et al.).
//
// Sequences are pitch classes in [0, 11], generated as a random walk over
// scale degrees with note repetition (sustained notes). The property the
// paper exploits is that the bounded alphabet makes the discrete Frechet
// distance distribution extremely skewed (most mass between 2 and 5 —
// Fig. 4 middle) while ERP spreads out; any bounded walk with repetition
// reproduces both effects.

#ifndef SUBSEQ_DATA_SONG_GEN_H_
#define SUBSEQ_DATA_SONG_GEN_H_

#include "subseq/core/rng.h"
#include "subseq/core/sequence.h"

namespace subseq {

/// Generator parameters.
struct SongGenOptions {
  /// Mean sequence length (uniform in [mean/2, 3*mean/2]).
  int32_t mean_length = 200;
  /// Probability of sustaining (repeating) the previous pitch.
  double repeat_probability = 0.4;
  /// Maximum pitch step when the note changes (walk locality). Small
  /// steps keep windows range-concentrated, which is what makes the DFD
  /// distribution skew into the 2-5 band as in the paper's Fig. 4.
  int32_t max_step = 2;
  uint64_t seed = 2;
};

/// Generates synthetic pitch-class time series (values 0..11).
class SongGenerator {
 public:
  explicit SongGenerator(SongGenOptions options = {});

  Sequence<double> Generate();
  Sequence<double> GenerateWithLength(int32_t length);
  SequenceDatabase<double> GenerateDatabase(int32_t num_sequences);
  SequenceDatabase<double> GenerateDatabaseWithWindows(int32_t num_windows,
                                                       int32_t window_length);

 private:
  SongGenOptions options_;
  Rng rng_;
};

}  // namespace subseq

#endif  // SUBSEQ_DATA_SONG_GEN_H_
