#include "subseq/data/song_gen.h"

#include <algorithm>

#include "subseq/core/check.h"

namespace subseq {

SongGenerator::SongGenerator(SongGenOptions options)
    : options_(options), rng_(options.seed) {
  SUBSEQ_CHECK(options_.mean_length >= 2);
  SUBSEQ_CHECK(options_.repeat_probability >= 0.0 &&
               options_.repeat_probability < 1.0);
  SUBSEQ_CHECK(options_.max_step >= 1);
}

Sequence<double> SongGenerator::GenerateWithLength(int32_t length) {
  SUBSEQ_CHECK(length >= 0);
  std::vector<double> elements;
  elements.reserve(static_cast<size_t>(length));
  int32_t pitch = static_cast<int32_t>(rng_.NextInt(3, 8));
  for (int32_t i = 0; i < length; ++i) {
    if (i > 0 && !rng_.NextBool(options_.repeat_probability)) {
      const int32_t step = static_cast<int32_t>(
          rng_.NextInt(-options_.max_step, options_.max_step));
      pitch = std::clamp(pitch + step, 0, 11);
      // Gentle mean reversion toward the middle of the register keeps
      // windows range-concentrated (tonal melodies hover around a tonic),
      // reproducing the paper's skewed 2-5 DFD band.
      if (rng_.NextBool(0.3)) pitch += (pitch < 6) ? 1 : -1;
    }
    elements.push_back(static_cast<double>(pitch));
  }
  return Sequence<double>(std::move(elements));
}

Sequence<double> SongGenerator::Generate() {
  const int32_t lo = options_.mean_length / 2;
  const int32_t hi = options_.mean_length + options_.mean_length / 2;
  return GenerateWithLength(static_cast<int32_t>(rng_.NextInt(lo, hi)));
}

SequenceDatabase<double> SongGenerator::GenerateDatabase(
    int32_t num_sequences) {
  SequenceDatabase<double> db;
  for (int32_t i = 0; i < num_sequences; ++i) db.Add(Generate());
  return db;
}

SequenceDatabase<double> SongGenerator::GenerateDatabaseWithWindows(
    int32_t num_windows, int32_t window_length) {
  SUBSEQ_CHECK(window_length >= 1);
  SequenceDatabase<double> db;
  int64_t windows = 0;
  while (windows < num_windows) {
    Sequence<double> seq = Generate();
    windows += seq.size() / window_length;
    db.Add(std::move(seq));
  }
  return db;
}

}  // namespace subseq
