#include "subseq/data/io.h"

#include <fstream>
#include <sstream>

namespace subseq {

namespace {

Status OpenFailure(const std::string& path) {
  return Status::IoError("cannot open file: " + path);
}

}  // namespace

Status WriteStringDatabase(const SequenceDatabase<char>& db,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) return OpenFailure(path);
  for (const auto& seq : db) {
    out.write(seq.elements().data(),
              static_cast<std::streamsize>(seq.elements().size()));
    out << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<SequenceDatabase<char>> ReadStringDatabase(const std::string& path) {
  std::ifstream in(path);
  if (!in) return OpenFailure(path);
  SequenceDatabase<char> db;
  std::string line;
  while (std::getline(in, line)) {
    db.Add(Sequence<char>(std::vector<char>(line.begin(), line.end())));
  }
  return db;
}

Status WriteScalarDatabase(const SequenceDatabase<double>& db,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) return OpenFailure(path);
  out.precision(17);
  for (const auto& seq : db) {
    bool first = true;
    for (const double v : seq.elements()) {
      if (!first) out << ' ';
      out << v;
      first = false;
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<SequenceDatabase<double>> ReadScalarDatabase(const std::string& path) {
  std::ifstream in(path);
  if (!in) return OpenFailure(path);
  SequenceDatabase<double> db;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ss(line);
    std::vector<double> values;
    double v = 0.0;
    while (ss >> v) values.push_back(v);
    if (!ss.eof()) {
      return Status::IoError("malformed scalar line in " + path);
    }
    db.Add(Sequence<double>(std::move(values)));
  }
  return db;
}

Status WriteTrajectoryDatabase(const SequenceDatabase<Point2d>& db,
                               const std::string& path) {
  std::ofstream out(path);
  if (!out) return OpenFailure(path);
  out.precision(17);
  for (const auto& seq : db) {
    bool first = true;
    for (const Point2d& p : seq.elements()) {
      if (!first) out << ' ';
      out << p.x << ',' << p.y;
      first = false;
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<SequenceDatabase<Point2d>> ReadTrajectoryDatabase(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return OpenFailure(path);
  SequenceDatabase<Point2d> db;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ss(line);
    std::vector<Point2d> points;
    std::string token;
    while (ss >> token) {
      const size_t comma = token.find(',');
      if (comma == std::string::npos) {
        return Status::IoError("malformed trajectory token in " + path);
      }
      Point2d p;
      try {
        p.x = std::stod(token.substr(0, comma));
        p.y = std::stod(token.substr(comma + 1));
      } catch (...) {
        return Status::IoError("malformed trajectory number in " + path);
      }
      points.push_back(p);
    }
    db.Add(Sequence<Point2d>(std::move(points)));
  }
  return db;
}

}  // namespace subseq
