// Plain-text persistence for sequence databases, so examples and tools can
// save generated datasets and reload them across runs.
//
// Formats (one sequence per line):
//   strings       ACDEFG...
//   scalar series 1.5 2 3.25 ...
//   trajectories  x,y x,y x,y ...

#ifndef SUBSEQ_DATA_IO_H_
#define SUBSEQ_DATA_IO_H_

#include <string>

#include "subseq/core/sequence.h"
#include "subseq/core/status.h"
#include "subseq/core/types.h"

namespace subseq {

Status WriteStringDatabase(const SequenceDatabase<char>& db,
                           const std::string& path);
Result<SequenceDatabase<char>> ReadStringDatabase(const std::string& path);

Status WriteScalarDatabase(const SequenceDatabase<double>& db,
                           const std::string& path);
Result<SequenceDatabase<double>> ReadScalarDatabase(const std::string& path);

Status WriteTrajectoryDatabase(const SequenceDatabase<Point2d>& db,
                               const std::string& path);
Result<SequenceDatabase<Point2d>> ReadTrajectoryDatabase(
    const std::string& path);

}  // namespace subseq

#endif  // SUBSEQ_DATA_IO_H_
