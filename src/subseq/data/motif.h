// Motif planting: embeds mutated copies of a payload subsequence into host
// sequences, producing ground truth for recall experiments and the
// integration tests ("does the framework find what we hid?").

#ifndef SUBSEQ_DATA_MOTIF_H_
#define SUBSEQ_DATA_MOTIF_H_

#include <span>
#include <vector>

#include "subseq/core/rng.h"
#include "subseq/core/sequence.h"
#include "subseq/core/types.h"

namespace subseq {

/// Mutation intensity knobs.
struct MotifOptions {
  /// Strings: per-element probability of substituting a random letter.
  double substitution_rate = 0.10;
  /// Numeric/trajectory elements: Gaussian jitter standard deviation.
  double noise_sigma = 0.3;
  /// Alphabet used for string substitutions.
  std::string_view alphabet = "ACDEFGHIKLMNPQRSTVWY";
};

/// Where a copy was planted.
struct PlantedLocation {
  SeqId seq = kInvalidId;
  Interval location;
};

/// Deterministic motif mutator / embedder.
class MotifPlanter {
 public:
  explicit MotifPlanter(uint64_t seed = 7);

  /// A mutated copy of a string motif (i.i.d. substitutions).
  std::vector<char> Mutate(std::span<const char> motif,
                           const MotifOptions& options);
  /// A mutated copy of a scalar motif (Gaussian jitter).
  std::vector<double> Mutate(std::span<const double> motif,
                             const MotifOptions& options);
  /// A mutated copy of a trajectory motif (isotropic jitter).
  std::vector<Point2d> Mutate(std::span<const Point2d> motif,
                              const MotifOptions& options);

  /// A copy of `host` with `payload` overwriting the elements at
  /// [position, position + |payload|). The payload must fit.
  template <typename T>
  Sequence<T> Embed(const Sequence<T>& host, std::span<const T> payload,
                    int32_t position) {
    std::vector<T> elements(host.elements());
    SUBSEQ_CHECK(position >= 0);
    SUBSEQ_CHECK(position + static_cast<int32_t>(payload.size()) <=
                 host.size());
    for (size_t i = 0; i < payload.size(); ++i) {
      elements[static_cast<size_t>(position) + i] = payload[i];
    }
    return Sequence<T>(std::move(elements), host.label());
  }

  /// A uniformly random in-bounds planting position for a payload of the
  /// given length inside a host of the given length.
  int32_t DrawPosition(int32_t host_length, int32_t payload_length);

 private:
  Rng rng_;
};

}  // namespace subseq

#endif  // SUBSEQ_DATA_MOTIF_H_
