// ProteinGenerator — synthetic stand-in for the paper's PROTEINS dataset
// (UniProt protein sequences; http://www.ebi.ac.uk/uniprot/).
//
// Sequences are drawn i.i.d. over the 20-letter amino-acid alphabet using
// the published UniProtKB/Swiss-Prot background composition. What the
// paper's experiments depend on is the *distance distribution* of
// Levenshtein over length-20 windows (max distance 20, mass concentrated
// in the 8-16 band — Fig. 4 left), which this composition reproduces.

#ifndef SUBSEQ_DATA_PROTEIN_GEN_H_
#define SUBSEQ_DATA_PROTEIN_GEN_H_

#include <string_view>

#include "subseq/core/rng.h"
#include "subseq/core/sequence.h"

namespace subseq {

/// The 20 amino-acid one-letter codes.
inline constexpr std::string_view kAminoAcids = "ACDEFGHIKLMNPQRSTVWY";

/// Generator parameters.
struct ProteinGenOptions {
  /// Mean sequence length (lengths are uniform in [mean/2, 3*mean/2]).
  int32_t mean_length = 400;
  /// Fraction of sequences generated as mutated copies of earlier ones.
  /// Real protein databases are highly redundant (families, isoforms);
  /// without this clustering, random windows are near-equidistant and no
  /// metric index can prune (curse of dimensionality). 0 disables.
  double family_fraction = 0.7;
  /// Per-residue substitution probability within a family copy.
  double family_mutation_rate = 0.05;
  uint64_t seed = 1;
};

/// Generates synthetic protein-like string sequences.
class ProteinGenerator {
 public:
  explicit ProteinGenerator(ProteinGenOptions options = {});

  /// One sequence with a fresh length draw.
  Sequence<char> Generate();

  /// A sequence of exactly the given length.
  Sequence<char> GenerateWithLength(int32_t length);

  /// A database with `num_sequences` sequences.
  SequenceDatabase<char> GenerateDatabase(int32_t num_sequences);

  /// A database holding at least `num_windows` windows of the given
  /// length (the unit the paper's space/query experiments are sized in).
  SequenceDatabase<char> GenerateDatabaseWithWindows(int32_t num_windows,
                                                     int32_t window_length);

 private:
  char DrawAminoAcid();
  Sequence<char> GenerateFresh(int32_t length);
  Sequence<char> GenerateFamilyVariant();

  ProteinGenOptions options_;
  Rng rng_;
  // Pool of previously generated sequences that family variants copy from.
  std::vector<Sequence<char>> family_pool_;
};

}  // namespace subseq

#endif  // SUBSEQ_DATA_PROTEIN_GEN_H_
