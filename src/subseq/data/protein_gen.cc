#include "subseq/data/protein_gen.h"

#include <array>

#include "subseq/core/check.h"

namespace subseq {

namespace {

// UniProtKB/Swiss-Prot amino-acid composition (percent), in the order of
// kAminoAcids = "ACDEFGHIKLMNPQRSTVWY".
constexpr std::array<double, 20> kCompositionPercent = {
    8.25,  // A
    1.38,  // C
    5.46,  // D
    6.71,  // E
    3.86,  // F
    7.07,  // G
    2.27,  // H
    5.91,  // I
    5.80,  // K
    9.65,  // L
    2.41,  // M
    4.06,  // N
    4.74,  // P
    3.93,  // Q
    5.53,  // R
    6.63,  // S
    5.35,  // T
    6.86,  // V
    1.10,  // W
    2.92,  // Y
};

// Cumulative distribution over the alphabet, normalized to 1.
std::array<double, 20> BuildCdf() {
  std::array<double, 20> cdf{};
  double total = 0.0;
  for (const double p : kCompositionPercent) total += p;
  double acc = 0.0;
  for (size_t i = 0; i < cdf.size(); ++i) {
    acc += kCompositionPercent[i] / total;
    cdf[i] = acc;
  }
  cdf.back() = 1.0;
  return cdf;
}

const std::array<double, 20>& Cdf() {
  static const std::array<double, 20> cdf = BuildCdf();
  return cdf;
}

}  // namespace

ProteinGenerator::ProteinGenerator(ProteinGenOptions options)
    : options_(options), rng_(options.seed) {
  SUBSEQ_CHECK(options_.mean_length >= 2);
}

char ProteinGenerator::DrawAminoAcid() {
  const double u = rng_.NextDouble();
  const auto& cdf = Cdf();
  for (size_t i = 0; i < cdf.size(); ++i) {
    if (u < cdf[i]) return kAminoAcids[i];
  }
  return kAminoAcids.back();
}

Sequence<char> ProteinGenerator::GenerateFresh(int32_t length) {
  SUBSEQ_CHECK(length >= 0);
  std::vector<char> elements;
  elements.reserve(static_cast<size_t>(length));
  for (int32_t i = 0; i < length; ++i) elements.push_back(DrawAminoAcid());
  return Sequence<char>(std::move(elements));
}

Sequence<char> ProteinGenerator::GenerateFamilyVariant() {
  const Sequence<char>& base = family_pool_[static_cast<size_t>(
      rng_.NextBounded(family_pool_.size()))];
  std::vector<char> elements(base.elements());
  for (char& c : elements) {
    if (rng_.NextBool(options_.family_mutation_rate)) c = DrawAminoAcid();
  }
  return Sequence<char>(std::move(elements));
}

Sequence<char> ProteinGenerator::GenerateWithLength(int32_t length) {
  return GenerateFresh(length);
}

Sequence<char> ProteinGenerator::Generate() {
  Sequence<char> seq;
  if (!family_pool_.empty() && rng_.NextBool(options_.family_fraction)) {
    seq = GenerateFamilyVariant();
  } else {
    const int32_t lo = options_.mean_length / 2;
    const int32_t hi = options_.mean_length + options_.mean_length / 2;
    seq = GenerateFresh(static_cast<int32_t>(rng_.NextInt(lo, hi)));
  }
  // Keep a bounded pool of family seeds; a small pool concentrates
  // database redundancy into fewer, larger families (UniProt-like).
  constexpr size_t kPoolCap = 16;
  if (family_pool_.size() < kPoolCap) {
    family_pool_.push_back(seq);
  } else {
    family_pool_[static_cast<size_t>(rng_.NextBounded(kPoolCap))] = seq;
  }
  return seq;
}

SequenceDatabase<char> ProteinGenerator::GenerateDatabase(
    int32_t num_sequences) {
  SequenceDatabase<char> db;
  for (int32_t i = 0; i < num_sequences; ++i) db.Add(Generate());
  return db;
}

SequenceDatabase<char> ProteinGenerator::GenerateDatabaseWithWindows(
    int32_t num_windows, int32_t window_length) {
  SUBSEQ_CHECK(window_length >= 1);
  SequenceDatabase<char> db;
  int64_t windows = 0;
  while (windows < num_windows) {
    Sequence<char> seq = Generate();
    windows += seq.size() / window_length;
    db.Add(std::move(seq));
  }
  return db;
}

}  // namespace subseq
