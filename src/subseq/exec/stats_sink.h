// StatsSink: thread-safe accounting shared by concurrent build and query
// shards.
//
// The paper's evaluation metrics are exact distance-computation counts
// (Figs. 8-11), so the counters must stay exact under concurrency.
// Shards accumulate locally and publish once per chunk with relaxed
// atomic adds: every count lands exactly once, no ordering is implied,
// and readers observe exact totals after the parallel section has joined
// (ParallelFor only returns once all chunks finished).

#ifndef SUBSEQ_EXEC_STATS_SINK_H_
#define SUBSEQ_EXEC_STATS_SINK_H_

#include <atomic>
#include <cstdint>

namespace subseq {

/// Atomic counters for the accounting every index and the matcher keep.
class StatsSink {
 public:
  StatsSink() = default;
  StatsSink(const StatsSink&) = delete;
  StatsSink& operator=(const StatsSink&) = delete;

  void AddDistanceComputations(int64_t n) {
    distance_computations_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddResults(int64_t n) {
    results_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Distance computations that were *billed but not executed* because a
  /// sharing layer (the serving coalescer's cross-round segment cache)
  /// answered them from a previous call's result. Kept separate from
  /// distance_computations(), which stays the exact executed count: the
  /// two together reconstruct what an unshared run would have executed.
  void AddSharedComputations(int64_t n) {
    shared_computations_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Candidates a lower-bound prefilter skipped (billed in
  /// distance_computations but never executed; see
  /// QueryStats::lower_bound_pruned).
  void AddLowerBoundPruned(int64_t n) {
    lower_bound_pruned_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Per-stage attribution of lower_bound_pruned (see
  /// QueryStats::lb_kim_pruned / lb_erp_pruned).
  void AddLbKimPruned(int64_t n) {
    lb_kim_pruned_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddLbErpPruned(int64_t n) {
    lb_erp_pruned_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Routed-index cells probed / skipped across queries (see
  /// QueryStats::cells_probed / cells_skipped).
  void AddCellsProbed(int64_t n) {
    cells_probed_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddCellsSkipped(int64_t n) {
    cells_skipped_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Delta-index windows scanned / tombstoned hits masked by the frame
  /// layer's base+delta merge (see QueryStats::delta_windows_probed /
  /// tombstones_masked).
  void AddDeltaWindowsProbed(int64_t n) {
    delta_windows_probed_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddTombstonesMasked(int64_t n) {
    tombstones_masked_.fetch_add(n, std::memory_order_relaxed);
  }

  int64_t distance_computations() const {
    return distance_computations_.load(std::memory_order_relaxed);
  }
  int64_t results() const {
    return results_.load(std::memory_order_relaxed);
  }
  int64_t shared_computations() const {
    return shared_computations_.load(std::memory_order_relaxed);
  }
  int64_t lower_bound_pruned() const {
    return lower_bound_pruned_.load(std::memory_order_relaxed);
  }
  int64_t lb_kim_pruned() const {
    return lb_kim_pruned_.load(std::memory_order_relaxed);
  }
  int64_t lb_erp_pruned() const {
    return lb_erp_pruned_.load(std::memory_order_relaxed);
  }
  int64_t cells_probed() const {
    return cells_probed_.load(std::memory_order_relaxed);
  }
  int64_t cells_skipped() const {
    return cells_skipped_.load(std::memory_order_relaxed);
  }
  int64_t delta_windows_probed() const {
    return delta_windows_probed_.load(std::memory_order_relaxed);
  }
  int64_t tombstones_masked() const {
    return tombstones_masked_.load(std::memory_order_relaxed);
  }

  void Reset() {
    distance_computations_.store(0, std::memory_order_relaxed);
    results_.store(0, std::memory_order_relaxed);
    shared_computations_.store(0, std::memory_order_relaxed);
    lower_bound_pruned_.store(0, std::memory_order_relaxed);
    lb_kim_pruned_.store(0, std::memory_order_relaxed);
    lb_erp_pruned_.store(0, std::memory_order_relaxed);
    cells_probed_.store(0, std::memory_order_relaxed);
    cells_skipped_.store(0, std::memory_order_relaxed);
    delta_windows_probed_.store(0, std::memory_order_relaxed);
    tombstones_masked_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> distance_computations_{0};
  std::atomic<int64_t> results_{0};
  std::atomic<int64_t> shared_computations_{0};
  std::atomic<int64_t> lower_bound_pruned_{0};
  std::atomic<int64_t> lb_kim_pruned_{0};
  std::atomic<int64_t> lb_erp_pruned_{0};
  std::atomic<int64_t> cells_probed_{0};
  std::atomic<int64_t> cells_skipped_{0};
  std::atomic<int64_t> delta_windows_probed_{0};
  std::atomic<int64_t> tombstones_masked_{0};
};

}  // namespace subseq

#endif  // SUBSEQ_EXEC_STATS_SINK_H_
