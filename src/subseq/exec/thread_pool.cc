#include "subseq/exec/thread_pool.h"

#include <utility>

#include "subseq/exec/exec_context.h"

namespace subseq {

namespace {

// Which pool (if any) owns the current thread; lets ParallelFor detect
// nested parallelism and degrade to inline execution.
thread_local const ThreadPool* current_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(int32_t num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int32_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::SubmitDetached(std::function<void()> task,
                                std::function<void()> on_complete) {
  Submit([task = std::move(task), on_complete = std::move(on_complete)] {
    task();
    if (on_complete) on_complete();
  });
}

bool ThreadPool::InWorker() const { return current_worker_pool == this; }

void ThreadPool::WorkerLoop() {
  current_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Shared() {
  // Leaked intentionally: workers must outlive all static destructors
  // that might still issue queries.
  static ThreadPool* pool = new ThreadPool(HardwareConcurrency());
  return *pool;
}

int32_t ThreadPool::HardwareConcurrency() {
  return ResolveHardwareConcurrency();
}

}  // namespace subseq
