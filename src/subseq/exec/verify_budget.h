// VerifyBudget: the shared atomic step-5 verification budget.
//
// MatcherOptions::max_verifications caps how many distance computations
// step 5 may spend on one query (Type I is combinatorial by design).
// When verification runs concurrently the cap must stay *exact*: the
// paper's accounting is per-computation, and the serving layer promises
// that a query errors with budget-exceeded iff the same query run
// serially would. The charging discipline that makes exhaustion
// schedule-independent is charge-before-work in full units: a region (or
// tuple) that starts verifying has already charged its whole cost, so
// the sum of all charges is a fixed, schedule-independent total, and
// `exceeded` flips iff that total is greater than the limit — exactly
// the serial path's error condition — no matter how the charges
// interleave.

#ifndef SUBSEQ_EXEC_VERIFY_BUDGET_H_
#define SUBSEQ_EXEC_VERIFY_BUDGET_H_

#include <atomic>
#include <cstdint>

#include "subseq/core/check.h"

namespace subseq {

/// A fixed budget that concurrent workers draw down in full-cost units.
/// Exhaustion is sticky and order-independent: for any interleaving,
/// exceeded() ends up true iff the total demand exceeds the limit.
class VerifyBudget {
 public:
  /// `limit` must be >= 0 (a negative budget is a programming error;
  /// MatcherOptions::Validate rejects it at the API boundary).
  explicit VerifyBudget(int64_t limit) : remaining_(limit), limit_(limit) {
    SUBSEQ_CHECK(limit >= 0);
  }
  VerifyBudget(const VerifyBudget&) = delete;
  VerifyBudget& operator=(const VerifyBudget&) = delete;

  /// Charges `cost` in full. Returns true when the charged work may run;
  /// false when the budget is exhausted — the caller must not perform
  /// the work (and the owner reports budget-exceeded after the parallel
  /// section joins). A zero-cost charge on a zero-remaining budget
  /// succeeds, mirroring the serial loops, which only decrement when
  /// they have a pair to verify.
  bool Charge(int64_t cost) {
    SUBSEQ_CHECK(cost >= 0);
    if (exceeded_.load(std::memory_order_relaxed)) return false;
    const int64_t after =
        remaining_.fetch_sub(cost, std::memory_order_relaxed) - cost;
    if (after < 0) {
      exceeded_.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  /// True once any charge has overdrawn the limit. Exact after the
  /// parallel section spending this budget has joined.
  bool exceeded() const {
    return exceeded_.load(std::memory_order_relaxed);
  }

  int64_t limit() const { return limit_; }

 private:
  std::atomic<int64_t> remaining_;
  std::atomic<bool> exceeded_{false};
  const int64_t limit_;
};

}  // namespace subseq

#endif  // SUBSEQ_EXEC_VERIFY_BUDGET_H_
