// ExecContext: the execution knobs shared by index construction and
// batched queries.
//
// Every parallel section in the library partitions its work by *index*
// (deterministic chunk boundaries derived from the problem size) and
// merges per-chunk results in chunk order, never in completion order.
// Results are therefore element-wise identical at any num_threads
// setting; the knob trades wall-clock time only.

#ifndef SUBSEQ_EXEC_EXEC_CONTEXT_H_
#define SUBSEQ_EXEC_EXEC_CONTEXT_H_

#include <cstdint>
#include <thread>

namespace subseq {

/// std::thread::hardware_concurrency() with a floor of 1 — the single
/// resolution point shared by ExecContext and the ThreadPool sizing.
inline int32_t ResolveHardwareConcurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int32_t>(hw);
}

/// Execution configuration for parallel build and query paths.
struct ExecContext {
  /// Worker-thread budget for parallel sections. 0 (the default) resolves
  /// to the hardware concurrency; 1 keeps everything on the calling
  /// thread.
  int32_t num_threads = 0;

  /// The effective thread budget (always >= 1).
  int32_t ResolvedThreads() const {
    return num_threads > 0 ? num_threads : ResolveHardwareConcurrency();
  }
};

/// A context pinned to the calling thread.
inline ExecContext SequentialExec() { return ExecContext{1}; }

}  // namespace subseq

#endif  // SUBSEQ_EXEC_EXEC_CONTEXT_H_
