// ExecContext: the execution knobs shared by index construction and
// batched queries.
//
// Every parallel section in the library partitions its work by *index*
// (deterministic chunk boundaries derived from the problem size) and
// merges per-chunk results in chunk order, never in completion order.
// Results are therefore element-wise identical at any num_threads
// setting; the knob trades wall-clock time only.

#ifndef SUBSEQ_EXEC_EXEC_CONTEXT_H_
#define SUBSEQ_EXEC_EXEC_CONTEXT_H_

#include <algorithm>
#include <cstdint>
#include <thread>

namespace subseq {

/// std::thread::hardware_concurrency() with a floor of 1 — the single
/// resolution point shared by ExecContext and the ThreadPool sizing.
///
/// Resolved exactly once per process and cached: hardware_concurrency()
/// can be an OS call, and before this was hoisted every index build (and
/// every ParallelFor chunk-budget computation) re-queried it on the hot
/// path. The machine's core count cannot change under a running process,
/// so one resolution serves all ExecContexts.
inline int32_t ResolveHardwareConcurrency() {
  static const int32_t cached = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int32_t>(hw);
  }();
  return cached;
}

/// Execution configuration for parallel build and query paths.
struct ExecContext {
  /// Worker-thread budget for parallel sections. 0 (the default) resolves
  /// to the hardware concurrency — once per process, see
  /// ResolveHardwareConcurrency(); 1 keeps everything on the calling
  /// thread. The budget caps how many *chunks* a parallel section splits
  /// into, never how many pool workers exist, so results are identical at
  /// any setting (the knob trades wall-clock time only).
  int32_t num_threads = 0;

  /// Number of contiguous data shards index construction partitions the
  /// object catalog into (consumed by ShardedIndex via
  /// SubsequenceMatcher::Build; parallel loop sections ignore it). 0 or 1
  /// keeps one monolithic index. Like num_threads, the knob never changes
  /// answers: the sharded index merges per-shard results in shard order
  /// and rolls stats up exactly.
  int32_t num_shards = 0;

  /// Number of coarse routing cells index construction clusters the
  /// object catalog into (consumed by RoutedIndex via
  /// SubsequenceMatcher::Build; parallel loop sections ignore it). 0 or
  /// 1 keeps one monolithic index. Unlike num_shards' contiguous split,
  /// cells partition by *distance* to k-center pivots, and queries are
  /// routed only to cells whose covering radius can contain an epsilon
  /// match. Matches and verification stats stay element-wise identical
  /// at any setting; filter distance_computations deliberately SHRINK
  /// (skipped cells are not billed — that saving is the point; see
  /// QueryStats::cells_skipped). Requires a metric distance.
  int32_t routing_cells = 0;

  /// Worker budget for step-5 verification (candidate-region and chain
  /// verification in the frame layer), which is scheduled separately from
  /// the filter because its per-region costs are highly skewed. 0 (the
  /// default) inherits the num_threads resolution; 1 forces the
  /// sequential reference path. Like every exec knob it trades wall-clock
  /// only: matches, stats, and budget-exceeded errors are element-wise
  /// identical at any setting.
  int32_t num_verify_threads = 0;

  /// The effective thread budget (always >= 1).
  int32_t ResolvedThreads() const {
    return num_threads > 0 ? num_threads : ResolveHardwareConcurrency();
  }

  /// The effective step-5 verification thread budget (always >= 1):
  /// num_verify_threads if set, otherwise the num_threads resolution.
  int32_t ResolvedVerifyThreads() const {
    return num_verify_threads > 0 ? num_verify_threads : ResolvedThreads();
  }

  /// The effective shard count for a catalog of `num_objects` objects:
  /// at least 1, never more than the object count (empty shards are
  /// pointless), num_shards otherwise.
  int32_t ResolvedShards(int32_t num_objects) const {
    const int32_t floor = num_shards > 1 ? num_shards : 1;
    return num_objects > 1 ? std::min(floor, num_objects) : 1;
  }

  /// The effective routing-cell count for a catalog of `num_objects`
  /// objects — the same clamp as ResolvedShards (at least 1, never more
  /// than the object count).
  int32_t ResolvedCells(int32_t num_objects) const {
    const int32_t floor = routing_cells > 1 ? routing_cells : 1;
    return num_objects > 1 ? std::min(floor, num_objects) : 1;
  }
};

/// A context pinned to the calling thread.
inline ExecContext SequentialExec() { return ExecContext{1}; }

}  // namespace subseq

#endif  // SUBSEQ_EXEC_EXEC_CONTEXT_H_
