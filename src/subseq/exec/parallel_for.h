// ParallelFor: the library's one parallel-loop primitive.
//
// Determinism contract: the partition of [0, n) depends only on n, the
// resolved thread budget and the grain — never on scheduling. Chunks are
// contiguous and ascending (chunk c covers a range strictly before chunk
// c+1), so callers that write results into index-addressed slots, or
// collect per-chunk outputs and concatenate them in chunk order,
// reproduce the sequential order exactly at any thread count.

#ifndef SUBSEQ_EXEC_PARALLEL_FOR_H_
#define SUBSEQ_EXEC_PARALLEL_FOR_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <utility>

#include "subseq/exec/exec_context.h"
#include "subseq/exec/thread_pool.h"

namespace subseq {

/// Runs body(begin, end, chunk) over a disjoint, exhaustive partition of
/// [0, n) and returns the number of chunks used (0 when n <= 0). Chunk 0
/// executes on the calling thread; the rest go to the shared pool. At
/// most min(exec.ResolvedThreads(), ceil(n / grain)) chunks are created,
/// so short loops over cheap work run inline rather than paying pool
/// latency (individual chunks may still be somewhat smaller than `grain`
/// — the range is split evenly over the chunk count). Nested calls —
/// issued from
/// inside a pool worker — run inline as a single chunk, so recursive
/// builds cannot deadlock the pool. `body` must not throw and must only
/// touch disjoint state across chunks (or publish through atomics, e.g.
/// a StatsSink).
template <typename Body>
int32_t ParallelFor(const ExecContext& exec, int64_t n, const Body& body,
                    int64_t grain = 1) {
  if (n <= 0) return 0;
  if (grain < 1) grain = 1;
  ThreadPool& pool = ThreadPool::Shared();
  // Never split finer than can actually run concurrently (pool workers
  // plus the calling thread): extra chunks would only add queue traffic.
  // Chunk count never changes results — merges are index-ordered.
  const int64_t budget =
      std::min({static_cast<int64_t>(exec.ResolvedThreads()),
                (n + grain - 1) / grain,
                static_cast<int64_t>(pool.num_threads()) + 1});
  if (budget <= 1 || pool.InWorker()) {
    body(int64_t{0}, n, int32_t{0});
    return 1;
  }

  const int32_t chunks = static_cast<int32_t>(budget);
  const int64_t base = n / chunks;
  const int64_t extra = n % chunks;
  const auto bounds = [base, extra](int32_t c) {
    const int64_t begin =
        static_cast<int64_t>(c) * base + std::min<int64_t>(c, extra);
    const int64_t end = begin + base + (c < extra ? 1 : 0);
    return std::pair<int64_t, int64_t>{begin, end};
  };

  std::mutex mu;
  std::condition_variable cv;
  int32_t pending = chunks - 1;
  for (int32_t c = 1; c < chunks; ++c) {
    const auto [begin, end] = bounds(c);
    pool.Submit([&body, &mu, &cv, &pending, begin, end, c] {
      body(begin, end, c);
      std::lock_guard<std::mutex> lock(mu);
      if (--pending == 0) cv.notify_one();
    });
  }
  const auto [begin0, end0] = bounds(0);
  body(begin0, end0, int32_t{0});
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&pending] { return pending == 0; });
  return chunks;
}

}  // namespace subseq

#endif  // SUBSEQ_EXEC_PARALLEL_FOR_H_
