// ParallelFor / ParallelForDynamic: the library's parallel-loop
// primitives.
//
// Determinism contract (both variants): the partition of [0, n) depends
// only on n, the resolved thread budget and the grain — never on
// scheduling. Chunks are contiguous and ascending (chunk c covers a
// range strictly before chunk c+1), so callers that write results into
// index-addressed slots, or collect per-chunk outputs and concatenate
// them in chunk order, reproduce the sequential order exactly at any
// thread count. The variants differ only in how chunks are *assigned*
// to threads: ParallelFor splits [0, n) evenly into at most one chunk
// per thread (cheapest when per-index costs are uniform), while
// ParallelForDynamic cuts grain-sized chunks that idle threads claim
// from a shared cursor (work stealing — the right shape when per-index
// costs are skewed, e.g. step-5 candidate regions).

#ifndef SUBSEQ_EXEC_PARALLEL_FOR_H_
#define SUBSEQ_EXEC_PARALLEL_FOR_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <utility>

#include "subseq/exec/exec_context.h"
#include "subseq/exec/thread_pool.h"

namespace subseq {

/// Runs body(begin, end, chunk) over a disjoint, exhaustive partition of
/// [0, n) and returns the number of chunks used (0 when n <= 0). Chunk 0
/// executes on the calling thread; the rest go to the shared pool. At
/// most min(exec.ResolvedThreads(), ceil(n / grain)) chunks are created,
/// so short loops over cheap work run inline rather than paying pool
/// latency (individual chunks may still be somewhat smaller than `grain`
/// — the range is split evenly over the chunk count). Nested calls —
/// issued from
/// inside a pool worker — run inline as a single chunk, so recursive
/// builds cannot deadlock the pool. `body` must not throw and must only
/// touch disjoint state across chunks (or publish through atomics, e.g.
/// a StatsSink).
template <typename Body>
int32_t ParallelFor(const ExecContext& exec, int64_t n, const Body& body,
                    int64_t grain = 1) {
  if (n <= 0) return 0;
  if (grain < 1) grain = 1;
  ThreadPool& pool = ThreadPool::Shared();
  // Never split finer than can actually run concurrently (pool workers
  // plus the calling thread): extra chunks would only add queue traffic.
  // Chunk count never changes results — merges are index-ordered.
  const int64_t budget =
      std::min({static_cast<int64_t>(exec.ResolvedThreads()),
                (n + grain - 1) / grain,
                static_cast<int64_t>(pool.num_threads()) + 1});
  if (budget <= 1 || pool.InWorker()) {
    body(int64_t{0}, n, int32_t{0});
    return 1;
  }

  const int32_t chunks = static_cast<int32_t>(budget);
  const int64_t base = n / chunks;
  const int64_t extra = n % chunks;
  const auto bounds = [base, extra](int32_t c) {
    const int64_t begin =
        static_cast<int64_t>(c) * base + std::min<int64_t>(c, extra);
    const int64_t end = begin + base + (c < extra ? 1 : 0);
    return std::pair<int64_t, int64_t>{begin, end};
  };

  std::mutex mu;
  std::condition_variable cv;
  int32_t pending = chunks - 1;
  for (int32_t c = 1; c < chunks; ++c) {
    const auto [begin, end] = bounds(c);
    pool.Submit([&body, &mu, &cv, &pending, begin, end, c] {
      body(begin, end, c);
      std::lock_guard<std::mutex> lock(mu);
      if (--pending == 0) cv.notify_one();
    });
  }
  const auto [begin0, end0] = bounds(0);
  body(begin0, end0, int32_t{0});
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&pending] { return pending == 0; });
  return chunks;
}

/// Chunked work-stealing variant for skewed per-index costs. Runs
/// body(begin, end, chunk) over the fixed partition into grain-sized
/// chunks (chunk c covers [c * grain, min(n, (c + 1) * grain)) — the
/// boundaries depend only on n and grain, never on scheduling) and
/// returns the chunk count, 0 when n <= 0. Which *thread* runs a chunk
/// is dynamic: the calling thread plus up to ResolvedThreads() - 1 pool
/// helpers claim the next unclaimed chunk from a shared atomic cursor,
/// so one expensive chunk delays only its claimant instead of stalling a
/// statically assigned tail. Results stay deterministic because callers
/// address output by chunk or element index, exactly as with
/// ParallelFor.
///
/// Unlike ParallelFor, a call from inside a pool worker still fans out:
/// helpers are enqueued and the calling worker participates in the claim
/// loop, so a saturated pool degrades to inline execution on the caller
/// rather than deadlocking. (The final wait can only block on chunks
/// that some thread is actively executing.) This is what lets the
/// serving layer's detached step-5 tasks spread one query's
/// verification across the pool. `body` must not throw and must only
/// touch disjoint state across chunks (or publish through atomics).
template <typename Body>
int32_t ParallelForDynamic(const ExecContext& exec, int64_t n,
                           const Body& body, int64_t grain = 1) {
  if (n <= 0) return 0;
  if (grain < 1) grain = 1;
  // Keep chunk indices representable as int32 (grain rounds up for
  // astronomically large n).
  constexpr int64_t kMaxChunks = std::numeric_limits<int32_t>::max();
  if ((n + grain - 1) / grain > kMaxChunks) {
    grain = (n + kMaxChunks - 1) / kMaxChunks;
  }
  const int64_t chunks = (n + grain - 1) / grain;

  ThreadPool& pool = ThreadPool::Shared();
  const int64_t helpers =
      std::min({static_cast<int64_t>(exec.ResolvedThreads()) - 1, chunks - 1,
                static_cast<int64_t>(pool.num_threads())});

  // Helpers outlive the call when the queue is backed up, so everything
  // they may touch after the caller returns lives in a shared control
  // block. `body` itself stays on the caller's stack: a helper only
  // dereferences it after successfully claiming a chunk, which can only
  // happen while the caller is still waiting for that chunk.
  struct State {
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> completed{0};
    int64_t chunks = 0;
    int64_t n = 0;
    int64_t grain = 0;
    const void* body = nullptr;
    void (*invoke)(const void*, int64_t, int64_t, int32_t) = nullptr;
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>();
  state->chunks = chunks;
  state->n = n;
  state->grain = grain;
  state->body = &body;
  state->invoke = [](const void* b, int64_t begin, int64_t end, int32_t c) {
    (*static_cast<const Body*>(b))(begin, end, c);
  };

  const auto run = [](const std::shared_ptr<State>& s) {
    for (;;) {
      const int64_t c = s->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= s->chunks) return;
      const int64_t begin = c * s->grain;
      const int64_t end = std::min(s->n, begin + s->grain);
      s->invoke(s->body, begin, end, static_cast<int32_t>(c));
      // acq_rel + the owner's acquire load below publish every chunk's
      // writes to the owner once completed == chunks.
      if (s->completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          s->chunks) {
        std::lock_guard<std::mutex> lock(s->mu);
        s->cv.notify_all();
      }
    }
  };

  for (int64_t h = 0; h < helpers; ++h) {
    pool.Submit([state, run] { run(state); });
  }
  run(state);
  if (helpers > 0) {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&state] {
      return state->completed.load(std::memory_order_acquire) ==
             state->chunks;
    });
  }
  return static_cast<int32_t>(chunks);
}

}  // namespace subseq

#endif  // SUBSEQ_EXEC_PARALLEL_FOR_H_
