// ResidencyGauge: peak-alive accounting for out-of-core builds.
//
// BuildToSnapshot charges the gauge as catalog windows become resident
// (staged batches, shard under construction) and credits it when a
// serialized shard is freed. Tests assert peak() stays O(batch + shard)
// rather than O(catalog) — the instrumentation is the proof that the
// streamed build actually streams. Counters are atomic so a parallel
// inner build may charge concurrently; peak() is exact because updates
// go through a CAS loop.

#ifndef SUBSEQ_EXEC_PEAK_GAUGE_H_
#define SUBSEQ_EXEC_PEAK_GAUGE_H_

#include <atomic>
#include <cstdint>

namespace subseq {

class ResidencyGauge {
 public:
  /// Marks `n` more units (catalog windows) resident.
  void Acquire(int64_t n) {
    const int64_t now = current_.fetch_add(n, std::memory_order_relaxed) + n;
    int64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
  }

  /// Marks `n` units freed.
  void Release(int64_t n) {
    current_.fetch_sub(n, std::memory_order_relaxed);
  }

  int64_t current() const { return current_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }

  void Reset() {
    current_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
};

}  // namespace subseq

#endif  // SUBSEQ_EXEC_PEAK_GAUGE_H_
