// ThreadPool: a fixed-size worker pool behind every parallel section in
// the library.
//
// Workers are started once and block on a condition variable between
// tasks, so the per-batch cost of a parallel section is a handful of
// enqueue/notify operations — cheap against the metric-space distance
// computations (dynamic-programming alignments over windows) the pool
// exists to spread out. One process-wide pool sized to the hardware is
// shared by all indexes and matchers (Shared()); ExecContext::num_threads
// caps how many *chunks* a section splits into, not how many workers
// exist, which keeps results independent of the machine's core count.

#ifndef SUBSEQ_EXEC_THREAD_POOL_H_
#define SUBSEQ_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace subseq {

/// A fixed set of worker threads draining a FIFO task queue.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int32_t num_threads() const {
    return static_cast<int32_t>(workers_.size());
  }

  /// Enqueues a task for execution on some worker. Tasks must not throw
  /// (the library is exception-free); a task that escapes with an
  /// exception terminates the process.
  void Submit(std::function<void()> task);

  /// Fire-and-forget with a completion hook: enqueues `task` and, after it
  /// returns, invokes `on_complete` on the same worker. Unlike ParallelFor
  /// the caller never blocks — this is the serving layer's dispatch path:
  /// the MatchServer admission loop hands per-query tail work to the pool
  /// and keeps admitting, and `on_complete` fulfills the query's future
  /// and releases the server's in-flight accounting. `on_complete` may be
  /// empty. Both callables must not throw.
  void SubmitDetached(std::function<void()> task,
                      std::function<void()> on_complete);

  /// True when the calling thread is one of this pool's workers. Parallel
  /// sections check this and run nested loops inline instead of
  /// deadlocking on their own pool.
  bool InWorker() const;

  /// The process-wide pool, sized to the hardware, created on first use
  /// and kept alive for the life of the process.
  static ThreadPool& Shared();

  /// std::thread::hardware_concurrency() with a floor of 1.
  static int32_t HardwareConcurrency();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace subseq

#endif  // SUBSEQ_EXEC_THREAD_POOL_H_
