// SegmentResultCache — the serving layer's cross-round result cache.
//
// PR 2's coalescer shares filter work *within* one admission round:
// bit-identical segments contributed by concurrently-pending queries are
// issued to the index once. Under a serving workload the same segments
// also repeat heavily *across* rounds — hot queries arrive all day, not
// all at once — and that reuse is invisible to a per-round dedup. The
// cache closes the gap: it carries, per unique (IndexKind, epsilon,
// segment bytes) key, the segment's filter hit list in canonical
// ascending-window order, the per-hit exact segment-to-window distances
// (the pass step 5 orders verification by, previously recomputed per
// owner), and the segment's stand-alone index cost (what billing
// charges). A warm lookup replaces both the index traversal and the
// per-hit distance pass.
//
// Correctness rests on two facts. First, every key carries the EPOCH of
// the index that produced the entry: within one epoch the indexes are
// immutable and exact, so the hit set, the per-hit distances, and the
// stand-alone distance-computation count of a (epoch, kind, epsilon,
// segment bytes) key are pure functions of that key, and a warm answer
// is bit-identical (hits, distances, AND billed stats) to the cold one.
// Live ingest makes the epoch part of the key load-bearing: an epoch
// swap changes both the hit sets (appended/retired windows) and the
// billing splits (delta scan vs merged base), so entries of a dead
// epoch can never be served — they simply miss, and SweepDeadEpochs
// lazily evicts them a bounded slice per admission round. Second,
// billing reads the *stored* stand-alone cost, so a query answered warm
// reports exactly the MatchQueryStats the direct library call would —
// the cache, like coalescing, changes executed work only (surfaced via
// ServeStats::cache_* counters and cache_shared_computations).
//
// Threading: externally synchronized. The cache is owned by MatchServer
// and touched only from its admission loop (the service thread), which
// is also what keeps Lookup's returned pointers valid for the duration
// of one coalesced filter call (Insert may evict; callers insert only
// after they are done reading warm entries).

#ifndef SUBSEQ_SERVE_SEGMENT_CACHE_H_
#define SUBSEQ_SERVE_SEGMENT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "subseq/core/types.h"
#include "subseq/frame/matcher.h"

namespace subseq {

/// Word-at-a-time hash over raw segment bytes — the hash behind both the
/// coalescer's in-round dedup key and the cache key. Processes eight
/// bytes per step (a splitmix64-style avalanche per word folded
/// FNV-style) instead of the previous byte-at-a-time FNV-1a, whose per
/// -byte multiply dominated the dedup pass on long segments. Equality
/// stays memcmp over the bytes; the hash only has to be fast and well
/// mixed.
inline uint64_t HashSegmentBytes(const char* data, size_t bytes) {
  const auto mix = [](uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
  };
  uint64_t h = 1469598103934665603ull ^ mix(static_cast<uint64_t>(bytes));
  size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    uint64_t word;
    std::memcpy(&word, data + i, 8);
    h = (h ^ mix(word)) * 1099511628211ull;
  }
  if (i < bytes) {
    uint64_t word = 0;
    std::memcpy(&word, data + i, bytes - i);  // zero-padded tail
    h = (h ^ mix(word)) * 1099511628211ull;
  }
  return h;
}

/// Epsilon-aware LRU cache of per-segment filter results. Capacity is
/// byte-accounted (key bytes + hit/distance payload + a fixed per-entry
/// overhead); the least recently used entries are evicted when an
/// insertion overflows it. Not thread-safe (see file comment).
class SegmentResultCache {
 public:
  /// One cached unique segment's filter outcome at (kind, epsilon).
  struct Entry {
    /// Hit windows in canonical ascending-ObjectId order.
    std::vector<ObjectId> windows;
    /// distances[i] — the exact segment-to-window distance of windows[i]
    /// (the fill MergeSegmentHits would otherwise recompute per owner).
    std::vector<double> distances;
    /// The stand-alone index cost of this segment (the per-query split of
    /// the call that produced the entry) — what every warm owner is
    /// billed, keeping reported stats identical to the uncached path.
    int64_t filter_computations = 0;
  };

  /// Monotonic counters; snapshot via counters().
  struct Counters {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t entries = 0;      // resident now
    int64_t bytes_used = 0;   // resident now
  };

  explicit SegmentResultCache(size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}
  SegmentResultCache(const SegmentResultCache&) = delete;
  SegmentResultCache& operator=(const SegmentResultCache&) = delete;

  /// Returns the entry for (epoch, kind, epsilon, bytes) and marks it
  /// most recently used, or nullptr (counting a miss). An entry stored
  /// under any other epoch never matches — the epoch in the key is what
  /// makes a cross-epoch stale hit structurally impossible. The pointer
  /// stays valid until the next Insert — Lookup never evicts.
  const Entry* Lookup(uint64_t epoch, IndexKind kind, double epsilon,
                      const char* data, size_t bytes);

  /// Stores an entry under (epoch, kind, epsilon, bytes), evicting LRU
  /// entries until the capacity holds. An entry larger than the whole
  /// capacity is not stored at all (it could never be re-used before
  /// eviction). Inserting an existing key refreshes the entry.
  void Insert(uint64_t epoch, IndexKind kind, double epsilon,
              const char* data, size_t bytes, Entry entry);

  /// Lazily reclaims entries of dead epochs: scans up to `max_scan`
  /// nodes from the LRU tail and evicts every one whose epoch differs
  /// from `live_epoch` (counted in Counters::evictions). Bounded so the
  /// admission loop can amortize reclamation across rounds instead of
  /// stalling on a swap; dead entries that escape a sweep still can
  /// never be served (they miss by key) and age out of the LRU tail
  /// anyway. Returns the number evicted.
  size_t SweepDeadEpochs(uint64_t live_epoch, size_t max_scan);

  Counters counters() const { return counters_; }
  size_t capacity_bytes() const { return capacity_bytes_; }

 private:
  /// Nodes own their key bytes; the map's keys are views into them
  /// (std::list nodes are address-stable, and splice moves no storage).
  struct Node {
    uint64_t epoch;
    IndexKind kind;
    uint64_t epsilon_bits;
    std::string bytes;
    Entry entry;
    size_t charge = 0;
  };

  struct KeyView {
    uint64_t epoch;
    IndexKind kind;
    uint64_t epsilon_bits;
    std::string_view bytes;

    friend bool operator==(const KeyView& a, const KeyView& b) {
      return a.epoch == b.epoch && a.kind == b.kind &&
             a.epsilon_bits == b.epsilon_bits && a.bytes == b.bytes;
    }
  };

  struct KeyViewHash {
    size_t operator()(const KeyView& key) const {
      uint64_t h = HashSegmentBytes(key.bytes.data(), key.bytes.size());
      h ^= key.epsilon_bits + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      h ^= static_cast<uint64_t>(key.kind) * 0x2545f4914f6cdd1dull;
      h ^= (key.epoch + 0x9e3779b97f4a7c15ull) * 0xff51afd7ed558ccdull;
      return static_cast<size_t>(h);
    }
  };

  size_t capacity_bytes_;
  std::list<Node> lru_;  // front = most recently used
  std::unordered_map<KeyView, std::list<Node>::iterator, KeyViewHash> map_;
  Counters counters_;
};

}  // namespace subseq

#endif  // SUBSEQ_SERVE_SEGMENT_CACHE_H_
