// RequestQueue — the MatchServer's admission queue.
//
// A minimal multi-producer / single-consumer blocking queue. Producers
// (client threads inside MatchServer::Submit) push one item and return;
// the single consumer (the server's admission loop) drains *everything*
// pending in one wait, which is what turns concurrent arrivals into
// coalescable batches: while one batch is being filtered, new arrivals
// pile up here and the next drain admits them together.

#ifndef SUBSEQ_SERVE_REQUEST_QUEUE_H_
#define SUBSEQ_SERVE_REQUEST_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace subseq {

/// Unbounded MPSC blocking queue. `Item` must be movable.
template <typename Item>
class RequestQueue {
 public:
  RequestQueue() = default;
  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Enqueues one item. Returns false (dropping the item) if the queue
  /// was already closed — the caller failed the shutdown race and must
  /// complete the item itself.
  bool Push(Item item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until at least one item is pending or the queue is closed,
  /// then moves every pending item (up to `max_items`, 0 = no cap) into
  /// `out` (cleared first). Returns false only when the queue is closed
  /// AND fully drained — the consumer's loop-exit condition.
  bool DrainWait(std::vector<Item>* out, size_t max_items = 0) {
    out->clear();
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    if (max_items == 0 || items_.size() <= max_items) {
      out->swap(items_);
    } else {
      out->assign(std::make_move_iterator(items_.begin()),
                  std::make_move_iterator(items_.begin() +
                                          static_cast<ptrdiff_t>(max_items)));
      items_.erase(items_.begin(),
                   items_.begin() + static_cast<ptrdiff_t>(max_items));
    }
    return true;
  }

  /// Closes the queue: subsequent Push calls fail; the consumer keeps
  /// draining until empty, then DrainWait returns false.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Pending item count (racy by nature; diagnostics only).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Item> items_;
  bool closed_ = false;
};

}  // namespace subseq

#endif  // SUBSEQ_SERVE_REQUEST_QUEUE_H_
