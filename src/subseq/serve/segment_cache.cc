#include "subseq/serve/segment_cache.h"

#include <bit>
#include <utility>

namespace subseq {

namespace {

// Fixed per-entry bookkeeping estimate (list node links, map slot, the
// vectors' headers). The exact heap shape is allocator-dependent; a
// fixed constant keeps the accounting deterministic.
constexpr size_t kEntryOverheadBytes = 96;

size_t EntryCharge(size_t key_bytes, const SegmentResultCache::Entry& entry) {
  return key_bytes + entry.windows.size() * sizeof(ObjectId) +
         entry.distances.size() * sizeof(double) + kEntryOverheadBytes;
}

// The epsilon component of the key. Keys compare by bit pattern, but
// -0.0 and +0.0 compare equal everywhere else (including PlanCoalesce's
// grouping and every index's <= epsilon test), so they must share one
// keyspace — otherwise a -0.0 round would populate entries a +0.0 round
// could never hit.
uint64_t EpsilonBits(double epsilon) {
  return std::bit_cast<uint64_t>(epsilon == 0.0 ? 0.0 : epsilon);
}

}  // namespace

const SegmentResultCache::Entry* SegmentResultCache::Lookup(
    uint64_t epoch, IndexKind kind, double epsilon, const char* data,
    size_t bytes) {
  const KeyView key{epoch, kind, EpsilonBits(epsilon),
                    std::string_view(data, bytes)};
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  ++counters_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // most recently used
  return &it->second->entry;
}

void SegmentResultCache::Insert(uint64_t epoch, IndexKind kind,
                                double epsilon, const char* data,
                                size_t bytes, Entry entry) {
  const size_t charge = EntryCharge(bytes, entry);
  if (charge > capacity_bytes_) return;  // could never survive eviction
  const uint64_t epsilon_bits = EpsilonBits(epsilon);

  const auto it = map_.find(KeyView{epoch, kind, epsilon_bits,
                                    std::string_view(data, bytes)});
  if (it != map_.end()) {
    // Refresh in place: swap the payload, fix the byte accounting.
    Node& node = *it->second;
    counters_.bytes_used +=
        static_cast<int64_t>(charge) - static_cast<int64_t>(node.charge);
    node.entry = std::move(entry);
    node.charge = charge;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Node{epoch, kind, epsilon_bits,
                         std::string(data, bytes), std::move(entry), charge});
    map_.emplace(KeyView{lru_.front().epoch, lru_.front().kind,
                         lru_.front().epsilon_bits,
                         std::string_view(lru_.front().bytes)},
                 lru_.begin());
    counters_.bytes_used += static_cast<int64_t>(charge);
    ++counters_.entries;
  }

  while (counters_.bytes_used > static_cast<int64_t>(capacity_bytes_)) {
    const Node& victim = lru_.back();
    map_.erase(KeyView{victim.epoch, victim.kind, victim.epsilon_bits,
                       std::string_view(victim.bytes)});
    counters_.bytes_used -= static_cast<int64_t>(victim.charge);
    --counters_.entries;
    ++counters_.evictions;
    lru_.pop_back();
  }
}

size_t SegmentResultCache::SweepDeadEpochs(uint64_t live_epoch,
                                           size_t max_scan) {
  size_t scanned = 0;
  size_t evicted = 0;
  auto it = lru_.end();
  while (it != lru_.begin() && scanned < max_scan) {
    --it;
    ++scanned;
    if (it->epoch == live_epoch) continue;
    map_.erase(KeyView{it->epoch, it->kind, it->epsilon_bits,
                       std::string_view(it->bytes)});
    counters_.bytes_used -= static_cast<int64_t>(it->charge);
    --counters_.entries;
    ++counters_.evictions;
    ++evicted;
    // erase returns the node after the victim; the loop's --it then
    // steps onto the (older) node before it, so no node is skipped.
    it = lru_.erase(it);
  }
  return evicted;
}

}  // namespace subseq
