#include "subseq/serve/coalescer.h"

#include <algorithm>
#include <cstring>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "subseq/core/check.h"
#include "subseq/exec/stats_sink.h"

namespace subseq {

namespace {

// Bitwise identity of a segment's elements — the cross-query sharing
// key. Bit-equal segments define pointwise-equal query distance
// functions, so one index call answers all of them; bitwise comparison
// is conservative (a false negative only costs a missed share, never a
// wrong answer). Element types are trivially copyable and padding-free
// (char, double, Point2d = {double, double}), so memcmp over the raw
// bytes is exact.
struct SegmentKey {
  const char* data = nullptr;
  size_t bytes = 0;

  bool operator==(const SegmentKey& other) const {
    return bytes == other.bytes &&
           std::memcmp(data, other.data, bytes) == 0;
  }
};

struct SegmentKeyHash {
  size_t operator()(const SegmentKey& key) const {
    // Word-at-a-time mix shared with the cross-round cache key
    // (serve/segment_cache.h); memcmp above remains the equality.
    return static_cast<size_t>(HashSegmentBytes(key.data, key.bytes));
  }
};

}  // namespace

std::vector<CoalesceGroup> PlanCoalesce(std::span<const CoalesceKey> keys) {
  std::vector<CoalesceGroup> groups;
  // Linear probe over open groups: batches are small (an admission round)
  // and kinds x epsilons few, so a map would be overkill.
  // Epsilons compare with exact double == — admission (ValidateMatchRequest)
  // rejects non-finite epsilons, so a NaN can never reach this comparison
  // and silently fall into a degenerate one-member group.
  for (size_t i = 0; i < keys.size(); ++i) {
    const CoalesceKey& key = keys[i];
    if (key.coalescable) {
      CoalesceGroup* open = nullptr;
      for (CoalesceGroup& g : groups) {
        if (g.coalescable && g.kind == key.kind && g.epsilon == key.epsilon) {
          open = &g;
          break;
        }
      }
      if (open == nullptr) {
        groups.push_back(CoalesceGroup{key.kind, key.epsilon, true, {}});
        open = &groups.back();
      }
      open->members.push_back(i);
    } else {
      groups.push_back(CoalesceGroup{key.kind, key.epsilon, false, {i}});
    }
  }
  return groups;
}

template <typename T>
CoalescedFilter CoalescedFilterSegments(
    const SubsequenceMatcher<T>& matcher,
    std::span<const std::span<const T>> queries, double epsilon,
    SegmentResultCache* cache) {
  static_assert(std::is_trivially_copyable_v<T>,
                "segment dedup compares raw element bytes");
  const size_t num_members = queries.size();
  CoalescedFilter out;
  out.hits.resize(num_members);
  out.stats.resize(num_members);

  // Step 3 per member, concatenated into one flat batch. offsets[m] is
  // the first flat slot owned by member m; slot ownership therefore
  // depends only on per-member segment counts, never on scheduling.
  std::vector<SegmentQueryBatch> batches;
  batches.reserve(num_members);
  std::vector<size_t> offsets(num_members + 1, 0);
  for (size_t m = 0; m < num_members; ++m) {
    batches.push_back(
        matcher.MakeSegmentQueries(queries[m], &out.stats[m]));
    offsets[m + 1] = offsets[m] + batches[m].queries.size();
  }
  const size_t total_segments = offsets[num_members];
  out.segments_total = static_cast<int64_t>(total_segments);

  // Cross-query sharing: bit-identical segments (overlapping cuts, hot
  // repeated queries — the serving regime) are issued to the index once.
  // unique_slot[f] maps flat slot f to its representative's position in
  // the unique batch; first appearance (ascending flat order) defines
  // that position, so the unique batch is deterministic.
  std::vector<size_t> unique_slot(total_segments);
  std::vector<QueryDistanceFn> unique_queries;
  std::vector<std::span<const T>> unique_views;
  std::unordered_map<SegmentKey, size_t, SegmentKeyHash> seen;
  seen.reserve(total_segments);
  for (size_t m = 0, f = 0; m < num_members; ++m) {
    for (size_t j = 0; j < batches[m].segments.size(); ++j, ++f) {
      const Interval& seg = batches[m].segments[j];
      const std::span<const T> view = queries[m].subspan(
          static_cast<size_t>(seg.begin), static_cast<size_t>(seg.length()));
      const SegmentKey key{reinterpret_cast<const char*>(view.data()),
                           view.size_bytes()};
      const auto [it, inserted] = seen.emplace(key, unique_queries.size());
      if (inserted) {
        unique_queries.push_back(std::move(batches[m].queries[j]));
        unique_views.push_back(view);
      }
      unique_slot[f] = it->second;
    }
  }
  const size_t num_unique = unique_queries.size();
  out.segments_unique = static_cast<int64_t>(num_unique);

  // Cross-round sharing: warm unique segments are answered from the
  // cache (hit list, per-hit distances, and stand-alone cost all stored
  // at their first appearance in any earlier round); only the cold
  // remainder goes to the index. Lookup never evicts, so warm entry
  // pointers stay valid until the Inserts at the end of this call.
  const IndexKind kind = matcher.options().index_kind;
  const uint64_t epoch = matcher.epoch();
  std::vector<const SegmentResultCache::Entry*> warm(num_unique, nullptr);
  std::vector<size_t> cold;
  cold.reserve(num_unique);
  for (size_t u = 0; u < num_unique; ++u) {
    if (cache != nullptr) {
      warm[u] = cache->Lookup(
          epoch, kind, epsilon,
          reinterpret_cast<const char*>(unique_views[u].data()),
          unique_views[u].size_bytes());
    }
    if (warm[u] == nullptr) cold.push_back(u);
  }
  if (cache != nullptr) {
    out.segments_cache_hits =
        static_cast<int64_t>(num_unique - cold.size());
    out.segments_cache_misses = static_cast<int64_t>(cold.size());
  }

  // Step 4 as ONE call over the cold unique segments. The shared sink
  // totals the work actually executed; per_query splits it back out per
  // cold segment so every member — including ones whose segments were
  // answered by an in-round representative or the cache — is billed
  // exactly what its stand-alone filter would have cost.
  StatsSink sink;
  std::vector<QueryDistanceFn> cold_queries;
  cold_queries.reserve(cold.size());
  for (const size_t u : cold) {
    cold_queries.push_back(std::move(unique_queries[u]));
  }
  std::vector<QueryStats> per_query(cold.size());
  std::vector<std::vector<ObjectId>> batched;
  if (!cold.empty()) {
    // The matcher's own step-4 entry point: base index + delta scan +
    // tombstone mask, so coalesced serving sees exactly the hit sets and
    // per-query billing a stand-alone FilterSegments would produce at
    // this epoch.
    batched = matcher.BatchFilterWindows(cold_queries, epsilon,
                                         matcher.options().exec, &sink,
                                         per_query.data());
  }
  out.total_filter_computations = sink.distance_computations();

  // The exact per-hit distance pass, ONCE per cold unique segment in
  // canonical ascending-window order (warm entries already carry
  // theirs) — previously every owner of a shared segment re-ran this
  // identical fill inside its own MergeSegmentHits. One flat call
  // covers every cold (segment, hit) pair in a single parallel section.
  std::vector<std::span<const T>> cold_views(cold.size());
  std::vector<std::span<const ObjectId>> cold_ids(cold.size());
  for (size_t c = 0; c < cold.size(); ++c) {
    std::sort(batched[c].begin(), batched[c].end());
    cold_views[c] = unique_views[cold[c]];
    cold_ids[c] = batched[c];
  }
  std::vector<std::vector<double>> cold_distances =
      matcher.SegmentHitDistances(cold_views, cold_ids,
                                  matcher.options().exec);

  // Per-unique result views and billing source, warm or cold.
  std::vector<std::span<const ObjectId>> u_ids(num_unique);
  std::vector<std::span<const double>> u_distances(num_unique);
  std::vector<int64_t> u_cost(num_unique, 0);
  for (size_t c = 0; c < cold.size(); ++c) {
    u_ids[cold[c]] = batched[c];
    u_distances[cold[c]] = cold_distances[c];
    u_cost[cold[c]] = per_query[c].distance_computations;
  }
  for (size_t u = 0; u < num_unique; ++u) {
    if (warm[u] == nullptr) continue;
    u_ids[u] = warm[u]->windows;
    u_distances[u] = warm[u]->distances;
    u_cost[u] = warm[u]->filter_computations;
    // The cache's contribution to the billed/executed gap: with the
    // cache off this round would have executed this segment once.
    sink.AddSharedComputations(warm[u]->filter_computations);
  }
  out.cache_shared_computations = sink.shared_computations();

  // Demux: member m owns flat slots [offsets[m], offsets[m+1]), each
  // redirected through its unique representative. Views into the shared
  // per-unique arrays — a segment answered once fans out to every owner
  // without copying the id or distance lists, and the precomputed merge
  // assembles hits without re-running any distance.
  std::vector<std::span<const ObjectId>> member_results;
  std::vector<std::span<const double>> member_distances;
  for (size_t m = 0; m < num_members; ++m) {
    const size_t count = batches[m].segments.size();
    member_results.assign(count, {});
    member_distances.assign(count, {});
    for (size_t j = 0; j < count; ++j) {
      const size_t u = unique_slot[offsets[m] + j];
      member_results[j] = u_ids[u];
      member_distances[j] = u_distances[u];
      out.stats[m].filter_computations += u_cost[u];
      out.billed_filter_computations += u_cost[u];
    }
    out.hits[m] = matcher.MergeSegmentHits(queries[m], batches[m].segments,
                                           member_results, member_distances,
                                           matcher.options().exec,
                                           &out.stats[m]);
  }

  // Publish the cold results for later rounds — strictly after the demux
  // above: Insert may evict warm entries whose spans were just consumed.
  if (cache != nullptr) {
    for (size_t c = 0; c < cold.size(); ++c) {
      const size_t u = cold[c];
      cache->Insert(epoch, kind, epsilon,
                    reinterpret_cast<const char*>(unique_views[u].data()),
                    unique_views[u].size_bytes(),
                    SegmentResultCache::Entry{
                        std::move(batched[c]), std::move(cold_distances[c]),
                        per_query[c].distance_computations});
    }
  }

  // Billing invariant: in-round sharing and the cache only ever remove
  // work; with nothing shared and nothing warm all three terms coincide.
  SUBSEQ_CHECK(out.billed_filter_computations >=
               out.total_filter_computations +
                   out.cache_shared_computations);
  return out;
}

template CoalescedFilter CoalescedFilterSegments<char>(
    const SubsequenceMatcher<char>&, std::span<const std::span<const char>>,
    double, SegmentResultCache*);
template CoalescedFilter CoalescedFilterSegments<double>(
    const SubsequenceMatcher<double>&,
    std::span<const std::span<const double>>, double, SegmentResultCache*);
template CoalescedFilter CoalescedFilterSegments<Point2d>(
    const SubsequenceMatcher<Point2d>&,
    std::span<const std::span<const Point2d>>, double, SegmentResultCache*);

}  // namespace subseq
