#include "subseq/serve/coalescer.h"

#include <cstring>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "subseq/core/check.h"
#include "subseq/exec/stats_sink.h"

namespace subseq {

namespace {

// Bitwise identity of a segment's elements — the cross-query sharing
// key. Bit-equal segments define pointwise-equal query distance
// functions, so one index call answers all of them; bitwise comparison
// is conservative (a false negative only costs a missed share, never a
// wrong answer). Element types are trivially copyable and padding-free
// (char, double, Point2d = {double, double}), so memcmp over the raw
// bytes is exact.
struct SegmentKey {
  const char* data = nullptr;
  size_t bytes = 0;

  bool operator==(const SegmentKey& other) const {
    return bytes == other.bytes &&
           std::memcmp(data, other.data, bytes) == 0;
  }
};

struct SegmentKeyHash {
  size_t operator()(const SegmentKey& key) const {
    // FNV-1a over the element bytes.
    uint64_t h = 1469598103934665603ull;
    for (size_t i = 0; i < key.bytes; ++i) {
      h ^= static_cast<uint64_t>(static_cast<unsigned char>(key.data[i]));
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace

std::vector<CoalesceGroup> PlanCoalesce(std::span<const CoalesceKey> keys) {
  std::vector<CoalesceGroup> groups;
  // Linear probe over open groups: batches are small (an admission round)
  // and kinds x epsilons few, so a map would be overkill.
  for (size_t i = 0; i < keys.size(); ++i) {
    const CoalesceKey& key = keys[i];
    if (key.coalescable) {
      CoalesceGroup* open = nullptr;
      for (CoalesceGroup& g : groups) {
        if (g.coalescable && g.kind == key.kind && g.epsilon == key.epsilon) {
          open = &g;
          break;
        }
      }
      if (open == nullptr) {
        groups.push_back(CoalesceGroup{key.kind, key.epsilon, true, {}});
        open = &groups.back();
      }
      open->members.push_back(i);
    } else {
      groups.push_back(CoalesceGroup{key.kind, key.epsilon, false, {i}});
    }
  }
  return groups;
}

template <typename T>
CoalescedFilter CoalescedFilterSegments(
    const SubsequenceMatcher<T>& matcher,
    std::span<const std::span<const T>> queries, double epsilon) {
  static_assert(std::is_trivially_copyable_v<T>,
                "segment dedup compares raw element bytes");
  const size_t num_members = queries.size();
  CoalescedFilter out;
  out.hits.resize(num_members);
  out.stats.resize(num_members);

  // Step 3 per member, concatenated into one flat batch. offsets[m] is
  // the first flat slot owned by member m; slot ownership therefore
  // depends only on per-member segment counts, never on scheduling.
  std::vector<SegmentQueryBatch> batches;
  batches.reserve(num_members);
  std::vector<size_t> offsets(num_members + 1, 0);
  for (size_t m = 0; m < num_members; ++m) {
    batches.push_back(
        matcher.MakeSegmentQueries(queries[m], &out.stats[m]));
    offsets[m + 1] = offsets[m] + batches[m].queries.size();
  }
  const size_t total_segments = offsets[num_members];
  out.segments_total = static_cast<int64_t>(total_segments);

  // Cross-query sharing: bit-identical segments (overlapping cuts, hot
  // repeated queries — the serving regime) are issued to the index once.
  // unique_slot[f] maps flat slot f to its representative's position in
  // the unique batch; first appearance (ascending flat order) defines
  // that position, so the unique batch is deterministic.
  std::vector<size_t> unique_slot(total_segments);
  std::vector<QueryDistanceFn> unique_queries;
  std::unordered_map<SegmentKey, size_t, SegmentKeyHash> seen;
  seen.reserve(total_segments);
  for (size_t m = 0, f = 0; m < num_members; ++m) {
    for (size_t j = 0; j < batches[m].segments.size(); ++j, ++f) {
      const Interval& seg = batches[m].segments[j];
      const std::span<const T> view = queries[m].subspan(
          static_cast<size_t>(seg.begin), static_cast<size_t>(seg.length()));
      const SegmentKey key{reinterpret_cast<const char*>(view.data()),
                           view.size_bytes()};
      const auto [it, inserted] = seen.emplace(key, unique_queries.size());
      if (inserted) {
        unique_queries.push_back(std::move(batches[m].queries[j]));
      }
      unique_slot[f] = it->second;
    }
  }
  out.segments_unique = static_cast<int64_t>(unique_queries.size());

  // Step 4 as ONE call over the unique segments. The shared sink totals
  // the work actually executed; per_query splits it back out per unique
  // segment so every member — including ones whose segments were
  // answered by a representative — is billed exactly what its
  // stand-alone filter would have cost.
  StatsSink sink;
  std::vector<QueryStats> per_query(unique_queries.size());
  const std::vector<std::vector<ObjectId>> batched =
      matcher.index().BatchRangeQuery(unique_queries, epsilon,
                                      matcher.options().exec, &sink,
                                      per_query.data());
  out.total_filter_computations = sink.distance_computations();

  // Demux: member m owns flat slots [offsets[m], offsets[m+1]), each
  // redirected through its unique representative. Views into the shared
  // result array — a segment answered once fans out to every owner
  // without copying the id lists.
  std::vector<std::span<const ObjectId>> member_results;
  for (size_t m = 0; m < num_members; ++m) {
    const size_t count = batches[m].segments.size();
    member_results.assign(count, {});
    for (size_t j = 0; j < count; ++j) {
      const size_t u = unique_slot[offsets[m] + j];
      member_results[j] = batched[u];
      out.stats[m].filter_computations += per_query[u].distance_computations;
      out.billed_filter_computations += per_query[u].distance_computations;
    }
    out.hits[m] = matcher.MergeSegmentHits(queries[m], batches[m].segments,
                                           member_results,
                                           matcher.options().exec,
                                           &out.stats[m]);
  }
  // Billing invariant: sharing only ever removes work, and with nothing
  // shared the billed and executed totals coincide.
  SUBSEQ_CHECK(out.billed_filter_computations >=
               out.total_filter_computations);
  return out;
}

template CoalescedFilter CoalescedFilterSegments<char>(
    const SubsequenceMatcher<char>&, std::span<const std::span<const char>>,
    double);
template CoalescedFilter CoalescedFilterSegments<double>(
    const SubsequenceMatcher<double>&,
    std::span<const std::span<const double>>, double);
template CoalescedFilter CoalescedFilterSegments<Point2d>(
    const SubsequenceMatcher<Point2d>&,
    std::span<const std::span<const Point2d>>, double);

}  // namespace subseq
