// MatchRequest / MatchResult — the serving subsystem's wire types.
//
// A MatchRequest is a self-contained, owned description of one matcher
// query (the library's RangeSearch / LongestMatch / NearestMatch calls,
// reified as data so they can sit in a queue). A MatchResult carries the
// outcome plus the same per-query accounting the library reports — the
// serving contract is that a request answered through the MatchServer is
// element-wise identical, matches and stats, to the same call made
// directly on a SubsequenceMatcher.

#ifndef SUBSEQ_SERVE_MATCH_REQUEST_H_
#define SUBSEQ_SERVE_MATCH_REQUEST_H_

#include <cmath>
#include <optional>
#include <vector>

#include "subseq/core/status.h"
#include "subseq/frame/matcher.h"

namespace subseq {

/// Which of the paper's three query types a request runs (Section 3.2).
enum class MatchQueryType {
  /// Type I — every similar pair at `epsilon` (RangeSearch).
  kRangeSearch,
  /// Type II — a longest similar pair at `epsilon` (LongestMatch).
  kLongestMatch,
  /// Type III — a closest pair, searching up to `epsilon_max` in steps of
  /// `epsilon_increment` (NearestMatch). Runs its own multi-round filter
  /// schedule, so it is dispatched whole rather than coalesced.
  kNearestMatch,
};

/// One queued matcher query. The request owns its query elements: unlike
/// the library's span-based calls, a submitted request outlives the
/// caller's stack frame, so the elements travel with it.
template <typename T>
struct MatchRequest {
  /// Query type; selects which of epsilon / epsilon_max / epsilon_increment
  /// apply.
  MatchQueryType type = MatchQueryType::kRangeSearch;
  /// The query sequence (owned).
  std::vector<T> query;
  /// Similarity threshold for kRangeSearch / kLongestMatch.
  double epsilon = 0.0;
  /// kNearestMatch: largest distance worth reporting.
  double epsilon_max = 0.0;
  /// kNearestMatch: resolution of the distance search (> 0).
  double epsilon_increment = 0.0;
  /// Index backend to answer through. Must be one of the kinds the server
  /// was started with; nullopt uses the server's first configured kind.
  std::optional<IndexKind> index_kind;
};

/// Field validation for one request, mirroring MatcherOptions::Validate():
/// explicit InvalidArgument messages at the serving front door instead of
/// deep-pipeline CHECKs or silent misbehavior. MatchServer::Submit runs
/// this before a request may enqueue, so the pipeline (and the coalescer,
/// whose epsilon grouping and cache key both assume finite epsilons — a
/// NaN never compares equal to itself and would neither coalesce nor ever
/// hit the cache) only ever sees well-formed requests. Only the fields
/// the request's type actually consumes are validated.
template <typename T>
Status ValidateMatchRequest(const MatchRequest<T>& request) {
  if (request.query.empty()) {
    return Status::InvalidArgument(
        "MatchRequest: query must be non-empty");
  }
  switch (request.type) {
    case MatchQueryType::kRangeSearch:
    case MatchQueryType::kLongestMatch:
      if (!std::isfinite(request.epsilon) || request.epsilon < 0.0) {
        return Status::InvalidArgument(
            "MatchRequest: epsilon must be finite and >= 0");
      }
      break;
    case MatchQueryType::kNearestMatch:
      if (!std::isfinite(request.epsilon_max) || request.epsilon_max < 0.0) {
        return Status::InvalidArgument(
            "MatchRequest: epsilon_max must be finite and >= 0");
      }
      if (!std::isfinite(request.epsilon_increment) ||
          request.epsilon_increment <= 0.0) {
        return Status::InvalidArgument(
            "MatchRequest: epsilon_increment must be finite and > 0");
      }
      break;
  }
  return Status::OK();
}

/// The outcome of one request.
struct MatchResult {
  /// OK, or the library error the underlying call produced (e.g.
  /// OutOfRange when Type I exceeds max_verifications, InvalidArgument
  /// for a bad request). Non-OK results leave the payload fields
  /// (matches / best) empty; `stats` still reports the work done up to
  /// the error, exactly as the direct library call would have left its
  /// stats out-param.
  Status status;
  /// kRangeSearch: every verified pair. Empty for the other types.
  std::vector<SubsequenceMatch> matches;
  /// kLongestMatch / kNearestMatch: the best pair, or nullopt when no
  /// pair exists within the thresholds.
  std::optional<SubsequenceMatch> best;
  /// Exact pipeline accounting, identical to what the direct library
  /// call reports into its MatchQueryStats out-param.
  MatchQueryStats stats;
};

}  // namespace subseq

#endif  // SUBSEQ_SERVE_MATCH_REQUEST_H_
