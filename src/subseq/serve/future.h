// Promise/Future — the completion channel between the MatchServer's
// detached execution and its clients.
//
// A deliberately small, exception-free alternative to std::future: the
// library never throws, so there is no exception slot; Wait/Get never
// spuriously invalidate; and the shared state is a plain
// mutex + condition_variable cell, cheap enough to mint one per admitted
// query. The producer side (Promise) lives inside the server's detached
// completion callbacks (ThreadPool::SubmitDetached); the consumer side
// (Future) is returned from MatchServer::Submit.

#ifndef SUBSEQ_SERVE_FUTURE_H_
#define SUBSEQ_SERVE_FUTURE_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "subseq/core/check.h"

namespace subseq {

/// The consumer end of a single-value completion channel. Copyable
/// (copies observe the same value); default-constructed futures are
/// invalid until obtained from a Promise.
template <typename V>
class Future {
 public:
  Future() = default;

  /// True once the value has been set. Non-blocking.
  bool Ready() const {
    SUBSEQ_CHECK(state_ != nullptr);
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->value.has_value();
  }

  /// Blocks until the value is set.
  void Wait() const {
    SUBSEQ_CHECK(state_ != nullptr);
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [this] { return state_->value.has_value(); });
  }

  /// Blocks until the value is set and moves it out. At most one Get per
  /// underlying promise across all copies of the future (checked).
  V Get() {
    SUBSEQ_CHECK(state_ != nullptr);
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [this] { return state_->value.has_value(); });
    SUBSEQ_CHECK(!state_->taken);
    state_->taken = true;
    V out = std::move(*state_->value);
    return out;
  }

 private:
  template <typename>
  friend class Promise;

  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<V> value;
    bool taken = false;
  };

  explicit Future(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// The producer end: Set exactly once; every future copy wakes.
template <typename V>
class Promise {
 public:
  Promise() : state_(std::make_shared<typename Future<V>::State>()) {}

  /// The future observing this promise. May be called repeatedly.
  Future<V> GetFuture() const { return Future<V>(state_); }

  /// Publishes the value and wakes all waiters. Must be called exactly
  /// once (checked).
  void Set(V value) {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      SUBSEQ_CHECK(!state_->value.has_value());
      state_->value.emplace(std::move(value));
    }
    state_->cv.notify_all();
  }

 private:
  std::shared_ptr<typename Future<V>::State> state_;
};

}  // namespace subseq

#endif  // SUBSEQ_SERVE_FUTURE_H_
