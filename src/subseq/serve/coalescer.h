// Query coalescing — the serving subsystem's core idea.
//
// The library's FilterSegments already batches one query's segments into
// a single RangeIndex::BatchRangeQuery call. Under concurrent load that
// still means one index call per query. The coalescer goes one step
// further: it groups *different clients'* queries that are
// filter-compatible (same index backend, same epsilon) and issues all of
// their segments as ONE shared BatchRangeQuery — bigger parallel
// sections, per-chunk scratch amortized across clients, one
// synchronization round instead of one per query, and cross-query
// segment sharing: bit-identical segments contributed by different
// concurrent queries (overlapping cuts of the same region, hot repeated
// queries) are issued to the index once and their results fanned back
// out, so concurrent load on popular content costs sublinear filter
// work. Each member is still *billed* its exact stand-alone cost in its
// per-query stats — determinism of reported accounting — while the
// executed total shrinks.
//
// Determinism: BatchRangeQuery guarantees result[i] answers queries[i]
// independent of batch composition (see metric/range_index.h), so the
// demux — slicing the shared result array back per owning query —
// reproduces exactly the hits each query would have obtained alone, and
// the per-query stats split (BatchRangeQuery's per_query out-param, not
// the shared StatsSink total) bills each query exactly what its own
// filter cost.

#ifndef SUBSEQ_SERVE_COALESCER_H_
#define SUBSEQ_SERVE_COALESCER_H_

#include <cstddef>
#include <span>
#include <vector>

#include "subseq/frame/matcher.h"
#include "subseq/serve/segment_cache.h"

namespace subseq {

/// Filter-compatibility key of one admitted request.
struct CoalesceKey {
  /// Index backend the request is answered through.
  IndexKind kind = IndexKind::kReferenceNet;
  /// Filter threshold. Compared exactly: only bit-identical epsilons
  /// share a call (BatchRangeQuery takes one epsilon per batch).
  double epsilon = 0.0;
  /// False for requests that run their own filter schedule (Type III
  /// NearestMatch): they are planned as singleton groups and dispatched
  /// whole.
  bool coalescable = true;
};

/// One planned shared filter call over a subset of an admission batch.
struct CoalesceGroup {
  IndexKind kind = IndexKind::kReferenceNet;
  double epsilon = 0.0;
  bool coalescable = true;
  /// Indices into the admission batch, in admission order.
  std::vector<size_t> members;
};

/// Deterministically partitions an admission batch into shared filter
/// calls: coalescable keys group by (kind, epsilon) in first-appearance
/// order with members in admission order; non-coalescable keys become
/// singleton groups at their admission position. Every index in
/// [0, keys.size()) appears in exactly one group.
std::vector<CoalesceGroup> PlanCoalesce(std::span<const CoalesceKey> keys);

/// Per-member outcome of one shared filter call.
struct CoalescedFilter {
  /// hits[m] — the member's segment hits, element-wise identical to
  /// matcher.FilterSegments(queries[m], epsilon) run alone.
  std::vector<std::vector<SegmentHit>> hits;
  /// stats[m] — the member's exact filter accounting (segments,
  /// filter_computations, hits fields), identical to the stand-alone
  /// call's. Verification fields are zero; step 5 fills them later.
  std::vector<MatchQueryStats> stats;
  /// Segment queries the members contributed in total.
  int64_t segments_total = 0;
  /// Distinct segments after in-round cross-query sharing (bit-identical
  /// segments are answered once per round).
  int64_t segments_unique = 0;
  /// Of segments_unique, how many were answered from the cross-round
  /// SegmentResultCache instead of the index (0 when no cache was given).
  int64_t segments_cache_hits = 0;
  /// Of segments_unique, how many actually went to the index this round
  /// (and were then published to the cache, when one was given).
  int64_t segments_cache_misses = 0;
  /// Index distance computations actually executed by the shared call
  /// (cache-answered segments execute nothing).
  int64_t total_filter_computations = 0;
  /// Sum over stats[m].filter_computations — what the same members would
  /// have cost run stand-alone. billed >= total always; the gap is the
  /// work in-round sharing plus the cross-round cache eliminated.
  int64_t billed_filter_computations = 0;
  /// The cache's share of that gap: the stand-alone cost of every warm
  /// unique segment, i.e. the index work this round would have executed
  /// with the cache off (in-round sharing still applied). Always
  /// billed >= total + cache_shared.
  int64_t cache_shared_computations = 0;
};

/// Steps 3-4 for a whole group at once: extracts every member's segment
/// queries, dedups bit-identical segments, answers warm ones from
/// `cache` (when non-null) and issues the cold remainder to `matcher`'s
/// index as one shared BatchRangeQuery over the matcher's ExecContext,
/// runs the exact per-hit distance pass ONCE per cold unique segment
/// (warm entries carry theirs), then demuxes hits and stats back per
/// member (deterministic: slice boundaries derive only from per-member
/// segment counts). Cold results are published to `cache` before
/// returning. Billing is unchanged by the cache: every member's stats
/// report its exact stand-alone filter cost whether its segments were
/// cold, warm, or shared in-round — results and stats are bit-identical
/// to a cache-less call. `queries[m]` storage must stay valid for the
/// duration of the call; `cache` is used unsynchronized and must not be
/// touched concurrently. Runs on the calling thread; the parallelism is
/// inside the shared index call and the distance pass.
template <typename T>
CoalescedFilter CoalescedFilterSegments(
    const SubsequenceMatcher<T>& matcher,
    std::span<const std::span<const T>> queries, double epsilon,
    SegmentResultCache* cache = nullptr);

extern template CoalescedFilter CoalescedFilterSegments<char>(
    const SubsequenceMatcher<char>&, std::span<const std::span<const char>>,
    double, SegmentResultCache*);
extern template CoalescedFilter CoalescedFilterSegments<double>(
    const SubsequenceMatcher<double>&,
    std::span<const std::span<const double>>, double, SegmentResultCache*);
extern template CoalescedFilter CoalescedFilterSegments<Point2d>(
    const SubsequenceMatcher<Point2d>&,
    std::span<const std::span<const Point2d>>, double, SegmentResultCache*);

}  // namespace subseq

#endif  // SUBSEQ_SERVE_COALESCER_H_
