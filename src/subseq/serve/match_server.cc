#include "subseq/serve/match_server.h"

#include <algorithm>
#include <string>

#include "subseq/core/check.h"
#include "subseq/exec/thread_pool.h"
#include "subseq/snapshot/reader.h"
#include "subseq/snapshot/writer.h"

namespace subseq {

namespace {

MatchResult ErrorResult(Status status) {
  MatchResult result;
  result.status = std::move(status);
  return result;
}

}  // namespace

template <typename T>
Result<std::unique_ptr<MatchServer<T>>> MatchServer<T>::Start(
    const SequenceDatabase<T>& db, const SequenceDistance<T>& dist,
    MatchServerOptions options) {
  std::vector<IndexKind> kinds = options.index_kinds;
  if (kinds.empty()) kinds.push_back(options.matcher.index_kind);
  // Dedupe preserving configuration order.
  std::vector<IndexKind> unique_kinds;
  for (const IndexKind kind : kinds) {
    if (std::find(unique_kinds.begin(), unique_kinds.end(), kind) ==
        unique_kinds.end()) {
      unique_kinds.push_back(kind);
    }
  }

  auto server = std::unique_ptr<MatchServer<T>>(new MatchServer<T>());
  server->max_batch_ = options.max_batch;
  if (options.cache_capacity_bytes > 0) {
    server->cache_ =
        std::make_unique<SegmentResultCache>(options.cache_capacity_bytes);
  }
  // Snapshot-backed start: open the file once and share it across every
  // kind's load (each kind has its own "idx.<kind>.*" block; the catalog
  // block is validated by each load against the live database). A load
  // failure fails Start — a server must never come up over a snapshot it
  // cannot fully verify.
  std::shared_ptr<const SnapshotFile> snapshot;
  if (!options.snapshot_path.empty()) {
    auto file = SnapshotFile::Open(options.snapshot_path,
                                   options.matcher.snapshot_load_mode);
    SUBSEQ_RETURN_NOT_OK(file.status());
    snapshot = std::move(file).ValueOrDie();
  }
  auto state = std::make_shared<EpochState>();
  for (const IndexKind kind : unique_kinds) {
    MatcherOptions matcher_options = options.matcher;
    matcher_options.index_kind = kind;
    auto matcher =
        snapshot != nullptr
            ? SubsequenceMatcher<T>::LoadIndexFrom(db, dist, matcher_options,
                                                   snapshot)
            : SubsequenceMatcher<T>::Build(db, dist, matcher_options);
    SUBSEQ_RETURN_NOT_OK(matcher.status());
    server->kinds_.push_back(kind);
    state->matchers.push_back(std::move(matcher).ValueOrDie());
  }
  state->epoch = state->matchers.front()->epoch();
  server->state_ = std::move(state);
  server->delta_merge_threshold_ = options.matcher.delta_merge_threshold;
  // A server started mid-epoch (a snapshot saved between ingests) may
  // already carry a delta past the threshold; merge it like any other.
  {
    std::lock_guard<std::mutex> lock(server->ingest_mu_);
    server->MaybeScheduleMerge();
  }
  server->service_ = std::thread([raw = server.get()] { raw->ServeLoop(); });
  return server;
}

template <typename T>
auto MatchServer<T>::AcquireState() const
    -> std::shared_ptr<const EpochState> {
  std::lock_guard<std::mutex> lock(state_mu_);
  return state_;
}

template <typename T>
void MatchServer<T>::PublishState(std::shared_ptr<const EpochState> next) {
  std::lock_guard<std::mutex> lock(state_mu_);
  state_ = std::move(next);
}

template <typename T>
Result<uint64_t> MatchServer<T>::AppendSequence(Sequence<T> seq) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  if (ingest_closed_.load(std::memory_order_acquire)) {
    return Status::Unavailable("MatchServer: AppendSequence after Shutdown");
  }
  const std::shared_ptr<const EpochState> current = AcquireState();
  auto next = std::make_shared<EpochState>();
  next->matchers.reserve(current->matchers.size());
  for (const auto& m : current->matchers) {
    // Each kind's pipeline owns its database value, so each derives from
    // its own copy of the sequence; all advance to the same epoch id.
    auto derived = m->WithAppended(Sequence<T>(seq));
    SUBSEQ_RETURN_NOT_OK(derived.status());
    next->matchers.push_back(std::move(derived).ValueOrDie());
  }
  appends_.fetch_add(1, std::memory_order_relaxed);
  return PublishDerived(std::move(next));
}

template <typename T>
Result<uint64_t> MatchServer<T>::RetireSequence(SeqId seq) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  if (ingest_closed_.load(std::memory_order_acquire)) {
    return Status::Unavailable("MatchServer: RetireSequence after Shutdown");
  }
  const std::shared_ptr<const EpochState> current = AcquireState();
  auto next = std::make_shared<EpochState>();
  next->matchers.reserve(current->matchers.size());
  for (const auto& m : current->matchers) {
    auto derived = m->WithRetired(seq);
    SUBSEQ_RETURN_NOT_OK(derived.status());
    next->matchers.push_back(std::move(derived).ValueOrDie());
  }
  retires_.fetch_add(1, std::memory_order_relaxed);
  return PublishDerived(std::move(next));
}

template <typename T>
Result<uint64_t> MatchServer<T>::PublishDerived(
    std::shared_ptr<EpochState> next) {
  next->epoch = next->matchers.front()->epoch();
  const uint64_t epoch = next->epoch;
  PublishState(std::move(next));
  MaybeScheduleMerge();
  return epoch;
}

template <typename T>
void MatchServer<T>::MaybeScheduleMerge() {
  if (merge_in_flight_) return;
  if (ingest_closed_.load(std::memory_order_acquire)) return;
  const std::shared_ptr<const EpochState> from = AcquireState();
  if (from == nullptr ||
      from->matchers.front()->delta_windows() < delta_merge_threshold_) {
    return;
  }
  merge_in_flight_ = true;
  // Dispatch-style accounting: Shutdown's idle wait covers the merge
  // task, so a live merge can never outlast the server.
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  ThreadPool::Shared().SubmitDetached([this, from] { RunMerge(from); },
                                      [this] {
                                        std::lock_guard<std::mutex> lock(
                                            idle_mu_);
                                        if (in_flight_.fetch_sub(
                                                1, std::memory_order_acq_rel) ==
                                            1) {
                                          idle_cv_.notify_all();
                                        }
                                      });
}

template <typename T>
void MatchServer<T>::RunMerge(std::shared_ptr<const EpochState> from) {
  // Cold rebuild of every kind over the database's NEXT epoch id — not
  // the same one. The bump is what keeps the epoch-keyed segment cache
  // exact: pre-merge entries bill the base+delta filter split, merged
  // entries the monolithic one, and the two must never share a cache
  // key. The rebuild runs outside every lock (it is the expensive part);
  // only the publish decision is serialized.
  auto next = std::make_shared<EpochState>();
  next->matchers.reserve(from->matchers.size());
  bool ok = true;
  for (const auto& m : from->matchers) {
    if (ingest_closed_.load(std::memory_order_acquire)) {
      ok = false;
      break;
    }
    auto merged = SubsequenceMatcher<T>::Build(m->database().NextEpoch(),
                                               m->distance(), m->options());
    if (!merged.ok()) {
      ok = false;  // leave the current epoch serving; never publish half
      break;
    }
    next->matchers.push_back(std::move(merged).ValueOrDie());
  }
  std::lock_guard<std::mutex> lock(ingest_mu_);
  merge_in_flight_ = false;
  // A failed rebuild leaves the current epoch serving and does NOT
  // reschedule (it would spin); the next ingest re-arms merging.
  if (!ok || ingest_closed_.load(std::memory_order_acquire)) return;
  bool current = true;
  {
    std::lock_guard<std::mutex> state_lock(state_mu_);
    current = state_->epoch == from->epoch;
  }
  if (current) {
    next->epoch = next->matchers.front()->epoch();
    PublishState(std::move(next));
    merges_.fetch_add(1, std::memory_order_relaxed);
  }
  // Ingest that landed while this merge built saw merge_in_flight_ and
  // skipped scheduling; re-check (publish or discard alike) so a
  // backlog cannot wedge unmerged.
  MaybeScheduleMerge();
}

template <typename T>
MatchServer<T>::~MatchServer() {
  Shutdown();
}

template <typename T>
void MatchServer<T>::Shutdown() {
  // Close ingest first: no new epoch publishes, and an in-flight merge
  // discards itself at its publish check. The idle wait below covers
  // merge tasks too (they share the in_flight_ accounting).
  ingest_closed_.store(true, std::memory_order_release);
  queue_.Close();
  {
    // Serialize the join: concurrent Shutdown callers all block here
    // until the service thread has exited and stopped dispatching.
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (service_.joinable()) service_.join();
  }
  // Wait for the last detached completion callback. After this, no task
  // references the server.
  std::unique_lock<std::mutex> lock(idle_mu_);
  idle_cv_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

template <typename T>
Status MatchServer<T>::SaveSnapshot(const std::string& path) const {
  // One coherent epoch: the state is acquired once, so a snapshot taken
  // mid-ingest captures exactly one published epoch (base + epoch
  // sections) even while newer epochs publish concurrently.
  const std::shared_ptr<const EpochState> state = AcquireState();
  if (state == nullptr || state->matchers.empty()) {
    return Status::Internal("MatchServer has no matcher to snapshot");
  }
  auto writer = SnapshotWriter::Create(path);
  SUBSEQ_RETURN_NOT_OK(writer.status());
  SnapshotWriter& w = *writer.value();
  // Every kind partitions the database identically, so the catalog block
  // is written once (the first matcher's) and each kind contributes only
  // its own index block.
  SUBSEQ_RETURN_NOT_OK(state->matchers.front()->SaveCatalogSections(w));
  for (const auto& matcher : state->matchers) {
    SUBSEQ_RETURN_NOT_OK(matcher->SaveIndexSections(w));
  }
  return w.Finish();
}

template <typename T>
const SubsequenceMatcher<T>* MatchServer<T>::matcher(IndexKind kind) const {
  const std::shared_ptr<const EpochState> state = AcquireState();
  for (size_t i = 0; i < kinds_.size(); ++i) {
    // The raw pointer outlives this call because state_ keeps the
    // EpochState alive until the next publish (see the accessor's doc).
    if (kinds_[i] == kind) return state->matchers[i].get();
  }
  return nullptr;
}

template <typename T>
ServeStats MatchServer<T>::stats() const {
  ServeStats s;
  s.queries_admitted = queries_admitted_.load(std::memory_order_relaxed);
  s.admission_batches = admission_batches_.load(std::memory_order_relaxed);
  s.filter_calls = filter_calls_.load(std::memory_order_relaxed);
  s.coalesced_queries = coalesced_queries_.load(std::memory_order_relaxed);
  s.filter_computations =
      filter_computations_.load(std::memory_order_relaxed);
  s.billed_filter_computations =
      billed_filter_computations_.load(std::memory_order_relaxed);
  s.segments_shared = segments_shared_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.cache_evictions = cache_evictions_.load(std::memory_order_relaxed);
  s.cache_shared_computations =
      cache_shared_computations_.load(std::memory_order_relaxed);
  s.appends = appends_.load(std::memory_order_relaxed);
  s.retires = retires_.load(std::memory_order_relaxed);
  s.merges = merges_.load(std::memory_order_relaxed);
  const std::shared_ptr<const EpochState> state = AcquireState();
  if (state != nullptr && !state->matchers.empty()) {
    s.epoch = state->epoch;
    s.base_windows = state->matchers.front()->base_windows();
    s.delta_windows = state->matchers.front()->delta_windows();
  }
  return s;
}

template <typename T>
Future<MatchResult> MatchServer<T>::Submit(MatchRequest<T> request) {
  Pending pending;
  pending.request = std::move(request);
  Future<MatchResult> future = pending.promise.GetFuture();
  Promise<MatchResult> promise = pending.promise;
  // Fail fast at the front door: a malformed request (empty query,
  // non-finite/negative epsilon, bad Type III schedule) never enters the
  // pipeline — it would otherwise die on deep CHECKs, poison the
  // coalescer's epsilon grouping (NaN != NaN), or silently return
  // nothing. Mirrors MatcherOptions::Validate() at build time.
  Status invalid = ValidateMatchRequest(pending.request);
  if (!invalid.ok()) {
    promise.Set(ErrorResult(std::move(invalid)));
    return future;
  }
  if (!queue_.Push(std::move(pending))) {
    promise.Set(ErrorResult(
        Status::Unavailable("MatchServer: submitted after Shutdown")));
  }
  return future;
}

template <typename T>
void MatchServer<T>::ServeLoop() {
  std::vector<Pending> batch;
  while (queue_.DrainWait(&batch, max_batch_)) {
    admission_batches_.fetch_add(1, std::memory_order_relaxed);
    queries_admitted_.fetch_add(static_cast<int64_t>(batch.size()),
                                std::memory_order_relaxed);
    ServeBatch(&batch);
  }
}

template <typename T>
void MatchServer<T>::ServeBatch(std::vector<Pending>* batch) {
  // THE epoch for this whole admission round: acquired once, captured by
  // every dispatched verification task. Every request in the batch runs
  // start to finish against these matchers even if ingest publishes a
  // newer epoch mid-round — and the shared_ptr keeps a superseded
  // epoch's indexes alive until the round's last task drops it.
  const std::shared_ptr<const EpochState> state = AcquireState();
  if (cache_ != nullptr) {
    // Amortized reclamation of dead-epoch entries (they can never be
    // served — they miss by key — this only returns their bytes).
    cache_->SweepDeadEpochs(state->epoch, 64);
    cache_evictions_.store(cache_->counters().evictions,
                           std::memory_order_relaxed);
  }

  // Resolve each request's pipeline; requests naming an unconfigured
  // kind fail fast and drop out of the plan.
  const size_t n = batch->size();
  std::vector<const SubsequenceMatcher<T>*> pipelines(n, nullptr);
  std::vector<CoalesceKey> keys(n);
  for (size_t i = 0; i < n; ++i) {
    Pending& p = (*batch)[i];
    const IndexKind kind = p.request.index_kind.value_or(kinds_.front());
    for (size_t k = 0; k < kinds_.size(); ++k) {
      if (kinds_[k] == kind) {
        pipelines[i] = state->matchers[k].get();
        break;
      }
    }
    if (pipelines[i] == nullptr) {
      p.promise.Set(ErrorResult(Status::InvalidArgument(
          "MatchRequest names an IndexKind the server was not started "
          "with")));
      continue;
    }
    keys[i].kind = kind;
    keys[i].coalescable = p.request.type != MatchQueryType::kNearestMatch;
    keys[i].epsilon = p.request.epsilon;
  }

  // Plan over the surviving requests (their original batch indices).
  std::vector<size_t> alive;
  std::vector<CoalesceKey> alive_keys;
  for (size_t i = 0; i < n; ++i) {
    if (pipelines[i] != nullptr) {
      alive.push_back(i);
      alive_keys.push_back(keys[i]);
    }
  }
  const std::vector<CoalesceGroup> groups = PlanCoalesce(alive_keys);

  for (const CoalesceGroup& group : groups) {
    if (!group.coalescable) {
      // Type III runs its own filter schedule; dispatch it whole.
      SUBSEQ_CHECK(group.members.size() == 1);
      Pending& p = (*batch)[alive[group.members.front()]];
      const SubsequenceMatcher<T>* m = pipelines[alive[group.members.front()]];
      Dispatch(
          [this, state, m, request = std::move(p.request)] {
            return RunDirect(*m, request);
          },
          p.promise);
      continue;
    }

    // The shared filter call: steps 3-4 for every member at once. Runs
    // here on the service thread (its parallelism is inside the index);
    // meanwhile new submissions accumulate in the queue for the next
    // round — that backlog is what the next shared call coalesces.
    const SubsequenceMatcher<T>* m = pipelines[alive[group.members.front()]];
    std::vector<std::span<const T>> views;
    views.reserve(group.members.size());
    for (const size_t member : group.members) {
      const std::vector<T>& q = (*batch)[alive[member]].request.query;
      views.push_back(std::span<const T>(q));
    }
    CoalescedFilter filtered = CoalescedFilterSegments(
        *m, std::span<const std::span<const T>>(views), group.epsilon,
        cache_.get());
    filter_calls_.fetch_add(1, std::memory_order_relaxed);
    filter_computations_.fetch_add(filtered.total_filter_computations,
                                   std::memory_order_relaxed);
    billed_filter_computations_.fetch_add(
        filtered.billed_filter_computations, std::memory_order_relaxed);
    segments_shared_.fetch_add(
        filtered.segments_total - filtered.segments_unique,
        std::memory_order_relaxed);
    if (cache_ != nullptr) {
      cache_hits_.fetch_add(filtered.segments_cache_hits,
                            std::memory_order_relaxed);
      cache_misses_.fetch_add(filtered.segments_cache_misses,
                              std::memory_order_relaxed);
      cache_shared_computations_.fetch_add(
          filtered.cache_shared_computations, std::memory_order_relaxed);
      // Evictions are the cache's own monotonic count; republish it for
      // concurrent stats() readers (the cache itself is service-thread
      // only).
      cache_evictions_.store(cache_->counters().evictions,
                             std::memory_order_relaxed);
    }
    if (group.members.size() > 1) {
      coalesced_queries_.fetch_add(
          static_cast<int64_t>(group.members.size()),
          std::memory_order_relaxed);
    }

    // Step 5 per member, detached: the loop moves on to the next group /
    // admission round while pool workers verify. Each task enters the
    // library's parallel verification path (RangeSearchFromHits /
    // LongestMatchFromHits), whose work-stealing loop fans candidate
    // regions out across idle pool workers even though it was entered
    // from a worker — a query with a heavy verification tail no longer
    // serializes on its one detached task.
    for (size_t g = 0; g < group.members.size(); ++g) {
      Pending& p = (*batch)[alive[group.members[g]]];
      Dispatch(
          [this, state, m, request = std::move(p.request),
           hits = std::move(filtered.hits[g]),
           filter_stats = filtered.stats[g]] {
            return RunFromHits(*m, request, hits, filter_stats);
          },
          p.promise);
    }
  }
}

template <typename T>
void MatchServer<T>::Dispatch(std::function<MatchResult()> work,
                              Promise<MatchResult> promise) {
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  ThreadPool::Shared().SubmitDetached(
      [work = std::move(work), promise]() mutable {
        promise.Set(work());
      },
      [this] {
        // Decrement under the mutex (as ParallelFor does): were the
        // count dropped first, Shutdown's waiter could observe 0 and
        // destroy the server before this callback touches idle_mu_.
        std::lock_guard<std::mutex> lock(idle_mu_);
        if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          idle_cv_.notify_all();
        }
      });
}

template <typename T>
MatchResult MatchServer<T>::RunDirect(const SubsequenceMatcher<T>& m,
                                      const MatchRequest<T>& request) const {
  MatchResult result;
  const std::span<const T> query(request.query);
  switch (request.type) {
    case MatchQueryType::kRangeSearch: {
      auto r = m.RangeSearch(query, request.epsilon, &result.stats);
      if (!r.ok()) {
        result.status = r.status();
        return result;  // stats keep the work done before the error
      }
      result.matches = std::move(r).ValueOrDie();
      break;
    }
    case MatchQueryType::kLongestMatch: {
      auto r = m.LongestMatch(query, request.epsilon, &result.stats);
      if (!r.ok()) {
        result.status = r.status();
        return result;  // stats keep the work done before the error
      }
      result.best = std::move(r).ValueOrDie();
      break;
    }
    case MatchQueryType::kNearestMatch: {
      auto r = m.NearestMatch(query, request.epsilon_max,
                              request.epsilon_increment, &result.stats);
      if (!r.ok()) {
        result.status = r.status();
        return result;  // stats keep the work done before the error
      }
      result.best = std::move(r).ValueOrDie();
      break;
    }
  }
  return result;
}

template <typename T>
MatchResult MatchServer<T>::RunFromHits(
    const SubsequenceMatcher<T>& m, const MatchRequest<T>& request,
    const std::vector<SegmentHit>& hits, MatchQueryStats filter_stats) const {
  MatchResult result;
  result.stats = filter_stats;
  const std::span<const T> query(request.query);
  switch (request.type) {
    case MatchQueryType::kRangeSearch: {
      auto r =
          m.RangeSearchFromHits(query, hits, request.epsilon, &result.stats);
      if (!r.ok()) {
        result.status = r.status();
        return result;  // stats keep the work done before the error
      }
      result.matches = std::move(r).ValueOrDie();
      break;
    }
    case MatchQueryType::kLongestMatch: {
      auto r =
          m.LongestMatchFromHits(query, hits, request.epsilon, &result.stats);
      if (!r.ok()) {
        result.status = r.status();
        return result;  // stats keep the work done before the error
      }
      result.best = std::move(r).ValueOrDie();
      break;
    }
    case MatchQueryType::kNearestMatch:
      // Planned non-coalescable; cannot reach here.
      SUBSEQ_CHECK(false);
      break;
  }
  return result;
}

template class MatchServer<char>;
template class MatchServer<double>;
template class MatchServer<Point2d>;

}  // namespace subseq
