// MatchServer<T> — the serving subsystem: many concurrent clients, one
// engine.
//
// PR 1 made the matcher a parallel *library*: one call uses all cores.
// The MatchServer is the step to *serving*: it owns the window catalog
// (steps 1-2, built once) with one prebuilt index per configured
// IndexKind, admits queries from any number of client threads, and runs
// an admission/coalescing loop on a dedicated service thread:
//
//   clients --Submit--> RequestQueue --DrainWait--> admission batch
//     -> PlanCoalesce: group by (IndexKind, epsilon)
//     -> CoalescedFilterSegments: ONE shared BatchRangeQuery per group,
//        per-query demux of hits + per-query stats split
//     -> per-query step 5 (verification) dispatched to the ThreadPool
//        via SubmitDetached; the completion callback fulfills the
//        query's Future — the loop never blocks on verification and
//        immediately drains the arrivals that accumulated meanwhile.
//        The dispatched task is an entry point, not a confinement: the
//        matcher's step 5 routes through the library's parallel
//        verification path (chunked work-stealing over candidate
//        regions, exec.num_verify_threads), which still fans out from
//        inside a pool worker — so one admitted query's verification
//        tail spreads across idle workers instead of serializing on the
//        one detached task that carried it.
//
// Serving contract (the same determinism bar as the library): a request
// answered through the server is element-wise identical — matches,
// best-pair, and every MatchQueryStats field — to the same call made
// directly on a SubsequenceMatcher with the same options, at any
// concurrency level and any exec.num_threads setting. Coalescing, like
// threading, buys wall-clock time only.
//
// Live ingest: AppendSequence / RetireSequence derive a new immutable
// epoch (frame/matcher.h WithAppended / WithRetired — the old base
// index is shared, only the delta scan and tombstone mask rebuild) and
// publish it RCU-style: the whole serving state lives in one
// shared_ptr<const EpochState> that ServeBatch acquires ONCE per
// admission round, so every in-flight query runs start to finish
// against exactly one epoch while the next is built off-thread. When an
// epoch's delta grows past MatcherOptions::delta_merge_threshold
// windows, a background merge on the shared ThreadPool cold-rebuilds
// every kind over the database's next epoch and publishes the result —
// unless ingest advanced the epoch meanwhile, in which case the stale
// merge is discarded (publishes serialize on ingest_mu_, so an epoch id
// is only ever published once). The segment cache keys on the epoch, so
// a swap can never serve a stale hit; dead-epoch entries are swept
// lazily, a bounded slice per admission round.

#ifndef SUBSEQ_SERVE_MATCH_SERVER_H_
#define SUBSEQ_SERVE_MATCH_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "subseq/core/sequence.h"
#include "subseq/core/status.h"
#include "subseq/frame/matcher.h"
#include "subseq/serve/coalescer.h"
#include "subseq/serve/future.h"
#include "subseq/serve/match_request.h"
#include "subseq/serve/request_queue.h"
#include "subseq/serve/segment_cache.h"

namespace subseq {

/// Server configuration.
struct MatchServerOptions {
  /// Framework parameters shared by every index the server builds
  /// (lambda, lambda0, per-index tunables, exec). matcher.index_kind is
  /// superseded by `index_kinds` and only consulted as the default when
  /// `index_kinds` is empty.
  MatcherOptions matcher;
  /// The index backends to prebuild, one matcher pipeline each; requests
  /// pick one via MatchRequest::index_kind (default: the first entry).
  /// Empty defaults to {matcher.index_kind}. Duplicates are ignored.
  std::vector<IndexKind> index_kinds;
  /// Cap on requests admitted per coalescing round; 0 = drain everything
  /// pending. Bounds per-round memory under extreme backlog.
  size_t max_batch = 0;
  /// Byte budget of the cross-round segment-result cache
  /// (serve/segment_cache.h): unique segments' filter hit lists and
  /// per-hit exact distances are kept across admission rounds, so hot
  /// repeated segments skip both the index traversal and the distance
  /// fill on later rounds. 0 disables the cache entirely (PR 4 serving
  /// behavior). Results and per-request stats are bit-identical either
  /// way — the cache, like coalescing, changes executed work only.
  size_t cache_capacity_bytes = 64ull << 20;  // 64 MiB, on by default
  /// When non-empty, Start loads every configured kind's index from this
  /// snapshot (opened once, shared across kinds, per
  /// matcher.snapshot_load_mode) instead of rebuilding — instant start.
  /// The snapshot must have been saved by SaveSnapshot (or
  /// SubsequenceMatcher::SaveIndex / BuildToSnapshot for a single kind)
  /// over the same database and options; missing kind blocks or any
  /// mismatch fail Start with a precise status. A server started from a
  /// snapshot answers bit-identically to one that rebuilt.
  std::string snapshot_path;
};

/// Aggregate serving counters; snapshot via MatchServer::stats().
struct ServeStats {
  /// Requests admitted into the coalescing loop.
  int64_t queries_admitted = 0;
  /// DrainWait rounds that admitted at least one request.
  int64_t admission_batches = 0;
  /// Shared BatchRangeQuery calls issued (one per coalesced group).
  int64_t filter_calls = 0;
  /// Requests whose filter shared a call with at least one other request
  /// — the cross-query coalescing the server exists for.
  int64_t coalesced_queries = 0;
  /// Index distance computations actually executed across all shared
  /// filter calls.
  int64_t filter_computations = 0;
  /// What the same filters would have cost run stand-alone (the sum of
  /// every request's reported MatchQueryStats::filter_computations). The
  /// gap to `filter_computations` is the work cross-query segment
  /// sharing eliminated.
  int64_t billed_filter_computations = 0;
  /// Segment queries answered through a bit-identical representative
  /// instead of their own index traversal — usually contributed by a
  /// concurrent query; a query's own internal repeats also count.
  int64_t segments_shared = 0;
  /// Unique segments answered from the cross-round SegmentResultCache
  /// (index traversal AND per-hit distance pass skipped).
  int64_t cache_hits = 0;
  /// Unique segments that had to go to the index and were then cached.
  int64_t cache_misses = 0;
  /// Cache entries evicted to stay within cache_capacity_bytes.
  int64_t cache_evictions = 0;
  /// Index distance computations the cache eliminated: the stand-alone
  /// cost of every warm unique segment, per round — what
  /// filter_computations would additionally have executed with the cache
  /// off (in-round sharing still applied). Billing is unaffected:
  /// billed_filter_computations >= filter_computations +
  /// cache_shared_computations always.
  int64_t cache_shared_computations = 0;
  /// The database epoch currently being served (a fresh Start serves
  /// its database's epoch, 0 for a bulk-loaded one; each ingest or
  /// merge publish advances it by one).
  uint64_t epoch = 0;
  /// Sequences appended / retired through the server so far.
  int64_t appends = 0;
  int64_t retires = 0;
  /// Background delta merges published (scheduled merges that lost the
  /// publish race to a newer epoch are not counted).
  int64_t merges = 0;
  /// Windows covered by the serving epoch's base index / its delta scan.
  int64_t base_windows = 0;
  int64_t delta_windows = 0;
};

/// The serving frontend over one sequence database. Move-pinned (neither
/// copyable nor movable): worker closures hold `this`. `db` and `dist`
/// must outlive the server. Thread-safe: Submit from any thread.
template <typename T>
class MatchServer {
 public:
  /// Builds the window catalog and one index per configured kind (the
  /// offline steps 1-2, run once here), then starts the service thread.
  /// Fails on invalid options, exactly like SubsequenceMatcher::Build.
  static Result<std::unique_ptr<MatchServer<T>>> Start(
      const SequenceDatabase<T>& db, const SequenceDistance<T>& dist,
      MatchServerOptions options = {});

  /// Drains and stops (Shutdown), then tears down the indexes.
  ~MatchServer();

  MatchServer(const MatchServer&) = delete;
  MatchServer& operator=(const MatchServer&) = delete;

  /// Enqueues one request; the returned future completes when the answer
  /// is ready. Never blocks on other queries' work. Invalid requests
  /// (empty query, non-finite or negative epsilon, non-positive
  /// epsilon_increment — see ValidateMatchRequest) fail fast: the future
  /// completes immediately with InvalidArgument and nothing enters the
  /// pipeline. Requests submitted after Shutdown complete immediately
  /// with an error status. Callable from any number of threads
  /// concurrently.
  Future<MatchResult> Submit(MatchRequest<T> request);

  /// Stops admitting, drains every queued and in-flight request to
  /// completion (their futures all complete), and joins the service
  /// thread. Idempotent; called by the destructor.
  void Shutdown();

  /// Appends one sequence as a new epoch: every configured kind derives
  /// its matcher (shared base + grown delta), and the new EpochState is
  /// published atomically. Requests admitted before the publish run
  /// entirely against the previous epoch; requests admitted after see
  /// the appended sequence. Synchronous (the epoch is serving on
  /// return); callable from any thread, serialized against other ingest
  /// calls. May schedule a background merge (see file comment). Returns
  /// the new epoch id, or Unavailable after Shutdown.
  Result<uint64_t> AppendSequence(Sequence<T> seq);

  /// Retires one sequence as a new epoch: its windows are tombstoned —
  /// masked out of every subsequent filter result — but never
  /// renumbered, so ObjectIds stay stable. Fails on out-of-range or
  /// already-retired ids, or Unavailable after Shutdown. Returns the
  /// new epoch id.
  Result<uint64_t> RetireSequence(SeqId seq);

  /// The serving pipeline for one configured kind (nullptr if the kind
  /// was not configured). The window catalog is shared state: every
  /// kind's pipeline partitions the database identically. The pointer
  /// is valid until the NEXT epoch publish (AppendSequence /
  /// RetireSequence / background merge) — callers interleaving ingest
  /// must re-fetch after each ingest call.
  const SubsequenceMatcher<T>* matcher(IndexKind kind) const;

  /// The configured kinds, in configuration order (requests default to
  /// the first).
  const std::vector<IndexKind>& index_kinds() const { return kinds_; }

  /// Writes one snapshot holding the shared window catalog plus every
  /// configured kind's index block — the file a later Start with
  /// options.snapshot_path reloads. Safe to call while serving: indexes
  /// are immutable after Start, so the save reads stable state.
  Status SaveSnapshot(const std::string& path) const;

  /// Aggregate serving counters so far. Exact once quiescent (after
  /// Shutdown or with no request in flight); monotonic always.
  ServeStats stats() const;

 private:
  struct Pending {
    MatchRequest<T> request;
    Promise<MatchResult> promise;
  };

  /// One immutable epoch's complete serving state: every configured
  /// kind's matcher, all at the same database epoch. Published behind a
  /// shared_ptr (RCU): readers acquire it once per admission round,
  /// dispatched verification tasks keep their round's state alive via
  /// the captured shared_ptr, and a dead epoch's matchers (and the base
  /// indexes only they reference) free when the last in-flight query
  /// drops the last reference.
  struct EpochState {
    std::vector<std::unique_ptr<SubsequenceMatcher<T>>> matchers;  // by kinds_
    uint64_t epoch = 0;
  };

  MatchServer() = default;

  /// The serving state for this instant (never null after Start).
  std::shared_ptr<const EpochState> AcquireState() const;
  /// Swaps the serving state (callers serialize on ingest_mu_).
  void PublishState(std::shared_ptr<const EpochState> next);
  /// Schedules a background merge if the current delta passed the
  /// threshold and none is in flight. Caller holds ingest_mu_.
  void MaybeScheduleMerge();
  /// Background merge body (pool task): cold-rebuilds `from`'s kinds at
  /// the next epoch id and publishes unless ingest advanced past
  /// `from->epoch` meanwhile.
  void RunMerge(std::shared_ptr<const EpochState> from);
  /// Shared tail of AppendSequence / RetireSequence.
  Result<uint64_t> PublishDerived(
      std::shared_ptr<EpochState> next);

  /// The admission/coalescing loop body (service thread).
  void ServeLoop();
  /// Plans and executes one admission batch.
  void ServeBatch(std::vector<Pending>* batch);
  /// Hands one request's remaining work to the pool as a detached task.
  void Dispatch(std::function<MatchResult()> work, Promise<MatchResult> promise);
  /// Runs a request whole through the library (Type III and fallbacks).
  MatchResult RunDirect(const SubsequenceMatcher<T>& m,
                        const MatchRequest<T>& request) const;
  /// Step 5 for a request whose filter was coalesced.
  MatchResult RunFromHits(const SubsequenceMatcher<T>& m,
                          const MatchRequest<T>& request,
                          const std::vector<SegmentHit>& hits,
                          MatchQueryStats filter_stats) const;

  std::vector<IndexKind> kinds_;
  /// The published epoch (guarded by state_mu_; read via AcquireState —
  /// the lock covers only the shared_ptr copy, never any index work).
  std::shared_ptr<const EpochState> state_;
  mutable std::mutex state_mu_;
  /// Serializes ingest (append / retire / merge publish). Epoch ids are
  /// assigned and published only under this mutex, which is what makes
  /// them unique: a merge re-checks the current epoch at publish time
  /// and discards itself if ingest won the race.
  std::mutex ingest_mu_;
  bool merge_in_flight_ = false;  // guarded by ingest_mu_
  std::atomic<bool> ingest_closed_{false};
  int32_t delta_merge_threshold_ = 0;
  size_t max_batch_ = 0;
  /// Cross-round segment-result cache; nullptr when disabled. Touched
  /// only from the service thread (ServeBatch), so it needs no lock; the
  /// cache_* atomics below republish its counters for stats() readers.
  std::unique_ptr<SegmentResultCache> cache_;

  RequestQueue<Pending> queue_;
  std::thread service_;
  std::mutex shutdown_mu_;

  // Detached-task accounting: Shutdown waits until the last completion
  // callback has run.
  std::atomic<int64_t> in_flight_{0};
  mutable std::mutex idle_mu_;
  std::condition_variable idle_cv_;

  std::atomic<int64_t> queries_admitted_{0};
  std::atomic<int64_t> admission_batches_{0};
  std::atomic<int64_t> filter_calls_{0};
  std::atomic<int64_t> coalesced_queries_{0};
  std::atomic<int64_t> filter_computations_{0};
  std::atomic<int64_t> billed_filter_computations_{0};
  std::atomic<int64_t> segments_shared_{0};
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> cache_misses_{0};
  std::atomic<int64_t> cache_evictions_{0};
  std::atomic<int64_t> cache_shared_computations_{0};
  std::atomic<int64_t> appends_{0};
  std::atomic<int64_t> retires_{0};
  std::atomic<int64_t> merges_{0};
};

extern template class MatchServer<char>;
extern template class MatchServer<double>;
extern template class MatchServer<Point2d>;

}  // namespace subseq

#endif  // SUBSEQ_SERVE_MATCH_SERVER_H_
