// SnapshotFile: validated read access to a snapshot, eager or mmap.
//
// Open() materializes the bytes (heap read or read-only mmap), then
// validates the file fully before returning: magic, format version,
// footer tail, recorded-vs-actual size, section-table bounds, and —
// in BOTH load modes — every section's XXH64 checksum. Any corruption
// is reported with the section name and file offset; a SnapshotFile
// that Open() returned never hands out bytes that fail their checksum.
//
// Backends alias large arrays straight out of the file via
// PodSectionView (the 8-byte section alignment guarantees int64/double
// alignment), so they must keep the shared_ptr<const SnapshotFile>
// alive for as long as the views are used. Eager and mmap mode differ
// only in who owns the bytes, never in what the loaded index answers.

#ifndef SUBSEQ_SNAPSHOT_READER_H_
#define SUBSEQ_SNAPSHOT_READER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "subseq/core/status.h"
#include "subseq/snapshot/format.h"

namespace subseq {

class SnapshotFile {
 public:
  /// Opens and fully validates `path`. Every failure mode names what is
  /// wrong and where (section + offset) — corrupted snapshots fail
  /// loudly at Open, never at query time.
  static Result<std::shared_ptr<const SnapshotFile>> Open(
      const std::string& path, SnapshotLoadMode mode);

  ~SnapshotFile();
  SnapshotFile(const SnapshotFile&) = delete;
  SnapshotFile& operator=(const SnapshotFile&) = delete;

  SnapshotLoadMode mode() const { return mode_; }
  const std::string& path() const { return path_; }
  uint64_t file_size() const { return size_; }

  /// Section table in file (append) order.
  const std::vector<SectionEntry>& sections() const { return sections_; }

  bool has_section(std::string_view name) const;

  /// The payload bytes of a named section. NotFound when absent.
  Result<std::span<const uint8_t>> section(std::string_view name) const;

 private:
  SnapshotFile() = default;

  Status Validate();

  std::string path_;
  SnapshotLoadMode mode_ = SnapshotLoadMode::kEager;
  const uint8_t* data_ = nullptr;
  uint64_t size_ = 0;
  std::vector<uint8_t> owned_;   // eager mode storage
  void* mapping_ = nullptr;      // mmap mode storage
  std::vector<SectionEntry> sections_;
};

/// A typed view aliasing a section's bytes inside `file`. The section
/// size must be a whole multiple of sizeof(T). The caller must keep the
/// SnapshotFile alive while the span is in use.
template <typename T>
Result<std::span<const T>> PodSectionView(const SnapshotFile& file,
                                          std::string_view name) {
  static_assert(std::is_trivially_copyable_v<T>);
  auto bytes = file.section(name);
  if (!bytes.ok()) return bytes.status();
  const std::span<const uint8_t> raw = bytes.value();
  if (raw.size() % sizeof(T) != 0) {
    return Status::InvalidArgument(
        "snapshot section '" + std::string(name) + "' holds " +
        std::to_string(raw.size()) + " bytes, not a multiple of the " +
        std::to_string(sizeof(T)) + "-byte record it should contain");
  }
  if (reinterpret_cast<uintptr_t>(raw.data()) % alignof(T) != 0) {
    return Status::Internal("snapshot section '" + std::string(name) +
                            "' is not aligned for its record type");
  }
  return std::span<const T>(reinterpret_cast<const T*>(raw.data()),
                            raw.size() / sizeof(T));
}

/// Copies a section's records into `out` (use when the data must
/// outlive the file or be mutated).
template <typename T>
Status ReadPodSection(const SnapshotFile& file, std::string_view name,
                      std::vector<T>* out) {
  auto view = PodSectionView<T>(file, name);
  if (!view.ok()) return view.status();
  out->assign(view.value().begin(), view.value().end());
  return Status::OK();
}

/// Reads a section that must hold exactly one record of type T.
template <typename T>
Status ReadPodStruct(const SnapshotFile& file, std::string_view name, T* out) {
  auto view = PodSectionView<T>(file, name);
  if (!view.ok()) return view.status();
  if (view.value().size() != 1) {
    return Status::InvalidArgument(
        "snapshot section '" + std::string(name) + "' holds " +
        std::to_string(view.value().size()) + " records, expected exactly 1");
  }
  *out = view.value()[0];
  return Status::OK();
}

}  // namespace subseq

#endif  // SUBSEQ_SNAPSHOT_READER_H_
