#include "subseq/snapshot/format.h"

#include <cstring>

namespace subseq {
namespace {

constexpr uint64_t kPrime1 = 11400714785074694791ULL;
constexpr uint64_t kPrime2 = 14029467366897019727ULL;
constexpr uint64_t kPrime3 = 1609587929392839161ULL;
constexpr uint64_t kPrime4 = 9650029242287828579ULL;
constexpr uint64_t kPrime5 = 2870177450012600261ULL;

inline uint64_t RotL(uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline uint64_t Read64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t Read32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t Round(uint64_t acc, uint64_t input) {
  return RotL(acc + input * kPrime2, 31) * kPrime1;
}

inline uint64_t MergeRound(uint64_t acc, uint64_t val) {
  acc ^= Round(0, val);
  return acc * kPrime1 + kPrime4;
}

}  // namespace

uint64_t XxHash64(const void* data, size_t len, uint64_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint8_t* const end = p + len;
  uint64_t h;

  if (len >= 32) {
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kPrime1;
    const uint8_t* const limit = end - 32;
    do {
      v1 = Round(v1, Read64(p));
      v2 = Round(v2, Read64(p + 8));
      v3 = Round(v3, Read64(p + 16));
      v4 = Round(v4, Read64(p + 24));
      p += 32;
    } while (p <= limit);
    h = RotL(v1, 1) + RotL(v2, 7) + RotL(v3, 12) + RotL(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<uint64_t>(len);

  while (p + 8 <= end) {
    h ^= Round(0, Read64(p));
    h = RotL(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(Read32(p)) * kPrime1;
    h = RotL(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint64_t>(*p) * kPrime5;
    h = RotL(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace subseq
