// On-disk snapshot format: constants, POD layout structs, and the
// checksum function shared by the writer and the reader.
//
// A snapshot file is
//
//   +--------------------+  offset 0
//   | SnapshotHeader     |  16 bytes: magic "SUBSNAP1", format version
//   +--------------------+
//   | section payload 0  |  flat POD bytes, 8-byte aligned start,
//   | (zero padding)     |  zero-filled up to the next 8-byte boundary
//   +--------------------+
//   | section payload 1  |
//   |        ...         |
//   +--------------------+  <- table_offset (8-byte aligned)
//   | SectionEntry[n]    |  64 bytes each, in append order; every entry
//   |                    |  names its payload and carries offset, size
//   |                    |  and an XXH64 checksum of the payload bytes
//   +--------------------+
//   | SnapshotFooterTail |  32 bytes: table_offset, section count,
//   +--------------------+  total file size, footer magic "SNAPFOOT"
//
// The section table lives in the *footer*, not the header, so a writer
// can stream sections of unknown size (out-of-core shard-by-shard
// builds) without seeking back; the per-shard section offsets the
// loader needs are exactly the table entries. Encoding is canonical:
// the same logical content always produces the same bytes (no
// timestamps, zeroed padding and struct holes), so save -> load -> save
// is byte-identical — the round-trip tests rely on this.
//
// All multi-byte fields are stored in the host's little-endian byte
// order; the format targets the little-endian platforms the rest of the
// runtime-dispatched SIMD layer already assumes. The checksum of every
// section is verified at open time in BOTH load modes (eager and mmap):
// a corrupted snapshot must fail loudly at Open, never answer queries
// wrongly. Mmap mode's win is zero-copy aliasing of large arrays, not
// skipped validation.

#ifndef SUBSEQ_SNAPSHOT_FORMAT_H_
#define SUBSEQ_SNAPSHOT_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace subseq {

/// First 8 bytes of every snapshot file: "SUBSNAP1" read as a
/// little-endian u64.
inline constexpr uint64_t kSnapshotMagic = 0x3150414E53425553ULL;

/// Last 8 bytes of every snapshot file: "SNAPFOOT" read as a
/// little-endian u64.
inline constexpr uint64_t kSnapshotFooterMagic = 0x544F4F4650414E53ULL;

/// Bumped on any incompatible layout change. Readers reject files with
/// a different version instead of guessing.
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Every section payload starts on an 8-byte boundary (so double/int64
/// arrays can be aliased directly out of the mapping) and is zero-padded
/// up to the next one.
inline constexpr size_t kSnapshotAlignment = 8;

/// Longest section name, excluding the terminating NUL.
inline constexpr size_t kSnapshotMaxSectionName = 39;

/// File prologue.
struct SnapshotHeader {
  uint64_t magic;
  uint32_t format_version;
  uint32_t reserved;  // always 0
};
static_assert(sizeof(SnapshotHeader) == 16);
static_assert(std::is_trivially_copyable_v<SnapshotHeader>);

/// One row of the footer-resident section table.
struct SectionEntry {
  char name[kSnapshotMaxSectionName + 1];  // NUL-terminated, tail zeroed
  uint64_t offset;                         // from file start, 8-aligned
  uint64_t size;                           // payload bytes, pre-padding
  uint64_t checksum;                       // XxHash64(payload, size)
};
static_assert(sizeof(SectionEntry) == 64);
static_assert(std::is_trivially_copyable_v<SectionEntry>);

/// Fixed-size tail at the very end of the file; readers locate the
/// section table through it.
struct SnapshotFooterTail {
  uint64_t table_offset;
  uint64_t section_count;
  uint64_t file_size;  // must equal the actual on-disk size
  uint64_t footer_magic;
};
static_assert(sizeof(SnapshotFooterTail) == 32);
static_assert(std::is_trivially_copyable_v<SnapshotFooterTail>);

/// How SnapshotFile::Open materializes the payload bytes.
enum class SnapshotLoadMode {
  /// Read the whole file into a private heap buffer.
  kEager,
  /// mmap the file read-only; large arrays alias the mapping (zero
  /// copy, demand paging) and the OS drops clean pages under pressure.
  kMmap,
};

/// XXH64 (Yann Collet's xxHash, 64-bit variant) over `len` bytes.
/// Self-contained reimplementation — the container has no xxhash
/// package, and a checksum the reader and writer both embed must never
/// drift with an external dependency.
uint64_t XxHash64(const void* data, size_t len, uint64_t seed = 0);

}  // namespace subseq

#endif  // SUBSEQ_SNAPSHOT_FORMAT_H_
