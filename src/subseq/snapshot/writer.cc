#include "subseq/snapshot/writer.h"

#include <cerrno>
#include <cstring>

namespace subseq {
namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

Result<std::unique_ptr<SnapshotWriter>> SnapshotWriter::Create(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError(ErrnoMessage("cannot create snapshot", path));
  }
  auto writer = std::unique_ptr<SnapshotWriter>(new SnapshotWriter());
  writer->file_ = file;
  writer->path_ = path;
  SnapshotHeader header{};
  header.magic = kSnapshotMagic;
  header.format_version = kSnapshotFormatVersion;
  header.reserved = 0;
  SUBSEQ_RETURN_NOT_OK(writer->WriteRaw(&header, sizeof(header)));
  return writer;
}

SnapshotWriter::~SnapshotWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status SnapshotWriter::WriteRaw(const void* data, size_t size) {
  if (size == 0) return Status::OK();
  if (std::fwrite(data, 1, size, file_) != size) {
    return Status::IoError(ErrnoMessage("short write to snapshot", path_));
  }
  offset_ += size;
  return Status::OK();
}

Status SnapshotWriter::PadToAlignment() {
  static constexpr char kZeros[kSnapshotAlignment] = {};
  const size_t rem = offset_ % kSnapshotAlignment;
  if (rem == 0) return Status::OK();
  return WriteRaw(kZeros, kSnapshotAlignment - rem);
}

Status SnapshotWriter::AppendSection(std::string_view name, const void* data,
                                     size_t size) {
  if (finished_) {
    return Status::Internal("AppendSection after Finish on snapshot '" +
                            path_ + "'");
  }
  if (name.empty() || name.size() > kSnapshotMaxSectionName) {
    return Status::InvalidArgument(
        "snapshot section name must be 1.." +
        std::to_string(kSnapshotMaxSectionName) + " characters, got '" +
        std::string(name) + "'");
  }
  for (const SectionEntry& entry : entries_) {
    if (name == entry.name) {
      return Status::AlreadyExists("duplicate snapshot section '" +
                                   std::string(name) + "'");
    }
  }
  SUBSEQ_RETURN_NOT_OK(PadToAlignment());
  SectionEntry entry{};
  std::memcpy(entry.name, name.data(), name.size());
  entry.offset = offset_;
  entry.size = size;
  entry.checksum = XxHash64(data, size);
  SUBSEQ_RETURN_NOT_OK(WriteRaw(data, size));
  entries_.push_back(entry);
  return Status::OK();
}

Status SnapshotWriter::Finish() {
  if (finished_) {
    return Status::Internal("Finish called twice on snapshot '" + path_ + "'");
  }
  SUBSEQ_RETURN_NOT_OK(PadToAlignment());
  SnapshotFooterTail tail{};
  tail.table_offset = offset_;
  tail.section_count = entries_.size();
  tail.footer_magic = kSnapshotFooterMagic;
  SUBSEQ_RETURN_NOT_OK(WriteRaw(entries_.data(),
                                entries_.size() * sizeof(SectionEntry)));
  tail.file_size = offset_ + sizeof(tail);
  SUBSEQ_RETURN_NOT_OK(WriteRaw(&tail, sizeof(tail)));
  finished_ = true;
  if (std::fflush(file_) != 0) {
    return Status::IoError(ErrnoMessage("cannot flush snapshot", path_));
  }
  if (std::fclose(file_) != 0) {
    file_ = nullptr;
    return Status::IoError(ErrnoMessage("cannot close snapshot", path_));
  }
  file_ = nullptr;
  return Status::OK();
}

}  // namespace subseq
