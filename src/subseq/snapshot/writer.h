// SnapshotWriter: append-only producer of the snapshot format.
//
// Sections are streamed to disk as they are appended — nothing is
// buffered beyond stdio's block buffer and the 64-byte table entry per
// section — so an out-of-core build can serialize one shard, free it,
// and move on with O(shard) peak memory. Finish() writes the section
// table and footer tail; a file without a valid footer (writer crashed
// or Finish was never called) is rejected by SnapshotFile::Open.

#ifndef SUBSEQ_SNAPSHOT_WRITER_H_
#define SUBSEQ_SNAPSHOT_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "subseq/core/status.h"
#include "subseq/snapshot/format.h"

namespace subseq {

class SnapshotWriter {
 public:
  /// Creates (truncates) `path` and writes the header.
  static Result<std::unique_ptr<SnapshotWriter>> Create(
      const std::string& path);

  ~SnapshotWriter();
  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  /// Appends one named section of raw bytes. Names must be unique
  /// within the file, non-empty, and at most kSnapshotMaxSectionName
  /// characters. Empty sections (size 0) are allowed.
  Status AppendSection(std::string_view name, const void* data, size_t size);

  /// Appends a section holding a flat array of trivially copyable
  /// records.
  template <typename T>
  Status AppendPodSection(std::string_view name, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    return AppendSection(name, values.data(), values.size() * sizeof(T));
  }

  /// Appends a section holding exactly one trivially copyable struct.
  /// The caller must value-initialize the struct (zeroed padding) so
  /// the encoding stays canonical.
  template <typename T>
  Status AppendPodStruct(std::string_view name, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return AppendSection(name, &value, sizeof(T));
  }

  /// Writes the section table and footer tail, flushes, and closes the
  /// file. No appends are allowed afterwards. Must be called exactly
  /// once for the file to be loadable.
  Status Finish();

  /// Bytes written so far (header + padded payloads; after Finish,
  /// the final file size).
  uint64_t bytes_written() const { return offset_; }

  /// Number of sections appended so far.
  size_t section_count() const { return entries_.size(); }

 private:
  SnapshotWriter() = default;

  Status WriteRaw(const void* data, size_t size);
  Status PadToAlignment();

  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t offset_ = 0;
  std::vector<SectionEntry> entries_;
  bool finished_ = false;
};

}  // namespace subseq

#endif  // SUBSEQ_SNAPSHOT_WRITER_H_
