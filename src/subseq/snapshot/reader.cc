#include "subseq/snapshot/reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace subseq {
namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

Result<std::shared_ptr<const SnapshotFile>> SnapshotFile::Open(
    const std::string& path, SnapshotLoadMode mode) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("cannot open snapshot", path));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const Status status =
        Status::IoError(ErrnoMessage("cannot stat snapshot", path));
    ::close(fd);
    return status;
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);

  auto file = std::shared_ptr<SnapshotFile>(new SnapshotFile());
  file->path_ = path;
  file->mode_ = mode;
  file->size_ = size;

  if (mode == SnapshotLoadMode::kMmap && size > 0) {
    void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapping == MAP_FAILED) {
      const Status status =
          Status::IoError(ErrnoMessage("cannot mmap snapshot", path));
      ::close(fd);
      return status;
    }
    file->mapping_ = mapping;
    file->data_ = static_cast<const uint8_t*>(mapping);
  } else {
    file->owned_.resize(size);
    uint64_t done = 0;
    while (done < size) {
      const ssize_t n = ::read(fd, file->owned_.data() + done, size - done);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        const Status status =
            Status::IoError(ErrnoMessage("cannot read snapshot", path));
        ::close(fd);
        return status;
      }
      done += static_cast<uint64_t>(n);
    }
    file->data_ = file->owned_.data();
  }
  ::close(fd);

  SUBSEQ_RETURN_NOT_OK(file->Validate());
  return std::shared_ptr<const SnapshotFile>(std::move(file));
}

SnapshotFile::~SnapshotFile() {
  if (mapping_ != nullptr) {
    ::munmap(mapping_, size_);
    mapping_ = nullptr;
  }
}

Status SnapshotFile::Validate() {
  const std::string where = "snapshot '" + path_ + "'";
  if (size_ < sizeof(SnapshotHeader) + sizeof(SnapshotFooterTail)) {
    return Status::InvalidArgument(
        where + " is too small to be a snapshot (" + std::to_string(size_) +
        " bytes; a valid file has at least " +
        std::to_string(sizeof(SnapshotHeader) + sizeof(SnapshotFooterTail)) +
        ")");
  }

  SnapshotHeader header;
  std::memcpy(&header, data_, sizeof(header));
  if (header.magic != kSnapshotMagic) {
    return Status::InvalidArgument(where +
                                   ": bad magic (not a subseq snapshot)");
  }
  if (header.format_version != kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        where + ": unsupported snapshot format version " +
        std::to_string(header.format_version) + " (this build reads version " +
        std::to_string(kSnapshotFormatVersion) + ")");
  }

  SnapshotFooterTail tail;
  std::memcpy(&tail, data_ + size_ - sizeof(tail), sizeof(tail));
  if (tail.footer_magic != kSnapshotFooterMagic) {
    return Status::InvalidArgument(
        where + ": footer magic missing (file truncated or the writer "
                "never called Finish)");
  }
  if (tail.file_size != size_) {
    return Status::InvalidArgument(
        where + ": truncated — footer records " +
        std::to_string(tail.file_size) + " bytes but the file holds " +
        std::to_string(size_));
  }
  if (tail.table_offset % kSnapshotAlignment != 0 ||
      tail.table_offset < sizeof(SnapshotHeader) ||
      tail.section_count > (size_ - sizeof(tail)) / sizeof(SectionEntry) ||
      tail.table_offset + tail.section_count * sizeof(SectionEntry) !=
          size_ - sizeof(tail)) {
    return Status::InvalidArgument(
        where + ": section table out of bounds (offset " +
        std::to_string(tail.table_offset) + ", " +
        std::to_string(tail.section_count) + " sections)");
  }

  sections_.resize(tail.section_count);
  std::memcpy(sections_.data(), data_ + tail.table_offset,
              tail.section_count * sizeof(SectionEntry));

  uint64_t min_payload_offset = sizeof(SnapshotHeader);
  for (size_t i = 0; i < sections_.size(); ++i) {
    const SectionEntry& entry = sections_[i];
    if (std::memchr(entry.name, '\0', sizeof(entry.name)) == nullptr) {
      return Status::InvalidArgument(
          where + ": section table entry " + std::to_string(i) +
          " has an unterminated name");
    }
    const std::string_view name(entry.name);
    if (name.empty()) {
      return Status::InvalidArgument(where + ": section table entry " +
                                     std::to_string(i) + " has an empty name");
    }
    for (size_t j = 0; j < i; ++j) {
      if (name == sections_[j].name) {
        return Status::InvalidArgument(where + ": duplicate section '" +
                                       std::string(name) + "'");
      }
    }
    if (entry.offset % kSnapshotAlignment != 0) {
      return Status::InvalidArgument(
          where + " section '" + std::string(name) + "' at offset " +
          std::to_string(entry.offset) + ": misaligned payload");
    }
    if (entry.offset < min_payload_offset || entry.offset > tail.table_offset ||
        entry.size > tail.table_offset - entry.offset) {
      return Status::InvalidArgument(
          where + " section '" + std::string(name) + "' at offset " +
          std::to_string(entry.offset) + ": payload of " +
          std::to_string(entry.size) + " bytes reaches outside the file");
    }
    const uint64_t actual = XxHash64(data_ + entry.offset, entry.size);
    if (actual != entry.checksum) {
      return Status::InvalidArgument(
          where + " section '" + std::string(name) + "' at offset " +
          std::to_string(entry.offset) + ": checksum mismatch (stored " +
          std::to_string(entry.checksum) + ", computed " +
          std::to_string(actual) + ") — the file is corrupted");
    }
  }
  return Status::OK();
}

bool SnapshotFile::has_section(std::string_view name) const {
  for (const SectionEntry& entry : sections_) {
    if (name == entry.name) return true;
  }
  return false;
}

Result<std::span<const uint8_t>> SnapshotFile::section(
    std::string_view name) const {
  for (const SectionEntry& entry : sections_) {
    if (name == entry.name) {
      return std::span<const uint8_t>(data_ + entry.offset, entry.size);
    }
  }
  return Status::NotFound("snapshot '" + path_ + "' has no section '" +
                          std::string(name) + "'");
}

}  // namespace subseq
