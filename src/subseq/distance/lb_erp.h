// LB_ERP (Chen & Ng, VLDB 2004) — the |sum(Q) - sum(C)| lower bound
// for 1-D ERP with gap element 0. Every ERP path cost term is either
// |q_i - c_j| (a match) or |q_i - 0| / |c_j - 0| (a gap); summing the
// triangle inequality over any path telescopes to
//   |sum(Q) - sum(C)| <= ERP(Q, C).
// The bound needs only the candidate's element sum, so batched
// evaluation over a per-window sums array is a single abs-diff row —
// cheaper even than LB_Kim, and the ONLY cascade stage for ERP
// (LB_Kim and LB_Keogh are DTW bounds and are not admissible here).
//
// Admissibility requires the gap element to be exactly 0.0; the
// cascade wiring in frame/lb_prefilter.cc gates on that.

#ifndef SUBSEQ_DISTANCE_LB_ERP_H_
#define SUBSEQ_DISTANCE_LB_ERP_H_

#include <cstdint>
#include <span>

namespace subseq {

/// Precomputed element sum of one query sequence.
class LbErpSumBound {
 public:
  /// Captures sum(query), accumulated sequentially in ascending order —
  /// the same order the feature table sums candidate windows.
  explicit LbErpSumBound(std::span<const double> query);

  /// Scalar reference bound |sum(query) - sum(candidate)|. Valid for
  /// ANY candidate length (ERP aligns unequal lengths via gaps), so
  /// there is no length-mismatch escape hatch.
  double LowerBound(std::span<const double> candidate) const;

  /// Batched bounds over `count` candidates given their precomputed
  /// element sums: out[i] = |query_sum() - sums[i]|. Element-wise and
  /// exact — values are identical across dispatch levels and any
  /// regrouping into blocks.
  void LowerBoundMany(const double* sums, size_t count, double* out) const;

  double query_sum() const { return query_sum_; }

 private:
  double query_sum_;
};

}  // namespace subseq

#endif  // SUBSEQ_DISTANCE_LB_ERP_H_
