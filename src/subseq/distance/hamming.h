// Hamming distance: number of mismatching positions between equal-length
// sequences. Metric and consistent; rigid (no shifts, no gaps).

#ifndef SUBSEQ_DISTANCE_HAMMING_H_
#define SUBSEQ_DISTANCE_HAMMING_H_

#include <span>

#include "subseq/distance/distance.h"

namespace subseq {

/// Hamming distance over any equality-comparable element type;
/// +infinity if |a| != |b|.
template <typename T>
class HammingDistance final : public SequenceDistance<T> {
 public:
  double Compute(std::span<const T> a, std::span<const T> b) const override {
    if (a.size() != b.size()) return kInfiniteDistance;
    int64_t mismatches = 0;
    for (size_t i = 0; i < a.size(); ++i) {
      mismatches += (a[i] == b[i]) ? 0 : 1;
    }
    return static_cast<double>(mismatches);
  }

  double ComputeBounded(std::span<const T> a, std::span<const T> b,
                        double upper_bound) const override {
    if (a.size() != b.size()) return kInfiniteDistance;
    int64_t mismatches = 0;
    for (size_t i = 0; i < a.size(); ++i) {
      mismatches += (a[i] == b[i]) ? 0 : 1;
      if (static_cast<double>(mismatches) > upper_bound) {
        return kInfiniteDistance;
      }
    }
    return static_cast<double>(mismatches);
  }

  std::string_view name() const override { return "hamming"; }
  bool is_metric() const override { return true; }
  bool is_consistent() const override { return true; }
};

extern template class HammingDistance<char>;
extern template class HammingDistance<double>;

}  // namespace subseq

#endif  // SUBSEQ_DISTANCE_HAMMING_H_
