#include "subseq/distance/lb_erp.h"

#include "subseq/distance/simd/kernels.h"

namespace subseq {

LbErpSumBound::LbErpSumBound(std::span<const double> query) {
  double sum = 0.0;
  for (const double v : query) sum += v;
  query_sum_ = sum;
}

double LbErpSumBound::LowerBound(std::span<const double> candidate) const {
  double sum = 0.0;
  for (const double v : candidate) sum += v;
  double out;
  simd::GetKernels().abs_diff_row(query_sum_, &sum, &out, 1);
  return out;
}

void LbErpSumBound::LowerBoundMany(const double* sums, size_t count,
                                   double* out) const {
  simd::GetKernels().abs_diff_row(query_sum_, sums, out, count);
}

}  // namespace subseq
