#include "subseq/distance/lb_kim.h"

#include <algorithm>
#include <cmath>

#include "subseq/distance/simd/kernels.h"

namespace subseq {

LbKimBound::LbKimBound(std::span<const double> query) {
  length_ = static_cast<int32_t>(query.size());
  if (length_ == 0) {
    q_first_ = q_last_ = q_min_ = q_max_ = 0.0;
    return;
  }
  q_first_ = query.front();
  q_last_ = query.back();
  // Sequential accumulation in ascending order — the same order the
  // feature table uses — so query and candidate features round
  // identically.
  double mn = query[0];
  double mx = query[0];
  for (size_t i = 1; i < query.size(); ++i) {
    mn = std::min(mn, query[i]);
    mx = std::max(mx, query[i]);
  }
  q_min_ = mn;
  q_max_ = mx;
}

double LbKimBound::LowerBound(std::span<const double> candidate) const {
  if (static_cast<int32_t>(candidate.size()) != length_ || length_ == 0) {
    return 0.0;
  }
  double cmin = candidate[0];
  double cmax = candidate[0];
  for (size_t i = 1; i < candidate.size(); ++i) {
    cmin = std::min(cmin, candidate[i]);
    cmax = std::max(cmax, candidate[i]);
  }
  double out;
  simd::GetKernels().lb_kim_block(q_first_, q_last_, q_min_, q_max_,
                                  length_ > 1 ? 1 : 0, &candidate.front(),
                                  &candidate.back(), &cmin, &cmax, 1, &out);
  return out;
}

void LbKimBound::LowerBoundMany(const double* first, const double* last,
                                const double* cmin, const double* cmax,
                                size_t count, double* out) const {
  if (length_ == 0) {
    std::fill(out, out + count, 0.0);
    return;
  }
  simd::GetKernels().lb_kim_block(q_first_, q_last_, q_min_, q_max_,
                                  length_ > 1 ? 1 : 0, first, last, cmin,
                                  cmax, count, out);
}

}  // namespace subseq
