// Minkowski (Lp) lockstep distances: the L1 / L2 / L-infinity family over
// equal-length sequences. Generalizes EuclideanDistance (p = 2); all
// members with p >= 1 are metric and consistent (an aligned subsequence
// pair aggregates a subset of the per-position ground costs).

#ifndef SUBSEQ_DISTANCE_LP_H_
#define SUBSEQ_DISTANCE_LP_H_

#include <algorithm>
#include <cmath>
#include <span>
#include <type_traits>

#include "subseq/core/check.h"
#include "subseq/core/types.h"
#include "subseq/distance/distance.h"
#include "subseq/distance/ground.h"
#include "subseq/distance/simd/kernels.h"
#include "subseq/distance/simd/lanes.h"

namespace subseq {

/// Sentinel p for the L-infinity (Chebyshev) member.
inline constexpr double kLInfinity = 0.0;

/// (sum_i ground(a_i, b_i)^p)^(1/p), or max_i ground(a_i, b_i) for
/// p == kLInfinity; +infinity when |a| != |b|. Requires p >= 1 or
/// p == kLInfinity.
template <typename T, typename Ground>
class MinkowskiDistance final : public SequenceDistance<T> {
 public:
  explicit MinkowskiDistance(double p) : p_(p) {
    SUBSEQ_CHECK(p == kLInfinity || p >= 1.0);
  }

  double Compute(std::span<const T> a, std::span<const T> b) const override {
    return ComputeBounded(a, b, kInfiniteDistance);
  }

  double ComputeBounded(std::span<const T> a, std::span<const T> b,
                        double upper_bound) const override {
    if (a.size() != b.size()) return kInfiniteDistance;
    if (p_ == kLInfinity) {
      double max_cost = 0.0;
      for (size_t i = 0; i < a.size(); ++i) {
        max_cost = std::max(max_cost, Ground::Between(a[i], b[i]));
        if (max_cost > upper_bound) return kInfiniteDistance;
      }
      return max_cost;
    }
    const double bound_pow =
        upper_bound == kInfiniteDistance ? kInfiniteDistance
                                         : std::pow(upper_bound, p_);
    double sum = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      sum += std::pow(Ground::Between(a[i], b[i]), p_);
      // Guard the rare rounding case exactly at the bound.
      if (sum > bound_pow && std::pow(sum, 1.0 / p_) > upper_bound) {
        return kInfiniteDistance;
      }
    }
    return std::pow(sum, 1.0 / p_);
  }

  /// Batched override. Only the L-infinity member vectorizes: the
  /// finite-p path evaluates std::pow(d, p) per element even at p = 1,
  /// and no lane kernel can promise bitwise pow() equality, so those
  /// members keep the per-pair loop.
  void ComputeMany(std::span<const T> a,
                   std::span<const std::span<const T>> bs,
                   double* out) const override {
    constexpr bool kScalar1d = std::is_same_v<T, double> &&
                               std::is_same_v<Ground, ScalarGround>;
    constexpr bool kTraj = std::is_same_v<T, Point2d> &&
                           std::is_same_v<Ground, Point2dGround>;
    if constexpr (kScalar1d || kTraj) {
      if (p_ == kLInfinity) {
        const simd::Kernels& kernels = simd::GetKernels();
        simd::ForEachLaneGroup<T>(
            bs, a.size(), kInfiniteDistance, out,
            [&](const double* lanes, const double* lanes_y, double* out4) {
              if constexpr (kScalar1d) {
                kernels.linf4_f64(a.data(), lanes, a.size(), out4);
              } else {
                kernels.linf4_p2d(a.data(), lanes, lanes_y, a.size(),
                                  out4);
              }
            },
            [&](size_t k) { out[k] = Compute(a, bs[k]); });
        return;
      }
    }
    SequenceDistance<T>::ComputeMany(a, bs, out);
  }

  std::string_view name() const override {
    return p_ == kLInfinity ? "linf" : (p_ == 1.0 ? "l1" : "lp");
  }
  bool is_metric() const override { return true; }
  bool is_consistent() const override { return true; }

  double p() const { return p_; }

 private:
  double p_;
};

/// Manhattan distance over scalar series.
using L1Distance1D = MinkowskiDistance<double, ScalarGround>;
/// Chebyshev distance over scalar series (construct with kLInfinity).
using LInfDistance1D = MinkowskiDistance<double, ScalarGround>;
/// Minkowski distances over trajectories.
using MinkowskiDistance2D = MinkowskiDistance<Point2d, Point2dGround>;

extern template class MinkowskiDistance<double, ScalarGround>;
extern template class MinkowskiDistance<Point2d, Point2dGround>;

}  // namespace subseq

#endif  // SUBSEQ_DISTANCE_LP_H_
