// Dynamic Time Warping (Berndt & Clifford 1994; Keogh 2002).
//
// DTW is *consistent* (Section 4 of the paper) but NOT metric — it violates
// the triangle inequality — so it can be used with the paper's window
// filter (which only needs consistency) but not with the metric indexes.
// An optional Sakoe-Chiba band constrains |i - j| <= band.

#ifndef SUBSEQ_DISTANCE_DTW_H_
#define SUBSEQ_DISTANCE_DTW_H_

#include <span>

#include "subseq/core/types.h"
#include "subseq/distance/alignment.h"
#include "subseq/distance/distance.h"
#include "subseq/distance/ground.h"

namespace subseq {

/// DTW distance: minimum over warping paths of the *sum* of ground costs.
template <typename T, typename Ground>
class DtwDistance final : public SequenceDistance<T> {
 public:
  /// `band` restricts the warp to |i - j| <= band (Sakoe-Chiba);
  /// a negative band means unconstrained.
  explicit DtwDistance(int band = -1) : band_(band) {}

  double Compute(std::span<const T> a, std::span<const T> b) const override;

  double ComputeBounded(std::span<const T> a, std::span<const T> b,
                        double upper_bound) const override;

  /// Batched override: unconstrained DTW runs equal-length candidates
  /// through the vertical 4-lane kernel (bit-identical per lane to
  /// Compute); banded instances and stragglers use the per-pair path.
  void ComputeMany(std::span<const T> a,
                   std::span<const std::span<const T>> bs,
                   double* out) const override;

  /// Computes the distance together with an optimal warping path
  /// (couplings are all kMatch; indices may repeat on one side).
  Alignment ComputeWithPath(std::span<const T> a, std::span<const T> b) const;

  std::string_view name() const override { return "dtw"; }
  bool is_metric() const override { return false; }
  /// The band breaks consistency (a window's optimal sub-alignment may
  /// fall outside the band), so only the unconstrained variant advertises
  /// the property.
  bool is_consistent() const override { return band_ < 0; }

  int band() const { return band_; }

 private:
  int band_;
};

/// DTW over scalar time series.
using DtwDistance1D = DtwDistance<double, ScalarGround>;
/// DTW over planar trajectories.
using DtwDistance2D = DtwDistance<Point2d, Point2dGround>;

extern template class DtwDistance<double, ScalarGround>;
extern template class DtwDistance<Point2d, Point2dGround>;

}  // namespace subseq

#endif  // SUBSEQ_DISTANCE_DTW_H_
