#include "subseq/distance/dtw.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace subseq {

namespace {

// Indexing helper for the (n+1) x (m+1) DP table flattened row-major.
inline size_t Idx(size_t row, size_t col, size_t stride) {
  return row * stride + col;
}

}  // namespace

template <typename T, typename Ground>
double DtwDistance<T, Ground>::Compute(std::span<const T> a,
                                       std::span<const T> b) const {
  return ComputeBounded(a, b, kInfiniteDistance);
}

template <typename T, typename Ground>
double DtwDistance<T, Ground>::ComputeBounded(std::span<const T> a,
                                              std::span<const T> b,
                                              double upper_bound) const {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 && m == 0) return 0.0;
  if (n == 0 || m == 0) return kInfiniteDistance;
  if (band_ >= 0 &&
      std::abs(static_cast<long>(n) - static_cast<long>(m)) > band_) {
    return kInfiniteDistance;
  }

  // Two-row DP over the (n+1) x (m+1) grid; row 0 / col 0 are +inf walls
  // except the (0,0) corner.
  std::vector<double> prev(m + 1, kInfiniteDistance);
  std::vector<double> curr(m + 1, kInfiniteDistance);
  prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), kInfiniteDistance);
    size_t j_lo = 1;
    size_t j_hi = m;
    if (band_ >= 0) {
      const long lo = static_cast<long>(i) - band_;
      const long hi = static_cast<long>(i) + band_;
      j_lo = static_cast<size_t>(std::max(1L, lo));
      j_hi = static_cast<size_t>(std::min(static_cast<long>(m), hi));
    }
    double row_min = kInfiniteDistance;
    for (size_t j = j_lo; j <= j_hi; ++j) {
      const double best_prev =
          std::min({prev[j - 1], prev[j], curr[j - 1]});
      if (best_prev == kInfiniteDistance) continue;
      const double cost = Ground::Between(a[i - 1], b[j - 1]);
      curr[j] = best_prev + cost;
      row_min = std::min(row_min, curr[j]);
    }
    if (row_min > upper_bound) return kInfiniteDistance;
    std::swap(prev, curr);
  }
  return prev[m];
}

template <typename T, typename Ground>
Alignment DtwDistance<T, Ground>::ComputeWithPath(std::span<const T> a,
                                                  std::span<const T> b) const {
  const size_t n = a.size();
  const size_t m = b.size();
  Alignment result;
  if (n == 0 || m == 0) {
    result.distance = (n == 0 && m == 0) ? 0.0 : kInfiniteDistance;
    return result;
  }

  const size_t stride = m + 1;
  std::vector<double> dp((n + 1) * stride, kInfiniteDistance);
  dp[Idx(0, 0, stride)] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      if (band_ >= 0 && std::abs(static_cast<long>(i) -
                                 static_cast<long>(j)) > band_) {
        continue;
      }
      const double best_prev = std::min({dp[Idx(i - 1, j - 1, stride)],
                                         dp[Idx(i - 1, j, stride)],
                                         dp[Idx(i, j - 1, stride)]});
      if (best_prev == kInfiniteDistance) continue;
      dp[Idx(i, j, stride)] = best_prev + Ground::Between(a[i - 1], b[j - 1]);
    }
  }
  result.distance = dp[Idx(n, m, stride)];
  if (result.distance == kInfiniteDistance) return result;

  // Backtrack from (n, m) to (1, 1).
  size_t i = n;
  size_t j = m;
  while (i >= 1 && j >= 1) {
    result.couplings.push_back(
        Coupling{static_cast<int32_t>(i - 1), static_cast<int32_t>(j - 1),
                 AlignOp::kMatch, Ground::Between(a[i - 1], b[j - 1])});
    if (i == 1 && j == 1) break;
    const double diag = dp[Idx(i - 1, j - 1, stride)];
    const double up = dp[Idx(i - 1, j, stride)];
    const double left = dp[Idx(i, j - 1, stride)];
    if (diag <= up && diag <= left) {
      --i;
      --j;
    } else if (up <= left) {
      --i;
    } else {
      --j;
    }
  }
  std::reverse(result.couplings.begin(), result.couplings.end());
  return result;
}

template class DtwDistance<double, ScalarGround>;
template class DtwDistance<Point2d, Point2dGround>;

}  // namespace subseq
