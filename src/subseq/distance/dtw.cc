#include "subseq/distance/dtw.h"

#include <algorithm>
#include <cstdlib>
#include <type_traits>
#include <vector>

#include "subseq/distance/simd/cpu_features.h"
#include "subseq/distance/simd/ground_rows.h"
#include "subseq/distance/simd/kernels.h"

namespace subseq {

namespace {

// Indexing helper for the (n+1) x (m+1) DP table flattened row-major.
inline size_t Idx(size_t row, size_t col, size_t stride) {
  return row * stride + col;
}

}  // namespace

template <typename T, typename Ground>
double DtwDistance<T, Ground>::Compute(std::span<const T> a,
                                       std::span<const T> b) const {
  return ComputeBounded(a, b, kInfiniteDistance);
}

template <typename T, typename Ground>
double DtwDistance<T, Ground>::ComputeBounded(std::span<const T> a,
                                              std::span<const T> b,
                                              double upper_bound) const {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 && m == 0) return 0.0;
  if (n == 0 || m == 0) return kInfiniteDistance;
  if (band_ >= 0 && std::abs(IndexDiff(n, m)) > band_) {
    return kInfiniteDistance;
  }

  const simd::Kernels& kernels = simd::GetKernels();

  // Long unconstrained single-pair calls take the anti-diagonal
  // wavefront kernel (bit-identical to the row path per kernels.h; the
  // threshold knob trades wall-clock only).
  if (band_ < 0) {
    const int wavefront = simd::AntidiagThreshold();
    if (wavefront >= 0 &&
        std::min(n, m) >= static_cast<size_t>(wavefront)) {
      if constexpr (std::is_same_v<T, double> &&
                    std::is_same_v<Ground, ScalarGround>) {
        return kernels.dtw_antidiag_f64(a.data(), n, b.data(), m,
                                        upper_bound);
      } else if constexpr (std::is_same_v<T, Point2d> &&
                           std::is_same_v<Ground, Point2dGround>) {
        return kernels.dtw_antidiag_p2d(a.data(), n, b.data(), m,
                                        upper_bound);
      }
    }
  }

  // Two-row DP over the (n+1) x (m+1) grid; row 0 / col 0 are +inf walls
  // except the (0,0) corner. The cost row and the row combine go through
  // the dispatched kernels (bit-identical at every level).
  std::vector<double> prev(m + 1, kInfiniteDistance);
  std::vector<double> curr(m + 1, kInfiniteDistance);
  std::vector<double> cost(m + 1, 0.0);
  prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), kInfiniteDistance);
    size_t j_lo = 1;
    size_t j_hi = m;
    if (band_ >= 0) {
      const std::ptrdiff_t lo = SignedIndex(i) - band_;
      const std::ptrdiff_t hi = SignedIndex(i) + band_;
      j_lo = static_cast<size_t>(std::max<std::ptrdiff_t>(1, lo));
      j_hi = static_cast<size_t>(std::min(SignedIndex(m), hi));
    }
    simd::CostRowFrom<T, Ground>(kernels, a[i - 1], b.data() + (j_lo - 1),
                                 cost.data() + j_lo, j_hi - j_lo + 1);
    const double row_min =
        kernels.dtw_combine_row(prev.data(), curr.data(), cost.data(),
                                j_lo, j_hi);
    if (row_min > upper_bound) return kInfiniteDistance;
    std::swap(prev, curr);
  }
  return prev[m];
}

template <typename T, typename Ground>
void DtwDistance<T, Ground>::ComputeMany(
    std::span<const T> a, std::span<const std::span<const T>> bs,
    double* out) const {
  constexpr bool kScalar1d = std::is_same_v<T, double> &&
                             std::is_same_v<Ground, ScalarGround>;
  constexpr bool kTraj = std::is_same_v<T, Point2d> &&
                         std::is_same_v<Ground, Point2dGround>;
  if constexpr (!kScalar1d && !kTraj) {
    SequenceDistance<T>::ComputeMany(a, bs, out);
  } else {
    const size_t n = a.size();
    if (band_ >= 0 || n == 0) {
      // Banded warps and empty queries keep the per-pair path (the
      // vertical kernel is unconstrained-only; results are identical
      // either way).
      SequenceDistance<T>::ComputeMany(a, bs, out);
      return;
    }
    const simd::Kernels& kernels = simd::GetKernels();
    std::vector<double> lanes;
    std::vector<double> lanes_y;
    size_t group[4];
    size_t pending = 0;
    size_t group_len = 0;
    auto flush = [&] {
      if (pending == 4) {
        lanes.resize(4 * group_len);
        double out4[4];
        if constexpr (kScalar1d) {
          for (size_t j = 0; j < group_len; ++j) {
            for (size_t g = 0; g < 4; ++g) {
              lanes[j * 4 + g] = bs[group[g]][j];
            }
          }
          kernels.dtw4_f64(a.data(), n, lanes.data(), group_len, out4);
        } else {
          lanes_y.resize(4 * group_len);
          for (size_t j = 0; j < group_len; ++j) {
            for (size_t g = 0; g < 4; ++g) {
              lanes[j * 4 + g] = bs[group[g]][j].x;
              lanes_y[j * 4 + g] = bs[group[g]][j].y;
            }
          }
          kernels.dtw4_p2d(a.data(), n, lanes.data(), lanes_y.data(),
                           group_len, out4);
        }
        for (size_t g = 0; g < 4; ++g) out[group[g]] = out4[g];
      } else {
        for (size_t g = 0; g < pending; ++g) {
          out[group[g]] = Compute(a, bs[group[g]]);
        }
      }
      pending = 0;
    };
    for (size_t k = 0; k < bs.size(); ++k) {
      const size_t m = bs[k].size();
      if (m == 0) {
        out[k] = kInfiniteDistance;  // n > 0, m == 0
        continue;
      }
      if (pending > 0 && m != group_len) flush();
      group_len = m;
      group[pending++] = k;
      if (pending == 4) flush();
    }
    flush();
  }
}

template <typename T, typename Ground>
Alignment DtwDistance<T, Ground>::ComputeWithPath(std::span<const T> a,
                                                  std::span<const T> b) const {
  const size_t n = a.size();
  const size_t m = b.size();
  Alignment result;
  if (n == 0 || m == 0) {
    result.distance = (n == 0 && m == 0) ? 0.0 : kInfiniteDistance;
    return result;
  }

  const size_t stride = m + 1;
  std::vector<double> dp((n + 1) * stride, kInfiniteDistance);
  dp[Idx(0, 0, stride)] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      if (band_ >= 0 && std::abs(IndexDiff(i, j)) > band_) {
        continue;
      }
      const double best_prev = std::min({dp[Idx(i - 1, j - 1, stride)],
                                         dp[Idx(i - 1, j, stride)],
                                         dp[Idx(i, j - 1, stride)]});
      if (best_prev == kInfiniteDistance) continue;
      dp[Idx(i, j, stride)] = best_prev + Ground::Between(a[i - 1], b[j - 1]);
    }
  }
  result.distance = dp[Idx(n, m, stride)];
  if (result.distance == kInfiniteDistance) return result;

  // Backtrack from (n, m) to (1, 1).
  size_t i = n;
  size_t j = m;
  while (i >= 1 && j >= 1) {
    result.couplings.push_back(
        Coupling{static_cast<int32_t>(i - 1), static_cast<int32_t>(j - 1),
                 AlignOp::kMatch, Ground::Between(a[i - 1], b[j - 1])});
    if (i == 1 && j == 1) break;
    const double diag = dp[Idx(i - 1, j - 1, stride)];
    const double up = dp[Idx(i - 1, j, stride)];
    const double left = dp[Idx(i, j - 1, stride)];
    if (diag <= up && diag <= left) {
      --i;
      --j;
    } else if (up <= left) {
      --i;
    } else {
      --j;
    }
  }
  std::reverse(result.couplings.begin(), result.couplings.end());
  return result;
}

template class DtwDistance<double, ScalarGround>;
template class DtwDistance<Point2d, Point2dGround>;

}  // namespace subseq
