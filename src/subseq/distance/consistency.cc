#include "subseq/distance/consistency.h"

#include <cstdio>

namespace subseq {

template <typename T>
std::optional<ConsistencyViolation> FindConsistencyViolation(
    const SequenceDistance<T>& dist, std::span<const T> q,
    std::span<const T> x, int32_t min_len) {
  const int32_t nq = static_cast<int32_t>(q.size());
  const int32_t nx = static_cast<int32_t>(x.size());
  const double full = dist.Compute(q, x);

  for (int32_t a = 0; a < nx; ++a) {
    for (int32_t b = a + min_len; b <= nx; ++b) {
      const auto sx = x.subspan(static_cast<size_t>(a),
                                static_cast<size_t>(b - a));
      double best = kInfiniteDistance;
      for (int32_t c = 0; c < nq && best > full; ++c) {
        for (int32_t d = c + 1; d <= nq && best > full; ++d) {
          const auto sq = q.subspan(static_cast<size_t>(c),
                                    static_cast<size_t>(d - c));
          best = std::min(best, dist.Compute(sq, sx));
        }
      }
      if (best > full) {
        return ConsistencyViolation{Interval{a, b}, best, full};
      }
    }
  }
  return std::nullopt;
}

template <typename T>
std::optional<std::string> CheckMetricAxioms(
    const SequenceDistance<T>& dist,
    const std::vector<std::vector<T>>& samples, double tolerance) {
  const size_t n = samples.size();
  // Cache pairwise distances.
  std::vector<double> d(n * n, 0.0);
  auto at = [&](size_t i, size_t j) -> double& { return d[i * n + j]; };
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      at(i, j) = dist.Compute(std::span<const T>(samples[i]),
                              std::span<const T>(samples[j]));
    }
  }

  char buf[160];
  for (size_t i = 0; i < n; ++i) {
    if (at(i, i) != 0.0) {
      std::snprintf(buf, sizeof(buf), "identity violated: d(s%zu, s%zu) = %g",
                    i, i, at(i, i));
      return std::string(buf);
    }
    for (size_t j = 0; j < n; ++j) {
      if (at(i, j) < 0.0) {
        std::snprintf(buf, sizeof(buf),
                      "non-negativity violated: d(s%zu, s%zu) = %g", i, j,
                      at(i, j));
        return std::string(buf);
      }
      if (at(i, j) != at(j, i)) {
        std::snprintf(buf, sizeof(buf),
                      "symmetry violated: d(s%zu, s%zu)=%g vs d(s%zu, s%zu)=%g",
                      i, j, at(i, j), j, i, at(j, i));
        return std::string(buf);
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      for (size_t k = 0; k < n; ++k) {
        if (at(i, k) > at(i, j) + at(j, k) + tolerance) {
          std::snprintf(
              buf, sizeof(buf),
              "triangle violated: d(s%zu, s%zu)=%g > d(s%zu, s%zu)=%g + "
              "d(s%zu, s%zu)=%g",
              i, k, at(i, k), i, j, at(i, j), j, k, at(j, k));
          return std::string(buf);
        }
      }
    }
  }
  return std::nullopt;
}

template std::optional<ConsistencyViolation> FindConsistencyViolation<char>(
    const SequenceDistance<char>&, std::span<const char>,
    std::span<const char>, int32_t);
template std::optional<ConsistencyViolation> FindConsistencyViolation<double>(
    const SequenceDistance<double>&, std::span<const double>,
    std::span<const double>, int32_t);
template std::optional<ConsistencyViolation>
FindConsistencyViolation<Point2d>(const SequenceDistance<Point2d>&,
                                  std::span<const Point2d>,
                                  std::span<const Point2d>, int32_t);

template std::optional<std::string> CheckMetricAxioms<char>(
    const SequenceDistance<char>&, const std::vector<std::vector<char>>&,
    double);
template std::optional<std::string> CheckMetricAxioms<double>(
    const SequenceDistance<double>&, const std::vector<std::vector<double>>&,
    double);
template std::optional<std::string> CheckMetricAxioms<Point2d>(
    const SequenceDistance<Point2d>&,
    const std::vector<std::vector<Point2d>>&, double);

}  // namespace subseq
