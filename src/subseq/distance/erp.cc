#include "subseq/distance/erp.h"

#include <algorithm>
#include <type_traits>
#include <vector>

#include "subseq/distance/simd/cpu_features.h"
#include "subseq/distance/simd/ground_rows.h"
#include "subseq/distance/simd/kernels.h"

namespace subseq {

template <typename T, typename Ground>
double ErpDistance<T, Ground>::Compute(std::span<const T> a,
                                       std::span<const T> b) const {
  return ComputeBounded(a, b, kInfiniteDistance);
}

template <typename T, typename Ground>
double ErpDistance<T, Ground>::ComputeBounded(std::span<const T> a,
                                              std::span<const T> b,
                                              double upper_bound) const {
  const size_t n = a.size();
  const size_t m = b.size();
  const T gap = Ground::GapElement();

  const simd::Kernels& kernels = simd::GetKernels();

  // Long single-pair calls take the anti-diagonal wavefront kernel
  // (bit-identical to the row path per kernels.h; the threshold knob
  // trades wall-clock only). The kernel requires n, m >= 1.
  if (n >= 1 && m >= 1) {
    const int wavefront = simd::AntidiagThreshold();
    if (wavefront >= 0 &&
        std::min(n, m) >= static_cast<size_t>(wavefront)) {
      if constexpr (std::is_same_v<T, double> &&
                    std::is_same_v<Ground, ScalarGround>) {
        return kernels.erp_antidiag_f64(a.data(), n, b.data(), m, gap,
                                        upper_bound);
      } else if constexpr (std::is_same_v<T, Point2d> &&
                           std::is_same_v<Ground, Point2dGround>) {
        return kernels.erp_antidiag_p2d(a.data(), n, b.data(), m, gap,
                                        upper_bound);
      }
    }
  }

  // prev/curr are rows of the (n+1) x (m+1) table. The per-row cost
  // rows (substitution against b, gap against b) and the row combine
  // run through the dispatched kernels (bit-identical at every level).
  std::vector<double> prev(m + 1, 0.0);
  std::vector<double> curr(m + 1, 0.0);
  std::vector<double> sub(m + 1, 0.0);
  std::vector<double> gap_b(m + 1, 0.0);
  simd::CostRowTo<T, Ground>(kernels, b.data(), gap, gap_b.data() + 1, m);
  for (size_t j = 1; j <= m; ++j) {
    prev[j] = prev[j - 1] + gap_b[j];
  }
  for (size_t i = 1; i <= n; ++i) {
    const double gap_a = Ground::Between(a[i - 1], gap);
    simd::CostRowFrom<T, Ground>(kernels, a[i - 1], b.data(),
                                 sub.data() + 1, m);
    const double row_min = kernels.gap_combine_row(
        prev.data(), curr.data(), sub.data(), gap_a, gap_b.data(), m);
    // Costs are non-negative, so the row minimum lower-bounds the result.
    if (row_min > upper_bound) return kInfiniteDistance;
    std::swap(prev, curr);
  }
  return prev[m];
}

template <typename T, typename Ground>
Alignment ErpDistance<T, Ground>::ComputeWithPath(std::span<const T> a,
                                                  std::span<const T> b) const {
  const size_t n = a.size();
  const size_t m = b.size();
  const size_t stride = m + 1;
  const T gap = Ground::GapElement();

  std::vector<double> dp((n + 1) * stride, 0.0);
  for (size_t j = 1; j <= m; ++j) {
    dp[j] = dp[j - 1] + Ground::Between(b[j - 1], gap);
  }
  for (size_t i = 1; i <= n; ++i) {
    dp[i * stride] = dp[(i - 1) * stride] + Ground::Between(a[i - 1], gap);
    for (size_t j = 1; j <= m; ++j) {
      const double match =
          dp[(i - 1) * stride + (j - 1)] + Ground::Between(a[i - 1], b[j - 1]);
      const double gap_a =
          dp[(i - 1) * stride + j] + Ground::Between(a[i - 1], gap);
      const double gap_b =
          dp[i * stride + (j - 1)] + Ground::Between(b[j - 1], gap);
      dp[i * stride + j] = std::min({match, gap_a, gap_b});
    }
  }

  Alignment result;
  result.distance = dp[n * stride + m];

  // Backtrack.
  size_t i = n;
  size_t j = m;
  while (i > 0 || j > 0) {
    const double here = dp[i * stride + j];
    if (i > 0 && j > 0) {
      const double match_cost = Ground::Between(a[i - 1], b[j - 1]);
      if (dp[(i - 1) * stride + (j - 1)] + match_cost == here) {
        result.couplings.push_back(Coupling{static_cast<int32_t>(i - 1),
                                            static_cast<int32_t>(j - 1),
                                            AlignOp::kMatch, match_cost});
        --i;
        --j;
        continue;
      }
    }
    if (i > 0) {
      const double gap_cost = Ground::Between(a[i - 1], gap);
      if (dp[(i - 1) * stride + j] + gap_cost == here) {
        result.couplings.push_back(Coupling{static_cast<int32_t>(i - 1),
                                            static_cast<int32_t>(j),
                                            AlignOp::kGapA, gap_cost});
        --i;
        continue;
      }
    }
    // Must be a gap on b.
    const double gap_cost = Ground::Between(b[j - 1], gap);
    result.couplings.push_back(Coupling{static_cast<int32_t>(i),
                                        static_cast<int32_t>(j - 1),
                                        AlignOp::kGapB, gap_cost});
    --j;
  }
  std::reverse(result.couplings.begin(), result.couplings.end());
  return result;
}

template class ErpDistance<double, ScalarGround>;
template class ErpDistance<Point2d, Point2dGround>;

}  // namespace subseq
