#include "subseq/distance/lp.h"

namespace subseq {

template class MinkowskiDistance<double, ScalarGround>;
template class MinkowskiDistance<Point2d, Point2dGround>;

}  // namespace subseq
