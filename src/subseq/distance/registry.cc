#include "subseq/distance/registry.h"

#include <string>

#include "subseq/distance/dtw.h"
#include "subseq/distance/erp.h"
#include "subseq/distance/euclidean.h"
#include "subseq/distance/frechet.h"
#include "subseq/distance/hamming.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/distance/lp.h"
#include "subseq/distance/weighted_edit.h"

namespace subseq {

namespace {

Status UnknownDistance(std::string_view name) {
  return Status::NotFound("unknown distance measure: " + std::string(name));
}

}  // namespace

Result<std::unique_ptr<SequenceDistance<char>>> MakeStringDistance(
    std::string_view name) {
  if (name == "levenshtein") {
    return std::unique_ptr<SequenceDistance<char>>(
        new LevenshteinDistance<char>());
  }
  if (name == "hamming") {
    return std::unique_ptr<SequenceDistance<char>>(
        new HammingDistance<char>());
  }
  if (name == "weighted-edit") {
    return std::unique_ptr<SequenceDistance<char>>(
        new WeightedEditDistance(SubstitutionCostModel::ProteinClasses()));
  }
  return UnknownDistance(name);
}

Result<std::unique_ptr<SequenceDistance<double>>> MakeScalarDistance(
    std::string_view name) {
  using Ptr = std::unique_ptr<SequenceDistance<double>>;
  if (name == "erp") return Ptr(new ErpDistance1D());
  if (name == "frechet") return Ptr(new FrechetDistance1D());
  if (name == "dtw") return Ptr(new DtwDistance1D());
  if (name == "euclidean") return Ptr(new EuclideanDistance1D());
  if (name == "levenshtein") return Ptr(new LevenshteinDistance<double>());
  if (name == "hamming") return Ptr(new HammingDistance<double>());
  if (name == "l1") return Ptr(new L1Distance1D(1.0));
  if (name == "linf") return Ptr(new LInfDistance1D(kLInfinity));
  return UnknownDistance(name);
}

Result<std::unique_ptr<SequenceDistance<Point2d>>> MakeTrajectoryDistance(
    std::string_view name) {
  using Ptr = std::unique_ptr<SequenceDistance<Point2d>>;
  if (name == "erp") return Ptr(new ErpDistance2D());
  if (name == "frechet") return Ptr(new FrechetDistance2D());
  if (name == "dtw") return Ptr(new DtwDistance2D());
  if (name == "euclidean") return Ptr(new EuclideanDistance2D());
  if (name == "l1") return Ptr(new MinkowskiDistance2D(1.0));
  if (name == "linf") return Ptr(new MinkowskiDistance2D(kLInfinity));
  return UnknownDistance(name);
}

std::vector<std::string_view> ListStringDistances() {
  return {"levenshtein", "hamming", "weighted-edit"};
}

std::vector<std::string_view> ListScalarDistances() {
  return {"erp",    "frechet",     "dtw",     "euclidean",
          "l1",     "linf",        "levenshtein", "hamming"};
}

std::vector<std::string_view> ListTrajectoryDistances() {
  return {"erp", "frechet", "dtw", "euclidean", "l1", "linf"};
}

}  // namespace subseq
