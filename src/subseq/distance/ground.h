// Ground (element-level) distances.
//
// Sequence distances in this library are templated over a Ground policy
// that defines how two *elements* compare, and — for gap-based distances
// such as ERP — what the gap element is. This is what makes the framework
// generic over alphabets (Section 3 of the paper: Sigma may be a finite
// character set or a multi-dimensional infinite set).

#ifndef SUBSEQ_DISTANCE_GROUND_H_
#define SUBSEQ_DISTANCE_GROUND_H_

#include <cmath>

#include "subseq/core/types.h"

namespace subseq {

/// Ground distance for scalar (1-D time series) elements: |a - b|.
/// The ERP gap element is the origin 0, as in Chen & Ng (VLDB 2004).
struct ScalarGround {
  using Element = double;
  static double Between(double a, double b) { return std::abs(a - b); }
  static double GapElement() { return 0.0; }
};

/// Ground distance for planar trajectory elements: Euclidean distance.
/// The ERP gap element is the origin (0, 0).
struct Point2dGround {
  using Element = Point2d;
  static double Between(const Point2d& a, const Point2d& b) {
    return PointDistance(a, b);
  }
  static Point2d GapElement() { return Point2d{0.0, 0.0}; }
};

/// Discrete 0/1 ground distance for characters (strings). Used by the
/// generic kernels when a string is treated as a time series of symbols;
/// Levenshtein and Hamming have dedicated implementations.
struct CharGround {
  using Element = char;
  static double Between(char a, char b) { return a == b ? 0.0 : 1.0; }
  static char GapElement() { return '\0'; }
};

}  // namespace subseq

#endif  // SUBSEQ_DISTANCE_GROUND_H_
