// Discrete Frechet distance (Eiter & Mannila 1994).
//
// The "dog-leash" distance on sampled curves: the minimum over monotone
// couplings of the *maximum* ground cost of any coupling. Metric and
// consistent; one of the two time-series distances in the paper's
// evaluation (DFD in Figs. 4, 6, 7, 9, 11). On small bounded alphabets
// (the SONGS pitch data) its distribution is strongly skewed, which drives
// the space-overhead findings of Fig. 6.

#ifndef SUBSEQ_DISTANCE_FRECHET_H_
#define SUBSEQ_DISTANCE_FRECHET_H_

#include <span>

#include "subseq/core/types.h"
#include "subseq/distance/alignment.h"
#include "subseq/distance/distance.h"
#include "subseq/distance/ground.h"

namespace subseq {

/// Discrete Frechet distance: min over warping paths of the max ground cost.
template <typename T, typename Ground>
class FrechetDistance final : public SequenceDistance<T> {
 public:
  FrechetDistance() = default;

  double Compute(std::span<const T> a, std::span<const T> b) const override;

  double ComputeBounded(std::span<const T> a, std::span<const T> b,
                        double upper_bound) const override;

  /// Computes the distance together with an optimal coupling sequence.
  Alignment ComputeWithPath(std::span<const T> a, std::span<const T> b) const;

  std::string_view name() const override { return "frechet"; }
  bool is_metric() const override { return true; }
  bool is_consistent() const override { return true; }
};

/// Discrete Frechet distance over scalar time series.
using FrechetDistance1D = FrechetDistance<double, ScalarGround>;
/// Discrete Frechet distance over planar trajectories.
using FrechetDistance2D = FrechetDistance<Point2d, Point2dGround>;

extern template class FrechetDistance<double, ScalarGround>;
extern template class FrechetDistance<Point2d, Point2dGround>;

}  // namespace subseq

#endif  // SUBSEQ_DISTANCE_FRECHET_H_
