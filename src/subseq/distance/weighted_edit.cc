#include "subseq/distance/weighted_edit.h"

#include <algorithm>
#include <cstdio>

#include "subseq/core/check.h"
#include "subseq/distance/simd/kernels.h"

namespace subseq {

namespace {

size_t Idx(size_t row, size_t col, size_t stride) {
  return row * stride + col;
}

}  // namespace

Result<SubstitutionCostModel> SubstitutionCostModel::Create(
    std::string alphabet, std::vector<double> substitution,
    std::vector<double> gap) {
  const size_t n = alphabet.size();
  if (n == 0) return Status::InvalidArgument("alphabet must not be empty");
  if (substitution.size() != n * n) {
    return Status::InvalidArgument("substitution matrix must be |A| x |A|");
  }
  if (gap.size() != n) {
    return Status::InvalidArgument("gap vector must have |A| entries");
  }
  char buf[128];
  for (size_t i = 0; i < n; ++i) {
    if (substitution[Idx(i, i, n)] != 0.0) {
      return Status::InvalidArgument("substitution diagonal must be zero");
    }
    if (gap[i] <= 0.0) {
      return Status::InvalidArgument("gap costs must be positive");
    }
    for (size_t j = 0; j < n; ++j) {
      if (i != j && substitution[Idx(i, j, n)] <= 0.0) {
        return Status::InvalidArgument(
            "off-diagonal substitution costs must be positive");
      }
      if (substitution[Idx(i, j, n)] != substitution[Idx(j, i, n)]) {
        return Status::InvalidArgument(
            "substitution matrix must be symmetric");
      }
    }
  }
  // Triangle inequalities over the alphabet extended with the gap symbol.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      for (size_t k = 0; k < n; ++k) {
        if (substitution[Idx(i, k, n)] >
            substitution[Idx(i, j, n)] + substitution[Idx(j, k, n)] + 1e-12) {
          std::snprintf(buf, sizeof(buf),
                        "triangle violated: sub(%c,%c) > sub(%c,%c)+sub(%c,%c)",
                        alphabet[i], alphabet[k], alphabet[i], alphabet[j],
                        alphabet[j], alphabet[k]);
          return Status::InvalidArgument(buf);
        }
      }
      if (substitution[Idx(i, j, n)] > gap[i] + gap[j] + 1e-12) {
        return Status::InvalidArgument(
            "triangle violated: sub(a,b) > gap(a) + gap(b)");
      }
      if (gap[i] > substitution[Idx(i, j, n)] + gap[j] + 1e-12) {
        return Status::InvalidArgument(
            "triangle violated: gap(a) > sub(a,b) + gap(b)");
      }
    }
  }

  SubstitutionCostModel model;
  model.alphabet_ = std::move(alphabet);
  model.symbol_index_.fill(-1);
  for (size_t i = 0; i < model.alphabet_.size(); ++i) {
    model.symbol_index_[static_cast<unsigned char>(model.alphabet_[i])] =
        static_cast<int16_t>(i);
  }
  model.substitution_ = std::move(substitution);
  model.gap_ = std::move(gap);
  return model;
}

SubstitutionCostModel SubstitutionCostModel::UnitCosts(std::string alphabet) {
  const size_t n = alphabet.size();
  std::vector<double> sub(n * n, 1.0);
  for (size_t i = 0; i < n; ++i) sub[Idx(i, i, n)] = 0.0;
  std::vector<double> gap(n, 1.0);
  auto result = Create(std::move(alphabet), std::move(sub), std::move(gap));
  SUBSEQ_CHECK(result.ok());
  return std::move(result).ValueOrDie();
}

SubstitutionCostModel SubstitutionCostModel::ProteinClasses() {
  const std::string alphabet = "ACDEFGHIKLMNPQRSTVWY";
  // Physicochemical groups: aliphatic/hydrophobic, aromatic, polar,
  // positive, negative, special.
  auto group = [](char c) -> int {
    switch (c) {
      case 'A': case 'I': case 'L': case 'M': case 'V':
        return 0;  // hydrophobic
      case 'F': case 'W': case 'Y':
        return 1;  // aromatic
      case 'N': case 'Q': case 'S': case 'T':
        return 2;  // polar
      case 'H': case 'K': case 'R':
        return 3;  // positive
      case 'D': case 'E':
        return 4;  // negative
      default:
        return 5;  // C, G, P — special conformations
    }
  };
  const size_t n = alphabet.size();
  std::vector<double> sub(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      sub[Idx(i, j, n)] =
          group(alphabet[i]) == group(alphabet[j]) ? 0.5 : 1.0;
    }
  }
  std::vector<double> gap(n, 0.8);
  auto result = Create(alphabet, std::move(sub), std::move(gap));
  SUBSEQ_CHECK(result.ok());
  return std::move(result).ValueOrDie();
}

double SubstitutionCostModel::Substitution(char a, char b) const {
  const int16_t ia = symbol_index_[static_cast<unsigned char>(a)];
  const int16_t ib = symbol_index_[static_cast<unsigned char>(b)];
  SUBSEQ_DCHECK(ia >= 0 && ib >= 0);
  return substitution_[Idx(static_cast<size_t>(ia), static_cast<size_t>(ib),
                           alphabet_.size())];
}

double SubstitutionCostModel::Gap(char a) const {
  const int16_t ia = symbol_index_[static_cast<unsigned char>(a)];
  SUBSEQ_DCHECK(ia >= 0);
  return gap_[static_cast<size_t>(ia)];
}

bool SubstitutionCostModel::Admits(char c) const {
  return symbol_index_[static_cast<unsigned char>(c)] >= 0;
}

double WeightedEditDistance::Compute(std::span<const char> a,
                                     std::span<const char> b) const {
  return ComputeBounded(a, b, kInfiniteDistance);
}

double WeightedEditDistance::ComputeBounded(std::span<const char> a,
                                            std::span<const char> b,
                                            double upper_bound) const {
  const size_t n = a.size();
  const size_t m = b.size();
  // Resolve b's symbol indices once; per row, the substitution and gap
  // cost rows become table gathers and the combine goes through the
  // dispatched kernel (bit-identical to the per-cell formulation —
  // gathers load the very same table entries).
  const simd::Kernels& kernels = simd::GetKernels();
  std::vector<double> prev(m + 1, 0.0);
  std::vector<double> curr(m + 1, 0.0);
  std::vector<double> sub(m + 1, 0.0);
  std::vector<double> gap_b(m + 1, 0.0);
  std::vector<int32_t> ib(m + 1, 0);
  for (size_t j = 1; j <= m; ++j) {
    const int16_t idx = model_.IndexOf(b[j - 1]);
    SUBSEQ_DCHECK(idx >= 0);
    ib[j] = idx;
  }
  kernels.gather_row(model_.gap_data(), ib.data() + 1, gap_b.data() + 1, m);
  for (size_t j = 1; j <= m; ++j) {
    prev[j] = prev[j - 1] + gap_b[j];
  }
  for (size_t i = 1; i <= n; ++i) {
    const int16_t ia = model_.IndexOf(a[i - 1]);
    SUBSEQ_DCHECK(ia >= 0);
    const double gap_a = model_.gap_data()[static_cast<size_t>(ia)];
    kernels.gather_row(model_.SubstitutionRow(ia), ib.data() + 1,
                       sub.data() + 1, m);
    const double row_min = kernels.gap_combine_row(
        prev.data(), curr.data(), sub.data(), gap_a, gap_b.data(), m);
    if (row_min > upper_bound) return kInfiniteDistance;
    std::swap(prev, curr);
  }
  return prev[m];
}

Alignment WeightedEditDistance::ComputeWithPath(std::span<const char> a,
                                                std::span<const char> b) const {
  const size_t n = a.size();
  const size_t m = b.size();
  const size_t stride = m + 1;
  std::vector<double> dp((n + 1) * stride, 0.0);
  for (size_t j = 1; j <= m; ++j) {
    dp[j] = dp[j - 1] + model_.Gap(b[j - 1]);
  }
  for (size_t i = 1; i <= n; ++i) {
    dp[i * stride] = dp[(i - 1) * stride] + model_.Gap(a[i - 1]);
    for (size_t j = 1; j <= m; ++j) {
      dp[i * stride + j] = std::min(
          {dp[(i - 1) * stride + (j - 1)] +
               model_.Substitution(a[i - 1], b[j - 1]),
           dp[(i - 1) * stride + j] + model_.Gap(a[i - 1]),
           dp[i * stride + (j - 1)] + model_.Gap(b[j - 1])});
    }
  }

  Alignment result;
  result.distance = dp[n * stride + m];
  size_t i = n;
  size_t j = m;
  while (i > 0 || j > 0) {
    const double here = dp[i * stride + j];
    if (i > 0 && j > 0) {
      const double cost = model_.Substitution(a[i - 1], b[j - 1]);
      if (dp[(i - 1) * stride + (j - 1)] + cost == here) {
        result.couplings.push_back(Coupling{static_cast<int32_t>(i - 1),
                                            static_cast<int32_t>(j - 1),
                                            AlignOp::kMatch, cost});
        --i;
        --j;
        continue;
      }
    }
    if (i > 0) {
      const double cost = model_.Gap(a[i - 1]);
      if (dp[(i - 1) * stride + j] + cost == here) {
        result.couplings.push_back(Coupling{static_cast<int32_t>(i - 1),
                                            static_cast<int32_t>(j),
                                            AlignOp::kGapA, cost});
        --i;
        continue;
      }
    }
    result.couplings.push_back(Coupling{static_cast<int32_t>(i),
                                        static_cast<int32_t>(j - 1),
                                        AlignOp::kGapB,
                                        model_.Gap(b[j - 1])});
    --j;
  }
  std::reverse(result.couplings.begin(), result.couplings.end());
  return result;
}

}  // namespace subseq
