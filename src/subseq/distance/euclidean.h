// Euclidean (L2) distance between equal-length sequences.
//
// Metric and consistent (Section 4: a subsequence pair at the same offsets
// sums a subset of the squared terms). Rigid: sequences of different
// lengths are at infinite distance, which is why the paper recommends the
// elastic metrics (ERP / DFD / Levenshtein) for subsequence matching.

#ifndef SUBSEQ_DISTANCE_EUCLIDEAN_H_
#define SUBSEQ_DISTANCE_EUCLIDEAN_H_

#include <cmath>
#include <span>
#include <type_traits>

#include "subseq/core/types.h"
#include "subseq/distance/distance.h"
#include "subseq/distance/ground.h"
#include "subseq/distance/simd/kernels.h"
#include "subseq/distance/simd/lanes.h"

namespace subseq {

/// L2 distance: sqrt(sum_i ground(a_i, b_i)^2); +infinity if |a| != |b|.
template <typename T, typename Ground>
class EuclideanDistance final : public SequenceDistance<T> {
 public:
  double Compute(std::span<const T> a, std::span<const T> b) const override {
    if (a.size() != b.size()) return kInfiniteDistance;
    double sum_sq = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      const double d = Ground::Between(a[i], b[i]);
      sum_sq += d * d;
    }
    return std::sqrt(sum_sq);
  }

  double ComputeBounded(std::span<const T> a, std::span<const T> b,
                        double upper_bound) const override {
    if (a.size() != b.size()) return kInfiniteDistance;
    if (upper_bound < 0.0) return kInfiniteDistance;
    const double bound_sq = upper_bound * upper_bound;
    double sum_sq = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      const double d = Ground::Between(a[i], b[i]);
      sum_sq += d * d;
      // The squared comparison can trip on rounding exactly at the bound;
      // confirm with the (rare) sqrt before abandoning.
      if (sum_sq > bound_sq && std::sqrt(sum_sq) > upper_bound) {
        return kInfiniteDistance;
      }
    }
    return std::sqrt(sum_sq);
  }

  /// Batched override: equal-length candidates run 4 at a time through
  /// the vertical kernel, each lane bit-identical to Compute().
  void ComputeMany(std::span<const T> a,
                   std::span<const std::span<const T>> bs,
                   double* out) const override {
    constexpr bool kScalar1d = std::is_same_v<T, double> &&
                               std::is_same_v<Ground, ScalarGround>;
    constexpr bool kTraj = std::is_same_v<T, Point2d> &&
                           std::is_same_v<Ground, Point2dGround>;
    if constexpr (!kScalar1d && !kTraj) {
      SequenceDistance<T>::ComputeMany(a, bs, out);
    } else {
      const simd::Kernels& kernels = simd::GetKernels();
      simd::ForEachLaneGroup<T>(
          bs, a.size(), kInfiniteDistance, out,
          [&](const double* lanes, const double* lanes_y, double* out4) {
            if constexpr (kScalar1d) {
              kernels.euclidean4_f64(a.data(), lanes, a.size(), out4);
            } else {
              kernels.euclidean4_p2d(a.data(), lanes, lanes_y, a.size(),
                                     out4);
            }
          },
          [&](size_t k) { out[k] = Compute(a, bs[k]); });
    }
  }

  std::string_view name() const override { return "euclidean"; }
  bool is_metric() const override { return true; }
  bool is_consistent() const override { return true; }
};

/// Euclidean distance over scalar time series.
using EuclideanDistance1D = EuclideanDistance<double, ScalarGround>;
/// Euclidean distance over planar trajectories.
using EuclideanDistance2D = EuclideanDistance<Point2d, Point2dGround>;

extern template class EuclideanDistance<double, ScalarGround>;
extern template class EuclideanDistance<Point2d, Point2dGround>;

}  // namespace subseq

#endif  // SUBSEQ_DISTANCE_EUCLIDEAN_H_
