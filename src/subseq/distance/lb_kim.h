// LB_Kim (Kim/Park/Chu, ICDE 2001) — the O(1) first/last/min/max lower
// bound for DTW, the cheapest stage of the pruning cascade. Any warping
// path couples (1,1) and (n,m), so |q_first - c_first| and
// |q_last - c_last| each bound the distance, and when the DP has more
// than one matched pair (n + m > 2) the two couplings are distinct
// cells, making their SUM admissible. The extrema terms are admissible
// because the larger sequence maximum (resp. smaller minimum) must be
// coupled to SOME element of the other sequence:
//   |max(Q) - max(C)| <= DTW(Q, C),  |min(Q) - min(C)| <= DTW(Q, C).
//
// NOTE: LB_Kim is NOT uniformly below LB_Keogh. Counterexample
// (pinned in tests/distance/lb_cascade_test.cc): Q = [0, 10],
// C = [5, 5] — the full-width Keogh envelope is [0, 10] so
// LB_Keogh = 0, while LB_Kim = 5 + 5 = 10 = DTW. The cascade runs Kim
// first because it is O(1) per candidate, not because it is looser.
//
// LB_Kim is DTW-only: ERP's gap alignments can leave the endpoints
// uncoupled, so none of these terms bound ERP.

#ifndef SUBSEQ_DISTANCE_LB_KIM_H_
#define SUBSEQ_DISTANCE_LB_KIM_H_

#include <cstdint>
#include <span>

namespace subseq {

/// Precomputed LB_Kim features of one query sequence.
class LbKimBound {
 public:
  /// Captures the query's first/last/min/max. An empty query yields the
  /// trivial bound 0 everywhere.
  explicit LbKimBound(std::span<const double> query);

  /// Scalar reference bound for one candidate; 0 (trivially valid) when
  /// the candidate's length differs from the query's. Bitwise identical
  /// to the batched path (same operations in the same order).
  double LowerBound(std::span<const double> candidate) const;

  /// Batched bounds over `count` candidates described by parallel
  /// feature arrays (first/last/min/max element of each candidate, all
  /// of length()). No cutoff: each output is O(1) and exact, so values
  /// — not just decisions — are identical across dispatch levels and
  /// any regrouping into blocks.
  void LowerBoundMany(const double* first, const double* last,
                      const double* cmin, const double* cmax, size_t count,
                      double* out) const;

  int32_t length() const { return length_; }
  double query_first() const { return q_first_; }
  double query_last() const { return q_last_; }
  double query_min() const { return q_min_; }
  double query_max() const { return q_max_; }

 private:
  int32_t length_;
  double q_first_;
  double q_last_;
  double q_min_;
  double q_max_;
};

}  // namespace subseq

#endif  // SUBSEQ_DISTANCE_LB_KIM_H_
