#include "subseq/distance/alignment.h"

#include <algorithm>

namespace subseq {

std::optional<std::string> ValidateAlignment(const Alignment& alignment,
                                             int32_t len_a, int32_t len_b,
                                             bool allow_gaps) {
  const auto& c = alignment.couplings;
  if (len_a == 0 || len_b == 0) {
    // Degenerate inputs: an empty sequence aligns via gaps only.
    return std::nullopt;
  }
  if (c.empty()) return "alignment has no couplings";

  // Boundary conditions: first coupling touches (0, 0), last touches
  // (len_a - 1, len_b - 1) — modulo leading/trailing gap steps for
  // edit-style alignments.
  auto first_match = std::find_if(c.begin(), c.end(), [](const Coupling& w) {
    return w.op == AlignOp::kMatch;
  });
  if (!allow_gaps) {
    if (c.front().i != 0 || c.front().j != 0) {
      return "alignment does not start at (0, 0)";
    }
    if (c.back().i != len_a - 1 || c.back().j != len_b - 1) {
      return "alignment does not end at (|a|-1, |b|-1)";
    }
  }
  (void)first_match;

  // Each element index must be covered by some coupling (continuity),
  // and indices must be monotone non-decreasing with unit steps.
  std::vector<bool> a_covered(static_cast<size_t>(len_a), false);
  std::vector<bool> b_covered(static_cast<size_t>(len_b), false);
  int32_t prev_i = -1;
  int32_t prev_j = -1;
  for (const Coupling& w : c) {
    if (w.op != AlignOp::kGapB) {
      if (w.i < 0 || w.i >= len_a) return "a-index out of range";
    }
    if (w.op != AlignOp::kGapA) {
      if (w.j < 0 || w.j >= len_b) return "b-index out of range";
    }
    if (w.op == AlignOp::kGapA && !allow_gaps) return "unexpected gap step";
    if (w.op == AlignOp::kGapB && !allow_gaps) return "unexpected gap step";

    if (w.op != AlignOp::kGapB) a_covered[static_cast<size_t>(w.i)] = true;
    if (w.op != AlignOp::kGapA) b_covered[static_cast<size_t>(w.j)] = true;

    if (prev_i >= 0) {
      if (w.i < prev_i || w.j < prev_j) return "alignment not monotone";
      if (!allow_gaps && (w.i - prev_i > 1 || w.j - prev_j > 1)) {
        return "alignment not continuous (index jump > 1)";
      }
      if (!allow_gaps && w.i == prev_i && w.j == prev_j) {
        return "repeated coupling";
      }
    }
    if (w.op != AlignOp::kGapB) prev_i = w.i;
    if (w.op != AlignOp::kGapA) prev_j = w.j;
  }
  for (int32_t i = 0; i < len_a; ++i) {
    if (!a_covered[static_cast<size_t>(i)]) {
      return "element of a not covered by any coupling";
    }
  }
  for (int32_t j = 0; j < len_b; ++j) {
    if (!b_covered[static_cast<size_t>(j)]) {
      return "element of b not covered by any coupling";
    }
  }
  return std::nullopt;
}

std::optional<Interval> RestrictToRange(const Alignment& alignment,
                                        const Interval& a_interval) {
  int32_t c = -1;
  int32_t d = -1;
  for (const Coupling& w : alignment.couplings) {
    if (w.op != AlignOp::kMatch) continue;
    if (w.i < a_interval.begin || w.i >= a_interval.end) continue;
    if (c < 0) c = w.j;
    d = w.j;
  }
  if (c < 0) return std::nullopt;
  return Interval{c, d + 1};
}

double RestrictedCost(const Alignment& alignment,
                      const Interval& a_interval) {
  double total = 0.0;
  for (const Coupling& w : alignment.couplings) {
    if (w.op == AlignOp::kGapB) continue;  // no a-index involved
    if (w.i < a_interval.begin || w.i >= a_interval.end) continue;
    total += w.cost;
  }
  return total;
}

double RestrictedMaxCost(const Alignment& alignment,
                         const Interval& a_interval) {
  double max_cost = 0.0;
  for (const Coupling& w : alignment.couplings) {
    if (w.op == AlignOp::kGapB) continue;
    if (w.i < a_interval.begin || w.i >= a_interval.end) continue;
    max_cost = std::max(max_cost, w.cost);
  }
  return max_cost;
}

}  // namespace subseq
