#include "subseq/distance/levenshtein.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace subseq {

template <typename T>
double LevenshteinDistance<T>::Compute(std::span<const T> a,
                                       std::span<const T> b) const {
  return ComputeBounded(a, b, kInfiniteDistance);
}

template <typename T>
double LevenshteinDistance<T>::ComputeBounded(std::span<const T> a,
                                              std::span<const T> b,
                                              double upper_bound) const {
  const size_t n = a.size();
  const size_t m = b.size();
  // The length difference lower-bounds the edit distance.
  const double len_diff =
      static_cast<double>(n > m ? n - m : m - n);
  if (len_diff > upper_bound) return kInfiniteDistance;

  std::vector<double> prev(m + 1, 0.0);
  std::vector<double> curr(m + 1, 0.0);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<double>(j);
  for (size_t i = 1; i <= n; ++i) {
    curr[0] = static_cast<double>(i);
    double row_min = curr[0];
    for (size_t j = 1; j <= m; ++j) {
      const double subst_cost = (a[i - 1] == b[j - 1]) ? 0.0 : 1.0;
      curr[j] = std::min({prev[j - 1] + subst_cost,  // match / substitute
                          prev[j] + 1.0,             // delete from a
                          curr[j - 1] + 1.0});       // insert from b
      row_min = std::min(row_min, curr[j]);
    }
    if (row_min > upper_bound) return kInfiniteDistance;
    std::swap(prev, curr);
  }
  return prev[m];
}

template <typename T>
Alignment LevenshteinDistance<T>::ComputeWithPath(std::span<const T> a,
                                                  std::span<const T> b) const {
  const size_t n = a.size();
  const size_t m = b.size();
  const size_t stride = m + 1;
  std::vector<double> dp((n + 1) * stride, 0.0);
  for (size_t j = 0; j <= m; ++j) dp[j] = static_cast<double>(j);
  for (size_t i = 1; i <= n; ++i) {
    dp[i * stride] = static_cast<double>(i);
    for (size_t j = 1; j <= m; ++j) {
      const double subst_cost = (a[i - 1] == b[j - 1]) ? 0.0 : 1.0;
      dp[i * stride + j] = std::min({dp[(i - 1) * stride + (j - 1)] + subst_cost,
                                     dp[(i - 1) * stride + j] + 1.0,
                                     dp[i * stride + (j - 1)] + 1.0});
    }
  }

  Alignment result;
  result.distance = dp[n * stride + m];

  size_t i = n;
  size_t j = m;
  while (i > 0 || j > 0) {
    const double here = dp[i * stride + j];
    if (i > 0 && j > 0) {
      const double subst_cost = (a[i - 1] == b[j - 1]) ? 0.0 : 1.0;
      if (dp[(i - 1) * stride + (j - 1)] + subst_cost == here) {
        result.couplings.push_back(Coupling{static_cast<int32_t>(i - 1),
                                            static_cast<int32_t>(j - 1),
                                            AlignOp::kMatch, subst_cost});
        --i;
        --j;
        continue;
      }
    }
    if (i > 0 && dp[(i - 1) * stride + j] + 1.0 == here) {
      result.couplings.push_back(Coupling{static_cast<int32_t>(i - 1),
                                          static_cast<int32_t>(j),
                                          AlignOp::kGapA, 1.0});
      --i;
      continue;
    }
    result.couplings.push_back(Coupling{static_cast<int32_t>(i),
                                        static_cast<int32_t>(j - 1),
                                        AlignOp::kGapB, 1.0});
    --j;
  }
  std::reverse(result.couplings.begin(), result.couplings.end());
  return result;
}

template class LevenshteinDistance<char>;
template class LevenshteinDistance<double>;

}  // namespace subseq
