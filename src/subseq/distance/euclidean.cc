#include "subseq/distance/euclidean.h"

namespace subseq {

template class EuclideanDistance<double, ScalarGround>;
template class EuclideanDistance<Point2d, Point2dGround>;

}  // namespace subseq
