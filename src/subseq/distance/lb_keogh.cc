#include "subseq/distance/lb_keogh.h"

#include <algorithm>

#include "subseq/core/check.h"

namespace subseq {

LbKeoghEnvelope::LbKeoghEnvelope(std::span<const double> query,
                                 int32_t band) {
  const int32_t n = static_cast<int32_t>(query.size());
  if (band < 0 || band >= n) band = n > 0 ? n - 1 : 0;
  band_ = band;
  upper_.resize(static_cast<size_t>(n));
  lower_.resize(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    const int32_t lo = std::max(0, i - band);
    const int32_t hi = std::min(n - 1, i + band);
    double u = query[static_cast<size_t>(lo)];
    double l = u;
    for (int32_t j = lo + 1; j <= hi; ++j) {
      u = std::max(u, query[static_cast<size_t>(j)]);
      l = std::min(l, query[static_cast<size_t>(j)]);
    }
    upper_[static_cast<size_t>(i)] = u;
    lower_[static_cast<size_t>(i)] = l;
  }
}

double LbKeoghEnvelope::LowerBound(std::span<const double> candidate) const {
  if (static_cast<int32_t>(candidate.size()) != length()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < candidate.size(); ++i) {
    if (candidate[i] > upper_[i]) {
      sum += candidate[i] - upper_[i];
    } else if (candidate[i] < lower_[i]) {
      sum += lower_[i] - candidate[i];
    }
  }
  return sum;
}

double LbKeoghEnvelope::LowerBoundAbandoning(
    std::span<const double> candidate, double cutoff) const {
  if (static_cast<int32_t>(candidate.size()) != length()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < candidate.size(); ++i) {
    if (candidate[i] > upper_[i]) {
      sum += candidate[i] - upper_[i];
    } else if (candidate[i] < lower_[i]) {
      sum += lower_[i] - candidate[i];
    }
    if (sum > cutoff) return sum;
  }
  return sum;
}

}  // namespace subseq
