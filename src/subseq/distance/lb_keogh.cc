#include "subseq/distance/lb_keogh.h"

#include <algorithm>

#include "subseq/core/check.h"
#include "subseq/distance/simd/kernels.h"

namespace subseq {

LbKeoghEnvelope::LbKeoghEnvelope(std::span<const double> query,
                                 int32_t band) {
  const int32_t n = static_cast<int32_t>(query.size());
  if (band < 0 || band >= n) band = n > 0 ? n - 1 : 0;
  band_ = band;
  upper_.resize(static_cast<size_t>(n));
  lower_.resize(static_cast<size_t>(n));
  if (n > 0 && band == n - 1) {
    // Full width (the unconstrained-DTW case the matcher uses): every
    // window spans the whole query, so U and L are the global extremes.
    // One O(n) pass instead of O(n^2); max/min accumulate in the same
    // ascending order as the windowed loop, so values are identical.
    double u = query[0];
    double l = u;
    for (int32_t j = 1; j < n; ++j) {
      u = std::max(u, query[static_cast<size_t>(j)]);
      l = std::min(l, query[static_cast<size_t>(j)]);
    }
    std::fill(upper_.begin(), upper_.end(), u);
    std::fill(lower_.begin(), lower_.end(), l);
    return;
  }
  for (int32_t i = 0; i < n; ++i) {
    const int32_t lo = std::max(0, i - band);
    const int32_t hi = std::min(n - 1, i + band);
    double u = query[static_cast<size_t>(lo)];
    double l = u;
    for (int32_t j = lo + 1; j <= hi; ++j) {
      u = std::max(u, query[static_cast<size_t>(j)]);
      l = std::min(l, query[static_cast<size_t>(j)]);
    }
    upper_[static_cast<size_t>(i)] = u;
    lower_[static_cast<size_t>(i)] = l;
  }
}

double LbKeoghEnvelope::LowerBound(std::span<const double> candidate) const {
  if (static_cast<int32_t>(candidate.size()) != length()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < candidate.size(); ++i) {
    if (candidate[i] > upper_[i]) {
      sum += candidate[i] - upper_[i];
    } else if (candidate[i] < lower_[i]) {
      sum += lower_[i] - candidate[i];
    }
  }
  return sum;
}

double LbKeoghEnvelope::LowerBoundAbandoning(
    std::span<const double> candidate, double cutoff) const {
  if (static_cast<int32_t>(candidate.size()) != length()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < candidate.size(); ++i) {
    if (candidate[i] > upper_[i]) {
      sum += candidate[i] - upper_[i];
    } else if (candidate[i] < lower_[i]) {
      sum += lower_[i] - candidate[i];
    }
    if (sum > cutoff) return sum;
  }
  return sum;
}

void LbKeoghEnvelope::LowerBoundMany(const double* block, size_t stride,
                                     int32_t count, double cutoff,
                                     double* out) const {
  const size_t n = upper_.size();
  const simd::Kernels& kernels = simd::GetKernels();
  int32_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const double* base = block + static_cast<size_t>(k) * stride;
    kernels.lb_keogh_block4(upper_.data(), lower_.data(), n, base,
                            base + stride, base + 2 * stride,
                            base + 3 * stride, cutoff, out + k);
  }
  for (; k < count; ++k) {
    out[k] = LowerBoundAbandoning(
        std::span<const double>(block + static_cast<size_t>(k) * stride, n),
        cutoff);
  }
}

}  // namespace subseq
