#include "subseq/distance/simd/cpu_features.h"

#include <atomic>
#include <climits>
#include <cstdlib>
#include <cstring>

#include "subseq/distance/simd/kernels.h"

namespace subseq::simd {

namespace {

bool CpuReportsAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

SimdLevel ResolveDetectedLevel() {
  const bool avx2 = CpuSupportsAvx2();
  const char* knob = std::getenv("SUBSEQ_SIMD");
  if (knob != nullptr) {
    if (std::strcmp(knob, "portable") == 0) return SimdLevel::kPortable;
    if (std::strcmp(knob, "avx2") == 0) {
      // Best-effort: an unsatisfiable request falls back to portable
      // rather than failing (the knob is a CI/debug tool, and every
      // level computes identical results anyway).
      return avx2 ? SimdLevel::kAvx2 : SimdLevel::kPortable;
    }
    // "auto" or anything unrecognized: fall through to detection.
  }
  return avx2 ? SimdLevel::kAvx2 : SimdLevel::kPortable;
}

// -1 = no override; otherwise the int value of the forced SimdLevel.
std::atomic<int>& OverrideSlot() {
  static std::atomic<int> slot{-1};
  return slot;
}

constexpr int kDefaultAntidiagThreshold = 64;
constexpr long kNoAntidiagOverride = LONG_MIN;

// LONG_MIN = no override; any other value (negative = disabled) wins.
std::atomic<long>& AntidiagOverrideSlot() {
  static std::atomic<long> slot{kNoAntidiagOverride};
  return slot;
}

int ResolveAntidiagThreshold() {
  const char* knob = std::getenv("SUBSEQ_ANTIDIAG");
  if (knob != nullptr) {
    if (std::strcmp(knob, "off") == 0) return -1;
    char* end = nullptr;
    const long parsed = std::strtol(knob, &end, 10);
    if (end != knob && *end == '\0') return static_cast<int>(parsed);
    // Unrecognized: fall through to the default (best-effort, like
    // SUBSEQ_SIMD).
  }
  return kDefaultAntidiagThreshold;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kPortable:
      return "portable";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool CpuSupportsAvx2() {
  // Both halves must hold: the CPU executes the instructions AND the
  // AVX2 translation unit was built with them (GetAvx2Kernels() returns
  // nullptr when the compiler lacked -mavx2 support).
  static const bool supported =
      CpuReportsAvx2() && GetAvx2Kernels() != nullptr;
  return supported;
}

SimdLevel DetectedSimdLevel() {
  static const SimdLevel level = ResolveDetectedLevel();
  return level;
}

SimdLevel ActiveSimdLevel() {
  const int forced = OverrideSlot().load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SimdLevel>(forced);
  return DetectedSimdLevel();
}

bool SetSimdLevelForTesting(SimdLevel level) {
  if (level == SimdLevel::kAvx2 && !CpuSupportsAvx2()) return false;
  OverrideSlot().store(static_cast<int>(level), std::memory_order_relaxed);
  return true;
}

void ClearSimdLevelForTesting() {
  OverrideSlot().store(-1, std::memory_order_relaxed);
}

int AntidiagThreshold() {
  const long forced =
      AntidiagOverrideSlot().load(std::memory_order_relaxed);
  if (forced != kNoAntidiagOverride) return static_cast<int>(forced);
  static const int resolved = ResolveAntidiagThreshold();
  return resolved;
}

void SetAntidiagThresholdForTesting(int threshold) {
  AntidiagOverrideSlot().store(threshold, std::memory_order_relaxed);
}

void ClearAntidiagThresholdForTesting() {
  AntidiagOverrideSlot().store(kNoAntidiagOverride,
                               std::memory_order_relaxed);
}

}  // namespace subseq::simd
