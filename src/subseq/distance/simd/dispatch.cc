#include "subseq/core/check.h"
#include "subseq/distance/simd/kernels.h"

namespace subseq::simd {

const Kernels& GetKernelsAt(SimdLevel level) {
  if (level == SimdLevel::kAvx2) {
    const Kernels* avx2 = GetAvx2Kernels();
    SUBSEQ_CHECK(avx2 != nullptr && CpuSupportsAvx2());
    return *avx2;
  }
  return *GetPortableKernels();
}

const Kernels& GetKernels() { return GetKernelsAt(ActiveSimdLevel()); }

}  // namespace subseq::simd
