// Portable kernel table: plain C++ loops, written so each output's
// operation order matches the documented contract exactly (see
// kernels.h). The compiler may auto-vectorize the independent passes;
// with -ffp-contract=off that cannot change any rounding, so the
// results stay the bit-level reference for every other level.

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "subseq/distance/simd/kernels.h"

namespace subseq::simd {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void AbsDiffRow(double a, const double* b, double* out, size_t n) {
  for (size_t j = 0; j < n; ++j) out[j] = std::abs(a - b[j]);
}

void PointDistRow(const Point2d& a, const Point2d* b, double* out,
                  size_t n) {
  for (size_t j = 0; j < n; ++j) out[j] = PointDistance(a, b[j]);
}

void GatherRow(const double* table, const int32_t* idx, double* out,
               size_t n) {
  for (size_t j = 0; j < n; ++j) {
    out[j] = table[static_cast<size_t>(idx[j])];
  }
}

double DtwCombineRow(const double* prev, double* curr, const double* cost,
                     size_t j_lo, size_t j_hi) {
  if (j_hi < j_lo) return kInf;
  // Independent pass: t[j] = min(prev[j-1], prev[j]) + cost[j].
  for (size_t j = j_lo; j <= j_hi; ++j) {
    curr[j] = std::min(prev[j - 1], prev[j]) + cost[j];
  }
  // Carried scan: fold in the left neighbor of the current row.
  double row_min = kInf;
  for (size_t j = j_lo; j <= j_hi; ++j) {
    curr[j] = std::min(curr[j], curr[j - 1] + cost[j]);
    row_min = std::min(row_min, curr[j]);
  }
  return row_min;
}

double GapCombineRow(const double* prev, double* curr, const double* sub,
                     double gap_a, const double* gap_b, size_t m) {
  // Independent pass: t[j] = min(prev[j-1] + sub[j], prev[j] + gap_a).
  for (size_t j = 1; j <= m; ++j) {
    curr[j] = std::min(prev[j - 1] + sub[j], prev[j] + gap_a);
  }
  curr[0] = prev[0] + gap_a;
  double row_min = curr[0];
  for (size_t j = 1; j <= m; ++j) {
    curr[j] = std::min(curr[j], curr[j - 1] + gap_b[j]);
    row_min = std::min(row_min, curr[j]);
  }
  return row_min;
}

double FrechetCombineRow(const double* prev, double* curr,
                         const double* cost, size_t m) {
  // Independent pass: t[j] = min(prev[j-1], prev[j]).
  for (size_t j = 1; j < m; ++j) {
    curr[j] = std::min(prev[j - 1], prev[j]);
  }
  curr[0] = std::max(prev[0], cost[0]);
  double row_min = curr[0];
  for (size_t j = 1; j < m; ++j) {
    curr[j] = std::max(std::min(curr[j], curr[j - 1]), cost[j]);
    row_min = std::min(row_min, curr[j]);
  }
  return row_min;
}

void Euclidean4F64(const double* a, const double* lanes, size_t n,
                   double* out4) {
  double s[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t j = 0; j < n; ++j) {
    const double aj = a[j];
    for (size_t k = 0; k < 4; ++k) {
      const double d = std::abs(aj - lanes[j * 4 + k]);
      s[k] += d * d;
    }
  }
  for (size_t k = 0; k < 4; ++k) out4[k] = std::sqrt(s[k]);
}

void Euclidean4P2d(const Point2d* a, const double* lanes_x,
                   const double* lanes_y, size_t n, double* out4) {
  double s[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t j = 0; j < n; ++j) {
    const Point2d aj = a[j];
    for (size_t k = 0; k < 4; ++k) {
      const double dx = aj.x - lanes_x[j * 4 + k];
      const double dy = aj.y - lanes_y[j * 4 + k];
      const double d = std::sqrt(dx * dx + dy * dy);
      s[k] += d * d;
    }
  }
  for (size_t k = 0; k < 4; ++k) out4[k] = std::sqrt(s[k]);
}

void Linf4F64(const double* a, const double* lanes, size_t n,
              double* out4) {
  double s[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t j = 0; j < n; ++j) {
    const double aj = a[j];
    for (size_t k = 0; k < 4; ++k) {
      s[k] = std::max(s[k], std::abs(aj - lanes[j * 4 + k]));
    }
  }
  for (size_t k = 0; k < 4; ++k) out4[k] = s[k];
}

void Linf4P2d(const Point2d* a, const double* lanes_x,
              const double* lanes_y, size_t n, double* out4) {
  double s[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t j = 0; j < n; ++j) {
    const Point2d aj = a[j];
    for (size_t k = 0; k < 4; ++k) {
      const double dx = aj.x - lanes_x[j * 4 + k];
      const double dy = aj.y - lanes_y[j * 4 + k];
      s[k] = std::max(s[k], std::sqrt(dx * dx + dy * dy));
    }
  }
  for (size_t k = 0; k < 4; ++k) out4[k] = s[k];
}

// Shared shape of the two vertical DTW kernels: the per-row recurrence
// over 4 independent lanes, parameterized on the cost of column j.
template <typename CostFn>
void Dtw4(size_t n, size_t m, double* out4, const CostFn& cost_at) {
  std::vector<double> prev(4 * (m + 1), kInf);
  std::vector<double> curr(4 * (m + 1), kInf);
  for (size_t k = 0; k < 4; ++k) prev[k] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    // Column 0 is the +inf wall; every other cell is written below.
    for (size_t k = 0; k < 4; ++k) curr[k] = kInf;
    for (size_t j = 1; j <= m; ++j) {
      for (size_t k = 0; k < 4; ++k) {
        const double best =
            std::min(std::min(prev[(j - 1) * 4 + k], prev[j * 4 + k]),
                     curr[(j - 1) * 4 + k]);
        curr[j * 4 + k] = best + cost_at(i - 1, j - 1, k);
      }
    }
    std::swap(prev, curr);
  }
  for (size_t k = 0; k < 4; ++k) out4[k] = prev[m * 4 + k];
}

void Dtw4F64(const double* a, size_t n, const double* lanes, size_t m,
             double* out4) {
  Dtw4(n, m, out4, [&](size_t i, size_t j, size_t k) {
    return std::abs(a[i] - lanes[j * 4 + k]);
  });
}

void Dtw4P2d(const Point2d* a, size_t n, const double* lanes_x,
             const double* lanes_y, size_t m, double* out4) {
  Dtw4(n, m, out4, [&](size_t i, size_t j, size_t k) {
    const double dx = a[i].x - lanes_x[j * 4 + k];
    const double dy = a[i].y - lanes_y[j * 4 + k];
    return std::sqrt(dx * dx + dy * dy);
  });
}

void LbKeoghBlock4(const double* upper, const double* lower, size_t len,
                   const double* c0, const double* c1, const double* c2,
                   const double* c3, double cutoff, double* out4) {
  const double* cands[4] = {c0, c1, c2, c3};
  for (size_t k = 0; k < 4; ++k) {
    const double* c = cands[k];
    double sum = 0.0;
    for (size_t i = 0; i < len; ++i) {
      if (c[i] > upper[i]) {
        sum += c[i] - upper[i];
      } else if (c[i] < lower[i]) {
        sum += lower[i] - c[i];
      }
      if (sum > cutoff) break;  // partial already decides "prune"
    }
    out4[k] = sum;
  }
}

void LbKimBlock(double q_first, double q_last, double q_min, double q_max,
                int use_endpoint_sum, const double* first,
                const double* last, const double* cmin, const double* cmax,
                size_t count, double* out) {
  for (size_t i = 0; i < count; ++i) {
    const double df = std::abs(q_first - first[i]);
    const double dl = std::abs(q_last - last[i]);
    const double ends = use_endpoint_sum ? df + dl : std::max(df, dl);
    const double dmax = std::abs(q_max - cmax[i]);
    const double dmin = std::abs(q_min - cmin[i]);
    out[i] = std::max(std::max(ends, dmax), dmin);
  }
}

// Shared wavefront DP for the two DTW anti-diagonal kernels. Buffers are
// indexed by row i in [0, n]; slot i of the diag-s buffer holds
// D(i, s - i). Active row ranges shift by at most one per diagonal, so
// clearing one slot on each side of the written range keeps every read
// of a rotated buffer either a freshly written value or +inf.
template <typename CostAt>
double DtwAntidiag(size_t n, size_t m, double bound, const CostAt& cost_at) {
  std::vector<double> buf(3 * (n + 1), kInf);
  double* prev2 = buf.data();        // diag s - 2
  double* prev = prev2 + (n + 1);    // diag s - 1
  double* curr = prev + (n + 1);     // diag s
  prev[0] = 0.0;                     // diag 0: the (0, 0) corner
  int hot = 0;  // consecutive diagonals whose minimum exceeded the bound
  for (size_t s = 1; s <= n + m; ++s) {
    // Walls: D(0, s) and D(s, 0) are +inf for s > 0.
    if (s <= m) curr[0] = kInf;
    if (s <= n) curr[s] = kInf;
    const size_t ilo = s > m ? s - m : 1;      // interior: i, j >= 1
    const size_t ihi = std::min(n, s - 1);
    double diag_min = kInf;
    for (size_t i = ilo; i <= ihi; ++i) {
      const double best =
          std::min(std::min(prev[i - 1], prev[i]), prev2[i - 1]);
      const double v = best + cost_at(i - 1, s - i - 1);
      curr[i] = v;
      diag_min = std::min(diag_min, v);
    }
    const size_t lo = s > m ? s - m : 0;
    const size_t hi = std::min(n, s);
    if (lo > 0) curr[lo - 1] = kInf;
    if (hi < n) curr[hi + 1] = kInf;
    // Diag 1 holds walls only (paths start at (1, 1), diag 2); a path's
    // diagonal move skips one anti-diagonal, never two.
    if (s >= 2) {
      if (diag_min > bound) {
        if (++hot == 2) return kInf;
      } else {
        hot = 0;
      }
    }
    double* rot = prev2;
    prev2 = prev;
    prev = curr;
    curr = rot;
  }
  return prev[n];
}

double DtwAntidiagF64(const double* a, size_t n, const double* b, size_t m,
                      double bound) {
  return DtwAntidiag(n, m, bound, [&](size_t i, size_t j) {
    return std::abs(a[i] - b[j]);
  });
}

double DtwAntidiagP2d(const Point2d* a, size_t n, const Point2d* b,
                      size_t m, double bound) {
  return DtwAntidiag(n, m, bound, [&](size_t i, size_t j) {
    return PointDistance(a[i], b[j]);
  });
}

// ERP wavefront: unlike DTW, row 0 and column 0 are real path cells
// (prefix gap costs), accumulated in the same sequential order as the
// row kernels' boundary passes so values match them bit for bit.
template <typename T, typename GroundCost>
double ErpAntidiag(const T* a, size_t n, const T* b, size_t m, const T& gap,
                   double bound, const GroundCost& cost) {
  std::vector<double> gap_a(n + 1), col0(n + 1);
  std::vector<double> gap_b(m + 1), row0(m + 1);
  gap_a[0] = col0[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    gap_a[i] = cost(a[i - 1], gap);
    col0[i] = col0[i - 1] + gap_a[i];
  }
  gap_b[0] = row0[0] = 0.0;
  for (size_t j = 1; j <= m; ++j) {
    gap_b[j] = cost(b[j - 1], gap);
    row0[j] = row0[j - 1] + gap_b[j];
  }
  std::vector<double> buf(3 * (n + 1), kInf);
  double* prev2 = buf.data();
  double* prev = prev2 + (n + 1);
  double* curr = prev + (n + 1);
  prev[0] = 0.0;
  int hot = 0;
  for (size_t s = 1; s <= n + m; ++s) {
    double diag_min = kInf;
    if (s <= m) {
      curr[0] = row0[s];
      diag_min = curr[0];
    }
    if (s <= n) {
      curr[s] = col0[s];
      diag_min = std::min(diag_min, curr[s]);
    }
    const size_t ilo = s > m ? s - m : 1;
    const size_t ihi = std::min(n, s - 1);
    for (size_t i = ilo; i <= ihi; ++i) {
      // Same association as the row kernel: min(min(match, delete-a),
      // delete-b) over D(i-1,j-1), D(i-1,j), D(i,j-1).
      const double v =
          std::min(std::min(prev2[i - 1] + cost(a[i - 1], b[s - i - 1]),
                            prev[i - 1] + gap_a[i]),
                   prev[i] + gap_b[s - i]);
      curr[i] = v;
      diag_min = std::min(diag_min, v);
    }
    const size_t lo = s > m ? s - m : 0;
    const size_t hi = std::min(n, s);
    if (lo > 0) curr[lo - 1] = kInf;
    if (hi < n) curr[hi + 1] = kInf;
    if (diag_min > bound) {
      if (++hot == 2) return kInf;
    } else {
      hot = 0;
    }
    double* rot = prev2;
    prev2 = prev;
    prev = curr;
    curr = rot;
  }
  return prev[n];
}

double ErpAntidiagF64(const double* a, size_t n, const double* b, size_t m,
                      double gap, double bound) {
  return ErpAntidiag(a, n, b, m, gap, bound, [](double x, double y) {
    return std::abs(x - y);
  });
}

double ErpAntidiagP2d(const Point2d* a, size_t n, const Point2d* b,
                      size_t m, Point2d gap, double bound) {
  return ErpAntidiag(a, n, b, m, gap, bound,
                     [](const Point2d& x, const Point2d& y) {
                       return PointDistance(x, y);
                     });
}

constexpr Kernels kPortableTable = {
    "portable",    AbsDiffRow,    PointDistRow,      GatherRow,
    DtwCombineRow, GapCombineRow, FrechetCombineRow, Euclidean4F64,
    Euclidean4P2d, Linf4F64,      Linf4P2d,          Dtw4F64,
    Dtw4P2d,       LbKeoghBlock4, LbKimBlock,        DtwAntidiagF64,
    DtwAntidiagP2d, ErpAntidiagF64, ErpAntidiagP2d,
};

}  // namespace

const Kernels* GetPortableKernels() { return &kPortableTable; }

}  // namespace subseq::simd
