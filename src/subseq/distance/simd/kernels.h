// The dispatched kernel table behind the distance layer's hot loops.
//
// Every kernel is BIT-COMPATIBLE across dispatch levels: for identical
// inputs, the portable and AVX2 implementations produce element-wise
// identical doubles. That is a hard contract (enforced by
// tests/distance/simd_exactness_test.cc), achieved by construction:
//
//  * element-wise rows (abs_diff_row, point_dist_row, gather_row)
//    compute each output from its own inputs only — no reductions — so
//    lane width cannot change any rounding;
//  * DP combine rows split the recurrence into a vectorizable
//    independent pass t[j] = min(prev[j-1], prev[j]) (+ cost) and a
//    scalar carried scan over curr[j-1]. The split is value-exact under
//    IEEE-754: min(x+c, y+c) == min(x, y) + c bitwise (addition is
//    monotone; all DP values are >= 0 or +inf, so no -0.0 and no NaN),
//    and min is associative on such values;
//  * the 4-lane batch kernels are VERTICAL: lane k performs exactly the
//    per-candidate scalar operation sequence (same order of adds and
//    mins over j), so each lane's result is bit-identical to the scalar
//    single-pair kernel by construction. Horizontal reductions (which
//    would reorder summation) are never used.
//
// Kernel translation units are compiled with -ffp-contract=off so the
// compiler cannot fuse a*b+c into an FMA (which rounds once instead of
// twice and would break cross-level bit equality).

#ifndef SUBSEQ_DISTANCE_SIMD_KERNELS_H_
#define SUBSEQ_DISTANCE_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "subseq/core/types.h"
#include "subseq/distance/simd/cpu_features.h"

namespace subseq::simd {

/// One dispatch level's kernel implementations. All pointers are
/// non-null in a published table.
struct Kernels {
  /// Level name, for bench rows and debugging.
  const char* name;

  // ----------------------------------------------- element-wise rows
  /// out[j] = |a - b[j]| (ScalarGround cost row against one element).
  void (*abs_diff_row)(double a, const double* b, double* out, size_t n);
  /// out[j] = PointDistance(a, b[j]) (Point2dGround cost row).
  void (*point_dist_row)(const Point2d& a, const Point2d* b, double* out,
                         size_t n);
  /// out[j] = table[idx[j]] — substitution/gap row gather for the
  /// weighted edit distance. All idx[j] must be valid table offsets.
  void (*gather_row)(const double* table, const int32_t* idx, double* out,
                     size_t n);

  // ------------------------------- single-pair DP combine rows
  /// DTW row combine over absolute columns j in [j_lo, j_hi]:
  ///   curr[j] = min(prev[j-1], prev[j], curr[j-1]) + cost[j]
  /// with curr[j_lo - 1] already holding the left wall (+inf outside
  /// the band). Returns min over curr[j_lo..j_hi] (+inf when empty) —
  /// the early-abandon row minimum.
  double (*dtw_combine_row)(const double* prev, double* curr,
                            const double* cost, size_t j_lo, size_t j_hi);
  /// ERP / weighted-edit row combine over columns 0..m:
  ///   curr[0] = prev[0] + gap_a
  ///   curr[j] = min(prev[j-1] + sub[j], prev[j] + gap_a,
  ///                 curr[j-1] + gap_b[j])       for j in [1, m]
  /// (sub and gap_b are 1-indexed to align with the DP columns).
  /// Returns min over curr[0..m].
  double (*gap_combine_row)(const double* prev, double* curr,
                            const double* sub, double gap_a,
                            const double* gap_b, size_t m);
  /// Discrete-Frechet row combine over columns 0..m-1:
  ///   curr[0] = max(prev[0], cost[0])
  ///   curr[j] = max(min(prev[j-1], prev[j], curr[j-1]), cost[j])
  /// Returns min over curr[0..m-1] — the monotone row bound.
  double (*frechet_combine_row)(const double* prev, double* curr,
                                const double* cost, size_t m);

  // ----------------------------------- vertical 4-lane batch kernels
  // Lane layout: lanes[j * 4 + k] is element j of candidate k (Point2d
  // candidates arrive de-interleaved into lanes_x / lanes_y). Every
  // candidate has exactly n (resp. m) elements; out4 receives one
  // distance per lane, each bit-identical to the scalar single-pair
  // kernel on that (query, candidate) pair.
  /// out4[k] = sqrt(sum_j |a[j] - lane_k[j]|^2), summed in j order.
  void (*euclidean4_f64)(const double* a, const double* lanes, size_t n,
                         double* out4);
  void (*euclidean4_p2d)(const Point2d* a, const double* lanes_x,
                         const double* lanes_y, size_t n, double* out4);
  /// out4[k] = max_j ground(a[j], lane_k[j]) (Chebyshev / L-infinity).
  void (*linf4_f64)(const double* a, const double* lanes, size_t n,
                    double* out4);
  void (*linf4_p2d)(const Point2d* a, const double* lanes_x,
                    const double* lanes_y, size_t n, double* out4);
  /// Unconstrained-band DTW of `a` (n elements) against 4 candidates of
  /// m elements each; no early abandon (the batch caller has no bound).
  void (*dtw4_f64)(const double* a, size_t n, const double* lanes,
                   size_t m, double* out4);
  void (*dtw4_p2d)(const Point2d* a, size_t n, const double* lanes_x,
                   const double* lanes_y, size_t m, double* out4);
  /// LB_Keogh residual sums of 4 candidates (c0..c3, `len` elements
  /// each) against one envelope. Early-abandon contract per lane:
  /// out4[k] is the exact sum when it is <= cutoff and may be any
  /// partial sum > cutoff otherwise — partials are monotone
  /// non-decreasing, so the (out4[k] > cutoff) pruning DECISION is
  /// identical across levels and lane groupings even though abandoned
  /// values may differ.
  void (*lb_keogh_block4)(const double* upper, const double* lower,
                          size_t len, const double* c0, const double* c1,
                          const double* c2, const double* c3, double cutoff,
                          double* out4);
  /// LB_Kim bounds of `count` candidates from precomputed O(1)
  /// per-candidate features (first/last/min/max element), the cascade's
  /// cheapest stage. out[i] = max(E_i, |q_max - cmax[i]|,
  /// |q_min - cmin[i]|) where E_i is |q_first - first[i]| +
  /// |q_last - last[i]| when use_endpoint_sum != 0 (admissible only when
  /// the DP has more than one matched pair, i.e. n + m > 2) and
  /// max(|q_first - first[i]|, |q_last - last[i]|) otherwise. No early
  /// abandon: each output is O(1) and exact, so values — not just
  /// decisions — are bit-identical across levels.
  void (*lb_kim_block)(double q_first, double q_last, double q_min,
                       double q_max, int use_endpoint_sum,
                       const double* first, const double* last,
                       const double* cmin, const double* cmax, size_t count,
                       double* out);

  // ----------------------- anti-diagonal single-pair DP kernels
  // Wavefront evaluation of ONE unconstrained DP matrix: anti-diagonal
  // s = i + j depends only on s - 1 and s - 2, so all its cells compute
  // in parallel — the single-pair counterpart of the >= 4-candidate
  // vertical kernels. Cell values are bit-identical to the row kernels:
  // min(min(a, b) + c, d + c) == min3(a, b, d) + c under the no-NaN /
  // no--0.0 value domain (see the contract above), and every per-cell
  // cost is the same single scalar expression. Early abandon follows the
  // ComputeBounded contract: the exact distance is returned whenever it
  // is <= bound; otherwise any value > bound (here +inf) may be
  // returned. Abandonment requires TWO consecutive anti-diagonal minima
  // above the bound — a warping path's diagonal move skips one
  // anti-diagonal but can never skip two, so the decision is sound.
  /// Unconstrained DTW of a (n elements) vs b (m elements); n, m >= 1.
  double (*dtw_antidiag_f64)(const double* a, size_t n, const double* b,
                             size_t m, double bound);
  double (*dtw_antidiag_p2d)(const Point2d* a, size_t n, const Point2d* b,
                             size_t m, double bound);
  /// ERP with the given gap element; boundary prefix sums accumulate in
  /// the same sequential order as the row kernels. n, m >= 1.
  double (*erp_antidiag_f64)(const double* a, size_t n, const double* b,
                             size_t m, double gap, double bound);
  double (*erp_antidiag_p2d)(const Point2d* a, size_t n, const Point2d* b,
                             size_t m, Point2d gap, double bound);
};

/// The portable (scalar/auto-vectorizable) table. Always available.
const Kernels* GetPortableKernels();

/// The AVX2 table, or nullptr when the compiler could not build the
/// AVX2 translation unit (kernels_avx2.cc falls back to a stub).
const Kernels* GetAvx2Kernels();

/// The table for an explicit level; kAvx2 requires CpuSupportsAvx2().
const Kernels& GetKernelsAt(SimdLevel level);

/// The table for ActiveSimdLevel() — what the distance kernels call.
const Kernels& GetKernels();

}  // namespace subseq::simd

#endif  // SUBSEQ_DISTANCE_SIMD_KERNELS_H_
