// AVX2 kernel table. Compiled with -mavx2 -ffp-contract=off (see
// CMakeLists.txt); when the compiler cannot target AVX2 this unit
// degrades to a stub returning nullptr and dispatch stays portable.
//
// Bit-compatibility with kernels_portable.cc is by construction — the
// techniques are documented in kernels.h. Two points specific to this
// unit: _mm256_min_pd/_mm256_max_pd pick the second operand on ties,
// std::min/std::max pick the first, but every tied pair here has
// identical bit patterns (DP values and residuals are sums of
// non-negative terms — no -0.0, no NaN), so the choice is unobservable.
// And no FMA intrinsics are used anywhere, matching the two-rounding
// mul-then-add order of the portable kernels.

#include "subseq/distance/simd/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace subseq::simd {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Clears the sign bit — exactly std::abs for finite and infinite doubles.
inline __m256d Abs(__m256d v) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
}

void AbsDiffRow(double a, const double* b, double* out, size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d d = _mm256_sub_pd(va, _mm256_loadu_pd(b + j));
    _mm256_storeu_pd(out + j, Abs(d));
  }
  for (; j < n; ++j) out[j] = std::abs(a - b[j]);
}

void PointDistRow(const Point2d& a, const Point2d* b, double* out,
                  size_t n) {
  const __m256d ax = _mm256_set1_pd(a.x);
  const __m256d ay = _mm256_set1_pd(a.y);
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    // 4 points = 8 doubles [x0 y0 x1 y1 | x2 y2 x3 y3]; de-interleave.
    const double* pb = reinterpret_cast<const double*>(b + j);
    const __m256d v0 = _mm256_loadu_pd(pb);
    const __m256d v1 = _mm256_loadu_pd(pb + 4);
    const __m256d t0 = _mm256_permute2f128_pd(v0, v1, 0x20);
    const __m256d t1 = _mm256_permute2f128_pd(v0, v1, 0x31);
    const __m256d xs = _mm256_unpacklo_pd(t0, t1);
    const __m256d ys = _mm256_unpackhi_pd(t0, t1);
    const __m256d dx = _mm256_sub_pd(ax, xs);
    const __m256d dy = _mm256_sub_pd(ay, ys);
    const __m256d sum =
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    _mm256_storeu_pd(out + j, _mm256_sqrt_pd(sum));
  }
  for (; j < n; ++j) out[j] = PointDistance(a, b[j]);
}

void GatherRow(const double* table, const int32_t* idx, double* out,
               size_t n) {
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m128i vidx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + j));
    _mm256_storeu_pd(out + j, _mm256_i32gather_pd(table, vidx, 8));
  }
  for (; j < n; ++j) out[j] = table[static_cast<size_t>(idx[j])];
}

double DtwCombineRow(const double* prev, double* curr, const double* cost,
                     size_t j_lo, size_t j_hi) {
  if (j_hi < j_lo) return kInf;
  size_t j = j_lo;
  for (; j + 3 <= j_hi; j += 4) {
    const __m256d pm1 = _mm256_loadu_pd(prev + j - 1);
    const __m256d p = _mm256_loadu_pd(prev + j);
    const __m256d c = _mm256_loadu_pd(cost + j);
    _mm256_storeu_pd(curr + j, _mm256_add_pd(_mm256_min_pd(pm1, p), c));
  }
  for (; j <= j_hi; ++j) {
    curr[j] = std::min(prev[j - 1], prev[j]) + cost[j];
  }
  double row_min = kInf;
  for (j = j_lo; j <= j_hi; ++j) {
    curr[j] = std::min(curr[j], curr[j - 1] + cost[j]);
    row_min = std::min(row_min, curr[j]);
  }
  return row_min;
}

double GapCombineRow(const double* prev, double* curr, const double* sub,
                     double gap_a, const double* gap_b, size_t m) {
  const __m256d vgap_a = _mm256_set1_pd(gap_a);
  size_t j = 1;
  for (; j + 3 <= m; j += 4) {
    const __m256d match =
        _mm256_add_pd(_mm256_loadu_pd(prev + j - 1), _mm256_loadu_pd(sub + j));
    const __m256d del = _mm256_add_pd(_mm256_loadu_pd(prev + j), vgap_a);
    _mm256_storeu_pd(curr + j, _mm256_min_pd(match, del));
  }
  for (; j <= m; ++j) {
    curr[j] = std::min(prev[j - 1] + sub[j], prev[j] + gap_a);
  }
  curr[0] = prev[0] + gap_a;
  double row_min = curr[0];
  for (j = 1; j <= m; ++j) {
    curr[j] = std::min(curr[j], curr[j - 1] + gap_b[j]);
    row_min = std::min(row_min, curr[j]);
  }
  return row_min;
}

double FrechetCombineRow(const double* prev, double* curr,
                         const double* cost, size_t m) {
  size_t j = 1;
  for (; j + 4 <= m; j += 4) {
    _mm256_storeu_pd(curr + j, _mm256_min_pd(_mm256_loadu_pd(prev + j - 1),
                                             _mm256_loadu_pd(prev + j)));
  }
  for (; j < m; ++j) {
    curr[j] = std::min(prev[j - 1], prev[j]);
  }
  curr[0] = std::max(prev[0], cost[0]);
  double row_min = curr[0];
  for (j = 1; j < m; ++j) {
    curr[j] = std::max(std::min(curr[j], curr[j - 1]), cost[j]);
    row_min = std::min(row_min, curr[j]);
  }
  return row_min;
}

void Euclidean4F64(const double* a, const double* lanes, size_t n,
                   double* out4) {
  __m256d acc = _mm256_setzero_pd();
  for (size_t j = 0; j < n; ++j) {
    const __m256d d = Abs(_mm256_sub_pd(_mm256_set1_pd(a[j]),
                                        _mm256_loadu_pd(lanes + j * 4)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  _mm256_storeu_pd(out4, _mm256_sqrt_pd(acc));
}

void Euclidean4P2d(const Point2d* a, const double* lanes_x,
                   const double* lanes_y, size_t n, double* out4) {
  __m256d acc = _mm256_setzero_pd();
  for (size_t j = 0; j < n; ++j) {
    const __m256d dx = _mm256_sub_pd(_mm256_set1_pd(a[j].x),
                                     _mm256_loadu_pd(lanes_x + j * 4));
    const __m256d dy = _mm256_sub_pd(_mm256_set1_pd(a[j].y),
                                     _mm256_loadu_pd(lanes_y + j * 4));
    // sqrt-then-square matches the scalar PointDistance op order.
    const __m256d d = _mm256_sqrt_pd(
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  _mm256_storeu_pd(out4, _mm256_sqrt_pd(acc));
}

void Linf4F64(const double* a, const double* lanes, size_t n,
              double* out4) {
  __m256d acc = _mm256_setzero_pd();
  for (size_t j = 0; j < n; ++j) {
    const __m256d d = Abs(_mm256_sub_pd(_mm256_set1_pd(a[j]),
                                        _mm256_loadu_pd(lanes + j * 4)));
    acc = _mm256_max_pd(acc, d);
  }
  _mm256_storeu_pd(out4, acc);
}

void Linf4P2d(const Point2d* a, const double* lanes_x,
              const double* lanes_y, size_t n, double* out4) {
  __m256d acc = _mm256_setzero_pd();
  for (size_t j = 0; j < n; ++j) {
    const __m256d dx = _mm256_sub_pd(_mm256_set1_pd(a[j].x),
                                     _mm256_loadu_pd(lanes_x + j * 4));
    const __m256d dy = _mm256_sub_pd(_mm256_set1_pd(a[j].y),
                                     _mm256_loadu_pd(lanes_y + j * 4));
    const __m256d d = _mm256_sqrt_pd(
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)));
    acc = _mm256_max_pd(acc, d);
  }
  _mm256_storeu_pd(out4, acc);
}

// Shared vertical DTW recurrence: one __m256d per DP cell (4 lanes).
template <typename CostFn>
void Dtw4(size_t n, size_t m, double* out4, const CostFn& cost_at) {
  std::vector<double> buf(2 * 4 * (m + 1), kInf);
  double* prev = buf.data();
  double* curr = prev + 4 * (m + 1);
  _mm256_storeu_pd(prev, _mm256_setzero_pd());
  const __m256d vinf = _mm256_set1_pd(kInf);
  for (size_t i = 1; i <= n; ++i) {
    __m256d carry = vinf;  // curr column 0: the left wall
    _mm256_storeu_pd(curr, carry);
    for (size_t j = 1; j <= m; ++j) {
      const __m256d pm1 = _mm256_loadu_pd(prev + (j - 1) * 4);
      const __m256d p = _mm256_loadu_pd(prev + j * 4);
      const __m256d best = _mm256_min_pd(_mm256_min_pd(pm1, p), carry);
      carry = _mm256_add_pd(best, cost_at(i - 1, j - 1));
      _mm256_storeu_pd(curr + j * 4, carry);
    }
    std::swap(prev, curr);
  }
  _mm256_storeu_pd(out4, _mm256_loadu_pd(prev + m * 4));
}

void Dtw4F64(const double* a, size_t n, const double* lanes, size_t m,
             double* out4) {
  Dtw4(n, m, out4, [&](size_t i, size_t j) {
    return Abs(_mm256_sub_pd(_mm256_set1_pd(a[i]),
                             _mm256_loadu_pd(lanes + j * 4)));
  });
}

void Dtw4P2d(const Point2d* a, size_t n, const double* lanes_x,
             const double* lanes_y, size_t m, double* out4) {
  Dtw4(n, m, out4, [&](size_t i, size_t j) {
    const __m256d dx = _mm256_sub_pd(_mm256_set1_pd(a[i].x),
                                     _mm256_loadu_pd(lanes_x + j * 4));
    const __m256d dy = _mm256_sub_pd(_mm256_set1_pd(a[i].y),
                                     _mm256_loadu_pd(lanes_y + j * 4));
    return _mm256_sqrt_pd(
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)));
  });
}

void LbKeoghBlock4(const double* upper, const double* lower, size_t len,
                   const double* c0, const double* c1, const double* c2,
                   const double* c3, double cutoff, double* out4) {
  const __m256d vcut = _mm256_set1_pd(cutoff);
  const __m256d vzero = _mm256_setzero_pd();
  __m256d acc = vzero;
  for (size_t i = 0; i < len; ++i) {
    const __m256d c = _mm256_set_pd(c3[i], c2[i], c1[i], c0[i]);
    // Residual in max form: max(c - U, L - c, 0). Inside the envelope
    // this adds exactly +0.0 (no -0.0 can appear: x - x rounds to +0.0),
    // so the running sums match the branchy scalar adds bit-for-bit.
    const __m256d over = _mm256_sub_pd(c, _mm256_set1_pd(upper[i]));
    const __m256d under = _mm256_sub_pd(_mm256_set1_pd(lower[i]), c);
    acc = _mm256_add_pd(
        acc, _mm256_max_pd(_mm256_max_pd(over, under), vzero));
    // Joint early abandon: break only when EVERY lane's partial already
    // exceeds the cutoff — partials are monotone, so each lane's final
    // (value > cutoff) decision is unchanged by where we stop.
    if ((i & 15) == 15) {
      const __m256d gt = _mm256_cmp_pd(acc, vcut, _CMP_GT_OQ);
      if (_mm256_movemask_pd(gt) == 0xF) break;
    }
  }
  _mm256_storeu_pd(out4, acc);
}

void LbKimBlock(double q_first, double q_last, double q_min, double q_max,
                int use_endpoint_sum, const double* first,
                const double* last, const double* cmin, const double* cmax,
                size_t count, double* out) {
  const __m256d vqf = _mm256_set1_pd(q_first);
  const __m256d vql = _mm256_set1_pd(q_last);
  const __m256d vqmin = _mm256_set1_pd(q_min);
  const __m256d vqmax = _mm256_set1_pd(q_max);
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d df = Abs(_mm256_sub_pd(vqf, _mm256_loadu_pd(first + i)));
    const __m256d dl = Abs(_mm256_sub_pd(vql, _mm256_loadu_pd(last + i)));
    const __m256d ends =
        use_endpoint_sum ? _mm256_add_pd(df, dl) : _mm256_max_pd(df, dl);
    const __m256d dmax =
        Abs(_mm256_sub_pd(vqmax, _mm256_loadu_pd(cmax + i)));
    const __m256d dmin =
        Abs(_mm256_sub_pd(vqmin, _mm256_loadu_pd(cmin + i)));
    _mm256_storeu_pd(out + i,
                     _mm256_max_pd(_mm256_max_pd(ends, dmax), dmin));
  }
  for (; i < count; ++i) {
    const double df = std::abs(q_first - first[i]);
    const double dl = std::abs(q_last - last[i]);
    const double ends = use_endpoint_sum ? df + dl : std::max(df, dl);
    const double dmax = std::abs(q_max - cmax[i]);
    const double dmin = std::abs(q_min - cmin[i]);
    out[i] = std::max(std::max(ends, dmax), dmin);
  }
}

// Reverses the 4 lanes of a vector — anti-diagonal cells walk b (and the
// gap-cost rows) backwards as the row index i walks forwards.
inline __m256d Reverse(__m256d v) { return _mm256_permute4x64_pd(v, 0x1B); }

inline double HorizontalMin(__m256d v) {
  double lanes[4];
  _mm256_storeu_pd(lanes, v);
  return std::min(std::min(lanes[0], lanes[1]),
                  std::min(lanes[2], lanes[3]));
}

double DtwAntidiagF64(const double* a, size_t n, const double* b, size_t m,
                      double bound) {
  std::vector<double> buf(3 * (n + 1), kInf);
  double* prev2 = buf.data();
  double* prev = prev2 + (n + 1);
  double* curr = prev + (n + 1);
  prev[0] = 0.0;
  int hot = 0;
  const __m256d vinf = _mm256_set1_pd(kInf);
  for (size_t s = 1; s <= n + m; ++s) {
    if (s <= m) curr[0] = kInf;
    if (s <= n) curr[s] = kInf;
    const size_t ilo = s > m ? s - m : 1;
    const size_t ihi = std::min(n, s - 1);
    double diag_min = kInf;
    size_t i = ilo;
    __m256d vmin = vinf;
    // Lanes i..i+3 need b[s-i-1]..b[s-i-4]; i + 3 <= ihi <= s - 1
    // guarantees s - i - 4 >= 0, so the reversed load stays in range.
    for (; i + 3 <= ihi; i += 4) {
      const __m256d best = _mm256_min_pd(
          _mm256_min_pd(_mm256_loadu_pd(prev + i - 1),
                        _mm256_loadu_pd(prev + i)),
          _mm256_loadu_pd(prev2 + i - 1));
      const __m256d cost = Abs(
          _mm256_sub_pd(_mm256_loadu_pd(a + i - 1),
                        Reverse(_mm256_loadu_pd(b + (s - i - 4)))));
      const __m256d v = _mm256_add_pd(best, cost);
      _mm256_storeu_pd(curr + i, v);
      vmin = _mm256_min_pd(vmin, v);
    }
    diag_min = HorizontalMin(vmin);
    for (; i <= ihi; ++i) {
      const double best =
          std::min(std::min(prev[i - 1], prev[i]), prev2[i - 1]);
      const double v = best + std::abs(a[i - 1] - b[s - i - 1]);
      curr[i] = v;
      diag_min = std::min(diag_min, v);
    }
    const size_t lo = s > m ? s - m : 0;
    const size_t hi = std::min(n, s);
    if (lo > 0) curr[lo - 1] = kInf;
    if (hi < n) curr[hi + 1] = kInf;
    if (s >= 2) {
      if (diag_min > bound) {
        if (++hot == 2) return kInf;
      } else {
        hot = 0;
      }
    }
    double* rot = prev2;
    prev2 = prev;
    prev = curr;
    curr = rot;
  }
  return prev[n];
}

double ErpAntidiagF64(const double* a, size_t n, const double* b, size_t m,
                      double gap, double bound) {
  std::vector<double> gap_a(n + 1), col0(n + 1);
  std::vector<double> gap_b(m + 1), row0(m + 1);
  gap_a[0] = col0[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    gap_a[i] = std::abs(a[i - 1] - gap);
    col0[i] = col0[i - 1] + gap_a[i];
  }
  gap_b[0] = row0[0] = 0.0;
  for (size_t j = 1; j <= m; ++j) {
    gap_b[j] = std::abs(b[j - 1] - gap);
    row0[j] = row0[j - 1] + gap_b[j];
  }
  std::vector<double> buf(3 * (n + 1), kInf);
  double* prev2 = buf.data();
  double* prev = prev2 + (n + 1);
  double* curr = prev + (n + 1);
  prev[0] = 0.0;
  int hot = 0;
  const __m256d vinf = _mm256_set1_pd(kInf);
  for (size_t s = 1; s <= n + m; ++s) {
    double diag_min = kInf;
    if (s <= m) {
      curr[0] = row0[s];
      diag_min = curr[0];
    }
    if (s <= n) {
      curr[s] = col0[s];
      diag_min = std::min(diag_min, curr[s]);
    }
    const size_t ilo = s > m ? s - m : 1;
    const size_t ihi = std::min(n, s - 1);
    size_t i = ilo;
    __m256d vmin = vinf;
    for (; i + 3 <= ihi; i += 4) {
      // Lanes i..i+3: gap_b index s-i >= 4 and b index s-i-1 >= 4
      // whenever i + 3 <= s - 1, so both reversed loads are in range.
      const __m256d sub = Abs(
          _mm256_sub_pd(_mm256_loadu_pd(a + i - 1),
                        Reverse(_mm256_loadu_pd(b + (s - i - 4)))));
      const __m256d match =
          _mm256_add_pd(_mm256_loadu_pd(prev2 + i - 1), sub);
      const __m256d del_a = _mm256_add_pd(_mm256_loadu_pd(prev + i - 1),
                                          _mm256_loadu_pd(gap_a.data() + i));
      const __m256d del_b =
          _mm256_add_pd(_mm256_loadu_pd(prev + i),
                        Reverse(_mm256_loadu_pd(gap_b.data() + (s - i - 3))));
      const __m256d v =
          _mm256_min_pd(_mm256_min_pd(match, del_a), del_b);
      _mm256_storeu_pd(curr + i, v);
      vmin = _mm256_min_pd(vmin, v);
    }
    diag_min = std::min(diag_min, HorizontalMin(vmin));
    for (; i <= ihi; ++i) {
      const double v =
          std::min(std::min(prev2[i - 1] + std::abs(a[i - 1] - b[s - i - 1]),
                            prev[i - 1] + gap_a[i]),
                   prev[i] + gap_b[s - i]);
      curr[i] = v;
      diag_min = std::min(diag_min, v);
    }
    const size_t lo = s > m ? s - m : 0;
    const size_t hi = std::min(n, s);
    if (lo > 0) curr[lo - 1] = kInf;
    if (hi < n) curr[hi + 1] = kInf;
    if (diag_min > bound) {
      if (++hot == 2) return kInf;
    } else {
      hot = 0;
    }
    double* rot = prev2;
    prev2 = prev;
    prev = curr;
    curr = rot;
  }
  return prev[n];
}

// The Point2d wavefronts are sqrt-latency-bound, so vectorizing the
// min/add halo buys nothing measurable; reuse the portable reference
// implementation to keep one source of truth (bit-identity is then
// trivial).
double DtwAntidiagP2d(const Point2d* a, size_t n, const Point2d* b,
                      size_t m, double bound) {
  return GetPortableKernels()->dtw_antidiag_p2d(a, n, b, m, bound);
}

double ErpAntidiagP2d(const Point2d* a, size_t n, const Point2d* b,
                      size_t m, Point2d gap, double bound) {
  return GetPortableKernels()->erp_antidiag_p2d(a, n, b, m, gap, bound);
}

constexpr Kernels kAvx2Table = {
    "avx2",        AbsDiffRow,    PointDistRow,      GatherRow,
    DtwCombineRow, GapCombineRow, FrechetCombineRow, Euclidean4F64,
    Euclidean4P2d, Linf4F64,      Linf4P2d,          Dtw4F64,
    Dtw4P2d,       LbKeoghBlock4, LbKimBlock,        DtwAntidiagF64,
    DtwAntidiagP2d, ErpAntidiagF64, ErpAntidiagP2d,
};

}  // namespace

const Kernels* GetAvx2Kernels() { return &kAvx2Table; }

}  // namespace subseq::simd

#else  // !defined(__AVX2__)

namespace subseq::simd {

const Kernels* GetAvx2Kernels() { return nullptr; }

}  // namespace subseq::simd

#endif  // defined(__AVX2__)
