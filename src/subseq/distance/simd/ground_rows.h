// Glue between the templated distance implementations and the dispatched
// cost-row kernels: fills one DP cost row for whatever ground the
// instantiation uses. The two vectorized grounds (scalar |a-b| and
// planar PointDistance) route to the kernel table; every other ground
// keeps the generic scalar loop, so template generality is unchanged.

#ifndef SUBSEQ_DISTANCE_SIMD_GROUND_ROWS_H_
#define SUBSEQ_DISTANCE_SIMD_GROUND_ROWS_H_

#include <cstddef>
#include <type_traits>

#include "subseq/core/types.h"
#include "subseq/distance/ground.h"
#include "subseq/distance/simd/kernels.h"

namespace subseq::simd {

/// out[j] = Ground::Between(a, b[j]) for j in [0, n).
template <typename T, typename Ground>
inline void CostRowFrom(const Kernels& kernels, const T& a, const T* b,
                        double* out, size_t n) {
  if constexpr (std::is_same_v<T, double> &&
                std::is_same_v<Ground, ScalarGround>) {
    kernels.abs_diff_row(a, b, out, n);
  } else if constexpr (std::is_same_v<T, Point2d> &&
                       std::is_same_v<Ground, Point2dGround>) {
    kernels.point_dist_row(a, b, out, n);
  } else {
    for (size_t j = 0; j < n; ++j) out[j] = Ground::Between(a, b[j]);
  }
}

/// out[j] = Ground::Between(b[j], a) — the flipped argument order some
/// DP formulations use for gap rows. For the two kernel-backed grounds
/// the flip is bit-irrelevant (|a-b| and PointDistance square the
/// coordinate differences, and (-x)*(-x) == x*x bitwise), so they share
/// the kernels; the generic loop preserves the caller's exact order.
template <typename T, typename Ground>
inline void CostRowTo(const Kernels& kernels, const T* b, const T& a,
                      double* out, size_t n) {
  if constexpr ((std::is_same_v<T, double> &&
                 std::is_same_v<Ground, ScalarGround>) ||
                (std::is_same_v<T, Point2d> &&
                 std::is_same_v<Ground, Point2dGround>)) {
    CostRowFrom<T, Ground>(kernels, a, b, out, n);
  } else {
    for (size_t j = 0; j < n; ++j) out[j] = Ground::Between(b[j], a);
  }
}

}  // namespace subseq::simd

#endif  // SUBSEQ_DISTANCE_SIMD_GROUND_ROWS_H_
