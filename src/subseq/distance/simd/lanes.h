// Lane packing for the vertical 4-candidate batch kernels: groups the
// candidates of a ComputeMany call into packs of 4 equal-length
// sequences, transposes each pack into the lanes[j*4 + k] layout
// (Point2d de-interleaved into x/y planes) and hands it to a kernel.
// Stragglers and length mismatches fall back to the caller's per-pair
// path, which is bit-identical by the kernel contract.

#ifndef SUBSEQ_DISTANCE_SIMD_LANES_H_
#define SUBSEQ_DISTANCE_SIMD_LANES_H_

#include <cstddef>
#include <span>
#include <type_traits>
#include <vector>

#include "subseq/core/types.h"

namespace subseq::simd {

/// Runs the candidates of size exactly `n` through `kernel4` in packs
/// of 4; any other size gets `mismatch` written directly. `kernel4`
/// receives (lanes, lanes_y, out4) — lanes_y is nullptr for scalar
/// elements — and `scalar1(k)` handles pack stragglers one pair at a
/// time. Output order is by candidate index regardless of grouping.
template <typename T, typename Kernel4, typename Scalar1>
inline void ForEachLaneGroup(std::span<const std::span<const T>> bs,
                             size_t n, double mismatch, double* out,
                             const Kernel4& kernel4, const Scalar1& scalar1) {
  static_assert(std::is_same_v<T, double> || std::is_same_v<T, Point2d>,
                "vertical lanes exist for scalar and planar elements only");
  std::vector<double> lanes(4 * n);
  std::vector<double> lanes_y;
  if constexpr (std::is_same_v<T, Point2d>) lanes_y.resize(4 * n);
  size_t group[4];
  size_t pending = 0;
  auto flush = [&] {
    if (pending == 4) {
      for (size_t j = 0; j < n; ++j) {
        for (size_t g = 0; g < 4; ++g) {
          if constexpr (std::is_same_v<T, double>) {
            lanes[j * 4 + g] = bs[group[g]][j];
          } else {
            lanes[j * 4 + g] = bs[group[g]][j].x;
            lanes_y[j * 4 + g] = bs[group[g]][j].y;
          }
        }
      }
      double out4[4];
      kernel4(lanes.data(), lanes_y.empty() ? nullptr : lanes_y.data(),
              out4);
      for (size_t g = 0; g < 4; ++g) out[group[g]] = out4[g];
    } else {
      for (size_t g = 0; g < pending; ++g) scalar1(group[g]);
    }
    pending = 0;
  };
  for (size_t k = 0; k < bs.size(); ++k) {
    if (bs[k].size() != n) {
      out[k] = mismatch;
      continue;
    }
    group[pending++] = k;
    if (pending == 4) flush();
  }
  flush();
}

}  // namespace subseq::simd

#endif  // SUBSEQ_DISTANCE_SIMD_LANES_H_
