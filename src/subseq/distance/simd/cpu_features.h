// Runtime SIMD dispatch level for the distance kernels.
//
// The level is resolved ONCE, on first use, from three inputs in
// priority order:
//   1. the per-process test override (SetSimdLevelForTesting) — exactness
//      suites force both code paths on one machine;
//   2. the SUBSEQ_SIMD environment knob ("portable" | "avx2" | "auto");
//      requesting a level the build or the CPU cannot honor falls back
//      to the best supported one (best-effort, never an error);
//   3. CPU detection: AVX2 is selected only when the CPU reports it AND
//      the AVX2 kernel translation unit was actually compiled with
//      -mavx2 support (see kernels_avx2.cc).
//
// Every kernel is bit-compatible across levels (see kernels.h), so the
// knob trades wall-clock only — results, matches and stats are identical
// at any setting.

#ifndef SUBSEQ_DISTANCE_SIMD_CPU_FEATURES_H_
#define SUBSEQ_DISTANCE_SIMD_CPU_FEATURES_H_

namespace subseq::simd {

/// Dispatch levels, ordered by capability.
enum class SimdLevel : int {
  kPortable = 0,
  kAvx2 = 1,
};

/// Stable name for logs and bench rows ("portable", "avx2").
const char* SimdLevelName(SimdLevel level);

/// True when this process can execute the AVX2 kernels: the CPU reports
/// AVX2 and the AVX2 translation unit was compiled with vector support.
bool CpuSupportsAvx2();

/// The level detection + the SUBSEQ_SIMD knob resolve to (ignores the
/// test override). Computed once and cached.
SimdLevel DetectedSimdLevel();

/// The level the kernel dispatch actually uses: the test override when
/// set, DetectedSimdLevel() otherwise.
SimdLevel ActiveSimdLevel();

/// Forces the dispatch level for the current process (exactness tests run
/// every kernel at both levels on one machine). Returns false — and
/// leaves the level unchanged — when the requested level is not
/// executable here (kAvx2 without CPU/build support). Not thread-safe
/// against concurrent kernel use; tests set it around single-threaded
/// sections.
bool SetSimdLevelForTesting(SimdLevel level);

/// Clears the test override; dispatch returns to DetectedSimdLevel().
void ClearSimdLevelForTesting();

/// Minimum min(n, m) at which unconstrained single-pair DTW/ERP calls
/// take the anti-diagonal wavefront kernels instead of the row kernels
/// (short pairs are dominated by setup cost). Negative = wavefront
/// disabled. Resolution mirrors the SIMD level: the test override wins,
/// then the SUBSEQ_ANTIDIAG environment knob ("off" disables; a decimal
/// integer sets the threshold), then the built-in default. Both paths
/// are bit-identical (kernels.h), so the knob trades wall-clock only.
int AntidiagThreshold();

/// Forces the wavefront threshold for the current process (exactness
/// tests force both code paths on every length). Negative disables.
void SetAntidiagThresholdForTesting(int threshold);

/// Clears the test override; the env knob / default applies again.
void ClearAntidiagThresholdForTesting();

}  // namespace subseq::simd

#endif  // SUBSEQ_DISTANCE_SIMD_CPU_FEATURES_H_
