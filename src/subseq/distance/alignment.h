// Alignment (coupling-sequence) representation and validation.
//
// Section 4 of the paper expresses DTW, ERP, discrete Frechet and
// Levenshtein as optimal alignments C = (w_1..w_K), each coupling w_k
// matching an element of X with an element of Q (or with a gap, for
// edit-style distances). The consistency proof restricts an optimal
// alignment of (X, Q) to a subsequence SX and reads off the matched SQ;
// RestrictToRange implements exactly that construction, and the tests use
// it to validate consistency empirically.

#ifndef SUBSEQ_DISTANCE_ALIGNMENT_H_
#define SUBSEQ_DISTANCE_ALIGNMENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "subseq/core/sequence.h"

namespace subseq {

/// What a single coupling does.
enum class AlignOp {
  kMatch,  // a[i] aligned with b[j]
  kGapA,   // a[i] aligned with the gap element (deletion from a)
  kGapB,   // b[j] aligned with the gap element (insertion from b)
};

/// One step of an alignment. For kGapA the index j refers to the position
/// in b *before* which the gap occurs (and vice versa for kGapB); it is
/// recorded so paths remain monotone and printable.
struct Coupling {
  int32_t i = 0;
  int32_t j = 0;
  AlignOp op = AlignOp::kMatch;
  double cost = 0.0;

  friend bool operator==(const Coupling& x, const Coupling& y) {
    return x.i == y.i && x.j == y.j && x.op == y.op;
  }
};

/// A full alignment between two sequences plus its total distance value
/// (sum of coupling costs, or max for the discrete Frechet distance).
struct Alignment {
  double distance = 0.0;
  std::vector<Coupling> couplings;
};

/// Verifies the boundary, monotonicity and continuity properties of an
/// alignment between sequences of lengths len_a and len_b (Keogh 2002,
/// restated in Section 4). `allow_gaps` admits kGapA/kGapB steps
/// (ERP / Levenshtein); otherwise every step must be a kMatch whose indices
/// advance by at most one (DTW / DFD). Returns an error message, or
/// std::nullopt if the alignment is valid.
std::optional<std::string> ValidateAlignment(const Alignment& alignment,
                                             int32_t len_a, int32_t len_b,
                                             bool allow_gaps);

/// The paper's consistency construction: given an alignment between a and
/// b and a subsequence interval of a, returns the interval [c, d] of b
/// spanned by the couplings that touch the interval (earliest matching
/// element of the first index, last matching element of the last index).
/// Returns nullopt if no kMatch coupling touches the interval (possible
/// only for gap-based distances where the whole interval aligns to gaps).
std::optional<Interval> RestrictToRange(const Alignment& alignment,
                                        const Interval& a_interval);

/// Sum of coupling costs restricted to couplings whose a-index lies in
/// a_interval (used to cross-check the consistency proof: this restricted
/// cost upper-bounds d(SQ, SX) for sum-based distances).
double RestrictedCost(const Alignment& alignment, const Interval& a_interval);

/// Max of coupling costs restricted to the interval (Frechet analogue).
double RestrictedMaxCost(const Alignment& alignment,
                         const Interval& a_interval);

}  // namespace subseq

#endif  // SUBSEQ_DISTANCE_ALIGNMENT_H_
