// SequenceDistance<T>: the abstract interface all distance measures
// implement, plus the property flags the framework relies on.
//
// The paper's framework (Sections 4-6) needs to know two things about a
// distance:
//   * is_consistent(): Definition 1 holds, so the window filter (Lemma 2/3)
//     has no false dismissals;
//   * is_metric(): the triangle inequality holds, so metric indexes
//     (reference net, cover tree, MV pivots) may be used for the filter.
//
// Of the shipped distances: Euclidean, Hamming, ERP, discrete Frechet and
// Levenshtein are metric + consistent; DTW is consistent but NOT metric.

#ifndef SUBSEQ_DISTANCE_DISTANCE_H_
#define SUBSEQ_DISTANCE_DISTANCE_H_

#include <cstddef>
#include <limits>
#include <span>
#include <string_view>

namespace subseq {

/// Sentinel for "no similarity" / length-mismatch for rigid distances.
inline constexpr double kInfiniteDistance =
    std::numeric_limits<double>::infinity();

/// Signed view of a container index for band arithmetic. Always use
/// this (never `long`, which is 32-bit on LLP64 targets such as 64-bit
/// Windows and would overflow for sequences past 2^31 elements).
inline constexpr std::ptrdiff_t SignedIndex(size_t i) {
  return static_cast<std::ptrdiff_t>(i);
}

/// a - b as a signed quantity, safe for any size_t operands.
inline constexpr std::ptrdiff_t IndexDiff(size_t a, size_t b) {
  return SignedIndex(a) - SignedIndex(b);
}

/// Abstract distance measure between two element sequences.
///
/// Implementations are immutable and thread-compatible: Compute() has no
/// side effects beyond scratch buffers local to the call.
template <typename T>
class SequenceDistance {
 public:
  virtual ~SequenceDistance() = default;

  /// The distance between sequences a and b.
  virtual double Compute(std::span<const T> a, std::span<const T> b) const = 0;

  /// Early-abandoning variant: must return the exact distance if it is
  /// <= upper_bound, and may return any value > upper_bound otherwise
  /// (implementations typically return +infinity once every DP state in a
  /// row exceeds the bound). The default forwards to Compute().
  virtual double ComputeBounded(std::span<const T> a, std::span<const T> b,
                                double upper_bound) const {
    (void)upper_bound;
    return Compute(a, b);
  }

  /// Batched distances: out[k] = Compute(a, bs[k]) for every candidate.
  /// The contract is BIT-IDENTITY with the per-pair path: each out[k]
  /// equals the corresponding Compute() result exactly, so callers may
  /// batch or not without changing any observable result or statistic.
  /// SIMD overrides honor this with vertical lanes that preserve each
  /// candidate's scalar operation order (see distance/simd/kernels.h).
  /// The default is the per-pair loop.
  virtual void ComputeMany(std::span<const T> a,
                           std::span<const std::span<const T>> bs,
                           double* out) const {
    for (size_t k = 0; k < bs.size(); ++k) out[k] = Compute(a, bs[k]);
  }

  /// Short stable identifier ("erp", "dtw", "levenshtein", ...).
  virtual std::string_view name() const = 0;

  /// True if the distance obeys symmetry + triangle inequality.
  virtual bool is_metric() const = 0;

  /// True if the distance obeys the paper's consistency property
  /// (Definition 1): for all Q, X and every subsequence SX of X there is a
  /// subsequence SQ of Q with d(SQ, SX) <= d(Q, X).
  virtual bool is_consistent() const = 0;
};

}  // namespace subseq

#endif  // SUBSEQ_DISTANCE_DISTANCE_H_
