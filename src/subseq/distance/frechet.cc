#include "subseq/distance/frechet.h"

#include <algorithm>
#include <vector>

#include "subseq/distance/simd/ground_rows.h"
#include "subseq/distance/simd/kernels.h"

namespace subseq {

template <typename T, typename Ground>
double FrechetDistance<T, Ground>::Compute(std::span<const T> a,
                                           std::span<const T> b) const {
  return ComputeBounded(a, b, kInfiniteDistance);
}

template <typename T, typename Ground>
double FrechetDistance<T, Ground>::ComputeBounded(std::span<const T> a,
                                                  std::span<const T> b,
                                                  double upper_bound) const {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 && m == 0) return 0.0;
  if (n == 0 || m == 0) return kInfiniteDistance;

  // DP over the n x m grid: D(i,j) = max(ground(i,j),
  //   min(D(i-1,j-1), D(i-1,j), D(i,j-1))).
  // Cost rows and the row combine run through the dispatched kernels
  // (bit-identical at every level).
  const simd::Kernels& kernels = simd::GetKernels();
  std::vector<double> prev(m, 0.0);
  std::vector<double> curr(m, 0.0);
  std::vector<double> cost(m, 0.0);
  simd::CostRowFrom<T, Ground>(kernels, a[0], b.data(), cost.data(), m);
  prev[0] = cost[0];
  for (size_t j = 1; j < m; ++j) {
    prev[j] = std::max(prev[j - 1], cost[j]);
  }
  for (size_t i = 1; i < n; ++i) {
    simd::CostRowFrom<T, Ground>(kernels, a[i], b.data(), cost.data(), m);
    const double row_min = kernels.frechet_combine_row(
        prev.data(), curr.data(), cost.data(), m);
    // D values are non-decreasing along any remaining path (max-compose),
    // so the row minimum lower-bounds the final value.
    if (row_min > upper_bound) return kInfiniteDistance;
    std::swap(prev, curr);
  }
  return prev[m - 1];
}

template <typename T, typename Ground>
Alignment FrechetDistance<T, Ground>::ComputeWithPath(
    std::span<const T> a, std::span<const T> b) const {
  const size_t n = a.size();
  const size_t m = b.size();
  Alignment result;
  if (n == 0 || m == 0) {
    result.distance = (n == 0 && m == 0) ? 0.0 : kInfiniteDistance;
    return result;
  }

  std::vector<double> dp(n * m, 0.0);
  auto at = [&](size_t i, size_t j) -> double& { return dp[i * m + j]; };
  at(0, 0) = Ground::Between(a[0], b[0]);
  for (size_t j = 1; j < m; ++j) {
    at(0, j) = std::max(at(0, j - 1), Ground::Between(a[0], b[j]));
  }
  for (size_t i = 1; i < n; ++i) {
    at(i, 0) = std::max(at(i - 1, 0), Ground::Between(a[i], b[0]));
    for (size_t j = 1; j < m; ++j) {
      const double reach =
          std::min({at(i - 1, j - 1), at(i - 1, j), at(i, j - 1)});
      at(i, j) = std::max(reach, Ground::Between(a[i], b[j]));
    }
  }
  result.distance = at(n - 1, m - 1);

  // Backtrack: move to the predecessor with the smallest reach value.
  size_t i = n - 1;
  size_t j = m - 1;
  for (;;) {
    result.couplings.push_back(
        Coupling{static_cast<int32_t>(i), static_cast<int32_t>(j),
                 AlignOp::kMatch, Ground::Between(a[i], b[j])});
    if (i == 0 && j == 0) break;
    if (i == 0) {
      --j;
    } else if (j == 0) {
      --i;
    } else {
      const double diag = at(i - 1, j - 1);
      const double up = at(i - 1, j);
      const double left = at(i, j - 1);
      if (diag <= up && diag <= left) {
        --i;
        --j;
      } else if (up <= left) {
        --i;
      } else {
        --j;
      }
    }
  }
  std::reverse(result.couplings.begin(), result.couplings.end());
  return result;
}

template class FrechetDistance<double, ScalarGround>;
template class FrechetDistance<Point2d, Point2dGround>;

}  // namespace subseq
