// ERP — Edit distance with Real Penalty (Chen & Ng, VLDB 2004).
//
// ERP "marries" Lp-norms and edit distance: unmatched elements are aligned
// against a constant gap element g and charged their ground distance to g.
// Unlike DTW it satisfies the triangle inequality, so it is both metric and
// consistent — one of the two time-series distances used in the paper's
// evaluation (Figs. 4, 6, 7, 10).

#ifndef SUBSEQ_DISTANCE_ERP_H_
#define SUBSEQ_DISTANCE_ERP_H_

#include <span>

#include "subseq/core/types.h"
#include "subseq/distance/alignment.h"
#include "subseq/distance/distance.h"
#include "subseq/distance/ground.h"

namespace subseq {

/// ERP distance with gap element Ground::GapElement().
template <typename T, typename Ground>
class ErpDistance final : public SequenceDistance<T> {
 public:
  ErpDistance() = default;

  double Compute(std::span<const T> a, std::span<const T> b) const override;

  double ComputeBounded(std::span<const T> a, std::span<const T> b,
                        double upper_bound) const override;

  /// Computes the distance together with an optimal alignment; kGapA /
  /// kGapB couplings carge the ground distance of the skipped element to
  /// the gap element.
  Alignment ComputeWithPath(std::span<const T> a, std::span<const T> b) const;

  std::string_view name() const override { return "erp"; }
  bool is_metric() const override { return true; }
  bool is_consistent() const override { return true; }
};

/// ERP over scalar time series (gap element 0).
using ErpDistance1D = ErpDistance<double, ScalarGround>;
/// ERP over planar trajectories (gap element the origin).
using ErpDistance2D = ErpDistance<Point2d, Point2dGround>;

extern template class ErpDistance<double, ScalarGround>;
extern template class ErpDistance<Point2d, Point2dGround>;

}  // namespace subseq

#endif  // SUBSEQ_DISTANCE_ERP_H_
