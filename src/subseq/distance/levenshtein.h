// Levenshtein (edit) distance with unit costs (Levenshtein 1966).
//
// The string distance used throughout the paper's PROTEINS experiments
// (Figs. 4, 5, 8, 12). Metric and consistent. On length-l windows the
// maximum possible distance is l, which is how the paper expresses query
// ranges as a percentage of the maximum distance (l = 20 there).

#ifndef SUBSEQ_DISTANCE_LEVENSHTEIN_H_
#define SUBSEQ_DISTANCE_LEVENSHTEIN_H_

#include <span>

#include "subseq/distance/alignment.h"
#include "subseq/distance/distance.h"

namespace subseq {

/// Unit-cost edit distance over any equality-comparable element type.
template <typename T>
class LevenshteinDistance final : public SequenceDistance<T> {
 public:
  LevenshteinDistance() = default;

  double Compute(std::span<const T> a, std::span<const T> b) const override;

  double ComputeBounded(std::span<const T> a, std::span<const T> b,
                        double upper_bound) const override;

  /// Computes the distance together with an optimal edit script
  /// (kMatch couplings carry cost 0 or 1 for substitutions; kGapA / kGapB
  /// are deletions / insertions with cost 1).
  Alignment ComputeWithPath(std::span<const T> a, std::span<const T> b) const;

  std::string_view name() const override { return "levenshtein"; }
  bool is_metric() const override { return true; }
  bool is_consistent() const override { return true; }
};

extern template class LevenshteinDistance<char>;
extern template class LevenshteinDistance<double>;

}  // namespace subseq

#endif  // SUBSEQ_DISTANCE_LEVENSHTEIN_H_
