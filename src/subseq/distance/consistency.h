// Empirical checkers for the two properties the framework depends on:
// consistency (Definition 1) and the metric axioms.
//
// These are exhaustive / sampled verifiers used by the test suite and by
// users who want to qualify a custom distance before plugging it into the
// framework. They are O(|Q|^2 |X|^2) distance evaluations — intended for
// short sequences, not production data.

#ifndef SUBSEQ_DISTANCE_CONSISTENCY_H_
#define SUBSEQ_DISTANCE_CONSISTENCY_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "subseq/core/sequence.h"
#include "subseq/core/types.h"
#include "subseq/distance/distance.h"

namespace subseq {

/// A counterexample to Definition 1: a subsequence SX of X such that *no*
/// subsequence SQ of Q satisfies d(SQ, SX) <= d(Q, X).
struct ConsistencyViolation {
  Interval sx;               // the offending subsequence of X
  double best_subseq = 0.0;  // min over SQ of d(SQ, SX)
  double full = 0.0;         // d(Q, X)
};

/// Exhaustively verifies consistency of `dist` for the pair (q, x):
/// for every subsequence SX of x (length >= min_len), checks that some
/// subsequence SQ of q has d(SQ, SX) <= d(q, x). Returns the first
/// violation found, or nullopt if the property holds for this pair.
template <typename T>
std::optional<ConsistencyViolation> FindConsistencyViolation(
    const SequenceDistance<T>& dist, std::span<const T> q,
    std::span<const T> x, int32_t min_len = 1);

/// Verifies the metric axioms (identity, non-negativity, symmetry, and the
/// triangle inequality over all triples) on the given sample of sequences.
/// Returns a description of the first violated axiom, or nullopt.
/// `tolerance` absorbs floating-point rounding in the triangle check.
template <typename T>
std::optional<std::string> CheckMetricAxioms(
    const SequenceDistance<T>& dist,
    const std::vector<std::vector<T>>& samples, double tolerance = 1e-9);

extern template std::optional<ConsistencyViolation>
FindConsistencyViolation<char>(const SequenceDistance<char>&,
                               std::span<const char>, std::span<const char>,
                               int32_t);
extern template std::optional<ConsistencyViolation>
FindConsistencyViolation<double>(const SequenceDistance<double>&,
                                 std::span<const double>,
                                 std::span<const double>, int32_t);
extern template std::optional<ConsistencyViolation>
FindConsistencyViolation<Point2d>(const SequenceDistance<Point2d>&,
                                  std::span<const Point2d>,
                                  std::span<const Point2d>, int32_t);

extern template std::optional<std::string> CheckMetricAxioms<char>(
    const SequenceDistance<char>&, const std::vector<std::vector<char>>&,
    double);
extern template std::optional<std::string> CheckMetricAxioms<double>(
    const SequenceDistance<double>&, const std::vector<std::vector<double>>&,
    double);
extern template std::optional<std::string> CheckMetricAxioms<Point2d>(
    const SequenceDistance<Point2d>&,
    const std::vector<std::vector<Point2d>>&, double);

}  // namespace subseq

#endif  // SUBSEQ_DISTANCE_CONSISTENCY_H_
