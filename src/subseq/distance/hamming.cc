#include "subseq/distance/hamming.h"

namespace subseq {

template class HammingDistance<char>;
template class HammingDistance<double>;

}  // namespace subseq
