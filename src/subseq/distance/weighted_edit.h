// Weighted edit distance — the biological variant the paper's related
// work points at (BLAST approximates "variations of the Edit distance,
// with appropriate weights"; Smith-Waterman / Needleman-Wunsch scoring).
//
// The distance is metric iff the per-symbol cost model is itself a metric
// on the alphabet extended with the gap symbol; SubstitutionCostModel
// validates exactly that at construction. Consistency holds for any
// non-negative cost model (the Section 4 sum-alignment argument).

#ifndef SUBSEQ_DISTANCE_WEIGHTED_EDIT_H_
#define SUBSEQ_DISTANCE_WEIGHTED_EDIT_H_

#include <array>
#include <span>
#include <string>

#include "subseq/core/status.h"
#include "subseq/distance/alignment.h"
#include "subseq/distance/distance.h"

namespace subseq {

/// Symmetric per-symbol substitution/gap costs over a byte alphabet.
class SubstitutionCostModel {
 public:
  /// Builds and validates a model. `alphabet` lists the admissible
  /// symbols; `substitution` is row-major |alphabet| x |alphabet|;
  /// `gap` has one entry per symbol. Fails unless the extended cost
  /// function is a metric: zero diagonal, symmetry, positivity off the
  /// diagonal, positive gap costs, and all triangle inequalities among
  /// substitutions and gaps.
  static Result<SubstitutionCostModel> Create(
      std::string alphabet, std::vector<double> substitution,
      std::vector<double> gap);

  /// Unit costs over the given alphabet (== classic Levenshtein).
  static SubstitutionCostModel UnitCosts(std::string alphabet);

  /// A simple biochemical model over the 20 amino acids: substitutions
  /// within the same physicochemical group cost 0.5, across groups 1.0,
  /// gaps 0.8 (triangle-valid by construction).
  static SubstitutionCostModel ProteinClasses();

  /// Cost of substituting a with b (0 if equal).
  double Substitution(char a, char b) const;
  /// Cost of deleting / inserting a.
  double Gap(char a) const;
  /// True if the symbol is part of the alphabet.
  bool Admits(char c) const;

  /// Index of a symbol in the alphabet, -1 when not admitted. The raw
  /// table accessors below are keyed by these indices; the DP kernels
  /// gather rows directly instead of per-cell Substitution() calls.
  int16_t IndexOf(char c) const {
    return symbol_index_[static_cast<unsigned char>(c)];
  }
  /// Row `ia` of the substitution matrix (|alphabet| entries).
  const double* SubstitutionRow(int16_t ia) const {
    return substitution_.data() +
           static_cast<size_t>(ia) * alphabet_.size();
  }
  /// Gap cost table indexed by symbol index.
  const double* gap_data() const { return gap_.data(); }

  const std::string& alphabet() const { return alphabet_; }

 private:
  SubstitutionCostModel() = default;

  std::string alphabet_;
  std::array<int16_t, 256> symbol_index_;  // -1 when not in the alphabet
  std::vector<double> substitution_;       // row-major over alphabet
  std::vector<double> gap_;
};

/// Edit distance under a SubstitutionCostModel. Elements outside the
/// model's alphabet are rejected via SUBSEQ_CHECK (programming error).
class WeightedEditDistance final : public SequenceDistance<char> {
 public:
  explicit WeightedEditDistance(SubstitutionCostModel model)
      : model_(std::move(model)) {}

  double Compute(std::span<const char> a,
                 std::span<const char> b) const override;

  double ComputeBounded(std::span<const char> a, std::span<const char> b,
                        double upper_bound) const override;

  /// Distance plus an optimal weighted edit script.
  Alignment ComputeWithPath(std::span<const char> a,
                            std::span<const char> b) const;

  std::string_view name() const override { return "weighted-edit"; }
  bool is_metric() const override { return true; }
  bool is_consistent() const override { return true; }

  const SubstitutionCostModel& model() const { return model_; }

 private:
  SubstitutionCostModel model_;
};

}  // namespace subseq

#endif  // SUBSEQ_DISTANCE_WEIGHTED_EDIT_H_
