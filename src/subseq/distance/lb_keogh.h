// LB_Keogh (Keogh, VLDB 2002) — the classic cheap lower bound for DTW,
// referenced by the paper's related work. Because DTW is consistent but
// not metric, the framework pairs it with a linear scan; precomputing the
// query envelope and skipping candidates whose LB_Keogh already exceeds
// epsilon recovers most of the missing pruning.
//
// The envelope is built for a Sakoe-Chiba band of width r:
//   U[i] = max(q[i-r .. i+r]),  L[i] = min(q[i-r .. i+r])
// and LB(c) = sum_i max(0, c[i] - U[i], L[i] - c[i]) satisfies
// LB(c) <= DTW_band(q, c) for any candidate c of the same length. With
// r >= |q| - 1 the bound is also valid for unconstrained DTW.

#ifndef SUBSEQ_DISTANCE_LB_KEOGH_H_
#define SUBSEQ_DISTANCE_LB_KEOGH_H_

#include <cstdint>
#include <span>
#include <vector>

namespace subseq {

/// Precomputed LB_Keogh envelope of one query sequence.
class LbKeoghEnvelope {
 public:
  /// Builds the envelope. `band` < 0 (or >= |query|) selects the full
  /// width, making the bound valid for unconstrained DTW.
  LbKeoghEnvelope(std::span<const double> query, int32_t band);

  /// The lower bound for a candidate; 0 (trivially valid) when the
  /// candidate's length differs from the query's.
  double LowerBound(std::span<const double> candidate) const;

  /// Early-abandoning variant: may return any value > cutoff once the
  /// partial sum exceeds it. Also the scalar fallback of
  /// LowerBoundMany, so both paths share one definition of the bound.
  double LowerBoundAbandoning(std::span<const double> candidate,
                              double cutoff) const;

  /// Batched bounds over `count` candidates of length() elements laid
  /// out at block, block + stride, block + 2*stride, ... — the window
  /// catalog's contiguous same-sequence layout. out[k] follows the
  /// early-abandon contract at `cutoff`: exact when <= cutoff, any
  /// partial sum > cutoff otherwise. Partial sums are monotone
  /// non-decreasing, so the pruning DECISION (out[k] > cutoff) is
  /// identical across dispatch levels and any regrouping of candidates
  /// into blocks — the invariant the prefilter's determinism rests on.
  void LowerBoundMany(const double* block, size_t stride, int32_t count,
                      double cutoff, double* out) const;

  int32_t length() const { return static_cast<int32_t>(upper_.size()); }
  int32_t band() const { return band_; }
  std::span<const double> upper() const { return upper_; }
  std::span<const double> lower() const { return lower_; }

 private:
  int32_t band_;
  std::vector<double> upper_;
  std::vector<double> lower_;
};

}  // namespace subseq

#endif  // SUBSEQ_DISTANCE_LB_KEOGH_H_
