// Name-based factories for the shipped distance measures.
//
// Benchmarks, examples and tools select distances by string ("erp",
// "frechet", "levenshtein", ...); this registry owns the mapping. Custom
// distances do not need to be registered — anything implementing
// SequenceDistance<T> plugs into the framework directly.

#ifndef SUBSEQ_DISTANCE_REGISTRY_H_
#define SUBSEQ_DISTANCE_REGISTRY_H_

#include <memory>
#include <string_view>
#include <vector>

#include "subseq/core/status.h"
#include "subseq/core/types.h"
#include "subseq/distance/distance.h"

namespace subseq {

/// Creates a string distance by name: "levenshtein" | "hamming".
Result<std::unique_ptr<SequenceDistance<char>>> MakeStringDistance(
    std::string_view name);

/// Creates a scalar time-series distance by name:
/// "erp" | "frechet" | "dtw" | "euclidean" | "levenshtein" | "hamming".
Result<std::unique_ptr<SequenceDistance<double>>> MakeScalarDistance(
    std::string_view name);

/// Creates a trajectory distance by name:
/// "erp" | "frechet" | "dtw" | "euclidean".
Result<std::unique_ptr<SequenceDistance<Point2d>>> MakeTrajectoryDistance(
    std::string_view name);

/// Names accepted by the factory for each element type.
std::vector<std::string_view> ListStringDistances();
std::vector<std::string_view> ListScalarDistances();
std::vector<std::string_view> ListTrajectoryDistances();

}  // namespace subseq

#endif  // SUBSEQ_DISTANCE_REGISTRY_H_
