// End-to-end integration: generated datasets -> windows -> reference net ->
// full query pipeline, for all three paper domains (PROTEINS / SONGS /
// TRAJ) with planted ground truth.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "subseq/data/motif.h"
#include "subseq/data/protein_gen.h"
#include "subseq/data/song_gen.h"
#include "subseq/data/trajectory_gen.h"
#include "subseq/distance/erp.h"
#include "subseq/distance/frechet.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/distance/weighted_edit.h"
#include "subseq/frame/matcher.h"

namespace subseq {
namespace {

TEST(EndToEndTest, ProteinMotifRetrievalWithLevenshtein) {
  // 30 protein sequences; a 30-residue query core is planted (with a few
  // substitutions) into three of them. LongestMatch must recover a long
  // overlap with each plant when queried sequence-by-sequence, and
  // RangeSearch at the mutation budget must locate the planted regions.
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 120, .seed = 41});
  MotifPlanter planter(42);
  ProteinGenerator query_gen(ProteinGenOptions{.mean_length = 60,
                                               .seed = 43});
  const Sequence<char> query = query_gen.GenerateWithLength(50);
  const auto core =
      query.Subsequence(Interval{10, 40});  // 30 residues

  MotifOptions motif_options;
  motif_options.substitution_rate = 0.05;

  SequenceDatabase<char> db;
  std::vector<std::pair<SeqId, Interval>> plants;
  for (int i = 0; i < 30; ++i) {
    Sequence<char> host = gen.Generate();
    if (i % 10 == 0) {
      const auto payload = planter.Mutate(core, motif_options);
      const int32_t pos = planter.DrawPosition(
          host.size(), static_cast<int32_t>(payload.size()));
      host = planter.Embed<char>(host, payload, pos);
      plants.emplace_back(
          static_cast<SeqId>(db.size()),
          Interval{pos, pos + static_cast<int32_t>(payload.size())});
    }
    db.Add(std::move(host));
  }

  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 20;
  options.lambda0 = 2;
  auto matcher = std::move(SubsequenceMatcher<char>::Build(db, dist, options))
                     .ValueOrDie();

  // The filter at epsilon=2 must hit a window inside every planted region.
  MatchQueryStats stats;
  const auto hits = matcher->FilterSegments(query.view(), 2.0, &stats);
  for (const auto& [seq, where] : plants) {
    bool covered = false;
    for (const auto& hit : hits) {
      const WindowRef& ref = matcher->catalog().at(hit.window);
      if (ref.seq == seq && where.Overlaps(ref.span)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "plant in sequence " << seq << " not covered";
  }
  // Statistics are populated.
  EXPECT_GT(stats.segments, 0);
  EXPECT_GT(stats.filter_computations, 0);

  // Type II on the planted pair: a long match overlapping the plant.
  auto longest = matcher->LongestMatch(query.view(), 2.0);
  ASSERT_TRUE(longest.ok()) << longest.status().ToString();
  ASSERT_TRUE(longest.value().has_value());
  const SubsequenceMatch& m = *longest.value();
  bool overlaps_some_plant = false;
  for (const auto& [seq, where] : plants) {
    if (m.seq == seq && m.db.Overlaps(where)) overlaps_some_plant = true;
  }
  EXPECT_TRUE(overlaps_some_plant);
  EXPECT_GE(m.query.length(), options.lambda);
  EXPECT_LE(m.distance, 2.0);
}

TEST(EndToEndTest, SongMotifRetrievalWithFrechet) {
  SongGenerator gen(SongGenOptions{.mean_length = 150, .seed = 51});
  SongGenerator query_gen(SongGenOptions{.mean_length = 60, .seed = 52});
  MotifPlanter planter(53);

  const Sequence<double> query = query_gen.GenerateWithLength(40);
  const auto core = query.Subsequence(Interval{5, 35});

  MotifOptions motif_options;
  motif_options.noise_sigma = 0.2;

  SequenceDatabase<double> db;
  SeqId planted_seq = kInvalidId;
  Interval planted_at;
  for (int i = 0; i < 20; ++i) {
    Sequence<double> host = gen.Generate();
    if (i == 7) {
      const auto payload = planter.Mutate(core, motif_options);
      const int32_t pos = planter.DrawPosition(
          host.size(), static_cast<int32_t>(payload.size()));
      host = planter.Embed<double>(host, payload, pos);
      planted_seq = static_cast<SeqId>(db.size());
      planted_at =
          Interval{pos, pos + static_cast<int32_t>(payload.size())};
    }
    db.Add(std::move(host));
  }

  const FrechetDistance1D dist;
  MatcherOptions options;
  options.lambda = 20;
  options.lambda0 = 2;
  auto matcher =
      std::move(SubsequenceMatcher<double>::Build(db, dist, options))
          .ValueOrDie();

  // DFD of the planted window pair is at most ~4 sigma; epsilon = 1.0 is
  // generous for sigma = 0.2 yet selective for pitch data.
  const auto hits = matcher->FilterSegments(query.view(), 1.0, nullptr);
  bool covered = false;
  for (const auto& hit : hits) {
    const WindowRef& ref = matcher->catalog().at(hit.window);
    if (ref.seq == planted_seq && planted_at.Overlaps(ref.span)) {
      covered = true;
    }
  }
  EXPECT_TRUE(covered);

  auto nearest = matcher->NearestMatch(query.view(), 2.0, 0.25);
  ASSERT_TRUE(nearest.ok()) << nearest.status().ToString();
  ASSERT_TRUE(nearest.value().has_value());
  EXPECT_LE(nearest.value()->distance, 1.5);
}

TEST(EndToEndTest, TrajectoryMotifRetrievalWithErp) {
  TrajectoryGenerator gen(TrajectoryGenOptions{.mean_length = 120,
                                               .seed = 61});
  TrajectoryGenerator query_gen(TrajectoryGenOptions{.mean_length = 60,
                                                     .seed = 62});
  MotifPlanter planter(63);

  const Sequence<Point2d> query = query_gen.GenerateWithLength(40);
  const auto core = query.Subsequence(Interval{5, 35});

  MotifOptions motif_options;
  motif_options.noise_sigma = 0.1;

  SequenceDatabase<Point2d> db;
  SeqId planted_seq = kInvalidId;
  Interval planted_at;
  for (int i = 0; i < 15; ++i) {
    Sequence<Point2d> host = gen.Generate();
    if (i == 4) {
      const auto payload = planter.Mutate(core, motif_options);
      const int32_t pos = planter.DrawPosition(
          host.size(), static_cast<int32_t>(payload.size()));
      host = planter.Embed<Point2d>(host, payload, pos);
      planted_seq = static_cast<SeqId>(db.size());
      planted_at =
          Interval{pos, pos + static_cast<int32_t>(payload.size())};
    }
    db.Add(std::move(host));
  }

  const ErpDistance2D dist;
  MatcherOptions options;
  options.lambda = 20;
  options.lambda0 = 2;
  auto matcher =
      std::move(SubsequenceMatcher<Point2d>::Build(db, dist, options))
          .ValueOrDie();

  // ERP of a length-10 window pair with 0.1 jitter is ~1-2; random
  // trajectory windows in a 100x60 lot are far apart.
  const auto hits = matcher->FilterSegments(query.view(), 4.0, nullptr);
  bool covered = false;
  for (const auto& hit : hits) {
    const WindowRef& ref = matcher->catalog().at(hit.window);
    if (ref.seq == planted_seq && planted_at.Overlaps(ref.span)) {
      covered = true;
    }
  }
  EXPECT_TRUE(covered);

  auto longest = matcher->LongestMatch(query.view(), 6.0);
  ASSERT_TRUE(longest.ok()) << longest.status().ToString();
  ASSERT_TRUE(longest.value().has_value());
  EXPECT_EQ(longest.value()->seq, planted_seq);
  EXPECT_TRUE(longest.value()->db.Overlaps(planted_at));
}

TEST(EndToEndTest, ReferenceNetInvariantsOnRealWindows) {
  // Build the matcher's own index pieces by hand and validate the net's
  // structural invariants on protein windows under Levenshtein.
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 100, .seed = 71});
  const auto db = gen.GenerateDatabaseWithWindows(150, 10);
  auto catalog = WindowCatalog::PartitionDatabase(db, 10);
  ASSERT_TRUE(catalog.ok());
  const LevenshteinDistance<char> dist;
  const WindowOracle<char> oracle(db, catalog.value(), dist);
  const ReferenceNet net = ReferenceNet::BuildAll(oracle);
  const auto violation = net.CheckInvariants();
  EXPECT_FALSE(violation.has_value()) << *violation;
}

TEST(EndToEndTest, FilterComputationsScaleWithPruning) {
  // On protein windows, the reference-net filter should use substantially
  // fewer distance computations than segments x windows (the naive cost).
  ProteinGenOptions gen_options;
  gen_options.mean_length = 150;
  gen_options.seed = 81;
  gen_options.family_fraction = 0.9;  // UniProt-like redundancy
  ProteinGenerator gen(gen_options);
  const auto db = gen.GenerateDatabaseWithWindows(400, 20);
  const LevenshteinDistance<char> dist;
  MatcherOptions options;
  options.lambda = 40;  // l = 20, the paper's window length
  options.lambda0 = 2;
  auto matcher = std::move(SubsequenceMatcher<char>::Build(db, dist, options))
                     .ValueOrDie();

  ProteinGenerator query_gen(ProteinGenOptions{.mean_length = 60,
                                               .seed = 82});
  const Sequence<char> query = query_gen.GenerateWithLength(40);
  MatchQueryStats stats;
  matcher->FilterSegments(query.view(), 2.0, &stats);
  const int64_t naive = stats.segments * matcher->catalog().num_windows();
  EXPECT_GT(stats.filter_computations, 0);
  // i.i.d. windows are near-equidistant (no index could prune); on a
  // redundant, family-structured database the net must skip a large
  // share. The paper's UniProt data prunes even harder at scale.
  EXPECT_LT(stats.filter_computations, (naive * 3) / 5)
      << "expected < 60% of naive computations at a selective epsilon";
}


TEST(EndToEndTest, WeightedEditDistancePluggedIntoFramework) {
  // The framework is generic: a custom (validated) metric + consistent
  // distance drops in without touching the pipeline. Conservative
  // (same-group) substitutions keep a motif retrievable at a budget that
  // would reject it under unit costs.
  ProteinGenerator gen(ProteinGenOptions{.mean_length = 120, .seed = 91});
  ProteinGenerator query_gen(ProteinGenOptions{.mean_length = 60,
                                               .seed = 92});
  const Sequence<char> query = query_gen.GenerateWithLength(50);
  const auto core = query.Subsequence(Interval{10, 40});

  // Mutate the motif with *conservative* substitutions only (within the
  // same physicochemical group), as homologous proteins do.
  const SubstitutionCostModel model = SubstitutionCostModel::ProteinClasses();
  Rng rng(93);
  std::vector<char> payload(core.begin(), core.end());
  int mutations = 0;
  for (char& c : payload) {
    if (mutations >= 6) break;
    if (!rng.NextBool(0.3)) continue;
    for (const char candidate : model.alphabet()) {
      if (candidate != c && model.Substitution(c, candidate) == 0.5) {
        c = candidate;
        ++mutations;
        break;
      }
    }
  }
  ASSERT_GT(mutations, 2);

  MotifPlanter planter(94);
  SequenceDatabase<char> db;
  SeqId planted_seq = kInvalidId;
  Interval planted_at;
  for (int i = 0; i < 20; ++i) {
    Sequence<char> host = gen.Generate();
    if (i == 9) {
      const int32_t pos = planter.DrawPosition(
          host.size(), static_cast<int32_t>(payload.size()));
      host = planter.Embed<char>(host, std::span<const char>(payload), pos);
      planted_seq = static_cast<SeqId>(db.size());
      planted_at =
          Interval{pos, pos + static_cast<int32_t>(payload.size())};
    }
    db.Add(std::move(host));
  }

  const WeightedEditDistance weighted(model);
  MatcherOptions options;
  options.lambda = 20;
  options.lambda0 = 2;
  auto matcher =
      std::move(SubsequenceMatcher<char>::Build(db, weighted, options))
          .ValueOrDie();
  // 6 conservative mutations cost 3.0 under the class model; the full
  // motif should verify within 3.5.
  auto longest = matcher->LongestMatch(query.view(), 3.5);
  ASSERT_TRUE(longest.ok()) << longest.status().ToString();
  ASSERT_TRUE(longest.value().has_value());
  EXPECT_EQ(longest.value()->seq, planted_seq);
  EXPECT_TRUE(longest.value()->db.Overlaps(planted_at));

  // Under unit costs the same mutations cost twice as much; the weighted
  // model is strictly more permissive for conservative drift.
  const LevenshteinDistance<char> lev;
  const double unit_cost = lev.Compute(core, std::span<const char>(payload));
  const double weighted_cost =
      weighted.Compute(core, std::span<const char>(payload));
  EXPECT_LT(weighted_cost, unit_cost);
}

}  // namespace
}  // namespace subseq
