// Out-of-core build battery: BuildToSnapshot must (a) emit a file
// byte-identical to Build + SaveIndex at EVERY batch size — 1, an
// awkward 7, and 0 (whole shards at once) — for both insertion-built
// backends, (b) keep peak residency at O(shard), not O(catalog), which
// the ResidencyGauge proves, and (c) produce a file whose loaded index
// answers element-wise identically to the fresh build.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <span>
#include <string>
#include <vector>

#include "subseq/data/protein_gen.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/exec/peak_gauge.h"
#include "subseq/frame/matcher.h"

namespace subseq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

class SnapshotOutOfCoreTest : public ::testing::Test {
 protected:
  SnapshotOutOfCoreTest() {
    ProteinGenOptions gen_options;
    gen_options.mean_length = 30;
    gen_options.seed = 31;
    ProteinGenerator gen(gen_options);
    db_ = gen.GenerateDatabaseWithWindows(/*num_windows=*/60,
                                         /*window_length=*/4);
  }

  static MatcherOptions Options(IndexKind kind, int32_t shards) {
    MatcherOptions options;
    options.lambda = 8;
    options.lambda0 = 1;
    options.index_kind = kind;
    options.exec.num_shards = shards;
    return options;
  }

  // Builds in core, saves, and returns the reference bytes.
  std::vector<char> ReferenceBytes(const MatcherOptions& options,
                                   const std::string& tag) {
    const std::string path = TempPath("oocore_ref_" + tag + ".snap");
    auto matcher = SubsequenceMatcher<char>::Build(db_, dist_, options);
    EXPECT_TRUE(matcher.ok()) << matcher.status().message();
    EXPECT_TRUE(matcher.value()->SaveIndex(path).ok());
    std::vector<char> bytes = ReadFileBytes(path);
    std::remove(path.c_str());
    return bytes;
  }

  SequenceDatabase<char> db_;
  LevenshteinDistance<char> dist_;
};

TEST_F(SnapshotOutOfCoreTest, EveryBatchSizeIsByteIdentical) {
  // The generator treats num_windows as a floor; read the real count.
  int64_t n = 0;
  {
    auto probe = SubsequenceMatcher<char>::Build(
        db_, dist_, Options(IndexKind::kLinearScan, 1));
    ASSERT_TRUE(probe.ok());
    n = probe.value()->catalog().num_windows();
  }
  for (const IndexKind kind :
       {IndexKind::kReferenceNet, IndexKind::kCoverTree}) {
    for (const int32_t shards : {1, 4}) {
      const MatcherOptions options = Options(kind, shards);
      const std::string tag =
          std::to_string(static_cast<int>(kind)) + "_k" +
          std::to_string(shards);
      const std::vector<char> reference = ReferenceBytes(options, tag);
      for (const int32_t batch : {1, 7, 0}) {
        SCOPED_TRACE("kind " + tag + " batch " + std::to_string(batch));
        const std::string path = TempPath("oocore_" + tag + ".snap");
        SnapshotBuildOptions build;
        build.batch_windows = batch;
        ResidencyGauge gauge;
        ASSERT_TRUE(SubsequenceMatcher<char>::BuildToSnapshot(
                        db_, dist_, options, path, build, &gauge)
                        .ok());
        EXPECT_EQ(ReadFileBytes(path), reference)
            << "out-of-core snapshot must be byte-identical to "
               "Build + SaveIndex";
        // Every charged window was released once its shard hit disk.
        EXPECT_EQ(gauge.current(), 0);
        // Peak residency is exactly the largest shard — the streamed
        // build never holds more than one shard's windows alive.
        const int64_t max_shard = (n + shards - 1) / shards;
        EXPECT_EQ(gauge.peak(), max_shard);
        if (shards > 1) {
          EXPECT_LT(gauge.peak(), n)
              << "sharded out-of-core build must stay under O(catalog)";
        }
        std::remove(path.c_str());
      }
    }
  }
}

TEST_F(SnapshotOutOfCoreTest, RejectsNegativeBatch) {
  SnapshotBuildOptions build;
  build.batch_windows = -3;
  const auto status = SubsequenceMatcher<char>::BuildToSnapshot(
      db_, dist_, Options(IndexKind::kReferenceNet, 1),
      TempPath("oocore_neg.snap"), build);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotOutOfCoreTest, LoadedOutOfCoreIndexAnswersLikeFresh) {
  const MatcherOptions options = Options(IndexKind::kCoverTree, 4);
  const std::string path = TempPath("oocore_load.snap");
  SnapshotBuildOptions build;
  build.batch_windows = 7;
  ASSERT_TRUE(SubsequenceMatcher<char>::BuildToSnapshot(db_, dist_, options,
                                                        path, build)
                  .ok());

  auto fresh = SubsequenceMatcher<char>::Build(db_, dist_, options);
  ASSERT_TRUE(fresh.ok());
  for (const SnapshotLoadMode mode :
       {SnapshotLoadMode::kEager, SnapshotLoadMode::kMmap}) {
    MatcherOptions load_options = options;
    load_options.snapshot_load_mode = mode;
    auto loaded =
        SubsequenceMatcher<char>::LoadIndex(db_, dist_, load_options, path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    for (int32_t q = 0; q < 3; ++q) {
      const auto& seq = db_.at(q);
      const std::span<const char> query =
          seq.view().first(static_cast<size_t>(std::min(seq.size(), 12)));
      MatchQueryStats fresh_stats, loaded_stats;
      auto want = fresh.value()->RangeSearch(query, 1.0, &fresh_stats);
      auto got = loaded.value()->RangeSearch(query, 1.0, &loaded_stats);
      ASSERT_TRUE(want.ok());
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(want.value().size(), got.value().size());
      for (size_t i = 0; i < want.value().size(); ++i) {
        EXPECT_EQ(want.value()[i], got.value()[i]);
        EXPECT_EQ(want.value()[i].distance, got.value()[i].distance);
      }
      EXPECT_EQ(fresh_stats.filter_computations,
                loaded_stats.filter_computations);
      EXPECT_EQ(fresh_stats.hits, loaded_stats.hits);
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace subseq
