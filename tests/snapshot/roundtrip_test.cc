// Round-trip property battery for the snapshot subsystem: for every
// index kind, shard count, dataset, and load mode, a matcher loaded from
// a snapshot must be indistinguishable from the fresh build it replaces
// — element-wise equal matches AND stats — and the encoding must be
// canonical (save -> load -> save reproduces the file byte for byte).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "subseq/data/protein_gen.h"
#include "subseq/data/song_gen.h"
#include "subseq/distance/frechet.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/frame/matcher.h"
#include "subseq/serve/match_server.h"
#include "subseq/snapshot/reader.h"

namespace subseq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

const std::vector<IndexKind> kAllKinds = {
    IndexKind::kReferenceNet, IndexKind::kCoverTree, IndexKind::kMvIndex,
    IndexKind::kVpTree, IndexKind::kLinearScan};

const char* KindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kReferenceNet: return "rn";
    case IndexKind::kCoverTree: return "ct";
    case IndexKind::kMvIndex: return "mv";
    case IndexKind::kVpTree: return "vp";
    case IndexKind::kLinearScan: return "ls";
  }
  return "??";
}

const char* ModeName(SnapshotLoadMode mode) {
  return mode == SnapshotLoadMode::kEager ? "eager" : "mmap";
}

void ExpectStatsEqual(const MatchQueryStats& fresh,
                      const MatchQueryStats& loaded, const std::string& tag) {
  EXPECT_EQ(fresh.segments, loaded.segments) << tag;
  EXPECT_EQ(fresh.filter_computations, loaded.filter_computations) << tag;
  EXPECT_EQ(fresh.hits, loaded.hits) << tag;
  EXPECT_EQ(fresh.chains, loaded.chains) << tag;
  EXPECT_EQ(fresh.verifications, loaded.verifications) << tag;
}

// The property itself: fresh build vs snapshot round-trip, one
// configuration. Checks canonical bytes, restored build/space counters,
// and query-observable equality (matches with distances, stats) for a
// Type I and a Type II query per query string.
template <typename T>
void CheckRoundTrip(const SequenceDatabase<T>& db,
                    const SequenceDistance<T>& dist, MatcherOptions options,
                    const std::vector<std::vector<T>>& queries, double epsilon,
                    SnapshotLoadMode mode, const std::string& tag) {
  SCOPED_TRACE(tag);
  options.snapshot_load_mode = mode;

  auto fresh_result = SubsequenceMatcher<T>::Build(db, dist, options);
  ASSERT_TRUE(fresh_result.ok()) << fresh_result.status().message();
  const auto fresh = std::move(fresh_result).ValueOrDie();

  const std::string path = TempPath("rt_" + tag + ".snap");
  ASSERT_TRUE(fresh->SaveIndex(path).ok());

  auto loaded_result =
      SubsequenceMatcher<T>::LoadIndex(db, dist, options, path);
  ASSERT_TRUE(loaded_result.ok()) << loaded_result.status().message();
  const auto loaded = std::move(loaded_result).ValueOrDie();

  // Canonical encoding: re-saving the loaded matcher is byte-identical.
  const std::string resaved = TempPath("rt_" + tag + ".resaved.snap");
  ASSERT_TRUE(loaded->SaveIndex(resaved).ok());
  EXPECT_EQ(ReadFileBytes(path), ReadFileBytes(resaved))
      << "save -> load -> save must reproduce the file byte for byte";

  // Build-time counters and space accounting are part of the state.
  EXPECT_EQ(fresh->index().build_stats().distance_computations,
            loaded->index().build_stats().distance_computations);
  EXPECT_EQ(fresh->index().size(), loaded->index().size());
  EXPECT_EQ(fresh->index().name(), loaded->index().name());
  const SpaceStats fresh_space = fresh->index().ComputeSpaceStats();
  const SpaceStats loaded_space = loaded->index().ComputeSpaceStats();
  EXPECT_EQ(fresh_space.num_nodes, loaded_space.num_nodes);
  EXPECT_EQ(fresh_space.num_list_entries, loaded_space.num_list_entries);
  EXPECT_EQ(fresh_space.num_levels, loaded_space.num_levels);

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const std::span<const T> query(queries[qi]);
    MatchQueryStats fresh_stats, loaded_stats;
    auto fresh_matches = fresh->RangeSearch(query, epsilon, &fresh_stats);
    auto loaded_matches = loaded->RangeSearch(query, epsilon, &loaded_stats);
    ASSERT_EQ(fresh_matches.ok(), loaded_matches.ok());
    if (fresh_matches.ok()) {
      const auto& fm = fresh_matches.value();
      const auto& lm = loaded_matches.value();
      ASSERT_EQ(fm.size(), lm.size()) << "query " << qi;
      for (size_t m = 0; m < fm.size(); ++m) {
        EXPECT_EQ(fm[m], lm[m]) << "query " << qi << " match " << m;
        EXPECT_EQ(fm[m].distance, lm[m].distance)
            << "query " << qi << " match " << m;
      }
    }
    ExpectStatsEqual(fresh_stats, loaded_stats,
                     "RangeSearch query " + std::to_string(qi));

    MatchQueryStats fresh_l, loaded_l;
    auto fresh_best = fresh->LongestMatch(query, epsilon, &fresh_l);
    auto loaded_best = loaded->LongestMatch(query, epsilon, &loaded_l);
    ASSERT_EQ(fresh_best.ok(), loaded_best.ok());
    if (fresh_best.ok()) {
      ASSERT_EQ(fresh_best.value().has_value(),
                loaded_best.value().has_value());
      if (fresh_best.value().has_value()) {
        EXPECT_EQ(*fresh_best.value(), *loaded_best.value());
        EXPECT_EQ(fresh_best.value()->distance,
                  loaded_best.value()->distance);
      }
    }
    ExpectStatsEqual(fresh_l, loaded_l,
                     "LongestMatch query " + std::to_string(qi));
  }

  std::remove(path.c_str());
  std::remove(resaved.c_str());
}

// PROTEINS-like: strings under Levenshtein.
struct ProteinFixture {
  ProteinFixture() {
    ProteinGenOptions gen_options;
    gen_options.mean_length = 30;
    gen_options.seed = 11;
    ProteinGenerator gen(gen_options);
    db = gen.GenerateDatabaseWithWindows(/*num_windows=*/60,
                                         /*window_length=*/4);
    // Queries: slices of database content (guaranteed matches) plus the
    // sequences' own prefixes.
    for (int32_t s = 0; s < 3 && s < db.size(); ++s) {
      const auto view = db.at(s).view();
      const size_t len = std::min<size_t>(view.size(), 14);
      queries.emplace_back(view.begin(), view.begin() + len);
    }
  }
  SequenceDatabase<char> db;
  std::vector<std::vector<char>> queries;
  LevenshteinDistance<char> dist;
};

// SONGS-like: pitch series under the discrete Frechet distance.
struct SongFixture {
  SongFixture() {
    SongGenOptions gen_options;
    gen_options.mean_length = 40;
    gen_options.seed = 12;
    SongGenerator gen(gen_options);
    db = gen.GenerateDatabaseWithWindows(/*num_windows=*/60,
                                         /*window_length=*/4);
    for (int32_t s = 0; s < 3 && s < db.size(); ++s) {
      const auto view = db.at(s).view();
      const size_t len = std::min<size_t>(view.size(), 14);
      queries.emplace_back(view.begin(), view.begin() + len);
    }
  }
  SequenceDatabase<double> db;
  std::vector<std::vector<double>> queries;
  FrechetDistance1D dist;
};

MatcherOptions SmallOptions(IndexKind kind, int32_t shards) {
  MatcherOptions options;
  options.lambda = 8;
  options.lambda0 = 1;
  options.index_kind = kind;
  options.exec.num_shards = shards;
  // Small catalogs: keep the MV sample within bounds and builds quick.
  options.mv_index.sample_size = 32;
  return options;
}

class SnapshotRoundtripTest : public ::testing::Test {};

TEST_F(SnapshotRoundtripTest, ProteinsAllKindsMonolithic) {
  const ProteinFixture fx;
  for (const IndexKind kind : kAllKinds) {
    for (const SnapshotLoadMode mode :
         {SnapshotLoadMode::kEager, SnapshotLoadMode::kMmap}) {
      CheckRoundTrip<char>(fx.db, fx.dist, SmallOptions(kind, 1), fx.queries,
                           /*epsilon=*/1.0, mode,
                           std::string("prot_") + KindName(kind) + "_s1_" +
                               ModeName(mode));
    }
  }
}

TEST_F(SnapshotRoundtripTest, ProteinsAllKindsSharded) {
  const ProteinFixture fx;
  for (const IndexKind kind : kAllKinds) {
    for (const SnapshotLoadMode mode :
         {SnapshotLoadMode::kEager, SnapshotLoadMode::kMmap}) {
      CheckRoundTrip<char>(fx.db, fx.dist, SmallOptions(kind, 4), fx.queries,
                           /*epsilon=*/1.0, mode,
                           std::string("prot_") + KindName(kind) + "_s4_" +
                               ModeName(mode));
    }
  }
}

TEST_F(SnapshotRoundtripTest, SongsAllKindsMonolithic) {
  const SongFixture fx;
  for (const IndexKind kind : kAllKinds) {
    for (const SnapshotLoadMode mode :
         {SnapshotLoadMode::kEager, SnapshotLoadMode::kMmap}) {
      CheckRoundTrip<double>(fx.db, fx.dist, SmallOptions(kind, 1),
                             fx.queries, /*epsilon=*/1.0, mode,
                             std::string("song_") + KindName(kind) + "_s1_" +
                                 ModeName(mode));
    }
  }
}

TEST_F(SnapshotRoundtripTest, SongsAllKindsSharded) {
  const SongFixture fx;
  for (const IndexKind kind : kAllKinds) {
    for (const SnapshotLoadMode mode :
         {SnapshotLoadMode::kEager, SnapshotLoadMode::kMmap}) {
      CheckRoundTrip<double>(fx.db, fx.dist, SmallOptions(kind, 4),
                             fx.queries, /*epsilon=*/1.0, mode,
                             std::string("song_") + KindName(kind) + "_s4_" +
                                 ModeName(mode));
    }
  }
}

// Loading against the wrong database, options, or kind must fail with a
// precise status, never answer wrongly.
TEST_F(SnapshotRoundtripTest, RejectsMismatchedLoads) {
  const ProteinFixture fx;
  const MatcherOptions options = SmallOptions(IndexKind::kReferenceNet, 1);
  auto fresh =
      std::move(SubsequenceMatcher<char>::Build(fx.db, fx.dist, options))
          .ValueOrDie();
  const std::string path = TempPath("rt_mismatch.snap");
  ASSERT_TRUE(fresh->SaveIndex(path).ok());

  // Different lambda -> different window partition.
  MatcherOptions other = options;
  other.lambda = 12;
  EXPECT_EQ(SubsequenceMatcher<char>::LoadIndex(fx.db, fx.dist, other, path)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // A kind the snapshot does not hold.
  other = SmallOptions(IndexKind::kVpTree, 1);
  EXPECT_EQ(SubsequenceMatcher<char>::LoadIndex(fx.db, fx.dist, other, path)
                .status()
                .code(),
            StatusCode::kNotFound);

  // A different shard count than the snapshot records.
  other = SmallOptions(IndexKind::kReferenceNet, 4);
  EXPECT_EQ(SubsequenceMatcher<char>::LoadIndex(fx.db, fx.dist, other, path)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // Different backend tunables than the index was built with.
  other = SmallOptions(IndexKind::kReferenceNet, 1);
  other.reference_net.base_radius = 2.5;
  EXPECT_EQ(SubsequenceMatcher<char>::LoadIndex(fx.db, fx.dist, other, path)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // A database that differs from the one the snapshot was built over.
  SequenceDatabase<char> wrong_db;
  wrong_db.Add(MakeStringSequence("ACGTACGTACGTACGT"));
  EXPECT_FALSE(
      SubsequenceMatcher<char>::LoadIndex(wrong_db, fx.dist, options, path)
          .ok());

  std::remove(path.c_str());
}

// The serving layer: a MatchServer started from a snapshot answers
// bit-identically to one that rebuilt its indexes, across every
// configured kind in one shared file.
// The acceptance-criteria check: a server booted from an mmap snapshot
// answers bit-identically (matches AND stats) to one started from a
// fresh in-RAM build — for ALL FIVE kinds, monolithic and sharded.
TEST_F(SnapshotRoundtripTest, ServerFromSnapshotIsBitIdentical) {
  const ProteinFixture fx;
  for (const int32_t shards : {1, 4}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    MatchServerOptions options;
    options.matcher = SmallOptions(IndexKind::kReferenceNet, shards);
    options.index_kinds.assign(std::begin(kAllKinds), std::end(kAllKinds));

    auto built =
        std::move(MatchServer<char>::Start(fx.db, fx.dist, options))
            .ValueOrDie();
    const std::string path = TempPath("rt_server.snap");
    ASSERT_TRUE(built->SaveSnapshot(path).ok());

    MatchServerOptions from_snap = options;
    from_snap.snapshot_path = path;
    from_snap.matcher.snapshot_load_mode = SnapshotLoadMode::kMmap;
    auto restored =
        std::move(MatchServer<char>::Start(fx.db, fx.dist, from_snap))
            .ValueOrDie();

    for (const IndexKind kind : options.index_kinds) {
      for (const auto& query : fx.queries) {
        MatchRequest<char> request;
        request.type = MatchQueryType::kRangeSearch;
        request.query = query;
        request.epsilon = 1.0;
        request.index_kind = kind;
        MatchRequest<char> request2 = request;
        const MatchResult a = built->Submit(std::move(request)).Get();
        const MatchResult b = restored->Submit(std::move(request2)).Get();
        ASSERT_EQ(a.status.ok(), b.status.ok());
        ASSERT_EQ(a.matches.size(), b.matches.size());
        for (size_t m = 0; m < a.matches.size(); ++m) {
          EXPECT_EQ(a.matches[m], b.matches[m]);
          EXPECT_EQ(a.matches[m].distance, b.matches[m].distance);
        }
        ExpectStatsEqual(a.stats, b.stats, "server query");
      }
    }

    restored->Shutdown();
    built->Shutdown();
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace subseq
