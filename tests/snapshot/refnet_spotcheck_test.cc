// Regression battery for the reference-net load-time edge spot-check.
// The old check verified only the FIRST 16 exported edges against the
// oracle, so a corrupted edge anywhere past the head of the export
// sailed through. The check now verifies every edge on small nets
// (<= 256 edges) and a deterministic seeded sample on large ones. The
// tests here plant exactly one bad edge deep in the export and require
// Import to reject it.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <tuple>
#include <vector>

#include "subseq/metric/reference_net.h"
#include "testing/helpers.h"

namespace subseq {
namespace {

using ::subseq::testing::ScalarPointOracle;

std::vector<double> ScatteredPoints(int32_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(0.0, 100.0);
  std::vector<double> pts(static_cast<size_t>(n));
  for (double& p : pts) p = dist(rng);
  return pts;
}

int64_t TotalEdges(const std::vector<ReferenceNet::ExportedNode>& nodes) {
  int64_t total = 0;
  for (const auto& node : nodes) {
    total += static_cast<int64_t>(node.edges.size());
  }
  return total;
}

TEST(SnapshotRefNetSpotCheckTest, PlantedBadEdgePastOldWindowIsRejected) {
  const ScalarPointOracle oracle(ScatteredPoints(40, 77));
  const ReferenceNet net = ReferenceNet::BuildAll(oracle);
  std::vector<ReferenceNet::ExportedNode> nodes = net.Export();

  // The regression needs an edge beyond the old fixed 16-edge window but
  // within the all-edges regime (<= 256) where detection is guaranteed.
  const int64_t total = TotalEdges(nodes);
  ASSERT_GT(total, 16) << "fixture too small to exercise the regression";
  ASSERT_LE(total, 256) << "fixture too large for the all-edges regime";

  // Corrupt the LAST nonzero-distance edge in export order: shrinking a
  // stored distance keeps every radius bound satisfied, so only a
  // distance check against the live oracle can catch it.
  bool planted = false;
  for (auto node = nodes.rbegin(); node != nodes.rend() && !planted;
       ++node) {
    for (auto edge = node->edges.rbegin(); edge != node->edges.rend();
         ++edge) {
      double& stored = std::get<2>(*edge);
      if (stored > 1e-9) {
        stored *= 0.5;
        planted = true;
        break;
      }
    }
  }
  ASSERT_TRUE(planted);

  auto imported = ReferenceNet::Import(oracle, ReferenceNetOptions{}, nodes);
  ASSERT_FALSE(imported.ok())
      << "a single corrupted edge distance must fail the load spot-check";
  EXPECT_EQ(imported.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotRefNetSpotCheckTest, CleanExportImportsIdentically) {
  const ScalarPointOracle oracle(ScatteredPoints(40, 77));
  const ReferenceNet net = ReferenceNet::BuildAll(oracle);
  auto imported = ReferenceNet::Import(oracle, ReferenceNetOptions{},
                                       net.Export());
  ASSERT_TRUE(imported.ok()) << imported.status().message();
  EXPECT_EQ(imported.value().size(), net.size());
  // Structure is reproduced exactly: re-export matches field for field.
  const auto again = imported.value().Export();
  const auto original = net.Export();
  ASSERT_EQ(again.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(again[i].object, original[i].object);
    EXPECT_EQ(again[i].top_level, original[i].top_level);
    EXPECT_EQ(again[i].duplicates, original[i].duplicates);
    EXPECT_EQ(again[i].edges, original[i].edges);
  }
}

TEST(SnapshotRefNetSpotCheckTest, LargeNetSampleIsDeterministic) {
  // Above 256 edges the check samples; the sample is seeded from the
  // edge count, so two imports of the same export behave identically
  // (both accept, or both reject the same corruption).
  const ScalarPointOracle oracle(ScatteredPoints(300, 99));
  const ReferenceNet net = ReferenceNet::BuildAll(oracle);
  const auto nodes = net.Export();
  ASSERT_GT(TotalEdges(nodes), 256);
  auto first = ReferenceNet::Import(oracle, ReferenceNetOptions{}, nodes);
  auto second = ReferenceNet::Import(oracle, ReferenceNetOptions{}, nodes);
  ASSERT_TRUE(first.ok()) << first.status().message();
  ASSERT_TRUE(second.ok()) << second.status().message();
  EXPECT_EQ(first.value().size(), second.value().size());
}

}  // namespace
}  // namespace subseq
