// Concurrent snapshot access under TSan (the CMake tsan preset's test
// filter includes SnapshotConcurrent*): a server answers queries from a
// mmap-loaded snapshot on several client threads while other threads
// keep opening and loading the SAME file — the immutable-after-open
// reader and the shared_ptr-pinned mapping must make that race-free,
// and every concurrently computed answer must equal the direct library
// call.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "subseq/data/protein_gen.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/frame/matcher.h"
#include "subseq/serve/match_server.h"
#include "subseq/snapshot/reader.h"

namespace subseq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SnapshotConcurrentTest, ServeWhileReloadingTheSameFile) {
  ProteinGenOptions gen_options;
  gen_options.mean_length = 30;
  gen_options.seed = 41;
  ProteinGenerator gen(gen_options);
  const SequenceDatabase<char> db =
      gen.GenerateDatabaseWithWindows(/*num_windows=*/40,
                                      /*window_length=*/4);
  const LevenshteinDistance<char> dist;

  MatcherOptions matcher_options;
  matcher_options.lambda = 8;
  matcher_options.lambda0 = 1;
  matcher_options.index_kind = IndexKind::kReferenceNet;
  matcher_options.snapshot_load_mode = SnapshotLoadMode::kMmap;

  // Write the snapshot once, from a fresh build.
  const std::string path = TempPath("concurrent.snap");
  {
    MatcherOptions build_options = matcher_options;
    auto built = SubsequenceMatcher<char>::Build(db, dist, build_options);
    ASSERT_TRUE(built.ok()) << built.status().message();
    ASSERT_TRUE(built.value()->SaveIndex(path).ok());
  }

  // Ground truth: the direct library answers for every query.
  auto direct = SubsequenceMatcher<char>::Build(db, dist, matcher_options);
  ASSERT_TRUE(direct.ok());
  std::vector<std::vector<char>> queries;
  std::vector<std::vector<SubsequenceMatch>> expected;
  for (int32_t q = 0; q < 4; ++q) {
    const auto& seq = db.at(q);
    const auto view = seq.view().first(
        static_cast<size_t>(std::min(seq.size(), 12)));
    queries.emplace_back(view.begin(), view.end());
    auto want = direct.value()->RangeSearch(view, 1.0);
    ASSERT_TRUE(want.ok());
    expected.push_back(std::move(want).ValueOrDie());
  }

  // The server under test boots from the snapshot, mmap mode.
  MatchServerOptions server_options;
  server_options.matcher = matcher_options;
  server_options.snapshot_path = path;
  auto server = MatchServer<char>::Start(db, dist, server_options);
  ASSERT_TRUE(server.ok()) << server.status().message();

  constexpr int kClientThreads = 4;
  constexpr int kLoaderThreads = 3;
  constexpr int kRoundsPerThread = 8;
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  // Clients hammer the serving path.
  for (int t = 0; t < kClientThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        const size_t qi = static_cast<size_t>((t + round) % 4);
        MatchRequest<char> request;
        request.type = MatchQueryType::kRangeSearch;
        request.query = queries[qi];
        request.epsilon = 1.0;
        MatchResult result = server.value()->Submit(std::move(request)).Get();
        if (!result.status.ok() || result.matches != expected[qi]) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Loaders keep re-opening and re-loading the same bytes concurrently.
  for (int t = 0; t < kLoaderThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        auto file = SnapshotFile::Open(path, SnapshotLoadMode::kMmap);
        if (!file.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        auto loaded = SubsequenceMatcher<char>::LoadIndexFrom(
            db, dist, matcher_options, file.value());
        if (!loaded.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        auto got = loaded.value()->RangeSearch(
            std::span<const char>(queries[0]), 1.0);
        if (!got.ok() || got.value() != expected[0]) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace subseq
