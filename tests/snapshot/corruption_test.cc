// Corruption-injection matrix for the snapshot reader: every byte-level
// failure mode — flipped payload bytes in every section, truncation at
// every section boundary and mid-section, a zeroed footer, wrong magic,
// wrong version, size mismatches, and table tampering — must be rejected
// at Open/Load with a precise Status (naming the section and offset
// where applicable) and must never crash. The CI snapshot job runs this
// battery under ASan/UBSan, so "never crash" is machine-checked.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "subseq/data/protein_gen.h"
#include "subseq/distance/levenshtein.h"
#include "subseq/frame/matcher.h"
#include "subseq/snapshot/format.h"
#include "subseq/snapshot/reader.h"

namespace subseq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  return std::vector<uint8_t>(raw.begin(), raw.end());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// Opens in both load modes; both must agree on acceptance, and failures
// must carry `expect_substring` (empty = any message).
void ExpectOpenFails(const std::string& path,
                     const std::string& expect_substring,
                     const std::string& tag) {
  SCOPED_TRACE(tag);
  for (const SnapshotLoadMode mode :
       {SnapshotLoadMode::kEager, SnapshotLoadMode::kMmap}) {
    auto opened = SnapshotFile::Open(path, mode);
    ASSERT_FALSE(opened.ok())
        << "corrupted snapshot must not open (mode "
        << (mode == SnapshotLoadMode::kEager ? "eager" : "mmap") << ")";
    if (!expect_substring.empty()) {
      EXPECT_NE(opened.status().message().find(expect_substring),
                std::string::npos)
          << "message was: " << opened.status().message();
    }
  }
}

// The shared corpus: one small PROTEINS matcher snapshot (sharded, so
// the file carries the full section-name vocabulary) plus its parsed
// footer.
class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ProteinGenOptions gen_options;
    gen_options.mean_length = 30;
    gen_options.seed = 21;
    ProteinGenerator gen(gen_options);
    db_ = new SequenceDatabase<char>(
        gen.GenerateDatabaseWithWindows(/*num_windows=*/40,
                                        /*window_length=*/4));
    dist_ = new LevenshteinDistance<char>();
    MatcherOptions options;
    options.lambda = 8;
    options.lambda0 = 1;
    options.index_kind = IndexKind::kReferenceNet;
    options.exec.num_shards = 2;
    path_ = new std::string(TempPath("corruption_base.snap"));
    auto matcher = SubsequenceMatcher<char>::Build(*db_, *dist_, options);
    ASSERT_TRUE(matcher.ok());
    ASSERT_TRUE(matcher.value()->SaveIndex(*path_).ok());
    bytes_ = new std::vector<uint8_t>(ReadFileBytes(*path_));
  }

  static void TearDownTestSuite() {
    std::remove(path_->c_str());
    delete bytes_;
    delete path_;
    delete dist_;
    delete db_;
  }

  // Parses the footer of the pristine file.
  static SnapshotFooterTail Tail() {
    SnapshotFooterTail tail;
    std::memcpy(&tail, bytes_->data() + bytes_->size() - sizeof(tail),
                sizeof(tail));
    return tail;
  }

  static std::vector<SectionEntry> Sections() {
    const SnapshotFooterTail tail = Tail();
    std::vector<SectionEntry> entries(tail.section_count);
    std::memcpy(entries.data(), bytes_->data() + tail.table_offset,
                tail.section_count * sizeof(SectionEntry));
    return entries;
  }

  static SequenceDatabase<char>* db_;
  static LevenshteinDistance<char>* dist_;
  static std::string* path_;
  static std::vector<uint8_t>* bytes_;
};

SequenceDatabase<char>* SnapshotCorruptionTest::db_ = nullptr;
LevenshteinDistance<char>* SnapshotCorruptionTest::dist_ = nullptr;
std::string* SnapshotCorruptionTest::path_ = nullptr;
std::vector<uint8_t>* SnapshotCorruptionTest::bytes_ = nullptr;

TEST_F(SnapshotCorruptionTest, PristineFileOpensInBothModes) {
  for (const SnapshotLoadMode mode :
       {SnapshotLoadMode::kEager, SnapshotLoadMode::kMmap}) {
    auto opened = SnapshotFile::Open(*path_, mode);
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    EXPECT_GT(opened.value()->sections().size(), 5u)
        << "the sharded corpus should carry the full section vocabulary";
  }
}

// Flip one byte in EVERY section's payload; each flip must be rejected
// with a checksum error naming that section and its offset.
TEST_F(SnapshotCorruptionTest, OneFlippedByteInEverySectionIsCaught) {
  const std::string mutated = TempPath("corruption_flip.snap");
  for (const SectionEntry& entry : Sections()) {
    if (entry.size == 0) continue;  // nothing to flip
    std::vector<uint8_t> copy = *bytes_;
    copy[entry.offset + entry.size / 2] ^= 0x40;
    WriteFileBytes(mutated, copy);
    ExpectOpenFails(mutated, "checksum mismatch",
                    std::string("section ") + entry.name);
    ExpectOpenFails(mutated, entry.name,
                    std::string("message names section ") + entry.name);
    ExpectOpenFails(mutated, "offset " + std::to_string(entry.offset),
                    std::string("message names offset of ") + entry.name);
  }
  std::remove(mutated.c_str());
}

// Truncate at every section boundary and in the middle of every
// section; every truncation loses the footer, so all must fail loudly.
TEST_F(SnapshotCorruptionTest, TruncationAtEveryBoundaryIsCaught) {
  const std::string mutated = TempPath("corruption_trunc.snap");
  std::vector<uint64_t> cut_points = {0, 1, sizeof(SnapshotHeader) - 1,
                                      sizeof(SnapshotHeader)};
  for (const SectionEntry& entry : Sections()) {
    cut_points.push_back(entry.offset);               // boundary before
    cut_points.push_back(entry.offset + entry.size);  // boundary after
    if (entry.size > 1) cut_points.push_back(entry.offset + entry.size / 2);
  }
  const SnapshotFooterTail tail = Tail();
  cut_points.push_back(tail.table_offset);       // table gone
  cut_points.push_back(bytes_->size() - 1);      // tail clipped by one
  cut_points.push_back(bytes_->size() - sizeof(SnapshotFooterTail));

  for (const uint64_t cut : cut_points) {
    ASSERT_LT(cut, bytes_->size());
    std::vector<uint8_t> copy(bytes_->begin(),
                              bytes_->begin() + static_cast<int64_t>(cut));
    WriteFileBytes(mutated, copy);
    ExpectOpenFails(mutated, "", "truncated at byte " + std::to_string(cut));
  }
  std::remove(mutated.c_str());
}

TEST_F(SnapshotCorruptionTest, ZeroedFooterTailIsCaught) {
  std::vector<uint8_t> copy = *bytes_;
  std::memset(copy.data() + copy.size() - sizeof(SnapshotFooterTail), 0,
              sizeof(SnapshotFooterTail));
  const std::string mutated = TempPath("corruption_zerofoot.snap");
  WriteFileBytes(mutated, copy);
  ExpectOpenFails(mutated, "footer magic", "zeroed footer tail");
  std::remove(mutated.c_str());
}

TEST_F(SnapshotCorruptionTest, WrongMagicIsCaught) {
  std::vector<uint8_t> copy = *bytes_;
  copy[0] ^= 0xFF;
  const std::string mutated = TempPath("corruption_magic.snap");
  WriteFileBytes(mutated, copy);
  ExpectOpenFails(mutated, "bad magic", "flipped header magic");
  std::remove(mutated.c_str());
}

TEST_F(SnapshotCorruptionTest, WrongFormatVersionIsCaught) {
  std::vector<uint8_t> copy = *bytes_;
  SnapshotHeader header;
  std::memcpy(&header, copy.data(), sizeof(header));
  header.format_version = 99;
  std::memcpy(copy.data(), &header, sizeof(header));
  const std::string mutated = TempPath("corruption_version.snap");
  WriteFileBytes(mutated, copy);
  ExpectOpenFails(mutated, "unsupported snapshot format version 99",
                  "future format version");
  std::remove(mutated.c_str());
}

TEST_F(SnapshotCorruptionTest, TrailingGarbageIsCaught) {
  std::vector<uint8_t> copy = *bytes_;
  copy.push_back(0xAB);  // recorded file size no longer matches
  const std::string mutated = TempPath("corruption_trailing.snap");
  WriteFileBytes(mutated, copy);
  ExpectOpenFails(mutated, "truncated", "appended garbage byte");
  std::remove(mutated.c_str());
}

TEST_F(SnapshotCorruptionTest, TamperedSectionTableIsCaught) {
  const std::vector<SectionEntry> entries = Sections();
  const SnapshotFooterTail tail = Tail();
  ASSERT_FALSE(entries.empty());
  const std::string mutated = TempPath("corruption_table.snap");

  // Offset pointing elsewhere: the checksum no longer matches the bytes
  // found there (or the bounds check fires first).
  {
    std::vector<uint8_t> copy = *bytes_;
    SectionEntry entry = entries[0];
    entry.offset += kSnapshotAlignment;
    std::memcpy(copy.data() + tail.table_offset, &entry, sizeof(entry));
    WriteFileBytes(mutated, copy);
    ExpectOpenFails(mutated, "", "section table offset tampered");
  }
  // Stored checksum tampered.
  {
    std::vector<uint8_t> copy = *bytes_;
    SectionEntry entry = entries[0];
    entry.checksum ^= 1;
    std::memcpy(copy.data() + tail.table_offset, &entry, sizeof(entry));
    WriteFileBytes(mutated, copy);
    ExpectOpenFails(mutated, "checksum mismatch",
                    "section table checksum tampered");
  }
  // Unterminated name.
  {
    std::vector<uint8_t> copy = *bytes_;
    SectionEntry entry = entries[0];
    std::memset(entry.name, 'x', sizeof(entry.name));
    std::memcpy(copy.data() + tail.table_offset, &entry, sizeof(entry));
    WriteFileBytes(mutated, copy);
    ExpectOpenFails(mutated, "unterminated name", "section name tampered");
  }
  std::remove(mutated.c_str());
}

// A checksum-valid file whose *contents* lie (a payload edited together
// with its recomputed checksum) must still be rejected by the loaders'
// structural validation + seeded oracle spot-checks — the layered
// defense behind the checksums.
TEST_F(SnapshotCorruptionTest, ReencodedLyingPayloadIsCaughtByLoaders) {
  // Find a per-shard edges section and shrink one stored edge distance,
  // then fix up the checksum so Open succeeds.
  const SnapshotFooterTail tail = Tail();
  std::vector<SectionEntry> entries = Sections();
  ptrdiff_t target = -1;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (std::strstr(entries[i].name, "edges") != nullptr &&
        entries[i].size >= 16) {
      target = static_cast<ptrdiff_t>(i);
      break;
    }
  }
  ASSERT_GE(target, 0) << "corpus should hold a reference-net edges section";

  std::vector<uint8_t> copy = *bytes_;
  SectionEntry entry = entries[static_cast<size_t>(target)];
  // Edge records are 16 bytes: (int32 level, int32 child, double dist).
  // Overwrite the final edge's stored distance with a wrong value.
  double lied = 1e6;
  std::memcpy(copy.data() + entry.offset + entry.size - sizeof(double),
              &lied, sizeof(double));
  entry.checksum = XxHash64(copy.data() + entry.offset, entry.size);
  std::memcpy(copy.data() + tail.table_offset +
                  static_cast<size_t>(target) * sizeof(SectionEntry),
              &entry, sizeof(entry));
  const std::string mutated = TempPath("corruption_lying.snap");
  WriteFileBytes(mutated, copy);

  // Open succeeds — the bytes are self-consistent...
  ASSERT_TRUE(SnapshotFile::Open(mutated, SnapshotLoadMode::kEager).ok());
  // ...but the load must catch the lie against the live oracle.
  MatcherOptions options;
  options.lambda = 8;
  options.lambda0 = 1;
  options.index_kind = IndexKind::kReferenceNet;
  options.exec.num_shards = 2;
  auto loaded =
      SubsequenceMatcher<char>::LoadIndex(*db_, *dist_, options, mutated);
  EXPECT_FALSE(loaded.ok())
      << "a checksum-consistent but lying payload must fail structural "
         "or spot-check validation";
  std::remove(mutated.c_str());
}

TEST_F(SnapshotCorruptionTest, MissingFileFailsWithIoError) {
  auto opened = SnapshotFile::Open(TempPath("does_not_exist.snap"),
                                   SnapshotLoadMode::kEager);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kIoError);
}

TEST_F(SnapshotCorruptionTest, EmptyAndTinyFilesAreCaught) {
  const std::string mutated = TempPath("corruption_tiny.snap");
  for (const size_t n : {size_t{0}, size_t{1}, size_t{47}}) {
    std::vector<uint8_t> tiny(n, 0x5A);
    WriteFileBytes(mutated, tiny);
    ExpectOpenFails(mutated, "too small", std::to_string(n) + "-byte file");
  }
  std::remove(mutated.c_str());
}

}  // namespace
}  // namespace subseq
